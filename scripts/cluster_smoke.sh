#!/usr/bin/env bash
# Two-node snaked cluster smoke test.
#
# Boots two snaked processes on localhost as mutual peers, runs the same
# sweep through each node, and asserts from /metrics that the second pass
# was served across the cluster (peer cache hits and/or forwarded
# executions) instead of being re-simulated. Exercises the real binary and
# real HTTP transport end to end — the in-process equivalent lives in
# internal/service/cluster_test.go.
#
# Usage: scripts/cluster_smoke.sh [port_a] [port_b]
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_A="${1:-18080}"
PORT_B="${2:-18081}"
URL_A="http://127.0.0.1:${PORT_A}"
URL_B="http://127.0.0.1:${PORT_B}"

WORK="$(mktemp -d)"
PID_A=""
PID_B=""
cleanup() {
  [ -n "$PID_A" ] && kill "$PID_A" 2>/dev/null || true
  [ -n "$PID_B" ] && kill "$PID_B" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/snaked" ./cmd/snaked

# Tiny scale so the whole grid simulates in seconds; per-node cache dirs so
# the disk tier is exercised too.
COMMON=(-workers 2 -sms 2 -warps 16 -ctas 4 -iters 2)
echo "== boot $URL_A and $URL_B"
"$WORK/snaked" -addr "127.0.0.1:${PORT_A}" "${COMMON[@]}" \
  -self "$URL_A" -peers "$URL_B" -cache-dir "$WORK/cache-a" \
  >"$WORK/a.log" 2>&1 &
PID_A=$!
"$WORK/snaked" -addr "127.0.0.1:${PORT_B}" "${COMMON[@]}" \
  -self "$URL_B" -peers "$URL_A" -cache-dir "$WORK/cache-b" \
  >"$WORK/b.log" 2>&1 &
PID_B=$!

wait_up() {
  for _ in $(seq 1 50); do
    if curl -sf "$1/v1/benchmarks" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "node $1 did not come up" >&2
  cat "$WORK"/*.log >&2
  exit 1
}
wait_up "$URL_A"
wait_up "$URL_B"

# A wide grid (11 benches x 2 mechs = 22 cells) so rendezvous hashing is
# essentially certain to split ownership across both nodes.
SWEEP='{"benches":["cp","lps","lib","mum","backprop","hotspot","srad","lud","nw","histo","mrq"],"mechs":["baseline","snake"]}'

run_sweep() {
  local url="$1"
  local id
  # The response is pretty-printed; the sweep id is the first "id" field
  # (jobs carry their own r… ids further down).
  id="$(curl -sf -XPOST "$url/v1/sweeps" -d "$SWEEP" |
    sed -n 's/.*"id": *"\(s[^"]*\)".*/\1/p' | head -1)"
  [ -n "$id" ] || { echo "sweep submit failed on $url" >&2; exit 1; }
  # The stream endpoint blocks until every cell is terminal — no polling.
  curl -sfN "$url/v1/sweeps/$id/stream" >"$WORK/stream.$id"
  grep -q '"stream_done":true' "$WORK/stream.$id" || {
    echo "stream from $url ended without summary" >&2; exit 1; }
  if grep -q '"status":"failed"' "$WORK/stream.$id"; then
    echo "sweep on $url had failed cells" >&2
    cat "$WORK/stream.$id" >&2
    exit 1
  fi
}

metric() { # metric <url> <sample-prefix>  -> summed value
  curl -sf "$1/metrics" | awk -v p="$2" '
    index($0, p) == 1 { sum += $NF } END { printf "%d\n", sum + 0 }'
}

echo "== sweep through node A (cells owned by B are forwarded to B)"
run_sweep "$URL_A"
FWD_A="$(metric "$URL_A" 'snaked_forwards_total{result="ok"}')"
echo "   node A forwarded $FWD_A cells to node B"

echo "== same sweep through node B (cells simulated on A become peer hits)"
run_sweep "$URL_B"

PEER_HITS_B="$(metric "$URL_B" 'snaked_cache_tier_hits_total{tier="peer"}')"
PEER_HITS_A="$(metric "$URL_A" 'snaked_cache_tier_hits_total{tier="peer"}')"
FWD_IN_A="$(metric "$URL_A" 'snaked_forwarded_in_total')"
FWD_IN_B="$(metric "$URL_B" 'snaked_forwarded_in_total')"
CROSS=$((PEER_HITS_A + PEER_HITS_B + FWD_IN_A + FWD_IN_B))
echo "   peer-tier hits: A=$PEER_HITS_A B=$PEER_HITS_B; forwarded-in: A=$FWD_IN_A B=$FWD_IN_B"

if [ "$CROSS" -lt 1 ]; then
  echo "FAIL: no cross-node cache traffic after two sweeps" >&2
  curl -s "$URL_A/metrics" >&2 || true
  curl -s "$URL_B/metrics" >&2 || true
  exit 1
fi

# Exactly-once across the cluster: 22 distinct cells were swept twice, so
# total simulations across both nodes must be exactly 22. The wall-clock
# histogram counts only real local simulations (never cache or forward
# serves), so its _count sum is the per-node simulation count.
SIM_A="$(metric "$URL_A" 'snaked_sim_wall_ms_count')"
SIM_B="$(metric "$URL_B" 'snaked_sim_wall_ms_count')"
echo "   simulations: A=$SIM_A B=$SIM_B (want 22 total)"
if [ "$((SIM_A + SIM_B))" -ne 22 ]; then
  echo "FAIL: cluster simulated $((SIM_A + SIM_B)) cells, want exactly 22" >&2
  exit 1
fi

echo "PASS: cross-node traffic=$CROSS, exactly-once over 22 cells"
