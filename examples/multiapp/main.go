// Multiapp: the paper's §1 extension — "it can be extended to support
// multiple applications where the chains of strides are detected within
// each application". Two different kernels run back to back on one GPU;
// the example compares carrying Snake's tables across the boundary against
// resetting them per application, and shows a warm relaunch of the same
// kernel.
package main

import (
	"fmt"
	"log"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/sim"
	"snake/internal/trace"
	"snake/internal/workloads"
)

func main() {
	cfg := config.Scaled(4, 64)
	sc := workloads.DefaultScale()
	lps, err := workloads.Build("lps", sc)
	if err != nil {
		log.Fatal(err)
	}
	hotspot, err := workloads.Build("hotspot", sc)
	if err != nil {
		log.Fatal(err)
	}
	seq := []*trace.Kernel{lps, hotspot, lps}

	run := func(reset bool) *sim.SequenceResult {
		res, err := sim.RunSequence(seq, sim.SequenceOptions{
			Options: sim.Options{
				Config:        cfg,
				NewPrefetcher: func(int) prefetch.Prefetcher { return core.NewSnake() },
			},
			ResetPrefetchers: reset,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	carry := run(false)
	scoped := run(true)

	fmt.Println("kernel sequence: lps -> hotspot -> lps (Snake prefetching)")
	fmt.Printf("\n%-12s %18s %18s\n", "kernel", "tables carried", "tables per-app")
	for i := range seq {
		fmt.Printf("%-12s %12d cyc %14d cyc\n",
			carry.Spans[i].Name, carry.Spans[i].Cycles(), scoped.Spans[i].Cycles())
	}
	fmt.Printf("%-12s %12d cyc %14d cyc\n", "total", carry.Stats.Cycles, scoped.Stats.Cycles)
	fmt.Printf("\ncoverage: carried %.1f%%, per-app %.1f%%\n",
		100*carry.Stats.Coverage(), 100*scoped.Stats.Coverage())
	fmt.Println("\nscoping detection per application (the paper's suggestion) avoids")
	fmt.Println("cross-application chain pollution at a small relearning cost on")
	fmt.Println("relaunches of the same kernel.")
}
