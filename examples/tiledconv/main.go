// Tiledconv: the §3.5/§5.6 study — how Snake interacts with software tiling.
// It sweeps the tile size from 0% (no tiling) to 100% of the unified cache
// and reports IPC and energy for Tiled vs Snake+Tiled, reproducing the shape
// of the paper's Figure 24 (best at 75%, Snake amplifying the tiling gains
// except at 100% where it is permanently throttled).
package main

import (
	"fmt"
	"log"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/energy"
	"snake/internal/prefetch"
	"snake/internal/sim"
	"snake/internal/workloads"
)

func main() {
	cfg := config.Scaled(4, 64)
	model := energy.Default()
	sc := workloads.DefaultScale()

	run := func(frac float64, snake bool) (ipc, joules float64) {
		k := workloads.TiledConv(sc, frac, cfg.DataCacheBytes())
		opt := sim.Options{Config: cfg}
		if snake {
			opt.NewPrefetcher = func(int) prefetch.Prefetcher { return core.NewSnake() }
		}
		res, err := sim.Run(k, opt)
		if err != nil {
			log.Fatal(err)
		}
		return res.Stats.IPC(), model.Estimate(&res.Stats, cfg, snake).Total()
	}

	baseIPC, baseJ := run(0, false)
	fmt.Println("tiled convolution, normalized to the untiled baseline:")
	fmt.Printf("%-8s %16s %16s\n", "tile", "tiled", "snake+tiled")
	fmt.Printf("%-8s %8s %7s %8s %7s\n", "", "ipc", "energy", "ipc", "energy")
	for _, frac := range []float64{0.25, 0.50, 0.75, 1.00} {
		ti, tj := run(frac, false)
		si, sj := run(frac, true)
		fmt.Printf("%-7.0f%% %8.3f %7.3f %8.3f %7.3f\n",
			frac*100, ti/baseIPC, tj/baseJ, si/baseIPC, sj/baseJ)
	}
	fmt.Println("\npaper (fig 24): gains peak at the 75% tile; Snake amplifies tiling")
	fmt.Println("except at 100%, where the prefetcher stays throttled for space.")
}
