// Serveclient submits a small sweep to a locally running snaked and prints
// the IPC-vs-baseline table — the minimal end-to-end client of the service
// API, compiled against the same wire types the server uses
// (service.SweepRequest / service.SweepView).
//
// Start a server, then run the client:
//
//	go run ./cmd/snaked -addr :8080 &
//	go run ./examples/serveclient -addr http://localhost:8080
//
// With -stream the client consumes GET /v1/sweeps/{id}/stream instead of
// polling: the server pushes one JSON line per cell as it finishes, then a
// summary line, so results print the moment they exist.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"snake/internal/harness"
	"snake/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "snaked base URL")
		benches = flag.String("benches", "cp,lps,hotspot", "comma-separated benchmarks")
		mechs   = flag.String("mechs", "mta,snake", "comma-separated mechanisms (baseline added automatically)")
		stream  = flag.Bool("stream", false, "consume the chunked result stream instead of polling")
	)
	flag.Parse()

	bs := strings.Split(*benches, ",")
	ms := append([]string{"baseline"}, strings.Split(*mechs, ",")...)

	sweep := submit(*addr, service.SweepRequest{Benches: bs, Mechs: ms})
	fmt.Printf("submitted sweep %s: %d jobs\n", sweep.ID, sweep.Total)

	var cells []service.RunView
	if *stream {
		cells = streamCells(*addr, sweep)
	} else {
		// Poll until every cell is terminal.
		for !sweep.Done {
			time.Sleep(250 * time.Millisecond)
			sweep = poll(*addr, sweep.ID)
			fmt.Printf("  %d/%d done\n", sweep.Total-sweep.Pending, sweep.Total)
		}
		cells = sweep.Jobs
	}

	// Index the cells and print IPC normalized to baseline per benchmark.
	ipc := make(map[string]map[string]float64) // bench -> mech -> ipc
	for _, j := range cells {
		if j.Status != service.StatusDone {
			log.Fatalf("job %s (%s/%s): %s %s", j.ID, j.Bench, j.Mech, j.Status, j.Error)
		}
		if ipc[j.Bench] == nil {
			ipc[j.Bench] = make(map[string]float64)
		}
		ipc[j.Bench][j.Mech] = j.Result.IPC
	}
	t := &harness.Table{
		ID:      "serveclient",
		Title:   "IPC normalized to baseline (via snaked)",
		Columns: append([]string{"benchmark"}, ms[1:]...),
	}
	for _, b := range bs {
		base := ipc[b]["baseline"]
		vals := make([]float64, 0, len(ms)-1)
		for _, m := range ms[1:] {
			vals = append(vals, ipc[b][m]/base)
		}
		t.AddRow(b, vals...)
	}
	t.Mean("mean")
	t.Fprint(os.Stdout)
}

// streamCells reads the NDJSON result stream: one RunView per finished cell
// in completion order, then a StreamEnd summary (told apart by its
// "stream_done" field).
func streamCells(addr string, sweep service.SweepView) []service.RunView {
	resp, err := http.Get(addr + "/v1/sweeps/" + sweep.ID + "/stream")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("stream sweep: HTTP %d", resp.StatusCode)
	}
	cells := make([]service.RunView, 0, sweep.Total)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe struct {
			ID   string `json:"id"`
			Done bool   `json:"stream_done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			log.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if probe.ID == "" {
			var end service.StreamEnd
			if err := json.Unmarshal(sc.Bytes(), &end); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("stream done: %d completed, %d failed, %d canceled\n",
				end.Completed, end.Failed, end.Canceled)
			break
		}
		var v service.RunView
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			log.Fatal(err)
		}
		src := v.Source
		if src == "" {
			src = "sim"
		}
		fmt.Printf("  [%d/%d] %s/%s via %s\n", len(cells)+1, sweep.Total, v.Bench, v.Mech, src)
		cells = append(cells, v)
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("stream read: %v", err)
	}
	return cells
}

func submit(addr string, req service.SweepRequest) service.SweepView {
	b, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(addr+"/v1/sweeps", "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatalf("submit sweep (is snaked running at %s?): %v", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit sweep: HTTP %d", resp.StatusCode)
	}
	return decodeSweep(resp)
}

func poll(addr, id string) service.SweepView {
	resp, err := http.Get(addr + "/v1/sweeps/" + id)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("poll sweep: HTTP %d", resp.StatusCode)
	}
	return decodeSweep(resp)
}

func decodeSweep(resp *http.Response) service.SweepView {
	var v service.SweepView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}
