// Serveclient submits a small sweep to a locally running snaked and prints
// the IPC-vs-baseline table — the minimal end-to-end client of the service
// API, compiled against the same wire types the server uses
// (service.SweepRequest / service.SweepView).
//
// Start a server, then run the client:
//
//	go run ./cmd/snaked -addr :8080 &
//	go run ./examples/serveclient -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"snake/internal/harness"
	"snake/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "snaked base URL")
		benches = flag.String("benches", "cp,lps,hotspot", "comma-separated benchmarks")
		mechs   = flag.String("mechs", "mta,snake", "comma-separated mechanisms (baseline added automatically)")
	)
	flag.Parse()

	bs := strings.Split(*benches, ",")
	ms := append([]string{"baseline"}, strings.Split(*mechs, ",")...)

	sweep := submit(*addr, service.SweepRequest{Benches: bs, Mechs: ms})
	fmt.Printf("submitted sweep %s: %d jobs\n", sweep.ID, sweep.Total)

	// Poll until every cell is terminal.
	for !sweep.Done {
		time.Sleep(250 * time.Millisecond)
		sweep = poll(*addr, sweep.ID)
		fmt.Printf("  %d/%d done\n", sweep.Total-sweep.Pending, sweep.Total)
	}

	// Index the cells and print IPC normalized to baseline per benchmark.
	ipc := make(map[string]map[string]float64) // bench -> mech -> ipc
	for _, j := range sweep.Jobs {
		if j.Status != service.StatusDone {
			log.Fatalf("job %s (%s/%s): %s %s", j.ID, j.Bench, j.Mech, j.Status, j.Error)
		}
		if ipc[j.Bench] == nil {
			ipc[j.Bench] = make(map[string]float64)
		}
		ipc[j.Bench][j.Mech] = j.Result.IPC
	}
	t := &harness.Table{
		ID:      "serveclient",
		Title:   "IPC normalized to baseline (via snaked)",
		Columns: append([]string{"benchmark"}, ms[1:]...),
	}
	for _, b := range bs {
		base := ipc[b]["baseline"]
		vals := make([]float64, 0, len(ms)-1)
		for _, m := range ms[1:] {
			vals = append(vals, ipc[b][m]/base)
		}
		t.AddRow(b, vals...)
	}
	t.Mean("mean")
	t.Fprint(os.Stdout)
}

func submit(addr string, req service.SweepRequest) service.SweepView {
	b, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(addr+"/v1/sweeps", "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatalf("submit sweep (is snaked running at %s?): %v", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit sweep: HTTP %d", resp.StatusCode)
	}
	return decodeSweep(resp)
}

func poll(addr, id string) service.SweepView {
	resp, err := http.Get(addr + "/v1/sweeps/" + id)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("poll sweep: HTTP %d", resp.StatusCode)
	}
	return decodeSweep(resp)
}

func decodeSweep(resp *http.Response) service.SweepView {
	var v service.SweepView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}
