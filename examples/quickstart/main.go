// Quickstart: build a kernel, run it on the simulated GPU with and without
// Snake, and print the headline numbers — the minimal end-to-end use of the
// library's public surface (workloads -> sim -> stats, with a prefetcher
// from core).
package main

import (
	"fmt"
	"log"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/sim"
	"snake/internal/workloads"
)

func main() {
	// A scaled GPU: 4 SMs x 64 warps, Table 1 per-SM structures.
	cfg := config.Scaled(4, 64)

	// The LPS stencil from the paper's Figure 7 — the canonical chain
	// workload.
	kernel, err := workloads.Build("lps", workloads.DefaultScale())
	if err != nil {
		log.Fatal(err)
	}

	baseline, err := sim.Run(kernel, sim.Options{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}

	snake, err := sim.Run(kernel, sim.Options{
		Config:        cfg,
		NewPrefetcher: func(int) prefetch.Prefetcher { return core.NewSnake() },
	})
	if err != nil {
		log.Fatal(err)
	}

	b, s := &baseline.Stats, &snake.Stats
	fmt.Printf("kernel: %s (%d instructions, %d loads)\n\n", kernel.Name, b.Insts, b.Loads)
	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "snake")
	fmt.Printf("%-22s %12d %12d\n", "cycles", b.Cycles, s.Cycles)
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", b.IPC(), s.IPC())
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "L1 hit rate", 100*b.L1HitRate(), 100*s.L1HitRate())
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "memory-stall fraction", 100*b.MemStallFraction(), 100*s.MemStallFraction())
	fmt.Printf("%-22s %12s %11.1f%%\n", "prefetch coverage", "-", 100*s.Coverage())
	fmt.Printf("%-22s %12s %11.1f%%\n", "prefetch accuracy", "-", 100*s.Accuracy())
	fmt.Printf("\nspeedup: %.2fx\n", s.IPC()/b.IPC())
}
