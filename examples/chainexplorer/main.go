// Chainexplorer: mines every benchmark's trace for chains of strides and
// prints a compact survey — which applications are chain-rich (stencils,
// LUD), which are chain-poor (MUM, NW), and how that predicts Snake's
// coverage. It is the motivational analysis of §2 (Figures 9-11) as a tool.
package main

import (
	"fmt"
	"log"

	"snake/internal/chains"
	"snake/internal/workloads"
)

func main() {
	fmt.Printf("%-10s %9s %8s %9s %8s  %s\n",
		"benchmark", "chain-PCs", "max-rep", "chains", "mta", "strongest link")
	var sumChain, sumMTA float64
	names := workloads.Names()
	for _, name := range names {
		k, err := workloads.Build(name, workloads.DefaultScale())
		if err != nil {
			log.Fatal(err)
		}
		st := chains.Analyze(k)
		strongest := "-"
		if len(st.Links) > 0 {
			l := st.Links[0]
			strongest = fmt.Sprintf("%#x->%#x %+d (x%d)", l.PC1, l.PC2, l.Delta, l.Count)
		}
		fmt.Printf("%-10s %8.0f%% %8d %8.1f%% %7.1f%%  %s\n",
			name, 100*st.PCFraction(), st.MaxRepetition,
			100*st.ChainCoverage, 100*st.MTACoverage, strongest)
		sumChain += st.ChainCoverage
		sumMTA += st.MTACoverage
	}
	n := float64(len(names))
	fmt.Printf("\nmean chain coverage %.1f%% vs MTA %.1f%% — the paper's Figure 11 gap\n",
		100*sumChain/n, 100*sumMTA/n)
	fmt.Println("(chains ~70% vs MTA ~55% in the paper's trace analysis)")
}
