// Stencil: builds an LPS-style 3D stencil by hand with the trace builder
// (rather than the canned workload) and shows the full mechanism pipeline:
// the chain the code contains, what the offline miner finds, and how each
// prefetching mechanism fares on it — the Figure 7/8 story end to end.
package main

import (
	"fmt"
	"log"

	"snake/internal/chains"
	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/sim"
	"snake/internal/trace"
)

const (
	koff     = 64 * 1024 // plane size in bytes: (BLOCK_X+2)*(BLOCK_Y+2)
	warpSpan = 256
	nz       = 16 // k-loop depth
	pcLoad1  = 0x100
	pcLoad2  = 0x108
)

// buildStencil hand-writes the Figure 7 loop: per iteration a warp loads
// u1[ind] and u1[ind+KOFF], stores u1[ind-KOFF] and u1[ind], and advances
// ind by KOFF.
func buildStencil(ctas, warpsPerCTA int) *trace.Kernel {
	const base = 0x1000_0000
	k := &trace.Kernel{Name: "stencil"}
	for c := 0; c < ctas; c++ {
		cta := trace.CTA{ID: c, BaseAddr: base + uint64(c*warpsPerCTA*warpSpan)}
		for w := 0; w < warpsPerCTA; w++ {
			b := trace.NewBuilder()
			ind := cta.BaseAddr + uint64(w*warpSpan) + koff
			for kk := 0; kk < nz; kk++ {
				b.Load(pcLoad1, ind, 4)      // u1[ind]
				b.Load(pcLoad2, ind+koff, 4) // u1[ind+KOFF]  <- the chain
				b.Store(0x110, ind-koff, 4)  // u1[ind-KOFF] = ...
				b.Store(0x118, ind, 4)
				b.Compute(0x120, 8)
				ind += koff
			}
			wp := b.Exit(0x128)
			wp.IDInCTA = w
			cta.Warps = append(cta.Warps, wp)
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}

func main() {
	k := buildStencil(48, 8)
	fmt.Println("The inner loop of the LPS stencil (paper Figure 7):")
	fmt.Println("    for (k = 0; k < NZ; k++) {")
	fmt.Println("        u1[ind-KOFF] = u1[ind];      // PC1 loads u1[ind]")
	fmt.Println("        u1[ind]      = u1[ind+KOFF]; // PC2 loads u1[ind+KOFF]")
	fmt.Println("    }")
	fmt.Printf("\nPC1->PC2 is an inter-thread chain with stride KOFF = %d bytes.\n\n", koff)

	// What the offline miner sees (Figures 8-11).
	st := chains.Analyze(k)
	fmt.Printf("chain mining: %d/%d load PCs in chains, max repetition %d, chain coverage %.0f%%\n\n",
		st.ChainPCs, st.TotalPCs, st.MaxRepetition, 100*st.ChainCoverage)

	// How the mechanisms fare.
	cfg := config.Scaled(4, 64)
	mechanisms := []struct {
		name string
		pf   func(int) prefetch.Prefetcher
	}{
		{"baseline", nil},
		{"intra-warp", func(int) prefetch.Prefetcher { return prefetch.NewIntraWarp() }},
		{"inter-warp", func(int) prefetch.Prefetcher { return prefetch.NewInterWarp() }},
		{"mta", func(int) prefetch.Prefetcher { return prefetch.NewMTA() }},
		{"cta-aware", func(int) prefetch.Prefetcher { return prefetch.NewCTAAware() }},
		{"snake", func(int) prefetch.Prefetcher { return core.NewSnake() }},
	}
	var baseIPC float64
	fmt.Printf("%-12s %8s %9s %9s %10s\n", "mechanism", "IPC", "coverage", "accuracy", "vs base")
	for _, m := range mechanisms {
		res, err := sim.Run(k, sim.Options{Config: cfg, NewPrefetcher: m.pf})
		if err != nil {
			log.Fatal(err)
		}
		s := &res.Stats
		if m.name == "baseline" {
			baseIPC = s.IPC()
		}
		fmt.Printf("%-12s %8.3f %8.1f%% %8.1f%% %9.2fx\n",
			m.name, s.IPC(), 100*s.Coverage(), 100*s.Accuracy(), s.IPC()/baseIPC)
	}
}
