package profiling

import (
	"math"
	"testing"
)

func TestPhasesAccounting(t *testing.T) {
	var p Phases
	if p.TotalNs() != 0 || p.SerialShare() != 0 {
		t.Fatalf("zero value not empty: total=%d share=%f", p.TotalNs(), p.SerialShare())
	}
	p.Add(PhaseSerialDrain, 25)
	p.Add(PhaseSerialRoute, 5)
	p.Add(PhaseMemPartitions, 20)
	p.Add(PhaseShards, 40)
	p.Add(PhaseMerge, 10)
	p.Add(PhaseMerge, 0) // zero-duration laps accrue nothing but are legal
	if got := p.TotalNs(); got != 100 {
		t.Errorf("TotalNs = %d, want 100", got)
	}
	if got := p.SerialShare(); math.Abs(got-0.40) > 1e-12 {
		t.Errorf("SerialShare = %f, want 0.40", got)
	}
	if got := p.RouteShare(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("RouteShare = %f, want 0.05", got)
	}
	if got := p.MergeShare(); math.Abs(got-0.10) > 1e-12 {
		t.Errorf("MergeShare = %f, want 0.10", got)
	}
	p.AddEpoch(6)
	p.AddEpoch(2)
	if p.Barriers() != 2 || p.EpochCycles() != 8 {
		t.Errorf("barriers=%d epochCycles=%d, want 2 and 8", p.Barriers(), p.EpochCycles())
	}
	if got := p.CyclesPerBarrier(); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("CyclesPerBarrier = %f, want 4", got)
	}
	m := p.Map()
	if len(m) != int(NumPhases)+4 {
		t.Fatalf("Map has %d entries, want %d", len(m), int(NumPhases)+4)
	}
	if m["serial-drain"] != 25 || m["route"] != 5 || m["parallel-partition"] != 20 || m["parallel-shard"] != 40 || m["merge"] != 10 {
		t.Errorf("Map = %v", m)
	}
	if m["route_ns"] != 5 || m["merge_ns"] != 10 {
		t.Errorf("Map gate aliases = %v", m)
	}
	if m["barriers"] != 2 || m["epoch_cycles"] != 8 {
		t.Errorf("Map barrier counters = %v", m)
	}
	p.Reset()
	if p.TotalNs() != 0 || p.Barriers() != 0 || p.EpochCycles() != 0 {
		t.Errorf("Reset left total=%d barriers=%d epochCycles=%d", p.TotalNs(), p.Barriers(), p.EpochCycles())
	}
	if p.CyclesPerBarrier() != 0 {
		t.Errorf("CyclesPerBarrier on empty accumulator = %f, want 0", p.CyclesPerBarrier())
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for ph := Phase(0); ph < NumPhases; ph++ {
		name := ph.String()
		if name == "" || seen[name] {
			t.Errorf("phase %d has empty or duplicate name %q", ph, name)
		}
		seen[name] = true
	}
}
