package profiling

import (
	"math"
	"testing"
)

func TestPhasesAccounting(t *testing.T) {
	var p Phases
	if p.TotalNs() != 0 || p.SerialShare() != 0 {
		t.Fatalf("zero value not empty: total=%d share=%f", p.TotalNs(), p.SerialShare())
	}
	p.Add(PhaseSerialRoute, 30)
	p.Add(PhaseMemPartitions, 20)
	p.Add(PhaseShards, 40)
	p.Add(PhaseMerge, 10)
	p.Add(PhaseMerge, 0) // zero-duration laps accrue nothing but are legal
	if got := p.TotalNs(); got != 100 {
		t.Errorf("TotalNs = %d, want 100", got)
	}
	if got := p.SerialShare(); math.Abs(got-0.40) > 1e-12 {
		t.Errorf("SerialShare = %f, want 0.40", got)
	}
	m := p.Map()
	if len(m) != int(NumPhases) {
		t.Fatalf("Map has %d entries, want %d", len(m), NumPhases)
	}
	if m["serial-route"] != 30 || m["parallel-partition"] != 20 || m["parallel-shard"] != 40 || m["merge"] != 10 {
		t.Errorf("Map = %v", m)
	}
	p.Reset()
	if p.TotalNs() != 0 {
		t.Errorf("Reset left %d ns", p.TotalNs())
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for ph := Phase(0); ph < NumPhases; ph++ {
		name := ph.String()
		if name == "" || seen[name] {
			t.Errorf("phase %d has empty or duplicate name %q", ph, name)
		}
		seen[name] = true
	}
}
