package profiling

import "fmt"

// Phase names one section of the simulation engine's cycle pipeline. The
// engine's wall clock divides into exactly these five buckets (see DESIGN.md
// "Memory-side parallelism" and "Deterministic parallel routing"): the serial
// per-sub-cycle drain pump, the O(#partitions) route prefix-sum, the two
// halves of the parallel phase (memory partitions and SM shards), and the
// serial merge plus end-of-cycle bookkeeping.
type Phase uint8

// Engine phases, in cycle order.
const (
	// PhaseSerialDrain is the serial head of the cycle: network tick,
	// response bandwidth arbitration, fill delivery into shard inboxes,
	// request pull (with partition binning at push) and store drain.
	PhaseSerialDrain Phase = iota
	// PhaseSerialRoute is the route phase: the per-partition due counts and
	// the prefix-sum that assigns each partition its contiguous response
	// slot range — O(#partitions), not O(#requests), since the counting
	// moved to injection time.
	PhaseSerialRoute
	// PhaseMemPartitions is the memory half of the parallel phase: each L2
	// sub-partition performs its binned lookups, in-flight merges and DRAM
	// timing.
	PhaseMemPartitions
	// PhaseShards is the SM half of the parallel phase: each shard applies
	// fills, runs its prefetcher and issues from its warp schedulers.
	PhaseShards
	// PhaseMerge is the serial tail: response slot replay, the counting-
	// scatter store merge, CTA refill, and termination/fast-forward
	// bookkeeping.
	PhaseMerge

	// NumPhases is the number of phases (for sizing arrays).
	NumPhases
)

// String returns the phase's report name.
func (p Phase) String() string {
	switch p {
	case PhaseSerialDrain:
		return "serial-drain"
	case PhaseSerialRoute:
		return "route"
	case PhaseMemPartitions:
		return "parallel-partition"
	case PhaseShards:
		return "parallel-shard"
	case PhaseMerge:
		return "merge"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// Phases accumulates wall-clock nanoseconds per engine phase across a run
// (or any number of runs — callers own the aggregation window). It is not
// safe for concurrent use; give each engine its own accumulator.
//
// Phase timing answers the Amdahl question the parallel executor raises:
// how much of the engine's wall clock is still serial (drain + route + merge)
// versus parallel (partitions + shards)? SerialShare is that fraction
// directly — with RouteShare and MergeShare splitting out the two phases the
// parallel route/merge work targeted — and snakebench's regression guard
// watches them so the serial fraction cannot silently grow back.
type Phases struct {
	ns [NumPhases]int64
	// barriers counts executed epochs (each epoch crosses the cycle barrier
	// once), epochCycles the cycles they covered; their ratio is the
	// amortization the bounded-slack schedule achieved. Fast-forwarded cycles
	// are in neither.
	barriers    int64
	epochCycles int64
}

// Add accrues ns nanoseconds to the given phase.
func (p *Phases) Add(ph Phase, ns int64) { p.ns[ph] += ns }

// AddEpoch records one executed epoch covering the given number of cycles —
// one barrier crossing.
func (p *Phases) AddEpoch(cycles int64) {
	p.barriers++
	p.epochCycles += cycles
}

// Barriers returns the number of barrier crossings (executed epochs).
func (p *Phases) Barriers() int64 { return p.barriers }

// EpochCycles returns the number of cycles covered by executed epochs.
func (p *Phases) EpochCycles() int64 { return p.epochCycles }

// CyclesPerBarrier returns the mean epoch length — executed cycles per
// barrier crossing; zero when nothing has been recorded.
func (p *Phases) CyclesPerBarrier() float64 {
	if p.barriers == 0 {
		return 0
	}
	return float64(p.epochCycles) / float64(p.barriers)
}

// Ns returns the nanoseconds accumulated for one phase.
func (p *Phases) Ns(ph Phase) int64 { return p.ns[ph] }

// TotalNs returns the nanoseconds accumulated across all phases.
func (p *Phases) TotalNs() int64 {
	var t int64
	for _, v := range p.ns {
		t += v
	}
	return t
}

// SerialShare returns the fraction of accumulated time spent in the serial
// phases (drain + route + merge), 0..1; zero when nothing has been recorded.
func (p *Phases) SerialShare() float64 {
	t := p.TotalNs()
	if t == 0 {
		return 0
	}
	return float64(p.ns[PhaseSerialDrain]+p.ns[PhaseSerialRoute]+p.ns[PhaseMerge]) / float64(t)
}

// RouteShare returns the fraction of accumulated time spent in the route
// prefix-sum phase, 0..1. The parallel-route CI gate watches this: the
// O(#partitions) plan must stay a sliver of the epoch.
func (p *Phases) RouteShare() float64 {
	t := p.TotalNs()
	if t == 0 {
		return 0
	}
	return float64(p.ns[PhaseSerialRoute]) / float64(t)
}

// MergeShare returns the fraction of accumulated time spent in the serial
// merge tail, 0..1.
func (p *Phases) MergeShare() float64 {
	t := p.TotalNs()
	if t == 0 {
		return 0
	}
	return float64(p.ns[PhaseMerge]) / float64(t)
}

// Reset zeroes the accumulator.
func (p *Phases) Reset() {
	p.ns = [NumPhases]int64{}
	p.barriers = 0
	p.epochCycles = 0
}

// Map returns the accumulated nanoseconds keyed by phase name, plus explicit
// "route_ns"/"merge_ns" aliases for the two formerly-serial phases the CI
// gates watch, and the barrier counters under "barriers" and "epoch_cycles"
// (the BENCH_sim.json phase_ns schema).
func (p *Phases) Map() map[string]int64 {
	out := make(map[string]int64, NumPhases+4)
	for ph := Phase(0); ph < NumPhases; ph++ {
		out[ph.String()] = p.ns[ph]
	}
	out["route_ns"] = p.ns[PhaseSerialRoute]
	out["merge_ns"] = p.ns[PhaseMerge]
	out["barriers"] = p.barriers
	out["epoch_cycles"] = p.epochCycles
	return out
}
