// Package profiling provides the shared -cpuprofile/-memprofile plumbing of
// the command-line tools, so performance work can measure instead of guess.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling and/or arranges a heap profile. It returns a
// stop function that must run (normally via defer) before the process exits;
// the heap profile is captured at stop time. An empty path disables the
// corresponding profile, so Start("", "") is a no-op.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
