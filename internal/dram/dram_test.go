package dram

import (
	"testing"

	"snake/internal/config"
)

func newCtl() *Controller {
	return New(config.DefaultDRAMTiming(), 16, 2048, 2, nil)
}

func TestRowHitFasterThanRowMiss(t *testing.T) {
	c := newCtl()
	t1 := c.Access(0x0, 100)       // cold: activate + CAS
	t2 := c.Access(0x80, t1+1)     // same row: CAS only
	t3 := c.Access(0x100000, t2+1) // far row (different bank, cold)
	d1 := t1 - 100
	d2 := t2 - (t1 + 1)
	if d2 >= d1 {
		t.Errorf("row hit (%d cycles) not faster than cold access (%d)", d2, d1)
	}
	_ = t3
	reads, hits, misses := c.Stats()
	if reads != 3 || hits != 1 || misses != 2 {
		t.Errorf("stats = (%d,%d,%d), want (3,1,2)", reads, hits, misses)
	}
}

func TestSameBankConflictSerializes(t *testing.T) {
	c := newCtl()
	timing := config.DefaultDRAMTiming()
	// Two different rows on the same bank: find two addresses mapping to the
	// same bank but different rows by scanning.
	rowBytes := uint64(2048)
	a := uint64(0)
	var b uint64
	bankOf := func(addr uint64) int {
		row := addr / rowBytes
		return int((row ^ (row >> 4) ^ (row >> 8)) % 16)
	}
	for r := uint64(1); ; r++ {
		if bankOf(r*rowBytes) == bankOf(a) {
			b = r * rowBytes
			break
		}
	}
	t1 := c.Access(a, 100)
	t2 := c.Access(b, 101)
	// The second access must wait for the first bank cycle: its completion
	// is pushed well past a simple CAS.
	if t2 < t1 {
		t.Errorf("conflicting access completed at %d before first at %d", t2, t1)
	}
	if t2-101 < int64(timing.TRAS) {
		t.Errorf("bank conflict served in %d cycles; tRAS=%d not respected", t2-101, timing.TRAS)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	c := newCtl()
	rowBytes := uint64(2048)
	bankOf := func(addr uint64) int {
		row := addr / rowBytes
		return int((row ^ (row >> 4) ^ (row >> 8)) % 16)
	}
	a := uint64(0)
	var b uint64
	for r := uint64(1); ; r++ {
		if bankOf(r*rowBytes) != bankOf(a) {
			b = r * rowBytes
			break
		}
	}
	t1 := c.Access(a, 100)
	t2 := c.Access(b, 100)
	// Both cold accesses on different banks take the same latency.
	if t1 != t2 {
		t.Errorf("parallel bank accesses finish at %d and %d, want equal", t1, t2)
	}
}

func TestTimeMonotonicPerBank(t *testing.T) {
	c := newCtl()
	prev := int64(0)
	for i := 0; i < 100; i++ {
		// Hammer one row region: mixed hits and misses.
		addr := uint64(i%4) * 512
		done := c.Access(addr, int64(100+i))
		if done < prev-200 { // allow different banks to complete out of order
			t.Fatalf("access %d completes at %d, far before previous %d", i, done, prev)
		}
		if done > prev {
			prev = done
		}
	}
}
