// Package dram models off-chip memory: per-bank row-buffer state machines
// with the Table 1 timing parameters. Fetching data from global memory takes
// "hundreds to thousands of cycles, given the traffic" (§2); this model
// produces exactly that behaviour through bank conflicts and row misses.
package dram

import (
	"snake/internal/config"
	"snake/internal/stats"
)

// Controller is one memory controller governing a set of DRAM banks with
// open-page row-buffer policy. A controller is single-owner state: the
// simulation engine runs each controller only from its owning memory
// partition (serially within the partition, partitions concurrently), so it
// needs no internal locking.
type Controller struct {
	timing   config.DRAMTiming
	rowBytes uint64
	banks    []bank
	xferCyc  int64 // data transfer cycles per request

	// ms receives the traffic counters. The engine passes each partition's
	// entry of a shared stats.MemParts arena so DRAM traffic lands directly
	// in the per-partition accumulators; standalone controllers (tests) get
	// a private block.
	ms *stats.Mem
}

type bank struct {
	openRow    uint64
	hasOpenRow bool
	readyAt    int64 // earliest cycle the bank can accept a new column access
	lastAct    int64 // cycle of the last activate (for tRC)
}

// New builds a controller with the given bank count and row size, counting
// traffic into ms (nil: a private counter block, readable via Stats).
func New(t config.DRAMTiming, banks int, rowBytes int, xferCycles int, ms *stats.Mem) *Controller {
	if ms == nil {
		ms = &stats.Mem{}
	}
	return &Controller{
		timing:   t,
		rowBytes: uint64(rowBytes),
		banks:    make([]bank, banks),
		xferCyc:  int64(xferCycles),
		ms:       ms,
	}
}

// Access services a read of lineAddr arriving at the given cycle and returns
// the cycle at which data is available.
func (c *Controller) Access(lineAddr uint64, cycle int64) int64 {
	c.ms.DRAMReads++
	row := lineAddr / c.rowBytes
	// Swizzled bank mapping: XOR-fold higher row bits so power-of-two
	// strides (ubiquitous in GPU kernels) spread across banks instead of
	// serializing on one.
	b := &c.banks[int((row^(row>>4)^(row>>8))%uint64(len(c.banks)))]

	start := cycle
	if b.readyAt > start {
		start = b.readyAt // queue behind the bank's previous operation
	}

	var dataAt int64
	if b.hasOpenRow && b.openRow == row {
		// Row hit: CAS latency only.
		c.ms.DRAMRowHits++
		dataAt = start + int64(c.timing.TCL) + c.xferCyc
		b.readyAt = start + int64(c.timing.TCCDL)
	} else {
		// Row miss: precharge (if a row is open) + activate + CAS.
		c.ms.DRAMRowMisses++
		pre := int64(0)
		if b.hasOpenRow {
			pre = int64(c.timing.TRP)
			// Respect tRC between consecutive activates on the same bank.
			if minAct := b.lastAct + int64(c.timing.TRC); start+pre < minAct {
				pre = minAct - start
			}
		}
		actAt := start + pre
		b.lastAct = actAt
		dataAt = actAt + int64(c.timing.TRCD) + int64(c.timing.TCL) + c.xferCyc
		b.readyAt = actAt + int64(c.timing.TRAS)
		b.openRow = row
		b.hasOpenRow = true
	}
	return dataAt
}

// Reset closes every bank's row and zeroes the controller's traffic
// counters, returning it to its just-constructed state without reallocating
// the bank array. Only the DRAM fields of the shared counter block are
// touched; the partition owns the rest.
func (c *Controller) Reset() {
	clear(c.banks)
	c.ms.DRAMReads = 0
	c.ms.DRAMRowHits = 0
	c.ms.DRAMRowMisses = 0
}

// Stats returns read, row-hit and row-miss counts.
func (c *Controller) Stats() (reads, rowHits, rowMisses int64) {
	return c.ms.DRAMReads, c.ms.DRAMRowHits, c.ms.DRAMRowMisses
}
