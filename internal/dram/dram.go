// Package dram models off-chip memory: per-bank row-buffer state machines
// with the Table 1 timing parameters. Fetching data from global memory takes
// "hundreds to thousands of cycles, given the traffic" (§2); this model
// produces exactly that behaviour through bank conflicts and row misses.
package dram

import "snake/internal/config"

// Controller is one memory controller governing a set of DRAM banks with
// open-page row-buffer policy.
type Controller struct {
	timing   config.DRAMTiming
	rowBytes uint64
	banks    []bank
	xferCyc  int64 // data transfer cycles per request

	reads     int64
	rowHits   int64
	rowMisses int64
}

type bank struct {
	openRow    uint64
	hasOpenRow bool
	readyAt    int64 // earliest cycle the bank can accept a new column access
	lastAct    int64 // cycle of the last activate (for tRC)
}

// New builds a controller with the given bank count and row size.
func New(t config.DRAMTiming, banks int, rowBytes int, xferCycles int) *Controller {
	return &Controller{
		timing:   t,
		rowBytes: uint64(rowBytes),
		banks:    make([]bank, banks),
		xferCyc:  int64(xferCycles),
	}
}

// Access services a read of lineAddr arriving at the given cycle and returns
// the cycle at which data is available.
func (c *Controller) Access(lineAddr uint64, cycle int64) int64 {
	c.reads++
	row := lineAddr / c.rowBytes
	// Swizzled bank mapping: XOR-fold higher row bits so power-of-two
	// strides (ubiquitous in GPU kernels) spread across banks instead of
	// serializing on one.
	b := &c.banks[int((row^(row>>4)^(row>>8))%uint64(len(c.banks)))]

	start := cycle
	if b.readyAt > start {
		start = b.readyAt // queue behind the bank's previous operation
	}

	var dataAt int64
	if b.hasOpenRow && b.openRow == row {
		// Row hit: CAS latency only.
		c.rowHits++
		dataAt = start + int64(c.timing.TCL) + c.xferCyc
		b.readyAt = start + int64(c.timing.TCCDL)
	} else {
		// Row miss: precharge (if a row is open) + activate + CAS.
		c.rowMisses++
		pre := int64(0)
		if b.hasOpenRow {
			pre = int64(c.timing.TRP)
			// Respect tRC between consecutive activates on the same bank.
			if minAct := b.lastAct + int64(c.timing.TRC); start+pre < minAct {
				pre = minAct - start
			}
		}
		actAt := start + pre
		b.lastAct = actAt
		dataAt = actAt + int64(c.timing.TRCD) + int64(c.timing.TCL) + c.xferCyc
		b.readyAt = actAt + int64(c.timing.TRAS)
		b.openRow = row
		b.hasOpenRow = true
	}
	return dataAt
}

// Reset closes every bank's row and zeroes the counters, returning the
// controller to its just-constructed state without reallocating the bank
// array.
func (c *Controller) Reset() {
	clear(c.banks)
	c.reads = 0
	c.rowHits = 0
	c.rowMisses = 0
}

// Stats returns read, row-hit and row-miss counts.
func (c *Controller) Stats() (reads, rowHits, rowMisses int64) {
	return c.reads, c.rowHits, c.rowMisses
}
