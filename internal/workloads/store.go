package workloads

import (
	"sync"
	"sync/atomic"

	"snake/internal/trace"
)

// Store interns built kernels: one immutable *trace.Kernel per (benchmark,
// Scale), built exactly once under singleflight and shared read-only by every
// caller thereafter. The simulator never mutates a kernel, so a single trace
// can back any number of concurrent runs — the harness runner, Prefill's
// mechanism fan-out and the snaked worker pool all draw from one store
// instead of regenerating the trace per run.
//
// Callers must treat returned kernels as immutable; a caller that needs a
// private copy must make one.
type Store struct {
	mu      sync.Mutex
	entries map[storeKey]*storeEntry
	apps    map[appKey]*appEntry
	builds  atomic.Int64
}

// storeKey identifies one interned kernel. The Scale is normalized (defaults
// applied) before keying, so Scale{} and DefaultScale() share an entry.
type storeKey struct {
	bench string
	sc    Scale
}

// storeEntry is one in-flight or completed build. The creating goroutine
// builds the kernel and closes done; other callers of the same key block on
// done.
type storeEntry struct {
	done chan struct{}
	k    *trace.Kernel
	err  error
}

// appKey identifies one interned application: the app name, the normalized
// kernel scale, and the SM-partition geometry the masks were resolved for.
type appKey struct {
	name  string
	sc    Scale
	numSM int
	split int
}

// appEntry is one in-flight or completed app assembly, with the content
// digest computed once at intern time (it hashes every kernel, so callers
// building cache keys must not recompute it per run).
type appEntry struct {
	done   chan struct{}
	a      *trace.App
	digest string
	err    error
}

// NewStore returns an empty kernel store.
func NewStore() *Store {
	return &Store{
		entries: make(map[storeKey]*storeEntry),
		apps:    make(map[appKey]*appEntry),
	}
}

// shared is the process-wide store all default call paths intern through.
var shared = NewStore()

// Shared returns the process-wide kernel store.
func Shared() *Store { return shared }

// Kernel returns the interned kernel for (bench, sc), building it on first
// use. Concurrent callers of the same key share one build: exactly one
// goroutine runs the generator, the rest wait. Failed builds (an unknown
// benchmark name) are not retained, so they do not grow the store.
func (s *Store) Kernel(bench string, sc Scale) (*trace.Kernel, error) {
	key := storeKey{bench: bench, sc: sc.withDefaults()}
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.mu.Unlock()
		<-e.done
		return e.k, e.err
	}
	e = &storeEntry{done: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()

	e.k, e.err = Build(bench, sc)
	if e.err == nil {
		s.builds.Add(1)
	} else {
		s.mu.Lock()
		delete(s.entries, key)
		s.mu.Unlock()
	}
	close(e.done)
	return e.k, e.err
}

// App returns the interned application for (name, sc, numSM, split) plus its
// content digest, assembling it on first use. Kernels are fetched through
// s.Kernel, so an app and the single-kernel runs of its constituent
// benchmarks share one trace per (bench, scale) — Builds counts kernel
// builds, and interning an app of already-interned kernels performs none.
func (s *Store) App(name string, sc Scale, numSM, split int) (*trace.App, string, error) {
	key := appKey{name: name, sc: sc.withDefaults(), numSM: numSM, split: split}
	s.mu.Lock()
	e, ok := s.apps[key]
	if ok {
		s.mu.Unlock()
		<-e.done
		return e.a, e.digest, e.err
	}
	e = &appEntry{done: make(chan struct{})}
	s.apps[key] = e
	s.mu.Unlock()

	e.a, e.err = assembleApp(name, sc, numSM, split, func(bench string) (*trace.Kernel, error) {
		return s.Kernel(bench, sc)
	})
	if e.err == nil {
		e.digest, e.err = e.a.Digest()
	}
	if e.err != nil {
		s.mu.Lock()
		delete(s.apps, key)
		s.mu.Unlock()
	}
	close(e.done)
	return e.a, e.digest, e.err
}

// Builds returns how many kernels this store has built — the proof that
// callers share traces instead of regenerating them (e.g. a Prefill over N
// mechanisms of one benchmark performs one build, not N).
func (s *Store) Builds() int64 { return s.builds.Load() }

// Len returns the number of interned kernels.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
