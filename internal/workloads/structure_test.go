package workloads

import (
	"testing"

	"snake/internal/trace"
)

// Structural property tests: each benchmark's documented access structure —
// the properties that make the paper's per-benchmark results come out — is
// pinned here so workload edits cannot silently change the story.

func loadsOf(t *testing.T, name string) []trace.Inst {
	t.Helper()
	k, err := Build(name, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return k.CTAs[0].Warps[0].Loads()
}

func TestCPAtomCoordinatesShareALine(t *testing.T) {
	loads := loadsOf(t, "cp")
	// Four coordinate reads per atom at 32-byte spacing: all in one line.
	l0 := loads[0].Addr &^ 127
	for i := 1; i < 4; i++ {
		if loads[i].Addr&^127 != l0 {
			t.Fatalf("cp atom read %d left the record's line", i)
		}
	}
	// The next atom record starts a new group at +128.
	if loads[4].Addr != loads[0].Addr+128 {
		t.Errorf("cp record stride = %d, want 128", loads[4].Addr-loads[0].Addr)
	}
}

func TestLIBHasZeroReuse(t *testing.T) {
	loads := loadsOf(t, "lib")
	seen := map[uint64]bool{}
	for _, in := range loads {
		line := in.Addr &^ 127
		if seen[line] {
			t.Fatalf("lib revisited line %#x; it must stream with zero reuse", line)
		}
		seen[line] = true
	}
}

func TestLIBInterArrayDeltasFixed(t *testing.T) {
	loads := loadsOf(t, "lib")
	d01 := int64(loads[1].Addr) - int64(loads[0].Addr)
	d12 := int64(loads[2].Addr) - int64(loads[1].Addr)
	d34 := int64(loads[4].Addr) - int64(loads[3].Addr)
	if d01 != d34 {
		t.Errorf("lib chain delta changed across iterations: %d vs %d", d01, d34)
	}
	if d01 == 0 || d12 == 0 {
		t.Error("lib arrays overlap")
	}
}

func TestMUMJumpsNeverRepeatDeltas(t *testing.T) {
	loads := loadsOf(t, "mum")
	// Node-load deltas (every 3rd load starting at 0) must not repeat.
	seen := map[int64]int{}
	for i := 3; i < len(loads); i += 3 {
		d := int64(loads[i].Addr) - int64(loads[i-3].Addr)
		seen[d]++
	}
	for d, n := range seen {
		if n >= 3 {
			t.Errorf("mum node-jump delta %d repeats %d times; must stay untrainable", d, n)
		}
	}
}

func TestBackpropInnerLoopIsSinglePCFixedStride(t *testing.T) {
	loads := loadsOf(t, "backprop")
	// After the one-off input read, the forward loop re-executes one PC with
	// a fixed stride (the Rodinia weight-column walk).
	pc := loads[1].PC
	var prev uint64
	var stride int64
	for i, in := range loads[1:] {
		if in.PC != pc {
			break
		}
		if i == 1 {
			stride = int64(in.Addr) - int64(prev)
		} else if i > 1 {
			if d := int64(in.Addr) - int64(prev); d != stride {
				t.Fatalf("backprop weight stride changed: %d vs %d", d, stride)
			}
		}
		prev = in.Addr
	}
	if stride == 0 {
		t.Fatal("backprop weight walk has no stride")
	}
}

func TestHistoVectorizedInputChain(t *testing.T) {
	loads := loadsOf(t, "histo")
	// Four consecutive-line input loads then one scattered bin load.
	for i := 1; i < 4; i++ {
		if loads[i].Addr != loads[i-1].Addr+128 {
			t.Fatalf("histo input chain broken at %d", i)
		}
	}
	if loads[4].Addr == loads[3].Addr+128 {
		t.Error("histo bin load looks sequential; it must be scattered")
	}
}

func TestHotspotStencilOffsetsFixed(t *testing.T) {
	loads := loadsOf(t, "hotspot")
	// Six loads per row; the offsets between consecutive PCs repeat exactly
	// in the next row (the chain Snake trains on).
	for i := 0; i < 5; i++ {
		d0 := int64(loads[i+1].Addr) - int64(loads[i].Addr)
		d1 := int64(loads[i+7].Addr) - int64(loads[i+6].Addr)
		if d0 != d1 {
			t.Fatalf("hotspot chain delta %d changed between rows: %d vs %d", i, d0, d1)
		}
	}
}

func TestSradHasBarrierBetweenPhases(t *testing.T) {
	k, _ := Build("srad", Tiny())
	found := false
	for _, in := range k.CTAs[0].Warps[0].Insts {
		if in.Op == trace.OpBarrier {
			found = true
		}
	}
	if !found {
		t.Error("srad lost its phase barrier")
	}
}

func TestMRQBroadcastSharedAcrossWarps(t *testing.T) {
	k, _ := Build("mrq", Tiny())
	w0 := k.CTAs[0].Warps[0].Loads()
	w1 := k.CTAs[0].Warps[1].Loads()
	// The k-space walk (loads from index 2 on) is identical across warps of
	// a CTA: that sharing is what makes mrq compute-bound in the baseline.
	if w0[2].Addr != w1[2].Addr || w0[4].Addr != w1[4].Addr {
		t.Error("mrq k-space walk no longer shared across warps")
	}
}

func TestNWNorthOffsetNeverRecurs(t *testing.T) {
	loads := loadsOf(t, "nw")
	// The north-cell load (every 3rd) must have per-step-unique deltas.
	seen := map[int64]int{}
	for i := 5; i < len(loads); i += 3 {
		d := int64(loads[i].Addr) - int64(loads[i-3].Addr)
		seen[d]++
		if seen[d] >= 3 {
			t.Fatalf("nw north delta %d recurred; low repetition is nw's defining property", d)
		}
	}
}

func TestLUDWithinIterationDeltasFixed(t *testing.T) {
	loads := loadsOf(t, "lud")
	// Deltas within an iteration (loads 0-3) are identical in iteration 2
	// (loads 4-7) even though the iteration step varies.
	for i := 0; i < 3; i++ {
		d0 := int64(loads[i+1].Addr) - int64(loads[i].Addr)
		d1 := int64(loads[i+5].Addr) - int64(loads[i+4].Addr)
		if d0 != d1 {
			t.Fatalf("lud within-iteration delta %d not fixed: %d vs %d", i, d0, d1)
		}
	}
}
