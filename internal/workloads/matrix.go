package workloads

import "snake/internal/trace"

// Matrix-structured benchmarks: Backprop, LUD.

// Backprop reproduces the Rodinia back-propagation layer kernel: a forward
// phase reading the input activations and a weight row per step, a CTA
// barrier, then a weight-adjustment phase reading weights and deltas. The
// input/weight/delta arrays sit at fixed offsets, giving stable inter-thread
// chains; the loop over hidden units gives fixed per-PC strides too.
func Backprop(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		inBase     = 0xB000_0000
		weightBase = 0xB400_0000
		deltaBase  = 0xB800_0000
		rowBytes   = 4 * kb
		pcBase     = 0xA000
	)
	hidden := sc.Iters
	k := &trace.Kernel{Name: "backprop"}
	for c := 0; c < sc.CTAs; c++ {
		cta := trace.CTA{ID: c, BaseAddr: inBase + uint64(c)*uint64(sc.WarpsPerCTA)*rowBytes}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			in := cta.BaseAddr + uint64(w)*rowBytes
			wrow := weightBase + (in-inBase)*4
			// Forward (bpnn_layerforward): the input activation is read once;
			// the inner loop walks the weight matrix column at a fixed
			// row stride — a single-PC loop whose stride every mechanism can
			// train, matching the Rodinia kernel's global-memory behaviour.
			b.Load(pcBase+0, in, 4)
			for h := 0; h < hidden; h++ {
				b.Load(pcBase+8, wrow+uint64(h)*rowBytes, 4) // weight[h][tid]
				b.Compute(pcBase+16, 6)
			}
			b.Barrier(pcBase + 24)
			// Backward (bpnn_adjust_weights): delta read once per row, then
			// the weight column walked again and written back.
			b.Load(pcBase+32, deltaBase+(in-inBase), 4)
			for h := 0; h < hidden; h++ {
				b.Load(pcBase+40, wrow+uint64(h)*rowBytes, 4)
				b.Compute(pcBase+48, 5)
				b.Store(pcBase+56, wrow+uint64(h)*rowBytes, 4)
			}
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+64)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}

// LUD reproduces the Rodinia LU-decomposition perimeter kernel: the active
// submatrix shrinks every iteration, so the per-PC stride changes from
// iteration to iteration — intra-warp and inter-warp training never
// converge. Within one iteration, however, the diagonal, row and column
// loads sit at fixed offsets from each other: a chain of strides that only
// Snake's inter-thread mechanism captures. This is the paper's
// "variable strides" case in its purest form.
func LUD(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		matBase = 0xC000_0000
		n       = 512 // matrix dimension in lines
		pcBase  = 0xB000
	)
	iters := sc.Iters
	rowBytes := uint64(n) * lineBytes
	k := &trace.Kernel{Name: "lud"}
	for c := 0; c < sc.CTAs; c++ {
		cta := trace.CTA{ID: c, BaseAddr: matBase + uint64(c)*rowBytes*4}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			diag := cta.BaseAddr + uint64(w)*2*lineBytes
			for it := 0; it < iters; it++ {
				// Fixed within-iteration chain: diag → row element → column
				// element at constant deltas.
				b.Load(pcBase+0, diag, 4)             // m[diag]
				b.Load(pcBase+8, diag+4*lineBytes, 4) // m[diag + k]
				b.Load(pcBase+16, diag+rowBytes, 4)   // m[diag + N]
				b.Load(pcBase+24, diag+rowBytes+4*lineBytes, 4)
				b.Compute(pcBase+32, 8)
				b.Store(pcBase+40, diag+rowBytes, 4)
				// The active submatrix shrinks: the step grows each
				// iteration, so no per-PC stride is ever fixed.
				diag += rowBytes + uint64(it+1)*2*lineBytes
			}
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+48)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}
