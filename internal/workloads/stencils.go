package workloads

import "snake/internal/trace"

// Stencil benchmarks: LPS, Hotspot, Srad. Stencils are where chains of
// strides are richest — each iteration touches several neighbours at fixed
// offsets from a moving index, so consecutive load PCs have stable deltas
// even when the per-PC behaviour is hard to train.

// LPS reproduces the 3D Laplace solver of Figure 7: per iteration of the
// k-loop a warp loads u1[ind] and u1[ind+KOFF] and stores u1[ind-KOFF] and
// u1[ind], with ind advancing by KOFF per iteration.
//
// Structure: an inter-thread chain PC1→PC2 with delta KOFF; intra-warp
// strides of KOFF on both PCs (deep loop: intra-warp trainable); fixed
// inter-warp strides within a CTA; fixed CTA base stride. Every mechanism
// gets some coverage here; Snake trains faster (3 warps once, not 3
// iterations per warp per PC) and adds the chain.
func LPS(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		u1Base   = 0x1000_0000
		koff     = 64 * kb // (BLOCK_X+2)*(BLOCK_Y+2) plane, in bytes
		warpSpan = 2 * lineBytes
		pcBase   = 0x1000
	)
	nz := sc.Iters // k-loop depth
	ctaSpan := uint64(sc.WarpsPerCTA * warpSpan)
	k := &trace.Kernel{Name: "lps"}
	for c := 0; c < sc.CTAs; c++ {
		cta := trace.CTA{ID: c, BaseAddr: u1Base + uint64(c)*ctaSpan}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			ind := cta.BaseAddr + uint64(w*warpSpan) + koff
			for kk := 0; kk < nz; kk++ {
				b.Compute(pcBase+0, 8)
				b.Load(pcBase+8, ind, 4)       // u1[ind]
				b.Load(pcBase+16, ind+koff, 4) // u1[ind+KOFF]
				b.Store(pcBase+24, ind-koff, 4)
				b.Store(pcBase+32, ind, 4)
				b.Compute(pcBase+40, 6)
				ind += koff
			}
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+48)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}

// Hotspot reproduces the Rodinia 2D thermal stencil: per row a warp loads
// five temperature neighbours and the power cell, all at fixed offsets from
// a moving index, then stores the result. The pyramid structure keeps the
// row loop shallow, which starves intra-warp training (2 of its ~R
// iterations are spent training per PC per warp); Snake's cross-warp chain
// training covers the same loads almost immediately, which is exactly the
// coverage gap the paper's Figure 16 shows.
func Hotspot(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		tempBase  = 0x2000_0000
		powerBase = 0x2800_0000
		outBase   = 0x3000_0000
		rowBytes  = 32 * kb
		warpSpan  = 2 * lineBytes
		pcBase    = 0x2000
	)
	rows := sc.Iters / 2
	if rows < 3 {
		rows = 3
	}
	ctaSpan := uint64(sc.WarpsPerCTA * warpSpan)
	k := &trace.Kernel{Name: "hotspot"}
	for c := 0; c < sc.CTAs; c++ {
		cta := trace.CTA{ID: c, BaseAddr: tempBase + uint64(c)*ctaSpan}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			ind := cta.BaseAddr + uint64(w*warpSpan) + rowBytes
			for r := 0; r < rows; r++ {
				b.Load(pcBase+0, ind-rowBytes, 4)              // temp[ind-W]
				b.Load(pcBase+8, ind-lineBytes, 4)             // temp[ind-1] (prev line)
				b.Load(pcBase+16, ind, 4)                      // temp[ind]
				b.Load(pcBase+24, ind+lineBytes, 4)            // temp[ind+1] (next line)
				b.Load(pcBase+32, ind+rowBytes, 4)             // temp[ind+W]
				b.Load(pcBase+40, powerBase+(ind-tempBase), 4) // power[ind]
				b.Compute(pcBase+48, 10)
				b.Store(pcBase+56, outBase+(ind-tempBase), 4)
				ind += rowBytes
			}
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+64)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}

// Srad reproduces the Rodinia speckle-reducing diffusion kernel: a stencil
// phase over four neighbours followed by a coefficient phase, separated by a
// barrier. All warps issue their bursts together, which congests the miss
// queue — the paper notes Srad's high baseline hit rate but "bursty misses,
// leading to resource congestion" that Snake's precise prefetching relieves
// (§5.2).
func Srad(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		imgBase  = 0x4000_0000
		cBase    = 0x4800_0000
		rowBytes = 16 * kb
		warpSpan = lineBytes
		pcBase   = 0x3000
	)
	rows := sc.Iters / 2
	if rows < 3 {
		rows = 3
	}
	ctaSpan := uint64(sc.WarpsPerCTA * warpSpan * 4)
	k := &trace.Kernel{Name: "srad"}
	for c := 0; c < sc.CTAs; c++ {
		cta := trace.CTA{ID: c, BaseAddr: imgBase + uint64(c)*ctaSpan}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			ind := cta.BaseAddr + uint64(w*warpSpan*4) + rowBytes
			// Phase 1: gradient stencil (chain of four neighbour loads).
			for r := 0; r < rows; r++ {
				b.Load(pcBase+0, ind-rowBytes, 4)
				b.Load(pcBase+8, ind+rowBytes, 4)
				b.Load(pcBase+16, ind-lineBytes, 4)
				b.Load(pcBase+24, ind+lineBytes, 4)
				b.Compute(pcBase+32, 8)
				b.Store(pcBase+40, cBase+(ind-imgBase), 4)
				ind += rowBytes
			}
			b.Barrier(pcBase + 48)
			// Phase 2: coefficient update reads back the stored c values.
			ind = cta.BaseAddr + uint64(w*warpSpan*4) + rowBytes
			for r := 0; r < rows; r++ {
				b.Load(pcBase+56, cBase+(ind-imgBase), 4)
				b.Load(pcBase+64, cBase+(ind-imgBase)+rowBytes, 4)
				b.Compute(pcBase+72, 6)
				b.Store(pcBase+80, ind, 4)
				ind += rowBytes
			}
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+88)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}

// withID stamps the warp's index within its CTA.
func withID(id int, w trace.WarpProgram) trace.WarpProgram {
	w.IDInCTA = id
	return w
}
