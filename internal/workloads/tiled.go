package workloads

import "snake/internal/trace"

// TiledConv builds the §5.6 tiled convolution (modelled by matrix
// multiplication): a fixed total volume of input data is processed in two
// passes (a streaming pass and a re-read pass, the reuse that tiling exists
// to exploit). With tiling, the two passes run tile by tile with CTA
// barriers between phases, so the re-read pass hits in the cache whenever
// the tile fits; untiled (tileFrac <= 0), the re-read happens after the
// whole stream and misses everywhere.
//
// tileFrac sets the tile size as a fraction of the unified cache space.
// Snake detects the stride between tiles ("calculating the distances
// between the elements of tiles") and prefetches the following tile's
// segment while the current tile is being computed (§3.5).
func TiledConv(sc Scale, tileFrac float64, unifiedBytes int) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		inBase  = 0xD000_0000
		outBase = 0xDF00_0000
		pcBase  = 0xC000
	)
	// Fixed total volume per CTA, independent of the tile size.
	totalLinesPerWarp := sc.Iters * 8
	totalTileLines := totalLinesPerWarp * sc.WarpsPerCTA

	name := "tiledconv"
	tileLines := totalTileLines // untiled: one "tile" spanning everything
	if tileFrac > 0 {
		tileLines = int(tileFrac * float64(unifiedBytes) / lineBytes)
		if tileLines < sc.WarpsPerCTA {
			tileLines = sc.WarpsPerCTA
		}
		if tileLines > totalTileLines {
			tileLines = totalTileLines
		}
	} else {
		name = "conv-untiled"
	}
	linesPerWarp := tileLines / sc.WarpsPerCTA
	tiles := totalLinesPerWarp / linesPerWarp
	if tiles < 1 {
		tiles = 1
	}

	ctaSpan := uint64(totalTileLines) * lineBytes
	k := &trace.Kernel{Name: name}
	for c := 0; c < sc.CTAs; c++ {
		ctaBase := uint64(inBase) + uint64(c)*ctaSpan
		cta := trace.CTA{ID: c, BaseAddr: ctaBase}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			for t := 0; t < tiles; t++ {
				tileBase := ctaBase + uint64(t*tileLines)*lineBytes
				p := tileBase + uint64(w*linesPerWarp)*lineBytes
				// Phase 1 — cooperative tile load: consecutive lines (a
				// chain with line-sized deltas and a fixed tile-to-tile
				// stride that Snake can follow into the next tile).
				for l := 0; l < linesPerWarp; l++ {
					b.Load(pcBase+0, p, 4)
					b.Compute(pcBase+8, 4)
					p += lineBytes
				}
				if tileFrac > 0 {
					b.Barrier(pcBase + 16)
				}
				// Phase 2 — compute on the tile, re-reading it: these loads
				// hit iff the tile still fits in the cache.
				p = tileBase + uint64(w*linesPerWarp)*lineBytes
				for l := 0; l < linesPerWarp; l++ {
					b.Load(pcBase+24, p, 4)
					b.Compute(pcBase+32, 10)
					p += lineBytes
				}
				if tileFrac > 0 {
					b.Barrier(pcBase + 40)
				}
			}
			b.Store(pcBase+48, outBase+uint64(gwarp(c, w, sc.WarpsPerCTA))*lineBytes, 4)
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+56)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}
