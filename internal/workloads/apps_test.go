package workloads

import (
	"testing"
)

func TestBuildAppAll(t *testing.T) {
	for _, name := range AppNames() {
		a, err := BuildApp(name, Tiny(), 4, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name != name {
			t.Errorf("%s: app named %q", name, a.Name)
		}
	}
}

func TestBuildAppUnknown(t *testing.T) {
	if _, err := BuildApp("nope", Tiny(), 4, 0); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestBuildAppMaskGeometry(t *testing.T) {
	a, err := BuildApp("cotenant", Tiny(), 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Launches[0].SMMask; got != 0x3 {
		t.Errorf("lower mask = %#x, want 0x3", got)
	}
	if got := a.Launches[1].SMMask; got != 0x3c {
		t.Errorf("upper mask = %#x, want 0x3c", got)
	}
	// Default split is an even halving.
	a, err = BuildApp("cotenant", Tiny(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Launches[0].SMMask != 0x3 || a.Launches[1].SMMask != 0xc {
		t.Errorf("default split masks = %#x/%#x, want 0x3/0xc",
			a.Launches[0].SMMask, a.Launches[1].SMMask)
	}
	// 64 SMs is the mask-width boundary; the upper mask must not overflow.
	a, err = BuildApp("cotenant", Tiny(), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Launches[0].SMMask | a.Launches[1].SMMask; got != ^uint64(0) {
		t.Errorf("64-SM masks do not cover the machine: %#x", got)
	}
	if a.Launches[0].SMMask&a.Launches[1].SMMask != 0 {
		t.Error("tenant masks overlap")
	}
}

func TestBuildAppMaskErrors(t *testing.T) {
	cases := []struct {
		numSM, split int
	}{
		{1, 0},  // too few SMs to partition
		{65, 0}, // beyond the 64-bit mask
		{4, 4},  // tenant 0 takes every SM
		{4, -1}, // negative share
	}
	for _, tc := range cases {
		if _, err := BuildApp("cotenant", Tiny(), tc.numSM, tc.split); err == nil {
			t.Errorf("numSM=%d split=%d accepted", tc.numSM, tc.split)
		}
	}
	// Full-mask apps don't partition and accept any machine.
	if _, err := BuildApp("warmup", Tiny(), 0, 0); err != nil {
		t.Errorf("full-mask app rejected: %v", err)
	}
}

// TestStoreAppSharesKernels: interning an app reuses the store's interned
// kernels — the "warmup" app relaunches one kernel three times but builds it
// once, and a later single-kernel fetch of the same benchmark builds nothing.
func TestStoreAppSharesKernels(t *testing.T) {
	s := NewStore()
	a, digest, err := s.App("warmup", Tiny(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if digest == "" {
		t.Error("empty digest")
	}
	if got := s.Builds(); got != 1 {
		t.Errorf("builds after app intern = %d, want 1", got)
	}
	if a.Launches[0].Kernel != a.Launches[1].Kernel {
		t.Error("relaunched kernel not shared within the app")
	}
	k, err := s.Kernel("lps", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if k != a.Launches[0].Kernel {
		t.Error("app kernel not shared with the single-kernel store path")
	}
	if got := s.Builds(); got != 1 {
		t.Errorf("builds after kernel fetch = %d, want 1", got)
	}
	// A second intern of the same key returns the same app and digest.
	a2, d2, err := s.App("warmup", Tiny(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a || d2 != digest {
		t.Error("re-intern did not share the entry")
	}
	// Failed assemblies are not retained.
	if _, _, err := s.App("nope", Tiny(), 4, 0); err == nil {
		t.Error("unknown app accepted")
	}
	if _, _, err := s.App("cotenant", Tiny(), 1, 0); err == nil {
		t.Error("unpartitionable machine accepted")
	}
}
