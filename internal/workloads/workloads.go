// Package workloads generates synthetic per-warp instruction/address traces
// reproducing the access structure of the paper's benchmark suite (Table 2):
// CP, LPS, LIB, MUM from ISPASS; Backprop, Hotspot, Srad, lud, nw from
// Rodinia; histo and MRQ from Parboil. Each generator documents the pattern
// it reproduces and which prefetching mechanisms it favours; the shapes of
// the paper's figures emerge from these structures rather than from any
// per-mechanism tuning.
package workloads

import (
	"fmt"
	"sort"

	"snake/internal/trace"
)

// Byte-size helpers.
const (
	kb = 1 << 10
	mb = 1 << 20
)

// lineBytes is the cache-line granularity the generators assume (Table 1).
const lineBytes = 128

// Scale controls workload size. Experiments use DefaultScale; tests shrink
// it for speed.
type Scale struct {
	CTAs        int
	WarpsPerCTA int
	Iters       int // loop-depth multiplier
}

// DefaultScale sizes workloads for the scaled simulator configuration
// (config.Scaled(4, 32)): three waves of CTAs so inter-CTA prefetching has
// future CTAs to target.
func DefaultScale() Scale { return Scale{CTAs: 48, WarpsPerCTA: 8, Iters: 12} }

// Tiny returns a minimal scale for unit tests.
func Tiny() Scale { return Scale{CTAs: 4, WarpsPerCTA: 2, Iters: 4} }

func (s Scale) withDefaults() Scale {
	d := DefaultScale()
	if s.CTAs <= 0 {
		s.CTAs = d.CTAs
	}
	if s.WarpsPerCTA <= 0 {
		s.WarpsPerCTA = d.WarpsPerCTA
	}
	if s.Iters <= 0 {
		s.Iters = d.Iters
	}
	return s
}

// Builder constructs a kernel at the given scale.
type Builder func(Scale) *trace.Kernel

var registry = map[string]Builder{
	"cp":       CP,
	"lps":      LPS,
	"lib":      LIB,
	"mum":      MUM,
	"backprop": Backprop,
	"hotspot":  Hotspot,
	"srad":     Srad,
	"lud":      LUD,
	"nw":       NW,
	"histo":    Histo,
	"mrq":      MRQ,
}

// tableOrder is the Table 2 presentation order.
var tableOrder = []string{
	"cp", "lps", "lib", "mum", "backprop", "hotspot", "srad", "lud", "nw", "histo", "mrq",
}

// Names returns the benchmark names in Table 2 order.
func Names() []string {
	out := make([]string, len(tableOrder))
	copy(out, tableOrder)
	return out
}

// FullNames maps the abbreviation to the Table 2 full benchmark name.
func FullNames() map[string]string {
	return map[string]string{
		"cp":       "Coulombic Potential (ISPASS)",
		"lps":      "3D Laplace Solver (ISPASS)",
		"lib":      "LIBOR Monte Carlo (ISPASS)",
		"mum":      "MUMmerGPU (ISPASS)",
		"backprop": "Back Propagation (Rodinia)",
		"hotspot":  "HotSpot (Rodinia)",
		"srad":     "Speckle Reducing Anisotropic Diffusion (Rodinia)",
		"lud":      "LU Decomposition (Rodinia)",
		"nw":       "Needleman-Wunsch (Rodinia)",
		"histo":    "Histogram (Parboil)",
		"mrq":      "mri-q (Parboil)",
	}
}

// Build constructs the named benchmark's kernel.
func Build(name string, sc Scale) (*trace.Kernel, error) {
	b, ok := registry[name]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("workloads: unknown benchmark %q (known: %v)", name, known)
	}
	return b(sc.withDefaults()), nil
}

// mix is splitmix64: a deterministic pseudo-random mixer used for irregular
// (data-dependent) address streams. No global state, fully reproducible.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// irregular returns a pseudo-random line-aligned address within
// [base, base+span).
func irregular(base uint64, span uint64, seed uint64) uint64 {
	off := mix(seed) % (span / lineBytes)
	return base + off*lineBytes
}

// gwarp returns the global warp index of warp w in CTA c.
func gwarp(c, w, warpsPerCTA int) int { return c*warpsPerCTA + w }
