package workloads

import "snake/internal/trace"

// Linear-streaming benchmarks: CP, LIB, MRQ.

// CP reproduces the ISPASS Coulombic Potential kernel: each warp iterates
// over a block of atom records, reading the four coordinates of each atom at
// 32-byte spacing (an in-line chain: four loads per line, one miss then
// three hits) with heavy floating-point work per atom. Deep, perfectly
// regular loop — every stride mechanism trains; the application is partially
// compute-bound so the absolute gain is moderate.
func CP(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		atomBase = 0x5000_0000
		atomRec  = 32 // bytes per atom record
		pcBase   = 0x4000
	)
	iters := sc.Iters * 3
	recsPerWarp := uint64(iters)
	k := &trace.Kernel{Name: "cp"}
	for c := 0; c < sc.CTAs; c++ {
		ctaBase := atomBase + uint64(c)*uint64(sc.WarpsPerCTA)*recsPerWarp*4*atomRec
		cta := trace.CTA{ID: c, BaseAddr: ctaBase}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			p := ctaBase + uint64(w)*recsPerWarp*4*atomRec
			for i := 0; i < iters; i++ {
				b.Load(pcBase+0, p, 0)            // atom.x (broadcast within warp)
				b.Load(pcBase+8, p+atomRec, 0)    // atom.y
				b.Load(pcBase+16, p+2*atomRec, 0) // atom.z
				b.Load(pcBase+24, p+3*atomRec, 0) // atom.q
				b.Compute(pcBase+32, 36)
				p += 4 * atomRec
			}
			b.Store(pcBase+40, 0x5F00_0000+uint64(gwarp(c, w, sc.WarpsPerCTA))*lineBytes, 4)
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+48)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}

// LIB reproduces the ISPASS LIBOR Monte Carlo kernel: each warp walks three
// large per-warp arrays (forward rates, volatilities, accruals) with a
// 512-byte step — far larger than a cache line, so the baseline gets no
// reuse at all and the L1 hit rate collapses. The paper reports LIB as
// Snake's largest win ("increases the L1 data cache hit rate by 10×",
// §5.2): all three PCs chain with fixed inter-array deltas and a fixed
// per-iteration stride, so a trained prefetcher converts every miss.
func LIB(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		base   = 0x6000_0000
		arrGap = 16 * mb // delta between the three arrays
		step   = 512     // per-iteration stride (> line: zero reuse)
		pcBase = 0x5000
	)
	iters := sc.Iters * 8
	warpSpan := uint64(iters * step)
	k := &trace.Kernel{Name: "lib"}
	for c := 0; c < sc.CTAs; c++ {
		ctaBase := uint64(base) + uint64(c)*uint64(sc.WarpsPerCTA)*warpSpan
		cta := trace.CTA{ID: c, BaseAddr: ctaBase}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			p := ctaBase + uint64(w)*warpSpan
			for i := 0; i < iters; i++ {
				b.Load(pcBase+0, p, 4)           // L[i]
				b.Load(pcBase+8, p+arrGap, 4)    // lambda[i]
				b.Load(pcBase+16, p+2*arrGap, 4) // accrual[i]
				b.Compute(pcBase+24, 8)
				b.Store(pcBase+32, p+3*arrGap, 4)
				p += step
			}
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+40)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}

// MRQ reproduces the Parboil mri-q kernel: a deep loop over k-space samples
// shared by all warps (broadcast reuse) with substantial trigonometric work
// per sample. Memory traffic is light relative to compute, so prefetching
// helps latency but the end-to-end gain is bounded by the compute — the
// smallest bars in the paper's Figure 18.
func MRQ(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		kBase  = 0x7000_0000
		xBase  = 0x7400_0000
		rec    = 16
		pcBase = 0x6000
	)
	iters := sc.Iters * 4
	k := &trace.Kernel{Name: "mrq"}
	for c := 0; c < sc.CTAs; c++ {
		cta := trace.CTA{ID: c, BaseAddr: kBase + uint64(c)*4*kb}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			// Per-thread x/y/z read once at entry.
			x := xBase + uint64(gwarp(c, w, sc.WarpsPerCTA))*lineBytes
			b.Load(pcBase+0, x, 4)
			b.Load(pcBase+8, x+4*mb, 4)
			// k-space walk: same addresses across all warps of a CTA.
			p := cta.BaseAddr
			for i := 0; i < iters; i++ {
				b.Load(pcBase+16, p, 0)     // kVals[i] (broadcast)
				b.Load(pcBase+24, p+rec, 0) // phi[i]
				b.Compute(pcBase+32, 48)    // sin/cos heavy
				p += 2 * rec
			}
			b.Store(pcBase+40, 0x7F00_0000+uint64(gwarp(c, w, sc.WarpsPerCTA))*lineBytes, 4)
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+48)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}
