package workloads

import (
	"path/filepath"
	"reflect"
	"testing"

	"snake/internal/trace"
)

// TestTraceRoundTripDefaultScale serializes a full DefaultScale kernel
// through both on-disk formats (gzip+gob binary and JSON) and demands the
// reloaded kernel match the original exactly. Smaller round-trip tests live
// in the trace package; this one covers a production-sized trace with every
// instruction kind the generators emit, through the interned-store path the
// tools use.
func TestTraceRoundTripDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("DefaultScale round-trip writes multi-MB files")
	}
	k, err := NewStore().Kernel("lps", DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"lps.trace", "lps.json"} {
		path := filepath.Join(dir, name)
		if err := k.SaveFile(path); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := trace.LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !reflect.DeepEqual(got, k) {
			t.Errorf("%s: reloaded kernel differs from original", name)
		}
	}
}

// TestAppRoundTripDefaultScale is the application-trace counterpart: a
// DefaultScale multi-kernel app with masks, tenants and dependency edges
// through both on-disk formats (gob+gzip binary with the app magic, and
// JSON), loaded back bit-equal and with its content digest preserved —
// digests key the result caches, so serialization must not perturb them.
func TestAppRoundTripDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("DefaultScale round-trip writes multi-MB files")
	}
	a, digest, err := NewStore().App("fanout", DefaultScale(), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"fanout.app", "fanout.json"} {
		path := filepath.Join(dir, name)
		if err := a.SaveFile(path); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := trace.LoadAppFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Errorf("%s: reloaded app differs from original", name)
		}
		d2, err := got.Digest()
		if err != nil {
			t.Fatalf("%s: digest: %v", name, err)
		}
		if d2 != digest {
			t.Errorf("%s: digest changed across round trip", name)
		}
	}
}
