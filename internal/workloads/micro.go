package workloads

import "snake/internal/trace"

// Microbenchmarks with precisely known properties, used by tests and the
// quickstart example.

// StreamMicro builds a kernel in which every warp streams a private region
// with a fixed per-iteration stride and a two-PC chain: load A[i], load
// B[i] (= A[i] + gap), compute, advance. Everything about it is trainable.
func StreamMicro(sc Scale, stepBytes int) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		base   = 0xE000_0000
		gap    = 8 * mb
		pcBase = 0xD000
	)
	if stepBytes <= 0 {
		stepBytes = 2 * lineBytes
	}
	iters := sc.Iters * 4
	warpSpan := uint64(iters * stepBytes)
	k := &trace.Kernel{Name: "stream-micro"}
	for c := 0; c < sc.CTAs; c++ {
		ctaBase := uint64(base) + uint64(c)*uint64(sc.WarpsPerCTA)*warpSpan
		cta := trace.CTA{ID: c, BaseAddr: ctaBase}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			p := ctaBase + uint64(w)*warpSpan
			for i := 0; i < iters; i++ {
				b.Load(pcBase+0, p, 4)
				b.Load(pcBase+8, p+gap, 4)
				b.Compute(pcBase+16, 4)
				p += uint64(stepBytes)
			}
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+24)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}

// RandomMicro builds a kernel whose loads are uniformly pseudo-random: no
// prefetcher (including the Ideal oracle) should cover it.
func RandomMicro(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		base   = 0xE800_0000
		span   = 256 * mb
		pcBase = 0xD800
	)
	iters := sc.Iters * 4
	k := &trace.Kernel{Name: "random-micro"}
	for c := 0; c < sc.CTAs; c++ {
		cta := trace.CTA{ID: c, BaseAddr: base + uint64(c)*4*kb}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			g := uint64(gwarp(c, w, sc.WarpsPerCTA))
			for i := 0; i < iters; i++ {
				b.Load(pcBase+0, irregular(base, span, g*2_000_003+uint64(i)), 0)
				b.Compute(pcBase+8, 4)
			}
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+16)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}

// DivergenceMicro builds a kernel whose loads use the given per-thread
// stride: 4 bytes is perfectly coalesced (one transaction per warp access),
// larger strides split each access into multiple line transactions — the
// divergent pattern §1 lists among the GPU-specific prefetching challenges.
func DivergenceMicro(sc Scale, threadStride int32) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		base   = 0xEC00_0000
		pcBase = 0xDC00
	)
	iters := sc.Iters * 4
	footprint := uint64(iters) * uint64(threadStride) * 32
	k := &trace.Kernel{Name: "divergence-micro"}
	for c := 0; c < sc.CTAs; c++ {
		cta := trace.CTA{ID: c, BaseAddr: base + uint64(c)*uint64(sc.WarpsPerCTA)*footprint}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			p := cta.BaseAddr + uint64(w)*footprint
			for i := 0; i < iters; i++ {
				b.Load(pcBase+0, p, threadStride)
				b.Compute(pcBase+8, 4)
				p += uint64(threadStride) * 32
			}
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+16)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}

// ChainOnlyMicro builds a kernel whose chain deltas are fixed but whose
// per-PC strides vary every iteration (the LUD-style pattern): only a
// chain-based prefetcher can cover the chain body.
func ChainOnlyMicro(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		base   = 0xF000_0000
		delta1 = 16 * kb
		delta2 = 32 * kb
		pcBase = 0xE000
	)
	iters := sc.Iters * 2
	k := &trace.Kernel{Name: "chain-micro"}
	for c := 0; c < sc.CTAs; c++ {
		cta := trace.CTA{ID: c, BaseAddr: base + uint64(c)*mb}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			p := cta.BaseAddr + uint64(w)*4*lineBytes
			for i := 0; i < iters; i++ {
				b.Load(pcBase+0, p, 4)         // root: irregular per-PC stride
				b.Load(pcBase+8, p+delta1, 4)  // chain member 1
				b.Load(pcBase+16, p+delta2, 4) // chain member 2
				b.Compute(pcBase+24, 6)
				p += uint64(i+1) * 3 * lineBytes // growing step: no fixed per-PC stride
			}
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+32)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}
