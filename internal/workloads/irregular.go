package workloads

import "snake/internal/trace"

// Irregular / low-repetition benchmarks: MUM, NW, Histo.

// MUM reproduces MUMmerGPU's suffix-tree traversal: each step jumps to a
// data-dependent node address (pseudo-random over a large tree region) and
// then to an equally data-dependent child, consulting the query string
// sequentially between jumps. Only the query stream is predictable — every
// prefetcher's coverage is low here, including the Ideal oracle (the jump
// strides never repeat).
func MUM(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		treeBase  = 0x8000_0000
		treeSpan  = 64 * mb
		queryBase = 0x8800_0000
		nodeSize  = 256 // spans two cache lines
		pcBase    = 0x7000
	)
	steps := sc.Iters * 3
	k := &trace.Kernel{Name: "mum"}
	for c := 0; c < sc.CTAs; c++ {
		cta := trace.CTA{ID: c, BaseAddr: treeBase + uint64(c)*8*kb}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			g := uint64(gwarp(c, w, sc.WarpsPerCTA))
			q := queryBase + g*uint64(steps)*lineBytes
			for i := 0; i < steps; i++ {
				node := irregular(treeBase, treeSpan, g*1_000_003+uint64(i))
				node = node &^ uint64(nodeSize-1)
				child := irregular(treeBase, treeSpan, g*2_000_003+uint64(i)+7)
				b.Load(pcBase+0, node, 0)  // node header (data-dependent)
				b.Load(pcBase+8, child, 0) // child node (data-dependent)
				b.Load(pcBase+16, q, 4)    // query chars (sequential)
				b.Compute(pcBase+24, 6)
				q += lineBytes
			}
			b.Store(pcBase+32, 0x8F00_0000+g*lineBytes, 4)
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+40)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}

// NW reproduces Needleman-Wunsch's diagonal wavefront: regular accesses
// whose pattern shifts every diagonal, so each (PC-pair, stride) repeats
// only a couple of times before changing — below Snake's three-warp
// promotion threshold most of the time. The paper singles nw out for low
// coverage "despite having regular memory access patterns ... due to the
// low number of repetitions of these patterns" (§5.1).
func NW(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		matBase  = 0x9000_0000
		refBase  = 0x9800_0000
		rowBytes = 8 * kb
		pcBase   = 0x8000
	)
	diags := sc.Iters
	k := &trace.Kernel{Name: "nw"}
	for c := 0; c < sc.CTAs; c++ {
		cta := trace.CTA{ID: c, BaseAddr: matBase + uint64(c)*64*kb}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			// Each warp walks a different diagonal: the per-step displacement
			// depends on the diagonal index, so strides differ across warps
			// and across steps — patterns never accumulate three confirmations.
			g := gwarp(c, w, sc.WarpsPerCTA)
			p := cta.BaseAddr + uint64(w)*rowBytes
			// nw's accesses are regular but their pattern shifts with the
			// diagonal index: the north-cell offset and the step both change
			// every wavefront step, so no (PC-pair, stride) ever repeats
			// enough to train — "the low number of repetitions of these
			// patterns" (§5.1). Only the west neighbour, one line over, is a
			// stable chain link.
			for d := 0; d < diags; d++ {
				b.Load(pcBase+0, p, 4)           // nw cell
				b.Load(pcBase+8, p+lineBytes, 4) // west cell (the one stable link)
				// The north offset depends on both the warp's diagonal and
				// the wavefront step, so it never recurs.
				northOff := rowBytes + uint64(d*512+g)*lineBytes
				b.Load(pcBase+16, p+northOff, 4)
				b.Compute(pcBase+24, 8)
				b.Store(pcBase+32, p+northOff+lineBytes, 4)
				p += uint64(g%5+1)*(rowBytes+lineBytes) + uint64(d)*lineBytes // shifting stride
			}
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+40)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}

// Histo reproduces the Parboil histogram kernel: a perfectly regular input
// scan (chain-friendly) feeding data-dependent bin updates (a scattered
// read-modify-write that no prefetcher covers). All warps burst their input
// loads together, producing the bursty misses and congestion stalls the
// paper highlights; covering just the input stream yields Histo's 33%
// speedup (§5.2).
func Histo(sc Scale) *trace.Kernel {
	sc = sc.withDefaults()
	const (
		inBase  = 0xA000_0000
		binBase = 0xA800_0000
		binSpan = 8 * mb
		pcBase  = 0x9000
	)
	iters := sc.Iters * 2
	const vec = 4 // input elements read per iteration (vectorized scan)
	warpSpan := uint64(iters*vec) * lineBytes
	k := &trace.Kernel{Name: "histo"}
	for c := 0; c < sc.CTAs; c++ {
		ctaBase := uint64(inBase) + uint64(c)*uint64(sc.WarpsPerCTA)*warpSpan
		cta := trace.CTA{ID: c, BaseAddr: ctaBase}
		for w := 0; w < sc.WarpsPerCTA; w++ {
			b := trace.NewBuilder()
			g := uint64(gwarp(c, w, sc.WarpsPerCTA))
			p := ctaBase + uint64(w)*warpSpan
			for i := 0; i < iters; i++ {
				// Vectorized input scan: four consecutive-line loads per
				// iteration (the inter-thread chain the input stream offers).
				for v := 0; v < vec; v++ {
					b.Load(pcBase+uint64(v)*8, p+uint64(v)*lineBytes, 4)
				}
				// Scattered bin read-modify-writes: data dependent, uncovered.
				bin := irregular(binBase, binSpan, g*7_777_777+uint64(i))
				b.Load(pcBase+40, bin, 0)
				b.Compute(pcBase+48, 4)
				b.Store(pcBase+56, bin, 0)
				p += vec * lineBytes
			}
			cta.Warps = append(cta.Warps, withID(w, b.Exit(pcBase+64)))
		}
		k.CTAs = append(k.CTAs, cta)
	}
	return k
}
