package workloads

import (
	"testing"

	"snake/internal/trace"
)

func TestAllBenchmarksBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		k, err := Build(name, Tiny())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := k.Validate(); err != nil {
			t.Errorf("%s: invalid kernel: %v", name, err)
		}
		if k.TotalLoads() == 0 {
			t.Errorf("%s: no loads", name)
		}
	}
}

func TestNamesMatchesRegistryAndFullNames(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("Table 2 lists 11 benchmarks, got %d", len(names))
	}
	full := FullNames()
	for _, n := range names {
		if _, ok := full[n]; !ok {
			t.Errorf("no full name for %q", n)
		}
		if _, err := Build(n, Tiny()); err != nil {
			t.Errorf("Build(%q) failed: %v", n, err)
		}
	}
}

func TestUnknownBenchmarkError(t *testing.T) {
	if _, err := Build("nope", Tiny()); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestScaleControlsSize(t *testing.T) {
	small, _ := Build("lps", Scale{CTAs: 2, WarpsPerCTA: 2, Iters: 4})
	big, _ := Build("lps", Scale{CTAs: 8, WarpsPerCTA: 4, Iters: 8})
	if small.TotalInsts() >= big.TotalInsts() {
		t.Errorf("scaling failed: small=%d big=%d", small.TotalInsts(), big.TotalInsts())
	}
	if len(small.CTAs) != 2 || len(small.CTAs[0].Warps) != 2 {
		t.Errorf("CTA/warp counts: %d/%d", len(small.CTAs), len(small.CTAs[0].Warps))
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, _ := Build("mum", Tiny())
	b, _ := Build("mum", Tiny())
	if a.TotalInsts() != b.TotalInsts() {
		t.Fatal("non-deterministic sizes")
	}
	for ci := range a.CTAs {
		for wi := range a.CTAs[ci].Warps {
			wa, wb := a.CTAs[ci].Warps[wi], b.CTAs[ci].Warps[wi]
			for ii := range wa.Insts {
				if wa.Insts[ii] != wb.Insts[ii] {
					t.Fatalf("kernel generation not deterministic at CTA %d warp %d inst %d", ci, wi, ii)
				}
			}
		}
	}
}

func TestCTABasesHaveFixedStride(t *testing.T) {
	// CTA-aware prefetching needs a fixed base stride; verify the regular
	// benchmarks provide one.
	for _, name := range []string{"lps", "lib", "hotspot", "cp"} {
		k, _ := Build(name, Tiny())
		if len(k.CTAs) < 3 {
			t.Fatalf("%s: need >= 3 CTAs", name)
		}
		d1 := int64(k.CTAs[1].BaseAddr) - int64(k.CTAs[0].BaseAddr)
		d2 := int64(k.CTAs[2].BaseAddr) - int64(k.CTAs[1].BaseAddr)
		if d1 != d2 || d1 == 0 {
			t.Errorf("%s: CTA base strides %d, %d not fixed", name, d1, d2)
		}
	}
}

func TestLPSHasInterThreadChain(t *testing.T) {
	k, _ := Build("lps", Tiny())
	w := k.CTAs[0].Warps[0]
	loads := w.Loads()
	if len(loads) < 2 {
		t.Fatal("lps warp has too few loads")
	}
	// Figure 7's chain: u1[ind] then u1[ind+KOFF], delta constant across
	// iterations.
	d0 := int64(loads[1].Addr) - int64(loads[0].Addr)
	d1 := int64(loads[3].Addr) - int64(loads[2].Addr)
	if d0 != d1 || d0 <= 0 {
		t.Errorf("lps inter-thread deltas %d, %d not constant", d0, d1)
	}
}

func TestLUDPerPCStridesVary(t *testing.T) {
	// LUD's defining property: the per-PC stride changes every iteration
	// (so fixed-stride prefetchers cannot train) while within-iteration
	// deltas stay fixed.
	k, _ := Build("lud", Tiny())
	loads := k.CTAs[0].Warps[0].Loads()
	perPC := map[uint64][]uint64{}
	for _, in := range loads {
		perPC[in.PC] = append(perPC[in.PC], in.Addr)
	}
	for pc, addrs := range perPC {
		if len(addrs) < 3 {
			continue
		}
		s1 := int64(addrs[1]) - int64(addrs[0])
		s2 := int64(addrs[2]) - int64(addrs[1])
		if s1 == s2 {
			t.Errorf("lud pc %#x has fixed stride %d; it must vary", pc, s1)
		}
	}
}

func TestStreamMicroStructure(t *testing.T) {
	k := StreamMicro(Tiny(), 256)
	loads := k.CTAs[0].Warps[0].Loads()
	if int64(loads[2].Addr)-int64(loads[0].Addr) != 256 {
		t.Errorf("stream step = %d, want 256", int64(loads[2].Addr)-int64(loads[0].Addr))
	}
}

func TestTiledConvBarriers(t *testing.T) {
	k := TiledConv(Tiny(), 0.5, 64*1024)
	found := false
	for _, in := range k.CTAs[0].Warps[0].Insts {
		if in.Op == trace.OpBarrier {
			found = true
			break
		}
	}
	if !found {
		t.Error("tiled kernel has no barriers")
	}
	if err := k.Validate(); err != nil {
		t.Errorf("tiledconv invalid: %v", err)
	}
	// Untiled variant validates too and has no barriers.
	u := TiledConv(Tiny(), 0, 64*1024)
	if err := u.Validate(); err != nil {
		t.Errorf("untiled invalid: %v", err)
	}
	for _, in := range u.CTAs[0].Warps[0].Insts {
		if in.Op == trace.OpBarrier {
			t.Error("untiled kernel must not have barriers")
		}
	}
}

func TestIrregularIsLineAlignedAndInRange(t *testing.T) {
	base, span := uint64(0x1000_0000), uint64(1<<20)
	for i := uint64(0); i < 1000; i++ {
		a := irregular(base, span, i)
		if a < base || a >= base+span {
			t.Fatalf("irregular address %#x out of range", a)
		}
		if a%lineBytes != 0 {
			t.Fatalf("irregular address %#x not line aligned", a)
		}
	}
}
