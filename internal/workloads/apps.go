package workloads

import (
	"fmt"
	"sort"

	"snake/internal/trace"
)

// Application workloads: synthetic multi-kernel and two-tenant Apps assembled
// from the Table 2 benchmark kernels. Each spec names the launch structure —
// dependency edges, SM placement, tenant IDs — and the kernels come from the
// same generators (and, through Store.App, the same interned instances) as
// the single-kernel suite.

// maskSel selects a launch's SM placement; the concrete bit mask is resolved
// at assembly time from the machine's SM count and the tenant-0 share.
type maskSel uint8

const (
	maskFull  maskSel = iota // all SMs (SMMask 0)
	maskLower                // SMs [0, split)
	maskUpper                // SMs [split, numSM)
)

// appLaunch is one launch slot in an app spec.
type appLaunch struct {
	bench  string
	deps   []int
	mask   maskSel
	tenant int
}

// appSpec declares an application's launch structure.
type appSpec struct {
	desc     string
	launches []appLaunch
}

// appRegistry holds the synthetic applications. "warmup" relaunches one
// kernel so chain tables trained by launch i directly cover launch i+1's
// addresses (the cleanest view of Snake's cross-launch warm-up); "pipeline"
// chains distinct kernels (producer→consumer); "cotenant" co-locates two
// tenants on disjoint SM halves with no ordering edges, contending through
// the shared L2/DRAM; "fanout" is a diamond — one producer, two dependent
// kernels running concurrently on disjoint halves, one join.
var appRegistry = map[string]appSpec{
	"warmup": {
		desc: "lps relaunched 3x (chain-table warm-up across launches)",
		launches: []appLaunch{
			{bench: "lps"},
			{bench: "lps", deps: []int{0}},
			{bench: "lps", deps: []int{1}},
		},
	},
	"pipeline": {
		desc: "cp -> hotspot -> lps (dependent multi-kernel chain)",
		launches: []appLaunch{
			{bench: "cp"},
			{bench: "hotspot", deps: []int{0}},
			{bench: "lps", deps: []int{1}},
		},
	},
	"cotenant": {
		desc: "lps (tenant 0, lower SMs) beside mum (tenant 1, upper SMs)",
		launches: []appLaunch{
			{bench: "lps", mask: maskLower},
			{bench: "mum", mask: maskUpper, tenant: 1},
		},
	},
	"fanout": {
		desc: "cp -> {hotspot, srad} on disjoint halves -> nw",
		launches: []appLaunch{
			{bench: "cp"},
			{bench: "hotspot", deps: []int{0}, mask: maskLower},
			{bench: "srad", deps: []int{0}, mask: maskUpper, tenant: 1},
			{bench: "nw", deps: []int{1, 2}},
		},
	},
}

// appOrder is the presentation order.
var appOrder = []string{"warmup", "pipeline", "cotenant", "fanout"}

// AppNames returns the application workload names in presentation order.
func AppNames() []string {
	out := make([]string, len(appOrder))
	copy(out, appOrder)
	return out
}

// AppDescriptions maps each application name to a one-line description.
func AppDescriptions() map[string]string {
	out := make(map[string]string, len(appRegistry))
	for name, spec := range appRegistry {
		out[name] = spec.desc
	}
	return out
}

// BuildApp constructs the named application at the given scale for a machine
// with numSM SMs. split is the tenant-0 SM share for half-mask placements
// (0: numSM/2); apps whose launches all use the full mask ignore both numSM
// and split.
func BuildApp(name string, sc Scale, numSM, split int) (*trace.App, error) {
	return assembleApp(name, sc, numSM, split, func(bench string) (*trace.Kernel, error) {
		return Build(bench, sc)
	})
}

// assembleApp resolves an app spec into a trace.App, fetching kernels through
// kernelFn (Build for standalone use, Store.Kernel for interned sharing).
func assembleApp(name string, sc Scale, numSM, split int, kernelFn func(bench string) (*trace.Kernel, error)) (*trace.App, error) {
	spec, ok := appRegistry[name]
	if !ok {
		known := make([]string, 0, len(appRegistry))
		for k := range appRegistry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("workloads: unknown app %q (known: %v)", name, known)
	}
	masked := false
	for _, l := range spec.launches {
		if l.mask != maskFull {
			masked = true
		}
	}
	if masked {
		if numSM < 2 || numSM > 64 {
			return nil, fmt.Errorf("workloads: app %q partitions SMs; need 2 <= NumSM <= 64, got %d", name, numSM)
		}
		if split == 0 {
			split = numSM / 2
		}
		if split < 1 || split >= numSM {
			return nil, fmt.Errorf("workloads: app %q tenant-0 SM share %d out of range [1, %d]", name, split, numSM-1)
		}
	}
	a := &trace.App{Name: name}
	for i, l := range spec.launches {
		k, err := kernelFn(l.bench)
		if err != nil {
			return nil, fmt.Errorf("workloads: app %q launch %d: %w", name, i, err)
		}
		var mask uint64
		switch l.mask {
		case maskLower:
			mask = (uint64(1) << uint(split)) - 1
		case maskUpper:
			mask = ((uint64(1) << uint(numSM)) - 1) &^ ((uint64(1) << uint(split)) - 1)
		}
		a.Launches = append(a.Launches, trace.KernelLaunch{
			Kernel:    k,
			DependsOn: l.deps,
			SMMask:    mask,
			Tenant:    l.tenant,
		})
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
