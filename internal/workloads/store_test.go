package workloads

import (
	"reflect"
	"sync"
	"testing"
)

// TestStoreInternsPerKey checks the interning contract: repeated lookups of
// one (bench, Scale) return the identical kernel pointer from a single
// build, while distinct benches or scales build separately.
func TestStoreInternsPerKey(t *testing.T) {
	s := NewStore()
	k1, err := s.Kernel("lps", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s.Kernel("lps", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("second lookup returned a different kernel pointer")
	}
	if got := s.Builds(); got != 1 {
		t.Errorf("Builds() = %d after two lookups of one key, want 1", got)
	}
	if _, err := s.Kernel("mum", Tiny()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Kernel("lps", Scale{CTAs: 2, WarpsPerCTA: 2, Iters: 2}); err != nil {
		t.Fatal(err)
	}
	if got := s.Builds(); got != 3 {
		t.Errorf("Builds() = %d across three distinct keys, want 3", got)
	}
	if got := s.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3", got)
	}
}

// TestStoreNormalizesScale checks that the zero Scale and the explicit
// default share one entry, like Build's withDefaults normalization.
func TestStoreNormalizesScale(t *testing.T) {
	s := NewStore()
	k1, err := s.Kernel("cp", Scale{})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s.Kernel("cp", DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("Scale{} and DefaultScale() interned separately")
	}
	if got := s.Builds(); got != 1 {
		t.Errorf("Builds() = %d, want 1", got)
	}
}

// TestStoreUnknownBenchNotCached checks the failure path: an unknown
// benchmark errors every time without growing the store.
func TestStoreUnknownBenchNotCached(t *testing.T) {
	s := NewStore()
	for i := 0; i < 2; i++ {
		if _, err := s.Kernel("no-such-bench", Tiny()); err == nil {
			t.Fatal("unknown benchmark did not error")
		}
	}
	if got := s.Len(); got != 0 {
		t.Errorf("failed builds left %d entries in the store", got)
	}
	if got := s.Builds(); got != 0 {
		t.Errorf("Builds() = %d after only failures, want 0", got)
	}
}

// TestStoreConcurrentSingleflight hammers one key from many goroutines: all
// callers must get the same kernel from exactly one build. Run under -race
// this also checks the entry-publication discipline.
func TestStoreConcurrentSingleflight(t *testing.T) {
	s := NewStore()
	const n = 16
	kernels := make([]interface{}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k, err := s.Kernel("hotspot", Tiny())
			if err != nil {
				t.Error(err)
				return
			}
			kernels[i] = k
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if kernels[i] != kernels[0] {
			t.Fatalf("goroutine %d got a different kernel", i)
		}
	}
	if got := s.Builds(); got != 1 {
		t.Errorf("Builds() = %d under %d concurrent callers, want 1", got, n)
	}
}

// TestStoreMatchesBuild checks that interned kernels are the same content a
// direct Build produces — interning changes sharing, never the trace.
func TestStoreMatchesBuild(t *testing.T) {
	s := NewStore()
	got, err := s.Kernel("nw", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Build("nw", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("interned kernel differs from a direct Build")
	}
}
