// Package config holds the GPU configuration used by the simulator.
//
// The default configuration models the NVIDIA Volta V100 parameters from
// Table 1 of the Snake paper (MICRO '23). Experiments typically run a scaled
// configuration (fewer SMs, shorter kernels) produced by Scaled, which keeps
// all per-SM structure sizes intact so prefetcher behaviour is unchanged.
package config

import (
	"errors"
	"fmt"
)

// DRAMTiming holds DRAM timing parameters in memory-clock cycles
// (Table 1 lists them in ns; we interpret them as controller cycles).
type DRAMTiming struct {
	TCCD  int // column-to-column delay
	TRRD  int // row-to-row activate delay (different banks)
	TRCD  int // row-to-column delay (activate to read)
	TRAS  int // row active time
	TRP   int // row precharge time
	TRC   int // row cycle time (activate to activate, same bank)
	TCL   int // CAS latency
	TWL   int // write latency
	TCDLR int // read-to-write turnaround
	TWR   int // write recovery
	TCCDL int // long column-to-column delay (same bank group)
	TRTPL int // read-to-precharge (long)
}

// DefaultDRAMTiming returns the Table 1 DRAM parameters.
func DefaultDRAMTiming() DRAMTiming {
	return DRAMTiming{
		TCCD: 1, TRRD: 3, TRCD: 12, TRAS: 28, TRP: 12, TRC: 40,
		TCL: 12, TWL: 2, TCDLR: 3, TWR: 10, TCCDL: 2, TRTPL: 3,
	}
}

// CacheGeom describes a set-associative cache.
type CacheGeom struct {
	SizeBytes int
	Ways      int
	LineSize  int
	Banks     int
	Latency   int // access (hit) latency in core cycles
}

// Sets returns the number of sets implied by the geometry.
func (g CacheGeom) Sets() int {
	lines := g.SizeBytes / g.LineSize
	if g.Ways <= 0 {
		return lines
	}
	s := lines / g.Ways
	if s < 1 {
		return 1
	}
	return s
}

// Lines returns the total number of cache lines.
func (g CacheGeom) Lines() int { return g.SizeBytes / g.LineSize }

// Validate checks internal consistency of the geometry.
func (g CacheGeom) Validate() error {
	switch {
	case g.SizeBytes <= 0:
		return errors.New("cache size must be positive")
	case g.LineSize <= 0:
		return errors.New("line size must be positive")
	case g.SizeBytes%g.LineSize != 0:
		return fmt.Errorf("cache size %d not a multiple of line size %d", g.SizeBytes, g.LineSize)
	case g.Ways <= 0:
		return errors.New("associativity must be positive")
	case g.Lines()%g.Ways != 0:
		return fmt.Errorf("line count %d not a multiple of ways %d", g.Lines(), g.Ways)
	}
	return nil
}

// SchedulerPolicy selects the warp scheduling policy.
type SchedulerPolicy string

// Supported scheduler policies.
const (
	SchedGTO    SchedulerPolicy = "gto" // Greedy-Then-Oldest (Table 1 default)
	SchedLRR    SchedulerPolicy = "lrr" // loose round-robin
	SchedOldest SchedulerPolicy = "oldest"
)

// GPU is the full simulator configuration.
type GPU struct {
	// Core organization.
	NumSM           int
	CoreClockMHz    int
	SchedulersPerSM int
	ThreadsPerSM    int
	WarpSize        int
	RegFilePerSM    int
	Scheduler       SchedulerPolicy

	// Unified L1 data cache / shared memory (per SM).
	Unified      CacheGeom
	SharedMemPer int // bytes of the unified space carved out as shared memory

	// MSHR file (per SM L1).
	MSHREntries   int
	MSHRMergeCap  int
	MissQueueSize int

	// Interconnect between L1s and L2 banks.
	IcntBytesPerCycle int // peak bytes per core cycle per SM port
	IcntLatency       int // base one-way latency in cycles

	// L2 (per sub-partition; the simulator instantiates L2Partitions of them).
	L2            CacheGeom
	L2Partitions  int
	DRAM          DRAMTiming
	DRAMBanks     int
	DRAMRowBytes  int
	DRAMClockxfer int // core cycles per DRAM data transfer

	// Limits.
	MaxCTAsPerSM  int
	MaxWarpsPerSM int
}

// Default returns the Table 1 V100-like configuration.
func Default() GPU {
	return GPU{
		NumSM:           80,
		CoreClockMHz:    1530,
		SchedulersPerSM: 4,
		ThreadsPerSM:    2048,
		WarpSize:        32,
		RegFilePerSM:    65536,
		Scheduler:       SchedGTO,
		Unified: CacheGeom{
			SizeBytes: 128 * 1024,
			Ways:      256,
			LineSize:  128,
			Banks:     4,
			Latency:   28,
		},
		SharedMemPer:      0,
		MSHREntries:       512,
		MSHRMergeCap:      8,
		MissQueueSize:     8,
		IcntBytesPerCycle: 128,
		IcntLatency:       100,
		L2: CacheGeom{
			SizeBytes: 96 * 1024,
			Ways:      24,
			LineSize:  128,
			Banks:     64,
			Latency:   212 - 100, // Table 1's 212 cycles include the interconnect round trip
		},
		L2Partitions:  32,
		DRAM:          DefaultDRAMTiming(),
		DRAMBanks:     16,
		DRAMRowBytes:  2048,
		DRAMClockxfer: 2,
		MaxCTAsPerSM:  32,
		MaxWarpsPerSM: 64,
	}
}

// Scaled returns a configuration suitable for fast experiments: numSM SMs and
// warpsPerSM warps per SM, with per-SM cache/MSHR structures untouched except
// that the L2 is consolidated into a small number of partitions. Prefetcher
// state is per-SM, so the scaling does not change relative prefetcher
// behaviour.
func Scaled(numSM, warpsPerSM int) GPU {
	g := Default()
	g.NumSM = numSM
	g.MaxWarpsPerSM = warpsPerSM
	g.ThreadsPerSM = warpsPerSM * g.WarpSize
	// Kernels carve shared memory out of the unified 128KB (§3.2); the
	// remainder is what the prefetch space and L1 data space share.
	g.SharedMemPer = 64 * 1024
	g.L2Partitions = 8
	g.L2.SizeBytes = 512 * 1024 / g.L2Partitions
	g.L2.Ways = 16
	return g
}

// Validate checks the whole configuration for consistency.
func (g GPU) Validate() error {
	if g.NumSM <= 0 {
		return errors.New("config: NumSM must be positive")
	}
	if g.SchedulersPerSM <= 0 {
		return errors.New("config: SchedulersPerSM must be positive")
	}
	if g.WarpSize <= 0 {
		return errors.New("config: WarpSize must be positive")
	}
	if g.MaxWarpsPerSM <= 0 {
		return errors.New("config: MaxWarpsPerSM must be positive")
	}
	if g.SharedMemPer < 0 || g.SharedMemPer >= g.Unified.SizeBytes {
		return fmt.Errorf("config: SharedMemPer %d must be in [0, unified size)", g.SharedMemPer)
	}
	if g.MSHREntries <= 0 || g.MSHRMergeCap <= 0 {
		return errors.New("config: MSHR entries and merge capability must be positive")
	}
	if g.MissQueueSize <= 0 {
		return errors.New("config: MissQueueSize must be positive")
	}
	if g.IcntBytesPerCycle <= 0 {
		return errors.New("config: IcntBytesPerCycle must be positive")
	}
	if g.L2Partitions <= 0 {
		return errors.New("config: L2Partitions must be positive")
	}
	if g.DRAMBanks <= 0 {
		return errors.New("config: DRAMBanks must be positive")
	}
	if err := g.Unified.Validate(); err != nil {
		return fmt.Errorf("config: unified cache: %w", err)
	}
	if err := g.L2.Validate(); err != nil {
		return fmt.Errorf("config: L2 cache: %w", err)
	}
	if g.L2.Latency < 1 {
		// The engine computes L2 responses off the serial path, during the
		// cycle's parallel phase; that is exact only because a response to a
		// request arriving at cycle C can never be sendable before C+1,
		// which needs at least one cycle of L2 latency.
		return errors.New("config: L2 latency must be at least 1 cycle")
	}
	if g.SlackBound() < 1 {
		// A zero bound would silently degenerate the engine to per-cycle
		// barriers; surface the offending term instead.
		a := g.SlackAudit()
		return fmt.Errorf("config: derived slack bound is %d (%s = %d); every cross-boundary latency must be at least 1 cycle for bounded-slack ticking — raise IcntLatency and L2 latency to at least 1",
			a.Bound, a.Limiting().Name, a.Limiting().Latency)
	}
	return nil
}

// SlackTerm is one cross-boundary latency considered by the slack audit.
type SlackTerm struct {
	Name    string // which latency this is
	Latency int    // cycles
	Why     string // why the term bounds slack (or why it does not bind tighter)
}

// SlackAudit derives the engine's provable slack window from the
// configuration: how many consecutive cycles the work units (SM shards and
// L2 partitions) may tick between barriers while remaining bit-identical to
// per-cycle barriers. The bound is the minimum latency on any path by which
// one unit's output becomes another unit's input:
//
//   - L1 miss → L2 response: a request serviced at cycle C yields a response
//     with readyAt ≥ C + L2.Latency (config validation enforces ≥ 1, and the
//     partition clamps in-flight merges to the same floor), so work produced
//     inside an epoch of length W ≤ L2.Latency cannot need routing within
//     that same epoch.
//   - Request/response networks: every injected packet is delivered at
//     ≥ send + IcntLatency + serialization, so a message sent at cycle C is
//     invisible to its destination for at least IcntLatency cycles.
//   - DRAM timing (TRCD/TCL/transfer) only ever adds on top of L2.Latency —
//     DRAM is reached through the L2 path — so it can never bind tighter and
//     contributes no separate term.
//
// SM-local state (L1 miss-queue occupancy, store buffers, freed CTA slots)
// crosses the boundary through cycle-stamped ports whose visibility the
// engine itself delays by the slack horizon, so those paths bound nothing
// here (see DESIGN.md "Bounded-slack ticking").
type SlackAudit struct {
	Terms []SlackTerm
	Bound int // min over Terms; the provable slack window
}

// Limiting returns the term that set the bound.
func (a SlackAudit) Limiting() SlackTerm {
	lim := a.Terms[0]
	for _, t := range a.Terms[1:] {
		if t.Latency < lim.Latency {
			lim = t
		}
	}
	return lim
}

// SlackAudit returns the full derivation; SlackBound returns just the bound.
func (g GPU) SlackAudit() SlackAudit {
	a := SlackAudit{Terms: []SlackTerm{
		{
			Name:    "L2.Latency",
			Latency: g.L2.Latency,
			Why:     "a response to a request serviced at cycle C has readyAt ≥ C + L2.Latency (in-flight merges are clamped to the same floor), so responses never become sendable inside the epoch that computed them",
		},
		{
			Name:    "IcntLatency",
			Latency: g.IcntLatency,
			Why:     "every packet crossing the interconnect is delivered at ≥ send + IcntLatency, so a message injected inside an epoch arrives after it",
		},
	}}
	a.Bound = a.Terms[0].Latency
	for _, t := range a.Terms[1:] {
		if t.Latency < a.Bound {
			a.Bound = t.Latency
		}
	}
	return a
}

// SlackBound returns the provable slack window: the minimum cross-unit
// communication latency in cycles. The engine may tick work units up to this
// many consecutive cycles between barriers without changing any statistic.
func (g GPU) SlackBound() int { return g.SlackAudit().Bound }

// DataCacheBytes returns the unified-cache space left after the shared-memory
// carve-out; this is the space split between L1 data and prefetch storage.
func (g GPU) DataCacheBytes() int { return g.Unified.SizeBytes - g.SharedMemPer }

// DataCacheLines returns DataCacheBytes in cache lines.
func (g GPU) DataCacheLines() int { return g.DataCacheBytes() / g.Unified.LineSize }
