package config

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// JSON serialization of GPU configurations. The snaked service accepts GPU
// overrides on the wire and persists cache keys derived from them, so the
// encoding must round-trip exactly: ParseJSON(g.JSON()) == g for any valid
// configuration.

// JSON returns the canonical indented JSON encoding of the configuration.
func (g GPU) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("config: marshal: %w", err)
	}
	return b, nil
}

// ParseJSON decodes a GPU configuration and validates it. Unknown fields are
// rejected so a typoed knob fails loudly instead of silently keeping its
// zero value.
func ParseJSON(data []byte) (GPU, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var g GPU
	if err := dec.Decode(&g); err != nil {
		return GPU{}, fmt.Errorf("config: parse: %w", err)
	}
	if err := g.Validate(); err != nil {
		return GPU{}, err
	}
	return g, nil
}
