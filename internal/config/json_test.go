package config

import (
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for name, g := range map[string]GPU{
		"default": Default(),
		"scaled":  Scaled(4, 64),
		"tiny":    Scaled(2, 16),
	} {
		b, err := g.JSON()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ParseJSON(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(g, back) {
			t.Errorf("%s: round trip changed the config:\nbefore %+v\nafter  %+v", name, g, back)
		}
	}
}

func TestParseJSONRejectsUnknownField(t *testing.T) {
	b, err := Default().JSON()
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(b), `"NumSM"`, `"NumSMs"`, 1)
	if _, err := ParseJSON([]byte(bad)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestParseJSONValidates(t *testing.T) {
	g := Default()
	g.NumSM = 0
	b, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseJSON(b); err == nil {
		t.Error("invalid config accepted")
	}
}
