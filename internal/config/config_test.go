package config

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestScaledValidates(t *testing.T) {
	for _, tc := range []struct{ sms, warps int }{{1, 8}, {4, 32}, {4, 64}, {8, 64}} {
		g := Scaled(tc.sms, tc.warps)
		if err := g.Validate(); err != nil {
			t.Errorf("Scaled(%d,%d) invalid: %v", tc.sms, tc.warps, err)
		}
		if g.NumSM != tc.sms {
			t.Errorf("Scaled(%d,%d).NumSM = %d", tc.sms, tc.warps, g.NumSM)
		}
		if g.MaxWarpsPerSM != tc.warps {
			t.Errorf("Scaled(%d,%d).MaxWarpsPerSM = %d", tc.sms, tc.warps, g.MaxWarpsPerSM)
		}
		if g.ThreadsPerSM != tc.warps*g.WarpSize {
			t.Errorf("ThreadsPerSM = %d, want %d", g.ThreadsPerSM, tc.warps*g.WarpSize)
		}
	}
}

func TestCacheGeomSets(t *testing.T) {
	g := CacheGeom{SizeBytes: 128 * 1024, Ways: 256, LineSize: 128}
	if got := g.Lines(); got != 1024 {
		t.Errorf("Lines() = %d, want 1024", got)
	}
	if got := g.Sets(); got != 4 {
		t.Errorf("Sets() = %d, want 4", got)
	}
}

func TestCacheGeomValidate(t *testing.T) {
	cases := []struct {
		name string
		g    CacheGeom
		want string
	}{
		{"zero size", CacheGeom{LineSize: 128, Ways: 4}, "size"},
		{"zero line", CacheGeom{SizeBytes: 1024, Ways: 4}, "line"},
		{"size not multiple", CacheGeom{SizeBytes: 1000, LineSize: 128, Ways: 2}, "multiple"},
		{"zero ways", CacheGeom{SizeBytes: 1024, LineSize: 128}, "associativity"},
		{"lines not multiple of ways", CacheGeom{SizeBytes: 1280, LineSize: 128, Ways: 3}, "multiple"},
	}
	for _, tc := range cases {
		err := tc.g.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestGPUValidateRejects(t *testing.T) {
	mutate := []struct {
		name string
		f    func(*GPU)
	}{
		{"no SMs", func(g *GPU) { g.NumSM = 0 }},
		{"no schedulers", func(g *GPU) { g.SchedulersPerSM = 0 }},
		{"no warps", func(g *GPU) { g.MaxWarpsPerSM = 0 }},
		{"shared too big", func(g *GPU) { g.SharedMemPer = g.Unified.SizeBytes }},
		{"no MSHR", func(g *GPU) { g.MSHREntries = 0 }},
		{"no miss queue", func(g *GPU) { g.MissQueueSize = 0 }},
		{"no icnt", func(g *GPU) { g.IcntBytesPerCycle = 0 }},
		{"no partitions", func(g *GPU) { g.L2Partitions = 0 }},
		{"no banks", func(g *GPU) { g.DRAMBanks = 0 }},
		{"bad unified", func(g *GPU) { g.Unified.Ways = 0 }},
	}
	for _, m := range mutate {
		g := Default()
		m.f(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestDataCacheBytes(t *testing.T) {
	g := Default()
	g.SharedMemPer = 32 * 1024
	if got := g.DataCacheBytes(); got != 96*1024 {
		t.Errorf("DataCacheBytes = %d, want %d", got, 96*1024)
	}
	if got := g.DataCacheLines(); got != 96*1024/128 {
		t.Errorf("DataCacheLines = %d, want %d", got, 96*1024/128)
	}
}

func TestDRAMTimingDefaults(t *testing.T) {
	d := DefaultDRAMTiming()
	// Spot-check against Table 1.
	if d.TRCD != 12 || d.TRAS != 28 || d.TRP != 12 || d.TRC != 40 || d.TCL != 12 {
		t.Errorf("DRAM timing mismatch with Table 1: %+v", d)
	}
}

func TestSlackAuditDerivation(t *testing.T) {
	g := Default()
	a := g.SlackAudit()
	if len(a.Terms) < 2 {
		t.Fatalf("audit lists %d terms, want at least the L2 and interconnect paths", len(a.Terms))
	}
	want := a.Terms[0].Latency
	byName := map[string]int{}
	for _, term := range a.Terms {
		if term.Name == "" || term.Why == "" {
			t.Errorf("term %+v missing name or justification", term)
		}
		byName[term.Name] = term.Latency
		if term.Latency < want {
			want = term.Latency
		}
	}
	if byName["L2.Latency"] != g.L2.Latency || byName["IcntLatency"] != g.IcntLatency {
		t.Errorf("audit terms %v do not reflect the config (L2=%d, Icnt=%d)", byName, g.L2.Latency, g.IcntLatency)
	}
	if a.Bound != want {
		t.Errorf("Bound = %d, want min over terms %d", a.Bound, want)
	}
	if g.SlackBound() != a.Bound {
		t.Errorf("SlackBound = %d, audit bound %d", g.SlackBound(), a.Bound)
	}
	if lim := a.Limiting(); lim.Latency != a.Bound {
		t.Errorf("Limiting() returned %+v, not a bound-setting term (bound %d)", lim, a.Bound)
	}
}

func TestSlackBoundTracksTighterTerm(t *testing.T) {
	g := Default()
	g.L2.Latency = 3
	if got := g.SlackBound(); got != 3 {
		t.Errorf("SlackBound = %d, want 3 (L2 latency binds)", got)
	}
	if lim := g.SlackAudit().Limiting(); lim.Name != "L2.Latency" {
		t.Errorf("Limiting term = %q, want L2.Latency", lim.Name)
	}
	g = Default()
	g.IcntLatency = 2
	if got := g.SlackBound(); got != 2 {
		t.Errorf("SlackBound = %d, want 2 (interconnect binds)", got)
	}
}

func TestValidateRejectsZeroSlackBound(t *testing.T) {
	g := Default()
	g.IcntLatency = 0
	err := g.Validate()
	if err == nil {
		t.Fatal("expected validation error for zero slack bound")
	}
	msg := err.Error()
	for _, needle := range []string{"slack bound", "IcntLatency"} {
		if !strings.Contains(msg, needle) {
			t.Errorf("error %q does not mention %q; the message must point at the offending term", msg, needle)
		}
	}
}
