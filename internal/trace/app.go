package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
)

// Application traces: an App is an ordered list of kernel launches with
// dependency edges, per-launch SM masks and tenant IDs — the unit of work the
// launch scheduler in internal/sim consumes. A bare Kernel is the trivial
// one-launch App (see SingleLaunch).

// KernelLaunch is one kernel launch within an App.
type KernelLaunch struct {
	Kernel *Kernel
	// DependsOn lists earlier launch indices that must retire before this
	// launch may start. Indices are positions in App.Launches and must be
	// strictly smaller than this launch's own index (the App is a DAG in
	// topological order).
	DependsOn []int `json:",omitempty"`
	// SMMask restricts the launch to a subset of SMs: bit i set means SM i
	// may host this launch's CTAs. Zero means all SMs. Non-zero masks
	// require NumSM ≤ 64 at run time.
	SMMask uint64 `json:",omitempty"`
	// Tenant identifies the co-resident application instance this launch
	// belongs to, for per-tenant stat rollups. Launches of different
	// tenants on disjoint SM masks run concurrently, contending through
	// the shared memory partitions.
	Tenant int `json:",omitempty"`
}

// App is an application trace: kernel launches in issue order.
type App struct {
	Name     string
	Launches []KernelLaunch
}

// SingleLaunch wraps a bare kernel as the trivial one-launch App: full SM
// mask, tenant 0, no dependencies.
func SingleLaunch(k *Kernel) *App {
	return &App{Name: k.Name, Launches: []KernelLaunch{{Kernel: k}}}
}

// Validate checks structural invariants of the App: non-empty, every launch
// carries a valid kernel, dependency edges point strictly backwards.
func (a *App) Validate() error {
	if a.Name == "" {
		return errors.New("trace: app has no name")
	}
	if len(a.Launches) == 0 {
		return fmt.Errorf("trace: app %q has no launches", a.Name)
	}
	for i, l := range a.Launches {
		if l.Kernel == nil {
			return fmt.Errorf("trace: app %q launch %d has no kernel", a.Name, i)
		}
		if err := l.Kernel.Validate(); err != nil {
			return fmt.Errorf("trace: app %q launch %d: %w", a.Name, i, err)
		}
		for _, d := range l.DependsOn {
			if d < 0 || d >= i {
				return fmt.Errorf("trace: app %q launch %d depends on %d (must be an earlier launch)", a.Name, i, d)
			}
		}
		if l.Tenant < 0 {
			return fmt.Errorf("trace: app %q launch %d has negative tenant %d", a.Name, i, l.Tenant)
		}
	}
	return nil
}

// MaxSM returns the highest SM index referenced by any non-zero launch mask,
// or -1 when every launch runs with the full (zero) mask.
func (a *App) MaxSM() int {
	max := -1
	for _, l := range a.Launches {
		if l.SMMask == 0 {
			continue
		}
		if hi := bits.Len64(l.SMMask) - 1; hi > max {
			max = hi
		}
	}
	return max
}

// TotalInsts returns the total dynamic instruction count across all launches.
func (a *App) TotalInsts() int {
	n := 0
	for _, l := range a.Launches {
		n += l.Kernel.TotalInsts()
	}
	return n
}

// Tenants returns the number of distinct tenant IDs (max ID + 1).
func (a *App) Tenants() int {
	max := 0
	for _, l := range a.Launches {
		if l.Tenant > max {
			max = l.Tenant
		}
	}
	return max + 1
}

// Digest returns a content hash of the App (launch structure plus full kernel
// contents), suitable for cache keys: two Apps with equal digests produce
// identical simulations. The hash is over the canonical JSON encoding, which
// is deterministic for these types.
func (a *App) Digest() (string, error) {
	h := sha256.New()
	if err := json.NewEncoder(h).Encode(a); err != nil {
		return "", fmt.Errorf("trace: digest app %q: %w", a.Name, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
