package trace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func validApp() *App {
	k1 := validKernel()
	k2 := validKernel()
	k2.Name = "k2"
	return &App{
		Name: "app",
		Launches: []KernelLaunch{
			{Kernel: k1, SMMask: 0x3},
			{Kernel: k2, SMMask: 0xc, Tenant: 1},
			{Kernel: k1, DependsOn: []int{0, 1}},
		},
	}
}

func TestSingleLaunch(t *testing.T) {
	k := validKernel()
	a := SingleLaunch(k)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Name != k.Name || len(a.Launches) != 1 || a.Launches[0].Kernel != k {
		t.Errorf("SingleLaunch wrapped wrong: %+v", a)
	}
	if a.Launches[0].SMMask != 0 || a.Launches[0].Tenant != 0 {
		t.Error("SingleLaunch must use full mask and tenant 0")
	}
	if a.MaxSM() != -1 {
		t.Errorf("MaxSM on full-mask app = %d, want -1", a.MaxSM())
	}
}

func TestAppValidate(t *testing.T) {
	good := validApp()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*App)
	}{
		{"no name", func(a *App) { a.Name = "" }},
		{"no launches", func(a *App) { a.Launches = nil }},
		{"nil kernel", func(a *App) { a.Launches[1].Kernel = nil }},
		{"invalid kernel", func(a *App) {
			k := *a.Launches[1].Kernel
			k.Name = ""
			a.Launches[1].Kernel = &k
		}},
		{"self dep", func(a *App) { a.Launches[1].DependsOn = []int{1} }},
		{"forward dep", func(a *App) { a.Launches[1].DependsOn = []int{2} }},
		{"negative dep", func(a *App) { a.Launches[1].DependsOn = []int{-1} }},
		{"negative tenant", func(a *App) { a.Launches[1].Tenant = -1 }},
	}
	for _, tc := range cases {
		a := validApp()
		tc.mut(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

func TestAppAccessors(t *testing.T) {
	a := validApp()
	if got := a.Tenants(); got != 2 {
		t.Errorf("Tenants = %d, want 2", got)
	}
	if got := a.MaxSM(); got != 3 {
		t.Errorf("MaxSM = %d, want 3", got)
	}
	want := 0
	for _, l := range a.Launches {
		want += l.Kernel.TotalInsts()
	}
	if got := a.TotalInsts(); got != want {
		t.Errorf("TotalInsts = %d, want %d", got, want)
	}
}

func TestAppDigest(t *testing.T) {
	a := validApp()
	d1, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := validApp().Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("digest not deterministic for equal apps")
	}
	b := validApp()
	b.Launches[0].SMMask = 0x1
	d3, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Error("digest ignores launch masks")
	}
	c := validApp()
	c.Launches[2].Kernel.CTAs[0].BaseAddr++
	d4, err := c.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d4 == d1 {
		t.Error("digest ignores kernel content")
	}
}

func TestAppBinaryRoundTrip(t *testing.T) {
	a := validApp()
	var buf bytes.Buffer
	if err := a.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAppBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Error("binary round trip changed the app")
	}
}

func TestAppJSONRoundTrip(t *testing.T) {
	a := validApp()
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAppJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Error("json round trip changed the app")
	}
}

func TestAppBinaryRejectsKernelFile(t *testing.T) {
	// The two binary formats carry distinct magics: loading a kernel trace
	// as an app (or garbage as either) must fail loudly.
	var buf bytes.Buffer
	if err := validKernel().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAppBinary(&buf); err == nil {
		t.Error("kernel trace accepted as app")
	}
	if _, err := ReadAppBinary(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted as app")
	}
}

func TestAppSaveLoadFile(t *testing.T) {
	a := validApp()
	dir := t.TempDir()
	for _, name := range []string{"a.app", "a.json"} {
		path := filepath.Join(dir, name)
		if err := a.SaveFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadAppFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, got) {
			t.Errorf("%s: round trip changed the app", name)
		}
	}
}
