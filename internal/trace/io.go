package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Kernel serialization: a compact gob-based binary format (gzip-compressed)
// for storing generated traces, plus JSON for interoperability. Both carry
// a format header so files are self-describing.

// traceMagic identifies the binary trace format.
const traceMagic = "snaketrace\x001\n"

// WriteBinary writes the kernel in the compressed binary format.
func (k *Kernel) WriteBinary(w io.Writer) error {
	if _, err := io.WriteString(w, traceMagic); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(k); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadBinary reads a kernel written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Kernel, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if string(head) != traceMagic {
		return nil, fmt.Errorf("trace: not a snake trace file (bad magic)")
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("trace: open compressed stream: %w", err)
	}
	defer zr.Close()
	var k Kernel
	if err := gob.NewDecoder(zr).Decode(&k); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("trace: loaded kernel invalid: %w", err)
	}
	return &k, nil
}

// WriteJSON writes the kernel as indented JSON.
func (k *Kernel) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(k); err != nil {
		return fmt.Errorf("trace: encode json: %w", err)
	}
	return nil
}

// ReadJSON reads a kernel written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Kernel, error) {
	var k Kernel
	if err := json.NewDecoder(r).Decode(&k); err != nil {
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("trace: loaded kernel invalid: %w", err)
	}
	return &k, nil
}

// SaveFile writes the kernel to path, choosing the format by extension:
// ".json" for JSON, anything else for the compressed binary format.
func (k *Kernel) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if strings.HasSuffix(path, ".json") {
		err = k.WriteJSON(w)
	} else {
		err = k.WriteBinary(w)
	}
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("trace: flush %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a kernel from path, choosing the format by extension.
func LoadFile(path string) (*Kernel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return ReadJSON(bufio.NewReader(f))
	}
	return ReadBinary(f)
}
