package trace

import (
	"testing"
	"testing/quick"
)

func validKernel() *Kernel {
	b := NewBuilder()
	b.Compute(0, 4).Load(8, 0x1000, 4).Store(16, 0x2000, 4).Barrier(24)
	w0 := b.Exit(32)
	w1 := NewBuilder().Load(8, 0x1100, 4).Exit(16)
	w1.IDInCTA = 1
	return &Kernel{
		Name: "test",
		CTAs: []CTA{{ID: 0, BaseAddr: 0x1000, Warps: []WarpProgram{w0, w1}}},
	}
}

func TestKernelValidateOK(t *testing.T) {
	if err := validKernel().Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
}

func TestKernelValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Kernel)
	}{
		{"no name", func(k *Kernel) { k.Name = "" }},
		{"no CTAs", func(k *Kernel) { k.CTAs = nil }},
		{"no warps", func(k *Kernel) { k.CTAs[0].Warps = nil }},
		{"bad warp id", func(k *Kernel) { k.CTAs[0].Warps[1].IDInCTA = 5 }},
		{"empty warp", func(k *Kernel) { k.CTAs[0].Warps[0].Insts = nil }},
		{"no exit", func(k *Kernel) {
			w := &k.CTAs[0].Warps[0]
			w.Insts = w.Insts[:len(w.Insts)-1]
		}},
		{"interior exit", func(k *Kernel) {
			w := &k.CTAs[0].Warps[0]
			w.Insts[0] = Inst{PC: 0, Op: OpExit}
		}},
	}
	for _, tc := range cases {
		k := validKernel()
		tc.f(k)
		if err := k.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestTotals(t *testing.T) {
	k := validKernel()
	if got := k.TotalInsts(); got != 7 {
		t.Errorf("TotalInsts = %d, want 7", got)
	}
	if got := k.TotalLoads(); got != 2 {
		t.Errorf("TotalLoads = %d, want 2", got)
	}
}

func TestRepresentativeWarp(t *testing.T) {
	k := validKernel()
	// Add a warp with more loads; it must become representative.
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.Load(uint64(i*8), uint64(0x100*i), 4)
	}
	w := b.Exit(100)
	w.IDInCTA = 0
	k.CTAs = append(k.CTAs, CTA{ID: 1, Warps: []WarpProgram{w}})
	rep := k.RepresentativeWarp()
	if got := len(rep.Loads()); got != 5 {
		t.Errorf("representative warp has %d loads, want 5", got)
	}
}

func TestLoadPCsDistinctOrdered(t *testing.T) {
	b := NewBuilder()
	b.Load(8, 1, 4).Load(16, 2, 4).Load(8, 3, 4)
	w := b.Exit(24)
	pcs := w.LoadPCs()
	if len(pcs) != 2 || pcs[0] != 8 || pcs[1] != 16 {
		t.Errorf("LoadPCs = %v, want [8 16]", pcs)
	}
}

func TestBuilderProducesExitTerminated(t *testing.T) {
	f := func(nCompute uint8) bool {
		b := NewBuilder()
		for i := 0; i < int(nCompute%20); i++ {
			b.Compute(uint64(i*PCWidth), 1)
		}
		w := b.Exit(uint64(int(nCompute%20) * PCWidth))
		return w.Insts[len(w.Insts)-1].Op == OpExit && len(w.Insts) == int(nCompute%20)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpCompute: "compute", OpLoad: "load", OpStore: "store",
		OpBarrier: "barrier", OpExit: "exit", Op(99): "op(99)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestIsMem(t *testing.T) {
	if !(Inst{Op: OpLoad}).IsMem() || !(Inst{Op: OpStore}).IsMem() {
		t.Error("loads and stores must be memory instructions")
	}
	if (Inst{Op: OpCompute}).IsMem() || (Inst{Op: OpBarrier}).IsMem() {
		t.Error("compute/barrier must not be memory instructions")
	}
}
