package trace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	k := validKernel()
	var buf bytes.Buffer
	if err := k.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(k, got) {
		t.Error("binary round trip changed the kernel")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	k := validKernel()
	var buf bytes.Buffer
	if err := k.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(k, got) {
		t.Error("json round trip changed the kernel")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace file at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReadRejectsInvalidKernel(t *testing.T) {
	k := validKernel()
	k.CTAs[0].Warps[0].Insts = k.CTAs[0].Warps[0].Insts[:1] // no exit
	var buf bytes.Buffer
	if err := k.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("invalid kernel accepted on load")
	}
}

func TestSaveLoadFile(t *testing.T) {
	k := validKernel()
	dir := t.TempDir()
	for _, name := range []string{"k.trace", "k.json"} {
		path := filepath.Join(dir, name)
		if err := k.SaveFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(k, got) {
			t.Errorf("%s: round trip changed the kernel", name)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.trace")); err == nil {
		t.Error("missing file accepted")
	}
}
