package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// App serialization mirrors the kernel formats: gob-over-gzip binary with a
// distinct magic header, plus indented JSON, chosen by file extension.

// appMagic identifies the binary app-trace format.
const appMagic = "snakeapp\x001\n"

// WriteBinary writes the app in the compressed binary format.
func (a *App) WriteBinary(w io.Writer) error {
	if _, err := io.WriteString(w, appMagic); err != nil {
		return fmt.Errorf("trace: write app header: %w", err)
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(a); err != nil {
		return fmt.Errorf("trace: encode app: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("trace: flush app: %w", err)
	}
	return nil
}

// ReadAppBinary reads an app written by WriteBinary and validates it.
func ReadAppBinary(r io.Reader) (*App, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(appMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: read app header: %w", err)
	}
	if string(head) != appMagic {
		return nil, fmt.Errorf("trace: not a snake app file (bad magic)")
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("trace: open compressed stream: %w", err)
	}
	defer zr.Close()
	var a App
	if err := gob.NewDecoder(zr).Decode(&a); err != nil {
		return nil, fmt.Errorf("trace: decode app: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("trace: loaded app invalid: %w", err)
	}
	return &a, nil
}

// WriteJSON writes the app as indented JSON.
func (a *App) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("trace: encode app json: %w", err)
	}
	return nil
}

// ReadAppJSON reads an app written by WriteJSON and validates it.
func ReadAppJSON(r io.Reader) (*App, error) {
	var a App
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("trace: decode app json: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("trace: loaded app invalid: %w", err)
	}
	return &a, nil
}

// SaveFile writes the app to path, choosing the format by extension: ".json"
// for JSON, anything else for the compressed binary format.
func (a *App) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if strings.HasSuffix(path, ".json") {
		err = a.WriteJSON(w)
	} else {
		err = a.WriteBinary(w)
	}
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("trace: flush %s: %w", path, err)
	}
	return nil
}

// LoadAppFile reads an app from path, choosing the format by extension.
func LoadAppFile(path string) (*App, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return ReadAppJSON(bufio.NewReader(f))
	}
	return ReadAppBinary(f)
}
