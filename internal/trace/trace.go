// Package trace defines the instruction-trace representation consumed by the
// simulator: kernels composed of CTAs, CTAs composed of warps, warps composed
// of instructions.
//
// A warp is the unit of execution (32 threads executing in lockstep). For
// memory instructions the trace carries the coalesced base address of the
// warp (thread 0's address) plus the per-thread stride; the Snake paper
// (§3.4) observes that the stride between threads in a warp is consistently
// equal, so the prefetcher only retains thread 0's address when that holds.
package trace

import (
	"errors"
	"fmt"
)

// Op is an instruction opcode class. The simulator only distinguishes the
// classes that matter for memory-system behaviour.
type Op uint8

// Opcode classes.
const (
	OpCompute Op = iota // ALU/FPU work occupying the warp for Lat cycles
	OpLoad              // global-memory load
	OpStore             // global-memory store
	OpBarrier           // CTA-wide barrier
	OpExit              // warp termination
)

// String returns a short mnemonic for the opcode class.
func (o Op) String() string {
	switch o {
	case OpCompute:
		return "compute"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBarrier:
		return "barrier"
	case OpExit:
		return "exit"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Inst is one warp-level instruction.
type Inst struct {
	PC     uint64 // program counter (PC_ld for loads)
	Op     Op
	Addr   uint64 // base (thread 0) byte address for loads/stores
	Stride int32  // per-thread byte stride within the warp for loads/stores
	Lat    int32  // execution latency in cycles for compute instructions
}

// IsMem reports whether the instruction accesses global memory.
func (in Inst) IsMem() bool { return in.Op == OpLoad || in.Op == OpStore }

// WarpProgram is the instruction stream of a single warp.
type WarpProgram struct {
	// IDInCTA is the warp's index within its CTA.
	IDInCTA int
	Insts   []Inst
}

// LoadPCs returns the distinct load PCs in program order of first appearance.
func (w *WarpProgram) LoadPCs() []uint64 {
	seen := make(map[uint64]bool)
	var pcs []uint64
	for _, in := range w.Insts {
		if in.Op == OpLoad && !seen[in.PC] {
			seen[in.PC] = true
			pcs = append(pcs, in.PC)
		}
	}
	return pcs
}

// Loads returns the load instructions of the warp in program order.
func (w *WarpProgram) Loads() []Inst {
	var out []Inst
	for _, in := range w.Insts {
		if in.Op == OpLoad {
			out = append(out, in)
		}
	}
	return out
}

// CTA is a cooperative thread array (thread block).
type CTA struct {
	ID    int
	Warps []WarpProgram
	// BaseAddr is the CTA's base data address, used by CTA-aware prefetching.
	BaseAddr uint64
	// SharedMemBytes is the CTA's shared-memory requirement, carved out of
	// the unified cache at dispatch.
	SharedMemBytes int
}

// Kernel is a full grid of CTAs plus metadata.
type Kernel struct {
	Name string
	CTAs []CTA
}

// Validate checks structural invariants of the kernel: non-empty, warps end
// with OpExit, and per-CTA warp IDs are dense.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return errors.New("trace: kernel has no name")
	}
	if len(k.CTAs) == 0 {
		return fmt.Errorf("trace: kernel %q has no CTAs", k.Name)
	}
	for ci, cta := range k.CTAs {
		if len(cta.Warps) == 0 {
			return fmt.Errorf("trace: kernel %q CTA %d has no warps", k.Name, ci)
		}
		for wi, w := range cta.Warps {
			if w.IDInCTA != wi {
				return fmt.Errorf("trace: kernel %q CTA %d warp %d has IDInCTA %d", k.Name, ci, wi, w.IDInCTA)
			}
			if len(w.Insts) == 0 {
				return fmt.Errorf("trace: kernel %q CTA %d warp %d is empty", k.Name, ci, wi)
			}
			if last := w.Insts[len(w.Insts)-1]; last.Op != OpExit {
				return fmt.Errorf("trace: kernel %q CTA %d warp %d does not end with exit", k.Name, ci, wi)
			}
			for ii, in := range w.Insts[:len(w.Insts)-1] {
				if in.Op == OpExit {
					return fmt.Errorf("trace: kernel %q CTA %d warp %d has interior exit at %d", k.Name, ci, wi, ii)
				}
			}
		}
	}
	return nil
}

// TotalInsts returns the total dynamic instruction count of the kernel.
func (k *Kernel) TotalInsts() int {
	n := 0
	for _, cta := range k.CTAs {
		for _, w := range cta.Warps {
			n += len(w.Insts)
		}
	}
	return n
}

// TotalLoads returns the total dynamic load count of the kernel.
func (k *Kernel) TotalLoads() int {
	n := 0
	for _, cta := range k.CTAs {
		for _, w := range cta.Warps {
			for _, in := range w.Insts {
				if in.Op == OpLoad {
					n++
				}
			}
		}
	}
	return n
}

// RepresentativeWarp returns the warp with the most dynamic load instructions
// (the paper's "representative warp" for the motivational analyses).
func (k *Kernel) RepresentativeWarp() *WarpProgram {
	var best *WarpProgram
	bestLoads := -1
	for ci := range k.CTAs {
		for wi := range k.CTAs[ci].Warps {
			w := &k.CTAs[ci].Warps[wi]
			n := 0
			for _, in := range w.Insts {
				if in.Op == OpLoad {
					n++
				}
			}
			if n > bestLoads {
				bestLoads = n
				best = w
			}
		}
	}
	return best
}
