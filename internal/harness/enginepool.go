package harness

import (
	"sync"

	"snake/internal/config"
	"snake/internal/sim"
	"snake/internal/trace"
)

// EnginePool recycles sim.Engine instances across runs. Engines are pooled
// per (config.GPU, tag) shape so a checked-out engine's arenas always match
// the requested configuration and — when the tag is non-empty — its retained
// prefetcher instances match the requested mechanism; a run drawn from the
// pool reinitializes those arenas in place instead of reallocating them.
//
// The tag follows sim.Engine.RunTagged's contract: it must uniquely identify
// the prefetcher factory's configuration (the mechanism registry name is the
// canonical choice), and the empty tag always constructs prefetchers fresh.
// Pooling is transparent to results: the sim package guarantees recycled
// engines produce bit-identical statistics.
type EnginePool struct {
	mu    sync.Mutex
	pools map[engineKey]*sync.Pool
}

// engineKey is one pool's shape. config.GPU is a comparable value type, so
// the full configuration participates in the key directly.
type engineKey struct {
	cfg config.GPU
	tag string
}

// NewEnginePool returns an empty pool.
func NewEnginePool() *EnginePool {
	return &EnginePool{pools: make(map[engineKey]*sync.Pool)}
}

// sharedEngines is the process-wide pool the runner and the snaked service
// default to, so their steady-state traffic shares one set of warm arenas.
var sharedEngines = NewEnginePool()

// SharedEnginePool returns the process-wide engine pool.
func SharedEnginePool() *EnginePool { return sharedEngines }

// Run simulates the kernel on a pooled engine and returns the engine to the
// pool afterwards. Engines are returned even after failed runs — the sim
// package's reinitialization path handles arbitrary dirty state.
func (p *EnginePool) Run(k *trace.Kernel, opt sim.Options, tag string) (*sim.Result, error) {
	sp := p.pool(engineKey{cfg: opt.Config, tag: tag})
	en, _ := sp.Get().(*sim.Engine)
	if en == nil {
		en = sim.NewEngine()
	}
	res, err := en.RunTagged(k, opt, tag)
	sp.Put(en)
	return res, err
}

// RunApp simulates the application on a pooled engine and returns the engine
// to the pool afterwards. Apps and single kernels share the same pools: the
// engine's persistent machine is shaped by the configuration alone, and the
// launch state rebuilds per run, so a kernel run can recycle an app run's
// engine and vice versa.
func (p *EnginePool) RunApp(a *trace.App, opt sim.Options, tag string) (*sim.AppResult, error) {
	sp := p.pool(engineKey{cfg: opt.Config, tag: tag})
	en, _ := sp.Get().(*sim.Engine)
	if en == nil {
		en = sim.NewEngine()
	}
	res, err := en.RunAppTagged(a, opt, tag)
	sp.Put(en)
	return res, err
}

func (p *EnginePool) pool(key engineKey) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp, ok := p.pools[key]
	if !ok {
		sp = &sync.Pool{}
		p.pools[key] = sp
	}
	return sp
}
