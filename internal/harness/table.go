package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: the rows/series the corresponding paper
// figure or table reports.
type Table struct {
	ID      string // "fig16", "table3", ...
	Title   string
	Columns []string // first column is the row label
	Rows    []RowData
	Note    string // paper-expected values and commentary
}

// RowData is one labelled row of values.
type RowData struct {
	Label  string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, RowData{Label: label, Values: values})
}

// Mean appends a geometric-mean-free arithmetic average row over the
// existing rows (skipped for empty tables).
func (t *Table) Mean(label string) {
	if len(t.Rows) == 0 {
		return
	}
	n := len(t.Rows[0].Values)
	avg := make([]float64, n)
	for _, r := range t.Rows {
		for i, v := range r.Values {
			avg[i] += v
		}
	}
	for i := range avg {
		avg[i] /= float64(len(t.Rows))
	}
	t.AddRow(label, avg...)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		row := make([]string, len(t.Columns))
		row[0] = r.Label
		for i, v := range r.Values {
			if i+1 < len(t.Columns) {
				row[i+1] = formatValue(v)
			}
		}
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
		cells[ri] = row
	}
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = pad(c, widths[i])
	}
	fmt.Fprintln(w, strings.Join(header, "  "))
	for _, row := range cells {
		for i, c := range row {
			row[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(row, "  "))
	}
	if t.Note != "" {
		fmt.Fprintf(w, "note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e6:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}
