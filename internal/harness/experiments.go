package harness

import (
	"fmt"

	"snake/internal/chains"
	"snake/internal/core"
	"snake/internal/energy"
	"snake/internal/sim"
	"snake/internal/stats"
	"snake/internal/workloads"
)

// Experiment regenerates one paper figure or table.
type Experiment func(r *Runner) (*Table, error)

// Experiments maps experiment IDs ("fig3" … "fig25", "table1" … "table3")
// to their implementations.
var Experiments = map[string]Experiment{
	"fig3":   Fig3,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig16":  Fig16,
	"fig17":  Fig17,
	"fig18":  Fig18,
	"fig19":  Fig19,
	"fig20":  Fig20,
	"fig21":  Fig21,
	"fig22":  Fig22,
	"fig23":  Fig23,
	"fig24":  Fig24,
	"fig25":  Fig25,
	"table1": Table1,
	"table2": Table2,
	"table3": Table3,
	// Extensions beyond the paper's evaluation.
	"ext-cpu":      ExtCPUPrefetchers,
	"ext-sched":    ExtSchedulerHead,
	"ext-appchain": ExtAppChain,
}

// ExperimentIDs returns the IDs in presentation order.
func ExperimentIDs() []string {
	ids := []string{
		"fig3", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
		"fig23", "fig24", "fig25", "table1", "table2", "table3",
		"ext-cpu", "ext-sched", "ext-appchain",
	}
	// Guard against drift between the slice and the map.
	if len(ids) != len(Experiments) {
		panic("harness: ExperimentIDs out of sync with Experiments")
	}
	return ids
}

// benchList is the Table 2 benchmark order.
func benchList() []string { return workloads.Names() }

// baselineMetric builds a one-column table of a baseline-run metric.
func (r *Runner) baselineMetric(id, title, col string, f func(*stats.Sim) float64, note string) (*Table, error) {
	if err := r.Prefill(benchList(), []string{"baseline"}); err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title, Columns: []string{"benchmark", col}, Note: note}
	for _, b := range benchList() {
		st, err := r.Run(b, "baseline")
		if err != nil {
			return nil, err
		}
		t.AddRow(b, f(st))
	}
	t.Mean("mean")
	return t, nil
}

// Fig3 reports reservation fails normalized to total L1 accesses.
func Fig3(r *Runner) (*Table, error) {
	return r.baselineMetric("fig3", "Reservation fails / total L1 accesses (baseline)",
		"resfail-frac", func(s *stats.Sim) float64 { return s.ReservationFailRate() },
		"paper: ~30% average across memory-bound applications")
}

// Fig4 reports interconnect bandwidth utilization.
func Fig4(r *Runner) (*Table, error) {
	return r.baselineMetric("fig4", "L1<->L2 bandwidth utilization (baseline)",
		"bw-util", func(s *stats.Sim) float64 { return s.BandwidthUtilization() },
		"paper: ~33% of theoretical bandwidth")
}

// Fig5 reports memory stalls over all stalls.
func Fig5(r *Runner) (*Table, error) {
	return r.baselineMetric("fig5", "Cycles all warps wait on memory / total stalls (baseline)",
		"memstall-frac", func(s *stats.Sim) float64 { return s.MemStallFraction() },
		"paper: ~55% of run-time stalls are memory stalls")
}

// coverageTable builds coverage/accuracy grids over mechanisms.
func (r *Runner) coverageTable(id, title string, mechs []string, f func(*stats.Sim) float64, note string) (*Table, error) {
	if err := r.Prefill(benchList(), mechs); err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title, Columns: append([]string{"benchmark"}, mechs...), Note: note}
	for _, b := range benchList() {
		vals := make([]float64, len(mechs))
		for i, m := range mechs {
			st, err := r.Run(b, m)
			if err != nil {
				return nil, err
			}
			vals[i] = f(st)
		}
		t.AddRow(b, vals...)
	}
	t.Mean("mean")
	return t, nil
}

// Fig6 compares prior mechanisms' coverage against the Ideal prefetcher.
func Fig6(r *Runner) (*Table, error) {
	return r.coverageTable("fig6", "Coverage of prior mechanisms vs Ideal",
		[]string{"intra", "inter", "mta", "cta", "ideal"},
		func(s *stats.Sim) float64 { return s.Coverage() },
		"paper: Ideal ≈ 25% above MTA and ≈ 70% above CTA-aware")
}

// chainStats memoizes the offline chain analysis.
func (r *Runner) chainStats() (map[string]chains.Stats, error) {
	out := make(map[string]chains.Stats, len(benchList()))
	for _, b := range benchList() {
		k, err := workloads.Build(b, r.Scale)
		if err != nil {
			return nil, err
		}
		out[b] = chains.Analyze(k)
	}
	return out, nil
}

// Fig9 reports the fraction of load PCs participating in chains.
func Fig9(r *Runner) (*Table, error) {
	cs, err := r.chainStats()
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig9", Title: "PC_lds in chains / total PC_lds (representative warp)",
		Columns: []string{"benchmark", "chain-pc-frac"},
		Note:    "paper: chains cover ~65% of load PCs on average"}
	for _, b := range benchList() {
		t.AddRow(b, cs[b].PCFraction())
	}
	t.Mean("mean")
	return t, nil
}

// Fig10 reports the maximum chain repetition within a representative warp.
func Fig10(r *Runner) (*Table, error) {
	cs, err := r.chainStats()
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig10", Title: "Max repetition of a chain within a representative warp",
		Columns: []string{"benchmark", "max-repetition"},
		Note:    "paper: chains repeat ~35 times per warp on average"}
	for _, b := range benchList() {
		t.AddRow(b, float64(cs[b].MaxRepetition))
	}
	t.Mean("mean")
	return t, nil
}

// Fig11 compares chain-prefetchable accesses against MTA-prefetchable ones.
func Fig11(r *Runner) (*Table, error) {
	cs, err := r.chainStats()
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig11", Title: "Accesses prefetchable by chains vs MTA (trace analysis)",
		Columns: []string{"benchmark", "chains", "mta"},
		Note:    "paper: chains ≈ 70% (≈ 15% above MTA)"}
	for _, b := range benchList() {
		t.AddRow(b, cs[b].ChainCoverage, cs[b].MTACoverage)
	}
	t.Mean("mean")
	return t, nil
}

// Fig16 reports coverage of all evaluated mechanisms.
func Fig16(r *Runner) (*Table, error) {
	return r.coverageTable("fig16", "Prefetch coverage", Fig16Order,
		func(s *stats.Sim) float64 { return s.Coverage() },
		"paper: Snake ≈ 80% (≈ 15% above MTA); s-Snake ≈ 70%; throttle costs ≈ 2%")
}

// Fig17 reports accuracy (timely coverage).
func Fig17(r *Runner) (*Table, error) {
	return r.coverageTable("fig17", "Prefetch accuracy (timely coverage)", Fig16Order,
		func(s *stats.Sim) float64 { return s.Accuracy() },
		"paper: Snake ≈ 75% (≈ 55% above CTA-aware); throttle buys ≈ 20%")
}

// Fig18 reports IPC normalized to the baseline.
func Fig18(r *Runner) (*Table, error) {
	if err := r.Prefill(benchList(), append([]string{"baseline"}, Fig16Order...)); err != nil {
		return nil, err
	}
	t := &Table{ID: "fig18", Title: "IPC normalized to baseline",
		Columns: append([]string{"benchmark"}, Fig16Order...),
		Note:    "paper: Snake +17% average (up to +60%, LIB); Snake beats Snake-DT by 13% and Snake-T by 7%"}
	for _, b := range benchList() {
		base, err := r.Run(b, "baseline")
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(Fig16Order))
		for i, m := range Fig16Order {
			st, err := r.Run(b, m)
			if err != nil {
				return nil, err
			}
			vals[i] = st.IPC() / base.IPC()
		}
		t.AddRow(b, vals...)
	}
	t.Mean("mean")
	return t, nil
}

// Fig19 reports energy normalized to the baseline.
func Fig19(r *Runner) (*Table, error) {
	if err := r.Prefill(benchList(), []string{"baseline", "snake"}); err != nil {
		return nil, err
	}
	model := energy.Default()
	t := &Table{ID: "fig19", Title: "Snake energy normalized to baseline",
		Columns: []string{"benchmark", "energy-norm"},
		Note:    "paper: ~17% less energy on average"}
	for _, b := range benchList() {
		base, err := r.Run(b, "baseline")
		if err != nil {
			return nil, err
		}
		sn, err := r.Run(b, "snake")
		if err != nil {
			return nil, err
		}
		e0 := model.Estimate(base, r.Cfg, false).Total()
		e1 := model.Estimate(sn, r.Cfg, true).Total()
		t.AddRow(b, e1/e0)
	}
	t.Mean("mean")
	return t, nil
}

// tailSweepSizes are the Tail-table entry counts swept in Figures 20–22;
// 1000 stands in for the unbounded table the paper compares against.
var tailSweepSizes = []int{3, 5, 10, 20, 1000}

// Fig20 sweeps the Tail-table entry count (combined eviction policy).
func Fig20(r *Runner) (*Table, error) {
	return r.tailSweep("fig20", "Coverage vs Tail-table entries (LRU+popcount eviction)", true,
		"paper: only ~8% coverage lost at 10 entries vs unbounded")
}

// Fig22 repeats the sweep with the popcount-only eviction policy.
func Fig22(r *Runner) (*Table, error) {
	return r.tailSweep("fig22", "Coverage vs Tail-table entries (popcount-only eviction)", false,
		"paper: clearly below the combined LRU+popcount policy of fig20")
}

func (r *Runner) tailSweep(id, title string, lru bool, note string) (*Table, error) {
	cols := []string{"benchmark"}
	for _, n := range tailSweepSizes {
		cols = append(cols, fmt.Sprintf("entries=%d", n))
	}
	t := &Table{ID: id, Title: title, Columns: cols, Note: note}
	type cell struct {
		b, key string
		cfg    core.Config
	}
	var cells []cell
	for _, b := range benchList() {
		for _, n := range tailSweepSizes {
			cfg := core.Defaults()
			cfg.TailEntries = n
			cfg.EvictPopcountOnly = !lru
			cells = append(cells, cell{b, fmt.Sprintf("%s-e%d-lru%v", id, n, lru), cfg})
		}
	}
	// Prefill concurrently.
	errs := make(chan error, len(cells))
	done := make(chan struct{}, len(cells))
	for _, c := range cells {
		go func(c cell) {
			_, err := r.SnakeVariant(c.b, c.key, c.cfg)
			if err != nil {
				errs <- err
			}
			done <- struct{}{}
		}(c)
	}
	for range cells {
		<-done
	}
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	for _, b := range benchList() {
		vals := make([]float64, len(tailSweepSizes))
		for i, n := range tailSweepSizes {
			cfg := core.Defaults()
			cfg.TailEntries = n
			cfg.EvictPopcountOnly = !lru
			st, err := r.SnakeVariant(b, fmt.Sprintf("%s-e%d-lru%v", id, n, lru), cfg)
			if err != nil {
				return nil, err
			}
			vals[i] = st.Coverage()
		}
		t.AddRow(b, vals...)
	}
	t.Mean("mean")
	return t, nil
}

// Fig21 reports the storage cost versus Tail-table entries (analytic).
func Fig21(r *Runner) (*Table, error) {
	t := &Table{ID: "fig21", Title: "Snake storage (bytes) vs Tail-table entries",
		Columns: []string{"entries", "head-bytes", "tail-bytes", "total-bytes"},
		Note:    "Table 3 point: 10 entries -> 448 + 320 = 768 bytes per SM"}
	for _, n := range []int{5, 10, 20, 40, 80} {
		cfg := core.Defaults()
		cfg.TailEntries = n
		c := core.CostOf(cfg)
		t.AddRow(fmt.Sprintf("%d", n), float64(c.HeadBytes()), float64(c.TailBytes()), float64(c.TotalBytes()))
	}
	return t, nil
}

// throttleIntervals swept in Figure 23.
var throttleIntervals = []int{10, 25, 50, 100, 200, 400}

// Fig23 sweeps the throttling halt interval: accuracy/coverage trade-off.
func Fig23(r *Runner) (*Table, error) {
	t := &Table{ID: "fig23", Title: "Accuracy & coverage vs throttle interval (mean over benchmarks)",
		Columns: []string{"interval", "accuracy", "coverage"},
		Note:    "paper: 50 cycles gives ~75% accuracy at only ~2% coverage loss"}
	for _, iv := range throttleIntervals {
		cfg := core.Defaults()
		cfg.ThrottleCycles = iv
		var acc, cov float64
		for _, b := range benchList() {
			st, err := r.SnakeVariant(b, fmt.Sprintf("fig23-%d", iv), cfg)
			if err != nil {
				return nil, err
			}
			acc += st.Accuracy()
			cov += st.Coverage()
		}
		n := float64(len(benchList()))
		t.AddRow(fmt.Sprintf("%d", iv), acc/n, cov/n)
	}
	return t, nil
}

// tileFracs swept in Figure 24 (fraction of the unified cache).
var tileFracs = []float64{0.25, 0.50, 0.75, 1.00}

// Fig24 evaluates tiling with and without Snake.
func Fig24(r *Runner) (*Table, error) {
	model := energy.Default()
	t := &Table{ID: "fig24", Title: "Tiled convolution: IPC and energy vs tile size (normalized to untiled baseline)",
		Columns: []string{"config", "ipc-norm", "energy-norm"},
		Note:    "paper: best at 75% tile; Snake+Tiled ≈ 2.6x/1.9x/1.7x the improvement of Tiled alone at 25/50/75%"}

	// The tiled workloads are not in the benchmark registry; they run
	// through runKernel with synthetic memoization keys.
	type res struct {
		ipc, energy float64
	}
	runTiled := func(frac float64, snake bool) (res, error) {
		k := workloads.TiledConv(r.Scale, frac, r.Cfg.DataCacheBytes())
		mechName := "baseline"
		if snake {
			mechName = "snake"
		}
		st, err := r.runKernel(k, fmt.Sprintf("tiled%.2f", frac), mechName)
		if err != nil {
			return res{}, err
		}
		return res{ipc: st.IPC(), energy: model.Estimate(st, r.Cfg, snake).Total()}, nil
	}
	base, err := runTiled(0, false)
	if err != nil {
		return nil, err
	}
	for _, frac := range tileFracs {
		tl, err := runTiled(frac, false)
		if err != nil {
			return nil, err
		}
		sn, err := runTiled(frac, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("tiled-%.0f%%", frac*100), tl.ipc/base.ipc, tl.energy/base.energy)
		t.AddRow(fmt.Sprintf("snake+tiled-%.0f%%", frac*100), sn.ipc/base.ipc, sn.energy/base.energy)
	}
	return t, nil
}

// Fig25 reports the L1 hit rate for baseline, Snake, and Isolated-Snake.
func Fig25(r *Runner) (*Table, error) {
	mechs := []string{"baseline", "snake", "isolated-snake"}
	return r.coverageTable("fig25", "L1 data cache hit rate", mechs,
		func(s *stats.Sim) float64 { return s.L1HitRate() },
		"paper: 45% / 79% / 84% baseline / Snake / Isolated-Snake")
}

// Table1 prints the simulated GPU configuration.
func Table1(r *Runner) (*Table, error) {
	c := r.Cfg
	t := &Table{ID: "table1", Title: "GPU configuration (scaled from Table 1's V100)",
		Columns: []string{"parameter", "value"},
		Note:    "experiments run the scaled configuration; config.Default() holds the full Table 1 values"}
	t.AddRow("num-sm", float64(c.NumSM))
	t.AddRow("schedulers/sm", float64(c.SchedulersPerSM))
	t.AddRow("warps/sm", float64(c.MaxWarpsPerSM))
	t.AddRow("threads/sm", float64(c.ThreadsPerSM))
	t.AddRow("unified-kb", float64(c.Unified.SizeBytes/1024))
	t.AddRow("unified-ways", float64(c.Unified.Ways))
	t.AddRow("line-bytes", float64(c.Unified.LineSize))
	t.AddRow("l1-latency", float64(c.Unified.Latency))
	t.AddRow("mshr-entries", float64(c.MSHREntries))
	t.AddRow("mshr-merge", float64(c.MSHRMergeCap))
	t.AddRow("miss-queue", float64(c.MissQueueSize))
	t.AddRow("l2-partitions", float64(c.L2Partitions))
	t.AddRow("l2-kb/part", float64(c.L2.SizeBytes/1024))
	t.AddRow("dram-banks", float64(c.DRAMBanks))
	return t, nil
}

// Table2 lists the benchmark suite.
func Table2(r *Runner) (*Table, error) {
	t := &Table{ID: "table2", Title: "Benchmark suites (Table 2)",
		Columns: []string{"abbr", "loads", "insts"}}
	full := workloads.FullNames()
	names := benchList()
	note := ""
	for _, b := range names {
		k, err := workloads.Build(b, r.Scale)
		if err != nil {
			return nil, err
		}
		t.AddRow(b, float64(k.TotalLoads()), float64(k.TotalInsts()))
		note += b + "=" + full[b] + "; "
	}
	t.Note = note
	return t, nil
}

// ExtCPUPrefetchers is an extension experiment beyond the paper: the CPU
// prefetchers of §6.1 (Domino temporal, Bingo spatial), adapted to the GPU,
// against MTA and Snake. It quantifies the paper's argument that "hardware
// prefetchers designed for CPUs cannot be directly applied to GPUs": warp
// interleaving shreds Domino's temporal stream and dilutes Bingo's
// footprints.
func ExtCPUPrefetchers(r *Runner) (*Table, error) {
	mechs := []string{"domino", "bingo", "mta", "snake"}
	if err := r.Prefill(benchList(), append([]string{"baseline"}, mechs...)); err != nil {
		return nil, err
	}
	t := &Table{ID: "ext-cpu", Title: "CPU prefetchers on a GPU (extension): coverage and speedup",
		Columns: []string{"benchmark", "domino-cov", "bingo-cov", "domino-ipc", "bingo-ipc", "mta-ipc", "snake-ipc"},
		Note:    "§6.1's argument quantified: GPU warp interleaving defeats temporal/spatial CPU prefetching"}
	for _, b := range benchList() {
		base, err := r.Run(b, "baseline")
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, m := range []string{"domino", "bingo"} {
			st, err := r.Run(b, m)
			if err != nil {
				return nil, err
			}
			vals = append(vals, st.Coverage())
		}
		for _, m := range mechs {
			st, err := r.Run(b, m)
			if err != nil {
				return nil, err
			}
			vals = append(vals, st.IPC()/base.IPC())
		}
		t.AddRow(b, vals...)
	}
	t.Mean("mean")
	return t, nil
}

// ExtSchedulerHead is an extension experiment: the §3.1 doubled Head-table
// columns under the greedy GTO scheduler versus the single-column
// (non-greedy) layout, measured as Snake coverage.
func ExtSchedulerHead(r *Runner) (*Table, error) {
	single := core.Defaults()
	single.HeadSlotsPerRow = 1
	t := &Table{ID: "ext-sched", Title: "Doubled Head-table columns under GTO (extension)",
		Columns: []string{"benchmark", "doubled-cov", "single-cov"},
		Note:    "§3.1: a single column per row loses inter-warp tuples under an aggressive greedy scheduler"}
	for _, b := range benchList() {
		full, err := r.Run(b, "snake")
		if err != nil {
			return nil, err
		}
		st, err := r.SnakeVariant(b, "ext-singlehead", single)
		if err != nil {
			return nil, err
		}
		t.AddRow(b, full.Coverage(), st.Coverage())
	}
	t.Mean("mean")
	return t, nil
}

// ExtAppChain is an extension experiment beyond the paper: Snake's chain
// tables across kernel-launch boundaries. Each application workload runs
// twice — chain tables flushed at every launch (each kernel pays the full
// training warm-up) versus persisted across launches — and the table reports
// the whole-app speedup plus the prefetch coverage achieved on the launches
// after the first, where persistence pays off.
func ExtAppChain(r *Runner) (*Table, error) {
	t := &Table{ID: "ext-appchain", Title: "Snake chain persistence across kernel launches (extension)",
		Columns: []string{"app", "speedup", "tail-cov-flush", "tail-cov-persist"},
		Note:    "speedup = persistent-chain IPC / flushed-chain IPC; tail-cov = coverage on launches after the first"}
	tailCov := func(res *sim.AppResult) float64 {
		var covered, loads int64
		for _, l := range res.Launches[1:] {
			covered += l.Stats.Pf.Covered
			loads += l.Stats.Loads
		}
		if loads == 0 {
			return 0
		}
		return float64(covered) / float64(loads)
	}
	for _, app := range workloads.AppNames() {
		flush, err := r.RunApp(app, "snake", false)
		if err != nil {
			return nil, err
		}
		persist, err := r.RunApp(app, "snake", true)
		if err != nil {
			return nil, err
		}
		t.AddRow(app, persist.Stats.IPC()/flush.Stats.IPC(), tailCov(flush), tailCov(persist))
	}
	t.Mean("mean")
	return t, nil
}

// Table3 reports the hardware cost of Snake's tables.
func Table3(r *Runner) (*Table, error) {
	c := core.DefaultCost()
	t := &Table{ID: "table3", Title: "Snake table parameters (Table 3)",
		Columns: []string{"table", "bytes/entry", "entries", "total-bytes"},
		Note: fmt.Sprintf("paper: Head 14B x 32 = 448B, Tail 32B x 10 = 320B; latency %d cycles, %.1f pJ/access, %.0f mW static",
			core.LatencyCycles, core.AccessEnergyPJ, core.StaticPowerMW)}
	t.AddRow("head", float64(c.HeadBytesPerEntry), float64(c.HeadEntries), float64(c.HeadBytes()))
	t.AddRow("tail", float64(c.TailBytesPerEntry), float64(c.TailEntries), float64(c.TailBytes()))
	t.AddRow("total", 0, 0, float64(c.TotalBytes()))
	return t, nil
}
