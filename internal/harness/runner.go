package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/profiling"
	"snake/internal/sim"
	"snake/internal/stats"
	"snake/internal/trace"
	"snake/internal/workloads"
)

// Runner executes (benchmark, mechanism) simulations with memoization and a
// bounded worker pool, since the figure experiments share most of their
// underlying runs (e.g. Figures 16–19 all read the same eleven×ten grid).
//
// Successful runs are memoized forever (the simulations are deterministic,
// and sim.Options.Parallelism does not change results, so the cache is keyed
// without it); failed runs are never cached, so callers can retry transient
// failures such as context cancellation.
type Runner struct {
	Cfg   config.GPU
	Scale workloads.Scale
	// Parallelism is the sim.Options.Parallelism for each run (default 1).
	// Each running simulation holds that many Budget slots, so concurrency ×
	// parallelism never exceeds the budget.
	Parallelism int
	// SlackWindow is the sim.Options.SlackWindow for each run (default 0:
	// auto — the config-derived maximum). Results are bit-identical at every
	// setting, so like Parallelism it is not part of the memoization key.
	SlackWindow int
	// Split is the tenant-0 SM share for application runs that partition the
	// machine (0: an even halving). It shapes the assembled app's SM masks
	// and therefore participates in keys via the app's content digest.
	Split int
	// Budget bounds this runner's CPU use; NewRunner wires the process-wide
	// SharedBudget so runner pools and the snaked service cannot
	// oversubscribe the host between them.
	Budget *Budget
	// Store interns built kernel traces; nil uses the process-wide
	// workloads.Shared() store, so every runner (and the snaked service)
	// builds each (bench, Scale) trace once and shares it read-only.
	Store *workloads.Store
	// Engines recycles simulation engines between runs; nil uses the
	// process-wide SharedEnginePool().
	Engines *EnginePool
	// PhaseProfile, when non-nil, is handed to every simulation this runner
	// actually executes (memoized cache hits add nothing), accumulating the
	// engines' per-phase wall clock. The accumulator is unsynchronized: only
	// attach one to a runner that executes runs sequentially (no Prefill).
	PhaseProfile *profiling.Phases

	mu    sync.Mutex
	cache map[string]*runResult
}

// runResult is one in-flight or completed simulation. The creating goroutine
// executes the run and closes done; waiters block on done (or their own
// context). On failure the entry is removed from the cache before done is
// closed, so a retrying caller always finds either a fresh slot or a
// successful result. Kernel runs fill st; application runs fill app (and st
// with the aggregate) — the key namespaces never collide because app keys
// carry the AppDigest field.
type runResult struct {
	done chan struct{}
	st   *stats.Sim
	app  *sim.AppResult
	err  error
}

// NewRunner returns a runner with the standard experiment configuration:
// 4 SMs × 64 warps, default workload scale.
func NewRunner() *Runner {
	return &Runner{
		Cfg:    config.Scaled(4, 64),
		Scale:  workloads.DefaultScale(),
		Budget: SharedBudget(),
		cache:  make(map[string]*runResult),
	}
}

// Key returns the content-address of a (bench, mech) run under this runner's
// configuration — the same key the snaked service cache uses.
func (r *Runner) Key(bench, mech string) RunKey {
	return RunKey{Bench: bench, Mech: mech, GPU: r.Cfg, Scale: r.Scale}
}

// Run simulates the benchmark under the named mechanism (memoized).
func (r *Runner) Run(bench, mech string) (*stats.Sim, error) {
	return r.RunCtx(context.Background(), bench, mech)
}

// RunCtx is Run with cancellation: the context aborts the simulation's cycle
// loop (if this caller started it) or just this caller's wait (if another
// caller is already running the same key).
func (r *Runner) RunCtx(ctx context.Context, bench, mech string) (*stats.Sim, error) {
	return r.RunWithCtx(ctx, bench, mech, nil)
}

// RunWith is RunWithCtx without cancellation; mech must uniquely identify
// the factory's configuration for memoization. A nil factory resolves mech
// from the registry.
func (r *Runner) RunWith(bench, mech string, factory Factory) (*stats.Sim, error) {
	return r.RunWithCtx(context.Background(), bench, mech, factory)
}

// RunWithCtx is Run with a custom prefetcher factory and cancellation.
func (r *Runner) RunWithCtx(ctx context.Context, bench, mech string, factory Factory) (*stats.Sim, error) {
	return r.run(ctx, r.Key(bench, mech).Hash(), bench+"|"+mech, mech, factory, func() (*trace.Kernel, error) {
		return r.store().Kernel(bench, r.Scale)
	})
}

// runKernel memoizes a simulation of an explicitly built kernel.
func (r *Runner) runKernel(k *trace.Kernel, key, mech string) (*stats.Sim, error) {
	return r.run(context.Background(), r.Key(key, mech).Hash(), key+"|"+mech, mech, nil,
		func() (*trace.Kernel, error) { return k, nil })
}

func (r *Runner) run(ctx context.Context, key, label, mech string, factory Factory, build func() (*trace.Kernel, error)) (*stats.Sim, error) {
	res, err := r.memoize(ctx, key, func(res *runResult) {
		r.execute(ctx, res, label, mech, factory, build)
	})
	if err != nil {
		return nil, err
	}
	return res.st, nil
}

// memoize runs fill under the cache discipline for key: exactly one caller
// fills a fresh slot, concurrent callers of the same key wait on it, and
// failed fills are dropped so any waiter (or later caller) re-attempts under
// its own context.
func (r *Runner) memoize(ctx context.Context, key string, fill func(*runResult)) (*runResult, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.mu.Lock()
		res, ok := r.cache[key]
		if !ok {
			res = &runResult{done: make(chan struct{})}
			r.cache[key] = res
			r.mu.Unlock()
			fill(res)
			if res.err != nil {
				// Failures are not cached: drop the entry (unless a retry
				// already replaced it) so later callers re-attempt.
				r.mu.Lock()
				if r.cache[key] == res {
					delete(r.cache, key)
				}
				r.mu.Unlock()
			}
			close(res.done)
			return res, res.err
		}
		r.mu.Unlock()
		select {
		case <-res.done:
			if res.err == nil {
				return res, nil
			}
			// The executing caller failed (possibly its own cancellation);
			// loop and retry under our context.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// execute performs the simulation for one cache entry. It draws Parallelism
// slots from the CPU budget for the run's duration, so the runner's
// concurrent callers and the run's internal workers spend the same slots.
func (r *Runner) execute(ctx context.Context, res *runResult, label, mech string, factory Factory, build func() (*trace.Kernel, error)) {
	budget := r.Budget
	if budget == nil {
		budget = SharedBudget()
	}
	granted, err := budget.Acquire(ctx, max(r.Parallelism, 1))
	if err != nil {
		res.err = err
		return
	}
	defer budget.Release(granted)
	f := factory
	if f == nil {
		if f, res.err = Mechanism(mech); res.err != nil {
			return
		}
	}
	k, err := build()
	if err != nil {
		res.err = err
		return
	}
	// Registry mechanisms carry their name as the engine-pool reuse tag so
	// back-to-back runs of one mechanism recycle prefetcher state too; custom
	// factories get the empty tag (their mech labels, e.g. "snake:"+key, are
	// only unique within one runner's cache, not across the shared pool).
	tag := mech
	if factory != nil {
		tag = ""
	}
	out, err := r.engines().Run(k, sim.Options{
		Config:        r.Cfg,
		NewPrefetcher: f,
		Context:       ctx,
		Parallelism:   granted,
		SlackWindow:   r.SlackWindow,
		PhaseProfile:  r.PhaseProfile,
	}, tag)
	if err != nil {
		res.err = fmt.Errorf("%s: %w", label, err)
		return
	}
	res.st = &out.Stats
}

// store returns the runner's kernel store (the process-wide one when unset).
func (r *Runner) store() *workloads.Store {
	if r.Store != nil {
		return r.Store
	}
	return workloads.Shared()
}

// engines returns the runner's engine pool (the process-wide one when unset).
func (r *Runner) engines() *EnginePool {
	if r.Engines != nil {
		return r.Engines
	}
	return SharedEnginePool()
}

// Prefill launches the given (bench, mech) grid concurrently and waits; it
// exists so experiments reading a big grid pay wall-clock ≈ grid/#cores.
func (r *Runner) Prefill(benches, mechs []string) error {
	return r.PrefillCtx(context.Background(), benches, mechs)
}

// PrefillCtx is Prefill with cancellation. All cells are attempted; every
// failure is reported via errors.Join rather than only the first.
func (r *Runner) PrefillCtx(ctx context.Context, benches, mechs []string) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(benches)*len(mechs))
	for _, b := range benches {
		for _, m := range mechs {
			wg.Add(1)
			go func(b, m string) {
				defer wg.Done()
				if _, err := r.RunCtx(ctx, b, m); err != nil {
					errCh <- fmt.Errorf("%s/%s: %w", b, m, err)
				}
			}(b, m)
		}
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// SnakeVariant builds a memoized custom Snake configuration run.
func (r *Runner) SnakeVariant(bench, key string, cfg core.Config) (*stats.Sim, error) {
	return r.SnakeVariantCtx(context.Background(), bench, key, cfg)
}

// SnakeVariantCtx is SnakeVariant with cancellation.
func (r *Runner) SnakeVariantCtx(ctx context.Context, bench, key string, cfg core.Config) (*stats.Sim, error) {
	return r.RunWithCtx(ctx, bench, "snake:"+key, func(int) prefetch.Prefetcher { return core.New(cfg) })
}

// AppKey returns the content-address of an (app, mech, chain) run under this
// runner's configuration. It interns the app (assembling it on first use for
// this machine's SM count and the runner's Split) to obtain the content
// digest that distinguishes the same app name across partition geometries.
func (r *Runner) AppKey(app, mech string, chain bool) (RunKey, error) {
	_, digest, err := r.store().App(app, r.Scale, r.Cfg.NumSM, r.Split)
	if err != nil {
		return RunKey{}, err
	}
	return RunKey{
		Mech: mech, GPU: r.Cfg, Scale: r.Scale,
		App: app, AppDigest: digest, Chain: chain,
	}, nil
}

// RunApp simulates the named application workload under the named registry
// mechanism (memoized), with chain selecting sim.Options.ChainPersistence.
func (r *Runner) RunApp(app, mech string, chain bool) (*sim.AppResult, error) {
	return r.RunAppCtx(context.Background(), app, mech, chain)
}

// RunAppCtx is RunApp with cancellation, under the same retry discipline as
// RunCtx: failed fills are not cached.
func (r *Runner) RunAppCtx(ctx context.Context, app, mech string, chain bool) (*sim.AppResult, error) {
	key, err := r.AppKey(app, mech, chain)
	if err != nil {
		return nil, err
	}
	a, _, err := r.store().App(app, r.Scale, r.Cfg.NumSM, r.Split)
	if err != nil {
		return nil, err
	}
	res, err := r.memoize(ctx, key.Hash(), func(res *runResult) {
		r.executeApp(ctx, res, app+"|"+mech, mech, chain, a)
	})
	if err != nil {
		return nil, err
	}
	return res.app, nil
}

// executeApp is execute's application counterpart: same budget discipline,
// same engine pool (apps and kernels recycle each other's machines), plus
// the chain-persistence policy.
func (r *Runner) executeApp(ctx context.Context, res *runResult, label, mech string, chain bool, a *trace.App) {
	budget := r.Budget
	if budget == nil {
		budget = SharedBudget()
	}
	granted, err := budget.Acquire(ctx, max(r.Parallelism, 1))
	if err != nil {
		res.err = err
		return
	}
	defer budget.Release(granted)
	f, err := Mechanism(mech)
	if err != nil {
		res.err = err
		return
	}
	out, err := r.engines().RunApp(a, sim.Options{
		Config:           r.Cfg,
		NewPrefetcher:    f,
		Context:          ctx,
		Parallelism:      granted,
		SlackWindow:      r.SlackWindow,
		ChainPersistence: chain,
		PhaseProfile:     r.PhaseProfile,
	}, mech)
	if err != nil {
		res.err = fmt.Errorf("%s: %w", label, err)
		return
	}
	res.app = out
	res.st = &out.Stats
}
