package harness

import (
	"fmt"
	"runtime"
	"sync"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/sim"
	"snake/internal/stats"
	"snake/internal/trace"
	"snake/internal/workloads"
)

// Runner executes (benchmark, mechanism) simulations with memoization and a
// bounded worker pool, since the figure experiments share most of their
// underlying runs (e.g. Figures 16–19 all read the same eleven×ten grid).
type Runner struct {
	Cfg   config.GPU
	Scale workloads.Scale

	mu    sync.Mutex
	cache map[string]*runResult
	sem   chan struct{}
}

type runResult struct {
	once sync.Once
	st   *stats.Sim
	err  error
}

// NewRunner returns a runner with the standard experiment configuration:
// 4 SMs × 64 warps, default workload scale.
func NewRunner() *Runner {
	return &Runner{
		Cfg:   config.Scaled(4, 64),
		Scale: workloads.DefaultScale(),
		cache: make(map[string]*runResult),
		sem:   make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
}

// Run simulates the benchmark under the named mechanism (memoized).
func (r *Runner) Run(bench, mech string) (*stats.Sim, error) {
	return r.RunWith(bench, mech, nil)
}

// RunWith is Run with a custom prefetcher factory; mech must uniquely
// identify the factory's configuration for memoization. A nil factory
// resolves mech from the registry.
func (r *Runner) RunWith(bench, mech string, factory Factory) (*stats.Sim, error) {
	return r.run(bench+"|"+mech, mech, factory, func() (*trace.Kernel, error) {
		return workloads.Build(bench, r.Scale)
	})
}

// runKernel memoizes a simulation of an explicitly built kernel.
func (r *Runner) runKernel(k *trace.Kernel, key, mech string) (*stats.Sim, error) {
	return r.run(key+"|"+mech, mech, nil, func() (*trace.Kernel, error) { return k, nil })
}

func (r *Runner) run(key, mech string, factory Factory, build func() (*trace.Kernel, error)) (*stats.Sim, error) {
	r.mu.Lock()
	res, ok := r.cache[key]
	if !ok {
		res = &runResult{}
		r.cache[key] = res
	}
	r.mu.Unlock()

	res.once.Do(func() {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		f := factory
		if f == nil {
			f, res.err = Mechanism(mech)
			if res.err != nil {
				return
			}
		}
		k, err := build()
		if err != nil {
			res.err = err
			return
		}
		out, err := sim.Run(k, sim.Options{Config: r.Cfg, NewPrefetcher: f})
		if err != nil {
			res.err = fmt.Errorf("%s: %w", key, err)
			return
		}
		res.st = &out.Stats
	})
	return res.st, res.err
}

// Prefill launches the given (bench, mech) grid concurrently and waits; it
// exists so experiments reading a big grid pay wall-clock ≈ grid/#cores.
func (r *Runner) Prefill(benches, mechs []string) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(benches)*len(mechs))
	for _, b := range benches {
		for _, m := range mechs {
			wg.Add(1)
			go func(b, m string) {
				defer wg.Done()
				if _, err := r.Run(b, m); err != nil {
					errCh <- err
				}
			}(b, m)
		}
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// SnakeVariant builds a memoized custom Snake configuration run.
func (r *Runner) SnakeVariant(bench, key string, cfg core.Config) (*stats.Sim, error) {
	return r.RunWith(bench, "snake:"+key, func(int) prefetch.Prefetcher { return core.New(cfg) })
}
