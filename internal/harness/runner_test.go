package harness

import (
	"context"
	"strings"
	"testing"

	"snake/internal/config"
	"snake/internal/workloads"
)

// TestRunnerRetriesAfterCancel: a run aborted by its context must not poison
// the cache — the old sync.Once memoization cached the first error forever.
func TestRunnerRetriesAfterCancel(t *testing.T) {
	r := tinyRunner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunCtx(ctx, "lps", "baseline"); err == nil {
		t.Fatal("canceled run succeeded")
	}
	st, err := r.Run("lps", "baseline")
	if err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if st == nil || st.Insts == 0 {
		t.Fatal("retry returned empty stats")
	}
}

// TestRunnerDoesNotCacheFailures: two calls with a bad mechanism both fail,
// and a concurrent waiter retries rather than inheriting the first error.
func TestRunnerDoesNotCacheFailures(t *testing.T) {
	r := tinyRunner()
	for i := 0; i < 2; i++ {
		if _, err := r.Run("lps", "bogus"); err == nil {
			t.Fatalf("call %d: unknown mechanism accepted", i)
		}
	}
	r.mu.Lock()
	n := len(r.cache)
	r.mu.Unlock()
	if n != 0 {
		t.Errorf("failed runs left %d cache entries", n)
	}
}

// TestPrefillJoinsErrors: Prefill must report every failing cell, not just
// an arbitrary one.
func TestPrefillJoinsErrors(t *testing.T) {
	r := tinyRunner()
	err := r.Prefill([]string{"cp", "lps"}, []string{"bogus"})
	if err == nil {
		t.Fatal("Prefill with unknown mechanism succeeded")
	}
	for _, want := range []string{"cp/bogus", "lps/bogus"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

// TestRunKeyHash pins the content-address semantics: identical inputs agree,
// any differing input diverges.
func TestRunKeyHash(t *testing.T) {
	base := RunKey{Bench: "lps", Mech: "snake", GPU: config.Scaled(4, 64), Scale: workloads.DefaultScale()}
	if base.Hash() != base.Hash() {
		t.Fatal("hash not deterministic")
	}
	if len(base.Hash()) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(base.Hash()))
	}
	variants := []RunKey{base, base, base, base}
	variants[0].Bench = "cp"
	variants[1].Mech = "baseline"
	variants[2].GPU.NumSM = 8
	variants[3].Scale.CTAs = 7
	for i, v := range variants {
		if v.Hash() == base.Hash() {
			t.Errorf("variant %d collides with base", i)
		}
	}
}

// TestRunnerSharesInFlight: concurrent identical runs produce one memoized
// result object.
func TestRunnerSharesInFlight(t *testing.T) {
	r := tinyRunner()
	type out struct {
		st  interface{}
		err error
	}
	ch := make(chan out, 8)
	for i := 0; i < 8; i++ {
		go func() {
			st, err := r.Run("cp", "baseline")
			ch <- out{st, err}
		}()
	}
	var first interface{}
	for i := 0; i < 8; i++ {
		o := <-ch
		if o.err != nil {
			t.Fatal(o.err)
		}
		if first == nil {
			first = o.st
		} else if o.st != first {
			t.Fatal("concurrent runs returned distinct result objects")
		}
	}
}
