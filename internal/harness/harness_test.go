package harness

import (
	"bytes"
	"strings"
	"testing"

	"snake/internal/config"
	"snake/internal/workloads"
)

// tinyRunner shrinks everything so harness tests stay fast.
func tinyRunner() *Runner {
	r := NewRunner()
	r.Cfg = config.Scaled(2, 16)
	r.Scale = workloads.Scale{CTAs: 6, WarpsPerCTA: 4, Iters: 4}
	return r
}

func TestMechanismRegistry(t *testing.T) {
	for _, name := range MechanismNames() {
		f, err := Mechanism(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := f(0)
		if p == nil {
			t.Fatalf("%s: nil prefetcher", name)
		}
	}
	if _, err := Mechanism("bogus"); err == nil {
		t.Error("unknown mechanism accepted")
	}
	for _, m := range Fig16Order {
		if _, err := Mechanism(m); err != nil {
			t.Errorf("Fig16Order mechanism %q not in registry", m)
		}
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := tinyRunner()
	a, err := r.Run("lps", "baseline")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("lps", "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Run did not return the memoized result")
	}
}

func TestExperimentIDsResolve(t *testing.T) {
	for _, id := range ExperimentIDs() {
		if _, ok := Experiments[id]; !ok {
			t.Errorf("experiment %q missing from map", id)
		}
	}
}

func TestAnalyticExperiments(t *testing.T) {
	r := tinyRunner()
	for _, id := range []string{"fig21", "table1", "table3"} {
		tb, err := Experiments[id](r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	tb, err := Table3(tinyRunner())
	if err != nil {
		t.Fatal(err)
	}
	// Head 448 bytes, Tail 320 bytes (Table 3).
	if tb.Rows[0].Values[2] != 448 {
		t.Errorf("head total = %v, want 448", tb.Rows[0].Values[2])
	}
	if tb.Rows[1].Values[2] != 320 {
		t.Errorf("tail total = %v, want 320", tb.Rows[1].Values[2])
	}
}

func TestSimulationExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment in -short mode")
	}
	r := tinyRunner()
	tb, err := Fig3(r)
	if err != nil {
		t.Fatal(err)
	}
	// 11 benchmarks + mean row.
	if len(tb.Rows) != 12 {
		t.Errorf("fig3 rows = %d, want 12", len(tb.Rows))
	}
	if tb.Rows[len(tb.Rows)-1].Label != "mean" {
		t.Error("last row must be the mean")
	}
}

func TestChainExperimentsSmoke(t *testing.T) {
	r := tinyRunner()
	for _, e := range []Experiment{Fig9, Fig10, Fig11} {
		tb, err := e(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) != 12 {
			t.Errorf("%s rows = %d", tb.ID, len(tb.Rows))
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Columns: []string{"a", "b"}, Note: "n"}
	tb.AddRow("r1", 0.5)
	tb.AddRow("r2", 1.5)
	tb.Mean("mean")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T", "r1", "0.500", "mean", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestMeanOnEmptyTableIsNoop(t *testing.T) {
	tb := &Table{ID: "x", Columns: []string{"a"}}
	tb.Mean("mean")
	if len(tb.Rows) != 0 {
		t.Error("Mean on empty table added a row")
	}
}

// TestAllExperimentsAtTinyScale exercises every experiment end to end on a
// reduced configuration: each must produce a non-empty table whose row
// labels and column counts are consistent.
func TestAllExperimentsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	r := NewRunner()
	r.Cfg = config.Scaled(2, 16)
	r.Scale = workloads.Scale{CTAs: 6, WarpsPerCTA: 4, Iters: 4}
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tb, err := Experiments[id](r)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			if tb.ID != id {
				t.Errorf("%s: table ID %q", id, tb.ID)
			}
			for _, row := range tb.Rows {
				if row.Label == "" {
					t.Errorf("%s: row with empty label", id)
				}
				if len(row.Values) > len(tb.Columns)-1 {
					t.Errorf("%s: row %q has %d values for %d value columns",
						id, row.Label, len(row.Values), len(tb.Columns)-1)
				}
			}
		})
	}
}
