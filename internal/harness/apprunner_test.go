package harness

import (
	"reflect"
	"testing"

	"snake/internal/sim"
	"snake/internal/workloads"
)

// TestRunnerAppMemoizes: app runs are memoized per (app, mech, chain), the
// two chain policies occupy distinct cache slots, and the pooled harness path
// is bit-identical to a direct sim.RunApp with the same options.
func TestRunnerAppMemoizes(t *testing.T) {
	r := tinyRunner()
	a1, err := r.RunApp("warmup", "snake", true)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.RunApp("warmup", "snake", true)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("second RunApp did not return the memoized result")
	}
	flushed, err := r.RunApp("warmup", "snake", false)
	if err != nil {
		t.Fatal(err)
	}
	if flushed == a1 {
		t.Error("chain policies share one cache slot")
	}

	f, err := Mechanism("snake")
	if err != nil {
		t.Fatal(err)
	}
	app, _, err := r.store().App("warmup", r.Scale, r.Cfg.NumSM, r.Split)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunApp(app, sim.Options{
		Config: r.Cfg, NewPrefetcher: f, ChainPersistence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, want) {
		t.Error("harness app run diverges from direct sim.RunApp")
	}
}

// TestRunnerAppFailuresNotCached mirrors the kernel-path contract.
func TestRunnerAppFailuresNotCached(t *testing.T) {
	r := tinyRunner()
	if _, err := r.RunApp("nope", "snake", false); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := r.RunApp("warmup", "bogus", false); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	r.mu.Lock()
	n := len(r.cache)
	r.mu.Unlock()
	if n != 0 {
		t.Errorf("failed app runs left %d cache entries", n)
	}
}

// TestRunKeyHashApp: the app fields participate in the content address, and
// their zero values leave single-kernel keys untouched (omitempty — existing
// cached results stay valid).
func TestRunKeyHashApp(t *testing.T) {
	r := tinyRunner()
	key, err := r.AppKey("cotenant", "snake", false)
	if err != nil {
		t.Fatal(err)
	}
	if key.AppDigest == "" {
		t.Fatal("AppKey returned no digest")
	}
	variants := []RunKey{key, key, key}
	variants[0].App = "fanout"
	variants[1].AppDigest = "0000"
	variants[2].Chain = true
	for i, v := range variants {
		if v.Hash() == key.Hash() {
			t.Errorf("app variant %d collides with base", i)
		}
	}
	// A different Split reshapes the masks, so the digest (and key) moves.
	r2 := tinyRunner()
	r2.Split = 1
	if r2.Cfg.NumSM <= 2 {
		r2.Cfg.NumSM = 4 // ensure split=1 differs from the even halving
	}
	key2, err := r2.AppKey("cotenant", "snake", false)
	if err != nil {
		t.Fatal(err)
	}
	if key2.AppDigest == key.AppDigest && key2.GPU == key.GPU {
		t.Error("different Split produced the same digest")
	}

	kernel := RunKey{Bench: "lps", Mech: "snake", GPU: r.Cfg, Scale: r.Scale}
	withZeroApp := kernel
	withZeroApp.App, withZeroApp.AppDigest, withZeroApp.Chain = "", "", false
	if kernel.Hash() != withZeroApp.Hash() {
		t.Error("zero app fields perturb single-kernel hashes")
	}
}

// TestEnginePoolRunApp: the pool's app path recycles engines with the
// kernel path (shared machine shape) and stays bit-identical to fresh runs.
func TestEnginePoolRunApp(t *testing.T) {
	r := tinyRunner()
	app, _, err := r.store().App("pipeline", r.Scale, r.Cfg.NumSM, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Mechanism("mta")
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.Options{Config: r.Cfg, NewPrefetcher: f}
	want, err := sim.RunApp(app, opt)
	if err != nil {
		t.Fatal(err)
	}
	p := NewEnginePool()
	for i := 0; i < 2; i++ {
		got, err := p.RunApp(app, opt, "mta")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("pooled app run %d diverges from fresh", i)
		}
	}
	k, err := workloads.Build("lps", r.Scale)
	if err != nil {
		t.Fatal(err)
	}
	wantK, err := sim.Run(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotK, err := p.Run(k, opt, "mta")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotK, wantK) {
		t.Error("kernel run on an app-warmed pool diverges from fresh")
	}
}
