package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/workloads"
)

// runKeyVersion salts the hash so a change to the key schema (or to the
// meaning of any field) invalidates previously cached results.
const runKeyVersion = "snake-runkey-v1"

// RunKey identifies one simulation for memoization and result caching: the
// same key always denotes the same deterministic simulation, so a result
// computed once can be reused by any holder of the key. It is shared between
// the in-process Runner and the snaked service's content-addressed cache.
type RunKey struct {
	// Bench is the benchmark name (or a synthetic kernel identifier for
	// kernels outside the registry, e.g. "tiled0.75").
	Bench string `json:"bench"`
	// Mech is the mechanism name; for custom factories it must uniquely
	// identify the factory's configuration.
	Mech string `json:"mech"`
	// Snake is the custom Snake configuration for variant runs; nil for
	// registry mechanisms.
	Snake *core.Config `json:"snake,omitempty"`
	// GPU is the simulated hardware configuration.
	GPU config.GPU `json:"gpu"`
	// Scale is the workload scale.
	Scale workloads.Scale `json:"scale"`
	// App is the application name for multi-launch runs; empty for
	// single-kernel runs. All three app fields use omitempty so single-kernel
	// keys marshal exactly as before this field existed — no cache
	// invalidation, no runKeyVersion bump.
	App string `json:"app,omitempty"`
	// AppDigest content-addresses the application's launch structure —
	// kernels, dependency edges, SM masks, tenant IDs — so one app name
	// assembled for different machines or partition splits keys distinct
	// results.
	AppDigest string `json:"appDigest,omitempty"`
	// Chain records sim.Options.ChainPersistence, which changes app results
	// (single-kernel runs ignore it and leave it false).
	Chain bool `json:"chain,omitempty"`
}

// Hash returns the content address of the key: a hex SHA-256 over the
// canonical JSON encoding (encoding/json emits struct fields in declaration
// order, so the encoding is deterministic).
func (k RunKey) Hash() string {
	b, err := json.Marshal(k)
	if err != nil {
		// Only unsupported types can fail Marshal; RunKey has none.
		panic(fmt.Sprintf("harness: RunKey marshal: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(runKeyVersion))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}
