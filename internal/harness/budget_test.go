package harness

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBudgetClampsWideRequests(t *testing.T) {
	b := NewBudget(4)
	if got := b.Cap(); got != 4 {
		t.Fatalf("Cap() = %d, want 4", got)
	}
	// Wider than the machine degrades to the whole machine, not a deadlock.
	ctx := context.Background()
	got, err := b.Acquire(ctx, 64)
	if err != nil || got != 4 {
		t.Fatalf("Acquire(64) = (%d, %v), want (4, nil)", got, err)
	}
	b.Release(got)
	// Sub-positive requests round up to one slot.
	got, err = b.Acquire(ctx, 0)
	if err != nil || got != 1 {
		t.Fatalf("Acquire(0) = (%d, %v), want (1, nil)", got, err)
	}
	b.Release(got)
}

func TestBudgetBoundsConcurrentUse(t *testing.T) {
	const slots = 3
	b := NewBudget(slots)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		n := 1 + i%slots
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			got, err := b.Acquire(context.Background(), n)
			if err != nil {
				t.Errorf("Acquire(%d): %v", n, err)
				return
			}
			cur := inUse.Add(int64(got))
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inUse.Add(-int64(got))
			b.Release(got)
		}(n)
	}
	wg.Wait()
	if p := peak.Load(); p > slots {
		t.Errorf("peak concurrent slot use %d exceeds budget %d", p, slots)
	}
}

// TestBudgetFIFOPreventsStarvation: a parked wide request must block later
// narrow requests from slipping past it, or a stream of narrow acquires
// starves it forever.
func TestBudgetFIFOPreventsStarvation(t *testing.T) {
	b := NewBudget(4)
	first, err := b.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}

	wideGranted := make(chan struct{})
	go func() {
		got, err := b.Acquire(context.Background(), 4) // must wait: 2 of 4 in use
		if err != nil || got != 4 {
			t.Errorf("wide Acquire = (%d, %v), want (4, nil)", got, err)
		}
		close(wideGranted)
		b.Release(got)
	}()

	// Wait until the wide request is parked.
	for {
		b.mu.Lock()
		parked := len(b.waiters) == 1
		b.mu.Unlock()
		if parked {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}

	// A narrow request arriving behind the parked wide one must queue even
	// though a slot is technically free.
	narrowGranted := make(chan struct{})
	go func() {
		got, err := b.Acquire(context.Background(), 1)
		if err != nil {
			t.Errorf("narrow Acquire: %v", err)
		}
		close(narrowGranted)
		b.Release(got)
	}()
	select {
	case <-narrowGranted:
		t.Fatal("narrow request jumped the queue past a parked wide request")
	case <-time.After(5 * time.Millisecond):
	}

	b.Release(first)
	for ch, name := range map[chan struct{}]string{wideGranted: "wide", narrowGranted: "narrow"} {
		select {
		case <-ch:
		case <-time.After(time.Second):
			t.Fatalf("%s request not granted after release", name)
		}
	}
}

func TestBudgetCancellationUnblocksQueue(t *testing.T) {
	b := NewBudget(2)
	held, err := b.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}

	// Park a request, then cancel it: Acquire must return the context error
	// and grant zero slots.
	ctx, cancel := context.WithCancel(context.Background())
	canceled := make(chan struct{})
	go func() {
		got, err := b.Acquire(ctx, 2)
		if err == nil || got != 0 {
			t.Errorf("canceled Acquire = (%d, %v), want (0, ctx error)", got, err)
		}
		close(canceled)
	}()
	for {
		b.mu.Lock()
		parked := len(b.waiters) == 1
		b.mu.Unlock()
		if parked {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}

	// A request parked behind the canceled one must still be admitted once
	// the cancellation removes it from the queue.
	secondGranted := make(chan struct{})
	go func() {
		got, err := b.Acquire(context.Background(), 1)
		if err != nil {
			t.Errorf("queued Acquire: %v", err)
		}
		close(secondGranted)
		b.Release(got)
	}()
	for {
		b.mu.Lock()
		parked := len(b.waiters) == 2
		b.mu.Unlock()
		if parked {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}

	cancel()
	<-canceled
	b.Release(held)
	select {
	case <-secondGranted:
	case <-time.After(time.Second):
		t.Fatal("request behind the canceled waiter never granted")
	}

	// All slots must be back: a full-width acquire succeeds immediately.
	got, err := b.Acquire(context.Background(), 2)
	if err != nil || got != 2 {
		t.Fatalf("post-cancellation Acquire(2) = (%d, %v), want (2, nil): slot leak", got, err)
	}
	b.Release(got)
}
