package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{ID: "x", Title: "Sample", Columns: []string{"bench", "a", "b"}, Note: "n"}
	t.AddRow("one", 1.5, 2.5)
	t.AddRow("two", 3, 4)
	return t
}

func TestWriteCSVParsesBack(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0][0] != "bench" || recs[1][0] != "one" || recs[1][1] != "1.5" || recs[2][2] != "4" {
		t.Errorf("csv content: %v", recs)
	}
}

func TestWriteJSONParsesBack(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var jt struct {
		ID     string               `json:"id"`
		Rows   []map[string]float64 `json:"rows"`
		Labels []string             `json:"labels"`
	}
	if err := json.Unmarshal(buf.Bytes(), &jt); err != nil {
		t.Fatal(err)
	}
	if jt.ID != "x" || len(jt.Rows) != 2 {
		t.Fatalf("json: %+v", jt)
	}
	if jt.Rows[0]["a"] != 1.5 || jt.Rows[1]["b"] != 4 || jt.Labels[1] != "two" {
		t.Errorf("json rows: %+v labels %v", jt.Rows, jt.Labels)
	}
}

func TestWriteDispatch(t *testing.T) {
	for _, f := range []string{"", "text", "csv", "json"} {
		var buf bytes.Buffer
		if err := sampleTable().Write(&buf, f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %q: empty output", f)
		}
	}
	if err := sampleTable().Write(&bytes.Buffer{}, "xml"); err == nil ||
		!strings.Contains(err.Error(), "unknown output format") {
		t.Error("unknown format accepted")
	}
}
