package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV renders the table as CSV (header row, then one row per label).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("harness: csv header: %w", err)
	}
	for _, r := range t.Rows {
		rec := make([]string, len(t.Columns))
		rec[0] = r.Label
		for i, v := range r.Values {
			if i+1 < len(rec) {
				rec[i+1] = strconv.FormatFloat(v, 'g', 6, 64)
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("harness: csv row %q: %w", r.Label, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTable is the JSON wire form of a Table.
type jsonTable struct {
	ID      string               `json:"id"`
	Title   string               `json:"title"`
	Columns []string             `json:"columns"`
	Rows    []map[string]float64 `json:"rows"`
	Labels  []string             `json:"labels"`
	Note    string               `json:"note,omitempty"`
}

// WriteJSON renders the table as indented JSON, one object per row keyed by
// column name.
func (t *Table) WriteJSON(w io.Writer) error {
	jt := jsonTable{ID: t.ID, Title: t.Title, Columns: t.Columns, Note: t.Note}
	for _, r := range t.Rows {
		row := make(map[string]float64, len(r.Values))
		for i, v := range r.Values {
			if i+1 < len(t.Columns) {
				row[t.Columns[i+1]] = v
			}
		}
		jt.Rows = append(jt.Rows, row)
		jt.Labels = append(jt.Labels, r.Label)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jt); err != nil {
		return fmt.Errorf("harness: json: %w", err)
	}
	return nil
}

// Write renders in the named format: "text" (default), "csv", or "json".
func (t *Table) Write(w io.Writer, format string) error {
	switch format {
	case "", "text":
		t.Fprint(w)
		return nil
	case "csv":
		return t.WriteCSV(w)
	case "json":
		return t.WriteJSON(w)
	default:
		return fmt.Errorf("harness: unknown output format %q (text|csv|json)", format)
	}
}
