package harness

import (
	"reflect"
	"sync"
	"testing"

	"snake/internal/config"
	"snake/internal/sim"
	"snake/internal/workloads"
)

// TestPrefillSharesKernelBuild is the satellite proof that routing runs
// through the kernel store amortizes trace generation: prefilling one
// benchmark across several mechanisms builds its trace exactly once.
func TestPrefillSharesKernelBuild(t *testing.T) {
	r := tinyRunner()
	r.Store = workloads.NewStore()
	mechs := []string{"baseline", "snake", "mta", "ideal"}
	if err := r.Prefill([]string{"lps"}, mechs); err != nil {
		t.Fatal(err)
	}
	if got := r.Store.Builds(); got != 1 {
		t.Errorf("Prefill of 1 bench x %d mechs built %d kernels, want 1", len(mechs), got)
	}
	// A second benchmark adds exactly one more build.
	if err := r.Prefill([]string{"mum"}, mechs); err != nil {
		t.Fatal(err)
	}
	if got := r.Store.Builds(); got != 2 {
		t.Errorf("after second bench Builds() = %d, want 2", got)
	}
}

// TestEnginePoolMatchesFresh runs a spread of (bench, mech) pairs through one
// EnginePool — recycling engines between runs — and checks every Result
// against a freshly constructed engine.
func TestEnginePoolMatchesFresh(t *testing.T) {
	cfg := config.Scaled(2, 16)
	sc := workloads.Tiny()
	p := NewEnginePool()
	cases := []struct{ bench, mech string }{
		{"lps", "snake"},
		{"mum", "snake"},
		{"lps", "baseline"},
		{"lps", "snake"}, // repeat: this one draws a warm engine
		{"hotspot", "mta"},
	}
	for _, c := range cases {
		k, err := workloads.Build(c.bench, sc)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Mechanism(c.mech)
		if err != nil {
			t.Fatal(err)
		}
		opt := sim.Options{Config: cfg, NewPrefetcher: f}
		want, err := sim.Run(k, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Run(k, opt, c.mech)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s/%s: pooled run diverges from fresh", c.bench, c.mech)
		}
	}
}

// TestEnginePoolConcurrent shares one pool across goroutines running the
// same (kernel, mech) and checks each result against a fresh reference.
// Under -race this doubles as the pool's publication-safety check.
func TestEnginePoolConcurrent(t *testing.T) {
	cfg := config.Scaled(2, 16)
	k, err := workloads.Build("lps", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	f, err := Mechanism("snake")
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.Options{Config: cfg, NewPrefetcher: f}
	want, err := sim.Run(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	p := NewEnginePool()
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				got, err := p.Run(k, opt, "snake")
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Error("concurrent pooled run diverged from fresh reference")
					return
				}
			}
		}()
	}
	wg.Wait()
}
