package harness

import (
	"context"
	"runtime"
	"sync"
)

// Budget is a weighted CPU-slot semaphore. Everything in one process that
// runs simulations — the harness runner's worker pool and the snaked
// service's job workers — draws from one shared Budget, so the number of
// busy simulation threads never exceeds the machine, no matter how the two
// pools are configured. (Previously each pool was sized to GOMAXPROCS
// independently, so a service running sweeps through a Runner could
// oversubscribe the host by GOMAXPROCS².)
//
// A run that simulates with sim.Options.Parallelism = p holds p slots for
// its duration: intra-run parallelism and cross-run concurrency spend the
// same currency.
type Budget struct {
	mu      sync.Mutex
	cap     int
	used    int
	waiters []budgetWaiter
}

type budgetWaiter struct {
	need  int
	ready chan struct{}
}

// NewBudget returns a budget of n CPU slots (n < 1 is treated as 1).
func NewBudget(n int) *Budget {
	if n < 1 {
		n = 1
	}
	return &Budget{cap: n}
}

var (
	sharedOnce sync.Once
	shared     *Budget
)

// SharedBudget returns the process-wide budget, sized to GOMAXPROCS at first
// use. It is the default for NewRunner and the snaked service, which is what
// makes their combined footprint bounded.
func SharedBudget() *Budget {
	sharedOnce.Do(func() { shared = NewBudget(runtime.GOMAXPROCS(0)) })
	return shared
}

// Cap returns the total number of slots.
func (b *Budget) Cap() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cap
}

// Acquire blocks until n slots are free (or ctx is done) and takes them,
// returning the granted count — n clamped to the budget's capacity, so a
// request wider than the whole machine degrades to using the whole machine
// instead of deadlocking. Grants are strictly FIFO: a wide request parks
// arrivals behind it rather than starving while narrow requests slip past.
func (b *Budget) Acquire(ctx context.Context, n int) (int, error) {
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	if n > b.cap {
		n = b.cap
	}
	if len(b.waiters) == 0 && b.used+n <= b.cap {
		b.used += n
		b.mu.Unlock()
		return n, nil
	}
	w := budgetWaiter{need: n, ready: make(chan struct{})}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()
	select {
	case <-w.ready:
		return n, nil
	case <-ctx.Done():
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case <-w.ready:
		// Granted concurrently with cancellation: hand the slots straight
		// back so the accounting stays balanced.
		b.used -= n
		b.grantLocked()
	default:
		for i := range b.waiters {
			if b.waiters[i].ready == w.ready {
				b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
				break
			}
		}
		// Removing a parked wide request may unblock the requests behind it.
		b.grantLocked()
	}
	return 0, ctx.Err()
}

// Release returns n slots (the count Acquire granted).
func (b *Budget) Release(n int) {
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		panic("harness: Budget.Release without matching Acquire")
	}
	b.grantLocked()
	b.mu.Unlock()
}

// grantLocked admits queued waiters, in order, while their weights fit.
func (b *Budget) grantLocked() {
	i := 0
	for ; i < len(b.waiters); i++ {
		w := b.waiters[i]
		if b.used+w.need > b.cap {
			break
		}
		b.used += w.need
		close(w.ready)
	}
	if i > 0 {
		b.waiters = append(b.waiters[:0], b.waiters[i:]...)
	}
}
