// Package harness wires workloads, mechanisms and the simulator into the
// experiments of the paper's evaluation: one function per figure/table that
// prints the same rows/series the paper reports. EXPERIMENTS.md records the
// paper-vs-measured comparison produced from these.
package harness

import (
	"fmt"
	"sort"

	"snake/internal/core"
	"snake/internal/prefetch"
)

// Factory builds a fresh per-SM prefetcher.
type Factory func(smID int) prefetch.Prefetcher

// mechanisms maps names to factories. Each SM gets its own instance, as in
// hardware.
var mechanisms = map[string]Factory{
	"baseline":       func(int) prefetch.Prefetcher { return prefetch.Null{} },
	"intra":          func(int) prefetch.Prefetcher { return prefetch.NewIntraWarp() },
	"inter":          func(int) prefetch.Prefetcher { return prefetch.NewInterWarp() },
	"mta":            func(int) prefetch.Prefetcher { return prefetch.NewMTA() },
	"cta":            func(int) prefetch.Prefetcher { return prefetch.NewCTAAware() },
	"tree":           func(int) prefetch.Prefetcher { return prefetch.NewTree() },
	"ideal":          func(int) prefetch.Prefetcher { return prefetch.NewIdeal() },
	"s-snake":        func(int) prefetch.Prefetcher { return core.NewSimpleSnake() },
	"snake-dt":       func(int) prefetch.Prefetcher { return core.NewSnakeDT() },
	"snake-t":        func(int) prefetch.Prefetcher { return core.NewSnakeT() },
	"snake":          func(int) prefetch.Prefetcher { return core.NewSnake() },
	"snake+cta":      func(int) prefetch.Prefetcher { return core.NewSnakePlusCTA() },
	"isolated-snake": func(int) prefetch.Prefetcher { return core.NewIsolatedSnake() },
	"mta+decoupled":  func(int) prefetch.Prefetcher { return &prefetch.Decoupled{Inner: prefetch.NewMTA()} },
	"cta+decoupled":  func(int) prefetch.Prefetcher { return &prefetch.Decoupled{Inner: prefetch.NewCTAAware()} },
	"tree+decoupled": func(int) prefetch.Prefetcher { return &prefetch.Decoupled{Inner: prefetch.NewTree()} },

	// Extension comparison points: CPU prefetchers of §6.1, adapted to GPU.
	"domino": func(int) prefetch.Prefetcher { return prefetch.NewDomino() },
	"bingo":  func(int) prefetch.Prefetcher { return prefetch.NewBingo() },
}

// Mechanism returns the named prefetcher factory.
func Mechanism(name string) (Factory, error) {
	f, ok := mechanisms[name]
	if !ok {
		return nil, fmt.Errorf("harness: unknown mechanism %q (known: %v)", name, MechanismNames())
	}
	return f, nil
}

// MechanismNames returns all known mechanism names, sorted.
func MechanismNames() []string {
	out := make([]string, 0, len(mechanisms))
	for k := range mechanisms {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Fig16Order is the mechanism presentation order of Figures 16–19.
var Fig16Order = []string{
	"intra", "inter", "mta", "cta", "tree",
	"s-snake", "snake-dt", "snake-t", "snake", "snake+cta",
}
