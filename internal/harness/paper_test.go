package harness

import (
	"testing"

	"snake/internal/config"
	"snake/internal/workloads"
)

// These tests pin the paper-level qualitative claims end to end — the
// regression suite for "does the reproduction still tell the paper's story".
// They run the real experiment pipeline on a reduced scale.

func storyRunner() *Runner {
	r := NewRunner()
	r.Cfg = config.Scaled(2, 32)
	r.Scale = workloads.Scale{CTAs: 12, WarpsPerCTA: 8, Iters: 8}
	return r
}

func TestStorySnakeBeatsBaselineOnChainRichApps(t *testing.T) {
	if testing.Short() {
		t.Skip("story test")
	}
	r := storyRunner()
	for _, b := range []string{"lps", "srad", "lud", "histo"} {
		base, err := r.Run(b, "baseline")
		if err != nil {
			t.Fatal(err)
		}
		sn, err := r.Run(b, "snake")
		if err != nil {
			t.Fatal(err)
		}
		if sn.IPC() <= base.IPC() {
			t.Errorf("%s: Snake %.3f did not beat baseline %.3f", b, sn.IPC(), base.IPC())
		}
		if sn.Coverage() < 0.5 {
			t.Errorf("%s: Snake coverage %.2f below 50%% on a chain-rich app", b, sn.Coverage())
		}
	}
}

func TestStoryTreeHurtsIrregularApps(t *testing.T) {
	if testing.Short() {
		t.Skip("story test")
	}
	r := storyRunner()
	// §6.2: aggressive spatial prefetching hurts GPUs with limited memory
	// resources; mum is the clearest victim.
	base, err := r.Run("mum", "baseline")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := r.Run("mum", "tree")
	if err != nil {
		t.Fatal(err)
	}
	if tree.IPC() >= base.IPC() {
		t.Errorf("Tree %.3f did not hurt mum vs baseline %.3f", tree.IPC(), base.IPC())
	}
}

func TestStoryNWStaysFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("story test")
	}
	r := storyRunner()
	// §5.1: nw's patterns repeat too rarely; coverage stays low and the
	// speedup small.
	sn, err := r.Run("nw", "snake")
	if err != nil {
		t.Fatal(err)
	}
	if sn.Coverage() > 0.6 {
		t.Errorf("nw Snake coverage %.2f; the paper's low-repetition story requires it low", sn.Coverage())
	}
}

func TestStorySnakeCoverageBeatsMTA(t *testing.T) {
	if testing.Short() {
		t.Skip("story test")
	}
	r := storyRunner()
	// Figure 16's headline: mean Snake coverage above mean MTA coverage.
	var snSum, mtaSum float64
	for _, b := range workloads.Names() {
		sn, err := r.Run(b, "snake")
		if err != nil {
			t.Fatal(err)
		}
		mta, err := r.Run(b, "mta")
		if err != nil {
			t.Fatal(err)
		}
		snSum += sn.Coverage()
		mtaSum += mta.Coverage()
	}
	if snSum <= mtaSum {
		t.Errorf("mean Snake coverage %.3f not above MTA %.3f", snSum/11, mtaSum/11)
	}
}

func TestStoryLUDNeedsChains(t *testing.T) {
	if testing.Short() {
		t.Skip("story test")
	}
	r := storyRunner()
	// LUD's per-PC strides vary every iteration: fixed-stride MTA gets
	// little, chains get a lot — the purest "variable strides" case.
	sn, err := r.Run("lud", "snake")
	if err != nil {
		t.Fatal(err)
	}
	mta, err := r.Run("lud", "mta")
	if err != nil {
		t.Fatal(err)
	}
	if sn.Coverage() < mta.Coverage()+0.3 {
		t.Errorf("lud: Snake %.2f vs MTA %.2f — chains must dominate here",
			sn.Coverage(), mta.Coverage())
	}
}

func TestStoryCPUPrefetchersUnderperform(t *testing.T) {
	if testing.Short() {
		t.Skip("story test")
	}
	r := storyRunner()
	// §6.1: CPU prefetchers cannot be applied directly. Mean coverage of
	// Domino/Bingo must sit far below Snake's.
	var dom, bin, sn float64
	for _, b := range workloads.Names() {
		d, err := r.Run(b, "domino")
		if err != nil {
			t.Fatal(err)
		}
		g, err := r.Run(b, "bingo")
		if err != nil {
			t.Fatal(err)
		}
		s, err := r.Run(b, "snake")
		if err != nil {
			t.Fatal(err)
		}
		dom += d.Coverage()
		bin += g.Coverage()
		sn += s.Coverage()
	}
	if dom >= sn-1.0 || bin >= sn-1.0 {
		t.Errorf("CPU prefetchers too strong: domino %.2f bingo %.2f snake %.2f (sums)",
			dom, bin, sn)
	}
}

func TestStoryEnergyFollowsPerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("story test")
	}
	r := storyRunner()
	tb, err := Fig19(r)
	if err != nil {
		t.Fatal(err)
	}
	mean := tb.Rows[len(tb.Rows)-1].Values[0]
	if mean >= 1.0 {
		t.Errorf("Snake mean energy %.3f not below baseline", mean)
	}
}
