package icnt

import (
	"fmt"
	"sort"
)

// Ingress is a cycle-stamped FIFO delivery queue: the typed port through
// which one side of the SM/memory shard boundary receives in-flight messages
// from the other. Senders stamp each message with its delivery cycle at
// injection time (the network's TrySend already serializes bandwidth, so
// stamps are non-decreasing in send order); the receiver drains messages due
// at or before its current cycle with PopDue.
//
// The drain order is deterministic by construction — strict FIFO, which
// equals (cycle, send-seq) order because stamps never decrease — so a
// simulation's results cannot depend on which goroutine drains the queue or
// when. This is the property the engine's parallel executor relies on: all
// pushes happen in the serial memory phase (fixed order), all pops happen
// either in the serial phase or in the owning shard's tick, and the sequence
// of popped messages is identical either way.
//
// The queue is a growable ring: steady-state traffic reuses the backing
// array, keeping the simulator's cycle loop allocation-free.
type Ingress[T any] struct {
	buf  []Stamped[T]
	head int
	len  int
	last int64 // last pushed stamp, for the monotonicity check
}

// Stamped is one queued message with its delivery cycle. It is exported so
// DueView can hand zero-copy windows of the ring to consumers (the engine's
// parallel route phase) without repacking entries.
type Stamped[T any] struct {
	Cycle int64
	Msg   T
}

// Push appends a message due at the given cycle. Stamps must be
// non-decreasing across pushes (the serialized network guarantees this);
// a decreasing stamp is a programming error and panics, because it would
// silently break the FIFO-equals-cycle-order property PopDue relies on.
func (q *Ingress[T]) Push(cycle int64, msg T) {
	if q.len > 0 && cycle < q.last {
		panic(fmt.Sprintf("icnt: ingress stamp went backwards: %d after %d", cycle, q.last))
	}
	q.last = cycle
	if q.len == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.len)%len(q.buf)] = Stamped[T]{Cycle: cycle, Msg: msg}
	q.len++
}

// grow doubles the ring, unrolling it so head returns to zero.
func (q *Ingress[T]) grow() {
	n := 2 * len(q.buf)
	if n == 0 {
		n = 8
	}
	next := make([]Stamped[T], n)
	for i := 0; i < q.len; i++ {
		next[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = next
	q.head = 0
}

// PopDue removes and returns the oldest message if it is due at or before
// now. Messages come out in exactly the order they were pushed.
func (q *Ingress[T]) PopDue(now int64) (T, bool) {
	if q.len == 0 || q.buf[q.head].Cycle > now {
		var zero T
		return zero, false
	}
	e := &q.buf[q.head]
	msg := e.Msg
	var zero Stamped[T]
	*e = zero // release references for GC
	q.head = (q.head + 1) % len(q.buf)
	q.len--
	return msg, true
}

// DrainTo appends every message due at or before now to buf and returns the
// extended slice, in push order (same sequence PopDue would produce). The
// append style lets hot-loop callers reuse a buffer across cycles without a
// per-call closure allocation.
func (q *Ingress[T]) DrainTo(now int64, buf []T) []T {
	for q.len > 0 && q.buf[q.head].Cycle <= now {
		e := &q.buf[q.head]
		buf = append(buf, e.Msg)
		var zero Stamped[T]
		*e = zero
		q.head = (q.head + 1) % len(q.buf)
		q.len--
	}
	return buf
}

// DueView returns the messages due at or before now as up to two contiguous
// windows of the ring (the prefix wraps across the array end at most once),
// in push order: a first, then b. Nothing is removed or copied — callers that
// consume the view pair it with Drop(len(a)+len(b)). Because stamps are
// non-decreasing, the due set is always a prefix, located by binary search.
//
// The view stays valid until the next Push, Pop, Drain, Drop or Reset; the
// engine's parallel route phase takes it after all of an epoch's pushes and
// drops it at the epoch merge, so work units may read it concurrently in
// between.
func (q *Ingress[T]) DueView(now int64) (a, b []Stamped[T]) {
	n := sort.Search(q.len, func(i int) bool {
		return q.buf[(q.head+i)%len(q.buf)].Cycle > now
	})
	if n == 0 {
		return nil, nil
	}
	if end := q.head + n; end <= len(q.buf) {
		return q.buf[q.head:end], nil
	}
	return q.buf[q.head:], q.buf[:q.head+n-len(q.buf)]
}

// Drop removes the oldest n messages (a consumed DueView prefix), zeroing
// their slots so references are released. Dropping more than Len panics: it
// would corrupt the ring accounting.
func (q *Ingress[T]) Drop(n int) {
	if n <= 0 {
		return
	}
	if n > q.len {
		panic(fmt.Sprintf("icnt: ingress drop %d of %d queued", n, q.len))
	}
	if end := q.head + n; end <= len(q.buf) {
		clear(q.buf[q.head:end])
	} else {
		clear(q.buf[q.head:])
		clear(q.buf[:end-len(q.buf)])
	}
	q.head = (q.head + n) % len(q.buf)
	q.len -= n
}

// NextCycle returns the delivery cycle of the oldest queued message, or -1
// when the queue is empty. The engine's fast-forward uses this bound.
func (q *Ingress[T]) NextCycle() int64 {
	if q.len == 0 {
		return -1
	}
	return q.buf[q.head].Cycle
}

// Len returns the number of queued messages.
func (q *Ingress[T]) Len() int { return q.len }

// Reset empties the queue and clears the stamp-monotonicity watermark while
// keeping the ring's backing array, so a recycled queue starts a new run at
// its steady-state capacity. Stale entries are zeroed in case T carries
// references.
func (q *Ingress[T]) Reset() {
	clear(q.buf)
	q.head = 0
	q.len = 0
	q.last = 0
}
