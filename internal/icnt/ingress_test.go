package icnt

import "testing"

func TestIngressFIFOWithinCycle(t *testing.T) {
	var q Ingress[int]
	// Several messages due at the same cycle must drain in push order — the
	// deterministic merge order the parallel engine depends on.
	for i := 0; i < 5; i++ {
		q.Push(10, i)
	}
	q.Push(12, 5)
	for i := 0; i < 5; i++ {
		v, ok := q.PopDue(10)
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v, want FIFO order", i, v, ok)
		}
	}
	if _, ok := q.PopDue(11); ok {
		t.Error("popped a message before its stamp")
	}
	if v, ok := q.PopDue(12); !ok || v != 5 {
		t.Errorf("final pop = %d, %v", v, ok)
	}
}

func TestIngressNextCycleAndLen(t *testing.T) {
	var q Ingress[string]
	if q.NextCycle() != -1 {
		t.Errorf("empty NextCycle = %d, want -1", q.NextCycle())
	}
	q.Push(7, "a")
	q.Push(9, "b")
	if q.NextCycle() != 7 || q.Len() != 2 {
		t.Errorf("NextCycle=%d Len=%d, want 7 and 2", q.NextCycle(), q.Len())
	}
	q.PopDue(7)
	if q.NextCycle() != 9 || q.Len() != 1 {
		t.Errorf("after pop: NextCycle=%d Len=%d, want 9 and 1", q.NextCycle(), q.Len())
	}
}

func TestIngressRejectsBackwardsStamp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("decreasing stamp did not panic")
		}
	}()
	var q Ingress[int]
	q.Push(10, 0)
	q.Push(9, 1)
}

func TestIngressRingReuse(t *testing.T) {
	var q Ingress[int]
	// Warm the ring to a fixed occupancy, then cycle many messages through
	// it: the backing array must not grow once traffic is steady.
	for i := 0; i < 16; i++ {
		q.Push(int64(i), i)
	}
	capBefore := len(q.buf)
	for c := int64(16); c < 4096; c++ {
		if _, ok := q.PopDue(c); !ok {
			t.Fatalf("cycle %d: queue unexpectedly empty", c)
		}
		q.Push(c, int(c))
	}
	if len(q.buf) != capBefore {
		t.Errorf("steady-state traffic grew the ring: %d -> %d", capBefore, len(q.buf))
	}
}

func TestIngressDueViewAndDrop(t *testing.T) {
	var q Ingress[int]
	// Rotate the head past the midpoint so the due prefix wraps: 6 of 8 slots
	// consumed, then refill past the boundary.
	for i := 0; i < 8; i++ {
		q.Push(int64(i), i)
	}
	for i := 0; i < 6; i++ {
		q.PopDue(5)
	}
	for i := 8; i < 13; i++ {
		q.Push(int64(i), i)
	}
	// Queue now holds 6..12; a view at 10 must cover 6..10 across the wrap.
	a, b := q.DueView(10)
	if len(b) == 0 {
		t.Fatal("due view did not wrap; the rotation setup is broken")
	}
	var got []int
	for _, e := range a {
		got = append(got, e.Msg)
	}
	for _, e := range b {
		got = append(got, e.Msg)
	}
	for i, v := range got {
		if v != 6+i {
			t.Fatalf("view[%d] = %d, want %d (push order across the wrap)", i, v, 6+i)
		}
	}
	if len(got) != 5 {
		t.Fatalf("view holds %d entries, want 5 (due ≤ 10)", len(got))
	}
	// Drop must consume exactly the viewed prefix and leave the rest poppable.
	q.Drop(len(got))
	if q.Len() != 2 || q.NextCycle() != 11 {
		t.Errorf("after drop: Len=%d NextCycle=%d, want 2 and 11", q.Len(), q.NextCycle())
	}
	if v, ok := q.PopDue(12); !ok || v != 11 {
		t.Errorf("post-drop pop = %d, %v, want 11", v, ok)
	}

	if a, b := q.DueView(0); a != nil || b != nil {
		t.Error("nothing due, but view is non-empty")
	}
	q.Drop(0) // no-op by contract
	if q.Len() != 1 {
		t.Errorf("Drop(0) changed Len to %d", q.Len())
	}
}

func TestIngressDropTooManyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-drop did not panic")
		}
	}()
	var q Ingress[int]
	q.Push(1, 1)
	q.Drop(2)
}

func TestIngressGrowPreservesOrder(t *testing.T) {
	var q Ingress[int]
	// Force several grows with a rotated head so the unroll path is hit.
	for i := 0; i < 3; i++ {
		q.Push(int64(i), i)
	}
	for i := 0; i < 2; i++ {
		q.PopDue(2)
	}
	for i := 3; i < 100; i++ {
		q.Push(int64(i), i)
	}
	want := 2
	for {
		v, ok := q.PopDue(1 << 40)
		if !ok {
			break
		}
		if v != want {
			t.Fatalf("order broken after grow: got %d, want %d", v, want)
		}
		want++
	}
	if want != 100 {
		t.Errorf("drained %d messages, want through 99", want-2)
	}
}
