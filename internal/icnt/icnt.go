// Package icnt models the interconnection network between the per-SM L1
// caches and the shared L2 banks: a serialized, bandwidth-limited link with
// a base traversal latency, bounded backlog (backpressure), and the
// sliding-window utilization measurement that drives both Figure 4 and
// Snake's bandwidth throttle.
package icnt

// Config describes the interconnect fabric.
type Config struct {
	BytesPerCycle int // peak bytes accepted per cycle
	Latency       int // base one-way traversal latency in cycles
	WindowCycles  int // utilization measurement window (default 256)
	// MaxBacklogCycles bounds the send queue: a send is refused when the
	// link is already booked this far ahead (default 16).
	MaxBacklogCycles int
}

// Network serializes packets over a shared link. Time is tracked in
// byte-slots: one cycle provides BytesPerCycle slots; a packet of size S
// occupies S consecutive slots. Senders call TrySend; when the link's
// backlog exceeds the bound the send is refused and the sender retries
// later (backpressure).
type Network struct {
	cfg Config

	cycle    int64
	nextFree int64 // first free byte-slot (byte-time units)

	// Sliding utilization window.
	window    []int
	windowSum int64
	windowPos int
	usedThis  int

	totalBytes int64
}

// New builds a network, applying defaults for zero fields.
func New(cfg Config) *Network {
	if cfg.WindowCycles <= 0 {
		cfg.WindowCycles = 256
	}
	if cfg.MaxBacklogCycles <= 0 {
		cfg.MaxBacklogCycles = 16
	}
	return &Network{cfg: cfg, window: make([]int, cfg.WindowCycles)}
}

// Tick advances the network to the given cycle, rolling the utilization
// window forward. Jumps of a full window or more (the engine's event-driven
// fast-forward lands here) clear the window in one pass instead of rolling
// cycle by cycle; the resulting state is identical to per-cycle ticking.
func (n *Network) Tick(cycle int64) {
	span := cycle - n.cycle
	if span <= 0 {
		return
	}
	if span >= int64(len(n.window)) {
		for i := range n.window {
			n.window[i] = 0
		}
		n.windowSum = 0
		n.windowPos = int((int64(n.windowPos) + span) % int64(len(n.window)))
		n.usedThis = 0
		n.cycle = cycle
		return
	}
	for n.cycle < cycle {
		n.cycle++
		n.windowPos = (n.windowPos + 1) % len(n.window)
		n.windowSum -= int64(n.window[n.windowPos])
		n.window[n.windowPos] = 0
		n.usedThis = 0
	}
}

// Reset restores the network to its just-constructed state — clock, booked
// byte-slots, utilization window and byte counters all return to zero — so a
// recycled engine can reuse the window buffer instead of reallocating it.
func (n *Network) Reset() {
	n.cycle = 0
	n.nextFree = 0
	clear(n.window)
	n.windowSum = 0
	n.windowPos = 0
	n.usedThis = 0
	n.totalBytes = 0
}

// TrySend attempts to inject size bytes. On success it returns the delivery
// cycle (serialization time plus base latency) and true; when the link's
// backlog bound is exceeded it returns false and the caller must retry.
func (n *Network) TrySend(size int) (deliverAt int64, ok bool) {
	bpc := int64(n.cfg.BytesPerCycle)
	now := n.cycle * bpc
	start := n.nextFree
	if start < now {
		start = now
	}
	backlog := start - now
	if backlog > int64(n.cfg.MaxBacklogCycles)*bpc {
		return 0, false
	}
	end := start + int64(size)
	n.nextFree = end
	// The last byte clears the link at byte-slot end; convert to cycles.
	doneCycle := (end + bpc - 1) / bpc
	n.window[n.windowPos] += size
	n.windowSum += int64(size)
	n.usedThis += size
	n.totalBytes += int64(size)
	return doneCycle + int64(n.cfg.Latency), true
}

// Utilization returns the fraction of peak bandwidth used over the sliding
// window (0..1).
func (n *Network) Utilization() float64 {
	peak := int64(n.cfg.BytesPerCycle) * int64(len(n.window))
	if peak == 0 {
		return 0
	}
	u := float64(n.windowSum) / float64(peak)
	if u > 1 {
		u = 1
	}
	return u
}

// TotalBytes returns the bytes transferred since construction.
func (n *Network) TotalBytes() int64 { return n.totalBytes }

// PeakBytes returns the theoretical byte capacity through the given cycle.
func (n *Network) PeakBytes(cycles int64) int64 {
	return int64(n.cfg.BytesPerCycle) * cycles
}

// Latency returns the configured base one-way latency.
func (n *Network) Latency() int { return n.cfg.Latency }

// NextAcceptCycle returns the earliest cycle strictly after from at which
// TrySend can succeed, assuming no further traffic is injected before then.
// TrySend refuses while the booked byte-slots exceed the backlog bound; the
// bound is independent of packet size and the backlog drains linearly with
// time, so the first accepting cycle is computable in O(1). The engine's
// fast-forward uses this to jump over refused-send spans.
func (n *Network) NextAcceptCycle(from int64) int64 {
	bpc := int64(n.cfg.BytesPerCycle)
	bound := int64(n.cfg.MaxBacklogCycles) * bpc
	// Accept at cycle c iff nextFree - c*bpc <= bound.
	c := (n.nextFree - bound + bpc - 1) / bpc
	if c < from+1 {
		return from + 1
	}
	return c
}

// Backlog returns the currently booked cycles of link time.
func (n *Network) Backlog() int64 {
	now := n.cycle * int64(n.cfg.BytesPerCycle)
	if n.nextFree <= now {
		return 0
	}
	return (n.nextFree - now) / int64(n.cfg.BytesPerCycle)
}
