package icnt

import (
	"testing"
	"testing/quick"
)

func TestSerializationDelay(t *testing.T) {
	n := New(Config{BytesPerCycle: 128, Latency: 10})
	n.Tick(1)
	// First packet: one cycle of link time + latency.
	at1, ok := n.TrySend(128)
	if !ok || at1 != 1+1+10 {
		t.Fatalf("first send: (%d,%v), want (12,true)", at1, ok)
	}
	// Second packet queues behind the first.
	at2, ok := n.TrySend(128)
	if !ok || at2 != at1+1 {
		t.Fatalf("second send: (%d,%v), want (%d,true)", at2, ok, at1+1)
	}
}

func TestSmallPacketsShareACycle(t *testing.T) {
	n := New(Config{BytesPerCycle: 128, Latency: 0})
	n.Tick(1)
	a, _ := n.TrySend(8)
	b, _ := n.TrySend(8)
	if a != b {
		t.Errorf("two 8B packets deliver at %d and %d; both fit in one cycle", a, b)
	}
}

func TestBacklogBoundRefuses(t *testing.T) {
	n := New(Config{BytesPerCycle: 1, Latency: 0, MaxBacklogCycles: 4})
	n.Tick(1)
	sent := 0
	for i := 0; i < 100; i++ {
		if _, ok := n.TrySend(1); ok {
			sent++
		} else {
			break
		}
	}
	if sent < 4 || sent > 6 {
		t.Errorf("sent %d one-byte packets before refusal, want ~5", sent)
	}
	// After refusal, advancing time frees the backlog.
	n.Tick(100)
	if _, ok := n.TrySend(1); !ok {
		t.Error("send after draining must succeed")
	}
}

func TestUtilizationWindow(t *testing.T) {
	n := New(Config{BytesPerCycle: 100, Latency: 0, WindowCycles: 10})
	for c := int64(1); c <= 10; c++ {
		n.Tick(c)
		n.TrySend(50) // half capacity
	}
	u := n.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Errorf("utilization = %.3f, want ~0.5", u)
	}
	// Idle cycles decay the window.
	for c := int64(11); c <= 20; c++ {
		n.Tick(c)
	}
	if u := n.Utilization(); u != 0 {
		t.Errorf("utilization after idle window = %.3f, want 0", u)
	}
}

func TestTotalsAndPeak(t *testing.T) {
	n := New(Config{BytesPerCycle: 64, Latency: 5})
	n.Tick(1)
	n.TrySend(64)
	n.TrySend(32)
	if n.TotalBytes() != 96 {
		t.Errorf("TotalBytes = %d", n.TotalBytes())
	}
	if n.PeakBytes(10) != 640 {
		t.Errorf("PeakBytes(10) = %d", n.PeakBytes(10))
	}
	if n.Latency() != 5 {
		t.Errorf("Latency = %d", n.Latency())
	}
}

func TestDeliveryMonotonic(t *testing.T) {
	// Property: delivery cycles of successive sends never decrease.
	f := func(sizes []uint8) bool {
		n := New(Config{BytesPerCycle: 32, Latency: 7, MaxBacklogCycles: 1 << 30})
		n.Tick(1)
		last := int64(0)
		for _, s := range sizes {
			at, ok := n.TrySend(int(s%64) + 1)
			if !ok {
				continue
			}
			if at < last {
				return false
			}
			last = at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBacklogReporting(t *testing.T) {
	n := New(Config{BytesPerCycle: 10, Latency: 0, MaxBacklogCycles: 100})
	n.Tick(1)
	if n.Backlog() != 0 {
		t.Errorf("initial backlog = %d", n.Backlog())
	}
	n.TrySend(100) // 10 cycles of link time
	if b := n.Backlog(); b < 9 || b > 10 {
		t.Errorf("backlog = %d, want ~10", b)
	}
}

func TestNextAcceptCyclePredictsFirstSuccess(t *testing.T) {
	n := New(Config{BytesPerCycle: 10, Latency: 0, MaxBacklogCycles: 4})
	n.Tick(1)
	// Book the link far past the backlog bound, then verify the O(1)
	// prediction against brute-force retry: refusal at every cycle before the
	// predicted one, success exactly at it. (Refused sends do not mutate.)
	for {
		if _, ok := n.TrySend(30); !ok {
			break
		}
	}
	pred := n.NextAcceptCycle(1)
	if pred <= 1 {
		t.Fatalf("NextAcceptCycle = %d, want a future cycle", pred)
	}
	for c := int64(2); c < pred; c++ {
		n.Tick(c)
		if _, ok := n.TrySend(30); ok {
			t.Fatalf("send accepted at cycle %d, before predicted cycle %d", c, pred)
		}
	}
	n.Tick(pred)
	if _, ok := n.TrySend(30); !ok {
		t.Errorf("send refused at predicted accept cycle %d", pred)
	}
}

func TestNextAcceptCycleIdleLink(t *testing.T) {
	n := New(Config{BytesPerCycle: 128, Latency: 10})
	n.Tick(5)
	// An idle link accepts at the next cycle; the clamp keeps the engine's
	// fast-forward target strictly in the future.
	if got := n.NextAcceptCycle(5); got != 6 {
		t.Errorf("NextAcceptCycle on idle link = %d, want 6", got)
	}
}

func TestTickFastForwardMatchesPerCycle(t *testing.T) {
	mk := func() *Network {
		n := New(Config{BytesPerCycle: 32, Latency: 3, WindowCycles: 16})
		for c := int64(1); c <= 5; c++ {
			n.Tick(c)
			n.TrySend(24)
		}
		return n
	}
	// Jump by at least a full window (the engine's fast-forward path) vs
	// rolling the same span cycle by cycle: all observable and internal state
	// must coincide.
	const target = 5 + 16 + 7
	jump, walk := mk(), mk()
	jump.Tick(target)
	for c := int64(6); c <= target; c++ {
		walk.Tick(c)
	}
	if jump.cycle != walk.cycle || jump.nextFree != walk.nextFree ||
		jump.windowSum != walk.windowSum || jump.windowPos != walk.windowPos ||
		jump.usedThis != walk.usedThis {
		t.Errorf("fast-forward state (cycle=%d nextFree=%d sum=%d pos=%d used=%d) != per-cycle (cycle=%d nextFree=%d sum=%d pos=%d used=%d)",
			jump.cycle, jump.nextFree, jump.windowSum, jump.windowPos, jump.usedThis,
			walk.cycle, walk.nextFree, walk.windowSum, walk.windowPos, walk.usedThis)
	}
	if jump.Utilization() != walk.Utilization() {
		t.Errorf("utilization %f != %f after jump", jump.Utilization(), walk.Utilization())
	}
	// Subsequent traffic behaves identically on both.
	a, aok := jump.TrySend(40)
	b, bok := walk.TrySend(40)
	if a != b || aok != bok {
		t.Errorf("post-jump send: (%d,%v) != (%d,%v)", a, aok, b, bok)
	}
}
