package icnt

import (
	"testing"
	"testing/quick"
)

func TestSerializationDelay(t *testing.T) {
	n := New(Config{BytesPerCycle: 128, Latency: 10})
	n.Tick(1)
	// First packet: one cycle of link time + latency.
	at1, ok := n.TrySend(128)
	if !ok || at1 != 1+1+10 {
		t.Fatalf("first send: (%d,%v), want (12,true)", at1, ok)
	}
	// Second packet queues behind the first.
	at2, ok := n.TrySend(128)
	if !ok || at2 != at1+1 {
		t.Fatalf("second send: (%d,%v), want (%d,true)", at2, ok, at1+1)
	}
}

func TestSmallPacketsShareACycle(t *testing.T) {
	n := New(Config{BytesPerCycle: 128, Latency: 0})
	n.Tick(1)
	a, _ := n.TrySend(8)
	b, _ := n.TrySend(8)
	if a != b {
		t.Errorf("two 8B packets deliver at %d and %d; both fit in one cycle", a, b)
	}
}

func TestBacklogBoundRefuses(t *testing.T) {
	n := New(Config{BytesPerCycle: 1, Latency: 0, MaxBacklogCycles: 4})
	n.Tick(1)
	sent := 0
	for i := 0; i < 100; i++ {
		if _, ok := n.TrySend(1); ok {
			sent++
		} else {
			break
		}
	}
	if sent < 4 || sent > 6 {
		t.Errorf("sent %d one-byte packets before refusal, want ~5", sent)
	}
	// After refusal, advancing time frees the backlog.
	n.Tick(100)
	if _, ok := n.TrySend(1); !ok {
		t.Error("send after draining must succeed")
	}
}

func TestUtilizationWindow(t *testing.T) {
	n := New(Config{BytesPerCycle: 100, Latency: 0, WindowCycles: 10})
	for c := int64(1); c <= 10; c++ {
		n.Tick(c)
		n.TrySend(50) // half capacity
	}
	u := n.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Errorf("utilization = %.3f, want ~0.5", u)
	}
	// Idle cycles decay the window.
	for c := int64(11); c <= 20; c++ {
		n.Tick(c)
	}
	if u := n.Utilization(); u != 0 {
		t.Errorf("utilization after idle window = %.3f, want 0", u)
	}
}

func TestTotalsAndPeak(t *testing.T) {
	n := New(Config{BytesPerCycle: 64, Latency: 5})
	n.Tick(1)
	n.TrySend(64)
	n.TrySend(32)
	if n.TotalBytes() != 96 {
		t.Errorf("TotalBytes = %d", n.TotalBytes())
	}
	if n.PeakBytes(10) != 640 {
		t.Errorf("PeakBytes(10) = %d", n.PeakBytes(10))
	}
	if n.Latency() != 5 {
		t.Errorf("Latency = %d", n.Latency())
	}
}

func TestDeliveryMonotonic(t *testing.T) {
	// Property: delivery cycles of successive sends never decrease.
	f := func(sizes []uint8) bool {
		n := New(Config{BytesPerCycle: 32, Latency: 7, MaxBacklogCycles: 1 << 30})
		n.Tick(1)
		last := int64(0)
		for _, s := range sizes {
			at, ok := n.TrySend(int(s%64) + 1)
			if !ok {
				continue
			}
			if at < last {
				return false
			}
			last = at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBacklogReporting(t *testing.T) {
	n := New(Config{BytesPerCycle: 10, Latency: 0, MaxBacklogCycles: 100})
	n.Tick(1)
	if n.Backlog() != 0 {
		t.Errorf("initial backlog = %d", n.Backlog())
	}
	n.TrySend(100) // 10 cycles of link time
	if b := n.Backlog(); b < 9 || b > 10 {
		t.Errorf("backlog = %d, want ~10", b)
	}
}
