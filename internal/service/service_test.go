package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"snake/internal/config"
	"snake/internal/workloads"
)

// tinyService builds a service over a small GPU and workload scale so the
// 32-job grid stays fast even under -race.
func tinyService(workers int) *Service {
	gpu := config.Scaled(2, 16)
	scale := workloads.Scale{CTAs: 4, WarpsPerCTA: 2, Iters: 2}
	return New(Options{Workers: workers, GPU: &gpu, Scale: &scale})
}

// bigScale runs for several seconds on the tiny GPU (measured ~7s without
// -race), so the test reliably observes it mid-simulation and cancels it.
var bigScale = workloads.Scale{CTAs: 1024, WarpsPerCTA: 8, Iters: 128}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

func getRun(t *testing.T, base, id string) RunView {
	t.Helper()
	resp, err := http.Get(base + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v RunView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitRun(t *testing.T, base, id string, pred func(RunView) bool, what string) RunView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var last RunView
	for time.Now().Before(deadline) {
		last = getRun(t, base, id)
		if pred(last) {
			return last
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for run %s to be %s (last: %+v)", id, what, last)
	return RunView{}
}

// metricValue scrapes one un-labelled metric from the /metrics text.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %f", &v); err == nil &&
			strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestServiceEndToEnd is the acceptance scenario: ≥32 concurrent jobs over a
// 4-worker pool, a cache hit for a duplicate config, a mid-simulation
// context cancellation, metrics consistency, and a graceful shutdown drain.
func TestServiceEndToEnd(t *testing.T) {
	svc := tinyService(4)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	benches := workloads.Names()
	mechs := []string{"baseline", "intra", "inter"}

	// The long-running victim goes first at top priority so it is running
	// while the tiny grid queues behind it.
	resp, body := postJSON(t, ts.URL+"/v1/runs", RunRequest{
		Bench: "lps", Mech: "baseline", Scale: &bigScale, Priority: 100,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit long job: %d %s", resp.StatusCode, body)
	}
	var longJob RunView
	if err := json.Unmarshal(body, &longJob); err != nil {
		t.Fatal(err)
	}

	// 30 distinct (bench, mech) combos plus one duplicate of the first at
	// the lowest priority, so it pops after its twin completed → cache hit.
	var ids []string
	for i := 0; i < 30; i++ {
		req := RunRequest{Bench: benches[i%len(benches)], Mech: mechs[i/len(benches)]}
		resp, body := postJSON(t, ts.URL+"/v1/runs", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
		var v RunView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	resp, body = postJSON(t, ts.URL+"/v1/runs", RunRequest{
		Bench: benches[0], Mech: mechs[0], Priority: -10,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit duplicate: %d %s", resp.StatusCode, body)
	}
	var dup RunView
	if err := json.Unmarshal(body, &dup); err != nil {
		t.Fatal(err)
	}
	ids = append(ids, dup.ID)

	// Cancel the long job once it is actually simulating.
	waitRun(t, ts.URL, longJob.ID, func(v RunView) bool { return v.Status == StatusRunning }, "running")
	creq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+longJob.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cresp, err := http.DefaultClient.Do(creq); err != nil {
		t.Fatal(err)
	} else {
		cresp.Body.Close()
	}
	victim := waitRun(t, ts.URL, longJob.ID,
		func(v RunView) bool { return v.Status.Terminal() }, "terminal")
	if victim.Status != StatusCanceled {
		t.Errorf("long job status = %s, want canceled (error %q)", victim.Status, victim.Error)
	}
	if victim.Status == StatusCanceled && !strings.Contains(victim.Error, "context canceled") {
		t.Errorf("canceled job error = %q, want a context cancellation", victim.Error)
	}

	// Drain the grid.
	for _, id := range ids {
		v := waitRun(t, ts.URL, id, func(v RunView) bool { return v.Status.Terminal() }, "terminal")
		if v.Status != StatusDone {
			t.Errorf("job %s: status %s (error %q)", id, v.Status, v.Error)
		}
	}
	dupDone := getRun(t, ts.URL, dup.ID)
	if !dupDone.Cached {
		t.Errorf("duplicate job was not served from cache: %+v", dupDone)
	}
	if dupDone.Key == "" || dupDone.Key != getRun(t, ts.URL, ids[0]).Key {
		t.Errorf("duplicate job key %q does not match its twin", dupDone.Key)
	}

	// Metrics must be consistent with the completed work: 32 submissions,
	// all terminal, ≥1 cache hit, nothing queued or running.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	m := string(mbody)
	if got := metricValue(t, m, "snaked_jobs_submitted_total"); got != 32 {
		t.Errorf("submitted = %v, want 32", got)
	}
	completed := metricValue(t, m, "snaked_jobs_completed_total")
	failed := metricValue(t, m, "snaked_jobs_failed_total")
	canceled := metricValue(t, m, "snaked_jobs_canceled_total")
	if completed+failed+canceled != 32 {
		t.Errorf("terminal jobs = %v+%v+%v, want 32", completed, failed, canceled)
	}
	if canceled < 1 {
		t.Errorf("canceled = %v, want ≥ 1", canceled)
	}
	if failed != 0 {
		t.Errorf("failed = %v, want 0", failed)
	}
	if hits := metricValue(t, m, "snaked_cache_hits_total"); hits < 1 {
		t.Errorf("cache hits = %v, want ≥ 1", hits)
	}
	if q := metricValue(t, m, "snaked_jobs_queued"); q != 0 {
		t.Errorf("queued = %v, want 0", q)
	}
	if r := metricValue(t, m, "snaked_jobs_running"); r != 0 {
		t.Errorf("running = %v, want 0", r)
	}
	if !strings.Contains(m, `snaked_sim_wall_ms_count{bench="`+benches[0]+`"}`) {
		t.Errorf("per-benchmark wall histogram missing:\n%s", m)
	}

	// Graceful shutdown drains cleanly and then refuses new work.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/runs", RunRequest{Bench: "lps", Mech: "baseline"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: %d %s, want 503", resp.StatusCode, body)
	}
	s := svc.metrics.snap()
	if s.Running != 0 || s.Completed+s.Failed+s.Canceled != s.Submitted {
		t.Errorf("post-drain metrics inconsistent: %+v", s)
	}
}

// TestWaitModeClientDisconnect verifies that a client abandoning a
// synchronous POST /v1/runs?wait=1 cancels the in-flight simulation.
func TestWaitModeClientDisconnect(t *testing.T) {
	svc := tinyService(2)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	b, err := json.Marshal(RunRequest{Bench: "mum", Mech: "baseline", Scale: &bigScale})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/runs?wait=1", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()

	// Find the job and wait until it is simulating, then drop the client.
	var j *job
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		svc.mu.Lock()
		for _, cand := range svc.jobs {
			j = cand
		}
		svc.mu.Unlock()
		if j != nil {
			j.mu.Lock()
			running := j.status == StatusRunning
			j.mu.Unlock()
			if running {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if j == nil {
		t.Fatal("job never appeared")
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Error("request unexpectedly succeeded after client disconnect")
	}
	select {
	case <-j.done:
	case <-time.After(60 * time.Second):
		t.Fatal("job did not terminate after client disconnect")
	}
	j.mu.Lock()
	st := j.status
	j.mu.Unlock()
	if st != StatusCanceled {
		t.Errorf("job status = %s, want canceled", st)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := svc.Shutdown(ctx2); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestQueueOrdering checks priority-then-FIFO pop order.
func TestQueueOrdering(t *testing.T) {
	q := newJobQueue(0)
	mk := func(id string, prio int, seq int64) *job {
		return &job{id: id, seq: seq, spec: spec{priority: prio}, done: make(chan struct{})}
	}
	for _, j := range []*job{mk("low", -1, 1), mk("a", 0, 2), mk("b", 0, 3), mk("high", 7, 4)} {
		if err := q.Push(j); err != nil {
			t.Fatalf("push %s: %v", j.id, err)
		}
	}
	var got []string
	for i := 0; i < 4; i++ {
		j, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		got = append(got, j.id)
	}
	want := []string{"high", "a", "b", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	q.Close()
	if _, ok := q.Pop(); ok {
		t.Error("Pop after Close on empty queue returned a job")
	}
	if err := q.Push(mk("x", 0, 9)); err == nil {
		t.Error("Push after Close succeeded")
	}

	// Bounded depth: the third push into a depth-2 queue is rejected with
	// ErrQueueFull.
	qb := newJobQueue(2)
	if err := qb.Push(mk("1", 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := qb.Push(mk("2", 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := qb.Push(mk("3", 0, 3)); !errors.Is(err, ErrQueueFull) {
		t.Errorf("push past depth: err = %v, want ErrQueueFull", err)
	}
}

// TestSweepRollup submits a small sweep over HTTP and polls it to done.
func TestSweepRollup(t *testing.T) {
	svc := tinyService(4)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	resp, body := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Benches: []string{"cp", "lps"}, Mechs: []string{"baseline", "snake"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit sweep: %d %s", resp.StatusCode, body)
	}
	var sw SweepView
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Total != 4 {
		t.Fatalf("sweep total = %d, want 4", sw.Total)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + sw.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v SweepView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v.Done {
			for _, jv := range v.Jobs {
				if jv.Status != StatusDone {
					t.Errorf("sweep job %s: %s (%s)", jv.ID, jv.Status, jv.Error)
				}
				if jv.Result == nil || jv.Result.IPC <= 0 {
					t.Errorf("sweep job %s: missing result", jv.ID)
				}
			}
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("sweep did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubmitValidation rejects unknown benchmarks, mechanisms, and fields.
func TestSubmitValidation(t *testing.T) {
	svc := tinyService(1)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	for name, req := range map[string]RunRequest{
		"unknown bench":        {Bench: "nope", Mech: "baseline"},
		"unknown mech":         {Bench: "lps", Mech: "nope"},
		"negative parallelism": {Bench: "lps", Mech: "baseline", Parallelism: -1},
		"negative slack":       {Bench: "lps", Mech: "baseline", Slack: -1},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/runs", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", name, resp.StatusCode, body)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"bench":"lps","mech":"baseline","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}
}

// TestNormalizeSlackAndParallelismDefaults pins the local-resource knob
// plumbing: a request's 0 means "server default", explicit values pass
// through, and neither knob reaches the content address (covered by the
// spec fields being outside the RunKey — see keyOf).
func TestNormalizeSlackAndParallelismDefaults(t *testing.T) {
	gpu := config.Scaled(2, 16)
	scale := workloads.Scale{CTAs: 4, WarpsPerCTA: 2, Iters: 2}
	svc := New(Options{Workers: 1, GPU: &gpu, Scale: &scale, Parallelism: 2, SlackWindow: 3})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()
	sp, err := svc.normalize(RunRequest{Bench: "lps", Mech: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	if sp.parallelism != 2 || sp.slack != 3 {
		t.Errorf("defaults: parallelism=%d slack=%d, want 2 and 3", sp.parallelism, sp.slack)
	}
	sp, err = svc.normalize(RunRequest{Bench: "lps", Mech: "baseline", Parallelism: 1, Slack: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sp.parallelism != 1 || sp.slack != 5 {
		t.Errorf("explicit: parallelism=%d slack=%d, want 1 and 5", sp.parallelism, sp.slack)
	}
	if sp.warning != "" {
		t.Errorf("in-bound slack: warning %q, want none", sp.warning)
	}
	// A window beyond the config's provable bound is not an error — the
	// engine clamps it and results are unchanged — but normalize records an
	// advisory the run view surfaces.
	bound := sp.gpu.SlackBound()
	sp, err = svc.normalize(RunRequest{Bench: "lps", Mech: "baseline", Slack: bound + 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp.slack != bound+1 {
		t.Errorf("over-bound slack: %d, want %d passed through", sp.slack, bound+1)
	}
	if !strings.Contains(sp.warning, fmt.Sprintf("bound %d", bound)) {
		t.Errorf("over-bound slack: warning %q, want the bound %d named", sp.warning, bound)
	}
}
