// Package service is the snaked simulation server: an HTTP/JSON API that
// accepts simulation and sweep jobs, executes them on a bounded worker pool
// with a priority-ordered queue, memoizes results in a content-addressed
// cache keyed by harness.RunKey, and exposes metrics and health endpoints.
//
// Endpoints:
//
//	POST   /v1/runs        submit one job (?wait=1 blocks until completion)
//	GET    /v1/runs/{id}   job status and result
//	DELETE /v1/runs/{id}   cancel a queued or running job
//	POST   /v1/sweeps      submit a bench×mech grid of jobs
//	GET    /v1/sweeps/{id} sweep roll-up
//	GET    /v1/sweeps/{id}/stream completed cells as JSON lines, as they land
//	GET    /v1/benchmarks  benchmark and mechanism inventory
//	GET    /v1/cache/{key} local cache tiers lookup (peer-to-peer tier 3)
//	POST   /v1/peer/execute run a forwarded job, return full stats (peers only)
//	GET    /metrics        Prometheus-style text metrics
//	GET    /healthz        liveness
//
// With -peers configured, a fleet of snaked processes forms a job fabric:
// each result key has one owner (rendezvous hash over the member set), local
// misses consult the owner's cache and then forward the job to it, and a
// dead peer degrades to local compute — never an error.
package service

import (
	"time"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/harness"
	"snake/internal/stats"
	"snake/internal/workloads"
)

// RunRequest submits one simulation job.
type RunRequest struct {
	// Bench names a registry benchmark (GET /v1/benchmarks lists them).
	// Mutually exclusive with App.
	Bench string `json:"bench,omitempty"`
	// App names a registry application workload (a multi-kernel launch graph;
	// GET /v1/benchmarks lists them). Mutually exclusive with Bench.
	App string `json:"app,omitempty"`
	// Chain keeps prefetcher chain tables trained across kernel-launch
	// boundaries (sim.Options.ChainPersistence). Only meaningful with App; it
	// changes results and therefore participates in the content address.
	Chain bool `json:"chain,omitempty"`
	// Split is the tenant-0 SM share for apps that partition the machine
	// (0: an even halving). It shapes the app's SM masks and so participates
	// in the content address through the app digest.
	Split int `json:"split,omitempty"`
	// Mech names a registry mechanism; ignored when Snake is set.
	Mech string `json:"mech"`
	// Snake, when set, runs a custom Snake configuration instead of Mech.
	Snake *core.Config `json:"snake,omitempty"`
	// GPU overrides the server's default hardware configuration.
	GPU *config.GPU `json:"gpu,omitempty"`
	// Scale overrides the server's default workload scale.
	Scale *workloads.Scale `json:"scale,omitempty"`
	// Priority orders the queue: higher runs first (default 0); ties are
	// FIFO.
	Priority int `json:"priority,omitempty"`
	// TimeoutMS bounds the simulation wall clock; 0 means no limit.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Parallelism is the per-run SM-shard worker count (sim.Options
	// .Parallelism): 0 uses the server default. Results are bit-identical at
	// every value; the slots are drawn from the server's shared CPU budget,
	// so a wide run trades against job concurrency rather than
	// oversubscribing the host.
	Parallelism int `json:"parallelism,omitempty"`
	// Slack is the per-run bounded-slack epoch length (sim.Options
	// .SlackWindow): 0 uses the server default (itself 0 = auto, the
	// config-derived maximum). Results are bit-identical at every value;
	// like Parallelism it only changes wall clock.
	Slack int `json:"slack,omitempty"`
}

// SweepRequest submits the cross product of (benches ∪ apps) × mechs as one
// sweep. Chain and Split apply to the app cells only.
type SweepRequest struct {
	Benches     []string         `json:"benches,omitempty"`
	Apps        []string         `json:"apps,omitempty"`
	Chain       bool             `json:"chain,omitempty"`
	Split       int              `json:"split,omitempty"`
	Mechs       []string         `json:"mechs"`
	Snake       *core.Config     `json:"snake,omitempty"` // replaces Mechs when set
	GPU         *config.GPU      `json:"gpu,omitempty"`
	Scale       *workloads.Scale `json:"scale,omitempty"`
	Priority    int              `json:"priority,omitempty"`
	TimeoutMS   int64            `json:"timeout_ms,omitempty"`
	Parallelism int              `json:"parallelism,omitempty"`
	Slack       int              `json:"slack,omitempty"`
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the state is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Result summarizes a completed simulation.
type Result struct {
	Cycles    int64   `json:"cycles"`
	Insts     int64   `json:"insts"`
	Loads     int64   `json:"loads"`
	IPC       float64 `json:"ipc"`
	Coverage  float64 `json:"coverage"`
	Accuracy  float64 `json:"accuracy"`
	L1HitRate float64 `json:"l1_hit_rate"`
}

// summarize extracts the wire summary from full simulation stats.
func summarize(st *stats.Sim) *Result {
	return &Result{
		Cycles:    st.Cycles,
		Insts:     st.Insts,
		Loads:     st.Loads,
		IPC:       st.IPC(),
		Coverage:  st.Coverage(),
		Accuracy:  st.Accuracy(),
		L1HitRate: st.L1HitRate(),
	}
}

// RunView is the wire representation of a job. Exactly one of Bench and App
// is set, mirroring the request.
type RunView struct {
	ID     string `json:"id"`
	Bench  string `json:"bench,omitempty"`
	App    string `json:"app,omitempty"`
	Chain  bool   `json:"chain,omitempty"`
	Mech   string `json:"mech"`
	Key    string `json:"key"` // content address (harness.RunKey hash)
	Status Status `json:"status"`
	Cached bool   `json:"cached"`
	// Source says where the result came from: a cache tier ("memory",
	// "disk", "peer"), a forwarded execution on the owning peer
	// ("forward:memory", "forward:disk", "forward:sim"), or a local
	// simulation ("sim").
	Source string `json:"source,omitempty"`
	Error  string `json:"error,omitempty"`
	// Warning carries normalize-time advisories that did not reject the
	// request — e.g. a slack window beyond the config's provable bound,
	// which the engine clamps (results are unchanged, only wall clock).
	Warning string  `json:"warning,omitempty"`
	WallMS  float64 `json:"wall_ms,omitempty"`
	Result  *Result `json:"result,omitempty"`
}

// SweepView is the wire representation of a sweep.
type SweepView struct {
	ID      string    `json:"id"`
	Done    bool      `json:"done"`
	Total   int       `json:"total"`
	Pending int       `json:"pending"`
	Jobs    []RunView `json:"jobs"`
}

// StreamEnd is the final line of a GET /v1/sweeps/{id}/stream response,
// after one RunView line per cell. Clients tell the two apart by the
// "stream_done" field, which RunView lines never carry.
type StreamEnd struct {
	Done      bool `json:"stream_done"`
	Total     int  `json:"total"`
	Completed int  `json:"completed"`
	Failed    int  `json:"failed"`
	Canceled  int  `json:"canceled"`
}

// BenchmarksView is the GET /v1/benchmarks payload.
type BenchmarksView struct {
	Benchmarks []BenchInfo `json:"benchmarks"`
	Apps       []AppInfo   `json:"apps"`
	Mechanisms []string    `json:"mechanisms"`
}

// BenchInfo describes one registry benchmark.
type BenchInfo struct {
	Name     string `json:"name"`
	FullName string `json:"full_name"`
}

// AppInfo describes one registry application workload.
type AppInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// spec is a normalized, validated job specification. parallelism and slack
// are not part of the content address: they change wall clock, never
// results. noForward
// marks work that arrived from a peer: it must be produced locally, never
// forwarded again (loop prevention).
type spec struct {
	bench       string
	app         string // application name; empty for single-kernel jobs
	appDigest   string // content digest of the assembled app (normalize)
	chain       bool   // sim.Options.ChainPersistence for app jobs
	split       int    // tenant-0 SM share for partitioned apps (0: half)
	mech        string // display name; "snake:custom" for custom configs
	snake       *core.Config
	gpu         config.GPU
	scale       workloads.Scale
	priority    int
	timeout     time.Duration
	parallelism int
	slack       int
	warning     string // normalize-time advisory (e.g. slack beyond the bound)
	noForward   bool
	factory     harness.Factory
}

// workload is the display/metrics label: the benchmark name, or the app name
// marked as such.
func (sp *spec) workload() string {
	if sp.app != "" {
		return "app:" + sp.app
	}
	return sp.bench
}

// wireRequest reconstructs a forwardable RunRequest from the normalized
// spec. GPU and scale are always sent explicitly so the peer normalizes to
// the same content address whatever its own defaults are; parallelism and
// slack are local-resource knobs and are left to the peer's defaults.
func (sp *spec) wireRequest() RunRequest {
	gpu, scale := sp.gpu, sp.scale
	req := RunRequest{
		Bench:     sp.bench,
		App:       sp.app,
		Chain:     sp.chain,
		Split:     sp.split,
		GPU:       &gpu,
		Scale:     &scale,
		Priority:  sp.priority,
		TimeoutMS: int64(sp.timeout / time.Millisecond),
	}
	if sp.snake != nil {
		req.Snake = sp.snake
	} else {
		req.Mech = sp.mech
	}
	return req
}

// key returns the job's content address. App jobs carry the app name, its
// content digest (covering kernels, masks, tenants, and dependency edges —
// so one app name assembled for different machines keys apart) and the
// chain-persistence policy; all three are omitempty-zero for kernel jobs, so
// existing kernel keys are unchanged.
func (sp *spec) key() string {
	return harness.RunKey{
		Bench:     sp.bench,
		Mech:      sp.mech,
		Snake:     sp.snake,
		GPU:       sp.gpu,
		Scale:     sp.scale,
		App:       sp.app,
		AppDigest: sp.appDigest,
		Chain:     sp.chain,
	}.Hash()
}
