package service

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"snake/internal/cluster"
)

// wallBucketsMS are the per-benchmark simulation wall-clock histogram bucket
// upper bounds, in milliseconds.
var wallBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// metrics aggregates service counters. All methods are safe for concurrent
// use; gauges derived from other subsystems (queue depth, cache entries) are
// sampled at render time by the server.
type metrics struct {
	mu sync.Mutex

	submitted int64
	running   int64
	completed int64
	failed    int64
	canceled  int64

	cacheHits   int64
	cacheMisses int64

	queueRejected    int64 // submissions refused with 429 (queue full)
	forwardsOK       int64 // jobs executed on the owning peer
	forwardFallbacks int64 // forward attempts degraded to local compute
	forwardedIn      int64 // jobs received from peers via /v1/peer/execute
	streamSubs       int64 // gauge: open sweep-stream subscribers

	wall map[string]*histogram // per-benchmark sim wall clock
}

func newMetrics() *metrics {
	return &metrics{wall: make(map[string]*histogram)}
}

func (m *metrics) jobSubmitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *metrics) jobStarted() {
	m.mu.Lock()
	m.running++
	m.mu.Unlock()
}

// jobFinished transitions a started job to its terminal state.
func (m *metrics) jobFinished(st Status) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	switch st {
	case StatusDone:
		m.completed++
	case StatusFailed:
		m.failed++
	case StatusCanceled:
		m.canceled++
	}
}

// jobDroppedQueued counts a job canceled before it ever started.
func (m *metrics) jobDroppedQueued() {
	m.mu.Lock()
	m.canceled++
	m.mu.Unlock()
}

func (m *metrics) cacheHit() {
	m.mu.Lock()
	m.cacheHits++
	m.mu.Unlock()
}

func (m *metrics) cacheMiss() {
	m.mu.Lock()
	m.cacheMisses++
	m.mu.Unlock()
}

func (m *metrics) queueRejectedInc() {
	m.mu.Lock()
	m.queueRejected++
	m.mu.Unlock()
}

func (m *metrics) forwardOK() {
	m.mu.Lock()
	m.forwardsOK++
	m.mu.Unlock()
}

func (m *metrics) forwardFallback() {
	m.mu.Lock()
	m.forwardFallbacks++
	m.mu.Unlock()
}

func (m *metrics) forwardedInInc() {
	m.mu.Lock()
	m.forwardedIn++
	m.mu.Unlock()
}

func (m *metrics) streamSubscribed() {
	m.mu.Lock()
	m.streamSubs++
	m.mu.Unlock()
}

func (m *metrics) streamUnsubscribed() {
	m.mu.Lock()
	m.streamSubs--
	m.mu.Unlock()
}

// observeWall records one simulation's wall clock for its benchmark.
func (m *metrics) observeWall(bench string, ms float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.wall[bench]
	if h == nil {
		h = newHistogram(wallBucketsMS)
		m.wall[bench] = h
	}
	h.observe(ms)
}

// snapshot is a consistent copy of the counters for rendering and tests.
type snapshot struct {
	Submitted, Running, Completed, Failed, Canceled int64
	CacheHits, CacheMisses                          int64
	QueueRejected                                   int64
	ForwardsOK, ForwardFallbacks, ForwardedIn       int64
	StreamSubs                                      int64
}

func (m *metrics) snap() snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return snapshot{
		Submitted: m.submitted, Running: m.running, Completed: m.completed,
		Failed: m.failed, Canceled: m.canceled,
		CacheHits: m.cacheHits, CacheMisses: m.cacheMisses,
		QueueRejected: m.queueRejected,
		ForwardsOK:    m.forwardsOK, ForwardFallbacks: m.forwardFallbacks,
		ForwardedIn: m.forwardedIn, StreamSubs: m.streamSubs,
	}
}

// hitRatio returns cache hits / lookups (0 when no lookups yet).
func (s snapshot) hitRatio() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// render writes the Prometheus text exposition format. queued is a sampled
// gauge supplied by the caller; store is the tiered cache's snapshot, and
// clu the cluster transport's (nil when the node runs standalone).
func (m *metrics) render(w io.Writer, queued int, store cluster.StoreStats, clu *cluster.Snapshot) {
	s := m.snap()
	fmt.Fprintf(w, "# TYPE snaked_jobs_submitted_total counter\n")
	fmt.Fprintf(w, "snaked_jobs_submitted_total %d\n", s.Submitted)
	fmt.Fprintf(w, "# TYPE snaked_jobs_queued gauge\n")
	fmt.Fprintf(w, "snaked_jobs_queued %d\n", queued)
	fmt.Fprintf(w, "# TYPE snaked_jobs_running gauge\n")
	fmt.Fprintf(w, "snaked_jobs_running %d\n", s.Running)
	fmt.Fprintf(w, "# TYPE snaked_jobs_completed_total counter\n")
	fmt.Fprintf(w, "snaked_jobs_completed_total %d\n", s.Completed)
	fmt.Fprintf(w, "# TYPE snaked_jobs_failed_total counter\n")
	fmt.Fprintf(w, "snaked_jobs_failed_total %d\n", s.Failed)
	fmt.Fprintf(w, "# TYPE snaked_jobs_canceled_total counter\n")
	fmt.Fprintf(w, "snaked_jobs_canceled_total %d\n", s.Canceled)
	fmt.Fprintf(w, "# TYPE snaked_jobs_rejected_total counter\n")
	fmt.Fprintf(w, "snaked_jobs_rejected_total %d\n", s.QueueRejected)
	fmt.Fprintf(w, "# TYPE snaked_cache_hits_total counter\n")
	fmt.Fprintf(w, "snaked_cache_hits_total %d\n", s.CacheHits)
	fmt.Fprintf(w, "# TYPE snaked_cache_misses_total counter\n")
	fmt.Fprintf(w, "snaked_cache_misses_total %d\n", s.CacheMisses)
	fmt.Fprintf(w, "# TYPE snaked_cache_hit_ratio gauge\n")
	fmt.Fprintf(w, "snaked_cache_hit_ratio %.4f\n", s.hitRatio())
	fmt.Fprintf(w, "# TYPE snaked_cache_entries gauge\n")
	fmt.Fprintf(w, "snaked_cache_entries %d\n", store.Entries)
	fmt.Fprintf(w, "# TYPE snaked_cache_tier_entries gauge\n")
	fmt.Fprintf(w, "snaked_cache_tier_entries{tier=\"memory\"} %d\n", store.MemEntries)
	fmt.Fprintf(w, "snaked_cache_tier_entries{tier=\"disk\"} %d\n", store.DiskEntries)
	fmt.Fprintf(w, "# TYPE snaked_cache_tier_bytes gauge\n")
	fmt.Fprintf(w, "snaked_cache_tier_bytes{tier=\"memory\"} %d\n", store.MemBytes)
	fmt.Fprintf(w, "snaked_cache_tier_bytes{tier=\"disk\"} %d\n", store.DiskBytes)
	fmt.Fprintf(w, "# TYPE snaked_cache_tier_hits_total counter\n")
	fmt.Fprintf(w, "snaked_cache_tier_hits_total{tier=\"memory\"} %d\n", store.MemHits)
	fmt.Fprintf(w, "snaked_cache_tier_hits_total{tier=\"disk\"} %d\n", store.DiskHits)
	fmt.Fprintf(w, "snaked_cache_tier_hits_total{tier=\"peer\"} %d\n", store.PeerHits)
	fmt.Fprintf(w, "# TYPE snaked_cache_evictions_total counter\n")
	fmt.Fprintf(w, "snaked_cache_evictions_total %d\n", store.Evictions)
	fmt.Fprintf(w, "# TYPE snaked_cache_spills_total counter\n")
	fmt.Fprintf(w, "snaked_cache_spills_total %d\n", store.Spills)
	fmt.Fprintf(w, "# TYPE snaked_cache_disk_errors_total counter\n")
	fmt.Fprintf(w, "snaked_cache_disk_errors_total %d\n", store.DiskErrors)
	fmt.Fprintf(w, "# TYPE snaked_stream_subscribers gauge\n")
	fmt.Fprintf(w, "snaked_stream_subscribers %d\n", s.StreamSubs)
	if clu != nil {
		fmt.Fprintf(w, "# TYPE snaked_cluster_nodes gauge\n")
		fmt.Fprintf(w, "snaked_cluster_nodes %d\n", clu.Nodes)
		fmt.Fprintf(w, "# TYPE snaked_peer_fetch_total counter\n")
		fmt.Fprintf(w, "snaked_peer_fetch_total{result=\"hit\"} %d\n", clu.FetchHits)
		fmt.Fprintf(w, "snaked_peer_fetch_total{result=\"miss\"} %d\n", clu.FetchMisses)
		fmt.Fprintf(w, "snaked_peer_fetch_total{result=\"error\"} %d\n", clu.FetchErrors)
		fmt.Fprintf(w, "# TYPE snaked_forwards_total counter\n")
		fmt.Fprintf(w, "snaked_forwards_total{result=\"ok\"} %d\n", s.ForwardsOK)
		fmt.Fprintf(w, "snaked_forwards_total{result=\"fallback\"} %d\n", s.ForwardFallbacks)
		fmt.Fprintf(w, "# TYPE snaked_forwarded_in_total counter\n")
		fmt.Fprintf(w, "snaked_forwarded_in_total %d\n", s.ForwardedIn)
		fmt.Fprintf(w, "# TYPE snaked_peer_saturated_total counter\n")
		fmt.Fprintf(w, "snaked_peer_saturated_total %d\n", clu.ExecSaturated)
		fmt.Fprintf(w, "# TYPE snaked_peer_up gauge\n")
		for _, p := range clu.Peers {
			up := 0
			if p.Up {
				up = 1
			}
			fmt.Fprintf(w, "snaked_peer_up{peer=%q} %d\n", p.URL, up)
		}
	}

	m.mu.Lock()
	benches := make([]string, 0, len(m.wall))
	for b := range m.wall {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	fmt.Fprintf(w, "# TYPE snaked_sim_wall_ms histogram\n")
	for _, b := range benches {
		m.wall[b].render(w, "snaked_sim_wall_ms", fmt.Sprintf("bench=%q", b))
	}
	m.mu.Unlock()
}

// histogram is a fixed-bucket cumulative histogram (Prometheus semantics).
type histogram struct {
	bounds []float64
	counts []int64 // per-bucket (non-cumulative), +1 slot for +Inf
	sum    float64
	total  int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

func (h *histogram) render(w io.Writer, name, labels string) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n", name, labels, b, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, h.total)
	fmt.Fprintf(w, "%s_sum{%s} %.3f\n", name, labels, h.sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.total)
}
