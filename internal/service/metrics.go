package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// wallBucketsMS are the per-benchmark simulation wall-clock histogram bucket
// upper bounds, in milliseconds.
var wallBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// metrics aggregates service counters. All methods are safe for concurrent
// use; gauges derived from other subsystems (queue depth, cache entries) are
// sampled at render time by the server.
type metrics struct {
	mu sync.Mutex

	submitted int64
	running   int64
	completed int64
	failed    int64
	canceled  int64

	cacheHits   int64
	cacheMisses int64

	wall map[string]*histogram // per-benchmark sim wall clock
}

func newMetrics() *metrics {
	return &metrics{wall: make(map[string]*histogram)}
}

func (m *metrics) jobSubmitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *metrics) jobStarted() {
	m.mu.Lock()
	m.running++
	m.mu.Unlock()
}

// jobFinished transitions a started job to its terminal state.
func (m *metrics) jobFinished(st Status) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	switch st {
	case StatusDone:
		m.completed++
	case StatusFailed:
		m.failed++
	case StatusCanceled:
		m.canceled++
	}
}

// jobDroppedQueued counts a job canceled before it ever started.
func (m *metrics) jobDroppedQueued() {
	m.mu.Lock()
	m.canceled++
	m.mu.Unlock()
}

func (m *metrics) cacheHit() {
	m.mu.Lock()
	m.cacheHits++
	m.mu.Unlock()
}

func (m *metrics) cacheMiss() {
	m.mu.Lock()
	m.cacheMisses++
	m.mu.Unlock()
}

// observeWall records one simulation's wall clock for its benchmark.
func (m *metrics) observeWall(bench string, ms float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.wall[bench]
	if h == nil {
		h = newHistogram(wallBucketsMS)
		m.wall[bench] = h
	}
	h.observe(ms)
}

// snapshot is a consistent copy of the counters for rendering and tests.
type snapshot struct {
	Submitted, Running, Completed, Failed, Canceled int64
	CacheHits, CacheMisses                          int64
}

func (m *metrics) snap() snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return snapshot{
		Submitted: m.submitted, Running: m.running, Completed: m.completed,
		Failed: m.failed, Canceled: m.canceled,
		CacheHits: m.cacheHits, CacheMisses: m.cacheMisses,
	}
}

// hitRatio returns cache hits / lookups (0 when no lookups yet).
func (s snapshot) hitRatio() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// render writes the Prometheus text exposition format. queued and
// cacheEntries are sampled gauges supplied by the caller.
func (m *metrics) render(w io.Writer, queued, cacheEntries int) {
	s := m.snap()
	fmt.Fprintf(w, "# TYPE snaked_jobs_submitted_total counter\n")
	fmt.Fprintf(w, "snaked_jobs_submitted_total %d\n", s.Submitted)
	fmt.Fprintf(w, "# TYPE snaked_jobs_queued gauge\n")
	fmt.Fprintf(w, "snaked_jobs_queued %d\n", queued)
	fmt.Fprintf(w, "# TYPE snaked_jobs_running gauge\n")
	fmt.Fprintf(w, "snaked_jobs_running %d\n", s.Running)
	fmt.Fprintf(w, "# TYPE snaked_jobs_completed_total counter\n")
	fmt.Fprintf(w, "snaked_jobs_completed_total %d\n", s.Completed)
	fmt.Fprintf(w, "# TYPE snaked_jobs_failed_total counter\n")
	fmt.Fprintf(w, "snaked_jobs_failed_total %d\n", s.Failed)
	fmt.Fprintf(w, "# TYPE snaked_jobs_canceled_total counter\n")
	fmt.Fprintf(w, "snaked_jobs_canceled_total %d\n", s.Canceled)
	fmt.Fprintf(w, "# TYPE snaked_cache_hits_total counter\n")
	fmt.Fprintf(w, "snaked_cache_hits_total %d\n", s.CacheHits)
	fmt.Fprintf(w, "# TYPE snaked_cache_misses_total counter\n")
	fmt.Fprintf(w, "snaked_cache_misses_total %d\n", s.CacheMisses)
	fmt.Fprintf(w, "# TYPE snaked_cache_hit_ratio gauge\n")
	fmt.Fprintf(w, "snaked_cache_hit_ratio %.4f\n", s.hitRatio())
	fmt.Fprintf(w, "# TYPE snaked_cache_entries gauge\n")
	fmt.Fprintf(w, "snaked_cache_entries %d\n", cacheEntries)

	m.mu.Lock()
	benches := make([]string, 0, len(m.wall))
	for b := range m.wall {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	fmt.Fprintf(w, "# TYPE snaked_sim_wall_ms histogram\n")
	for _, b := range benches {
		m.wall[b].render(w, "snaked_sim_wall_ms", fmt.Sprintf("bench=%q", b))
	}
	m.mu.Unlock()
}

// histogram is a fixed-bucket cumulative histogram (Prometheus semantics).
type histogram struct {
	bounds []float64
	counts []int64 // per-bucket (non-cumulative), +1 slot for +Inf
	sum    float64
	total  int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

func (h *histogram) render(w io.Writer, name, labels string) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n", name, labels, b, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, h.total)
	fmt.Fprintf(w, "%s_sum{%s} %.3f\n", name, labels, h.sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.total)
}
