package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestServiceAppJobs drives application jobs through the HTTP API: submit,
// key separation between chain policies, cache hit on resubmission, sweep
// cells over apps, inventory listing, and validation failures.
func TestServiceAppJobs(t *testing.T) {
	svc := tinyService(2)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(t.Context())

	submit := func(req RunRequest) RunView {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/runs?wait=1", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %+v: %d %s", req, resp.StatusCode, body)
		}
		var v RunView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	warm := submit(RunRequest{App: "warmup", Mech: "snake", Chain: true})
	if warm.Status != StatusDone || warm.Result == nil {
		t.Fatalf("app job did not complete: %+v", warm)
	}
	if warm.App != "warmup" || !warm.Chain || warm.Bench != "" {
		t.Errorf("view misreports the app job: %+v", warm)
	}
	if warm.Result.Insts == 0 || warm.Result.Cycles == 0 {
		t.Errorf("empty result: %+v", warm.Result)
	}

	cold := submit(RunRequest{App: "warmup", Mech: "snake"})
	if cold.Key == warm.Key {
		t.Error("chain policies share one content address")
	}
	kernel := submit(RunRequest{Bench: "lps", Mech: "snake"})
	if kernel.Key == warm.Key || kernel.Key == cold.Key {
		t.Error("kernel and app jobs share a content address")
	}

	// Resubmission of an identical app job is served from the cache.
	again := submit(RunRequest{App: "warmup", Mech: "snake", Chain: true})
	if !again.Cached {
		t.Errorf("identical app job was recomputed: %+v", again)
	}
	if *again.Result != *warm.Result {
		t.Error("cached app result differs from the original")
	}

	// Sweeps accept app cells alongside bench cells.
	resp, body := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Benches: []string{"lps"},
		Apps:    []string{"pipeline", "cotenant"},
		Mechs:   []string{"baseline", "mta"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sv SweepView
	if err := json.Unmarshal(body, &sv); err != nil {
		t.Fatal(err)
	}
	if sv.Total != 6 {
		t.Fatalf("sweep of 1 bench + 2 apps x 2 mechs has %d cells, want 6", sv.Total)
	}
	for _, id := range []string{sv.Jobs[0].ID, sv.Jobs[len(sv.Jobs)-1].ID} {
		waitRun(t, ts.URL, id, func(v RunView) bool { return v.Status.Terminal() }, "terminal")
	}

	// Inventory lists the app registry.
	invResp, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	var inv BenchmarksView
	if err := json.NewDecoder(invResp.Body).Decode(&inv); err != nil {
		t.Fatal(err)
	}
	invResp.Body.Close()
	if len(inv.Apps) == 0 {
		t.Error("inventory lists no apps")
	}

	// Validation: unknown app, bench+app together, bad split.
	for _, bad := range []RunRequest{
		{App: "nope", Mech: "snake"},
		{App: "warmup", Bench: "lps", Mech: "snake"},
		{App: "cotenant", Mech: "snake", Split: -1},
		{App: "cotenant", Mech: "snake", Split: 99},
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/runs", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %+v accepted with %d", bad, resp.StatusCode)
		}
	}
}
