package service

import (
	"sync"

	"snake/internal/stats"
)

// resultCache is the content-addressed result store: keys are
// harness.RunKey hashes, values are completed simulation stats. Simulations
// are deterministic, so entries never expire; repeated sweeps over the
// paper's eleven-benchmark grid hit this instead of re-simulating.
type resultCache struct {
	mu sync.RWMutex
	m  map[string]*stats.Sim
}

func newResultCache() *resultCache {
	return &resultCache{m: make(map[string]*stats.Sim)}
}

// Get returns the cached stats for a key, if present.
func (c *resultCache) Get(key string) (*stats.Sim, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st, ok := c.m[key]
	return st, ok
}

// Put stores a completed result. First write wins: the simulations are
// deterministic, so a concurrent duplicate computed the same stats.
func (c *resultCache) Put(key string, st *stats.Sim) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; !ok {
		c.m[key] = st
	}
}

// Entries returns the number of cached results.
func (c *resultCache) Entries() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
