package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// subscribe registers a stream consumer on the sweep. The channel is
// buffered generously past the worst case (one notify per job plus replay
// slack) so notifiers never block on a slow reader.
func (sw *sweep) subscribe() (int, chan *job) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.nextSub++
	id := sw.nextSub
	ch := make(chan *job, 2*len(sw.jobIDs)+4)
	sw.subs[id] = ch
	return id, ch
}

func (sw *sweep) unsubscribe(id int) {
	sw.mu.Lock()
	delete(sw.subs, id)
	sw.mu.Unlock()
}

// notify fans one terminal job out to every subscriber. Sends are
// non-blocking: a subscriber whose buffer somehow filled loses the event
// rather than stalling job completion; its replay-on-connect already covered
// everything terminal before it subscribed.
func (sw *sweep) notify(j *job) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for _, ch := range sw.subs {
		select {
		case ch <- j:
		default:
		}
	}
}

// notifySweep routes a terminal job to its sweep's subscribers, if any.
func (s *Service) notifySweep(j *job) {
	if j.sweepID == "" {
		return
	}
	s.mu.Lock()
	sw := s.sweeps[j.sweepID]
	s.mu.Unlock()
	if sw != nil {
		sw.notify(j)
	}
}

// handleStreamSweep is GET /v1/sweeps/{id}/stream: chunked JSON lines, one
// RunView per cell in completion order as the cells land, closed by a
// StreamEnd summary line once every cell is terminal. Clients see results
// immediately instead of polling the roll-up with ?wait=1 semantics.
func (s *Service) handleStreamSweep(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sw, ok := s.sweeps[r.PathValue("id")]
	var jobs []*job
	if ok {
		jobs = make([]*job, 0, len(sw.jobIDs))
		for _, id := range sw.jobIDs {
			jobs = append(jobs, s.jobs[id])
		}
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such sweep %q", r.PathValue("id")))
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	subID, ch := sw.subscribe()
	defer sw.unsubscribe(subID)
	s.metrics.streamSubscribed()
	defer s.metrics.streamUnsubscribed()

	enc := json.NewEncoder(w)
	sent := make(map[string]bool, len(jobs))
	var end StreamEnd
	emit := func(j *job) bool {
		if sent[j.id] {
			return true
		}
		v := j.view()
		if !v.Status.Terminal() {
			return true
		}
		sent[j.id] = true
		switch v.Status {
		case StatusDone:
			end.Completed++
		case StatusFailed:
			end.Failed++
		case StatusCanceled:
			end.Canceled++
		}
		if err := enc.Encode(v); err != nil {
			return false
		}
		if canFlush {
			flusher.Flush()
		}
		return true
	}

	// Replay cells already terminal at connect time, then stream the rest
	// in completion order. Notifications that raced the replay are deduped
	// by job ID.
	for _, j := range jobs {
		if !emit(j) {
			return
		}
	}
	for len(sent) < len(jobs) {
		select {
		case j := <-ch:
			if !emit(j) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
	end.Done = true
	end.Total = len(jobs)
	_ = enc.Encode(end)
	if canFlush {
		flusher.Flush()
	}
}
