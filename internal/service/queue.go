package service

import (
	"container/heap"
	"sync"
)

// jobQueue is a blocking priority queue: higher-priority jobs pop first,
// equal priorities pop in submission order. Close stops intake but lets
// consumers drain what is already queued — the graceful-shutdown path.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   jobHeap
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a job; it reports false after Close.
func (q *jobQueue) Push(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	heap.Push(&q.heap, j)
	q.cond.Signal()
	return true
}

// Pop blocks until a job is available or the queue is closed and empty; the
// second return is false only in the latter case.
func (q *jobQueue) Pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil, false
	}
	return heap.Pop(&q.heap).(*job), true
}

// Close stops intake and wakes all blocked consumers.
func (q *jobQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len returns the number of queued jobs.
func (q *jobQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// jobHeap orders by (priority desc, seq asc).
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].spec.priority != h[j].spec.priority {
		return h[i].spec.priority > h[j].spec.priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
