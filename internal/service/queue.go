package service

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrQueueFull rejects submissions when the bounded queue is at depth: the
// admission-control signal the HTTP layer turns into 429 + Retry-After.
var ErrQueueFull = errors.New("service: job queue full")

// errQueueClosed rejects submissions after Close (graceful shutdown).
var errQueueClosed = errors.New("service: job queue closed")

// jobQueue is a blocking priority queue with bounded depth: higher-priority
// jobs pop first, equal priorities pop in submission order. Push rejects
// with ErrQueueFull past maxDepth (admission control) and errQueueClosed
// after Close, which stops intake but lets consumers drain what is already
// queued — the graceful-shutdown path.
type jobQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	heap     jobHeap
	maxDepth int // <= 0: unbounded
	closed   bool
}

func newJobQueue(maxDepth int) *jobQueue {
	q := &jobQueue{maxDepth: maxDepth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a job, or reports why it cannot.
func (q *jobQueue) Push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if q.maxDepth > 0 && len(q.heap) >= q.maxDepth {
		return ErrQueueFull
	}
	heap.Push(&q.heap, j)
	q.cond.Signal()
	return nil
}

// Pop blocks until a job is available or the queue is closed and empty; the
// second return is false only in the latter case.
func (q *jobQueue) Pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil, false
	}
	return heap.Pop(&q.heap).(*job), true
}

// Remove takes a specific job out of the queue (canceled before running),
// freeing its depth slot immediately. Reports whether the job was still
// queued; false means a worker already popped it (or it was never pushed).
func (q *jobQueue) Remove(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.heapIdx < 0 || j.heapIdx >= len(q.heap) || q.heap[j.heapIdx] != j {
		return false
	}
	heap.Remove(&q.heap, j.heapIdx)
	return true
}

// Close stops intake and wakes all blocked consumers.
func (q *jobQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len returns the number of queued jobs.
func (q *jobQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// jobHeap orders by (priority desc, seq asc). It maintains each job's
// heapIdx (guarded by the queue lock, -1 when not in the heap) so Remove
// can excise a canceled job in O(log n) without scanning.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].spec.priority != h[j].spec.priority {
		return h[i].spec.priority > h[j].spec.priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *jobHeap) Push(x interface{}) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}
