package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"snake/internal/cluster"
	"snake/internal/config"
	"snake/internal/harness"
	"snake/internal/workloads"
)

// TestQueueFull429: past the bounded depth, submissions are rejected with
// 429 and a Retry-After header, and the rejection is counted.
func TestQueueFull429(t *testing.T) {
	gpu := config.Scaled(2, 16)
	scale := workloads.Scale{CTAs: 4, WarpsPerCTA: 2, Iters: 2}
	svc := New(Options{Workers: 1, GPU: &gpu, Scale: &scale, QueueMax: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	// Occupy the single worker with a long-running job, then fill the queue.
	resp, body := postJSON(t, ts.URL+"/v1/runs", RunRequest{
		Bench: "lps", Mech: "baseline", Scale: &bigScale, Priority: 100,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit long job: %d %s", resp.StatusCode, body)
	}
	var long RunView
	if err := json.Unmarshal(body, &long); err != nil {
		t.Fatal(err)
	}
	waitRun(t, ts.URL, long.ID, func(v RunView) bool { return v.Status == StatusRunning }, "running")

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/runs", RunRequest{Bench: "cp", Mech: "baseline", Priority: i})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body = postJSON(t, ts.URL+"/v1/runs", RunRequest{Bench: "mum", Mech: "baseline"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit: %d %s, want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("429 body = %s", body)
	}

	// A rejected sweep rolls back the cells it managed to enqueue.
	resp, _ = postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Benches: []string{"cp", "lps", "mum"}, Mechs: []string{"baseline", "intra"},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth sweep: %d, want 429", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if got := metricValue(t, string(mbody), "snaked_jobs_rejected_total"); got < 2 {
		t.Errorf("rejected = %v, want ≥ 2", got)
	}

	// Unblock the drain: cancel the long victim.
	creq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+long.ID, nil)
	if cresp, err := http.DefaultClient.Do(creq); err == nil {
		cresp.Body.Close()
	}
}

// TestSweepRollbackFreesQueueDepth: a sweep rejected by admission control
// removes its rolled-back cells from the priority heap immediately, so the
// rejection does not transiently inflate queue depth and 429 subsequent
// submissions that would otherwise fit.
func TestSweepRollbackFreesQueueDepth(t *testing.T) {
	gpu := config.Scaled(2, 16)
	scale := workloads.Scale{CTAs: 4, WarpsPerCTA: 2, Iters: 2}
	svc := New(Options{Workers: 1, GPU: &gpu, Scale: &scale, QueueMax: 3})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	// Pin the single worker, then leave exactly one free queue slot.
	resp, body := postJSON(t, ts.URL+"/v1/runs", RunRequest{
		Bench: "lps", Mech: "baseline", Scale: &bigScale, Priority: 100,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit long job: %d %s", resp.StatusCode, body)
	}
	var long RunView
	if err := json.Unmarshal(body, &long); err != nil {
		t.Fatal(err)
	}
	waitRun(t, ts.URL, long.ID, func(v RunView) bool { return v.Status == StatusRunning }, "running")
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts.URL+"/v1/runs", RunRequest{Bench: "cp", Mech: "baseline"}); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill %d: %d %s", i, resp.StatusCode, body)
		}
	}

	// A two-cell sweep admits its first cell (depth 3) then hits the bound;
	// the rollback must give the slot back.
	resp, _ = postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Benches: []string{"mum", "hotspot"}, Mechs: []string{"baseline"},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth sweep: %d, want 429", resp.StatusCode)
	}
	resp, body = postJSON(t, ts.URL+"/v1/runs", RunRequest{Bench: "nw", Mech: "baseline"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-rollback submit: %d %s, want 202 (rolled-back cells still hold queue slots)", resp.StatusCode, body)
	}

	// Unblock the drain.
	creq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+long.ID, nil)
	if cresp, err := http.DefaultClient.Do(creq); err == nil {
		cresp.Body.Close()
	}
}

// twoNodes boots two in-process snaked services joined into one cluster
// over real listeners, so forwarding and peer fetch exercise the actual
// HTTP transport.
func twoNodes(t *testing.T, optA, optB Options) (a, b *Service, urlA, urlB string, stop func()) {
	t.Helper()
	lA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urlA = "http://" + lA.Addr().String()
	urlB = "http://" + lB.Addr().String()

	optA.Self, optA.Peers = urlA, []string{urlB}
	optB.Self, optB.Peers = urlB, []string{urlA}
	a, b = New(optA), New(optB)
	srvA := &http.Server{Handler: a.Handler()}
	srvB := &http.Server{Handler: b.Handler()}
	go srvA.Serve(lA)
	go srvB.Serve(lB)
	return a, b, urlA, urlB, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srvA.Close()
		srvB.Close()
		_ = a.Shutdown(ctx)
		_ = b.Shutdown(ctx)
	}
}

// cellOwnedBy finds a (bench, mech) cell whose RunKey the given node owns.
func cellOwnedBy(t *testing.T, owner string, nodes []string, gpu config.GPU, scale workloads.Scale, exclude map[string]bool) RunRequest {
	t.Helper()
	for _, bench := range workloads.Names() {
		for _, mech := range []string{"baseline", "intra", "inter", "snake"} {
			cell := bench + "/" + mech
			if exclude[cell] {
				continue
			}
			key := harness.RunKey{Bench: bench, Mech: mech, GPU: gpu, Scale: scale}.Hash()
			if cluster.Owner(key, nodes) == owner {
				exclude[cell] = true
				return RunRequest{Bench: bench, Mech: mech}
			}
		}
	}
	t.Fatal("no cell owned by node; rendezvous hash degenerate")
	return RunRequest{}
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// labeledMetric scrapes one labeled metric sample value.
func labeledMetric(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			var v float64
			fmt.Sscanf(strings.TrimPrefix(line, sample+" "), "%f", &v)
			return v
		}
	}
	t.Fatalf("metric sample %s not found in:\n%s", sample, body)
	return 0
}

// TestTwoNodeCluster is the acceptance scenario: a cell simulated on node A
// is served from cache by node B (tier-3 peer fetch), a cell B does not own
// is forwarded to its owner A (exactly-once production), and a dead peer
// degrades to local compute without failing any job.
func TestTwoNodeCluster(t *testing.T) {
	gpu := config.Scaled(2, 16)
	scale := workloads.Scale{CTAs: 4, WarpsPerCTA: 2, Iters: 2}
	opt := Options{Workers: 2, GPU: &gpu, Scale: &scale, PeerDownFor: 200 * time.Millisecond}
	a, _, urlA, urlB, stop := twoNodes(t, opt, opt)
	defer stop()
	nodes := []string{urlA, urlB}
	used := make(map[string]bool)

	post := func(base string, req RunRequest) RunView {
		t.Helper()
		resp, body := postJSON(t, base+"/v1/runs?wait=1", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run on %s: %d %s", base, resp.StatusCode, body)
		}
		var v RunView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusDone {
			t.Fatalf("run on %s: status %s (%s)", base, v.Status, v.Error)
		}
		return v
	}

	// 1. Simulate a cell on its owner A, then ask B for the same cell: B
	// must serve it via peer fetch from A's cache, not re-simulate.
	cell := cellOwnedBy(t, urlA, nodes, gpu, scale, used)
	onA := post(urlA, cell)
	if onA.Source != "sim" {
		t.Fatalf("first run source = %q, want sim", onA.Source)
	}
	onB := post(urlB, cell)
	if !onB.Cached || onB.Source != "peer" {
		t.Fatalf("node B: cached=%v source=%q, want a peer-cache hit", onB.Cached, onB.Source)
	}
	if onB.Key != onA.Key || *onB.Result != *onA.Result {
		t.Fatalf("cross-node result mismatch:\nA %+v\nB %+v", onA, onB)
	}
	if hits := labeledMetric(t, scrapeMetrics(t, urlB), `snaked_cache_tier_hits_total{tier="peer"}`); hits < 1 {
		t.Errorf("node B peer tier hits = %v, want ≥ 1", hits)
	}

	// 2. Submit a cell owned by A to node B: B forwards it to A rather than
	// simulating a key it does not own.
	cell2 := cellOwnedBy(t, urlA, nodes, gpu, scale, used)
	fwd := post(urlB, cell2)
	if !strings.HasPrefix(fwd.Source, "forward:") {
		t.Fatalf("non-owned cell source = %q, want forward:*", fwd.Source)
	}
	mA := scrapeMetrics(t, urlA)
	if got := metricValue(t, mA, "snaked_forwarded_in_total"); got < 1 {
		t.Errorf("node A forwarded_in = %v, want ≥ 1", got)
	}
	if got := labeledMetric(t, scrapeMetrics(t, urlB), `snaked_forwards_total{result="ok"}`); got < 1 {
		t.Errorf("node B forwards ok = %v, want ≥ 1", got)
	}
	// Exactly-once: A simulated it, so A's cache holds it and the same cell
	// resubmitted anywhere is a cache hit, not a new simulation.
	again := post(urlB, cell2)
	if !again.Cached {
		t.Errorf("resubmitted forwarded cell not cached: %+v", again)
	}

	// 3. Failure semantics: drain A so it refuses forwarded work; a cell
	// owned by A must degrade to local compute on B — done, via simulation,
	// no error surfaced to the caller.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("drain A: %v", err)
	}
	cell3 := cellOwnedBy(t, urlA, nodes, gpu, scale, used)
	local := post(urlB, cell3)
	if local.Source != "sim" {
		t.Errorf("with owner dead, source = %q, want local sim", local.Source)
	}
	if got := labeledMetric(t, scrapeMetrics(t, urlB), `snaked_forwards_total{result="fallback"}`); got < 1 {
		t.Errorf("node B forward fallbacks = %v, want ≥ 1", got)
	}
}

// TestCrossForwardNoDeadlock: with workers ≤ peer-inflight, concurrent load
// on two nodes whose keys are cross-owned once wedged both pools — each
// node's only worker blocked forwarding out while the forwarded-in job it
// was waiting on queued behind that same worker. Forwarded-in work now runs
// on reserved capacity, so the cross-traffic must drain.
func TestCrossForwardNoDeadlock(t *testing.T) {
	gpu := config.Scaled(2, 16)
	scale := workloads.Scale{CTAs: 4, WarpsPerCTA: 2, Iters: 2}
	opt := Options{Workers: 1, GPU: &gpu, Scale: &scale, PeerInflight: 4}
	_, _, urlA, urlB, stop := twoNodes(t, opt, opt)
	defer stop()
	nodes := []string{urlA, urlB}
	used := make(map[string]bool)

	// Cells owned by the *other* node, submitted to both sides at once, so
	// both single workers block forwarding out simultaneously.
	type sub struct {
		base string
		req  RunRequest
	}
	var subs []sub
	for i := 0; i < 2; i++ {
		subs = append(subs, sub{urlA, cellOwnedBy(t, urlB, nodes, gpu, scale, used)})
		subs = append(subs, sub{urlB, cellOwnedBy(t, urlA, nodes, gpu, scale, used)})
	}
	results := make(chan string, len(subs))
	for _, sb := range subs {
		go func(sb sub) {
			b, _ := json.Marshal(sb.req)
			resp, err := http.Post(sb.base+"/v1/runs?wait=1", "application/json", strings.NewReader(string(b)))
			if err != nil {
				results <- fmt.Sprintf("%s/%s: %v", sb.req.Bench, sb.req.Mech, err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var v RunView
			if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &v) != nil || v.Status != StatusDone {
				results <- fmt.Sprintf("%s/%s: HTTP %d %s", sb.req.Bench, sb.req.Mech, resp.StatusCode, body)
				return
			}
			results <- ""
		}(sb)
	}
	deadline := time.After(90 * time.Second)
	for i := 0; i < len(subs); i++ {
		select {
		case msg := <-results:
			if msg != "" {
				t.Errorf("cross-forwarded cell failed: %s", msg)
			}
		case <-deadline:
			t.Fatalf("cross-owned load wedged: only %d/%d cells finished", i, len(subs))
		}
	}
}

// TestSweepStream: the chunked-JSON stream delivers one line per cell as
// cells finish, then a summary line, without the client ever polling.
func TestSweepStream(t *testing.T) {
	svc := tinyService(4)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	resp, body := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Benches: []string{"cp", "lps", "hotspot"}, Mechs: []string{"baseline", "snake"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit sweep: %d %s", resp.StatusCode, body)
	}
	var sw SweepView
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}

	sresp, err := http.Get(ts.URL + "/v1/sweeps/" + sw.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	var cells []RunView
	var end StreamEnd
	gotEnd := false
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad stream line %s: %v", line, err)
		}
		if probe.ID != "" {
			var v RunView
			if err := json.Unmarshal(line, &v); err != nil {
				t.Fatal(err)
			}
			cells = append(cells, v)
			continue
		}
		if err := json.Unmarshal(line, &end); err != nil {
			t.Fatal(err)
		}
		gotEnd = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(cells) != sw.Total {
		t.Fatalf("streamed %d cells, want %d", len(cells), sw.Total)
	}
	if !gotEnd || !end.Done || end.Total != sw.Total || end.Completed != sw.Total {
		t.Errorf("stream end = %+v, want done with %d completed", end, sw.Total)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if c.Status != StatusDone || c.Result == nil || c.Result.IPC <= 0 {
			t.Errorf("streamed cell %s: %s result=%v", c.ID, c.Status, c.Result)
		}
		if seen[c.ID] {
			t.Errorf("cell %s streamed twice", c.ID)
		}
		seen[c.ID] = true
	}

	// Re-streaming a finished sweep replays every cell immediately.
	sresp2, err := http.Get(ts.URL + "/v1/sweeps/" + sw.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	replay, _ := io.ReadAll(sresp2.Body)
	sresp2.Body.Close()
	if n := strings.Count(string(replay), "\n"); n != sw.Total+1 {
		t.Errorf("replay lines = %d, want %d cells + 1 summary", n, sw.Total)
	}
	if got := metricValue(t, scrapeMetrics(t, ts.URL), "snaked_stream_subscribers"); got != 0 {
		t.Errorf("stream subscribers after close = %v, want 0", got)
	}
}
