package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"snake/internal/harness"
	"snake/internal/sim"
	"snake/internal/stats"
	"snake/internal/workloads"
)

// job is one queued/running/completed simulation.
type job struct {
	id      string
	seq     int64
	spec    spec
	key     string
	sweepID string

	mu         sync.Mutex
	status     Status
	cached     bool
	st         *stats.Sim
	err        error
	cancel     context.CancelFunc // non-nil while running
	startedAt  time.Time
	finishedAt time.Time

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// view snapshots the job for the wire.
func (j *job) view() RunView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := RunView{
		ID:     j.id,
		Bench:  j.spec.bench,
		Mech:   j.spec.mech,
		Key:    j.key,
		Status: j.status,
		Cached: j.cached,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.status == StatusDone && j.st != nil {
		v.Result = summarize(j.st)
	}
	if !j.finishedAt.IsZero() && !j.startedAt.IsZero() {
		v.WallMS = float64(j.finishedAt.Sub(j.startedAt)) / float64(time.Millisecond)
	}
	return v
}

// worker is one pool goroutine: pop jobs until the queue closes and drains.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job: cache lookup first, then a cancellable
// simulation whose result feeds the content-addressed cache.
func (s *Service) runJob(j *job) {
	j.mu.Lock()
	if j.status != StatusQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.startedAt = time.Now()
	var ctx context.Context
	var cancel context.CancelFunc
	if j.spec.timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, j.spec.timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	j.cancel = cancel
	j.mu.Unlock()
	s.metrics.jobStarted()
	defer cancel()

	if st, ok := s.cache.Get(j.key); ok {
		s.metrics.cacheHit()
		s.finish(j, st, nil, true)
		return
	}
	s.metrics.cacheMiss()
	st, err := s.simulate(ctx, &j.spec)
	if err == nil {
		s.cache.Put(j.key, st)
	}
	s.finish(j, st, err, false)
}

// simulate builds the workload and runs the cycle-level simulation under
// ctx. The run holds parallelism slots of the shared CPU budget for its
// duration, so the worker pool's concurrency and each run's internal
// parallelism spend one bounded currency (workers × parallelism can never
// exceed the budget in CPU terms, whatever the pool size).
func (s *Service) simulate(ctx context.Context, sp *spec) (*stats.Sim, error) {
	k, err := workloads.Shared().Kernel(sp.bench, sp.scale)
	if err != nil {
		return nil, err
	}
	granted, err := s.budget.Acquire(ctx, sp.parallelism)
	if err != nil {
		return nil, err
	}
	defer s.budget.Release(granted)
	// Registry mechanism names tag the pooled engine for prefetcher reuse;
	// custom snake configs all normalize to mech "snake:custom", which does
	// not identify one configuration, so they use the untagged path.
	tag := sp.mech
	if sp.snake != nil {
		tag = ""
	}
	out, err := harness.SharedEnginePool().Run(k, sim.Options{
		Config:        sp.gpu,
		NewPrefetcher: sp.factory,
		Context:       ctx,
		Parallelism:   granted,
	}, tag)
	if err != nil {
		return nil, err
	}
	return &out.Stats, nil
}

// finish moves a running job to its terminal state and updates metrics.
func (s *Service) finish(j *job, st *stats.Sim, err error, cached bool) {
	j.mu.Lock()
	j.finishedAt = time.Now()
	j.st, j.err, j.cached = st, err, cached
	switch {
	case err == nil:
		j.status = StatusDone
	case errors.Is(err, context.Canceled):
		j.status = StatusCanceled
	default:
		j.status = StatusFailed
	}
	status := j.status
	wall := j.finishedAt.Sub(j.startedAt)
	j.mu.Unlock()
	s.metrics.jobFinished(status)
	if err == nil && !cached {
		s.metrics.observeWall(j.spec.bench, float64(wall)/float64(time.Millisecond))
	}
	close(j.done)
}

// cancelJob cancels a queued or running job; terminal jobs are left alone.
func (s *Service) cancelJob(j *job) {
	j.mu.Lock()
	switch j.status {
	case StatusQueued:
		j.status = StatusCanceled
		j.err = context.Canceled
		j.mu.Unlock()
		s.metrics.jobDroppedQueued()
		close(j.done)
	case StatusRunning:
		cancel := j.cancel
		j.mu.Unlock()
		cancel() // runJob observes the aborted sim and finishes the job
	default:
		j.mu.Unlock()
	}
}
