package service

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"snake/internal/cluster"
	"snake/internal/harness"
	"snake/internal/sim"
	"snake/internal/stats"
	"snake/internal/workloads"
)

// job is one queued/running/completed simulation.
type job struct {
	id      string
	seq     int64
	spec    spec
	key     string
	sweepID string
	heapIdx int // position in the priority heap (queue lock; -1 when out)

	mu         sync.Mutex
	status     Status
	cached     bool
	source     string // where the result came from (RunView.Source)
	st         *stats.Sim
	err        error
	cancel     context.CancelFunc // non-nil while running
	startedAt  time.Time
	finishedAt time.Time

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// view snapshots the job for the wire.
func (j *job) view() RunView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := RunView{
		ID:      j.id,
		Bench:   j.spec.bench,
		App:     j.spec.app,
		Chain:   j.spec.chain,
		Mech:    j.spec.mech,
		Key:     j.key,
		Status:  j.status,
		Cached:  j.cached,
		Source:  j.source,
		Warning: j.spec.warning,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.status == StatusDone && j.st != nil {
		v.Result = summarize(j.st)
	}
	if !j.finishedAt.IsZero() && !j.startedAt.IsZero() {
		v.WallMS = float64(j.finishedAt.Sub(j.startedAt)) / float64(time.Millisecond)
	}
	return v
}

// worker is one pool goroutine: pop jobs until the queue closes and drains.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job: tiered cache lookup first (memory → disk → owning
// peer), then exactly-once production under the per-key flight lock — a
// forwarded execution on the owning peer when clustered, a local simulation
// otherwise or as the degradation path.
func (s *Service) runJob(j *job) {
	j.mu.Lock()
	if j.status != StatusQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.startedAt = time.Now()
	var ctx context.Context
	var cancel context.CancelFunc
	if j.spec.timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, j.spec.timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	j.cancel = cancel
	j.mu.Unlock()
	s.metrics.jobStarted()
	defer cancel()

	// Forwarded-in work serves local tiers only: the sender already ran the
	// peer tier, and this node is the key's owner.
	var st *stats.Sim
	var tier cluster.Tier
	if j.spec.noForward {
		st, tier = s.store.GetLocal(j.key)
	} else {
		st, tier = s.store.Get(ctx, j.key)
	}
	if st != nil {
		s.metrics.cacheHit()
		s.finish(j, st, nil, true, tier.String())
		return
	}
	s.metrics.cacheMiss()

	// Per-key singleflight: exactly one leader produces the result; jobs
	// that lose the race wait and re-read the cache. A leader that failed
	// (error, cancel) leaves the next waiter to claim leadership and retry.
	for {
		wait, leader := s.beginFlight(j.key)
		if leader {
			break
		}
		select {
		case <-wait:
		case <-ctx.Done():
			s.finish(j, nil, ctx.Err(), false, "")
			return
		}
		if st, tier := s.store.GetLocal(j.key); st != nil {
			s.metrics.cacheHit()
			s.finish(j, st, nil, true, tier.String())
			return
		}
	}
	st, source, err := s.produce(ctx, j)
	if err == nil {
		s.store.Put(j.key, st)
	}
	s.endFlight(j.key)
	s.finish(j, st, err, false, source)
}

// beginFlight claims or joins the in-flight production of key. It returns
// leader=true when the caller must produce the result (and later call
// endFlight); otherwise wait closes when the current leader finishes.
func (s *Service) beginFlight(key string) (wait <-chan struct{}, leader bool) {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if ch, ok := s.flight[key]; ok {
		return ch, false
	}
	ch := make(chan struct{})
	s.flight[key] = ch
	return ch, true
}

func (s *Service) endFlight(key string) {
	s.flightMu.Lock()
	ch := s.flight[key]
	delete(s.flight, key)
	s.flightMu.Unlock()
	close(ch)
}

// produce computes a missing result: forwarded to the key's owning peer
// when this node is not the owner, locally otherwise. Every forwarding
// failure — owner down, saturated, or erroring — degrades to local compute;
// a dead peer costs duplicated work, never a failed job.
func (s *Service) produce(ctx context.Context, j *job) (*stats.Sim, string, error) {
	if s.clu != nil && !j.spec.noForward {
		body, err := json.Marshal(j.spec.wireRequest())
		if err == nil {
			st, src, err := s.clu.Execute(ctx, j.key, body)
			if err == nil {
				s.metrics.forwardOK()
				return st, "forward:" + src, nil
			}
			if !errors.Is(err, cluster.ErrSelf) && ctx.Err() == nil {
				s.metrics.forwardFallback()
			}
			if ctx.Err() != nil {
				return nil, "", ctx.Err()
			}
		}
	}
	st, err := s.simulate(ctx, &j.spec)
	return st, "sim", err
}

// simulate builds the workload and runs the cycle-level simulation under
// ctx. The run holds parallelism slots of the shared CPU budget for its
// duration, so the worker pool's concurrency and each run's internal
// parallelism spend one bounded currency (workers × parallelism can never
// exceed the budget in CPU terms, whatever the pool size).
func (s *Service) simulate(ctx context.Context, sp *spec) (*stats.Sim, error) {
	granted, err := s.budget.Acquire(ctx, sp.parallelism)
	if err != nil {
		return nil, err
	}
	defer s.budget.Release(granted)
	// Registry mechanism names tag the pooled engine for prefetcher reuse;
	// custom snake configs all normalize to mech "snake:custom", which does
	// not identify one configuration, so they use the untagged path.
	tag := sp.mech
	if sp.snake != nil {
		tag = ""
	}
	opt := sim.Options{
		Config:        sp.gpu,
		NewPrefetcher: sp.factory,
		Context:       ctx,
		Parallelism:   granted,
		SlackWindow:   sp.slack,
	}
	if sp.app != "" {
		// Application job: the interned app was assembled (and validated) at
		// normalize time, so this fetch is a pure cache hit. The cache and the
		// wire carry the aggregate statistics; per-launch breakdowns are a
		// local concern (snakesim -app prints them).
		a, _, err := workloads.Shared().App(sp.app, sp.scale, sp.gpu.NumSM, sp.split)
		if err != nil {
			return nil, err
		}
		opt.ChainPersistence = sp.chain
		out, err := harness.SharedEnginePool().RunApp(a, opt, tag)
		if err != nil {
			return nil, err
		}
		return &out.Stats, nil
	}
	k, err := workloads.Shared().Kernel(sp.bench, sp.scale)
	if err != nil {
		return nil, err
	}
	out, err := harness.SharedEnginePool().Run(k, opt, tag)
	if err != nil {
		return nil, err
	}
	return &out.Stats, nil
}

// finish moves a running job to its terminal state and updates metrics.
func (s *Service) finish(j *job, st *stats.Sim, err error, cached bool, source string) {
	j.mu.Lock()
	j.finishedAt = time.Now()
	j.st, j.err, j.cached, j.source = st, err, cached, source
	switch {
	case err == nil:
		j.status = StatusDone
	case errors.Is(err, context.Canceled):
		j.status = StatusCanceled
	default:
		j.status = StatusFailed
	}
	status := j.status
	wall := j.finishedAt.Sub(j.startedAt)
	j.mu.Unlock()
	s.metrics.jobFinished(status)
	if err == nil && !cached && source == "sim" {
		s.metrics.observeWall(j.spec.workload(), float64(wall)/float64(time.Millisecond))
	}
	close(j.done)
	s.notifySweep(j)
}

// cancelJob cancels a queued or running job; terminal jobs are left alone.
func (s *Service) cancelJob(j *job) {
	j.mu.Lock()
	switch j.status {
	case StatusQueued:
		j.status = StatusCanceled
		j.err = context.Canceled
		j.mu.Unlock()
		// Drop it from the heap so the slot frees now; a worker that already
		// popped it (Remove returns false) skips non-queued jobs anyway.
		s.queue.Remove(j)
		s.metrics.jobDroppedQueued()
		close(j.done)
		s.notifySweep(j)
	case StatusRunning:
		cancel := j.cancel
		j.mu.Unlock()
		cancel() // runJob observes the aborted sim and finishes the job
	default:
		j.mu.Unlock()
	}
}
