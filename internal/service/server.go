package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/harness"
	"snake/internal/prefetch"
	"snake/internal/workloads"
)

// Options configures a Service.
type Options struct {
	// Workers sizes the job pool: how many jobs can be in flight at once
	// (default: GOMAXPROCS). CPU use is governed by Budget, not Workers — a
	// worker whose job cannot get budget slots waits its turn.
	Workers int
	// GPU is the default hardware configuration (default: Scaled(4, 64)).
	GPU *config.GPU
	// Scale is the default workload scale (default: DefaultScale).
	Scale *workloads.Scale
	// Parallelism is the default per-run SM-shard worker count for jobs that
	// do not request one (default 1).
	Parallelism int
	// Budget is the CPU-slot budget simulations draw from (default: the
	// process-wide harness.SharedBudget, shared with any harness.Runner in
	// the same process so the two pools cannot oversubscribe the host
	// together).
	Budget *harness.Budget
}

// ErrDraining rejects submissions during graceful shutdown.
var ErrDraining = errors.New("service: shutting down")

// Service is the snaked core: job registry, priority queue, worker pool,
// result cache, and metrics. Wrap Handler in an http.Server to expose it.
type Service struct {
	gpu         config.GPU
	scale       workloads.Scale
	parallelism int
	budget      *harness.Budget
	queue       *jobQueue
	cache       *resultCache
	metrics     *metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*job
	sweeps    map[string]*sweep
	nextJob   int64
	nextSweep int64
	draining  bool

	benchSet map[string]bool
}

// sweep groups the jobs of one POST /v1/sweeps submission.
type sweep struct {
	id     string
	jobIDs []string
}

// New starts a service with its worker pool running.
func New(opt Options) *Service {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	gpu := config.Scaled(4, 64)
	if opt.GPU != nil {
		gpu = *opt.GPU
	}
	scale := workloads.DefaultScale()
	if opt.Scale != nil {
		scale = *opt.Scale
	}
	if opt.Parallelism < 1 {
		opt.Parallelism = 1
	}
	if opt.Budget == nil {
		opt.Budget = harness.SharedBudget()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		gpu:         gpu,
		scale:       scale,
		parallelism: opt.Parallelism,
		budget:      opt.Budget,
		queue:       newJobQueue(),
		cache:       newResultCache(),
		metrics:     newMetrics(),
		baseCtx:     ctx,
		baseCancel:  cancel,
		jobs:        make(map[string]*job),
		sweeps:      make(map[string]*sweep),
		benchSet:    make(map[string]bool),
	}
	for _, b := range workloads.Names() {
		s.benchSet[b] = true
	}
	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s
}

// Shutdown stops intake and drains: queued and running jobs complete
// normally. If ctx expires first, running simulations are aborted through
// their contexts and ctx.Err is returned.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.queue.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// normalize validates a RunRequest against the registries and fills
// defaults.
func (s *Service) normalize(req RunRequest) (spec, error) {
	sp := spec{
		bench:    req.Bench,
		mech:     req.Mech,
		priority: req.Priority,
		gpu:      s.gpu,
		scale:    s.scale,
	}
	if !s.benchSet[req.Bench] {
		return spec{}, fmt.Errorf("unknown benchmark %q (known: %v)", req.Bench, workloads.Names())
	}
	if req.Snake != nil {
		snake := *req.Snake
		sp.snake = &snake
		sp.mech = "snake:custom"
		sp.factory = func(int) prefetch.Prefetcher { return core.New(snake) }
	} else {
		f, err := harness.Mechanism(req.Mech)
		if err != nil {
			return spec{}, err
		}
		sp.factory = f
	}
	if req.GPU != nil {
		if err := req.GPU.Validate(); err != nil {
			return spec{}, err
		}
		sp.gpu = *req.GPU
	}
	if req.Scale != nil {
		sp.scale = *req.Scale
	}
	if req.TimeoutMS < 0 {
		return spec{}, errors.New("timeout_ms must be non-negative")
	}
	sp.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	if req.Parallelism < 0 {
		return spec{}, errors.New("parallelism must be non-negative")
	}
	sp.parallelism = req.Parallelism
	if sp.parallelism == 0 {
		sp.parallelism = s.parallelism
	}
	return sp, nil
}

// Submit validates and enqueues one job.
func (s *Service) Submit(req RunRequest) (*job, error) {
	sp, err := s.normalize(req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enqueueLocked(sp, "")
}

// enqueueLocked creates and queues a job; the caller holds s.mu.
func (s *Service) enqueueLocked(sp spec, sweepID string) (*job, error) {
	if s.draining {
		return nil, ErrDraining
	}
	s.nextJob++
	j := &job{
		id:      fmt.Sprintf("r%06d", s.nextJob),
		seq:     s.nextJob,
		spec:    sp,
		key:     sp.key(),
		sweepID: sweepID,
		status:  StatusQueued,
		done:    make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.metrics.jobSubmitted()
	if !s.queue.Push(j) {
		// Close raced ahead of the draining flag; undo.
		delete(s.jobs, j.id)
		return nil, ErrDraining
	}
	return j, nil
}

// SubmitSweep validates and enqueues a bench×mech grid.
func (s *Service) SubmitSweep(req SweepRequest) (*sweep, []*job, error) {
	mechs := req.Mechs
	if req.Snake != nil {
		mechs = []string{""}
	}
	if len(req.Benches) == 0 || len(mechs) == 0 {
		return nil, nil, errors.New("sweep needs at least one benchmark and one mechanism (or a snake config)")
	}
	var specs []spec
	for _, b := range req.Benches {
		for _, m := range mechs {
			sp, err := s.normalize(RunRequest{
				Bench: b, Mech: m, Snake: req.Snake,
				GPU: req.GPU, Scale: req.Scale,
				Priority: req.Priority, TimeoutMS: req.TimeoutMS,
				Parallelism: req.Parallelism,
			})
			if err != nil {
				return nil, nil, err
			}
			specs = append(specs, sp)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSweep++
	sw := &sweep{id: fmt.Sprintf("s%04d", s.nextSweep)}
	jobs := make([]*job, 0, len(specs))
	for _, sp := range specs {
		j, err := s.enqueueLocked(sp, sw.id)
		if err != nil {
			return nil, nil, err
		}
		sw.jobIDs = append(sw.jobIDs, j.id)
		jobs = append(jobs, j)
	}
	s.sweeps[sw.id] = sw
	return sw, jobs, nil
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Handler returns the HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancelRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	return mux
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, s.queue.Len(), s.cache.Entries())
}

func (s *Service) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	full := workloads.FullNames()
	v := BenchmarksView{Mechanisms: harness.MechanismNames()}
	for _, b := range workloads.Names() {
		v.Benchmarks = append(v.Benchmarks, BenchInfo{Name: b, FullName: full[b]})
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		writeErr(w, submitErrCode(err), err)
		return
	}
	if r.URL.Query().Get("wait") == "" {
		writeJSON(w, http.StatusAccepted, j.view())
		return
	}
	// Synchronous mode: the client holding the connection is the job's
	// owner, so a disconnect cancels the simulation.
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, j.view())
	case <-r.Context().Done():
		s.cancelJob(j)
		<-j.done
	}
}

func (s *Service) handleGetRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such run %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Service) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such run %q", r.PathValue("id")))
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Service) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sw, jobs, err := s.SubmitSweep(req)
	if err != nil {
		writeErr(w, submitErrCode(err), err)
		return
	}
	v := SweepView{ID: sw.id, Total: len(jobs), Pending: len(jobs)}
	for _, j := range jobs {
		v.Jobs = append(v.Jobs, j.view())
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Service) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sw, ok := s.sweeps[r.PathValue("id")]
	var jobs []*job
	if ok {
		jobs = make([]*job, 0, len(sw.jobIDs))
		for _, id := range sw.jobIDs {
			jobs = append(jobs, s.jobs[id])
		}
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such sweep %q", r.PathValue("id")))
		return
	}
	v := SweepView{ID: sw.id, Total: len(jobs)}
	for _, j := range jobs {
		jv := j.view()
		if !jv.Status.Terminal() {
			v.Pending++
		}
		v.Jobs = append(v.Jobs, jv)
	}
	v.Done = v.Pending == 0
	writeJSON(w, http.StatusOK, v)
}

// submitErrCode maps submission errors to HTTP statuses.
func submitErrCode(err error) int {
	if errors.Is(err, ErrDraining) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func decodeJSON(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
