package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"snake/internal/cluster"
	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/harness"
	"snake/internal/prefetch"
	"snake/internal/workloads"
)

// Options configures a Service.
type Options struct {
	// Workers sizes the job pool: how many jobs can be in flight at once
	// (default: GOMAXPROCS). CPU use is governed by Budget, not Workers — a
	// worker whose job cannot get budget slots waits its turn.
	Workers int
	// GPU is the default hardware configuration (default: Scaled(4, 64)).
	GPU *config.GPU
	// Scale is the default workload scale (default: DefaultScale).
	Scale *workloads.Scale
	// Parallelism is the default per-run SM-shard worker count for jobs that
	// do not request one (default 1).
	Parallelism int
	// SlackWindow is the default per-run epoch length (sim.Options
	// .SlackWindow) for jobs that do not request one (default 0: auto, the
	// config-derived maximum). Results are bit-identical at every setting.
	SlackWindow int
	// Budget is the CPU-slot budget simulations draw from (default: the
	// process-wide harness.SharedBudget, shared with any harness.Runner in
	// the same process so the two pools cannot oversubscribe the host
	// together).
	Budget *harness.Budget

	// QueueMax bounds the job queue depth; submissions past it are rejected
	// with ErrQueueFull (HTTP 429 + Retry-After). 0 means unbounded.
	QueueMax int
	// CacheMaxBytes bounds the in-memory result-cache tier; eviction
	// offloads to CacheDir when set, else drops. 0 means unbounded.
	CacheMaxBytes int64
	// CacheDir enables the disk spillover tier (content-addressed files;
	// survives restarts). Empty disables it.
	CacheDir string
	// Self is this node's advertised base URL; with Peers it joins the node
	// to a cluster. Ignored (standalone) when Peers is empty, and vice
	// versa.
	Self string
	// Peers are the other cluster members' advertised base URLs. Sweep
	// cells are owned by rendezvous-hashing their RunKey across
	// {Self} ∪ Peers; misses on non-owned keys are fetched from or
	// forwarded to the owner.
	Peers []string
	// PeerInflight caps concurrently forwarded jobs per peer (default 4).
	PeerInflight int
	// PeerDownFor overrides how long an erroring peer stays out of rotation
	// (default 10s; tests shorten it).
	PeerDownFor time.Duration
	// PeerExecTimeout bounds one forwarded execution (default 2m); expiry
	// degrades to local compute. <0 disables the bound.
	PeerExecTimeout time.Duration
}

// ErrDraining rejects submissions during graceful shutdown.
var ErrDraining = errors.New("service: shutting down")

// Service is the snaked core: job registry, priority queue, worker pool,
// result cache, and metrics. Wrap Handler in an http.Server to expose it.
type Service struct {
	gpu         config.GPU
	scale       workloads.Scale
	parallelism int
	slack       int
	workers     int
	budget      *harness.Budget
	queue       *jobQueue
	store       *cluster.Store
	clu         *cluster.Cluster // nil when standalone
	metrics     *metrics

	// peerSlots is the reserved capacity for forwarded-in peer work, sized
	// like the worker pool but separate from it. Workers may block forwarding
	// a job *out* to an owning peer; if forwarded-in jobs had to wait for
	// those same workers, two nodes forwarding to each other could wedge with
	// every worker blocked and every forwarded-in job queued behind them.
	// Serving peer work on its own slots makes that circular wait impossible;
	// CPU stays bounded because simulations draw from the shared budget
	// either way. When the slots are exhausted the peer endpoint answers 429
	// and the sender computes locally.
	peerSlots chan struct{}

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*job
	sweeps    map[string]*sweep
	nextJob   int64
	nextSweep int64
	draining  bool

	// flight dedupes concurrent identical work: one leader per RunKey
	// simulates (or forwards); same-key jobs wait and re-read the cache, so
	// a key is produced at most once per node — and, with rendezvous
	// forwarding, at most once per cluster — under normal operation.
	flightMu sync.Mutex
	flight   map[string]chan struct{}

	benchSet map[string]bool
	appSet   map[string]bool
}

// sweep groups the jobs of one POST /v1/sweeps submission and fans
// terminal-state notifications out to stream subscribers.
type sweep struct {
	id     string
	jobIDs []string

	mu      sync.Mutex
	subs    map[int]chan *job
	nextSub int
}

// New starts a service with its worker pool running.
func New(opt Options) *Service {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	gpu := config.Scaled(4, 64)
	if opt.GPU != nil {
		gpu = *opt.GPU
	}
	scale := workloads.DefaultScale()
	if opt.Scale != nil {
		scale = *opt.Scale
	}
	if opt.Parallelism < 1 {
		opt.Parallelism = 1
	}
	if opt.SlackWindow < 0 {
		opt.SlackWindow = 0
	}
	if opt.Budget == nil {
		opt.Budget = harness.SharedBudget()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		gpu:         gpu,
		scale:       scale,
		parallelism: opt.Parallelism,
		slack:       opt.SlackWindow,
		workers:     opt.Workers,
		budget:      opt.Budget,
		queue:       newJobQueue(opt.QueueMax),
		store:       cluster.NewStore(cluster.StoreOptions{MaxBytes: opt.CacheMaxBytes, Dir: opt.CacheDir}),
		metrics:     newMetrics(),
		peerSlots:   make(chan struct{}, opt.Workers),
		baseCtx:     ctx,
		baseCancel:  cancel,
		jobs:        make(map[string]*job),
		sweeps:      make(map[string]*sweep),
		flight:      make(map[string]chan struct{}),
		benchSet:    make(map[string]bool),
		appSet:      make(map[string]bool),
	}
	if len(opt.Peers) > 0 && opt.Self != "" {
		s.clu = cluster.New(cluster.Options{
			Self: opt.Self, Peers: opt.Peers,
			PeerInflight: opt.PeerInflight, DownFor: opt.PeerDownFor,
			ExecTimeout: opt.PeerExecTimeout,
		})
		// Tier 3 of the store: after a local miss, ask the owning peer's
		// cache before considering any compute.
		s.store.SetPeerFetch(s.clu.FetchResult)
	}
	for _, b := range workloads.Names() {
		s.benchSet[b] = true
	}
	for _, a := range workloads.AppNames() {
		s.appSet[a] = true
	}
	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s
}

// Shutdown stops intake and drains: queued and running jobs complete
// normally. If ctx expires first, running simulations are aborted through
// their contexts and ctx.Err is returned.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.queue.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// normalize validates a RunRequest against the registries and fills
// defaults.
func (s *Service) normalize(req RunRequest) (spec, error) {
	sp := spec{
		bench:    req.Bench,
		app:      req.App,
		chain:    req.Chain,
		split:    req.Split,
		mech:     req.Mech,
		priority: req.Priority,
		gpu:      s.gpu,
		scale:    s.scale,
	}
	switch {
	case req.App != "" && req.Bench != "":
		return spec{}, errors.New("bench and app are mutually exclusive")
	case req.App != "":
		if !s.appSet[req.App] {
			return spec{}, fmt.Errorf("unknown app %q (known: %v)", req.App, workloads.AppNames())
		}
		if req.Split < 0 {
			return spec{}, errors.New("split must be non-negative")
		}
	case !s.benchSet[req.Bench]:
		return spec{}, fmt.Errorf("unknown benchmark %q (known: %v)", req.Bench, workloads.Names())
	}
	if req.Snake != nil {
		snake := *req.Snake
		sp.snake = &snake
		sp.mech = "snake:custom"
		sp.factory = func(int) prefetch.Prefetcher { return core.New(snake) }
	} else {
		f, err := harness.Mechanism(req.Mech)
		if err != nil {
			return spec{}, err
		}
		sp.factory = f
	}
	if req.GPU != nil {
		if err := req.GPU.Validate(); err != nil {
			return spec{}, err
		}
		sp.gpu = *req.GPU
	}
	if req.Scale != nil {
		sp.scale = *req.Scale
	}
	if req.TimeoutMS < 0 {
		return spec{}, errors.New("timeout_ms must be non-negative")
	}
	sp.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	if req.Parallelism < 0 {
		return spec{}, errors.New("parallelism must be non-negative")
	}
	sp.parallelism = req.Parallelism
	if sp.parallelism == 0 {
		sp.parallelism = s.parallelism
	}
	if req.Slack < 0 {
		return spec{}, errors.New("slack must be non-negative")
	}
	sp.slack = req.Slack
	if sp.slack == 0 {
		sp.slack = s.slack
	}
	if bound := sp.gpu.SlackBound(); sp.slack > bound {
		// Not an error: the engine clamps the window to the provable bound
		// and results are bit-identical at every setting. But the caller asked
		// for an epoch length the hardware model cannot admit, so say so.
		sp.warning = fmt.Sprintf("slack %d exceeds the config bound %d; the engine clamps the epoch window to %d",
			sp.slack, bound, bound)
	}
	if sp.app != "" {
		// Intern the app now (for the resolved machine and scale) so
		// ill-partitioned requests fail at submission and the content digest
		// is ready for the job key. The intern is shared with simulate().
		_, digest, err := workloads.Shared().App(sp.app, sp.scale, sp.gpu.NumSM, sp.split)
		if err != nil {
			return spec{}, err
		}
		sp.appDigest = digest
	}
	return sp, nil
}

// Submit validates and enqueues one job.
func (s *Service) Submit(req RunRequest) (*job, error) {
	sp, err := s.normalize(req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enqueueLocked(sp, "")
}

// submitPeer accepts a job forwarded by a peer. Unlike client submissions
// it never enters the worker queue: forwarded-in work runs on its own
// goroutine against the reserved peerSlots capacity (acquired by the
// caller), so it can make progress even when every worker is itself blocked
// forwarding work out — the circular wait that would otherwise deadlock two
// mutually-forwarding nodes. The job is marked noForward: this node is the
// key's owner, and owners never forward.
func (s *Service) submitPeer(req RunRequest) (*job, error) {
	sp, err := s.normalize(req)
	if err != nil {
		return nil, err
	}
	sp.noForward = true
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	j := s.newJobLocked(sp, "")
	s.metrics.jobSubmitted()
	// Registered under s.mu before Shutdown can start waiting, so the drain
	// covers this job like any worker's.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.runJob(j)
	}()
	return j, nil
}

// newJobLocked creates and registers a job; the caller holds s.mu.
func (s *Service) newJobLocked(sp spec, sweepID string) *job {
	s.nextJob++
	j := &job{
		id:      fmt.Sprintf("r%06d", s.nextJob),
		seq:     s.nextJob,
		spec:    sp,
		key:     sp.key(),
		sweepID: sweepID,
		status:  StatusQueued,
		heapIdx: -1,
		done:    make(chan struct{}),
	}
	s.jobs[j.id] = j
	return j
}

// enqueueLocked creates and queues a job; the caller holds s.mu.
func (s *Service) enqueueLocked(sp spec, sweepID string) (*job, error) {
	if s.draining {
		return nil, ErrDraining
	}
	j := s.newJobLocked(sp, sweepID)
	if err := s.queue.Push(j); err != nil {
		delete(s.jobs, j.id)
		if errors.Is(err, ErrQueueFull) {
			s.metrics.queueRejectedInc()
			return nil, err
		}
		// Close raced ahead of the draining flag.
		return nil, ErrDraining
	}
	s.metrics.jobSubmitted()
	return j, nil
}

// SubmitSweep validates and enqueues a (bench ∪ app)×mech grid.
func (s *Service) SubmitSweep(req SweepRequest) (*sweep, []*job, error) {
	mechs := req.Mechs
	if req.Snake != nil {
		mechs = []string{""}
	}
	if (len(req.Benches) == 0 && len(req.Apps) == 0) || len(mechs) == 0 {
		return nil, nil, errors.New("sweep needs at least one benchmark or app, and one mechanism (or a snake config)")
	}
	var specs []spec
	cell := func(r RunRequest) error {
		r.Snake = req.Snake
		r.GPU, r.Scale = req.GPU, req.Scale
		r.Priority, r.TimeoutMS = req.Priority, req.TimeoutMS
		r.Parallelism, r.Slack = req.Parallelism, req.Slack
		sp, err := s.normalize(r)
		if err != nil {
			return err
		}
		specs = append(specs, sp)
		return nil
	}
	for _, b := range req.Benches {
		for _, m := range mechs {
			if err := cell(RunRequest{Bench: b, Mech: m}); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, a := range req.Apps {
		for _, m := range mechs {
			if err := cell(RunRequest{App: a, Chain: req.Chain, Split: req.Split, Mech: m}); err != nil {
				return nil, nil, err
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSweep++
	sw := &sweep{id: fmt.Sprintf("s%04d", s.nextSweep), subs: make(map[int]chan *job)}
	jobs := make([]*job, 0, len(specs))
	for _, sp := range specs {
		j, err := s.enqueueLocked(sp, sw.id)
		if err != nil {
			// All-or-nothing admission: cancel the cells already enqueued so
			// a rejected sweep leaves no stray work behind. Each is also
			// removed from the heap so it frees its depth slot immediately
			// instead of inflating the queue until a worker pops and skips
			// it.
			for _, prev := range jobs {
				s.markCanceled(prev)
			}
			return nil, nil, err
		}
		sw.jobIDs = append(sw.jobIDs, j.id)
		jobs = append(jobs, j)
	}
	s.sweeps[sw.id] = sw
	return sw, jobs, nil
}

// markCanceled moves a still-queued job straight to canceled (sweep
// admission rollback) and drops it from the priority heap. Safe while
// holding s.mu: it only takes j.mu, the queue lock, and the metrics lock.
func (s *Service) markCanceled(j *job) {
	j.mu.Lock()
	if j.status != StatusQueued {
		j.mu.Unlock()
		return
	}
	j.status = StatusCanceled
	j.err = context.Canceled
	j.mu.Unlock()
	s.queue.Remove(j)
	s.metrics.jobDroppedQueued()
	close(j.done)
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Handler returns the HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancelRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleStreamSweep)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	mux.HandleFunc("POST /v1/peer/execute", s.handlePeerExecute)
	return mux
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var clu *cluster.Snapshot
	if s.clu != nil {
		snap := s.clu.Snap()
		clu = &snap
	}
	s.metrics.render(w, s.queue.Len(), s.store.Snap(), clu)
}

func (s *Service) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	full := workloads.FullNames()
	v := BenchmarksView{Mechanisms: harness.MechanismNames()}
	for _, b := range workloads.Names() {
		v.Benchmarks = append(v.Benchmarks, BenchInfo{Name: b, FullName: full[b]})
	}
	descs := workloads.AppDescriptions()
	for _, a := range workloads.AppNames() {
		v.Apps = append(v.Apps, AppInfo{Name: a, Description: descs[a]})
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		s.writeSubmitErr(w, err)
		return
	}
	if r.URL.Query().Get("wait") == "" {
		writeJSON(w, http.StatusAccepted, j.view())
		return
	}
	// Synchronous mode: the client holding the connection is the job's
	// owner, so a disconnect cancels the simulation.
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, j.view())
	case <-r.Context().Done():
		s.cancelJob(j)
		<-j.done
	}
}

func (s *Service) handleGetRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such run %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Service) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such run %q", r.PathValue("id")))
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Service) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sw, jobs, err := s.SubmitSweep(req)
	if err != nil {
		s.writeSubmitErr(w, err)
		return
	}
	v := SweepView{ID: sw.id, Total: len(jobs), Pending: len(jobs)}
	for _, j := range jobs {
		v.Jobs = append(v.Jobs, j.view())
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Service) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sw, ok := s.sweeps[r.PathValue("id")]
	var jobs []*job
	if ok {
		jobs = make([]*job, 0, len(sw.jobIDs))
		for _, id := range sw.jobIDs {
			jobs = append(jobs, s.jobs[id])
		}
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such sweep %q", r.PathValue("id")))
		return
	}
	v := SweepView{ID: sw.id, Total: len(jobs)}
	for _, j := range jobs {
		jv := j.view()
		if !jv.Status.Terminal() {
			v.Pending++
		}
		v.Jobs = append(v.Jobs, jv)
	}
	v.Done = v.Pending == 0
	writeJSON(w, http.StatusOK, v)
}

// writeSubmitErr maps submission errors to HTTP statuses. A full queue gets
// 429 plus a Retry-After estimated from the backlog, so well-behaved
// clients back off proportionally to the saturation.
func (s *Service) writeSubmitErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

// retryAfterSeconds estimates queue drain time: backlog over worker count,
// clamped to [1, 60] seconds.
func (s *Service) retryAfterSeconds() int {
	sec := s.queue.Len() / s.workers
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

func decodeJSON(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
