package service

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"snake/internal/cluster"
)

// errPeerBusy rejects forwarded-in work when the reserved peer capacity is
// exhausted; the sender's transport maps the 429 to ErrSaturated and
// computes locally.
var errPeerBusy = errors.New("peer-execute capacity exhausted")

// handleCacheGet is GET /v1/cache/{key}: the local tiers (memory, then
// disk) of the content-addressed result store, full stats.Sim JSON on a
// hit. Peers call this as tier 3 of their own store; it never recurses into
// a further peer fetch, so lookups cannot loop.
func (s *Service) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	st, tier := s.store.GetLocal(key)
	if st == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no cached result for %q", key))
		return
	}
	w.Header().Set(cluster.SourceHeader, tier.String())
	w.Header().Set(cluster.KeyHeader, key)
	writeJSON(w, http.StatusOK, st)
}

// handlePeerExecute is POST /v1/peer/execute: run a job forwarded by a peer
// and return the full simulation stats. Forwarded work never enters the
// worker queue — it runs on the reserved peerSlots capacity, so it makes
// progress even when every worker is blocked forwarding work out (two
// nodes forwarding to each other could otherwise wedge with all workers
// waiting on each other's queues). When the slots are exhausted the owner
// answers 429 + Retry-After and the sender degrades to local compute. The
// job is marked noForward: this node is the key's owner, and owners never
// forward.
func (s *Service) handlePeerExecute(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	select {
	case s.peerSlots <- struct{}{}:
	default:
		s.metrics.queueRejectedInc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests, errPeerBusy)
		return
	}
	defer func() { <-s.peerSlots }()
	j, err := s.submitPeer(req)
	if err != nil {
		s.writeSubmitErr(w, err)
		return
	}
	s.metrics.forwardedInInc()
	// The sending peer holding the connection owns the job: its disconnect
	// (or context cancellation) cancels the work here too.
	select {
	case <-j.done:
	case <-r.Context().Done():
		s.cancelJob(j)
		<-j.done
	}
	j.mu.Lock()
	st, jerr, source, status := j.st, j.err, j.source, j.status
	j.mu.Unlock()
	switch status {
	case StatusDone:
		w.Header().Set(cluster.SourceHeader, sourceForPeer(source))
		w.Header().Set(cluster.KeyHeader, j.key)
		writeJSON(w, http.StatusOK, st)
	case StatusCanceled:
		writeErr(w, http.StatusServiceUnavailable, errors.New("forwarded job canceled"))
	default:
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("forwarded job failed: %v", jerr))
	}
}

// sourceForPeer collapses a job source to the wire vocabulary the transport
// documents: "memory", "disk", or "sim".
func sourceForPeer(source string) string {
	switch source {
	case "memory", "disk":
		return source
	default:
		return "sim"
	}
}
