package prefetch

// Domino is a GPU adaptation of the Domino temporal prefetcher
// (Bakhshalipour et al., HPCA'18 — §6.1 of the Snake paper): it records the
// global miss-address stream and indexes it by the last two addresses, so a
// repeated temporal sequence replays ahead of the demands.
//
// On a GPU the "global stream" interleaves dozens of warps, which shreds
// temporal correlation — the very reason the paper argues CPU prefetchers
// "cannot be directly applied to GPUs". Domino is included as an extension
// comparison point (not one of the paper's nine); its results illustrate
// that argument quantitatively.
type Domino struct {
	nopCycle
	// Depth is how many successors to prefetch per hit (default 2).
	Depth int
	// MaxEntries bounds the correlation table (default 4096).
	MaxEntries int

	table map[pairKey]entryList
	fifo  []pairKey // insertion order for eviction
	last  [2]uint64 // the two most recent line addresses
	have  int
}

type pairKey struct{ a, b uint64 }

// entryList holds the successors observed after a pair (most recent first).
type entryList [2]uint64

// NewDomino returns a Domino prefetcher with default parameters.
func NewDomino() *Domino {
	return &Domino{Depth: 2, MaxEntries: 4096, table: make(map[pairKey]entryList)}
}

// Name implements Prefetcher.
func (p *Domino) Name() string { return "domino" }

// OnAccess implements Prefetcher.
func (p *Domino) OnAccess(ev AccessEvent) []Request {
	line := ev.LineAddr
	var reqs []Request
	if p.have == 2 {
		// Record: the pair (last[0], last[1]) is followed by line.
		k := pairKey{p.last[0], p.last[1]}
		e, exists := p.table[k]
		if !exists {
			if len(p.fifo) >= p.MaxEntries {
				delete(p.table, p.fifo[0])
				p.fifo = p.fifo[1:]
			}
			p.fifo = append(p.fifo, k)
		}
		if e[0] != line {
			e[1] = e[0]
			e[0] = line
		}
		p.table[k] = e

		// Predict: walk the chain from the new pair.
		cur := pairKey{p.last[1], line}
		for d := 0; d < p.Depth; d++ {
			nxt, ok := p.table[cur]
			if !ok || nxt[0] == 0 {
				break
			}
			reqs = append(reqs, Request{Addr: nxt[0]})
			cur = pairKey{cur.b, nxt[0]}
		}
	}
	// Slide the history window.
	if p.have < 2 {
		p.last[p.have] = line
		p.have++
	} else {
		p.last[0], p.last[1] = p.last[1], line
	}
	return reqs
}

// Reset implements Prefetcher.
func (p *Domino) Reset() {
	p.table = make(map[pairKey]entryList)
	p.fifo = nil
	p.have = 0
}
