package prefetch

import "testing"

func TestDominoReplaysTemporalSequence(t *testing.T) {
	p := NewDomino()
	// Teach the sequence A B C D twice (line-aligned addresses).
	seq := []uint64{0x1000, 0x5000, 0x2000, 0x9000}
	teach := func() {
		for _, a := range seq {
			e := ev(0, 8, a)
			e.LineAddr = a
			p.OnAccess(e)
		}
	}
	teach()
	teach()
	// Replay: after A, B the pair (A,B) predicts C.
	e := ev(0, 8, seq[0])
	e.LineAddr = seq[0]
	p.OnAccess(e)
	e = ev(0, 8, seq[1])
	e.LineAddr = seq[1]
	reqs := p.OnAccess(e)
	if !contains(reqs, seq[2]) {
		t.Fatalf("Domino did not replay the sequence: %v", addrs(reqs))
	}
}

func TestDominoInterleavingBreaksCorrelation(t *testing.T) {
	// Two warps with their own sequences, perfectly interleaved: the global
	// stream pairs never repeat, so Domino stays silent — the GPU failure
	// mode §6.1 implies.
	p := NewDomino()
	issued := 0
	for round := 0; round < 4; round++ {
		for i := 0; i < 8; i++ {
			for w := 0; w < 2; w++ {
				a := uint64(0x100000*(w+1)) + uint64(round*8+i)*uint64(w*640+128)
				e := ev(w, 8, a)
				e.LineAddr = a &^ 127
				issued += len(p.OnAccess(e))
			}
		}
	}
	if issued > 8 {
		t.Errorf("Domino issued %d prefetches from an interleaved stream; expected near zero", issued)
	}
}

func TestDominoTableBounded(t *testing.T) {
	p := NewDomino()
	p.MaxEntries = 16
	for i := 0; i < 1000; i++ {
		a := uint64(i) * 128
		e := ev(0, 8, a)
		e.LineAddr = a
		p.OnAccess(e)
	}
	if len(p.table) > 16 {
		t.Errorf("table grew to %d entries, cap is 16", len(p.table))
	}
}

func TestBingoLearnsFootprint(t *testing.T) {
	p := NewBingo()
	// Epoch 1: touch lines 0, 2, 5 of region 0x10000 (trigger pc 8).
	for _, off := range []uint64{0, 2 * 128, 5 * 128} {
		p.OnAccess(ev(0, 8, 0x10000+off))
	}
	// Open enough other regions (different PC so their single-line
	// footprints do not clobber the short event) to retire the first one.
	for i := 1; i <= 70; i++ {
		p.OnAccess(ev(0, 16, uint64(0x100000+i*4096)))
	}
	// Trigger an identical access pattern in a fresh region via the short
	// event (same PC, same offset): the footprint replays.
	reqs := p.OnAccess(ev(0, 8, 0xAAAA000))
	if !contains(reqs, 0xAAAA000+2*128) || !contains(reqs, 0xAAAA000+5*128) {
		t.Fatalf("Bingo did not replay the footprint: %v", addrs(reqs))
	}
	// The trigger line itself is not re-requested.
	if contains(reqs, 0xAAAA000) {
		t.Error("Bingo prefetched the trigger line")
	}
}

func TestBingoLongEventPreferred(t *testing.T) {
	p := NewBingo()
	// Long event: trigger (pc 8, addr X) with footprint {0,1}.
	p.OnAccess(ev(0, 8, 0x20000))
	p.OnAccess(ev(0, 8, 0x20080))
	// Short event for the same pc+offset learns a different footprint via
	// another region.
	p.OnAccess(ev(0, 8, 0x30000))
	p.OnAccess(ev(0, 8, 0x30000+7*128))
	// Retire everything.
	for i := 1; i <= 70; i++ {
		p.OnAccess(ev(0, 24, uint64(0x900000+i*4096)))
	}
	// Re-trigger with the exact long event: footprint {0,1} applies (line 1
	// prefetched), not the short event's line 7 (the most recent short
	// footprint for that offset is from region 0x30000).
	reqs := p.OnAccess(ev(0, 8, 0x20000))
	if !contains(reqs, 0x20080) {
		t.Fatalf("long event footprint not replayed: %v", addrs(reqs))
	}
}

func TestBingoResets(t *testing.T) {
	p := NewBingo()
	p.OnAccess(ev(0, 8, 0x10000))
	p.Reset()
	if len(p.active) != 0 || len(p.long) != 0 || len(p.short) != 0 {
		t.Error("Reset left state")
	}
}

func TestCPUPrefetchersImplementInterface(t *testing.T) {
	for _, p := range []Prefetcher{NewDomino(), NewBingo()} {
		if p.Magic() || !p.Trained() {
			t.Errorf("%s: unexpected Magic/Trained", p.Name())
		}
		p.OnCycle(1, nil)
	}
}
