package prefetch

// IntraWarp is the classic per-thread stride prefetcher of Lee et al. [29]:
// each warp prefetches for the next iteration of the same load instruction
// executed by the same warp. It achieves high coverage only in the presence
// of deep loop iterations (§2).
type IntraWarp struct {
	nopCycle
	// Degree is how many iterations ahead to prefetch (default 1).
	Degree int
	// MinConfidence is how many consecutive identical strides must be seen
	// before prefetching (default 2).
	MinConfidence int

	table map[intraKey]*intraEntry
}

type intraKey struct {
	warp int
	pc   uint64
}

type intraEntry struct {
	lastAddr   uint64
	stride     int64
	confidence int
}

// NewIntraWarp returns an intra-warp prefetcher with default parameters:
// degree 1 — each thread prefetches for the next iteration of the same load
// instruction, per Lee et al. [29]. Multi-step lookahead is what Snake's
// chain walking adds on top.
func NewIntraWarp() *IntraWarp {
	return &IntraWarp{Degree: 1, MinConfidence: 2, table: make(map[intraKey]*intraEntry)}
}

// Name implements Prefetcher.
func (p *IntraWarp) Name() string { return "intra-warp" }

// OnAccess implements Prefetcher.
func (p *IntraWarp) OnAccess(ev AccessEvent) []Request {
	k := intraKey{ev.WarpID, ev.PC}
	e, ok := p.table[k]
	if !ok {
		p.table[k] = &intraEntry{lastAddr: ev.Addr}
		return nil
	}
	stride := int64(ev.Addr) - int64(e.lastAddr)
	e.lastAddr = ev.Addr
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.confidence < 1<<20 {
			e.confidence++
		}
	} else {
		e.stride = stride
		e.confidence = 1
	}
	if e.confidence < p.MinConfidence {
		return nil
	}
	reqs := make([]Request, 0, p.Degree)
	for d := 1; d <= p.Degree; d++ {
		reqs = append(reqs, Request{Addr: uint64(int64(ev.Addr) + stride*int64(d))})
	}
	return reqs
}

// Reset implements Prefetcher.
func (p *IntraWarp) Reset() { p.table = make(map[intraKey]*intraEntry) }
