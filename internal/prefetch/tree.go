package prefetch

// Tree adopts the spatial-locality prefetcher of Ganguly et al. [15] to the
// GPU context per §4: it considers 64KB chunks of global memory and
// prefetches chunk contents into the L1 data cache. Aggressive spatial
// prefetching hurts GPU performance due to limited memory resources (§6.2);
// the model caps the burst issued per trigger, with the rest dropped by the
// memory system's own backpressure, matching the paper's observation of
// cache under-utilization from useless data.
type Tree struct {
	nopCycle
	// ChunkBytes is the spatial region size (default 64KB).
	ChunkBytes uint64
	// LineBytes is the prefetch granularity (default 128).
	LineBytes uint64
	// BurstLines caps lines issued per trigger (default 16).
	BurstLines int

	seen map[uint64]int // chunk -> lines issued so far
}

// NewTree returns a Tree prefetcher with default parameters.
func NewTree() *Tree {
	return &Tree{ChunkBytes: 64 * 1024, LineBytes: 128, BurstLines: 16, seen: make(map[uint64]int)}
}

// Name implements Prefetcher.
func (p *Tree) Name() string { return "tree" }

// OnAccess implements Prefetcher.
func (p *Tree) OnAccess(ev AccessEvent) []Request {
	chunk := ev.Addr / p.ChunkBytes
	issued := p.seen[chunk]
	linesPerChunk := int(p.ChunkBytes / p.LineBytes)
	if issued >= linesPerChunk {
		return nil
	}
	base := chunk * p.ChunkBytes
	n := p.BurstLines
	if issued+n > linesPerChunk {
		n = linesPerChunk - issued
	}
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, Request{Addr: base + uint64(issued+i)*p.LineBytes})
	}
	p.seen[chunk] = issued + n
	return reqs
}

// Reset implements Prefetcher.
func (p *Tree) Reset() { p.seen = make(map[uint64]int) }
