// Package prefetch defines the prefetcher interface the simulator drives and
// implements the comparison-point mechanisms of the Snake paper (§4):
// Intra-warp, Inter-warp, MTA (Many-Thread-Aware), CTA-aware, Tree (spatial
// chunk), and the Ideal oracle. Snake itself lives in internal/core.
package prefetch

// AccessEvent describes one demand load observed at the L1 of an SM.
// Reservation-fail retries are not reported; each dynamic load produces
// exactly one event, when it is accepted by the L1.
type AccessEvent struct {
	Cycle     int64
	SM        int
	CTAID     int    // global CTA id
	CTABase   uint64 // the CTA's base data address (for CTA-aware)
	WarpID    int    // warp slot within the SM (hardware warp id)
	WarpInCTA int    // warp index within its CTA
	PC        uint64
	Addr      uint64 // coalesced base (thread 0) address
	LineAddr  uint64
	Hit       bool
	SeqInWarp int // dynamic load index within the warp

	// Oracle fields (populated only for prefetchers that request them, e.g.
	// Ideal): the PCs and base addresses of the warp's next loads in program
	// order.
	FuturePCs   []uint64
	FutureAddrs []uint64
}

// WantsOracle reports whether a prefetcher needs the oracle future fields;
// the simulator only populates them when required.
func WantsOracle(p Prefetcher) bool {
	if w, ok := p.(*Decoupled); ok {
		return WantsOracle(w.Inner)
	}
	_, ok := p.(*Ideal)
	return ok
}

// StorageHint is implemented by prefetchers that need a particular L1
// storage organization (Snake's decoupled unified cache, Isolated-Snake's
// side buffer). The simulator queries it when building each SM's L1.
type StorageHint interface {
	// Storage returns (decoupled, isolated).
	Storage() (decoupled, isolated bool)
}

// Decoupled wraps any prefetcher so its prefetched lines are stored in the
// decoupled prefetch space (§5.2 evaluates decoupled versions of CTA-aware,
// MTA and Tree).
type Decoupled struct {
	Inner Prefetcher
}

// Name implements Prefetcher.
func (d *Decoupled) Name() string { return d.Inner.Name() + "+decoupled" }

// OnAccess implements Prefetcher.
func (d *Decoupled) OnAccess(ev AccessEvent) []Request { return d.Inner.OnAccess(ev) }

// OnCycle implements Prefetcher.
func (d *Decoupled) OnCycle(cycle int64, env Env) { d.Inner.OnCycle(cycle, env) }

// Trained implements Prefetcher.
func (d *Decoupled) Trained() bool { return d.Inner.Trained() }

// Magic implements Prefetcher.
func (d *Decoupled) Magic() bool { return d.Inner.Magic() }

// Reset implements Prefetcher.
func (d *Decoupled) Reset() { d.Inner.Reset() }

// CanSkipCycles implements CycleSkipper by delegating to the wrapped
// prefetcher.
func (d *Decoupled) CanSkipCycles(cycle int64) bool { return CanSkipCycles(d.Inner, cycle) }

// Storage implements StorageHint.
func (d *Decoupled) Storage() (bool, bool) { return true, false }

// Request is one prefetch candidate produced by a prefetcher.
type Request struct {
	Addr uint64
}

// Env exposes memory-system signals to throttling prefetchers.
type Env interface {
	// Utilization returns the interconnect's sliding-window bandwidth
	// utilization in [0,1].
	Utilization() float64
	// FreeFraction returns the fraction of unified-cache lines free.
	FreeFraction() float64
	// ConfineL1 restricts the L1 data space to its designated half until the
	// given cycle (Snake's throttle side effect, §3.2).
	ConfineL1(until int64)
}

// Outcome tells an OutcomeObserver what happened to one prefetch request.
type Outcome uint8

// Prefetch request outcomes as seen by the prefetcher.
const (
	OutcomeIssued    Outcome = iota // physically issued toward L2
	OutcomeDuplicate                // line already present or in flight
	OutcomeNoRoom                   // MSHR/queue pressure: dropped
	OutcomeNoSpace                  // unified space exhausted: the L1 freed
	//                                 25% by LRU and the request was dropped
)

// OutcomeObserver is implemented by prefetchers that react to the fate of
// their requests — Snake's space throttle triggers on OutcomeNoSpace (§3.3
// condition 1).
type OutcomeObserver interface {
	OnPrefetchOutcome(addr uint64, oc Outcome, cycle int64, env Env)
}

// CycleSkipper is implemented by prefetchers that let the simulator elide
// their per-cycle OnCycle hook across an idle span — a run of cycles after
// `cycle` in which no SM issues, no memory traffic moves, and interconnect
// utilization therefore cannot rise. CanSkipCycles must return true only
// when calling OnCycle once per cycle over such a span and eliding the calls
// leave the prefetcher — including every counter it exports — in exactly the
// same state. Throttling prefetchers return false while halted, so their
// halted-cycle accounting and hysteresis boundaries still fire cycle by
// cycle (the engine's throttle-boundary contract; see DESIGN.md "Engine
// fast-forwarding").
type CycleSkipper interface {
	CanSkipCycles(cycle int64) bool
}

// CanSkipCycles reports whether p's OnCycle hook may be elided across an
// idle span starting after cycle. A nil prefetcher is trivially skippable;
// a prefetcher that does not implement CycleSkipper is conservatively
// assumed to do per-cycle work, which disables engine fast-forwarding for
// its SM.
func CanSkipCycles(p Prefetcher, cycle int64) bool {
	if p == nil {
		return true
	}
	if s, ok := p.(CycleSkipper); ok {
		return s.CanSkipCycles(cycle)
	}
	return false
}

// Prefetcher is the per-SM prefetch engine interface.
type Prefetcher interface {
	// Name returns the mechanism name used in reports.
	Name() string
	// OnAccess observes a demand load and returns prefetch candidates.
	OnAccess(ev AccessEvent) []Request
	// OnCycle is called once per simulated cycle before issue.
	OnCycle(cycle int64, env Env)
	// Trained reports whether the prefetcher considers itself trained; the
	// L1 keeps the data space capped at 50% until this turns true (§3.2).
	Trained() bool
	// Magic reports that prefetches are installed with zero latency and no
	// bandwidth/MSHR cost (the Ideal prefetcher's "optimal characteristics").
	Magic() bool
	// Reset clears all state (between kernels).
	Reset()
}

// Null is the no-prefetching baseline.
type Null struct{}

// Name implements Prefetcher.
func (Null) Name() string { return "baseline" }

// OnAccess implements Prefetcher.
func (Null) OnAccess(AccessEvent) []Request { return nil }

// OnCycle implements Prefetcher.
func (Null) OnCycle(int64, Env) {}

// Trained implements Prefetcher; the baseline never caps the L1.
func (Null) Trained() bool { return true }

// Magic implements Prefetcher.
func (Null) Magic() bool { return false }

// Reset implements Prefetcher.
func (Null) Reset() {}

// CanSkipCycles implements CycleSkipper: the baseline does no per-cycle work.
func (Null) CanSkipCycles(int64) bool { return true }

// nopCycle provides default OnCycle/Trained/Magic for simple prefetchers.
// Its OnCycle is a no-op, so eliding it across idle spans is always exact.
type nopCycle struct{}

func (nopCycle) OnCycle(int64, Env) {}
func (nopCycle) Trained() bool      { return true }
func (nopCycle) Magic() bool        { return false }

// CanSkipCycles implements CycleSkipper.
func (nopCycle) CanSkipCycles(int64) bool { return true }
