package prefetch

// MTA is the Many-Thread-Aware prefetcher of Lee et al. [29]: the
// combination of the intra-warp and inter-warp mechanisms, providing the best
// coverage among the prior fixed-stride prefetchers (§2). It inherits both
// components' drawbacks: limited opportunity without deep loops and the
// inter-warp timeliness problem.
type MTA struct {
	nopCycle
	intra *IntraWarp
	inter *InterWarp
}

// NewMTA returns an MTA prefetcher with default sub-prefetcher parameters.
func NewMTA() *MTA {
	return &MTA{intra: NewIntraWarp(), inter: NewInterWarp()}
}

// Name implements Prefetcher.
func (p *MTA) Name() string { return "mta" }

// OnAccess implements Prefetcher: union of intra- and inter-warp candidates
// with duplicates removed.
func (p *MTA) OnAccess(ev AccessEvent) []Request {
	a := p.intra.OnAccess(ev)
	b := p.inter.OnAccess(ev)
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	seen := make(map[uint64]bool, len(a)+len(b))
	out := make([]Request, 0, len(a)+len(b))
	for _, r := range a {
		if !seen[r.Addr] {
			seen[r.Addr] = true
			out = append(out, r)
		}
	}
	for _, r := range b {
		if !seen[r.Addr] {
			seen[r.Addr] = true
			out = append(out, r)
		}
	}
	return out
}

// Reset implements Prefetcher.
func (p *MTA) Reset() {
	p.intra.Reset()
	p.inter.Reset()
}
