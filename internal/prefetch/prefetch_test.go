package prefetch

import (
	"testing"
)

// ev builds a minimal access event.
func ev(warp int, pc, addr uint64) AccessEvent {
	return AccessEvent{WarpID: warp, PC: pc, Addr: addr}
}

func addrs(reqs []Request) []uint64 {
	out := make([]uint64, len(reqs))
	for i, r := range reqs {
		out[i] = r.Addr
	}
	return out
}

func contains(reqs []Request, addr uint64) bool {
	for _, r := range reqs {
		if r.Addr == addr {
			return true
		}
	}
	return false
}

func TestIntraWarpTrainsAfterConfidence(t *testing.T) {
	p := NewIntraWarp()
	if reqs := p.OnAccess(ev(0, 8, 1000)); reqs != nil {
		t.Fatalf("first access prefetched %v", addrs(reqs))
	}
	if reqs := p.OnAccess(ev(0, 8, 1100)); reqs != nil {
		t.Fatalf("one stride observation prefetched %v", addrs(reqs))
	}
	reqs := p.OnAccess(ev(0, 8, 1200)) // stride 100 twice: trained
	if !contains(reqs, 1300) {
		t.Fatalf("trained intra-warp did not prefetch next iteration: %v", addrs(reqs))
	}
}

func TestIntraWarpPerWarpIsolation(t *testing.T) {
	p := NewIntraWarp()
	p.OnAccess(ev(0, 8, 1000))
	p.OnAccess(ev(0, 8, 1100))
	// A different warp at the same PC must not inherit training.
	if reqs := p.OnAccess(ev(1, 8, 5000)); reqs != nil {
		t.Errorf("warp 1 prefetched from warp 0 training: %v", addrs(reqs))
	}
}

func TestIntraWarpStrideChangeRetrains(t *testing.T) {
	p := NewIntraWarp()
	p.OnAccess(ev(0, 8, 1000))
	p.OnAccess(ev(0, 8, 1100))
	p.OnAccess(ev(0, 8, 1200))
	if reqs := p.OnAccess(ev(0, 8, 9000)); reqs != nil {
		t.Errorf("stride break still prefetched: %v", addrs(reqs))
	}
}

func TestInterWarpTrainsAcrossWarps(t *testing.T) {
	p := NewInterWarp()
	p.OnAccess(ev(0, 8, 1000))
	p.OnAccess(ev(1, 8, 2000))         // stride 1000, 2 warps
	reqs := p.OnAccess(ev(2, 8, 3000)) // 3 warps agree
	if !contains(reqs, 4000) {
		t.Fatalf("inter-warp did not prefetch for next warp: %v", addrs(reqs))
	}
}

func TestInterWarpNonUnitWarpDelta(t *testing.T) {
	p := NewInterWarp()
	p.OnAccess(ev(0, 8, 1000))
	p.OnAccess(ev(2, 8, 3000)) // delta 2 warps, stride/warp = 1000
	reqs := p.OnAccess(ev(4, 8, 5000))
	if !contains(reqs, 6000) {
		t.Fatalf("per-warp stride not normalized: %v", addrs(reqs))
	}
}

func TestMTAUnionsAndDedups(t *testing.T) {
	p := NewMTA()
	// Train intra for warp 0 (stride 100) and inter across warps with the
	// same projected address to force overlap.
	p.OnAccess(ev(0, 8, 1000))
	p.OnAccess(ev(0, 8, 1100))
	reqs := p.OnAccess(ev(0, 8, 1200))
	seen := map[uint64]int{}
	for _, r := range reqs {
		seen[r.Addr]++
		if seen[r.Addr] > 1 {
			t.Fatalf("duplicate request %#x", r.Addr)
		}
	}
}

func TestCTAAwareNeedsCTATransitions(t *testing.T) {
	p := NewCTAAware()
	e := AccessEvent{WarpID: 0, PC: 8, Addr: 1000, CTAID: 0, CTABase: 0x1000}
	if reqs := p.OnAccess(e); reqs != nil {
		t.Fatalf("prefetched before any CTA stride known: %v", addrs(reqs))
	}
	// Two CTA transitions with consistent base stride.
	e2 := AccessEvent{WarpID: 0, PC: 8, Addr: 2000, CTAID: 1, CTABase: 0x2000}
	p.OnAccess(e2)
	e3 := AccessEvent{WarpID: 0, PC: 8, Addr: 3000, CTAID: 2, CTABase: 0x3000}
	reqs := p.OnAccess(e3)
	if !contains(reqs, 3000+0x1000) {
		t.Fatalf("CTA-aware did not project into next CTA: %v", addrs(reqs))
	}
}

func TestTreeCoversChunkProgressively(t *testing.T) {
	p := NewTree()
	reqs := p.OnAccess(ev(0, 8, 64*1024*3+512))
	if len(reqs) != p.BurstLines {
		t.Fatalf("first trigger issued %d lines, want %d", len(reqs), p.BurstLines)
	}
	base := uint64(64 * 1024 * 3)
	if reqs[0].Addr != base {
		t.Errorf("burst starts at %#x, want chunk base %#x", reqs[0].Addr, base)
	}
	// Subsequent triggers continue the chunk without repetition.
	reqs2 := p.OnAccess(ev(0, 8, base+600))
	if reqs2[0].Addr != base+uint64(p.BurstLines)*128 {
		t.Errorf("second burst starts at %#x", reqs2[0].Addr)
	}
	// Eventually the chunk is exhausted.
	for i := 0; i < 64; i++ {
		p.OnAccess(ev(0, 8, base))
	}
	if reqs := p.OnAccess(ev(0, 8, base)); reqs != nil {
		t.Errorf("exhausted chunk still issues: %v", addrs(reqs))
	}
}

func TestIdealUsesOracleAndKnownDeltas(t *testing.T) {
	p := NewIdeal()
	// Teach the delta (pc 8 -> pc 16, +100) via warp 0.
	p.OnAccess(ev(0, 8, 1000))
	p.OnAccess(ev(0, 16, 1100))
	// Warp 1 at pc 8 with a future load at pc 16, +100: predictable.
	e := ev(1, 8, 5000)
	e.FuturePCs = []uint64{16}
	e.FutureAddrs = []uint64{5100}
	reqs := p.OnAccess(e)
	if !contains(reqs, 5100) {
		t.Fatalf("Ideal did not prefetch a known-delta future load: %v", addrs(reqs))
	}
	// An unknown delta is not predictable even for the oracle.
	e2 := ev(1, 16, 5100)
	e2.FuturePCs = []uint64{8}
	e2.FutureAddrs = []uint64{999999}
	for _, r := range p.OnAccess(e2) {
		if r.Addr == 999999 {
			t.Error("Ideal prefetched a never-seen stride")
		}
	}
}

func TestIdealIsMagicAndWantsOracle(t *testing.T) {
	p := NewIdeal()
	if !p.Magic() {
		t.Error("Ideal must be magic")
	}
	if !WantsOracle(p) {
		t.Error("WantsOracle(Ideal) must be true")
	}
	if !WantsOracle(&Decoupled{Inner: p}) {
		t.Error("WantsOracle must unwrap Decoupled")
	}
	if WantsOracle(NewMTA()) {
		t.Error("MTA must not want the oracle")
	}
}

func TestDecoupledWrapperDelegates(t *testing.T) {
	d := &Decoupled{Inner: NewMTA()}
	if d.Name() != "mta+decoupled" {
		t.Errorf("Name = %q", d.Name())
	}
	dec, iso := d.Storage()
	if !dec || iso {
		t.Errorf("Storage = (%v,%v)", dec, iso)
	}
	if d.Magic() || !d.Trained() {
		t.Error("delegation broken")
	}
}

func TestNullPrefetcher(t *testing.T) {
	var n Null
	if n.OnAccess(ev(0, 8, 1)) != nil || n.Name() != "baseline" || !n.Trained() || n.Magic() {
		t.Error("Null prefetcher misbehaves")
	}
}

func TestResets(t *testing.T) {
	ps := []Prefetcher{NewIntraWarp(), NewInterWarp(), NewMTA(), NewCTAAware(), NewTree(), NewIdeal()}
	for _, p := range ps {
		p.OnAccess(ev(0, 8, 1000))
		p.OnAccess(ev(0, 8, 1100))
		p.Reset()
		// After reset, no training survives: two observations are again
		// insufficient for the stride prefetchers.
		if reqs := p.OnAccess(ev(0, 8, 1200)); p.Name() != "tree" && len(reqs) > 0 {
			t.Errorf("%s: training survived Reset: %v", p.Name(), addrs(reqs))
		}
	}
}
