package prefetch

// Ideal models the paper's Ideal prefetcher: it "supports all possible
// (fixed/variable) strides under the optimal characteristics (infinite
// storage and zero latency for the prefetching requests)" (§1).
//
// Concretely, Ideal reads the warp's future load stream from the oracle
// fields of the AccessEvent and prefetches every upcoming load whose
// inter-load delta (keyed by the consecutive PC pair) has been observed at
// least once before by any warp — i.e. every load expressible by some
// fixed or variable stride. Requests are magic: they are installed with zero
// latency and consume no bandwidth, MSHR entries or miss-queue slots.
type Ideal struct {
	nopCycle
	// Lookahead is how many future loads to prefetch per access (default 4).
	Lookahead int

	deltas map[pcPairDelta]bool
	last   map[int]pcAddr // per-warp last load
}

type pcPairDelta struct {
	pc1, pc2 uint64
	delta    int64
}

type pcAddr struct {
	pc   uint64
	addr uint64
	ok   bool
}

// NewIdeal returns an Ideal prefetcher with default lookahead.
func NewIdeal() *Ideal {
	return &Ideal{
		Lookahead: 4,
		deltas:    make(map[pcPairDelta]bool),
		last:      make(map[int]pcAddr),
	}
}

// Name implements Prefetcher.
func (p *Ideal) Name() string { return "ideal" }

// Magic implements Prefetcher: Ideal's requests are free and instantaneous.
func (p *Ideal) Magic() bool { return true }

// OnAccess implements Prefetcher.
func (p *Ideal) OnAccess(ev AccessEvent) []Request {
	// Record the observed delta between this and the warp's previous load.
	if prev := p.last[ev.WarpID]; prev.ok {
		p.deltas[pcPairDelta{prev.pc, ev.PC, int64(ev.Addr) - int64(prev.addr)}] = true
	}
	p.last[ev.WarpID] = pcAddr{pc: ev.PC, addr: ev.Addr, ok: true}

	// Walk the oracle future, prefetching every stride-expressible load.
	n := p.Lookahead
	if n > len(ev.FuturePCs) {
		n = len(ev.FuturePCs)
	}
	var reqs []Request
	pc, addr := ev.PC, ev.Addr
	for i := 0; i < n; i++ {
		npc, naddr := ev.FuturePCs[i], ev.FutureAddrs[i]
		if p.deltas[pcPairDelta{pc, npc, int64(naddr) - int64(addr)}] {
			reqs = append(reqs, Request{Addr: naddr})
		}
		pc, addr = npc, naddr
	}
	return reqs
}

// Reset implements Prefetcher.
func (p *Ideal) Reset() {
	p.deltas = make(map[pcPairDelta]bool)
	p.last = make(map[int]pcAddr)
}
