package prefetch

// CTAAware implements the CTA-aware prefetcher of Koo et al. [25]: warps in
// the current CTA prefetch for the corresponding warps of future CTAs, which
// provides good timeliness (future CTAs run much later) at the cost of a
// detection period during which the per-CTA base-address stride is computed —
// the source of its comparatively low coverage (§2, §5.1).
type CTAAware struct {
	nopCycle
	// Degree is how many future CTAs to prefetch for (default 1).
	Degree int
	// MinCTAs is the number of CTA base strides that must agree (default 2).
	MinCTAs int

	// Per-PC offset tracking within a CTA.
	lastBase   uint64
	haveBase   bool
	ctaStride  int64
	strideSeen int
	lastCTA    int
}

// NewCTAAware returns a CTA-aware prefetcher with default parameters.
func NewCTAAware() *CTAAware {
	return &CTAAware{Degree: 1, MinCTAs: 2, lastCTA: -1}
}

// Name implements Prefetcher.
func (p *CTAAware) Name() string { return "cta-aware" }

// OnAccess implements Prefetcher.
func (p *CTAAware) OnAccess(ev AccessEvent) []Request {
	// Learn the CTA base stride from CTA transitions observed on this SM.
	if !p.haveBase {
		p.haveBase = true
		p.lastBase = ev.CTABase
		p.lastCTA = ev.CTAID
	} else if ev.CTAID != p.lastCTA {
		// Computing the base address of a CTA is time-consuming in hardware
		// (§6.2); the model charges that cost as a detection period of
		// MinCTAs CTA transitions before prefetching begins.
		stride := int64(ev.CTABase) - int64(p.lastBase)
		if stride == p.ctaStride && stride != 0 {
			p.strideSeen++
		} else {
			p.ctaStride = stride
			p.strideSeen = 1
		}
		p.lastBase = ev.CTABase
		p.lastCTA = ev.CTAID
	}
	if p.strideSeen < p.MinCTAs || p.ctaStride == 0 {
		return nil
	}
	// Prefetch this load's address translated into the next CTA(s).
	reqs := make([]Request, 0, p.Degree)
	for d := 1; d <= p.Degree; d++ {
		reqs = append(reqs, Request{Addr: uint64(int64(ev.Addr) + p.ctaStride*int64(d))})
	}
	return reqs
}

// Reset implements Prefetcher.
func (p *CTAAware) Reset() {
	*p = CTAAware{Degree: p.Degree, MinCTAs: p.MinCTAs, lastCTA: -1}
}
