package prefetch

// InterWarp is the inter-warp stride prefetcher of Lee et al. [29]: since
// warps within a CTA have a fixed number of threads, consecutive warps often
// access addresses a fixed stride apart at the same PC, so each warp
// prefetches for future warps. The mechanism suffers a timeliness/accuracy
// trade-off: warps within a CTA are scheduled close in time, and the stride
// breaks across CTA boundaries (§2).
type InterWarp struct {
	nopCycle
	// Degree is how many future warps to prefetch for (default 2).
	Degree int
	// MinWarps is the number of distinct warps that must confirm the stride
	// (default 3, matching Snake's promotion rule).
	MinWarps int

	table map[uint64]*interEntry // keyed by PC
}

type interEntry struct {
	lastAddr  uint64
	lastWarp  int
	stride    int64 // per-warp stride
	warpsSeen int
	valid     bool
}

// NewInterWarp returns an inter-warp prefetcher with default parameters:
// each warp prefetches for the next future warp, per Lee et al. [29].
func NewInterWarp() *InterWarp {
	return &InterWarp{Degree: 1, MinWarps: 3, table: make(map[uint64]*interEntry)}
}

// Name implements Prefetcher.
func (p *InterWarp) Name() string { return "inter-warp" }

// OnAccess implements Prefetcher.
func (p *InterWarp) OnAccess(ev AccessEvent) []Request {
	e, ok := p.table[ev.PC]
	if !ok {
		p.table[ev.PC] = &interEntry{lastAddr: ev.Addr, lastWarp: ev.WarpID, warpsSeen: 1}
		return nil
	}
	dw := ev.WarpID - e.lastWarp
	if dw != 0 {
		stride := (int64(ev.Addr) - int64(e.lastAddr)) / int64(dw)
		if stride == e.stride && stride != 0 {
			e.warpsSeen++
			if e.warpsSeen >= p.MinWarps {
				e.valid = true
			}
		} else {
			e.stride = stride
			e.warpsSeen = 2 // the stride was observed between two warps
			e.valid = false
		}
	}
	e.lastAddr = ev.Addr
	e.lastWarp = ev.WarpID
	if !e.valid || e.stride == 0 {
		return nil
	}
	reqs := make([]Request, 0, p.Degree)
	for d := 1; d <= p.Degree; d++ {
		reqs = append(reqs, Request{Addr: uint64(int64(ev.Addr) + e.stride*int64(d))})
	}
	return reqs
}

// Reset implements Prefetcher.
func (p *InterWarp) Reset() { p.table = make(map[uint64]*interEntry) }
