package prefetch

import "math/bits"

// Bingo is a GPU adaptation of the Bingo spatial prefetcher (Bakhshalipour
// et al., HPCA'19 — §6.1 of the Snake paper): it learns the footprint of
// lines touched within a spatial region and, on the next trigger access to
// a matching region, prefetches the whole footprint. Lookup starts from the
// long event (PC + address); if that misses it falls back to the short
// event (PC + offset), exactly as the paper describes.
//
// Like Domino, Bingo is an extension comparison point: region footprints on
// a GPU are assembled by many warps at once, so the per-trigger footprint
// generalizes poorly.
type Bingo struct {
	nopCycle
	// RegionBytes is the spatial region size (default 2KB = 16 lines).
	RegionBytes uint64
	// LineBytes is the prefetch granularity (default 128).
	LineBytes uint64
	// MaxEntries bounds each history table (default 2048).
	MaxEntries int

	active map[uint64]*regionState // region base -> accumulation
	long   map[longKey]uint32      // PC+trigger-address -> footprint
	short  map[shortKey]uint32     // PC+trigger-offset  -> footprint
	fifoA  []uint64
	fifoL  []longKey
	fifoS  []shortKey
}

type longKey struct {
	pc   uint64
	addr uint64
}

type shortKey struct {
	pc     uint64
	offset uint8
}

type regionState struct {
	footprint uint32 // bit per line in the region
	trigPC    uint64
	trigAddr  uint64
}

// NewBingo returns a Bingo prefetcher with default parameters.
func NewBingo() *Bingo {
	return &Bingo{
		RegionBytes: 2048,
		LineBytes:   128,
		MaxEntries:  2048,
		active:      make(map[uint64]*regionState),
		long:        make(map[longKey]uint32),
		short:       make(map[shortKey]uint32),
	}
}

// Name implements Prefetcher.
func (p *Bingo) Name() string { return "bingo" }

// OnAccess implements Prefetcher.
func (p *Bingo) OnAccess(ev AccessEvent) []Request {
	region := ev.Addr &^ (p.RegionBytes - 1)
	lineIdx := uint((ev.Addr % p.RegionBytes) / p.LineBytes)
	st, tracked := p.active[region]
	if tracked {
		st.footprint |= 1 << lineIdx
		return nil
	}
	// Trigger access to a new region: learn the previous epoch's footprint
	// is handled on eviction; start tracking and predict from history.
	st = &regionState{footprint: 1 << lineIdx, trigPC: ev.PC, trigAddr: ev.Addr}
	if len(p.active) >= 64 { // few regions tracked at once, FIFO recycled
		victim := p.fifoA[0]
		p.fifoA = p.fifoA[1:]
		p.retire(victim)
	}
	p.active[region] = st
	p.fifoA = append(p.fifoA, region)

	// Long event first, then the short event (§6.1).
	fp, ok := p.long[longKey{ev.PC, ev.Addr}]
	if !ok {
		fp, ok = p.short[shortKey{ev.PC, uint8(lineIdx)}]
	}
	if !ok || fp == 0 {
		return nil
	}
	reqs := make([]Request, 0, bits.OnesCount32(fp))
	for i := uint(0); i < uint(p.RegionBytes/p.LineBytes); i++ {
		if fp&(1<<i) != 0 && i != lineIdx {
			reqs = append(reqs, Request{Addr: region + uint64(i)*p.LineBytes})
		}
	}
	return reqs
}

// retire stores a finished region's footprint under both event keys.
func (p *Bingo) retire(region uint64) {
	st, ok := p.active[region]
	if !ok {
		return
	}
	delete(p.active, region)
	lk := longKey{st.trigPC, st.trigAddr}
	if _, exists := p.long[lk]; !exists {
		if len(p.fifoL) >= p.MaxEntries {
			delete(p.long, p.fifoL[0])
			p.fifoL = p.fifoL[1:]
		}
		p.fifoL = append(p.fifoL, lk)
	}
	p.long[lk] = st.footprint
	sk := shortKey{st.trigPC, uint8((st.trigAddr % p.RegionBytes) / p.LineBytes)}
	if _, exists := p.short[sk]; !exists {
		if len(p.fifoS) >= p.MaxEntries {
			delete(p.short, p.fifoS[0])
			p.fifoS = p.fifoS[1:]
		}
		p.fifoS = append(p.fifoS, sk)
	}
	p.short[sk] = st.footprint
}

// Reset implements Prefetcher.
func (p *Bingo) Reset() {
	p.active = make(map[uint64]*regionState)
	p.long = make(map[longKey]uint32)
	p.short = make(map[shortKey]uint32)
	p.fifoA, p.fifoL, p.fifoS = nil, nil, nil
}
