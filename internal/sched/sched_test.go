package sched

import (
	"testing"

	"snake/internal/config"
)

func TestGTOGreediness(t *testing.T) {
	s := New(config.SchedGTO)
	ready := []bool{true, true, true}
	age := []int64{3, 1, 2}
	// First pick: oldest (index 1).
	if got := s.Pick(ready, age); got != 1 {
		t.Fatalf("first pick = %d, want 1 (oldest)", got)
	}
	// Greedy: keeps picking 1 while ready.
	if got := s.Pick(ready, age); got != 1 {
		t.Fatalf("greedy pick = %d, want 1", got)
	}
	// 1 stalls: falls back to oldest ready (index 2, age 2).
	ready[1] = false
	if got := s.Pick(ready, age); got != 2 {
		t.Fatalf("fallback pick = %d, want 2", got)
	}
	// 1 becomes ready again but GTO sticks with its new greedy warp.
	ready[1] = true
	if got := s.Pick(ready, age); got != 2 {
		t.Fatalf("post-switch pick = %d, want 2 (greedy)", got)
	}
}

func TestGTONoneReady(t *testing.T) {
	s := New(config.SchedGTO)
	if got := s.Pick([]bool{false, false}, []int64{1, 2}); got != -1 {
		t.Errorf("pick with none ready = %d, want -1", got)
	}
}

func TestLRRRotates(t *testing.T) {
	s := New(config.SchedLRR)
	ready := []bool{true, true, true}
	age := []int64{1, 2, 3}
	var order []int
	for i := 0; i < 6; i++ {
		order = append(order, s.Pick(ready, age))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LRR order = %v, want %v", order, want)
		}
	}
}

func TestLRRSkipsStalled(t *testing.T) {
	s := New(config.SchedLRR)
	ready := []bool{false, true, false}
	if got := s.Pick(ready, nil); got != 1 {
		t.Errorf("pick = %d, want 1", got)
	}
	if got := s.Pick([]bool{false, false, false}, nil); got != -1 {
		t.Errorf("pick with none ready = %d, want -1", got)
	}
}

func TestOldestPolicy(t *testing.T) {
	s := New(config.SchedOldest)
	ready := []bool{true, true, true}
	age := []int64{5, 2, 9}
	for i := 0; i < 3; i++ {
		if got := s.Pick(ready, age); got != 1 {
			t.Fatalf("oldest pick = %d, want 1", got)
		}
	}
}

func TestNames(t *testing.T) {
	for _, p := range []config.SchedulerPolicy{config.SchedGTO, config.SchedLRR, config.SchedOldest} {
		if New(p).Name() != string(p) {
			t.Errorf("New(%q).Name() = %q", p, New(p).Name())
		}
	}
}
