// Package sched implements warp schedulers. Each SM has several scheduler
// slices, each owning a subset of the SM's warps; every cycle a scheduler
// picks one ready warp to issue from.
//
// The Greedy-Then-Oldest (GTO) policy — the Table 1 default — keeps issuing
// from the same warp until it stalls, then falls back to the oldest ready
// warp. GTO's greediness is why Snake's Head table doubles its warp-ID and
// base-address columns (§3.1): a greedy scheduler can interleave two warps'
// load streams in a way that a single-entry head would lose.
package sched

import "snake/internal/config"

// Scheduler picks the next warp to issue among a scheduler slice's warps.
type Scheduler interface {
	// Pick returns the index (into the ready slice) of the warp to issue, or
	// -1 if none is ready. ready[i] reports warp i is issuable this cycle;
	// age[i] is a monotonically increasing assignment stamp (smaller =
	// older).
	Pick(ready []bool, age []int64) int
	// Idle is the fast path for a cycle with no issuable warp: it must leave
	// the scheduler in exactly the state a Pick over a non-empty all-false
	// ready slice would (GTO forgets its greedy warp; LRR and Oldest are
	// untouched). Callers use it to avoid building the ready slice at all.
	Idle()
	// Reset restores the scheduler to its just-constructed state, so a
	// recycled SM starts a new run with exactly the policy state a fresh New
	// would give it.
	Reset()
	// Name returns the policy name.
	Name() string
}

// New returns a scheduler implementing the given policy.
func New(policy config.SchedulerPolicy) Scheduler {
	switch policy {
	case config.SchedLRR:
		return &lrr{}
	case config.SchedOldest:
		return &oldest{}
	default:
		return &gto{last: -1}
	}
}

// gto is Greedy-Then-Oldest.
type gto struct {
	last int
}

func (g *gto) Name() string { return string(config.SchedGTO) }

func (g *gto) Pick(ready []bool, age []int64) int {
	if g.last >= 0 && g.last < len(ready) && ready[g.last] {
		return g.last
	}
	pick := -1
	for i, r := range ready {
		if r && (pick < 0 || age[i] < age[pick]) {
			pick = i
		}
	}
	g.last = pick
	return pick
}

// Idle implements Scheduler: with no ready warp, Pick's scan finds nothing
// and clears the greedy pointer.
func (g *gto) Idle() { g.last = -1 }

// Reset implements Scheduler.
func (g *gto) Reset() { g.last = -1 }

// lrr is loose round-robin.
type lrr struct {
	next int
}

func (l *lrr) Name() string { return string(config.SchedLRR) }

// Idle implements Scheduler: a fruitless round-robin scan leaves next as is.
func (l *lrr) Idle() {}

// Reset implements Scheduler.
func (l *lrr) Reset() { l.next = 0 }

func (l *lrr) Pick(ready []bool, _ []int64) int {
	n := len(ready)
	if n == 0 {
		return -1
	}
	for off := 0; off < n; off++ {
		i := (l.next + off) % n
		if ready[i] {
			l.next = (i + 1) % n
			return i
		}
	}
	return -1
}

// oldest always picks the oldest ready warp.
type oldest struct{}

func (oldest) Name() string { return string(config.SchedOldest) }

// Idle implements Scheduler: oldest is stateless.
func (oldest) Idle() {}

// Reset implements Scheduler.
func (oldest) Reset() {}

func (oldest) Pick(ready []bool, age []int64) int {
	pick := -1
	for i, r := range ready {
		if r && (pick < 0 || age[i] < age[pick]) {
			pick = i
		}
	}
	return pick
}
