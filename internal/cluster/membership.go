package cluster

import (
	"sync"
	"time"
)

// Peer is one remote cluster member: its advertised base URL, a bounded
// in-flight budget for forwarded work, and a health latch. Health is
// failure-driven: a transport error marks the peer down for a probe window,
// during which callers skip it and degrade to local compute; after the
// window the next request probes it again.
type Peer struct {
	url      string
	inflight chan struct{}

	mu        sync.Mutex
	downUntil time.Time
	downs     int64 // times the peer was marked down (metrics)
}

func newPeer(url string, maxInflight int) *Peer {
	if maxInflight < 1 {
		maxInflight = 1
	}
	return &Peer{url: url, inflight: make(chan struct{}, maxInflight)}
}

// URL returns the peer's advertised base URL.
func (p *Peer) URL() string { return p.url }

// Alive reports whether the peer is currently considered reachable.
func (p *Peer) Alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !time.Now().Before(p.downUntil)
}

// markDown takes the peer out of rotation for d.
func (p *Peer) markDown(d time.Duration) {
	p.mu.Lock()
	p.downUntil = time.Now().Add(d)
	p.downs++
	p.mu.Unlock()
}

// tryAcquire claims one in-flight slot without blocking; forwarded work that
// cannot get a slot runs locally instead of queueing behind the peer.
func (p *Peer) tryAcquire() bool {
	select {
	case p.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

func (p *Peer) release() { <-p.inflight }

// PeerStatus is a metrics snapshot of one peer.
type PeerStatus struct {
	URL      string
	Up       bool
	InFlight int
	Downs    int64
}

func (p *Peer) status() PeerStatus {
	p.mu.Lock()
	downs := p.downs
	up := !time.Now().Before(p.downUntil)
	p.mu.Unlock()
	return PeerStatus{URL: p.url, Up: up, InFlight: len(p.inflight), Downs: downs}
}
