package cluster

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"snake/internal/stats"
)

// sampleSim builds a fully populated stats.Sim so round-trip tests cover
// every field, including a float that exercises encoding precision.
func sampleSim(seed int64) *stats.Sim {
	st := &stats.Sim{
		Cycles: 100000 + seed, Insts: 250000 + seed, Loads: 40000 + seed, Stores: 9000 + seed,
		ResFailMissQueue: 11 + seed, ResFailMSHR: 7, ResFailVictim: 3,
		StallMemory: 52000, StallOther: 8000,
		IcntBytes: 1 << 22, IcntPeakBytes: 1 << 26,
		EnergyJ: 0.12345678901234567 * float64(seed+1),
		L2Hits:  1234, L2Misses: 567, L2Merges: 89,
		DRAMReads: 567, DRAMRowHits: 400, DRAMRowMisses: 167,
		Pf: stats.Prefetch{
			Issued: 9000 + seed, Dropped: 120, UsefulTimely: 7000, UsefulLate: 500,
			EarlyEvicted: 60, Unused: 400, Transferred: 6500, ThrottleCycles: 1500,
			Covered: 7700, CoveredTimely: 7000,
		},
	}
	st.L1 = [5]int64{30000, 5000, 2000, 2500, 500}
	return st
}

func key(i byte) string {
	b := make([]byte, 64)
	for j := range b {
		b[j] = "0123456789abcdef"[int(i+byte(j))%16]
	}
	return string(b)
}

// TestStoreDiskRoundTrip: results are written through to the disk tier, so
// eviction only drops the memory copy and a disk read returns stats
// bit-identical to what was stored.
func TestStoreDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Budget below two entries: the second Put must evict the first from
	// memory (both are on disk from write-through).
	s := NewStore(StoreOptions{MaxBytes: encodedSize(sampleSim(1)) + 256, Dir: dir})

	st1, st2 := sampleSim(1), sampleSim(2)
	s.Put(key(1), st1)
	s.Put(key(2), st2)

	snap := s.Snap()
	if snap.Evictions != 1 || snap.Spills != 2 {
		t.Fatalf("evictions=%d spills=%d, want 1 eviction and both entries written through (snap %+v)",
			snap.Evictions, snap.Spills, snap)
	}
	if snap.DiskEntries != 2 || snap.DiskBytes <= 0 {
		t.Fatalf("disk tier incomplete after write-through: %+v", snap)
	}
	if snap.MemEntries != 1 || snap.Entries != 2 {
		t.Fatalf("want 1 resident + 2 total entries: %+v", snap)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 2 {
		t.Fatalf("spill files on disk = %v, want exactly 2", files)
	}

	got, tier := s.GetLocal(key(1))
	if tier != TierDisk {
		t.Fatalf("GetLocal(evicted) tier = %v, want disk", tier)
	}
	if !reflect.DeepEqual(got, st1) {
		t.Errorf("disk round trip not bit-identical:\ngot  %+v\nwant %+v", got, st1)
	}
	// The disk hit promoted it back to memory.
	if _, tier := s.GetLocal(key(1)); tier != TierMemory {
		t.Errorf("post-promotion tier = %v, want memory", tier)
	}

	// A fresh store over the same dir serves every entry: the cache survives
	// restarts with nothing lost.
	s2 := NewStore(StoreOptions{Dir: dir})
	if snap := s2.Snap(); snap.DiskEntries != 2 {
		t.Fatalf("restarted store sees %d disk entries, want 2: %+v", snap.DiskEntries, snap)
	}
	for k, want := range map[string]*stats.Sim{key(1): st1, key(2): st2} {
		st, tier := s2.GetLocal(k)
		if tier != TierDisk {
			t.Errorf("restart read tier = %v, want disk", tier)
		}
		if !reflect.DeepEqual(st, want) {
			t.Errorf("restart read of %s not bit-identical", k[:8])
		}
	}
}

// TestStoreWriteThroughUnbounded: with a disk tier but no memory bound,
// nothing is ever evicted yet everything persists — a restart serves the
// full cache.
func TestStoreWriteThroughUnbounded(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(StoreOptions{Dir: dir})
	s.Put(key(5), sampleSim(5))
	if snap := s.Snap(); snap.Evictions != 0 || snap.DiskEntries != 1 || snap.Spills != 1 {
		t.Fatalf("write-through without eviction: %+v", snap)
	}
	s2 := NewStore(StoreOptions{Dir: dir})
	if st, tier := s2.GetLocal(key(5)); tier != TierDisk || !reflect.DeepEqual(st, sampleSim(5)) {
		t.Fatalf("restart lost an unevicted entry: tier=%v", tier)
	}
}

// TestStoreCorruptSpill: an unreadable spill file is dropped and treated as
// a miss, never an error.
func TestStoreCorruptSpill(t *testing.T) {
	dir := t.TempDir()
	k := key(3)
	if err := os.WriteFile(filepath.Join(dir, k+".json"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(StoreOptions{Dir: dir})
	if st, tier := s.GetLocal(k); st != nil || tier != TierNone {
		t.Fatalf("corrupt spill served: %v %v", st, tier)
	}
	if snap := s.Snap(); snap.DiskErrors != 1 || snap.DiskEntries != 0 {
		t.Errorf("corrupt spill not dropped: %+v", snap)
	}
	if _, err := os.Stat(filepath.Join(dir, k+".json")); !os.IsNotExist(err) {
		t.Error("corrupt spill file not removed")
	}
}

// TestStoreLRUOrder: the eviction victim is the least recently used entry,
// and Get refreshes recency.
func TestStoreLRUOrder(t *testing.T) {
	one := encodedSize(sampleSim(0)) + int64(64) + entryOverhead
	s := NewStore(StoreOptions{MaxBytes: 2*one + 128}) // room for ~2 entries, no disk
	s.Put(key(1), sampleSim(1))
	s.Put(key(2), sampleSim(2))
	s.GetLocal(key(1)) // refresh 1 → victim should be 2
	s.Put(key(3), sampleSim(3))
	if st, _ := s.GetLocal(key(2)); st != nil {
		t.Error("LRU evicted the recently-used entry instead of the cold one")
	}
	if st, _ := s.GetLocal(key(1)); st == nil {
		t.Error("recently-used entry was evicted")
	}
	if snap := s.Snap(); snap.Evictions == 0 || snap.Spills != 0 {
		t.Errorf("want drops without spills when no dir: %+v", snap)
	}
}

// TestStoreUnboundedCompat: MaxBytes<=0 never evicts (the pre-cluster
// behavior).
func TestStoreUnboundedCompat(t *testing.T) {
	s := NewStore(StoreOptions{})
	for i := byte(0); i < 16; i++ {
		s.Put(key(i), sampleSim(int64(i)))
	}
	snap := s.Snap()
	if snap.MemEntries != 16 || snap.Evictions != 0 {
		t.Errorf("unbounded store evicted: %+v", snap)
	}
	if snap.Entries != 16 {
		t.Errorf("entries = %d, want 16", snap.Entries)
	}
}

// TestStoreConcurrentDiskTier: concurrent Put/GetLocal churn with a tight
// memory budget forces simultaneous admissions, evictions, spill writes,
// and disk promotions; the reserve/confirm spill protocol (I/O outside the
// lock) must keep accounting consistent and lose nothing that was written
// through.
func TestStoreConcurrentDiskTier(t *testing.T) {
	dir := t.TempDir()
	one := encodedSize(sampleSim(0)) + 64 + entryOverhead
	s := NewStore(StoreOptions{MaxBytes: 4 * one, Dir: dir})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				n := (g + i) % 12
				k := key(byte(n))
				if st, _ := s.GetLocal(k); st == nil {
					s.Put(k, sampleSim(int64(n)))
				}
			}
		}(g)
	}
	wg.Wait()
	for n := 0; n < 12; n++ {
		if st, tier := s.GetLocal(key(byte(n))); st == nil || tier == TierNone {
			t.Errorf("key %d lost after concurrent churn", n)
		}
	}
	snap := s.Snap()
	if snap.DiskEntries != 12 || snap.DiskErrors != 0 {
		t.Errorf("disk tier after churn: %+v, want all 12 keys written through cleanly", snap)
	}
	if snap.MemBytes < 0 || snap.DiskBytes <= 0 {
		t.Errorf("byte accounting drifted: %+v", snap)
	}
}

// TestStorePeerTier: after a local miss the store consults the peer-fetch
// hook and admits the result.
func TestStorePeerTier(t *testing.T) {
	want := sampleSim(9)
	calls := 0
	s := NewStore(StoreOptions{PeerFetch: func(_ context.Context, k string) (*stats.Sim, bool) {
		calls++
		if k == key(9) {
			return want, true
		}
		return nil, false
	}})
	st, tier := s.Get(context.Background(), key(9))
	if tier != TierPeer || !reflect.DeepEqual(st, want) {
		t.Fatalf("peer tier miss: tier=%v", tier)
	}
	// Admitted: second lookup is a memory hit, no second peer call.
	if _, tier := s.Get(context.Background(), key(9)); tier != TierMemory {
		t.Errorf("peer result not admitted: tier=%v", tier)
	}
	if calls != 1 {
		t.Errorf("peer calls = %d, want 1", calls)
	}
	if _, tier := s.Get(context.Background(), key(8)); tier != TierNone {
		t.Errorf("miss everywhere should be TierNone, got %v", tier)
	}
	snap := s.Snap()
	if snap.PeerHits != 1 || snap.Misses != 1 {
		t.Errorf("peer accounting: %+v", snap)
	}
}
