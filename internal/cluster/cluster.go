package cluster

import (
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Options configures a Cluster.
type Options struct {
	// Self is this node's advertised base URL (e.g. "http://hostA:8080").
	// It must appear in every other member's Peers list under the same
	// spelling: node names are compared as strings by the rendezvous hash.
	Self string
	// Peers are the other members' advertised base URLs.
	Peers []string
	// PeerInflight caps concurrently forwarded jobs per peer (default 4).
	PeerInflight int
	// DownFor is how long a peer stays out of rotation after a transport
	// error before the next request probes it again (default 10s).
	DownFor time.Duration
	// FetchTimeout bounds one peer cache fetch (default 5s).
	FetchTimeout time.Duration
	// ExecTimeout bounds one forwarded execution (default 2m). A peer that
	// cannot answer within it is treated like a transport error: the caller
	// degrades to local compute and the peer is latched down for DownFor, so
	// a hung or wedged owner can never pin the sender's workers
	// indefinitely. <0 disables the bound (the caller's context still
	// applies).
	ExecTimeout time.Duration
	// Client overrides the HTTP client (default: http.Client with no global
	// timeout; per-call contexts bound each request).
	Client *http.Client
}

// Cluster is the static membership view plus the transport counters. All
// methods are safe for concurrent use.
type Cluster struct {
	self         string
	nodes        []string // self + peers, sorted (canonical member set)
	peers        map[string]*Peer
	downFor      time.Duration
	fetchTimeout time.Duration
	execTimeout  time.Duration
	client       *http.Client

	mu            sync.Mutex
	fetchHits     int64
	fetchMisses   int64
	fetchErrors   int64
	execOK        int64
	execErrors    int64
	execSaturated int64
}

// New builds the membership view. The node set is {Self} ∪ Peers; duplicate
// and empty entries are dropped.
func New(opt Options) *Cluster {
	if opt.PeerInflight <= 0 {
		opt.PeerInflight = 4
	}
	if opt.DownFor <= 0 {
		opt.DownFor = 10 * time.Second
	}
	if opt.FetchTimeout <= 0 {
		opt.FetchTimeout = 5 * time.Second
	}
	if opt.ExecTimeout == 0 {
		opt.ExecTimeout = 2 * time.Minute
	}
	if opt.Client == nil {
		opt.Client = &http.Client{}
	}
	c := &Cluster{
		self:         strings.TrimRight(opt.Self, "/"),
		peers:        make(map[string]*Peer),
		downFor:      opt.DownFor,
		fetchTimeout: opt.FetchTimeout,
		execTimeout:  opt.ExecTimeout,
		client:       opt.Client,
	}
	seen := map[string]bool{c.self: true}
	c.nodes = append(c.nodes, c.self)
	for _, p := range opt.Peers {
		p = strings.TrimRight(p, "/")
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		c.nodes = append(c.nodes, p)
		c.peers[p] = newPeer(p, opt.PeerInflight)
	}
	sort.Strings(c.nodes)
	return c
}

// Self returns this node's advertised URL.
func (c *Cluster) Self() string { return c.self }

// Nodes returns the canonical member set (self included), sorted.
func (c *Cluster) Nodes() []string {
	out := make([]string, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// OwnerOf returns the member responsible for key and whether it is this
// node.
func (c *Cluster) OwnerOf(key string) (node string, self bool) {
	node = Owner(key, c.nodes)
	return node, node == c.self
}

// Snapshot is a consistent copy of the transport counters for metrics.
type Snapshot struct {
	Nodes                               int
	FetchHits, FetchMisses, FetchErrors int64
	ExecOK, ExecErrors, ExecSaturated   int64
	Peers                               []PeerStatus
}

// Snap returns the current transport counters and per-peer health.
func (c *Cluster) Snap() Snapshot {
	c.mu.Lock()
	s := Snapshot{
		Nodes:     len(c.nodes),
		FetchHits: c.fetchHits, FetchMisses: c.fetchMisses, FetchErrors: c.fetchErrors,
		ExecOK: c.execOK, ExecErrors: c.execErrors, ExecSaturated: c.execSaturated,
	}
	c.mu.Unlock()
	urls := make([]string, 0, len(c.peers))
	for u := range c.peers {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		s.Peers = append(s.Peers, c.peers[u].status())
	}
	return s
}
