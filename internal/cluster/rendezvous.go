// Package cluster turns independent snaked processes into a peer-aware job
// fabric. It provides the four pieces the service layer composes into a
// distributed result cache:
//
//   - rendezvous-hash ownership of result keys (Owner), so every node agrees
//     on which member is responsible for a harness.RunKey without any
//     coordination traffic;
//   - static membership with failure-aware health (Peer): a peer that errors
//     is marked down for a probe window and the caller degrades to local
//     compute — a dead peer is never an error;
//   - an HTTP transport (FetchResult, Execute) with per-peer in-flight caps
//     on forwarded work;
//   - a tiered result store (Store): bounded in-memory LRU → disk spillover
//     (offload on eviction rather than drop) → peer fetch.
//
// The package depends only on internal/stats; the service layer owns the
// wire format of forwarded jobs and passes it through as opaque JSON.
package cluster

import (
	"hash/fnv"
	"io"
)

// score returns the rendezvous (highest-random-weight) weight of node for
// key. FNV-1a over node⊕key keeps ownership deterministic across processes
// with no shared state beyond the member list itself.
func score(node, key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, node)
	h.Write([]byte{0})
	io.WriteString(h, key)
	return h.Sum64()
}

// Owner returns the member with the highest rendezvous score for key, with
// lexicographic tie-breaking so the result is independent of slice order.
// Every cluster member must pass the same set of node names (in any order)
// to agree on ownership. nodes must be non-empty.
func Owner(key string, nodes []string) string {
	best := nodes[0]
	bestScore := score(best, key)
	for _, n := range nodes[1:] {
		if s := score(n, key); s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}
