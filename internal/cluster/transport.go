package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"snake/internal/stats"
)

// Transport errors. The service layer treats every one of them as "degrade
// to local compute"; they exist so metrics and tests can tell the cases
// apart.
var (
	// ErrSelf: the key is owned by this node, so there is no peer to talk to.
	ErrSelf = errors.New("cluster: key owned by this node")
	// ErrPeerDown: the owning peer is inside its down window.
	ErrPeerDown = errors.New("cluster: owning peer is down")
	// ErrSaturated: the per-peer in-flight cap is exhausted, or the peer
	// answered 429 (its own admission control rejected the work).
	ErrSaturated = errors.New("cluster: peer saturated")
)

// cachePath and executePath are the peer-to-peer endpoints the service
// layer serves; the transport only ever talks to these.
const (
	cachePath   = "/v1/cache/"
	executePath = "/v1/peer/execute"
)

// SourceHeader carries where the responding node produced a result
// ("memory", "disk", or "sim") so the caller's metrics can distinguish a
// remote cache hit from remote compute.
const SourceHeader = "X-Snaked-Source"

// KeyHeader echoes the responding node's content address for the result so
// the caller can detect key-schema skew between nodes.
const KeyHeader = "X-Snaked-Key"

// FetchResult is the store's tier-3 lookup: ask the owning peer's local
// cache (memory + disk tiers only, no recursion) for key. It returns
// (nil, false) on self-ownership, a down or unreachable peer, or a remote
// miss — never an error; a dead peer just means the caller computes
// locally.
func (c *Cluster) FetchResult(ctx context.Context, key string) (*stats.Sim, bool) {
	owner, self := c.OwnerOf(key)
	if self {
		return nil, false
	}
	p := c.peers[owner]
	if p == nil || !p.Alive() {
		return nil, false
	}
	fctx, cancel := context.WithTimeout(ctx, c.fetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, p.url+cachePath+key, nil)
	if err != nil {
		return nil, false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.count(&c.fetchErrors)
		// A canceled caller is not evidence the peer is unhealthy.
		if ctx.Err() == nil {
			p.markDown(c.downFor)
		}
		return nil, false
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		c.count(&c.fetchMisses)
		return nil, false
	case resp.StatusCode != http.StatusOK:
		// 5xx (or anything else unexpected) is peer failure, not a miss:
		// latch the peer down so a consistently broken peer is not
		// re-queried on every single lookup.
		c.count(&c.fetchErrors)
		if ctx.Err() == nil {
			p.markDown(c.downFor)
		}
		return nil, false
	}
	var st stats.Sim
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		c.count(&c.fetchErrors)
		return nil, false
	}
	c.count(&c.fetchHits)
	return &st, true
}

// Execute forwards a job to the peer owning key and blocks until the peer
// returns the full simulation stats (served from its cache or freshly
// simulated — the returned source string says which). body is the
// service-layer JSON job description, opaque to the transport. The caller
// degrades to local compute on any error.
func (c *Cluster) Execute(ctx context.Context, key string, body []byte) (st *stats.Sim, source string, err error) {
	owner, self := c.OwnerOf(key)
	if self {
		return nil, "", ErrSelf
	}
	p := c.peers[owner]
	if p == nil || !p.Alive() {
		return nil, "", ErrPeerDown
	}
	if !p.tryAcquire() {
		c.count(&c.execSaturated)
		return nil, "", ErrSaturated
	}
	defer p.release()
	// Bound the forwarded execution independently of the job's own (possibly
	// unbounded) context: a hung owner turns into a transport error and a
	// local-compute fallback instead of pinning this worker forever.
	ectx := ctx
	if c.execTimeout > 0 {
		var cancel context.CancelFunc
		ectx, cancel = context.WithTimeout(ctx, c.execTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ectx, http.MethodPost, p.url+executePath, bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		c.count(&c.execErrors)
		if ctx.Err() == nil {
			p.markDown(c.downFor)
		}
		return nil, "", err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		c.count(&c.execSaturated)
		return nil, "", ErrSaturated
	case resp.StatusCode != http.StatusOK:
		c.count(&c.execErrors)
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, "", fmt.Errorf("cluster: peer %s: HTTP %d: %s", owner, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if got := resp.Header.Get(KeyHeader); got != "" && got != key {
		c.count(&c.execErrors)
		return nil, "", fmt.Errorf("cluster: peer %s computed key %s for our %s (version skew?)", owner, got, key)
	}
	st = new(stats.Sim)
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		c.count(&c.execErrors)
		return nil, "", fmt.Errorf("cluster: peer %s: bad result body: %w", owner, err)
	}
	c.count(&c.execOK)
	source = resp.Header.Get(SourceHeader)
	if source == "" {
		source = "sim"
	}
	return st, source, nil
}

func (c *Cluster) count(field *int64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}
