package cluster

import (
	"container/list"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"snake/internal/stats"
)

// Tier identifies where a Store lookup was satisfied.
type Tier int

// Lookup tiers, cheapest first.
const (
	TierNone   Tier = iota // miss everywhere
	TierMemory             // resident LRU
	TierDisk               // content-addressed spill file
	TierPeer               // fetched from the owning peer's cache
)

// String names the tier for RunView.Source and metrics labels.
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	case TierPeer:
		return "peer"
	default:
		return "none"
	}
}

// StoreOptions configures a tiered result store.
type StoreOptions struct {
	// MaxBytes bounds the in-memory tier (entry sizes are their JSON
	// encodings plus key overhead). <= 0 means unbounded, which preserves
	// the original flat-map behavior.
	MaxBytes int64
	// Dir enables the disk tier: every admitted result is written through to
	// a content-addressed file here, so eviction from the memory tier only
	// drops the resident copy and files present at startup are served (the
	// whole cache survives restarts). Empty disables it, making eviction a
	// plain drop.
	Dir string
	// PeerFetch, when non-nil, is the tier-3 lookup consulted after a local
	// miss (typically Cluster.FetchResult). A hit is admitted to the memory
	// tier.
	PeerFetch func(ctx context.Context, key string) (*stats.Sim, bool)
}

// entryOverhead approximates per-entry bookkeeping (map slot, list element,
// key string) charged against MaxBytes on top of the encoded value.
const entryOverhead = 128

// Store is the content-addressed result cache behind snaked: keys are
// harness.RunKey hashes, values are completed simulation stats. Tier 1 is a
// byte-accounted LRU; tier 2 (disk, when enabled) holds every result via
// write-through, so eviction only drops the memory copy and the long tail
// of a big sweep persists cheaply while hot (bench, mech, config) shapes
// stay resident; tier 3 asks the owning peer. Simulations are
// deterministic, so entries never expire and first write wins.
//
// Locking discipline: mu guards only the in-memory structures and the disk
// index. Disk I/O (spill writes, reads, deletes) always runs outside the
// lock — a write is reserved under the lock via the spilling set, performed
// unlocked, then confirmed or rolled back — so memory hits never serialize
// behind another goroutine's disk traffic.
type Store struct {
	maxBytes  int64
	dir       string
	peerFetch func(ctx context.Context, key string) (*stats.Sim, bool)

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	idx      map[string]*list.Element
	memBytes int64
	diskIdx  map[string]int64 // key -> spill file size in bytes
	dBytes   int64
	spilling map[string]bool // keys whose spill write is in flight (unlocked I/O)

	memHits, diskHits, peerHits, misses int64
	evictions, spills                   int64
	diskErrors                          int64
}

type entry struct {
	key  string
	st   *stats.Sim
	size int64
}

// NewStore builds the store. A Dir that cannot be created or scanned
// disables the disk tier (counted in DiskErrors) rather than failing: the
// store is a cache, and a cache that cannot spill still serves.
func NewStore(opt StoreOptions) *Store {
	s := &Store{
		maxBytes:  opt.MaxBytes,
		dir:       opt.Dir,
		peerFetch: opt.PeerFetch,
		ll:        list.New(),
		idx:       make(map[string]*list.Element),
		diskIdx:   make(map[string]int64),
		spilling:  make(map[string]bool),
	}
	if s.dir != "" {
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			s.dir = ""
			s.diskErrors++
			return s
		}
		ents, err := os.ReadDir(s.dir)
		if err != nil {
			s.dir = ""
			s.diskErrors++
			return s
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".json") {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			s.diskIdx[strings.TrimSuffix(name, ".json")] = info.Size()
			s.dBytes += info.Size()
		}
	}
	return s
}

// SetPeerFetch installs the tier-3 lookup after construction (the service
// wires the cluster in once both exist).
func (s *Store) SetPeerFetch(f func(ctx context.Context, key string) (*stats.Sim, bool)) {
	s.peerFetch = f
}

// Get looks key up through all three tiers. The returned Tier reports which
// one answered; TierNone means a miss everywhere.
func (s *Store) Get(ctx context.Context, key string) (*stats.Sim, Tier) {
	if st, tier := s.GetLocal(key); st != nil {
		return st, tier
	}
	if s.peerFetch != nil {
		if st, ok := s.peerFetch(ctx, key); ok {
			s.mu.Lock()
			s.peerHits++
			s.mu.Unlock()
			s.Put(key, st)
			return st, TierPeer
		}
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil, TierNone
}

// GetLocal looks key up in the local tiers only (memory, then disk) — the
// peer cache endpoint serves from this, so cross-node lookups never
// recurse. A disk hit is promoted into the memory tier (the spill read runs
// outside the lock); its spill file is kept, making re-eviction free.
func (s *Store) GetLocal(key string) (*stats.Sim, Tier) {
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		s.ll.MoveToFront(el)
		s.memHits++
		st := el.Value.(*entry).st
		s.mu.Unlock()
		return st, TierMemory
	}
	_, onDisk := s.diskIdx[key]
	s.mu.Unlock()
	if !onDisk {
		return nil, TierNone
	}
	st, n, err := s.readSpill(key)
	if err != nil {
		// Corrupt or unreadable spill: drop it and treat as a miss.
		s.dropSpill(key)
		return nil, TierNone
	}
	s.mu.Lock()
	s.diskHits++
	evicted := s.admitLocked(key, st, n)
	writes := s.claimSpillsLocked(nil, evicted)
	s.mu.Unlock()
	s.writeSpills(writes)
	return st, TierDisk
}

// Put stores a completed result, writing through to the disk tier when
// enabled (the file write runs outside the lock). First write wins: the
// simulations are deterministic, so a concurrent duplicate computed the
// same stats.
func (s *Store) Put(key string, st *stats.Sim) {
	b, err := json.Marshal(st)
	if err != nil {
		b = nil
	}
	s.mu.Lock()
	if err != nil {
		s.diskErrors++
	}
	evicted := s.admitLocked(key, st, int64(len(b)))
	var writes []spillJob
	if b != nil && s.claimSpillLocked(key) {
		writes = append(writes, spillJob{key: key, data: b})
	}
	writes = s.claimSpillsLocked(writes, evicted)
	s.mu.Unlock()
	s.writeSpills(writes)
}

// spillJob is one reserved write-through: the data to persist for key, with
// the raw encoding when the caller already has it.
type spillJob struct {
	key  string
	data []byte     // pre-encoded; nil means encode st
	st   *stats.Sim
}

// claimSpillLocked reserves the write-through of key. True means the caller
// must write the spill file outside the lock and report via finishSpill;
// false when the disk tier is off, the key is already persisted, or another
// goroutine's write is in flight.
func (s *Store) claimSpillLocked(key string) bool {
	if s.dir == "" || s.spilling[key] {
		return false
	}
	if _, ok := s.diskIdx[key]; ok {
		return false
	}
	s.spilling[key] = true
	return true
}

// claimSpillsLocked reserves writes for evicted entries that are not yet on
// disk. With write-through they normally already are; this covers an
// earlier write that failed transiently. An entry evicted while its
// original write is still in flight is skipped — if that write then fails
// the result is lost from both tiers, which is acceptable for a cache.
func (s *Store) claimSpillsLocked(writes []spillJob, evicted []*entry) []spillJob {
	for _, e := range evicted {
		if s.claimSpillLocked(e.key) {
			writes = append(writes, spillJob{key: e.key, st: e.st})
		}
	}
	return writes
}

// writeSpills performs reserved spill writes; the caller must not hold mu.
func (s *Store) writeSpills(writes []spillJob) {
	for _, w := range writes {
		b := w.data
		if b == nil {
			var err error
			if b, err = json.Marshal(w.st); err != nil {
				s.finishSpill(w.key, 0, err)
				continue
			}
		}
		n, err := s.writeSpill(w.key, b)
		s.finishSpill(w.key, n, err)
	}
}

// finishSpill confirms or rolls back a reserved spill write.
func (s *Store) finishSpill(key string, n int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.spilling, key)
	if err != nil {
		s.diskErrors++
		return
	}
	s.diskIdx[key] = n
	s.dBytes += n
	s.spills++
}

// admitLocked inserts into the memory tier and evicts from the cold end
// until the byte budget holds again, returning the evicted entries so the
// caller can re-spill any whose write-through failed. encoded is the size
// of the value's JSON encoding (what a spill file holds). The entry being
// admitted is never the eviction victim, so even an over-budget result
// serves its job.
func (s *Store) admitLocked(key string, st *stats.Sim, encoded int64) []*entry {
	if el, ok := s.idx[key]; ok {
		s.ll.MoveToFront(el)
		return nil
	}
	e := &entry{key: key, st: st, size: encoded + int64(len(key)) + entryOverhead}
	s.idx[key] = s.ll.PushFront(e)
	s.memBytes += e.size
	var evicted []*entry
	for s.maxBytes > 0 && s.memBytes > s.maxBytes && s.ll.Len() > 1 {
		evicted = append(evicted, s.evictLocked(s.ll.Back()))
	}
	return evicted
}

// evictLocked removes the given element from the memory tier and returns
// its entry. With the disk tier enabled the entry was normally written
// through at admission, so this only drops the resident copy; the caller
// re-claims a spill for it when that write failed.
func (s *Store) evictLocked(el *list.Element) *entry {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.idx, e.key)
	s.memBytes -= e.size
	s.evictions++
	return e
}

// spillPath is the content-addressed file for key. Keys are hex hashes; any
// other shape is refused so a crafted key cannot escape the cache dir.
func (s *Store) spillPath(key string) (string, bool) {
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return "", false
	}
	return filepath.Join(s.dir, key+".json"), true
}

// writeSpill persists pre-encoded bytes for key (tmp + atomic rename). The
// caller must not hold mu; s.dir is immutable after construction.
func (s *Store) writeSpill(key string, b []byte) (int64, error) {
	path, ok := s.spillPath(key)
	if !ok {
		return 0, os.ErrInvalid
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return int64(len(b)), nil
}

// readSpill loads key's spill file, returning the decoded stats and the
// file's byte length. The caller must not hold mu.
func (s *Store) readSpill(key string) (*stats.Sim, int64, error) {
	path, ok := s.spillPath(key)
	if !ok {
		return nil, 0, os.ErrInvalid
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	st := new(stats.Sim)
	if err := json.Unmarshal(b, st); err != nil {
		return nil, 0, err
	}
	return st, int64(len(b)), nil
}

// dropSpill removes a corrupt or unreadable spill file and its accounting;
// the file delete runs outside the lock.
func (s *Store) dropSpill(key string) {
	s.mu.Lock()
	if n, ok := s.diskIdx[key]; ok {
		delete(s.diskIdx, key)
		s.dBytes -= n
	}
	s.diskErrors++
	s.mu.Unlock()
	if path, ok := s.spillPath(key); ok {
		os.Remove(path)
	}
}

// encodedSize is the byte cost charged for one result: its canonical JSON
// encoding, which is also exactly what a spill file holds.
func encodedSize(st *stats.Sim) int64 {
	b, err := json.Marshal(st)
	if err != nil {
		return 0
	}
	return int64(len(b))
}

// StoreStats is a consistent snapshot of the store for metrics.
type StoreStats struct {
	MemEntries, MemBytes   int64
	DiskEntries, DiskBytes int64
	Entries                int64 // unique keys resident in memory ∪ disk
	MemHits, DiskHits      int64
	PeerHits, Misses       int64
	Evictions, Spills      int64
	DiskErrors             int64
}

// Snap returns the current tier gauges and counters.
func (s *Store) Snap() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		MemEntries: int64(s.ll.Len()), MemBytes: s.memBytes,
		DiskEntries: int64(len(s.diskIdx)), DiskBytes: s.dBytes,
		MemHits: s.memHits, DiskHits: s.diskHits,
		PeerHits: s.peerHits, Misses: s.misses,
		Evictions: s.evictions, Spills: s.spills,
		DiskErrors: s.diskErrors,
	}
	st.Entries = st.MemEntries
	for k := range s.diskIdx {
		if _, ok := s.idx[k]; !ok {
			st.Entries++
		}
	}
	return st
}
