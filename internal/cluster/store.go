package cluster

import (
	"container/list"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"snake/internal/stats"
)

// Tier identifies where a Store lookup was satisfied.
type Tier int

// Lookup tiers, cheapest first.
const (
	TierNone   Tier = iota // miss everywhere
	TierMemory             // resident LRU
	TierDisk               // content-addressed spill file
	TierPeer               // fetched from the owning peer's cache
)

// String names the tier for RunView.Source and metrics labels.
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	case TierPeer:
		return "peer"
	default:
		return "none"
	}
}

// StoreOptions configures a tiered result store.
type StoreOptions struct {
	// MaxBytes bounds the in-memory tier (entry sizes are their JSON
	// encodings plus key overhead). <= 0 means unbounded, which preserves
	// the original flat-map behavior.
	MaxBytes int64
	// Dir enables the disk tier: every admitted result is written through to
	// a content-addressed file here, so eviction from the memory tier only
	// drops the resident copy and files present at startup are served (the
	// whole cache survives restarts). Empty disables it, making eviction a
	// plain drop.
	Dir string
	// PeerFetch, when non-nil, is the tier-3 lookup consulted after a local
	// miss (typically Cluster.FetchResult). A hit is admitted to the memory
	// tier.
	PeerFetch func(ctx context.Context, key string) (*stats.Sim, bool)
}

// entryOverhead approximates per-entry bookkeeping (map slot, list element,
// key string) charged against MaxBytes on top of the encoded value.
const entryOverhead = 128

// Store is the content-addressed result cache behind snaked: keys are
// harness.RunKey hashes, values are completed simulation stats. Tier 1 is a
// byte-accounted LRU; tier 2 (disk, when enabled) holds every result via
// write-through, so eviction only drops the memory copy and the long tail
// of a big sweep persists cheaply while hot (bench, mech, config) shapes
// stay resident; tier 3 asks the owning peer. Simulations are
// deterministic, so entries never expire and first write wins.
type Store struct {
	maxBytes  int64
	dir       string
	peerFetch func(ctx context.Context, key string) (*stats.Sim, bool)

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	idx      map[string]*list.Element
	memBytes int64
	diskIdx  map[string]int64 // key -> spill file size in bytes
	dBytes   int64

	memHits, diskHits, peerHits, misses int64
	evictions, spills                   int64
	diskErrors                          int64
}

type entry struct {
	key  string
	st   *stats.Sim
	size int64
}

// NewStore builds the store. A Dir that cannot be created or scanned
// disables the disk tier (counted in DiskErrors) rather than failing: the
// store is a cache, and a cache that cannot spill still serves.
func NewStore(opt StoreOptions) *Store {
	s := &Store{
		maxBytes:  opt.MaxBytes,
		dir:       opt.Dir,
		peerFetch: opt.PeerFetch,
		ll:        list.New(),
		idx:       make(map[string]*list.Element),
		diskIdx:   make(map[string]int64),
	}
	if s.dir != "" {
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			s.dir = ""
			s.diskErrors++
			return s
		}
		ents, err := os.ReadDir(s.dir)
		if err != nil {
			s.dir = ""
			s.diskErrors++
			return s
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".json") {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			s.diskIdx[strings.TrimSuffix(name, ".json")] = info.Size()
			s.dBytes += info.Size()
		}
	}
	return s
}

// SetPeerFetch installs the tier-3 lookup after construction (the service
// wires the cluster in once both exist).
func (s *Store) SetPeerFetch(f func(ctx context.Context, key string) (*stats.Sim, bool)) {
	s.peerFetch = f
}

// Get looks key up through all three tiers. The returned Tier reports which
// one answered; TierNone means a miss everywhere.
func (s *Store) Get(ctx context.Context, key string) (*stats.Sim, Tier) {
	if st, tier := s.GetLocal(key); st != nil {
		return st, tier
	}
	if s.peerFetch != nil {
		if st, ok := s.peerFetch(ctx, key); ok {
			s.mu.Lock()
			s.peerHits++
			s.admitLocked(key, st)
			s.spillThroughLocked(key, st)
			s.mu.Unlock()
			return st, TierPeer
		}
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil, TierNone
}

// GetLocal looks key up in the local tiers only (memory, then disk) — the
// peer cache endpoint serves from this, so cross-node lookups never
// recurse. A disk hit is promoted into the memory tier; its spill file is
// kept, making re-eviction free.
func (s *Store) GetLocal(key string) (*stats.Sim, Tier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.idx[key]; ok {
		s.ll.MoveToFront(el)
		s.memHits++
		return el.Value.(*entry).st, TierMemory
	}
	if _, ok := s.diskIdx[key]; ok {
		st, err := s.readSpill(key)
		if err != nil {
			// Corrupt or unreadable spill: drop it and treat as a miss.
			s.dropSpillLocked(key)
			s.diskErrors++
			return nil, TierNone
		}
		s.diskHits++
		s.admitLocked(key, st)
		return st, TierDisk
	}
	return nil, TierNone
}

// Put stores a completed result, writing through to the disk tier when
// enabled. First write wins: the simulations are deterministic, so a
// concurrent duplicate computed the same stats.
func (s *Store) Put(key string, st *stats.Sim) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.admitLocked(key, st)
	s.spillThroughLocked(key, st)
}

// spillThroughLocked persists st to the disk tier unless it is already
// there (or the tier is disabled). Write-through makes eviction a pure
// memory-accounting operation and means a restart loses nothing.
func (s *Store) spillThroughLocked(key string, st *stats.Sim) {
	if s.dir == "" {
		return
	}
	if _, ok := s.diskIdx[key]; ok {
		return
	}
	n, err := s.writeSpill(key, st)
	if err != nil {
		s.diskErrors++
		return
	}
	s.diskIdx[key] = n
	s.dBytes += n
	s.spills++
}

// admitLocked inserts into the memory tier and evicts from the cold end
// until the byte budget holds again. The entry being admitted is never the
// eviction victim, so even an over-budget result serves its job.
func (s *Store) admitLocked(key string, st *stats.Sim) {
	if el, ok := s.idx[key]; ok {
		s.ll.MoveToFront(el)
		return
	}
	e := &entry{key: key, st: st, size: encodedSize(st) + int64(len(key)) + entryOverhead}
	s.idx[key] = s.ll.PushFront(e)
	s.memBytes += e.size
	for s.maxBytes > 0 && s.memBytes > s.maxBytes && s.ll.Len() > 1 {
		s.evictLocked(s.ll.Back())
	}
}

// evictLocked removes the given element from the memory tier. With the
// disk tier enabled the entry was already written through at admission, so
// this only drops the resident copy (spilling here again covers the rare
// case where the earlier write failed transiently).
func (s *Store) evictLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.idx, e.key)
	s.memBytes -= e.size
	s.evictions++
	if s.dir != "" {
		s.spillThroughLocked(e.key, e.st)
	}
}

// spillPath is the content-addressed file for key. Keys are hex hashes; any
// other shape is refused so a crafted key cannot escape the cache dir.
func (s *Store) spillPath(key string) (string, bool) {
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return "", false
	}
	return filepath.Join(s.dir, key+".json"), true
}

func (s *Store) writeSpill(key string, st *stats.Sim) (int64, error) {
	path, ok := s.spillPath(key)
	if !ok {
		return 0, os.ErrInvalid
	}
	b, err := json.Marshal(st)
	if err != nil {
		return 0, err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return int64(len(b)), nil
}

func (s *Store) readSpill(key string) (*stats.Sim, error) {
	path, ok := s.spillPath(key)
	if !ok {
		return nil, os.ErrInvalid
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st := new(stats.Sim)
	if err := json.Unmarshal(b, st); err != nil {
		return nil, err
	}
	return st, nil
}

func (s *Store) dropSpillLocked(key string) {
	if n, ok := s.diskIdx[key]; ok {
		delete(s.diskIdx, key)
		s.dBytes -= n
	}
	if path, ok := s.spillPath(key); ok {
		os.Remove(path)
	}
}

// encodedSize is the byte cost charged for one result: its canonical JSON
// encoding, which is also exactly what a spill file holds.
func encodedSize(st *stats.Sim) int64 {
	b, err := json.Marshal(st)
	if err != nil {
		return 0
	}
	return int64(len(b))
}

// StoreStats is a consistent snapshot of the store for metrics.
type StoreStats struct {
	MemEntries, MemBytes   int64
	DiskEntries, DiskBytes int64
	Entries                int64 // unique keys resident in memory ∪ disk
	MemHits, DiskHits      int64
	PeerHits, Misses       int64
	Evictions, Spills      int64
	DiskErrors             int64
}

// Snap returns the current tier gauges and counters.
func (s *Store) Snap() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		MemEntries: int64(s.ll.Len()), MemBytes: s.memBytes,
		DiskEntries: int64(len(s.diskIdx)), DiskBytes: s.dBytes,
		MemHits: s.memHits, DiskHits: s.diskHits,
		PeerHits: s.peerHits, Misses: s.misses,
		Evictions: s.evictions, Spills: s.spills,
		DiskErrors: s.diskErrors,
	}
	st.Entries = st.MemEntries
	for k := range s.diskIdx {
		if _, ok := s.idx[k]; !ok {
			st.Entries++
		}
	}
	return st
}
