package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// keyOwnedBy finds a well-formed (hex, 64-char) cache key the given node
// owns under the rendezvous hash.
func keyOwnedBy(t *testing.T, owner string, nodes []string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("%064x", i)
		if Owner(k, nodes) == owner {
			return k
		}
	}
	t.Fatal("no key owned by node; rendezvous hash degenerate")
	return ""
}

// TestFetchResult5xxMarksPeerDown: a peer answering 5xx is a peer failure,
// not a cache miss — the fetch counts as an error and the peer is latched
// down so it is not re-queried on every subsequent lookup.
func TestFetchResult5xxMarksPeerDown(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := New(Options{Self: "http://self.invalid", Peers: []string{ts.URL}, DownFor: time.Minute})
	k := keyOwnedBy(t, ts.URL, c.Nodes())

	if st, ok := c.FetchResult(context.Background(), k); ok || st != nil {
		t.Fatal("5xx fetch reported a hit")
	}
	snap := c.Snap()
	if snap.FetchErrors != 1 || snap.FetchMisses != 0 {
		t.Errorf("5xx accounting: errors=%d misses=%d, want 1 error and no miss",
			snap.FetchErrors, snap.FetchMisses)
	}
	if c.peers[ts.URL].Alive() {
		t.Error("peer still alive after 5xx; want latched down")
	}
	if _, ok := c.FetchResult(context.Background(), k); ok {
		t.Fatal("hit from a down peer")
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Errorf("peer queried %d times, want 1 (down latch must stop re-queries)", got)
	}
}

// TestFetchResult404IsMiss: a clean remote miss stays a miss — counted as
// such, peer health untouched.
func TestFetchResult404IsMiss(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer ts.Close()
	c := New(Options{Self: "http://self.invalid", Peers: []string{ts.URL}})
	k := keyOwnedBy(t, ts.URL, c.Nodes())

	if _, ok := c.FetchResult(context.Background(), k); ok {
		t.Fatal("404 fetch reported a hit")
	}
	snap := c.Snap()
	if snap.FetchMisses != 1 || snap.FetchErrors != 0 {
		t.Errorf("404 accounting: misses=%d errors=%d, want 1 miss and no error",
			snap.FetchMisses, snap.FetchErrors)
	}
	if !c.peers[ts.URL].Alive() {
		t.Error("peer marked down by a plain miss")
	}
}
