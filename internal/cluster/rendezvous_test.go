package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// testKeys returns n hex keys shaped like harness.RunKey hashes.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("cell-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

// TestOwnerStable: ownership is deterministic and independent of the order
// the member set is listed in — the property that lets every node compute
// ownership locally.
func TestOwnerStable(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	perms := [][]string{
		{nodes[0], nodes[1], nodes[2]},
		{nodes[2], nodes[0], nodes[1]},
		{nodes[1], nodes[2], nodes[0]},
	}
	for _, key := range testKeys(200) {
		want := Owner(key, perms[0])
		for _, p := range perms[1:] {
			if got := Owner(key, p); got != want {
				t.Fatalf("Owner(%s) order-dependent: %s vs %s", key[:8], got, want)
			}
		}
		// And repeated calls agree (pure function of inputs).
		if again := Owner(key, perms[0]); again != want {
			t.Fatalf("Owner(%s) nondeterministic: %s vs %s", key[:8], again, want)
		}
	}
}

// TestOwnerBalanced: across 2–5 simulated peers, every node owns a fair
// share of a large key population (within 2x of ideal in both directions —
// loose enough for a 64-bit hash over 2000 keys, tight enough to catch a
// broken hash that dumps everything on one node).
func TestOwnerBalanced(t *testing.T) {
	keys := testKeys(2000)
	for n := 2; n <= 5; n++ {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("http://node%d:8080", i)
		}
		counts := make(map[string]int)
		for _, k := range keys {
			counts[Owner(k, nodes)]++
		}
		ideal := len(keys) / n
		for _, node := range nodes {
			got := counts[node]
			if got < ideal/2 || got > ideal*2 {
				t.Errorf("%d nodes: %s owns %d keys, want within [%d, %d]",
					n, node, got, ideal/2, ideal*2)
			}
		}
	}
}

// TestOwnerMonotone: growing the member set only moves keys to the new
// node — the rendezvous property that makes scale-out cheap (no reshuffle
// among survivors).
func TestOwnerMonotone(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	grown := append([]string{"http://d:8080"}, nodes...)
	moved := 0
	for _, key := range testKeys(1000) {
		before := Owner(key, nodes)
		after := Owner(key, grown)
		if after != before {
			if after != "http://d:8080" {
				t.Fatalf("key %s moved %s → %s, not to the new node", key[:8], before, after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Error("no keys moved to the new node; hash not spreading")
	}
}

func TestClusterOwnerOf(t *testing.T) {
	a := New(Options{Self: "http://a:1", Peers: []string{"http://b:1"}})
	b := New(Options{Self: "http://b:1", Peers: []string{"http://a:1/"}}) // trailing slash normalized
	sawSelf, sawPeer := false, false
	for _, key := range testKeys(64) {
		ownerA, selfA := a.OwnerOf(key)
		ownerB, selfB := b.OwnerOf(key)
		if ownerA != ownerB {
			t.Fatalf("nodes disagree on owner of %s: %s vs %s", key[:8], ownerA, ownerB)
		}
		if selfA == selfB {
			t.Fatalf("both nodes claim (or disclaim) ownership of %s", key[:8])
		}
		if selfA {
			sawSelf = true
		} else {
			sawPeer = true
		}
	}
	if !sawSelf || !sawPeer {
		t.Error("64 keys all landed on one node; hash not spreading")
	}
}
