// Package energy models GPU energy consumption in the style of AccelWattch
// (§4): static power integrated over the run plus per-event dynamic
// energies. Absolute joules are not the point — the paper's Figure 19 and
// 24 report energy normalized to the baseline, which depends on the ratio
// of runtime savings (static energy) to added memory traffic (dynamic
// energy). Snake's own table overheads use the paper's measured values
// (6.4 pJ per access, 6 mW static per SM, §5.5).
package energy

import (
	"snake/internal/config"
	"snake/internal/stats"
)

// Model holds the energy parameters.
type Model struct {
	// Static power in watts, for the whole modelled GPU.
	StaticPerSMW float64 // per-SM static power
	MemStaticW   float64 // L2 + DRAM + interconnect static power

	// Dynamic energies in nanojoules per event.
	InstNJ     float64 // per retired warp instruction
	L1AccessNJ float64 // per L1 access (any outcome)
	L2AccessNJ float64 // per request reaching the L2
	DRAMReadNJ float64 // per DRAM line fetch
	IcntByteNJ float64 // per byte moved on the interconnect

	// Snake overheads (§5.5).
	TableAccessPJ float64 // per prefetcher table access
	TableStaticMW float64 // per-SM static overhead
}

// Default returns the model parameters used by the experiments.
func Default() Model {
	return Model{
		StaticPerSMW:  2.0,
		MemStaticW:    12.0,
		InstNJ:        0.05,
		L1AccessNJ:    0.08,
		L2AccessNJ:    0.15,
		DRAMReadNJ:    2.0,
		IcntByteNJ:    0.002,
		TableAccessPJ: 6.4,
		TableStaticMW: 6.0,
	}
}

// Result breaks an energy estimate into components (joules).
type Result struct {
	StaticJ   float64
	DynamicJ  float64
	OverheadJ float64 // prefetcher tables
}

// Total returns the summed energy in joules.
func (r Result) Total() float64 { return r.StaticJ + r.DynamicJ + r.OverheadJ }

// Estimate computes the energy of a run. withPrefetcher adds the Snake-style
// table overheads (used for every hardware prefetcher; the Ideal oracle
// passes false).
func (m Model) Estimate(st *stats.Sim, cfg config.GPU, withPrefetcher bool) Result {
	seconds := float64(st.Cycles) / (float64(cfg.CoreClockMHz) * 1e6)
	var r Result
	r.StaticJ = (m.StaticPerSMW*float64(cfg.NumSM) + m.MemStaticW) * seconds

	l2Accesses := st.L1[stats.L1Miss] + st.Pf.Issued
	r.DynamicJ = m.InstNJ*1e-9*float64(st.Insts) +
		m.L1AccessNJ*1e-9*float64(st.L1Accesses()) +
		m.L2AccessNJ*1e-9*float64(l2Accesses) +
		m.DRAMReadNJ*1e-9*float64(st.DRAMReads) +
		m.IcntByteNJ*1e-9*float64(st.IcntBytes)

	if withPrefetcher {
		// Each demand load consults the tables; each issued prefetch writes.
		accesses := float64(st.Loads + st.Pf.Issued)
		r.OverheadJ = m.TableAccessPJ*1e-12*accesses +
			m.TableStaticMW*1e-3*float64(cfg.NumSM)*seconds
	}
	return r
}
