package energy

import (
	"testing"

	"snake/internal/config"
	"snake/internal/stats"
)

func sampleStats(cycles, insts int64) *stats.Sim {
	s := &stats.Sim{Cycles: cycles, Insts: insts, Loads: insts / 3}
	s.L1[stats.L1Hit] = insts / 4
	s.L1[stats.L1Miss] = insts / 8
	s.DRAMReads = insts / 10
	s.IcntBytes = insts * 16
	return s
}

func TestStaticScalesWithRuntime(t *testing.T) {
	m := Default()
	cfg := config.Scaled(4, 32)
	short := m.Estimate(sampleStats(1000, 100), cfg, false)
	long := m.Estimate(sampleStats(2000, 100), cfg, false)
	if long.StaticJ <= short.StaticJ {
		t.Error("static energy must grow with runtime")
	}
	if long.DynamicJ != short.DynamicJ {
		t.Error("dynamic energy must not depend on runtime")
	}
}

func TestFasterRunUsesLessTotalEnergy(t *testing.T) {
	// Same work, 20% fewer cycles, modest extra traffic: net win — the
	// Figure 19 mechanism.
	m := Default()
	cfg := config.Scaled(4, 32)
	base := sampleStats(10000, 5000)
	fast := sampleStats(8000, 5000)
	fast.Pf.Issued = 500
	e0 := m.Estimate(base, cfg, false).Total()
	e1 := m.Estimate(fast, cfg, true).Total()
	if e1 >= e0 {
		t.Errorf("faster run consumed more energy: %.3g >= %.3g", e1, e0)
	}
}

func TestOverheadOnlyWithPrefetcher(t *testing.T) {
	m := Default()
	cfg := config.Scaled(4, 32)
	st := sampleStats(1000, 300)
	without := m.Estimate(st, cfg, false)
	with := m.Estimate(st, cfg, true)
	if without.OverheadJ != 0 {
		t.Error("baseline must have no table overhead")
	}
	if with.OverheadJ <= 0 {
		t.Error("prefetcher run must have table overhead")
	}
	// The overhead must be tiny relative to total (paper: <1%).
	if with.OverheadJ > 0.01*with.Total() {
		t.Errorf("table overhead %.3g is more than 1%% of %.3g", with.OverheadJ, with.Total())
	}
}

func TestComponentsSumToTotal(t *testing.T) {
	m := Default()
	cfg := config.Scaled(2, 16)
	r := m.Estimate(sampleStats(5000, 2000), cfg, true)
	if got := r.StaticJ + r.DynamicJ + r.OverheadJ; got != r.Total() {
		t.Errorf("Total %.6g != sum %.6g", r.Total(), got)
	}
}

func TestMoreSMsMoreStatic(t *testing.T) {
	m := Default()
	st := sampleStats(1000, 100)
	small := m.Estimate(st, config.Scaled(2, 32), false)
	big := m.Estimate(st, config.Scaled(8, 32), false)
	if big.StaticJ <= small.StaticJ {
		t.Error("static power must scale with SM count")
	}
}
