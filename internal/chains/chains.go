// Package chains mines chains of strides from kernel load traces offline,
// reproducing the paper's motivational trace-based analysis: the fraction of
// load PCs participating in chains (Figure 9), the maximum repetition of a
// chain within a representative warp (Figure 10), and the fraction of
// dynamic accesses prefetchable by chains versus the MTA mechanisms
// (Figure 11).
package chains

import (
	"sort"

	"snake/internal/trace"
)

// MinRepeat is the confirmation threshold used throughout: a stride (or
// chain link) must be observed this many times before it counts as
// trainable, matching Snake's three-warp promotion rule.
const MinRepeat = 3

// link identifies one chain edge: a consecutive load-PC pair and the stride
// between their addresses.
type link struct {
	pc1, pc2 uint64
	delta    int64
}

// Stats is the result of mining one kernel.
type Stats struct {
	// TotalPCs is the number of static load PCs in the representative warp.
	TotalPCs int
	// ChainPCs is how many of them participate in at least one stable chain
	// link (Figure 9's numerator).
	ChainPCs int
	// MaxRepetition is the highest repetition count of any chain within the
	// representative warp (Figure 10).
	MaxRepetition int
	// ChainCoverage is the fraction of all dynamic loads prefetchable with
	// trained chain links (Figure 11, chains series).
	ChainCoverage float64
	// MTACoverage is the fraction prefetchable by MTA's intra-warp +
	// inter-warp fixed strides (Figure 11, MTA series).
	MTACoverage float64
	// Links enumerates the stable links of the representative warp, most
	// frequent first (used by the chain-explorer example).
	Links []LinkInfo
}

// LinkInfo describes one stable chain link.
type LinkInfo struct {
	PC1, PC2 uint64
	Delta    int64
	Count    int
}

// PCFraction returns ChainPCs / TotalPCs.
func (s Stats) PCFraction() float64 {
	if s.TotalPCs == 0 {
		return 0
	}
	return float64(s.ChainPCs) / float64(s.TotalPCs)
}

// Analyze mines the kernel.
func Analyze(k *trace.Kernel) Stats {
	var st Stats
	rep := k.RepresentativeWarp()
	if rep == nil {
		return st
	}
	st.TotalPCs = len(rep.LoadPCs())

	// Stable links within the representative warp.
	repLinks := countLinks(rep)
	chainPCs := make(map[uint64]bool)
	maxRep := 0
	for l, n := range repLinks {
		if n >= MinRepeat {
			chainPCs[l.pc1] = true
			chainPCs[l.pc2] = true
			if n > maxRep {
				maxRep = n
			}
			st.Links = append(st.Links, LinkInfo{PC1: l.pc1, PC2: l.pc2, Delta: l.delta, Count: n})
		}
	}
	sort.Slice(st.Links, func(i, j int) bool {
		if st.Links[i].Count != st.Links[j].Count {
			return st.Links[i].Count > st.Links[j].Count
		}
		return st.Links[i].PC1 < st.Links[j].PC1
	})
	st.ChainPCs = len(chainPCs)
	st.MaxRepetition = maxRep

	st.ChainCoverage, st.MTACoverage = dynamicCoverage(k)
	return st
}

// countLinks tallies consecutive-load links of one warp.
func countLinks(w *trace.WarpProgram) map[link]int {
	loads := w.Loads()
	out := make(map[link]int)
	for i := 1; i < len(loads); i++ {
		out[link{loads[i-1].PC, loads[i].PC, int64(loads[i].Addr) - int64(loads[i-1].Addr)}]++
	}
	return out
}

// dynamicCoverage replays all warps round-robin (approximating concurrent
// execution) and counts, per dynamic load, whether it would have been
// prefetchable by (a) a previously trained chain link and (b) MTA's
// intra-warp or inter-warp fixed stride.
func dynamicCoverage(k *trace.Kernel) (chain, mta float64) {
	type cursor struct {
		loads []trace.Inst
		pos   int
		warp  int
	}
	var cursors []cursor
	warpID := 0
	for ci := range k.CTAs {
		for wi := range k.CTAs[ci].Warps {
			cursors = append(cursors, cursor{loads: k.CTAs[ci].Warps[wi].Loads(), warp: warpID})
			warpID++
		}
	}

	linkSeen := make(map[link]int)
	// Self-links: a PC chained with itself across re-executions — Snake's
	// pc1 == pc2 Tail entries (§3.1's intra-warp case 1). They are part of
	// the chains-of-strides model, not only of MTA.
	type selfKey struct {
		pc    uint64
		delta int64
	}
	selfSeen := make(map[selfKey]int)
	type lastKey struct {
		warp int
		pc   uint64
	}
	lastExec := make(map[lastKey]uint64)
	type intraKey struct {
		warp int
		pc   uint64
	}
	type intraState struct {
		last   uint64
		stride int64
		conf   int
	}
	intra := make(map[intraKey]*intraState)
	type interState struct {
		last   uint64
		lastW  int
		stride int64
		conf   int
	}
	inter := make(map[uint64]*interState)
	prevLoad := make(map[int]trace.Inst)
	prevOK := make(map[int]bool)

	var total, chainCov, mtaCov int
	active := len(cursors)
	for active > 0 {
		active = 0
		for i := range cursors {
			c := &cursors[i]
			if c.pos >= len(c.loads) {
				continue
			}
			active++
			in := c.loads[c.pos]
			c.pos++
			total++

			covChain, covMTA := false, false

			// Chain: the incoming link was trained before this access.
			if prevOK[c.warp] {
				l := link{prevLoad[c.warp].PC, in.PC, int64(in.Addr) - int64(prevLoad[c.warp].Addr)}
				if linkSeen[l] >= MinRepeat {
					covChain = true
				}
				linkSeen[l]++
			}
			prevLoad[c.warp] = in
			prevOK[c.warp] = true

			// Self-link: the PC's re-execution stride within this warp.
			lk := lastKey{c.warp, in.PC}
			if last, ok := lastExec[lk]; ok {
				sk := selfKey{in.PC, int64(in.Addr) - int64(last)}
				if selfSeen[sk] >= MinRepeat {
					covChain = true
				}
				selfSeen[sk]++
			}
			lastExec[lk] = in.Addr

			// MTA intra-warp: per (warp, PC) fixed stride.
			ik := intraKey{c.warp, in.PC}
			if s, ok := intra[ik]; ok {
				d := int64(in.Addr) - int64(s.last)
				if d == s.stride && d != 0 {
					if s.conf >= 2 {
						covMTA = true
					}
					s.conf++
				} else {
					s.stride = d
					s.conf = 1
				}
				s.last = in.Addr
			} else {
				intra[ik] = &intraState{last: in.Addr}
			}

			// MTA inter-warp: per-PC fixed stride between warps.
			if s, ok := inter[in.PC]; ok {
				if dw := c.warp - s.lastW; dw != 0 {
					d := (int64(in.Addr) - int64(s.last)) / int64(dw)
					if d == s.stride && d != 0 {
						if s.conf >= MinRepeat-1 {
							covMTA = true
						}
						s.conf++
					} else {
						s.stride = d
						s.conf = 1
					}
				}
				s.last = in.Addr
				s.lastW = c.warp
			} else {
				inter[in.PC] = &interState{last: in.Addr, lastW: c.warp}
			}

			if covChain {
				chainCov++
			}
			if covMTA {
				mtaCov++
			}
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(chainCov) / float64(total), float64(mtaCov) / float64(total)
}
