package chains

import (
	"testing"

	"snake/internal/trace"
	"snake/internal/workloads"
)

// chainKernel builds a kernel with a known chain structure: per warp,
// iterations of loads at pc 0x10 and 0x18 with fixed delta 64 and a fixed
// per-iteration step.
func chainKernel(warps, iters int) *trace.Kernel {
	k := &trace.Kernel{Name: "chain-test"}
	cta := trace.CTA{ID: 0}
	for w := 0; w < warps; w++ {
		b := trace.NewBuilder()
		p := uint64(0x10000 + w*0x10000)
		for i := 0; i < iters; i++ {
			b.Load(0x10, p, 4)
			b.Load(0x18, p+64, 4)
			p += 4096
		}
		wp := b.Exit(0x20)
		wp.IDInCTA = w
		cta.Warps = append(cta.Warps, wp)
	}
	k.CTAs = append(k.CTAs, cta)
	return k
}

func TestAnalyzeDetectsChainPCs(t *testing.T) {
	st := Analyze(chainKernel(4, 10))
	if st.TotalPCs != 2 {
		t.Fatalf("TotalPCs = %d, want 2", st.TotalPCs)
	}
	if st.ChainPCs != 2 {
		t.Fatalf("ChainPCs = %d, want 2 (both PCs participate)", st.ChainPCs)
	}
	if st.PCFraction() != 1.0 {
		t.Errorf("PCFraction = %v", st.PCFraction())
	}
}

func TestMaxRepetitionCountsIterations(t *testing.T) {
	st := Analyze(chainKernel(4, 10))
	// The 0x10->0x18 (+64) link occurs once per iteration: 10 times.
	if st.MaxRepetition != 10 {
		t.Errorf("MaxRepetition = %d, want 10", st.MaxRepetition)
	}
}

func TestDynamicCoverageHighForRegularChains(t *testing.T) {
	st := Analyze(chainKernel(8, 20))
	if st.ChainCoverage < 0.6 {
		t.Errorf("ChainCoverage = %.2f, want high for a perfectly regular chain", st.ChainCoverage)
	}
	// Per-PC strides are fixed too, so MTA also covers here.
	if st.MTACoverage < 0.5 {
		t.Errorf("MTACoverage = %.2f", st.MTACoverage)
	}
}

func TestRandomKernelHasNoChains(t *testing.T) {
	k := workloads.RandomMicro(workloads.Tiny())
	st := Analyze(k)
	if st.ChainCoverage > 0.1 {
		t.Errorf("ChainCoverage = %.2f on random addresses", st.ChainCoverage)
	}
	if st.MTACoverage > 0.1 {
		t.Errorf("MTACoverage = %.2f on random addresses", st.MTACoverage)
	}
}

func TestChainOnlyMicroSeparatesChainsFromMTA(t *testing.T) {
	// ChainOnlyMicro has fixed within-iteration deltas but varying
	// per-iteration steps: chains must beat MTA's fixed strides clearly.
	k := workloads.ChainOnlyMicro(workloads.Scale{CTAs: 4, WarpsPerCTA: 4, Iters: 10})
	st := Analyze(k)
	if st.ChainCoverage < st.MTACoverage+0.2 {
		t.Errorf("chains %.2f vs MTA %.2f: expected a clear chain advantage",
			st.ChainCoverage, st.MTACoverage)
	}
}

func TestLinksSortedByFrequency(t *testing.T) {
	st := Analyze(chainKernel(2, 8))
	for i := 1; i < len(st.Links); i++ {
		if st.Links[i].Count > st.Links[i-1].Count {
			t.Fatalf("links not sorted by count: %v", st.Links)
		}
	}
}

func TestEmptyKernel(t *testing.T) {
	k := &trace.Kernel{Name: "empty"}
	st := Analyze(k)
	if st.TotalPCs != 0 || st.ChainCoverage != 0 {
		t.Errorf("empty kernel stats: %+v", st)
	}
}
