package chains_test

import (
	"fmt"

	"snake/internal/chains"
	"snake/internal/trace"
)

// Example mines a small warp trace whose two load PCs form a chain with a
// fixed 64-byte inter-thread stride.
func Example() {
	var cta trace.CTA
	for w := 0; w < 4; w++ {
		b := trace.NewBuilder()
		p := uint64(0x1000_0000 + w*0x8000)
		for i := 0; i < 6; i++ {
			b.Load(0x10, p, 4)
			b.Load(0x18, p+64, 4) // the chain link: always +64
			p += 4096
		}
		wp := b.Exit(0x20)
		wp.IDInCTA = w
		cta.Warps = append(cta.Warps, wp)
	}
	k := &trace.Kernel{Name: "example", CTAs: []trace.CTA{cta}}

	st := chains.Analyze(k)
	fmt.Printf("%d of %d load PCs participate in chains\n", st.ChainPCs, st.TotalPCs)
	fmt.Printf("strongest link: %#x -> %#x stride %+d (x%d)\n",
		st.Links[0].PC1, st.Links[0].PC2, st.Links[0].Delta, st.Links[0].Count)
	// Output:
	// 2 of 2 load PCs participate in chains
	// strongest link: 0x10 -> 0x18 stride +64 (x6)
}
