package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"snake/internal/config"
	"snake/internal/prefetch"
	"snake/internal/workloads"
)

// slackMechs widens parMechs to the full mechanism spread the slack property
// test sweeps: every distinct cross-boundary traffic shape (demand-only,
// chained prefetch, history tables, tree/graph walkers, magic fills).
func slackMechs() map[string]func(int) prefetch.Prefetcher {
	m := parMechs()
	m["tree"] = func(int) prefetch.Prefetcher { return prefetch.NewTree() }
	m["interwarp"] = func(int) prefetch.Prefetcher { return prefetch.NewInterWarp() }
	return m
}

// TestSlackHorizonBoundsObservedLatencies is the empirical half of the slack
// soundness argument. The config audit (config.SlackBound) proves no message
// can cross between the SM side and the memory side in fewer than bound
// cycles; this test stamps every port crossing in real runs — all benchmarks
// × six mechanisms — and checks the derived bound against the smallest
// latency any message actually exhibited:
//
//   - response delivery (L2 → SM fill) must take ≥ bound cycles,
//   - L2 data-ready (partition arrival → response sendable) must take
//     ≥ bound cycles,
//   - request delivery is injected with the horizon already spent as the
//     front segment of its interconnect flight (see drainMissQueues), so its
//     residual latency plus that front segment must still be ≥ bound, and
//     the residual itself must be ≥ 1 (arrival strictly in the future).
func TestSlackHorizonBoundsObservedLatencies(t *testing.T) {
	cfg := parCfg()
	bound := int64(cfg.SlackBound())
	horizon := bound
	if horizon > maxSlackWindow {
		horizon = maxSlackWindow
	}
	if horizon < 1 {
		t.Fatalf("config-derived horizon %d; audit should guarantee >= 1", horizon)
	}
	var sawReq, sawResp, sawL2 bool
	for _, name := range workloads.Names() {
		k, err := workloads.Build(name, workloads.Tiny())
		if err != nil {
			t.Fatal(err)
		}
		for mech, pf := range slackMechs() {
			var a LatencyAudit
			if _, err := Run(k, Options{Config: cfg, NewPrefetcher: pf, LatencyAudit: &a}); err != nil {
				t.Fatalf("%s/%s: %v", name, mech, err)
			}
			if a.MinRespDelivery != latencyUnobserved {
				sawResp = true
				if a.MinRespDelivery < bound {
					t.Errorf("%s/%s: response delivered in %d cycles, below the derived bound %d",
						name, mech, a.MinRespDelivery, bound)
				}
			}
			if a.MinL2Response != latencyUnobserved {
				sawL2 = true
				if a.MinL2Response < bound {
					t.Errorf("%s/%s: L2 response ready in %d cycles, below the derived bound %d",
						name, mech, a.MinL2Response, bound)
				}
			}
			if a.MinReqDelivery != latencyUnobserved {
				sawReq = true
				if a.MinReqDelivery < 1 {
					t.Errorf("%s/%s: request arrival only %d cycles ahead; horizon compensation overshot",
						name, mech, a.MinReqDelivery)
				}
				if got := a.MinReqDelivery + horizon - 1; got < bound {
					t.Errorf("%s/%s: request end-to-end delivery %d cycles, below the derived bound %d",
						name, mech, got, bound)
				}
			}
		}
	}
	if !sawReq || !sawResp || !sawL2 {
		t.Fatalf("audit never observed some path (req=%v resp=%v l2=%v); the property test is vacuous",
			sawReq, sawResp, sawL2)
	}
}

// TestSlackCancellationMidEpoch aborts a parallel bounded-slack run from
// inside an epoch's serial phase and demands (a) the abort surfaces as the
// context error, and (b) the engine — shard-group workers included — comes
// back clean: reusing it afterwards yields results bit-identical to a fresh
// engine's.
func TestSlackCancellationMidEpoch(t *testing.T) {
	// A kernel long enough that the engine reaches the second poll boundary
	// (cycle ctxCheckInterval) while work is still in flight.
	k := workloads.StreamMicro(workloads.Scale{CTAs: 8, WarpsPerCTA: 4, Iters: 32}, 4096)
	opt := Options{Config: parCfg(), Parallelism: 4, ForceParallelism: true}
	en := NewEngine()
	// countdownCtx (skip_test.go) cancels deterministically on the second
	// poll — a poll site inside an epoch's serial phase, between barriers,
	// where a timer race could not guarantee placement.
	ctx := &countdownCtx{Context: context.Background(), ok: 1}
	abortOpt := opt
	abortOpt.Context = ctx
	if _, err := en.Run(k, abortOpt); !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted run returned %v, want context.Canceled", err)
	}
	if ctx.calls <= ctx.ok {
		t.Fatalf("context polled %d times; cancellation never fired", ctx.calls)
	}
	got, err := en.Run(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engine reused after mid-epoch abort diverges from fresh engine\n got:  %+v\n want: %+v",
			got.Stats, want.Stats)
	}
}

// TestSlackConflictFatalPanics pins the test/race-build behavior: a response
// maturing inside its own epoch is an invariant violation and must fail
// loudly, not silently degrade.
func TestSlackConflictFatalPanics(t *testing.T) {
	old := slackConflictFatal
	slackConflictFatal = true
	defer func() { slackConflictFatal = old }()
	e := &engine{horizon: 8, slackOK: true}
	defer func() {
		if recover() == nil {
			t.Fatal("slackConflict did not panic with slackConflictFatal set")
		}
	}()
	e.slackConflict(5, 10)
}

// TestSlackConflictDegradesInProduction pins the production behavior: the
// same violation drops the engine to per-cycle epochs (slackOK false → every
// later epoch has length 1), which is always correct, instead of crashing a
// long sweep.
func TestSlackConflictDegradesInProduction(t *testing.T) {
	old := slackConflictFatal
	slackConflictFatal = false
	defer func() { slackConflictFatal = old }()
	e := &engine{horizon: 8, slackOK: true}
	e.slackConflict(5, 10)
	if e.slackOK {
		t.Fatal("slackConflict left slackOK set; production fallback to per-cycle epochs is broken")
	}
}

// TestInitSlackClamps pins the two slack numbers' derivation: the horizon
// comes from the config alone (capped at maxSlackWindow), and the epoch
// length from Options.SlackWindow clamped into [1, horizon-1] with 0 (and
// any out-of-range request) meaning auto.
func TestInitSlackClamps(t *testing.T) {
	cfg := config.Scaled(2, 8)
	bound := int64(cfg.SlackBound())
	wantHorizon := bound
	if wantHorizon > maxSlackWindow {
		wantHorizon = maxSlackWindow
	}
	auto := wantHorizon - 1
	if auto < 1 {
		auto = 1
	}
	cases := []struct {
		window int
		want   int64
	}{
		{0, auto},
		{-3, auto},
		{1, 1},
		{2, 2},
		{int(auto), auto},
		{int(auto) + 1, auto},
		{1 << 20, auto},
	}
	for _, c := range cases {
		e := &engine{cfg: cfg, opt: Options{SlackWindow: c.window}}
		e.initSlack()
		if e.horizon != wantHorizon {
			t.Errorf("SlackWindow=%d: horizon=%d, want %d", c.window, e.horizon, wantHorizon)
		}
		if e.slackMax != c.want {
			t.Errorf("SlackWindow=%d: slackMax=%d, want %d", c.window, e.slackMax, c.want)
		}
		if !e.slackOK {
			t.Errorf("SlackWindow=%d: slackOK not reset", c.window)
		}
	}
}
