package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"snake/internal/config"
	"snake/internal/prefetch"
	"snake/internal/workloads"
)

// slackMechs widens parMechs to the full mechanism spread the slack property
// test sweeps: every distinct cross-boundary traffic shape (demand-only,
// chained prefetch, history tables, tree/graph walkers, magic fills).
func slackMechs() map[string]func(int) prefetch.Prefetcher {
	m := parMechs()
	m["tree"] = func(int) prefetch.Prefetcher { return prefetch.NewTree() }
	m["interwarp"] = func(int) prefetch.Prefetcher { return prefetch.NewInterWarp() }
	return m
}

// TestSlackHorizonBoundsObservedLatencies is the empirical half of the slack
// soundness argument. The config audit (config.SlackBound) proves no message
// can cross between the SM side and the memory side in fewer than bound
// cycles; this test stamps every port crossing in real runs — all benchmarks
// × six mechanisms — and checks the derived bound against the smallest
// latency any message actually exhibited:
//
//   - response delivery (L2 → SM fill) must take ≥ bound cycles,
//   - L2 data-ready (partition arrival → response sendable) must take
//     ≥ bound cycles,
//   - request delivery is injected with the horizon already spent as the
//     front segment of its interconnect flight (see drainMissQueues), so its
//     residual latency plus that front segment must still be ≥ bound, and
//     the residual itself must be ≥ 1 (arrival strictly in the future).
func TestSlackHorizonBoundsObservedLatencies(t *testing.T) {
	cfg := parCfg()
	bound := int64(cfg.SlackBound())
	horizon := bound // the full audit bound — no fixed cap
	if horizon < 1 {
		t.Fatalf("config-derived horizon %d; audit should guarantee >= 1", horizon)
	}
	var sawReq, sawResp, sawL2 bool
	for wi, window := range slackWindowSweep(bound) {
		// One full benchmark × mechanism matrix at auto (the wide horizon);
		// the explicit window sweep reruns a single benchmark per window —
		// the audit floors are schedule properties, not workload properties.
		names := workloads.Names()
		if window != 0 {
			names = names[wi%len(names) : wi%len(names)+1]
		}
		for _, name := range names {
			k, err := workloads.Build(name, workloads.Tiny())
			if err != nil {
				t.Fatal(err)
			}
			for mech, pf := range slackMechs() {
				var a LatencyAudit
				if _, err := Run(k, Options{Config: cfg, NewPrefetcher: pf, SlackWindow: int(window), LatencyAudit: &a}); err != nil {
					t.Fatalf("%s/%s: %v", name, mech, err)
				}
				if a.MinRespDelivery != latencyUnobserved {
					sawResp = true
					if a.MinRespDelivery < bound {
						t.Errorf("%s/%s w=%d: response delivered in %d cycles, below the derived bound %d",
							name, mech, window, a.MinRespDelivery, bound)
					}
				}
				if a.MinL2Response != latencyUnobserved {
					sawL2 = true
					if a.MinL2Response < bound {
						t.Errorf("%s/%s w=%d: L2 response ready in %d cycles, below the derived bound %d",
							name, mech, window, a.MinL2Response, bound)
					}
				}
				if a.MinReqDelivery != latencyUnobserved {
					sawReq = true
					if a.MinReqDelivery < 1 {
						t.Errorf("%s/%s w=%d: request arrival only %d cycles ahead; horizon compensation overshot",
							name, mech, window, a.MinReqDelivery)
					}
					if got := a.MinReqDelivery + horizon - 1; got < bound {
						t.Errorf("%s/%s w=%d: request end-to-end delivery %d cycles, below the derived bound %d",
							name, mech, window, got, bound)
					}
				}
			}
		}
	}
	if !sawReq || !sawResp || !sawL2 {
		t.Fatalf("audit never observed some path (req=%v resp=%v l2=%v); the property test is vacuous",
			sawReq, sawResp, sawL2)
	}
}

// slackWindowSweep is the satellite window grid: auto plus
// {1, 2, bound/2, bound, bound+1} — per-cycle, a narrow window, a mid-width
// window, the full horizon, and an oversized request that must clamp.
func slackWindowSweep(bound int64) []int64 {
	return []int64{0, 1, 2, bound / 2, bound, bound + 1}
}

// TestSlackCancellationMidEpoch aborts a parallel bounded-slack run from
// inside an epoch's serial phase and demands (a) the abort surfaces as the
// context error, and (b) the engine — shard-group workers included — comes
// back clean: reusing it afterwards yields results bit-identical to a fresh
// engine's.
func TestSlackCancellationMidEpoch(t *testing.T) {
	// A kernel long enough that the engine reaches the second poll boundary
	// (cycle ctxCheckInterval) while work is still in flight.
	k := workloads.StreamMicro(workloads.Scale{CTAs: 8, WarpsPerCTA: 4, Iters: 32}, 4096)
	bound := int64(parCfg().SlackBound())
	for _, window := range []int64{2, bound, bound + 1} {
		opt := Options{Config: parCfg(), Parallelism: 4, ForceParallelism: true, SlackWindow: int(window)}
		en := NewEngine()
		// countdownCtx (skip_test.go) cancels deterministically on the second
		// poll — a poll site inside an epoch's serial phase, between barriers,
		// where a timer race could not guarantee placement.
		ctx := &countdownCtx{Context: context.Background(), ok: 1}
		abortOpt := opt
		abortOpt.Context = ctx
		if _, err := en.Run(k, abortOpt); !errors.Is(err, context.Canceled) {
			t.Fatalf("w=%d: aborted run returned %v, want context.Canceled", window, err)
		}
		if ctx.calls <= ctx.ok {
			t.Fatalf("w=%d: context polled %d times; cancellation never fired", window, ctx.calls)
		}
		got, err := en.Run(k, opt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(k, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("w=%d: engine reused after mid-epoch abort diverges from fresh engine\n got:  %+v\n want: %+v",
				window, got.Stats, want.Stats)
		}
	}
}

// TestSlackConflictFatalPanics pins the test/race-build behavior: a response
// maturing inside its own epoch is an invariant violation and must fail
// loudly, not silently degrade.
func TestSlackConflictFatalPanics(t *testing.T) {
	old := slackConflictFatal
	slackConflictFatal = true
	defer func() { slackConflictFatal = old }()
	e := &engine{horizon: 8, slackOK: true}
	defer func() {
		if recover() == nil {
			t.Fatal("slackConflict did not panic with slackConflictFatal set")
		}
	}()
	e.slackConflict(5, 10)
}

// TestSlackConflictDegradesInProduction pins the production behavior: the
// same violation drops the engine to per-cycle epochs (slackOK false → every
// later epoch has length 1), which is always correct, instead of crashing a
// long sweep.
func TestSlackConflictDegradesInProduction(t *testing.T) {
	old := slackConflictFatal
	slackConflictFatal = false
	defer func() { slackConflictFatal = old }()
	e := &engine{horizon: 8, slackOK: true}
	e.slackConflict(5, 10)
	if e.slackOK {
		t.Fatal("slackConflict left slackOK set; production fallback to per-cycle epochs is broken")
	}
}

// TestInitSlackClamps pins the slack numbers' derivation: the horizon is
// the full config audit bound (no fixed cap), the turnaround is
// min(horizon, TurnaroundCap), and the epoch length comes from
// Options.SlackWindow clamped into [1, horizon] with 0 (and any
// out-of-range request) meaning auto — plus the SlackInfo surfacing of
// exactly those resolutions.
func TestInitSlackClamps(t *testing.T) {
	cfg := config.Scaled(2, 8)
	bound := int64(cfg.SlackBound())
	if bound <= TurnaroundCap {
		t.Fatalf("config bound %d not wide; the wide-horizon cases below are vacuous", bound)
	}
	wantTurn := int64(TurnaroundCap)
	cases := []struct {
		window  int
		want    int64
		clamped bool
	}{
		{0, bound, false},
		{-3, bound, false},
		{1, 1, false},
		{2, 2, false},
		{int(bound / 2), bound / 2, false},
		{int(bound), bound, false},
		{int(bound) + 1, bound, true},
		{1 << 20, bound, true},
	}
	for _, c := range cases {
		e := &engine{cfg: cfg, opt: Options{SlackWindow: c.window}}
		e.initSlack()
		if e.horizon != bound {
			t.Errorf("SlackWindow=%d: horizon=%d, want the full bound %d", c.window, e.horizon, bound)
		}
		if e.turn != wantTurn {
			t.Errorf("SlackWindow=%d: turn=%d, want %d", c.window, e.turn, wantTurn)
		}
		if e.slackMax != c.want {
			t.Errorf("SlackWindow=%d: slackMax=%d, want %d", c.window, e.slackMax, c.want)
		}
		if !e.slackOK {
			t.Errorf("SlackWindow=%d: slackOK not reset", c.window)
		}
		info := SlackInfo{
			Horizon: bound, Window: c.want, Turnaround: wantTurn,
			Requested: c.window, Clamped: c.clamped, BindingTerm: cfg.SlackAudit().Limiting().Name,
		}
		if e.slackInfo != info {
			t.Errorf("SlackWindow=%d: slackInfo=%+v, want %+v", c.window, e.slackInfo, info)
		}
	}
}

// TestSlackWindowSweepEquivalence is the wide-horizon equivalence matrix:
// serial and parallel runs at every sweep window — including the full bound
// and an oversized request — must be bit-identical to the per-cycle
// reference, for a bare kernel and for an app-layer launch graph with chain
// persistence both ways (launch retirement wakes cross epochs too).
func TestSlackWindowSweepEquivalence(t *testing.T) {
	cfg := parCfg()
	bound := int64(cfg.SlackBound())
	k, err := workloads.Build("lps", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	app, err := workloads.BuildApp("pipeline", workloads.Tiny(), cfg.NumSM, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, persist := range []bool{false, true} {
		var refApp *AppResult
		for _, window := range slackWindowSweep(bound) {
			for _, p := range []int{1, 4} {
				opt := Options{
					Config: cfg, Parallelism: p, ForceParallelism: p > 1,
					SlackWindow: int(window), ChainPersistence: persist,
				}
				got, err := RunApp(app, opt)
				if err != nil {
					t.Fatalf("persist=%v w=%d P=%d: %v", persist, window, p, err)
				}
				if refApp == nil {
					ref := opt
					ref.Parallelism, ref.ForceParallelism, ref.SlackWindow = 1, false, 1
					if refApp, err = RunApp(app, ref); err != nil {
						t.Fatal(err)
					}
				}
				if !reflect.DeepEqual(got.Stats, refApp.Stats) || !reflect.DeepEqual(got.Launches, refApp.Launches) {
					t.Errorf("persist=%v w=%d P=%d: app stats diverge from per-cycle reference", persist, window, p)
				}
			}
		}
	}
	var refK *Result
	for _, window := range slackWindowSweep(bound) {
		for _, p := range []int{1, 4} {
			got, err := Run(k, Options{
				Config: cfg, NewPrefetcher: parMechs()["snake"], Parallelism: p,
				ForceParallelism: p > 1, SlackWindow: int(window),
			})
			if err != nil {
				t.Fatalf("w=%d P=%d: %v", window, p, err)
			}
			if refK == nil {
				if refK, err = Run(k, Options{Config: cfg, NewPrefetcher: parMechs()["snake"], SlackWindow: 1}); err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(got.Stats, refK.Stats) {
				t.Errorf("w=%d P=%d: kernel stats diverge from per-cycle reference", window, p)
			}
			if got.Slack.Horizon != bound || got.Slack.Window < 1 || got.Slack.Window > bound {
				t.Errorf("w=%d P=%d: Result.Slack = %+v, horizon/window out of range", window, p, got.Slack)
			}
			if wantClamp := window > bound; got.Slack.Clamped != wantClamp {
				t.Errorf("w=%d P=%d: Result.Slack.Clamped = %v, want %v", window, p, got.Slack.Clamped, wantClamp)
			}
		}
	}
}
