package sim

import (
	"testing"

	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/trace"
	"snake/internal/workloads"
)

func seqOpts(pf func(int) prefetch.Prefetcher) SequenceOptions {
	return SequenceOptions{Options: Options{Config: tinyCfg(), NewPrefetcher: pf}}
}

func TestSequenceRunsAllKernels(t *testing.T) {
	a, _ := workloads.Build("lps", workloads.Tiny())
	b, _ := workloads.Build("hotspot", workloads.Tiny())
	res, err := RunSequence([]*trace.Kernel{a, b}, seqOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) != 2 {
		t.Fatalf("spans = %d", len(res.Spans))
	}
	if res.Spans[0].Name != "lps" || res.Spans[1].Name != "hotspot" {
		t.Errorf("span names: %+v", res.Spans)
	}
	wantInsts := int64(a.TotalInsts() + b.TotalInsts())
	if res.Stats.Insts != wantInsts {
		t.Errorf("retired %d instructions, want %d", res.Stats.Insts, wantInsts)
	}
	if res.Spans[0].Insts != int64(a.TotalInsts()) {
		t.Errorf("kernel 0 span retired %d, want %d", res.Spans[0].Insts, a.TotalInsts())
	}
	if res.Spans[1].StartCycle < res.Spans[0].EndCycle {
		t.Error("kernel 1 started before kernel 0 finished")
	}
}

func TestSequenceMatchesSingleRunTotals(t *testing.T) {
	k, _ := workloads.Build("srad", workloads.Tiny())
	single, err := Run(k, Options{Config: tinyCfg()})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunSequence([]*trace.Kernel{k}, seqOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if single.Stats.Insts != seq.Stats.Insts || single.Stats.Cycles != seq.Stats.Cycles {
		t.Errorf("one-kernel sequence differs from Run: %d/%d vs %d/%d",
			seq.Stats.Insts, seq.Stats.Cycles, single.Stats.Insts, single.Stats.Cycles)
	}
}

func TestSequenceWarmPrefetcherHelpsRelaunch(t *testing.T) {
	k := workloads.StreamMicro(workloads.Scale{CTAs: 6, WarpsPerCTA: 4, Iters: 12}, 512)
	pf := func(int) prefetch.Prefetcher { return core.NewSnake() }

	warm, err := RunSequence([]*trace.Kernel{k, k}, seqOpts(pf))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunSequence([]*trace.Kernel{k, k}, SequenceOptions{
		Options:          Options{Config: tinyCfg(), NewPrefetcher: pf},
		FlushL1:          true,
		ResetPrefetchers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A warm-table relaunch of an identical, perfectly regular kernel must
	// be competitive with a cold one (stale Head-table entries cost a few
	// mismatch demotions at the start, so allow a small margin).
	warm2 := warm.Spans[1].Cycles()
	cold2 := cold.Spans[1].Cycles()
	if float64(warm2) > 1.10*float64(cold2) {
		t.Errorf("warm relaunch (%d cycles) much slower than cold (%d)", warm2, cold2)
	}
}

func TestSequenceFlushDropsHits(t *testing.T) {
	k := workloads.StreamMicro(workloads.Tiny(), 256)
	keep, err := RunSequence([]*trace.Kernel{k, k}, seqOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	flush, err := RunSequence([]*trace.Kernel{k, k}, SequenceOptions{
		Options: Options{Config: tinyCfg()},
		FlushL1: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-running the same data with warm caches must hit at least as much.
	if keep.Stats.L1HitRate() < flush.Stats.L1HitRate() {
		t.Errorf("warm caches hit %.3f < flushed %.3f",
			keep.Stats.L1HitRate(), flush.Stats.L1HitRate())
	}
}

func TestSequenceEmptyRejected(t *testing.T) {
	if _, err := RunSequence(nil, seqOpts(nil)); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestSequenceValidatesEveryKernel(t *testing.T) {
	good, _ := workloads.Build("lps", workloads.Tiny())
	bad := &trace.Kernel{Name: "bad"}
	if _, err := RunSequence([]*trace.Kernel{good, bad}, seqOpts(nil)); err == nil {
		t.Error("invalid kernel in sequence accepted")
	}
}

func TestThrottleCyclesReported(t *testing.T) {
	// Snake's halted cycles must surface in the aggregated stats.
	k, _ := workloads.Build("lib", workloads.Tiny())
	res := runTiny(t, k, func(int) prefetch.Prefetcher { return core.NewSnake() })
	// lib saturates the response network, so the bandwidth throttle engages.
	if res.Stats.Pf.ThrottleCycles == 0 {
		t.Log("no throttle cycles on lib at tiny scale (acceptable)")
	}
	// The field must never be negative and must not exceed total cycles x SMs.
	max := res.Stats.Cycles * int64(len(res.PerSM))
	if res.Stats.Pf.ThrottleCycles < 0 || res.Stats.Pf.ThrottleCycles > max {
		t.Errorf("ThrottleCycles = %d out of range [0,%d]", res.Stats.Pf.ThrottleCycles, max)
	}
}
