package sim

import (
	"testing"

	"snake/internal/config"
	"snake/internal/trace"
	"snake/internal/workloads"
)

// TestMemPartitionCountsL2Outcomes pins the partition's outcome counters at
// the unit level: a cold access is a miss, a same-line access inside the
// in-flight window is a merge, and a post-fill access is a hit — each
// counted exactly once, with DRAM seeing only the miss.
func TestMemPartitionCountsL2Outcomes(t *testing.T) {
	m := newMemPartition(0, config.Scaled(2, 8), nil)
	line := uint64(0x8000)
	r1 := m.access(line, 100) // cold: miss
	m.access(line, 101)       // in flight: merge
	m.completeFill(line, r1)
	m.access(line, r1+10) // resident: hit
	if m.ms.L2Misses != 1 || m.ms.L2Merges != 1 || m.ms.L2Hits != 1 {
		t.Errorf("counters misses=%d merges=%d hits=%d, want 1/1/1",
			m.ms.L2Misses, m.ms.L2Merges, m.ms.L2Hits)
	}
	if m.ms.DRAMReads != 1 {
		t.Errorf("DRAM reads = %d, want 1: the merge and the hit must not reach DRAM", m.ms.DRAMReads)
	}
}

// TestRouteAndTickMergesAcrossSMs drives the routed path white-box: two SMs
// requesting the same line in the same cycle are binned onto one partition's
// ingress ring at injection (pushReq, consecutive global arrival seqs),
// planRoute hands the partition a due view with consecutive slots, the
// partition's tick computes one miss plus one merge (both responses ready at
// the same data cycle), and mergeEpoch publishes the slots onto the response
// heap and drops the consumed ring prefix.
func TestRouteAndTickMergesAcrossSMs(t *testing.T) {
	k := workloads.StreamMicro(workloads.Tiny(), 256)
	e := newEngine(k, Options{Config: parCfg()}.withDefaults())

	line := uint64(0x10000)
	e.pushReq(10, reqMsg{sm: 0, lineAddr: line})
	e.pushReq(10, reqMsg{sm: 1, lineAddr: line})
	e.cycle = 10
	if n := e.planRoute(10); n != 2 {
		t.Fatalf("planRoute found %d due requests, want 2", n)
	}

	p := e.parts[e.partOf(line)]
	if len(e.routed) != 2 || p.dueN != 2 {
		t.Fatalf("routed %d slots, partition due %d, want 2/2", len(e.routed), p.dueN)
	}
	if p.slotBase != 0 {
		t.Fatalf("slotBase = %d, want 0: the only active partition owns the whole range", p.slotBase)
	}
	if got := len(p.dueA) + len(p.dueB); got != 2 {
		t.Fatalf("due view holds %d entries, want 2", got)
	}
	if p.dueA[0].Msg.seq >= p.dueA[1].Msg.seq {
		t.Fatalf("arrival seqs %d,%d not increasing in injection order", p.dueA[0].Msg.seq, p.dueA[1].Msg.seq)
	}
	p.tick(10)
	if p.ms.L2Misses != 1 || p.ms.L2Merges != 1 {
		t.Errorf("misses=%d merges=%d, want 1 miss and 1 merge", p.ms.L2Misses, p.ms.L2Merges)
	}
	r0, r1 := e.routed[0], e.routed[1]
	if r0.sm != 0 || r1.sm != 1 {
		t.Errorf("slot SMs = %d,%d, want 0,1", r0.sm, r1.sm)
	}
	if r0.seq >= r1.seq {
		t.Errorf("slot seqs = %d,%d: responses must inherit increasing arrival seqs", r0.seq, r1.seq)
	}
	if r0.readyAt != r1.readyAt {
		t.Errorf("merged request ready at %d, fetch at %d: must share the in-flight data cycle", r1.readyAt, r0.readyAt)
	}
	e.mergeEpoch(10, 10)
	if len(e.resps) != 2 || len(e.routed) != 0 {
		t.Errorf("after merge: %d heap entries, %d routed slots, want 2 and 0", len(e.resps), len(e.routed))
	}
	if e.reqsLen != 0 || e.partReqs[p.id].Len() != 0 {
		t.Errorf("after merge: reqsLen=%d ringLen=%d, want 0/0: the due prefix must be dropped", e.reqsLen, e.partReqs[p.id].Len())
	}
	if p.busy() {
		t.Error("partition still busy after tick: bins must drain every cycle")
	}
}

// sharedLineKernel builds a four-CTA kernel for a two-SM machine with one
// warp slot per SM, so CTAs 0/1 run concurrently and CTAs 2/3 follow.
// Region S is broadcast-loaded by both early CTAs — overlapping in-flight
// windows at the L2, so the fetches merge. Each early CTA then loads a
// private region (A on one SM, B on the other); the late CTAs load A and B
// both, and whichever SM a late CTA lands on, one of the two regions is
// absent from that SM's L1 but resident in the L2 — an L2 hit.
func sharedLineKernel() *trace.Kernel {
	const pc = uint64(0x100)
	line := func(region, i int) uint64 { return 0xA000_0000 + uint64(region)<<20 + uint64(i)*128 }
	regionPlan := [][]int{{0, 1}, {0, 2}, {1, 2}, {1, 2}} // 0 = S shared, 1 = A, 2 = B
	k := &trace.Kernel{Name: "shared-line"}
	for c, regions := range regionPlan {
		b := trace.NewBuilder()
		for _, r := range regions {
			for i := 0; i < 8; i++ {
				b.Load(pc+uint64(r)*8, line(r, i), 0) // broadcast: one line per load
				b.Compute(pc+0x80, 2)
			}
		}
		k.CTAs = append(k.CTAs, trace.CTA{ID: c, BaseAddr: line(0, 0), Warps: []trace.WarpProgram{b.Exit(pc + 0x88)}})
	}
	return k
}

// TestL2StatsWiredThrough runs the shared-line kernel end to end on two SMs
// and checks the partition counters reach Result.Stats: concurrent same-line
// fetches from different SMs produce L2 merges, the second CTA wave produces
// L2 hits, every miss is exactly one DRAM read, and the per-SM blocks stay
// zero for these memory-side fields.
func TestL2StatsWiredThrough(t *testing.T) {
	res, err := Run(sharedLineKernel(), Options{Config: config.Scaled(2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.L2Misses == 0 || s.L2Merges == 0 || s.L2Hits == 0 {
		t.Errorf("L2 outcomes misses=%d merges=%d hits=%d: all three paths must fire", s.L2Misses, s.L2Merges, s.L2Hits)
	}
	if s.DRAMReads != s.L2Misses {
		t.Errorf("DRAMReads=%d, L2Misses=%d: exactly the misses reach DRAM", s.DRAMReads, s.L2Misses)
	}
	for i, per := range res.PerSM {
		if per.L2Hits != 0 || per.L2Misses != 0 || per.L2Merges != 0 {
			t.Errorf("SM %d carries L2 partition counters (%d/%d/%d); memory-side stats are not per-SM",
				i, per.L2Hits, per.L2Misses, per.L2Merges)
		}
	}
}

// TestPartitionHashCoversAllPartitions is the routing property test: under
// DefaultScale traffic, every Table 2 benchmark's coalesced line-address
// stream must reach every L2 partition — a hash that left partitions cold
// would serialize the memory side's parallelism and misrepresent bandwidth.
func TestPartitionHashCoversAllPartitions(t *testing.T) {
	cfg := config.Scaled(4, 64)
	e := &engine{cfg: cfg}
	e.parts = make([]*memPartition, cfg.L2Partitions)
	sc := workloads.DefaultScale()
	var lines []uint64
	for _, name := range workloads.Names() {
		k, err := workloads.Build(name, sc)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, cfg.L2Partitions)
		remaining := cfg.L2Partitions
	walk:
		for _, cta := range k.CTAs {
			for _, w := range cta.Warps {
				for _, in := range w.Insts {
					if !in.IsMem() {
						continue
					}
					lines = coalesce(lines[:0], in.Addr, in.Stride, cfg.WarpSize, cfg.Unified.LineSize)
					for _, l := range lines {
						if p := e.partOf(l); !seen[p] {
							seen[p] = true
							if remaining--; remaining == 0 {
								break walk
							}
						}
					}
				}
			}
		}
		if remaining != 0 {
			t.Errorf("%s: DefaultScale traffic reached only %d/%d partitions",
				name, cfg.L2Partitions-remaining, cfg.L2Partitions)
		}
	}
}
