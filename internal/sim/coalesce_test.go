package sim

import (
	"testing"
	"testing/quick"

	"snake/internal/prefetch"
	"snake/internal/workloads"
)

func TestCoalesceUnitStride(t *testing.T) {
	// 32 threads x 4B = 128B = exactly one line.
	lines := coalesce(nil, 0x1000, 4, 32, 128)
	if len(lines) != 1 || lines[0] != 0x1000 {
		t.Errorf("unit stride coalesced to %v", lines)
	}
}

func TestCoalesceBroadcast(t *testing.T) {
	lines := coalesce(nil, 0x1234, 0, 32, 128)
	if len(lines) != 1 || lines[0] != 0x1200 {
		t.Errorf("broadcast coalesced to %v", lines)
	}
}

func TestCoalesceMisaligned(t *testing.T) {
	// Unit stride starting mid-line spans two lines.
	lines := coalesce(nil, 0x1040, 4, 32, 128)
	if len(lines) != 2 || lines[0] != 0x1000 || lines[1] != 0x1080 {
		t.Errorf("misaligned access coalesced to %v", lines)
	}
}

func TestCoalesceFullyDivergent(t *testing.T) {
	// 128B per thread: every thread hits its own line.
	lines := coalesce(nil, 0x0, 128, 32, 128)
	if len(lines) != 32 {
		t.Errorf("fully divergent access produced %d transactions, want 32", len(lines))
	}
}

func TestCoalesceStride32(t *testing.T) {
	// 32B stride: 4 threads per line -> 8 lines.
	if n := transactionsFor(0x0, 32, 32, 128); n != 8 {
		t.Errorf("stride-32 transactions = %d, want 8", n)
	}
}

func TestCoalesceNegativeStride(t *testing.T) {
	lines := coalesce(nil, 0x10000, -4, 32, 128)
	if len(lines) != 2 {
		t.Errorf("negative unit stride produced %v", lines)
	}
}

func TestCoalesceNoDuplicates(t *testing.T) {
	f := func(base uint64, stride int16) bool {
		lines := coalesce(nil, base%(1<<30), int32(stride), 32, 128)
		seen := map[uint64]bool{}
		for _, l := range lines {
			if seen[l] || l%128 != 0 {
				return false
			}
			seen[l] = true
		}
		return len(lines) >= 1 && len(lines) <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDivergentKernelGeneratesMoreTraffic(t *testing.T) {
	co := workloads.DivergenceMicro(workloads.Tiny(), 4)   // coalesced
	dv := workloads.DivergenceMicro(workloads.Tiny(), 256) // 2 lines per access... large stride
	a := runTiny(t, co, nil)
	b := runTiny(t, dv, nil)
	if b.Stats.L1Accesses() <= a.Stats.L1Accesses() {
		t.Errorf("divergent kernel produced %d L1 accesses vs coalesced %d",
			b.Stats.L1Accesses(), a.Stats.L1Accesses())
	}
	if b.Stats.IPC() >= a.Stats.IPC() {
		t.Errorf("divergence did not cost performance: %.3f vs %.3f", b.Stats.IPC(), a.Stats.IPC())
	}
}

func TestDivergentKernelCompletesWithSnake(t *testing.T) {
	k := workloads.DivergenceMicro(workloads.Tiny(), 512)
	res := runTiny(t, k, func(int) prefetch.Prefetcher { return prefetch.NewMTA() })
	if res.Stats.Insts != int64(k.TotalInsts()) {
		t.Errorf("retired %d != %d", res.Stats.Insts, k.TotalInsts())
	}
}
