package sim

import (
	"reflect"
	"testing"

	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/workloads"
)

// reuseMechs extends the parallel-equivalence spread with the two storage
// reconfiguration paths reinit must handle: decoupled unified storage and the
// isolated prefetch buffer.
func reuseMechs() map[string]func(int) prefetch.Prefetcher {
	m := parMechs()
	m["isolated-snake"] = func(int) prefetch.Prefetcher { return core.NewIsolatedSnake() }
	m["mta+decoupled"] = func(int) prefetch.Prefetcher { return &prefetch.Decoupled{Inner: prefetch.NewMTA()} }
	return m
}

// TestPooledEquivalenceMatrix is the arena-recycling half of the equivalence
// guarantee: an Engine reused across every workload, skip setting,
// parallelism and slack window must produce Results bit-identical to a fresh
// construction for each run. One Engine per mechanism survives the whole
// matrix, so each run reinitializes state dirtied by a different kernel (the
// slack epoch buffers included). ForceParallelism keeps the multi-worker
// paths real on single-core runners.
func TestPooledEquivalenceMatrix(t *testing.T) {
	// (Parallelism, SlackWindow) pairs covering both axes without squaring
	// the matrix: per-cycle serial, short epochs under the sharded barrier,
	// and auto-length epochs at one worker per unit.
	cells := []struct{ p, slack int }{{1, 1}, {4, 2}, {4, 0}, {12, 0}}
	for mech, pf := range reuseMechs() {
		en := NewEngine()
		for _, name := range workloads.Names() {
			k, err := workloads.Build(name, workloads.Tiny())
			if err != nil {
				t.Fatal(err)
			}
			for _, skip := range []bool{false, true} {
				for _, cell := range cells {
					opt := Options{
						Config: parCfg(), NewPrefetcher: pf, DisableSkip: !skip,
						Parallelism: cell.p, SlackWindow: cell.slack, ForceParallelism: true,
					}
					want, err := Run(k, opt)
					if err != nil {
						t.Fatalf("%s/%s fresh: %v", name, mech, err)
					}
					got, err := en.RunTagged(k, opt, mech)
					if err != nil {
						t.Fatalf("%s/%s pooled: %v", name, mech, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/%s skip=%v P=%d slack=%d: pooled engine diverges from fresh\n got:  %+v\n want: %+v",
							name, mech, skip, cell.p, cell.slack, got.Stats, want.Stats)
					}
				}
			}
		}
	}
}

// TestEngineReuseAcrossMechanisms cycles one Engine through mechanisms with
// different prefetchers and L1 storage organizations (none, unified-decoupled,
// isolated), checking each run against a fresh engine. This is the pool-miss
// shape: the arenas recycle but the prefetchers and cache wiring must be
// rebuilt per mechanism.
func TestEngineReuseAcrossMechanisms(t *testing.T) {
	k, err := workloads.Build("lps", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	en := NewEngine()
	order := []string{"baseline", "snake", "isolated-snake", "mta+decoupled", "snake", "baseline", "ideal"}
	mechs := reuseMechs()
	for i, mech := range order {
		opt := Options{Config: parCfg(), NewPrefetcher: mechs[mech]}
		want, err := Run(k, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := en.RunTagged(k, opt, mech)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("step %d (%s): reused engine diverges from fresh\n got:  %+v\n want: %+v",
				i, mech, got.Stats, want.Stats)
		}
	}
}

// TestEngineReuseUntaggedRebuildsPrefetchers pins the empty-tag contract:
// without a tag the engine must call the factory every run, never recycle
// prefetcher instances.
func TestEngineReuseUntaggedRebuildsPrefetchers(t *testing.T) {
	k, err := workloads.Build("lps", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	en := NewEngine()
	calls := 0
	opt := Options{Config: parCfg(), NewPrefetcher: func(int) prefetch.Prefetcher {
		calls++
		return core.NewSnake()
	}}
	if _, err := en.Run(k, opt); err != nil {
		t.Fatal(err)
	}
	perRun := calls
	if perRun == 0 {
		t.Fatal("factory never called")
	}
	if _, err := en.Run(k, opt); err != nil {
		t.Fatal(err)
	}
	if calls != 2*perRun {
		t.Errorf("untagged rerun called factory %d times, want %d", calls-perRun, perRun)
	}
	if _, err := en.RunTagged(k, opt, "snake"); err != nil {
		t.Fatal(err)
	}
	if calls != 3*perRun {
		t.Errorf("first tagged run called factory %d times, want %d (tag changed)", calls-2*perRun, perRun)
	}
	if _, err := en.RunTagged(k, opt, "snake"); err != nil {
		t.Fatal(err)
	}
	if calls != 3*perRun {
		t.Errorf("matching tagged rerun called factory %d times, want 0", calls-3*perRun)
	}
}

// TestRepeatedRunAllocs is the steady-state claim behind the engine pool:
// once warm, re-running a kernel on a recycled Engine performs near-zero heap
// allocations — the arenas (warp contexts, cache line index, MSHR files, port
// rings, stats shards, route views, scatter scratch) are all reused in place,
// and in parallel mode the barrier crew is a parked persistent group, not a
// per-run goroutine spawn. The bound leaves headroom for the Result copy and
// the prefetcher's small per-run maps; a fresh engine costs hundreds of
// allocations per run (see BENCH_sim.json).
//
// The par4 measurement pins the allocation-flat-parallel-mode claim: a warm
// pooled run must cost the same whether it ticks serially or on a
// ForceParallelism=4 crew (the multi-worker barrier, the epoch bitsets, the
// due views and the scatter none of them allocate per run).
func TestRepeatedRunAllocs(t *testing.T) {
	k, err := workloads.Build("lps", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	measure := func(opt Options) float64 {
		en := NewEngine()
		defer en.Close()
		run := func() {
			if _, err := en.RunTagged(k, opt, "snake"); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm: first run constructs everything, including the crew
		return testing.AllocsPerRun(20, run)
	}
	pf := func(int) prefetch.Prefetcher { return core.NewSnake() }
	serial := measure(Options{Config: parCfg(), NewPrefetcher: pf})
	par := measure(Options{Config: parCfg(), NewPrefetcher: pf, Parallelism: 4, ForceParallelism: true})
	t.Logf("steady-state allocs/run: serial=%.1f par4=%.1f", serial, par)
	if raceEnabled {
		// The race detector allocates for its own bookkeeping; the loops above
		// still provide race coverage of the reuse and crew-reuse paths.
		return
	}
	const bound = 64
	if serial > bound {
		t.Errorf("steady-state serial reuse allocates %.1f/run, want <= %d", serial, bound)
	}
	if par > bound {
		t.Errorf("steady-state par4 reuse allocates %.1f/run, want <= %d", par, bound)
	}
	if par > serial*1.2+4 {
		t.Errorf("par4-pooled allocates %.1f/run vs serial %.1f: parallel mode must stay allocation-flat (<= 1.2x + 4)", par, serial)
	}
}
