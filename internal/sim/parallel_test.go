package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/trace"
	"snake/internal/workloads"
)

// parCfg has enough SMs that Parallelism=4 actually shards the machine.
func parCfg() config.GPU { return config.Scaled(4, 8) }

// parMechs is the mechanism spread for the equivalence matrix: the baseline
// (no prefetcher), the stateful chain prefetcher (Snake), the simpler MTA,
// and the magic oracle — together they exercise every cross-boundary path
// (demand misses, staged prefetches, throttling's skip inhibition, magic
// fills that bypass the memory system).
func parMechs() map[string]func(int) prefetch.Prefetcher {
	return map[string]func(int) prefetch.Prefetcher{
		"baseline": nil,
		"snake":    func(int) prefetch.Prefetcher { return core.NewSnake() },
		"mta":      func(int) prefetch.Prefetcher { return prefetch.NewMTA() },
		"ideal":    func(int) prefetch.Prefetcher { return prefetch.NewIdeal() },
	}
}

// TestParallelEquivalenceMatrix is the tentpole's core claim: for every
// workload and mechanism, the executor's Result — totals and per-SM
// breakdowns — is bit-identical to per-cycle serial execution, at every
// Parallelism value, every SlackWindow setting (1 = barrier per cycle,
// 2 = a short epoch, 0 = auto, the config-derived maximum), and with
// fast-forwarding on or off. ForceParallelism keeps the multi-worker barrier
// real even on single-core CI runners, where Parallelism would otherwise
// degrade to serial and the matrix would silently test nothing.
func TestParallelEquivalenceMatrix(t *testing.T) {
	for _, name := range workloads.Names() {
		k, err := workloads.Build(name, workloads.Tiny())
		if err != nil {
			t.Fatal(err)
		}
		for mech, pf := range parMechs() {
			for _, skip := range []bool{false, true} {
				opt := Options{Config: parCfg(), NewPrefetcher: pf, DisableSkip: skip, ForceParallelism: true}
				opt.Parallelism = 1
				opt.SlackWindow = 1
				want, err := Run(k, opt)
				if err != nil {
					t.Fatalf("%s/%s serial: %v", name, mech, err)
				}
				for _, slack := range []int{1, 2, 0} {
					// 12 = NumSM (4) + L2Partitions (8): every work unit, SM
					// shard or memory partition, gets its own worker.
					for _, p := range []int{1, 4, 12} {
						if slack == 1 && p == 1 {
							continue // the reference itself
						}
						opt.Parallelism = p
						opt.SlackWindow = slack
						got, err := Run(k, opt)
						if err != nil {
							t.Fatalf("%s/%s P=%d slack=%d: %v", name, mech, p, slack, err)
						}
						// Result.Slack echoes the requested window, which
						// differs across cells by design; the oracle is the
						// simulation output.
						got.Slack = want.Slack
						if !reflect.DeepEqual(got, want) {
							t.Errorf("%s/%s skip=%v: P=%d slack=%d diverges from serial\n got:  %+v\n want: %+v",
								name, mech, !skip, p, slack, got.Stats, want.Stats)
						}
					}
				}
			}
		}
	}
}

// TestParallelRepeatDeterminism re-runs the same parallel configuration and
// demands identical output: scheduling noise across worker goroutines must
// never reach the results.
func TestParallelRepeatDeterminism(t *testing.T) {
	k, _ := workloads.Build("hotspot", workloads.Tiny())
	opt := Options{
		Config:           parCfg(),
		NewPrefetcher:    func(int) prefetch.Prefetcher { return core.NewSnake() },
		Parallelism:      4,
		ForceParallelism: true,
	}
	first, err := Run(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(k, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("repeat %d produced different results", i)
		}
	}
}

// TestParallelSequenceEquivalence covers the multi-kernel path: the shard
// group persists across kernels of one sequence and the warm-state carryover
// must not depend on Parallelism.
func TestParallelSequenceEquivalence(t *testing.T) {
	mk := func(name string) *trace.Kernel {
		k, err := workloads.Build(name, workloads.Tiny())
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	kernels := []*trace.Kernel{mk("lps"), mk("hotspot"), mk("lps")}
	run := func(p int) *SequenceResult {
		opt := SequenceOptions{Options: Options{
			Config:           parCfg(),
			NewPrefetcher:    func(int) prefetch.Prefetcher { return core.NewSnake() },
			Parallelism:      p,
			ForceParallelism: true,
		}}
		res, err := RunSequence(kernels, opt)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		return res
	}
	want := run(1)
	got := run(4)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel sequence diverges from serial\n got:  %+v\n want: %+v", got.Stats, want.Stats)
	}
}

// TestParallelCancellationStopsWorkers aborts a parallel run via context and
// checks the error path: run() must return the cancellation error and tear
// the worker group down (the race detector and goroutine-leak-sensitive
// follow-up runs in this package would catch a stuck worker).
func TestParallelCancellationStopsWorkers(t *testing.T) {
	k := workloads.StreamMicro(workloads.Scale{CTAs: 8, WarpsPerCTA: 4, Iters: 32}, 4096)
	ctx := &countdownCtx{Context: context.Background(), ok: 0}
	_, err := Run(k, Options{Config: parCfg(), Context: ctx, Parallelism: 4, ForceParallelism: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The engine must stay reusable after a torn-down run: a fresh run on the
	// same goroutine succeeds.
	if _, err := Run(k, Options{Config: parCfg(), Parallelism: 4, ForceParallelism: true}); err != nil {
		t.Fatalf("run after cancelled run: %v", err)
	}
}

// TestParallelOptionsClamp pins the Parallelism defaulting rules: zero and
// negative mean serial, a request wider than the machine clamps to one
// worker per work unit (SM shards plus L2 partitions), and on a single-core
// runtime any multi-worker request degrades to serial unless
// ForceParallelism overrides.
func TestParallelOptionsClamp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1},
		{-3, 1},
		{1, 1},
		{4, 4},
		{64, parCfg().NumSM + parCfg().L2Partitions},
	} {
		opt := Options{Config: parCfg(), Parallelism: tc.in, ForceParallelism: true}.withDefaults()
		if opt.Parallelism != tc.want {
			t.Errorf("Parallelism %d defaulted to %d, want %d", tc.in, opt.Parallelism, tc.want)
		}
	}
	got := Options{Config: parCfg(), Parallelism: 4}.withDefaults().Parallelism
	if want := 4; runtime.GOMAXPROCS(0) == 1 {
		// Extra workers cannot overlap the engine on one core; they only
		// preempt it.
		want = 1
		if got != want {
			t.Errorf("GOMAXPROCS=1: Parallelism 4 resolved to %d, want serial degrade to %d", got, want)
		}
	} else if got != want {
		t.Errorf("multi-core: Parallelism 4 resolved to %d, want %d", got, want)
	}
}

// TestParallelStoreMergeOrder pins the (smID, seq) egress merge: a workload
// with store traffic must produce identical store/interconnect accounting in
// serial and parallel runs. (Covered by the matrix too; this narrow test
// fails more readably if the merge order regresses.)
func TestParallelStoreMergeOrder(t *testing.T) {
	k, err := workloads.Build("srad", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Config: parCfg()}
	opt.Parallelism = 1
	want, err := Run(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.Stores == 0 {
		t.Fatal("stencil workload issued no stores; pick a store-heavy kernel")
	}
	opt.Parallelism = 4
	opt.ForceParallelism = true
	got, err := Run(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Stores != want.Stats.Stores || got.Stats.IcntBytes != want.Stats.IcntBytes {
		t.Errorf("store accounting diverged: stores %d vs %d, icnt bytes %d vs %d",
			got.Stats.Stores, want.Stats.Stores, got.Stats.IcntBytes, want.Stats.IcntBytes)
	}
}
