package sim_test

import (
	"fmt"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/sim"
	"snake/internal/trace"
)

// Example runs a hand-built two-warp kernel with Snake attached and prints
// whether every instruction retired.
func Example() {
	// One CTA with two warps, each streaming eight lines.
	var cta trace.CTA
	for w := 0; w < 2; w++ {
		b := trace.NewBuilder()
		addr := uint64(0x1000_0000 + w*0x10000)
		for i := 0; i < 8; i++ {
			b.Load(0x100, addr, 4)
			b.Compute(0x108, 4)
			addr += 256
		}
		wp := b.Exit(0x110)
		wp.IDInCTA = w
		cta.Warps = append(cta.Warps, wp)
	}
	k := &trace.Kernel{Name: "example", CTAs: []trace.CTA{cta}}

	res, err := sim.Run(k, sim.Options{
		Config:        config.Scaled(1, 8),
		NewPrefetcher: func(int) prefetch.Prefetcher { return core.NewSnake() },
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("retired %d of %d instructions\n", res.Stats.Insts, k.TotalInsts())
	// Output:
	// retired 34 of 34 instructions
}
