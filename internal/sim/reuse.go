package sim

import (
	"snake/internal/prefetch"
	"snake/internal/trace"
)

// Engine is a reusable simulation engine. Run behaves exactly like the
// package-level Run — same validation, same results, bit-identical
// statistics — but an Engine that has already completed a run with the same
// config.GPU reinitializes its arenas in place (warp contexts, caches, MSHR
// files, port rings, DRAM banks, statistics accumulators, scratch buffers)
// instead of reallocating them, which removes the per-run construction cost
// that dominates steady-state sweep traffic.
//
// The reuse contract mirrors the engine's other equivalence guarantees
// (serial/parallel, skip/no-skip): a recycled engine's Result must be
// bit-identical to a freshly constructed engine's, for any sequence of
// (kernel, options, tag) runs. The golden and pooled-equivalence matrices
// enforce it.
//
// An Engine is not safe for concurrent use; pool instances (see
// harness.EnginePool) to share them across workers.
type Engine struct {
	e *engine
	// tag names the prefetcher configuration of the previous run ("" when
	// unknown); see RunTagged.
	tag string
}

// NewEngine returns an engine with no state; its first Run constructs
// everything, exactly as the package-level Run does.
func NewEngine() *Engine { return &Engine{} }

// Close releases the engine's persistent barrier crew — the parked worker
// goroutines its parallel runs reuse across Reset and pool recycling. Safe
// on engines that never ran in parallel and safe to call repeatedly; the
// Engine stays usable, the next parallel run simply starts a fresh crew.
// Engines dropped without Close are covered by a finalizer backstop, but
// long-lived holders (pools, services) should Close deterministically.
func (en *Engine) Close() {
	if en.e != nil {
		en.e.closeCrew()
	}
}

// Run simulates the kernel, recycling the engine's arenas when the config
// matches the previous run. Prefetchers are always constructed fresh from
// opt.NewPrefetcher; use RunTagged to recycle prefetcher instances too.
func (en *Engine) Run(k *trace.Kernel, opt Options) (*Result, error) {
	return en.RunTagged(k, opt, "")
}

// RunTagged is Run with a prefetcher-reuse tag. The tag is an opaque
// identifier for the configuration behind opt.NewPrefetcher (e.g. the
// mechanism registry name): when non-empty and equal to the previous run's
// tag, the engine calls Reset on its existing prefetcher instances instead
// of constructing new ones, so back-to-back runs of one mechanism allocate
// nothing for prefetch state either. Callers must guarantee that equal tags
// imply equivalent factories; an empty tag never reuses prefetchers.
func (en *Engine) RunTagged(k *trace.Kernel, opt Options, tag string) (*Result, error) {
	if err := validateRun(k, opt); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	if en.e != nil && en.e.cfg == opt.Config {
		en.e.reinit(k, opt, tag != "" && tag == en.tag)
	} else {
		if en.e != nil {
			en.e.closeCrew() // don't leave the replaced engine's crew to the finalizer
		}
		en.e = newEngine(k, opt)
	}
	en.tag = tag
	if err := en.e.run(); err != nil {
		return nil, err
	}
	return en.e.result(), nil
}

// RunApp simulates an application (see the package-level RunApp), recycling
// the engine's arenas when the config matches the previous run. Kernel and
// App runs may interleave freely on one Engine — the machine is shared, the
// launch state is rebuilt per run — with results bit-identical to fresh
// engines either way.
func (en *Engine) RunApp(a *trace.App, opt Options) (*AppResult, error) {
	return en.RunAppTagged(a, opt, "")
}

// RunAppTagged is RunApp with a prefetcher-reuse tag (see RunTagged).
func (en *Engine) RunAppTagged(a *trace.App, opt Options, tag string) (*AppResult, error) {
	if err := validateRunApp(a, opt); err != nil {
		return nil, err
	}
	if opt.MaxCycles <= 0 {
		// The runaway guard scales with the application length, as in
		// RunSequence.
		opt.MaxCycles = 20_000_000 * int64(len(a.Launches))
	}
	opt = opt.withDefaults()
	if en.e != nil && en.e.cfg == opt.Config {
		en.e.reinitApp(a, opt, tag != "" && tag == en.tag)
	} else {
		if en.e != nil {
			en.e.closeCrew()
		}
		en.e = newEngineApp(a, opt)
	}
	en.tag = tag
	if err := en.e.run(); err != nil {
		return nil, err
	}
	return en.e.appResult(), nil
}

// reinit rewires a previously used engine to run a bare kernel as the
// trivial one-launch App (engine-owned scratch, so the hot path stays
// allocation-free).
func (e *engine) reinit(k *trace.Kernel, opt Options, reusePf bool) {
	e.reinitApp(e.singleApp(k), opt, reusePf)
}

// reinitApp rewires a previously used engine for a new application run,
// reusing every allocation whose shape depends only on the config (which the
// caller has checked is unchanged). With reusePf the shards keep their
// prefetcher instances and reset them; otherwise new instances come from
// opt.NewPrefetcher and each L1's storage organization is re-derived. Launch
// state is rebuilt last, once the machine is clean (loadApp's activation
// wave snapshots the freshly reset stat arenas).
func (e *engine) reinitApp(a *trace.App, opt Options, reusePf bool) {
	e.opt = opt
	e.cycle = 0
	e.net.reset()
	for _, p := range e.parts {
		p.reset()
	}
	for i := range e.partReqs {
		e.partReqs[i].Reset()
	}
	e.reqsLen = 0
	e.resps = e.resps[:0]
	e.stores = e.stores[:0]
	e.routed = e.routed[:0]
	e.memStats.Reset()
	e.ageCtr = 0
	e.inflight = 0
	e.inflightRel = e.inflightRel[:0]
	e.skipped = 0
	e.dispatchAt = e.dispatchAt[:0]
	e.utilSnap = e.utilSnap[:0]
	// Slack parameters depend on opt (SlackWindow may differ between runs on
	// the same config), and the conflict fallback must not leak across runs.
	e.initSlack()
	e.shStats.Reset()
	for i, sh := range e.shards {
		var pf prefetch.Prefetcher
		if !reusePf && opt.NewPrefetcher != nil {
			pf = opt.NewPrefetcher(i)
		}
		sh.sm.reset(pf, opt.MLPPerWarp, reusePf)
		sh.reset()
	}
	e.loadApp(a)
}
