//go:build !race

package sim

// raceEnabled reports whether the race detector instruments this build.
// Alloc-count assertions relax under the detector: its shadow-memory
// bookkeeping allocates on paths that are allocation-free in normal builds.
const raceEnabled = false
