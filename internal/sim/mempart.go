package sim

import (
	"snake/internal/cache"
	"snake/internal/config"
	"snake/internal/dram"
)

// memPartition is one L2 sub-partition with its attached DRAM controller.
// Requests from different SMs to the same in-flight line merge at the
// partition so DRAM sees each line once.
type memPartition struct {
	l2       *cache.Cache
	dramCtl  *dram.Controller
	latency  int64
	inflight map[uint64]int64 // line -> data-ready cycle
}

func newMemPartition(cfg config.GPU) *memPartition {
	return &memPartition{
		l2:       cache.New(cfg.L2),
		dramCtl:  dram.New(cfg.DRAM, cfg.DRAMBanks, cfg.DRAMRowBytes, cfg.DRAMClockxfer),
		latency:  int64(cfg.L2.Latency),
		inflight: make(map[uint64]int64),
	}
}

// reset clears the partition for a new run on a recycled engine: the L2 is
// invalidated in place, the DRAM banks and counters are zeroed, and the
// in-flight merge map is emptied (keeping its buckets).
func (m *memPartition) reset() {
	m.l2.InvalidateAll()
	m.dramCtl.Reset()
	clear(m.inflight)
}

// access services a fill request arriving at the partition at cycle and
// returns the cycle at which the line's data is ready to be sent back.
func (m *memPartition) access(lineAddr uint64, cycle int64) int64 {
	if ra, ok := m.inflight[lineAddr]; ok && ra > cycle {
		return ra // merge with the in-flight fetch
	}
	if p := m.l2.Hit(lineAddr, cycle); p.Present {
		return cycle + m.latency
	}
	readyAt := m.dramCtl.Access(lineAddr, cycle+m.latency)
	m.inflight[lineAddr] = readyAt
	return readyAt
}

// completeFill installs the line into the L2 once its DRAM fetch finished.
// Idempotent per in-flight fetch.
func (m *memPartition) completeFill(lineAddr uint64, cycle int64) {
	if _, ok := m.inflight[lineAddr]; !ok {
		return
	}
	delete(m.inflight, lineAddr)
	if p := m.l2.Probe(lineAddr); p.Present || p.Reserved {
		return
	}
	if _, ok := m.l2.Reserve(lineAddr, cache.ClassData, cycle, nil); ok {
		m.l2.Fill(lineAddr, cycle)
	}
}

// dramStats exposes the controller counters.
func (m *memPartition) dramStats() (reads, rowHits, rowMisses int64) {
	return m.dramCtl.Stats()
}
