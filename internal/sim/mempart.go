package sim

import (
	"snake/internal/cache"
	"snake/internal/config"
	"snake/internal/dram"
	"snake/internal/icnt"
	"snake/internal/stats"
)

// partFill is one shipped-response completion, tagged with the sub-cycle its
// response left the partition (when the L2 install becomes visible).
type partFill struct {
	lineAddr uint64
	cycle    int64
}

// memPartition is one L2 sub-partition with its attached DRAM controller.
// Requests from different SMs to the same in-flight line merge at the
// partition so DRAM sees each line once.
//
// A partition is a schedulable work unit on the engine's cycle barrier, peer
// to the SM shards: requests are binned to the partition at injection time
// (the engine pushes them onto the partition's ingress ring, stamped with
// their arrival cycle and global arrival seq), the O(#partitions) route
// prefix-sum hands each partition a zero-copy due view plus a contiguous
// slot range, and tick — possibly concurrent with other partitions and with
// shard ticks — performs the L2 lookups, in-flight merges and DRAM timing,
// scattering responses into its reserved slots. Partitions are data-disjoint
// by the engine's line-address hash (partOf): no line ever reaches two
// partitions, so ticks share no state and need no locks.
type memPartition struct {
	id       int
	l2       *cache.Cache
	dramCtl  *dram.Controller
	latency  int64
	inflight map[uint64]int64 // line -> data-ready cycle

	// ms accumulates this partition's L2 and DRAM counters (an entry of the
	// engine's stats.MemParts arena; totals are partition-count and
	// merge-order invariant, see that package's property tests).
	ms *stats.Mem

	// Per-epoch work, set by the engine (sub-cycle tags non-decreasing) and
	// consumed by tickSpan. dueA/dueB are this epoch's due requests — a
	// zero-copy view of the partition's ingress ring (two windows because the
	// ring wraps at most once), assigned by planRoute together with slotBase,
	// the first index of this partition's contiguous range in routed. dueN
	// persists past tickSpan: mergeEpoch uses it to Drop the consumed ring
	// prefix.
	dueA, dueB []icnt.Stamped[reqMsg]
	slotBase   int
	dueN       int
	completes  []partFill // lines whose responses shipped this epoch
	// routed aliases the engine's per-epoch response slot array; tickSpan
	// writes each due request's response at slotBase + its due-view index.
	routed []resp

	// minRespLat is the smallest (readyAt - arrival) latency this partition
	// ever returned — the slack property test's observed floor.
	minRespLat int64
}

// newMemPartition builds partition id counting into ms (nil: a private
// block, for direct unit tests).
func newMemPartition(id int, cfg config.GPU, ms *stats.Mem) *memPartition {
	if ms == nil {
		ms = &stats.Mem{}
	}
	return &memPartition{
		id:         id,
		l2:         cache.New(cfg.L2),
		dramCtl:    dram.New(cfg.DRAM, cfg.DRAMBanks, cfg.DRAMRowBytes, cfg.DRAMClockxfer, ms),
		latency:    int64(cfg.L2.Latency),
		inflight:   make(map[uint64]int64),
		ms:         ms,
		minRespLat: int64(1)<<62 - 1,
	}
}

// tickSpan performs the partition's binned work for the epoch [from, to],
// walking each sub-cycle in order: that sub-cycle's arrivals first, then the
// completions of responses that shipped at it. Within one sub-cycle that
// order — all accesses, then all fills — is exactly the serial engine's
// arriveRequests→drainResponses order, so results are bit-identical.
// Deferring the completions from the serial response phase to here is
// invisible: nothing between the two points reads L2 state, and a
// sub-cycle's accesses cannot observe its completions in either schedule.
// Both the due view and completes are tagged with non-decreasing sub-cycles,
// so two index walks suffice. Each response is written at slotBase + its
// due-view index and inherits the request's global arrival seq, so any
// partition-major merge replays in exact serial order (see planRoute).
func (m *memPartition) tickSpan(from, to int64) {
	di, ci := 0, 0
	a, na, n := m.dueA, len(m.dueA), m.dueN
	for c := from; c <= to; c++ {
		for di < n {
			var e *icnt.Stamped[reqMsg]
			if di < na {
				e = &a[di]
			} else {
				e = &m.dueB[di-na]
			}
			if e.Cycle > c {
				break
			}
			readyAt := m.access(e.Msg.lineAddr, c)
			m.routed[m.slotBase+di] = resp{readyAt: readyAt, seq: e.Msg.seq, sm: e.Msg.sm, lineAddr: e.Msg.lineAddr, part: m.id, prefetch: e.Msg.prefetch}
			di++
		}
		for ci < len(m.completes) && m.completes[ci].cycle <= c {
			m.completeFill(m.completes[ci].lineAddr, c)
			ci++
		}
	}
	m.dueA, m.dueB = nil, nil
	m.completes = m.completes[:0]
}

// tick is the single-cycle span (kept for the white-box unit tests).
func (m *memPartition) tick(cycle int64) { m.tickSpan(cycle, cycle) }

// busy reports whether the partition holds unprocessed binned work — an
// invariant guard for the engine's fast-forward: a busy partition pins the
// next cycle. (Bins are drained by tick every executed cycle, so this is
// vacuously false at the fast-forward decision point.)
func (m *memPartition) busy() bool {
	return m.dueN > 0 || len(m.completes) > 0
}

// reset clears the partition for a new run on a recycled engine: the L2 is
// invalidated in place, the DRAM banks and counters are zeroed, the
// in-flight merge map is emptied (keeping its buckets), and the work bins
// and L2 counters are cleared.
func (m *memPartition) reset() {
	m.l2.InvalidateAll()
	m.dramCtl.Reset()
	clear(m.inflight)
	m.dueA, m.dueB = nil, nil
	m.slotBase, m.dueN = 0, 0
	m.completes = m.completes[:0]
	m.routed = nil
	m.minRespLat = int64(1)<<62 - 1
	m.ms.L2Hits, m.ms.L2Misses, m.ms.L2Merges = 0, 0, 0
}

// access services a fill request arriving at the partition at cycle and
// returns the cycle at which the line's data is ready to be sent back.
//
// Every path returns readyAt ≥ cycle + L2 latency: hits and DRAM misses do so
// naturally, and in-flight merges are clamped to that floor (a merged
// response still traverses the L2 pipeline, so it can never complete faster
// than a hit). The floor is what bounds the slack window: a response computed
// inside an epoch is never sendable within it (config.SlackAudit).
func (m *memPartition) access(lineAddr uint64, cycle int64) int64 {
	ra := m.serve(lineAddr, cycle)
	if d := ra - cycle; d < m.minRespLat {
		m.minRespLat = d
	}
	return ra
}

func (m *memPartition) serve(lineAddr uint64, cycle int64) int64 {
	if ra, ok := m.inflight[lineAddr]; ok && ra > cycle {
		m.ms.L2Merges++
		if min := cycle + m.latency; ra < min {
			ra = min
		}
		return ra // merge with the in-flight fetch
	}
	if p := m.l2.Hit(lineAddr, cycle); p.Present {
		m.ms.L2Hits++
		return cycle + m.latency
	}
	m.ms.L2Misses++
	readyAt := m.dramCtl.Access(lineAddr, cycle+m.latency)
	m.inflight[lineAddr] = readyAt
	return readyAt
}

// completeFill installs the line into the L2 once its DRAM fetch finished.
// Idempotent per in-flight fetch.
func (m *memPartition) completeFill(lineAddr uint64, cycle int64) {
	if _, ok := m.inflight[lineAddr]; !ok {
		return
	}
	delete(m.inflight, lineAddr)
	if p := m.l2.Probe(lineAddr); p.Present || p.Reserved {
		return
	}
	if _, ok := m.l2.Reserve(lineAddr, cache.ClassData, cycle, nil); ok {
		m.l2.Fill(lineAddr, cycle)
	}
}

// dramStats exposes the controller counters.
func (m *memPartition) dramStats() (reads, rowHits, rowMisses int64) {
	return m.dramCtl.Stats()
}
