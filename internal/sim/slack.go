package sim

import "fmt"

// maxSlackWindow caps the slack horizon (and with it every epoch) regardless
// of how large the config-derived bound is. Two reasons: the per-shard tick
// reports pack one bit per sub-cycle into a uint64, and longer epochs buy
// almost nothing once the barrier cost is amortized over a handful of cycles
// while growing every per-epoch buffer.
const maxSlackWindow = 8

// latencyUnobserved is the sentinel minimum for latency-audit floors that
// never saw a message.
const latencyUnobserved = int64(1)<<62 - 1

// LatencyAudit receives, via Options.LatencyAudit, the smallest
// cross-boundary latencies a run actually exhibited. The slack property test
// checks the config-derived bound against these empirical floors: the
// bounded-slack schedule is sound only while no message can cross between
// the SM side and the memory side in fewer than horizon cycles. Fields are
// latencyUnobserved when the run carried no such message.
type LatencyAudit struct {
	MinReqDelivery  int64 // request-network injection → arrival at L2 side
	MinRespDelivery int64 // response-network send → fill delivery at the SM
	MinL2Response   int64 // partition arrival → response data ready
}

// initSlack derives the engine's slack parameters from the (validated)
// config and options: horizon from the config alone, slackMax from
// Options.SlackWindow clamped into [1, horizon-1]. Epochs stop one cycle
// short of the horizon because drained prefetches are stamped one cycle
// early (cache.L1.DrainPrefetch keeps their per-cycle injection
// eligibility); the cap keeps even those stamps maturing strictly past
// their own epoch. Callers constructing engines directly around unvalidated
// configs still get a sane horizon ≥ 1.
func (e *engine) initSlack() {
	h := int64(e.cfg.SlackBound())
	if h > maxSlackWindow {
		h = maxSlackWindow
	}
	if h < 1 {
		h = 1
	}
	e.horizon = h
	cap := h - 1
	if cap < 1 {
		cap = 1
	}
	w := int64(e.opt.SlackWindow)
	if w <= 0 || w > cap {
		w = cap
	}
	e.slackMax = w
	e.slackOK = true
	e.epochStart = 0
	e.respSeq = 0
	e.minReqLat = latencyUnobserved
	e.minRespLat = latencyUnobserved
}

// slackConflictFatal makes a slack conflict panic instead of degrading. It
// is on under the race detector and in the sim tests (the equivalence
// matrices must fail loudly, not quietly fall back to per-cycle barriers)
// and off in production binaries, where the safe response to the impossible
// is to keep simulating correctly at SlackWindow=1.
var slackConflictFatal = raceEnabled

// slackConflict handles a response whose ready cycle landed inside its own
// epoch — impossible while every access path honours the L2 latency floor
// (memPartition.access), so reaching here means that invariant broke.
func (e *engine) slackConflict(readyAt, end int64) {
	if slackConflictFatal {
		panic(fmt.Sprintf("sim: slack conflict: response ready at %d within epoch ending %d (horizon %d)", readyAt, end, e.horizon))
	}
	e.slackOK = false
}
