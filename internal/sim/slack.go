package sim

import (
	"fmt"
	"math/bits"

	"snake/internal/trace"
)

// TurnaroundCap bounds the engine's turnaround delay: the fixed number of
// cycles between a tick-side event (a store issue, a CTA's last warp
// retiring) and the serial engine replaying it on the memory side (the store
// maturing for network injection, freed warp slots redispatching, a
// successor launch waking). The per-cycle engine replays these the next
// serial pass; bounded-slack ticking defers them by a constant so that every
// epoch shape yields the same replay cycle. Earlier revisions tied that
// constant to the horizon itself (then capped at 8), which meant widening
// the slack window bought barrier amortization at the price of modeling
// latency. The turnaround is now min(horizon, TurnaroundCap): identical to
// the old behaviour at every bound, but pinned — lifting the horizon to the
// full config bound no longer moves store or re-dispatch timing at all.
const TurnaroundCap = 8

// latencyUnobserved is the sentinel minimum for latency-audit floors that
// never saw a message.
const latencyUnobserved = int64(1)<<62 - 1

// LatencyAudit receives, via Options.LatencyAudit, the smallest
// cross-boundary latencies a run actually exhibited. The slack property test
// checks the config-derived bound against these empirical floors: the
// bounded-slack schedule is sound only while no message can cross between
// the SM side and the memory side in fewer than horizon cycles. Fields are
// latencyUnobserved when the run carried no such message.
type LatencyAudit struct {
	MinReqDelivery  int64 // request-network injection → arrival at L2 side
	MinRespDelivery int64 // response-network send → fill delivery at the SM
	MinL2Response   int64 // partition arrival → response data ready
}

// SlackInfo reports the slack parameters a run actually used, so callers see
// the effective schedule instead of a silently clamped request.
type SlackInfo struct {
	// Horizon is the config-derived visibility bound (config.SlackBound):
	// the minimum number of cycles any message needs to cross between the
	// SM side and the memory side, and therefore the widest admissible
	// epoch.
	Horizon int64
	// Window is the effective epoch-length cap: Options.SlackWindow
	// resolved into [1, Horizon] (0 or negative selects Horizon).
	Window int64
	// Turnaround is the store / CTA re-dispatch replay delay,
	// min(Horizon, TurnaroundCap).
	Turnaround int64
	// Requested is Options.SlackWindow as given (≤ 0 means auto).
	Requested int
	// Clamped reports that Requested exceeded Horizon and was clamped down.
	Clamped bool
	// BindingTerm names the config.SlackAudit term that set Horizon.
	BindingTerm string
}

// initSlack derives the engine's slack parameters from the (validated)
// config and options: horizon from the config alone — the full audit bound,
// no fixed cap — and slackMax from Options.SlackWindow clamped into
// [1, horizon]. Epochs may span the whole horizon: the drained-prefetch
// one-cycle-early stamp that used to force a horizon−1 cap is handled at its
// source (the serial phase runs the epoch's first prefetch drain itself; see
// engine.serialPhase). Callers constructing engines directly around
// unvalidated configs still get a sane horizon ≥ 1.
func (e *engine) initSlack() {
	a := e.cfg.SlackAudit()
	h := int64(a.Bound)
	if h < 1 {
		h = 1
	}
	e.horizon = h
	e.turn = h
	if e.turn > TurnaroundCap {
		e.turn = TurnaroundCap
	}
	w := int64(e.opt.SlackWindow)
	clamped := w > h
	if w <= 0 || clamped {
		w = h
	}
	e.slackMax = w
	e.slackInfo = SlackInfo{
		Horizon:     h,
		Window:      w,
		Turnaround:  e.turn,
		Requested:   e.opt.SlackWindow,
		Clamped:     clamped,
		BindingTerm: a.Limiting().Name,
	}
	e.slackOK = true
	e.epochStart = 0
	e.respSeq = 0
	e.minReqLat = latencyUnobserved
	e.minRespLat = latencyUnobserved
	// A miss-queue entry occupies a modeled slot until its virtual injection
	// cycle — turnaround residency plus per-cycle budget delays, in queue
	// order — however much later the engine pulls it (stamp + horizon).
	// Virtual occupancy keeps backpressure — reservation fails, prefetch
	// throttling — independent of the horizon the epoch machinery runs at.
	for _, sh := range e.shards {
		sh.sm.l1.SetMissQueueInjectionModel(e.turn, missInjectPerSM)
	}
}

// slackConflictFatal makes a slack conflict panic instead of degrading. It
// is on under the race detector and in the sim tests (the equivalence
// matrices must fail loudly, not quietly fall back to per-cycle barriers)
// and off in production binaries, where the safe response to the impossible
// is to keep simulating correctly at SlackWindow=1.
var slackConflictFatal = raceEnabled

// slackConflict handles an event whose replay cycle landed inside its own
// epoch — impossible while every access path honours the L2 latency floor
// (memPartition.access) and the epoch cutter honours the turnaround bound
// (actBound), so reaching here means one of those invariants broke.
func (e *engine) slackConflict(matureAt, end int64) {
	if slackConflictFatal {
		panic(fmt.Sprintf("sim: slack conflict: event matures at %d within epoch ending %d (horizon %d, turnaround %d)", matureAt, end, e.horizon, e.turn))
	}
	e.slackOK = false
}

// --- adaptive epoch cutter ----------------------------------------------
//
// CTA retirements replay after the turnaround delay, which is shorter than
// a wide horizon — so an epoch is admissible only while no shard can retire
// a CTA early enough for its slot-refill to land inside the epoch. actBound
// computes a conservative lower bound on the earliest cycle any warp could
// retire through an OpExit (relevant only while CTA re-dispatch or a
// pending launch could consume the freed slots), and the epoch loop caps
// the window at actBound + turnaround − 1. Stores need no bound: they
// mature after the full horizon (drainStores), which no epoch can span.
// During exit-heavy dispatch phases the cap shrinks epochs back toward the
// turnaround (exactly the old schedule); during memory stalls — where wide
// windows actually pay — every blocked warp's wake floor pushes the bound
// out and epochs stretch to the full horizon.
//
// Soundness of the per-warp floors:
//
//   - Every instruction costs at least one cycle (even zero-latency compute
//     advances busyUntil past the issue cycle), so pc-to-op instruction
//     distance is a valid lower bound on cycles-to-issue; replays,
//     reservation fails and barriers only delay further.
//   - A memory-blocked warp wakes no earlier than the first pending fill
//     delivery; a response not yet sent cannot be delivered before
//     start + horizon (the response network's latency is ≥ the bound).
//   - A barrier-parked warp needs some non-barrier warp to retire first and
//     is released to issue the cycle after, hence the aMin+1 floor.
//   - Dispatches and wakes land only at epoch starts (run() caps maxEnd at
//     them), so a scan at the epoch start sees every warp that could issue
//     within the epoch; skip spans issue nothing at all.
func (e *engine) actBound(start int64) int64 {
	if e.pendingLn == 0 && !e.moreCTAs() {
		return -1 // no consumer for freed slots: exits need no replay cap
	}
	best := int64(-1)
	for _, sh := range e.shards {
		s := sh.sm
		if s.resident == 0 {
			continue
		}
		fwake := start + e.horizon
		if f := sh.nextFill(); f >= 0 && f < fwake {
			fwake = f
		}
		if fwake < start {
			fwake = start
		}
		// aMin: the earliest any ready or memory-blocked warp can issue;
		// barrier releases chain off one of those retiring.
		aMin := int64(-1)
		for slot := range s.warps {
			var c int64
			switch s.warps[slot].state {
			case wsReady:
				if c = s.readyAt[slot]; c < start {
					c = start
				}
			case wsWaitMem:
				c = fwake
			default:
				continue
			}
			if aMin < 0 || c < aMin {
				aMin = c
			}
		}
		for slot := range s.warps {
			w := &s.warps[slot]
			var base int64
			switch w.state {
			case wsReady:
				if base = s.readyAt[slot]; base < start {
					base = start
				}
			case wsWaitMem:
				base = fwake
			case wsBarrier:
				if aMin < 0 {
					continue
				}
				base = aMin + 1
			default:
				continue
			}
			if d := w.opDist(trace.OpExit, &w.nextExit); d >= 0 {
				if c := base + int64(d); best < 0 || c < best {
					best = c
				}
			}
		}
		if best == start {
			return start
		}
	}
	return best
}

// --- variable-width epoch reports ----------------------------------------

// epochBits is a per-shard, per-epoch bitset with one bit per sub-cycle:
// bit i covers sub-cycle from+i of the span. Backing words are recycled
// across epochs (and across runs through shard.reset), so steady-state
// epochs allocate nothing.
type epochBits []uint64

// reset resizes the bitset to cover words 64-bit words and clears it.
func (b *epochBits) reset(words int) {
	s := *b
	if cap(s) < words {
		*b = make([]uint64, words)
		return
	}
	s = s[:words]
	for i := range s {
		s[i] = 0
	}
	*b = s
}

// set marks sub-cycle offset i.
func (b epochBits) set(i int64) { b[i>>6] |= 1 << uint(i&63) }

// test reports whether sub-cycle offset i is marked. Offsets past the
// current width read as unset.
func (b epochBits) test(i int64) bool {
	w := int(i >> 6)
	return w < len(b) && b[w]&(1<<uint(i&63)) != 0
}

// anySet reports whether any sub-cycle is marked.
func (b epochBits) anySet() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// orInto ORs b's marked sub-cycles into dst (sized to the same span) and
// reports whether b had any marked at all — the merge phase's accumulator
// for CTA-completion bits across a launch's shards.
func (b epochBits) orInto(dst epochBits) bool {
	any := false
	for i, w := range b {
		if w != 0 {
			dst[i] |= w
			any = true
		}
	}
	return any
}

// lastSet returns the highest marked sub-cycle offset (-1: none).
func (b epochBits) lastSet() int64 {
	for w := len(b) - 1; w >= 0; w-- {
		if b[w] != 0 {
			return int64(w)<<6 + int64(bits.Len64(b[w])) - 1
		}
	}
	return -1
}
