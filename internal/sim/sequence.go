package sim

import (
	"fmt"

	"snake/internal/trace"
)

// SequenceOptions configures a multi-kernel run (the paper's §1 extension:
// "it can be extended to support multiple applications where the chains of
// strides are detected within each application").
type SequenceOptions struct {
	Options
	// FlushL1 invalidates the L1s between kernels (the common driver
	// behaviour). Default false: caches stay warm.
	FlushL1 bool
	// ResetPrefetchers clears prefetcher state between kernels, scoping
	// chain detection to one application at a time. Default false: tables
	// persist, so a re-launched kernel starts pre-trained.
	ResetPrefetchers bool
}

// KernelSpan records one kernel's portion of a sequence run.
type KernelSpan struct {
	Name       string
	StartCycle int64
	EndCycle   int64
	Insts      int64
}

// Cycles returns the span's duration.
func (s KernelSpan) Cycles() int64 { return s.EndCycle - s.StartCycle }

// SequenceResult aggregates a multi-kernel run.
type SequenceResult struct {
	Result
	Spans []KernelSpan
}

// RunSequence executes the kernels back to back on one GPU instance: warp
// slots drain between kernels, the clock keeps running, and (by default)
// cache and prefetcher state carry over.
func RunSequence(kernels []*trace.Kernel, opt SequenceOptions) (*SequenceResult, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("sim: empty kernel sequence")
	}
	base := opt.Options
	if base.MaxCycles <= 0 {
		base.MaxCycles = 20_000_000 * int64(len(kernels))
	}
	base = base.withDefaults()
	if err := base.Config.Validate(); err != nil {
		return nil, err
	}
	for _, k := range kernels {
		if err := k.Validate(); err != nil {
			return nil, err
		}
		for _, cta := range k.CTAs {
			if len(cta.Warps) > base.Config.MaxWarpsPerSM {
				return nil, fmt.Errorf("sim: kernel %q CTA %d wider than an SM", k.Name, cta.ID)
			}
		}
	}

	e := newEngine(kernels[0], base)
	defer e.closeCrew() // the crew persists across the sequence's runs, not past it
	out := &SequenceResult{}
	var prevInsts int64
	for i, k := range kernels {
		if i > 0 {
			e.prepareKernel(k, opt.FlushL1, opt.ResetPrefetchers)
		}
		start := e.cycle
		if err := e.run(); err != nil {
			return nil, fmt.Errorf("sim: kernel %d (%s): %w", i, k.Name, err)
		}
		var insts int64
		for _, s := range e.shStats.Slice() {
			insts += s.Insts
		}
		out.Spans = append(out.Spans, KernelSpan{
			Name:       k.Name,
			StartCycle: start,
			EndCycle:   e.cycle,
			Insts:      insts - prevInsts,
		})
		prevInsts = insts
	}
	out.Result = *e.result()
	return out, nil
}

// prepareKernel rewires the engine for the next kernel in a sequence: flush
// policies apply first, then the kernel is loaded as a fresh one-launch App
// on the still-running clock (the initial activation wave in loadApp never
// flushes — RunSequence's ResetPrefetchers is the only policy here, exactly
// as before the launch layer).
func (e *engine) prepareKernel(k *trace.Kernel, flushL1, resetPf bool) {
	for _, sh := range e.shards {
		s := sh.sm
		if flushL1 {
			s.l1.Reset()
		}
		if resetPf && s.pf != nil {
			s.pf.Reset()
			s.l1.SetTrained(s.pf.Trained())
		}
	}
	e.loadApp(e.singleApp(k))
	e.fillSMs()
}
