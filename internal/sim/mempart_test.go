package sim

import (
	"testing"

	"snake/internal/config"
	"snake/internal/workloads"
)

// TestMemPartitionRowHitFasterThanRowMiss pins the DRAM row-buffer model's
// central contract: with a row already open, a second line from the same row
// costs CAS latency only, strictly less than the activate+CAS of the cold
// miss that opened it — and the controller counts exactly one of each.
func TestMemPartitionRowHitFasterThanRowMiss(t *testing.T) {
	cfg := config.Scaled(2, 8)
	m := newMemPartition(0, cfg, nil)

	cold := m.access(0, 100)
	missLat := cold - 100
	m.completeFill(0, cold)

	// A different line in the same DRAM row, issued long after the bank has
	// gone quiescent so no bank-busy queueing muddies the latency.
	sameRow := uint64(cfg.DRAMRowBytes / 2)
	hit := m.access(sameRow, 10_000)
	hitLat := hit - 10_000
	if hitLat >= missLat {
		t.Errorf("open-row access took %d cycles, not faster than the %d-cycle row miss", hitLat, missLat)
	}
	reads, rowHits, rowMisses := m.dramStats()
	if reads != 2 || rowHits != 1 || rowMisses != 1 {
		t.Errorf("dram counters reads=%d rowHits=%d rowMisses=%d, want 2/1/1", reads, rowHits, rowMisses)
	}
}

// TestMemPartitionPrechargePenalty checks the other side of the open-page
// policy: a row miss on a bank that already holds an open row pays a
// precharge on top of activate+CAS, so some row in a probe sweep must come
// back strictly slower than the cold miss on an empty bank — and every probe
// must be counted as a row miss (rows never falsely hit).
func TestMemPartitionPrechargePenalty(t *testing.T) {
	cfg := config.Scaled(2, 8)
	m := newMemPartition(0, cfg, nil)

	cold := m.access(0, 100)
	coldLat := cold - 100

	// Probe distinct rows with long quiescent gaps. The bank mapping is
	// swizzled, so rather than assuming which row shares row 0's bank, sweep
	// until one demonstrably pays the precharge.
	sawPrecharge := false
	cycle := int64(100_000)
	const probes = 64
	for row := uint64(1); row <= probes; row++ {
		lat := m.access(row*uint64(cfg.DRAMRowBytes), cycle) - cycle
		if lat < coldLat {
			t.Fatalf("row %d: closed-row access took %d cycles, faster than a cold miss (%d)", row, lat, coldLat)
		}
		if lat > coldLat {
			sawPrecharge = true
		}
		cycle += 100_000
	}
	if !sawPrecharge {
		t.Errorf("no probe among %d distinct rows paid a precharge over the cold-miss latency %d", probes, coldLat)
	}
	if _, rowHits, rowMisses := m.dramStats(); rowHits != 0 || rowMisses != probes+1 {
		t.Errorf("rowHits=%d rowMisses=%d, want 0 and %d: distinct rows must all miss", rowHits, rowMisses, probes+1)
	}
}

// TestMemPartitionMergeWindowCloses complements TestMemPartitionMergesInflight:
// merging applies only while the fetch is strictly in flight. At or after the
// data-ready cycle a same-line access is a fresh request — without a
// completeFill the line is not in L2 either, so DRAM sees a second read.
func TestMemPartitionMergeWindowCloses(t *testing.T) {
	m := newMemPartition(0, config.Scaled(2, 8), nil)
	line := uint64(0x4000)
	r1 := m.access(line, 100)
	r2 := m.access(line, r1) // window closed: ra > cycle no longer holds
	if r2 <= r1 {
		t.Errorf("post-window access ready at %d, not after the first fetch at %d", r2, r1)
	}
	if reads, _, _ := m.dramStats(); reads != 2 {
		t.Errorf("dram reads = %d, want 2: the closed merge window must issue a new read", reads)
	}
}

// TestDrainResponsesDeliveryOrdering drives the memory→SM response path
// white-box: responses pushed out of ready order must cross the response
// network in readyAt order, never before their data is ready, and land on
// each destination shard's ingress port in non-decreasing stamp order — the
// FIFO-equals-cycle-order property the parallel executor relies on.
func TestDrainResponsesDeliveryOrdering(t *testing.T) {
	k := workloads.StreamMicro(workloads.Tiny(), 256)
	e := newEngine(k, Options{Config: tinyCfg()}.withDefaults())

	lineSz := uint64(e.cfg.Unified.LineSize)
	push := func(ready int64, sm int, line uint64) {
		e.resps.push(resp{readyAt: ready, sm: sm, lineAddr: line, part: e.partOf(line)})
	}
	// Out-of-order pushes across two shards; per shard the readyAt values are
	// distinct so the expected per-port sequence is unambiguous.
	push(50, 0, 5*lineSz)
	push(10, 0, 1*lineSz)
	push(30, 1, 3*lineSz)
	push(12, 1, 2*lineSz)
	push(70, 0, 7*lineSz)

	step := func(c int64) {
		e.cycle = c
		e.net.tick(c)
		e.drainResponses(c)
	}
	// Before the earliest readyAt nothing may be sent, no matter how idle the
	// response network is.
	for c := int64(1); c < 10; c++ {
		step(c)
	}
	if len(e.resps) != 5 {
		t.Fatalf("%d responses sent before their data was ready", 5-len(e.resps))
	}
	for c := int64(10); c <= 200 && len(e.resps) > 0; c++ {
		step(c)
	}
	if len(e.resps) != 0 {
		t.Fatalf("%d responses still queued after 200 cycles", len(e.resps))
	}

	want := map[int][]uint64{
		0: {1 * lineSz, 5 * lineSz, 7 * lineSz},
		1: {2 * lineSz, 3 * lineSz},
	}
	for smID, wantLines := range want {
		sh := e.shards[smID]
		last := int64(-1)
		for i, wl := range wantLines {
			stamp := sh.fills.NextCycle()
			f, ok := sh.fills.PopDue(1 << 60)
			if !ok {
				t.Fatalf("sm %d: ingress holds %d fills, want %d", smID, i, len(wantLines))
			}
			if stamp < last {
				t.Errorf("sm %d: delivery stamp went backwards: %d after %d", smID, stamp, last)
			}
			last = stamp
			if f.lineAddr != wl {
				t.Errorf("sm %d: fill %d is line %#x, want %#x (readyAt order)", smID, i, f.lineAddr, wl)
			}
		}
		if _, ok := sh.fills.PopDue(1 << 60); ok {
			t.Errorf("sm %d: extra fill beyond the %d expected", smID, len(wantLines))
		}
	}
}

// TestDrainResponsesSerializesBandwidth checks response-network backpressure:
// a burst of same-cycle responses cannot all be delivered at once. The link
// serializes them — delivery stamps must span at least the burst's
// serialization time — and the bounded backlog forces the heap to drain over
// several cycles rather than booking the whole burst in one.
func TestDrainResponsesSerializesBandwidth(t *testing.T) {
	k := workloads.StreamMicro(workloads.Tiny(), 256)
	e := newEngine(k, Options{Config: tinyCfg()}.withDefaults())

	lineSz := e.cfg.Unified.LineSize
	const burst = 40
	for i := 0; i < burst; i++ {
		line := uint64(i) * uint64(lineSz)
		e.resps.push(resp{readyAt: 1, sm: 0, lineAddr: line, part: e.partOf(line)})
	}
	e.cycle = 1
	e.net.tick(1)
	e.drainResponses(1)
	if len(e.resps) == 0 {
		t.Fatal("entire burst booked in one cycle; the backlog bound never engaged")
	}
	for c := int64(2); c <= 500 && len(e.resps) > 0; c++ {
		e.cycle = c
		e.net.tick(c)
		e.drainResponses(c)
	}
	if len(e.resps) != 0 {
		t.Fatalf("%d responses still queued after 500 cycles", len(e.resps))
	}

	sh := e.shards[0]
	if got := sh.fills.Len(); got != burst {
		t.Fatalf("ingress holds %d fills, want %d", got, burst)
	}
	first := sh.fills.NextCycle()
	last := first
	for {
		stamp := sh.fills.NextCycle()
		if _, ok := sh.fills.PopDue(1 << 60); !ok {
			break
		}
		if stamp < last {
			t.Fatalf("delivery stamp went backwards: %d after %d", stamp, last)
		}
		last = stamp
	}
	// burst × lineSz bytes over a bpc-bytes/cycle link cannot be delivered in
	// fewer cycles than its serialization time.
	bpc := e.cfg.IcntBytesPerCycle * e.cfg.NumSM
	if minSpread := int64(burst*lineSz/bpc - 1); last-first < minSpread {
		t.Errorf("burst delivered within %d cycles; serialization needs at least %d", last-first, minSpread)
	}
}
