package sim

import (
	"runtime"
	"sync/atomic"
)

// shardGroup runs SM-shard ticks across a bounded set of persistent workers,
// one simulated cycle at a time, with a barrier on each side of the parallel
// phase. The calling (engine) goroutine is participant 0 and ticks its own
// stripe, so Parallelism=N uses N-1 extra goroutines.
//
// Determinism does not depend on the group at all: shards are data-disjoint
// during ticks (see shard), so any interleaving computes the same state. The
// group only has to provide the two happens-before edges of the cycle:
//
//	engine's serial writes → release (epoch increment, atomic) → worker ticks
//	worker ticks → arrive (counter increment, atomic) → engine's serial reads
//
// Workers spin briefly and then yield while waiting; on a loaded or
// single-core machine the yield path degrades to cooperative scheduling
// rather than burning the core the engine needs.
type shardGroup struct {
	shards []*shard
	n      int // participants, including the engine goroutine

	// cycle and quit are plain fields: they are written by the engine before
	// the epoch release and read by workers after observing it.
	cycle int64
	quit  bool

	epoch   atomic.Uint64
	arrived atomic.Int64
}

// startShardGroup launches n-1 workers over the shards. n must be ≥ 2 and
// is capped by the caller at len(shards).
func startShardGroup(shards []*shard, n int) *shardGroup {
	g := &shardGroup{shards: shards, n: n}
	for w := 1; w < n; w++ {
		go g.worker(w)
	}
	return g
}

// runCycle ticks every shard for cycle c and returns after all of them
// finished (the cycle barrier).
func (g *shardGroup) runCycle(c int64) {
	g.cycle = c
	g.epoch.Add(1) // release: workers may start this cycle
	for i := 0; i < len(g.shards); i += g.n {
		g.shards[i].tick(c)
	}
	g.join()
}

// stop terminates the workers and waits for them to exit.
func (g *shardGroup) stop() {
	g.quit = true
	g.epoch.Add(1)
	g.join()
}

// join waits until every worker has arrived at the barrier, then resets the
// arrival counter for the next epoch. Workers never touch the counter again
// until they observe that next epoch, so the reset cannot race.
func (g *shardGroup) join() {
	await(&g.arrived, int64(g.n-1))
	g.arrived.Store(0)
}

// worker ticks the stripe of shards with index ≡ w (mod n) each epoch.
func (g *shardGroup) worker(w int) {
	for epoch := uint64(1); ; epoch++ {
		awaitEpoch(&g.epoch, epoch)
		if g.quit {
			g.arrived.Add(1)
			return
		}
		c := g.cycle
		for i := w; i < len(g.shards); i += g.n {
			g.shards[i].tick(c)
		}
		g.arrived.Add(1)
	}
}

// spinLimit is how many tight polls to attempt before yielding the
// processor. Barriers open within nanoseconds when all participants are
// running; the yield path exists for oversubscribed machines.
const spinLimit = 128

func awaitEpoch(v *atomic.Uint64, target uint64) {
	for spins := 0; v.Load() < target; spins++ {
		if spins > spinLimit {
			runtime.Gosched()
		}
	}
}

func await(v *atomic.Int64, target int64) {
	for spins := 0; v.Load() < target; spins++ {
		if spins > spinLimit {
			runtime.Gosched()
		}
	}
}
