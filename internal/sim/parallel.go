package sim

import (
	"runtime"
	"sync/atomic"
)

// workUnit is one schedulable unit of the parallel phase: an SM shard or a
// memory partition. Units are data-disjoint during ticks — shards own their
// SM-private state, partitions own disjoint line-address sets — which is what
// lets the group run any subset of them concurrently.
type workUnit interface {
	tick(cycle int64)
}

// shardGroup runs work-unit ticks (memory partitions and SM shards) across a
// bounded set of persistent workers, one simulated cycle at a time, with a
// barrier on each side of the parallel phase. The calling (engine) goroutine
// is participant 0 and ticks its own stripe, so Parallelism=N uses N-1 extra
// goroutines.
//
// Determinism does not depend on the group at all: units are data-disjoint
// during ticks (see workUnit), so any interleaving computes the same state.
// The group only has to provide the two happens-before edges of the cycle:
//
//	engine's serial writes → release (epoch increment, atomic) → worker ticks
//	worker ticks → arrive (counter increment, atomic) → engine's serial reads
//
// A cycle is normally one combined wave over all units; with phase profiling
// enabled the engine instead runs two waves (partitions, then shards) via
// runSpan so the two halves' wall clocks are separable. Either schedule
// computes identical state — the units stay disjoint regardless of grouping.
//
// Workers spin briefly and then yield while waiting; on a loaded or
// single-core machine the yield path degrades to cooperative scheduling
// rather than burning the core the engine needs.
type shardGroup struct {
	units []workUnit
	n     int // participants, including the engine goroutine

	// cycle, lo, hi and quit are plain fields: they are written by the engine
	// before the epoch release and read by workers after observing it.
	cycle  int64
	lo, hi int // unit span for the current epoch
	quit   bool

	epoch   atomic.Uint64
	arrived atomic.Int64
}

// startShardGroup launches n-1 workers over the units. n must be ≥ 2; a
// wave whose span is narrower than n leaves the surplus workers idling at
// that epoch's barrier.
func startShardGroup(units []workUnit, n int) *shardGroup {
	g := &shardGroup{units: units, n: n}
	for w := 1; w < n; w++ {
		go g.worker(w)
	}
	return g
}

// runCycle ticks every unit for cycle c and returns after all of them
// finished (the cycle barrier).
func (g *shardGroup) runCycle(c int64) {
	g.runSpan(c, 0, len(g.units))
}

// runSpan ticks units [lo, hi) for cycle c as one barrier wave.
func (g *shardGroup) runSpan(c int64, lo, hi int) {
	g.cycle, g.lo, g.hi = c, lo, hi
	g.epoch.Add(1) // release: workers may start this wave
	for i := lo; i < hi; i += g.n {
		g.units[i].tick(c)
	}
	g.join()
}

// stop terminates the workers and waits for them to exit.
func (g *shardGroup) stop() {
	g.quit = true
	g.epoch.Add(1)
	g.join()
}

// join waits until every worker has arrived at the barrier, then resets the
// arrival counter for the next epoch. Workers never touch the counter again
// until they observe that next epoch, so the reset cannot race.
func (g *shardGroup) join() {
	await(&g.arrived, int64(g.n-1))
	g.arrived.Store(0)
}

// worker ticks the stripe of the epoch's span with offset ≡ w (mod n).
func (g *shardGroup) worker(w int) {
	for epoch := uint64(1); ; epoch++ {
		awaitEpoch(&g.epoch, epoch)
		if g.quit {
			g.arrived.Add(1)
			return
		}
		c := g.cycle
		for i := g.lo + w; i < g.hi; i += g.n {
			g.units[i].tick(c)
		}
		g.arrived.Add(1)
	}
}

// spinLimit is how many tight polls to attempt before yielding the
// processor. Barriers open within nanoseconds when all participants are
// running; the yield path exists for oversubscribed machines.
const spinLimit = 128

func awaitEpoch(v *atomic.Uint64, target uint64) {
	for spins := 0; v.Load() < target; spins++ {
		if spins > spinLimit {
			runtime.Gosched()
		}
	}
}

func await(v *atomic.Int64, target int64) {
	for spins := 0; v.Load() < target; spins++ {
		if spins > spinLimit {
			runtime.Gosched()
		}
	}
}
