package sim

import (
	"sync"
	"sync/atomic"
)

// workUnit is one schedulable unit of the parallel phase: an SM shard or a
// memory partition. Units are data-disjoint during tick spans — shards own
// their SM-private state, partitions own disjoint line-address sets — which
// is what lets the group run any subset of them concurrently.
type workUnit interface {
	tickSpan(from, to int64)
}

// taskRunner is the group's generic wave payload for non-span work (the
// epoch store scatter): runTask(i) must touch only state owned by task i, so
// any assignment of tasks to workers computes the same state.
type taskRunner interface {
	runTask(i int)
}

// shardGroup is a persistent crew of barrier workers that runs work waves —
// work-unit tick spans or generic task sets — one slack epoch at a time, with
// a barrier on each side of the parallel phase. The calling (engine)
// goroutine is participant 0 and runs its own stripe, so Parallelism=N uses
// N-1 extra goroutines.
//
// The crew is unit-agnostic and long-lived: the wave payload (units or tasks)
// is published per wave and cleared after the closing barrier, so a parked
// crew references nothing but itself. That is what lets one crew outlive
// engine Reset/reinit cycles and pool recycling — workers are created once
// per engine (per Parallelism value), parked between runs, and reclaimed by
// engine.closeCrew (explicitly via Engine.Close, or by the engine finalizer
// when a pooled engine is discarded).
//
// Determinism does not depend on the group at all: units are data-disjoint
// during tick spans (see workUnit) and tasks are data-disjoint by the
// taskRunner contract, so any interleaving computes the same state. The group
// only has to provide the two happens-before edges of the epoch:
//
//	engine's serial writes → release (epoch increment, atomic) → worker spans
//	worker spans → arrive (counter increment, atomic) → engine's serial reads
//
// An epoch is normally one combined wave over all units; with phase profiling
// enabled the engine instead runs two waves (partitions, then shards) via
// runSpan so the two halves' wall clocks are separable. Either schedule
// computes identical state — the units stay disjoint regardless of grouping.
//
// Waiters spin briefly, then park on a condition variable instead of
// yield-spinning: on a loaded or single-core machine a Gosched loop burns
// exactly the core the engine needs (the seed's par4-slower-than-serial
// pathology on one core), whereas a parked worker costs nothing until the
// engine wakes it. The wake-side epoch increment is atomic and happens
// before the broadcast under the same mutex the waiter re-checks under, so
// no wakeup can be lost.
type shardGroup struct {
	n int // participants, including the engine goroutine

	// Wave payload: exactly one of units/tasks is non-nil during a wave.
	// They are plain fields — written by the engine before the epoch release
	// and read by workers after observing it — and cleared after the closing
	// barrier so a parked crew holds no reference into any engine.
	units    []workUnit
	tasks    taskRunner
	from, to int64
	lo, hi   int // unit/task span for the current wave
	quit     bool
	stopped  bool // stop already ran (close paths are idempotent)

	epoch   atomic.Uint64
	arrived atomic.Int64

	mu       sync.Mutex
	wake     *sync.Cond // workers park here awaiting the next wave
	done     *sync.Cond // the engine parks here awaiting stragglers
	sleepers int        // workers currently parked on wake
	joinWait bool       // engine currently parked on done
}

// startShardGroup launches a parked crew of n-1 workers. n must be ≥ 2; a
// wave whose span is narrower than n leaves the surplus workers idling at
// that wave's barrier.
func startShardGroup(n int) *shardGroup {
	g := &shardGroup{n: n}
	g.wake = sync.NewCond(&g.mu)
	g.done = sync.NewCond(&g.mu)
	for w := 1; w < n; w++ {
		go g.worker(w)
	}
	return g
}

// runSpan ticks units [lo, hi) for the epoch [from, to] as one barrier wave
// and returns after all of them finished.
func (g *shardGroup) runSpan(units []workUnit, from, to int64, lo, hi int) {
	g.units, g.tasks = units, nil
	g.from, g.to, g.lo, g.hi = from, to, lo, hi
	g.release()
	for i := lo; i < hi; i += g.n {
		units[i].tickSpan(from, to)
	}
	g.join()
	g.units = nil
}

// runTasks runs tasks [0, n) of t as one barrier wave and returns after all
// of them finished.
func (g *shardGroup) runTasks(t taskRunner, n int) {
	g.units, g.tasks = nil, t
	g.lo, g.hi = 0, n
	g.release()
	for i := 0; i < n; i += g.n {
		t.runTask(i)
	}
	g.join()
	g.tasks = nil
}

// stop terminates the workers and waits for them to exit. Idempotent: close
// paths (explicit Close, run-error teardown, engine finalizer) may overlap.
func (g *shardGroup) stop() {
	if g.stopped {
		return
	}
	g.stopped = true
	g.quit = true
	g.release()
	g.join()
}

// release opens the next wave: the epoch increment is the release edge, and
// any parked workers are woken under the mutex afterwards. A worker that is
// between its epoch check and its Wait holds the mutex, so the broadcast
// cannot slip into that gap.
func (g *shardGroup) release() {
	g.epoch.Add(1)
	g.mu.Lock()
	if g.sleepers > 0 {
		g.wake.Broadcast()
	}
	g.mu.Unlock()
}

// join waits until every worker has arrived at the barrier, then resets the
// arrival counter for the next wave. Workers never touch the counter again
// until they observe that next wave, so the reset cannot race.
func (g *shardGroup) join() {
	target := int64(g.n - 1)
	for spins := 0; spins < spinLimit; spins++ {
		if g.arrived.Load() >= target {
			g.arrived.Store(0)
			return
		}
	}
	g.mu.Lock()
	g.joinWait = true
	for g.arrived.Load() < target {
		g.done.Wait()
	}
	g.joinWait = false
	g.mu.Unlock()
	g.arrived.Store(0)
}

// worker runs the stripe of each wave's span with offset ≡ w (mod n).
func (g *shardGroup) worker(w int) {
	for epoch := uint64(1); ; epoch++ {
		g.awaitEpoch(epoch)
		if g.quit {
			g.arrive()
			return
		}
		if t := g.tasks; t != nil {
			for i := g.lo + w; i < g.hi; i += g.n {
				t.runTask(i)
			}
		} else {
			from, to := g.from, g.to
			units := g.units
			for i := g.lo + w; i < g.hi; i += g.n {
				units[i].tickSpan(from, to)
			}
		}
		g.arrive()
	}
}

// awaitEpoch blocks until the group's epoch reaches target: a short spin for
// the hot all-cores-running case, then a parked wait.
func (g *shardGroup) awaitEpoch(target uint64) {
	for spins := 0; spins < spinLimit; spins++ {
		if g.epoch.Load() >= target {
			return
		}
	}
	g.mu.Lock()
	for g.epoch.Load() < target {
		g.sleepers++
		g.wake.Wait()
		g.sleepers--
	}
	g.mu.Unlock()
}

// arrive reports this worker's wave completion; the last arrival wakes a
// parked engine.
func (g *shardGroup) arrive() {
	if g.arrived.Add(1) == int64(g.n-1) {
		g.mu.Lock()
		if g.joinWait {
			g.done.Signal()
		}
		g.mu.Unlock()
	}
}

// spinLimit is how many tight polls to attempt before parking. Barriers open
// within nanoseconds when all participants are running; the park path exists
// for oversubscribed machines, where continuing to spin would steal the very
// core the still-working participant needs.
const spinLimit = 128
