package sim

import (
	"fmt"

	"snake/internal/stats"
	"snake/internal/trace"
)

// AppResult carries the outcome of an application (multi-launch) run: the
// usual aggregate Result plus per-launch records in App order and per-tenant
// rollups. Like Result.Stats, every field is bit-identical across skip,
// Parallelism and SlackWindow settings.
type AppResult struct {
	Result
	Launches stats.Launches
	Tenants  []stats.Tenant
}

// RunApp simulates the application under the given options: launches
// dispatch when their dependencies retire and their SM mask is free, tenants
// on disjoint masks run concurrently through the shared memory system, and
// Options.ChainPersistence decides whether prefetcher (Snake chain-table)
// state carries across launch boundaries. Each call constructs a fresh
// engine; repeat callers should hold an Engine.
func RunApp(a *trace.App, opt Options) (*AppResult, error) {
	var en Engine
	defer en.Close() // one-shot run: don't leave a parked crew to the finalizer
	return en.RunApp(a, opt)
}

// validateRunApp performs RunApp's pre-flight checks.
func validateRunApp(a *trace.App, opt Options) error {
	if opt.Context != nil {
		if err := opt.Context.Err(); err != nil {
			return fmt.Errorf("sim: aborted before start: %w", err)
		}
	}
	if err := a.Validate(); err != nil {
		return err
	}
	if err := opt.Config.Validate(); err != nil {
		return err
	}
	for i, l := range a.Launches {
		for _, cta := range l.Kernel.CTAs {
			if len(cta.Warps) > opt.Config.MaxWarpsPerSM {
				return fmt.Errorf("sim: app %q launch %d CTA %d has %d warps, more than %d warp slots per SM",
					a.Name, i, cta.ID, len(cta.Warps), opt.Config.MaxWarpsPerSM)
			}
		}
		if l.SMMask != 0 {
			if opt.Config.NumSM > 64 {
				return fmt.Errorf("sim: app %q launch %d has an SM mask but NumSM=%d > 64",
					a.Name, i, opt.Config.NumSM)
			}
			if l.SMMask>>uint(opt.Config.NumSM) != 0 {
				return fmt.Errorf("sim: app %q launch %d SM mask %#x references SMs >= NumSM=%d",
					a.Name, i, l.SMMask, opt.Config.NumSM)
			}
		}
	}
	return nil
}

// appResult assembles the per-launch records (App order — the canonical
// merge discipline, like shards and partitions) on top of result().
func (e *engine) appResult() *AppResult {
	ar := &AppResult{Result: *e.result()}
	ar.Launches = make(stats.Launches, len(e.launches))
	for i := range e.launches {
		ln := &e.launches[i]
		st := ln.acc
		st.Cycles = ln.retire - ln.start
		ar.Launches[i] = stats.Launch{
			Index:       i,
			Kernel:      ln.kernel.Name,
			Tenant:      ln.tenant,
			StartCycle:  ln.start,
			RetireCycle: ln.retire,
			Stats:       st,
		}
	}
	ar.Tenants = ar.Launches.Tenants()
	return ar
}
