package sim

import (
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/workloads"
)

// TestRoutePlanReplaysSerialArrivalOrder is the property test behind the
// parallel route phase: for randomized due-sets — non-decreasing arrival
// stamps with ties, random partition targets — the prefix-sum slot assignment
// must (a) hand each partition a contiguous, disjoint slot range, (b) present
// each ring's due view in global arrival order restricted to that partition,
// and (c) produce a routed slab whose heap replay is identical whether the
// responses are pushed in partition-major slot order (what mergeEpoch does)
// or in global arrival order (what the serial engine did). (c) is the whole
// determinism argument: the heap's pop sequence depends only on the
// (readyAt, seq) key set, and seq is the global arrival rank stamped at
// injection.
func TestRoutePlanReplaysSerialArrivalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	k := workloads.StreamMicro(workloads.Tiny(), 256)
	for trial := 0; trial < 50; trial++ {
		e := newEngine(k, Options{Config: parCfg()}.withDefaults())
		n := 1 + rng.Intn(200)
		start := int64(100)
		end := start + int64(rng.Intn(32))
		type pushed struct {
			seq   int64
			part  int
			cycle int64
		}
		all := make([]pushed, 0, n)
		c := start
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				// Advance the arrival clock sometimes; the rest tie on it,
				// like several network sends landing in one cycle.
				c += int64(rng.Intn(4))
			}
			line := uint64(rng.Intn(1<<20)) << 7
			e.pushReq(c, reqMsg{sm: rng.Intn(4), lineAddr: line})
			all = append(all, pushed{seq: e.respSeq, part: e.partOf(line), cycle: c})
		}
		due := 0
		for _, p := range all {
			if p.cycle <= end {
				due++
			}
		}
		if got := e.planRoute(end); got != due {
			t.Fatalf("trial %d: planRoute found %d due, want %d", trial, got, due)
		}

		// (a) slot ranges: contiguous in partition order, sized to the ring's
		// due prefix, covering [0, due) exactly.
		base := 0
		for pi, p := range e.parts {
			if p.slotBase != base {
				t.Fatalf("trial %d: partition %d slotBase=%d, want %d (prefix-sum must be contiguous)",
					trial, pi, p.slotBase, base)
			}
			if got := len(p.dueA) + len(p.dueB); got != p.dueN {
				t.Fatalf("trial %d: partition %d view holds %d, dueN=%d", trial, pi, got, p.dueN)
			}
			base += p.dueN
		}
		if base != due {
			t.Fatalf("trial %d: slot ranges cover %d, want %d", trial, base, due)
		}

		// (b) each due view is the global arrival order restricted to its
		// partition: push order is arrival order (stamps are non-decreasing),
		// so filtering the log by partition gives the expected seq sequence.
		for pi, p := range e.parts {
			var want []int64
			for _, q := range all {
				if q.part == pi && q.cycle <= end {
					want = append(want, q.seq)
				}
			}
			got := make([]int64, 0, p.dueN)
			for i := range p.dueA {
				got = append(got, p.dueA[i].Msg.seq)
			}
			for i := range p.dueB {
				got = append(got, p.dueB[i].Msg.seq)
			}
			if !reflect.DeepEqual(got, append([]int64{}, want...)) && len(want)+len(got) > 0 {
				t.Fatalf("trial %d: partition %d due seqs %v, want arrival-restriction %v", trial, pi, got, want)
			}
		}

		// (c) heap replay: tick the partitions to fill the slots, then push
		// once in partition-major slot order and once in global arrival
		// order. The pop sequences must match element for element.
		for _, p := range e.parts {
			if p.dueN > 0 {
				p.tickSpan(start, end)
			}
		}
		var slotOrder, arrivalOrder respHeap
		for _, r := range e.routed {
			slotOrder.push(r)
		}
		byArrival := append([]resp(nil), e.routed...)
		sort.Slice(byArrival, func(i, j int) bool { return byArrival[i].seq < byArrival[j].seq })
		for _, r := range byArrival {
			arrivalOrder.push(r)
		}
		for i := 0; len(slotOrder) > 0; i++ {
			a, b := slotOrder.pop(), arrivalOrder.pop()
			if a != b {
				t.Fatalf("trial %d: pop %d diverges: slot-order %+v, arrival-order %+v", trial, i, a, b)
			}
		}
		if len(arrivalOrder) != 0 {
			t.Fatalf("trial %d: heaps drained unevenly", trial)
		}
	}
}

// TestStoreScatterMatchesSerialOracle is the property test for the epoch
// store merge: randomized per-shard store streams (cycle-sorted, as tickSpan
// stages them, with heavy same-cycle ties across shards) must come out of the
// counting scatter in exactly (cycle, smID, seq) order — the order the
// per-cycle serial engine appended. Pass 1 runs through the real shard
// tickSpan; the par leg drives the crew scatter path (runTasks) that the
// -race CI leg exercises.
func TestStoreScatterMatchesSerialOracle(t *testing.T) {
	k := workloads.StreamMicro(workloads.Tiny(), 256)
	for _, par := range []bool{false, true} {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 12; trial++ {
			e := newEngine(k, Options{Config: parCfg()}.withDefaults())
			// Stores must mature strictly past the epoch end (mergeStores
			// asserts it); the white-box streams below are staged inside the
			// epoch, so widen the horizon instead of modeling maturation.
			e.horizon = 1 << 20
			if par {
				e.crew = startShardGroup(4)
				e.group = e.crew
			}
			start := int64(1000)
			end := start + int64(rng.Intn(60))
			var want []storeMsg
			for si, sh := range e.shards {
				n := rng.Intn(40)
				if par {
					// Every shard active and the epoch total past
					// scatterParallelMin, so the crew path is really taken.
					n += scatterParallelMin
				} else if si == 0 {
					n = 0 // store-free shards must be skipped by the active scan
				}
				c := start
				for i := 0; i < n; i++ {
					if rng.Intn(2) == 0 {
						c += int64(rng.Intn(3))
						if c > end {
							c = end
						}
					}
					sh.out.addStore(uint64(rng.Intn(1<<20))<<7, c)
				}
				want = append(want, sh.out.stores...)
				sh.tickSpan(start, end) // pass 1: per-sub-cycle counts
			}
			sort.SliceStable(want, func(i, j int) bool {
				a, b := &want[i], &want[j]
				if a.cycle != b.cycle {
					return a.cycle < b.cycle
				}
				if a.sm != b.sm {
					return a.sm < b.sm
				}
				return a.seq < b.seq
			})
			e.mergeStores(start, end)
			if !reflect.DeepEqual(e.stores, want) && len(e.stores)+len(want) > 0 {
				t.Fatalf("par=%v trial %d: scatter produced %d stores diverging from the (cycle, smID, seq) oracle (%d)",
					par, trial, len(e.stores), len(want))
			}
			for si, sh := range e.shards {
				if len(sh.out.stores) != 0 {
					t.Fatalf("par=%v trial %d: shard %d egress not cleared", par, trial, si)
				}
			}
			if par {
				e.group = nil
				e.closeCrew()
			}
		}
	}
}

// TestScatterHighParallelismEquivalence is the end-to-end race target for the
// parallel route and store scatter: twelve forced workers, both extreme slack
// windows, two store-heavy Table 2 benchmarks, bit-identical to serial. The
// CI -race leg runs this (with the white-box scatter/route tests) at
// GOMAXPROCS≥4.
func TestScatterHighParallelismEquivalence(t *testing.T) {
	pf := func(int) prefetch.Prefetcher { return core.NewSnake() }
	for _, name := range []string{"lps", "mum"} {
		k, err := workloads.Build(name, workloads.Tiny())
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(k, Options{Config: parCfg(), NewPrefetcher: pf})
		if err != nil {
			t.Fatal(err)
		}
		for _, slack := range []int{1, 0} { // per-cycle barriers and the full audit bound
			got, err := Run(k, Options{
				Config: parCfg(), NewPrefetcher: pf,
				Parallelism: 12, SlackWindow: slack, ForceParallelism: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Result.Slack echoes the requested window; the oracle is the
			// simulation output.
			got.Slack = want.Slack
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s P=12 slack=%d diverges from serial\n got:  %+v\n want: %+v",
					name, slack, got.Stats, want.Stats)
			}
		}
	}
}

// TestCrewPersistsAcrossRunsAndReset pins the persistent-crew contract: the
// parked worker group created by the first parallel run survives pooled
// reruns, engine Reset across kernels, and prefetcher recycling — it is
// replaced only when the engine is recycled under a different Parallelism —
// and the active-group alias never outlives a run.
func TestCrewPersistsAcrossRunsAndReset(t *testing.T) {
	lps, err := workloads.Build("lps", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	mum, err := workloads.Build("mum", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	pf := func(int) prefetch.Prefetcher { return core.NewSnake() }
	opt := Options{Config: parCfg(), NewPrefetcher: pf, Parallelism: 4, ForceParallelism: true}
	en := NewEngine()
	defer en.Close()
	if _, err := en.RunTagged(lps, opt, "snake"); err != nil {
		t.Fatal(err)
	}
	crew := en.e.crew
	if crew == nil || crew.n != 4 {
		t.Fatal("first parallel run left no 4-worker crew")
	}
	if en.e.group != nil {
		t.Fatal("active-group alias survived the run")
	}
	for i := 0; i < 3; i++ {
		if _, err := en.RunTagged(lps, opt, "snake"); err != nil {
			t.Fatal(err)
		}
		if en.e.crew != crew {
			t.Fatalf("pooled rerun %d respawned the crew", i)
		}
	}
	// Reset across a different kernel keeps the crew too.
	if _, err := en.RunTagged(mum, opt, "snake"); err != nil {
		t.Fatal(err)
	}
	if en.e.crew != crew {
		t.Fatal("engine Reset across kernels respawned the crew")
	}
	// A serial run parks the crew without touching it.
	serial := opt
	serial.Parallelism = 1
	serial.ForceParallelism = false
	if _, err := en.RunTagged(lps, serial, "snake"); err != nil {
		t.Fatal(err)
	}
	if en.e.crew != crew {
		t.Fatal("serial run on a pooled engine disturbed the parked crew")
	}
	// Only a Parallelism change replaces it.
	wider := opt
	wider.Parallelism = 8
	if _, err := en.RunTagged(lps, wider, "snake"); err != nil {
		t.Fatal(err)
	}
	if en.e.crew == crew || en.e.crew == nil || en.e.crew.n != 8 {
		t.Fatal("parallelism change must rebuild the crew at the new width")
	}
}

// TestCrewWorkersReleasedOnClose is the goroutine-leak test: parallel runs
// park workers rather than exiting them, so Close (and the config-change
// engine replacement inside RunTagged) must return the process to its
// pre-engine goroutine count.
func TestCrewWorkersReleasedOnClose(t *testing.T) {
	goroutinesSettleTo := func(baseline int) bool {
		for i := 0; i < 200; i++ {
			if runtime.NumGoroutine() <= baseline {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return false
	}
	k, err := workloads.Build("lps", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	pf := func(int) prefetch.Prefetcher { return core.NewSnake() }
	opt := Options{Config: parCfg(), NewPrefetcher: pf, Parallelism: 4, ForceParallelism: true}
	// Flush finalizer-driven crew teardown left by earlier tests so the
	// baseline is stable before we start counting.
	runtime.GC()
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	en := NewEngine()
	if _, err := en.RunTagged(k, opt, "snake"); err != nil {
		t.Fatal(err)
	}
	if g := runtime.NumGoroutine(); g < baseline+3 {
		t.Fatalf("parked crew missing: %d goroutines, want >= %d (3 workers beyond baseline)", g, baseline+3)
	}
	en.Close()
	if !goroutinesSettleTo(baseline) {
		t.Fatalf("Close leaked crew workers: %d goroutines, baseline %d", runtime.NumGoroutine(), baseline)
	}

	// Close is idempotent and the engine stays usable: the next parallel run
	// starts a fresh crew, and a config change mid-pool must close the
	// replaced engine's crew rather than abandon it to the finalizer.
	en.Close()
	if _, err := en.RunTagged(k, opt, "snake"); err != nil {
		t.Fatal(err)
	}
	smaller := opt
	smaller.Config = tinyCfg()
	if _, err := en.RunTagged(k, smaller, "snake"); err != nil {
		t.Fatal(err)
	}
	en.Close()
	if !goroutinesSettleTo(baseline) {
		t.Fatalf("config-change replacement leaked crew workers: %d goroutines, baseline %d", runtime.NumGoroutine(), baseline)
	}
}
