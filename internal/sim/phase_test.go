package sim

import (
	"reflect"
	"testing"

	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/profiling"
	"snake/internal/workloads"
)

// TestPhaseProfileEquivalence pins the profiler's non-interference contract:
// attaching a phase accumulator — which switches the parallel phase to the
// two-wave schedule so partition and shard time are separable — must not
// change Result at any Parallelism, and the accumulator must come back with
// a plausible breakdown (time recorded, serial share strictly inside (0,1)).
func TestPhaseProfileEquivalence(t *testing.T) {
	k, err := workloads.Build("hotspot", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		for _, slack := range []int{1, 0} {
			opt := Options{
				Config:           parCfg(),
				NewPrefetcher:    func(int) prefetch.Prefetcher { return core.NewSnake() },
				Parallelism:      p,
				SlackWindow:      slack,
				ForceParallelism: true,
			}
			want, err := Run(k, opt)
			if err != nil {
				t.Fatalf("P=%d slack=%d unprofiled: %v", p, slack, err)
			}
			var prof profiling.Phases
			opt.PhaseProfile = &prof
			got, err := Run(k, opt)
			if err != nil {
				t.Fatalf("P=%d slack=%d profiled: %v", p, slack, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("P=%d slack=%d: profiling changed results\n got:  %+v\n want: %+v", p, slack, got.Stats, want.Stats)
			}
			if prof.TotalNs() <= 0 {
				t.Fatalf("P=%d slack=%d: no phase time recorded", p, slack)
			}
			if prof.Ns(profiling.PhaseSerialRoute) <= 0 || prof.Ns(profiling.PhaseShards) <= 0 {
				t.Errorf("P=%d slack=%d: route=%dns shards=%dns; both run every executed cycle",
					p, slack, prof.Ns(profiling.PhaseSerialRoute), prof.Ns(profiling.PhaseShards))
			}
			if share := prof.SerialShare(); share <= 0 || share >= 1 {
				t.Errorf("P=%d slack=%d: serial share %f outside (0,1)", p, slack, share)
			}
			if prof.Barriers() <= 0 || prof.EpochCycles() < prof.Barriers() {
				t.Errorf("P=%d slack=%d: barriers=%d epochCycles=%d; every epoch crosses one barrier and ticks at least one cycle",
					p, slack, prof.Barriers(), prof.EpochCycles())
			}
			if slack == 1 && prof.CyclesPerBarrier() != 1 {
				t.Errorf("P=%d slack=1: cycles/barrier = %f, want exactly 1", p, prof.CyclesPerBarrier())
			}
			if slack == 0 && prof.CyclesPerBarrier() <= 1 {
				t.Errorf("P=%d slack=auto: cycles/barrier = %f, want > 1 (epochs never lengthened)", p, prof.CyclesPerBarrier())
			}
		}
	}
}

// TestPhaseProfileAccumulatesAcrossRuns checks the caller-owned aggregation
// window: a recycled engine keeps adding to the same accumulator, so a sweep
// can profile its whole batch with one Phases value.
func TestPhaseProfileAccumulatesAcrossRuns(t *testing.T) {
	k, err := workloads.Build("lps", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	var prof profiling.Phases
	opt := Options{Config: parCfg(), PhaseProfile: &prof}
	en := NewEngine()
	if _, err := en.Run(k, opt); err != nil {
		t.Fatal(err)
	}
	first := prof.TotalNs()
	if first <= 0 {
		t.Fatal("no phase time recorded on first run")
	}
	if _, err := en.Run(k, opt); err != nil {
		t.Fatal(err)
	}
	if prof.TotalNs() <= first {
		t.Errorf("second run did not accumulate: %dns then %dns", first, prof.TotalNs())
	}
}
