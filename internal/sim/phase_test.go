package sim

import (
	"reflect"
	"testing"

	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/profiling"
	"snake/internal/workloads"
)

// TestPhaseProfileEquivalence pins the profiler's non-interference contract:
// attaching a phase accumulator — which switches the parallel phase to the
// two-wave schedule so partition and shard time are separable — must not
// change Result at any Parallelism, and the accumulator must come back with
// a plausible breakdown (time recorded, serial share strictly inside (0,1)).
func TestPhaseProfileEquivalence(t *testing.T) {
	k, err := workloads.Build("hotspot", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		opt := Options{
			Config:        parCfg(),
			NewPrefetcher: func(int) prefetch.Prefetcher { return core.NewSnake() },
			Parallelism:   p,
		}
		want, err := Run(k, opt)
		if err != nil {
			t.Fatalf("P=%d unprofiled: %v", p, err)
		}
		var prof profiling.Phases
		opt.PhaseProfile = &prof
		got, err := Run(k, opt)
		if err != nil {
			t.Fatalf("P=%d profiled: %v", p, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("P=%d: profiling changed results\n got:  %+v\n want: %+v", p, got.Stats, want.Stats)
		}
		if prof.TotalNs() <= 0 {
			t.Fatalf("P=%d: no phase time recorded", p)
		}
		if prof.Ns(profiling.PhaseSerialRoute) <= 0 || prof.Ns(profiling.PhaseShards) <= 0 {
			t.Errorf("P=%d: route=%dns shards=%dns; both run every executed cycle",
				p, prof.Ns(profiling.PhaseSerialRoute), prof.Ns(profiling.PhaseShards))
		}
		if share := prof.SerialShare(); share <= 0 || share >= 1 {
			t.Errorf("P=%d: serial share %f outside (0,1)", p, share)
		}
	}
}

// TestPhaseProfileAccumulatesAcrossRuns checks the caller-owned aggregation
// window: a recycled engine keeps adding to the same accumulator, so a sweep
// can profile its whole batch with one Phases value.
func TestPhaseProfileAccumulatesAcrossRuns(t *testing.T) {
	k, err := workloads.Build("lps", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	var prof profiling.Phases
	opt := Options{Config: parCfg(), PhaseProfile: &prof}
	en := NewEngine()
	if _, err := en.Run(k, opt); err != nil {
		t.Fatal(err)
	}
	first := prof.TotalNs()
	if first <= 0 {
		t.Fatal("no phase time recorded on first run")
	}
	if _, err := en.Run(k, opt); err != nil {
		t.Fatal(err)
	}
	if prof.TotalNs() <= first {
		t.Errorf("second run did not accumulate: %dns then %dns", first, prof.TotalNs())
	}
}
