package sim

import (
	"testing"
	"testing/quick"

	"snake/internal/config"
)

func TestRespHeapOrdering(t *testing.T) {
	f := func(times []int64) bool {
		var h respHeap
		for _, c := range times {
			h.push(resp{readyAt: c % 10000})
		}
		last := int64(-1 << 62)
		for h.Len() > 0 {
			r := h.pop()
			if r.readyAt < last {
				return false
			}
			last = r.readyAt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMemPartitionMergesInflight(t *testing.T) {
	m := newMemPartition(0, config.Scaled(2, 8), nil)
	r1 := m.access(0x1000, 100)
	r2 := m.access(0x1000, 101) // same line while in flight: merged
	if r2 != r1 {
		t.Errorf("merged access ready at %d, want %d", r2, r1)
	}
	// After the fill completes, the line hits in L2.
	m.completeFill(0x1000, r1)
	r3 := m.access(0x1000, r1+10)
	if r3-(r1+10) >= r1-100 {
		t.Errorf("L2 hit latency %d not faster than the DRAM fetch %d", r3-(r1+10), r1-100)
	}
}

func TestMemPartitionCompleteFillIdempotent(t *testing.T) {
	m := newMemPartition(0, config.Scaled(2, 8), nil)
	ready := m.access(0x2000, 100)
	m.completeFill(0x2000, ready)
	m.completeFill(0x2000, ready+1) // second call is a no-op
	reads, _, _ := m.dramStats()
	if reads != 1 {
		t.Errorf("dram reads = %d, want 1", reads)
	}
}

func TestPartOfSpreadsStridedStreams(t *testing.T) {
	e := &engine{cfg: config.Scaled(4, 64)}
	e.parts = make([]*memPartition, e.cfg.L2Partitions)
	counts := make([]int, e.cfg.L2Partitions)
	// A 512-byte-strided stream (LIB's pattern) must not camp on one or two
	// partitions.
	for i := 0; i < 1024; i++ {
		counts[e.partOf(uint64(i)*512)]++
	}
	used := 0
	for _, c := range counts {
		if c > 0 {
			used++
		}
	}
	if used < e.cfg.L2Partitions/2 {
		t.Errorf("strided stream used only %d/%d partitions: %v", used, e.cfg.L2Partitions, counts)
	}
}

func TestPartOfKeepsRowsTogether(t *testing.T) {
	e := &engine{cfg: config.Scaled(4, 64)}
	e.parts = make([]*memPartition, e.cfg.L2Partitions)
	// All lines of one DRAM row must map to the same partition so row
	// locality survives partition interleaving.
	row := uint64(12345) * uint64(e.cfg.DRAMRowBytes)
	want := e.partOf(row)
	for off := 0; off < e.cfg.DRAMRowBytes; off += e.cfg.Unified.LineSize {
		if got := e.partOf(row + uint64(off)); got != want {
			t.Fatalf("row split across partitions at offset %d", off)
		}
	}
}
