package sim

import (
	"time"

	"snake/internal/profiling"
)

// phaseClock attributes the engine's wall clock to profiling phases. Each
// lap charges the time since the previous lap (or start) to the given phase.
// With no accumulator attached every method is a cheap no-op, so the cycle
// loop carries the laps unconditionally.
//
// Profiling must not change simulation results: the clock only reads
// time.Now between phases, and the only behavioural difference it induces —
// the two-wave barrier schedule in tickUnits — computes identical state (see
// shardGroup). TestPhaseProfileEquivalence pins this.
type phaseClock struct {
	prof *profiling.Phases
	last time.Time
}

// start attaches the accumulator (nil disables the clock) and begins timing.
func (c *phaseClock) start(p *profiling.Phases) {
	c.prof = p
	if p != nil {
		c.last = time.Now()
	}
}

// lap charges the time since the previous lap to ph.
func (c *phaseClock) lap(ph profiling.Phase) {
	if c.prof == nil {
		return
	}
	now := time.Now()
	c.prof.Add(ph, now.Sub(c.last).Nanoseconds())
	c.last = now
}
