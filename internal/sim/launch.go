package sim

import (
	"math/bits"

	"snake/internal/stats"
	"snake/internal/trace"
)

// Application launch layer (DESIGN.md "Application launch layer"): the engine
// is split into a persistent machine — SM shards, L2 partitions, ports,
// barrier, allocated once per config — and per-launch state held in launchRun
// records. The run loop doubles as a launch scheduler: when a launch's last
// CTA completes, the launch retires at that cycle c*, its SMs are released,
// and any launch whose dependencies are all retired activates at c* + horizon
// (a wake, handled exactly like matured CTA redispatch: epochs are capped so
// the wake lands on an epoch start, keeping results independent of epoch
// shape). A bare Kernel runs as the trivial one-launch App through the same
// machinery, bit-identical to the pre-launch-layer engine — the equivalence
// matrices are the oracle.

// launchPhase is a launch's lifecycle state.
type launchPhase uint8

const (
	lnPending launchPhase = iota // waiting on dependencies or SMs
	lnRunning                    // CTAs dispatching/executing on its SMs
	lnRetired                    // last CTA completed
)

// launchRun is the per-launch simulation state: the CTA dispatch cursor, the
// launch's SM shard set, and its attributed statistics. Everything machine-
// shaped lives on the engine; everything here is rebuilt by loadApp.
type launchRun struct {
	kernel *trace.Kernel
	deps   []int
	mask   uint64 // 0: all SMs
	tenant int
	state  launchPhase

	ctaNext int      // next undispatched CTA index
	shards  []*shard // the launch's SM shards, smID order (aliases e.shards for a full mask)

	start  int64     // activation cycle
	retire int64     // last-CTA-completion cycle c*
	acc    stats.Sim // counters attributed to this launch (see claimSMs)
}

// singleApp wraps a bare kernel as a one-launch App using engine-owned
// scratch, so the kernel Run path stays allocation-free on reuse.
func (e *engine) singleApp(k *trace.Kernel) *trace.App {
	e.oneLaunch[0] = trace.KernelLaunch{Kernel: k}
	e.oneApp = trace.App{Name: k.Name, Launches: e.oneLaunch[:]}
	return &e.oneApp
}

// loadApp installs an application's launch state onto the machine: one
// launchRun per launch, all SMs released and attribution cleared, then the
// initial activation wave (every launch with no dependencies whose SM mask is
// free, in App order).
func (e *engine) loadApp(a *trace.App) {
	e.app = a
	e.launches = e.launches[:0]
	for i := range a.Launches {
		l := &a.Launches[i]
		e.launches = append(e.launches, launchRun{
			kernel: l.Kernel,
			deps:   l.DependsOn,
			mask:   l.SMMask,
			tenant: l.Tenant,
			state:  lnPending,
			shards: e.maskShards(l.SMMask),
		})
	}
	e.pendingLn = len(e.launches)
	e.wakeAt = e.wakeAt[:0]
	for i := range e.smBusy {
		e.smBusy[i] = -1
		e.smAttr[i] = -1
	}
	// Initial activations never flush prefetcher state: a fresh machine has
	// nothing to flush, and a sequence run (prepareKernel) applies its own
	// ResetPrefetchers policy. ChainPersistence governs scheduler
	// activations only (applyWakes).
	e.activateEligible(e.cycle, false)
}

// maskShards resolves a launch SM mask to its shard set in smID order. The
// zero mask aliases the engine's full shard slice (no allocation — the
// single-kernel hot path).
func (e *engine) maskShards(mask uint64) []*shard {
	if mask == 0 {
		return e.shards
	}
	out := make([]*shard, 0, bits.OnesCount64(mask))
	for m := mask; m != 0; m &= m - 1 {
		out = append(out, e.shards[bits.TrailingZeros64(m)])
	}
	return out
}

// depsRetired reports whether all of a launch's dependencies have retired.
func (e *engine) depsRetired(ln *launchRun) bool {
	for _, d := range ln.deps {
		if e.launches[d].state != lnRetired {
			return false
		}
	}
	return true
}

// maskFree reports whether none of the launch's SMs is owned by a running
// launch.
func (e *engine) maskFree(ln *launchRun) bool {
	for _, sh := range ln.shards {
		if e.smBusy[sh.sm.id] >= 0 {
			return false
		}
	}
	return true
}

// claimSMs takes exclusive ownership of the launch's SMs and starts its stat
// attribution window: each shard's counters accrue to the claiming launch
// from this snapshot until the next claim of that shard (or end of run).
// Claims happen only at launch activations — deterministic, epoch-aligned
// cycles — so attribution is independent of Parallelism and SlackWindow.
func (e *engine) claimSMs(ln *launchRun, li int) {
	for _, sh := range ln.shards {
		id := sh.sm.id
		e.flushShardDelta(id)
		e.smBusy[id] = li
		e.smAttr[id] = li
		e.smBase[id] = *e.shStats.Shard(id)
	}
}

// flushShardDelta attributes the counters a shard accrued since its last
// snapshot to the launch that owned the window, and re-bases the snapshot.
func (e *engine) flushShardDelta(smID int) {
	li := e.smAttr[smID]
	if li < 0 {
		return
	}
	cur := *e.shStats.Shard(smID)
	d := cur
	d.Sub(&e.smBase[smID])
	e.smBase[smID] = cur
	e.launches[li].acc.Merge(&d)
}

// finalizeLaunchStats closes every open attribution window at end of run.
// Called by result() before the L1 end-of-run accounting, so per-launch stats
// cover execution windows only; end-of-run artifacts (unused-prefetch
// classification, throttle totals) remain global.
func (e *engine) finalizeLaunchStats() {
	for id := range e.smAttr {
		e.flushShardDelta(id)
	}
}

// activateEligible activates every pending launch whose dependencies have
// retired and whose SM mask is free, in App order — the deterministic
// tie-break when several launches mature at the same cycle (mirroring the
// (cycle, smID, seq) store-order discipline). With flush set (a scheduler
// activation under ChainPersistence=false) the activated launch's SMs get
// their prefetcher state cleared, scoping chain detection to one launch;
// otherwise Snake's chain tables carry over and the launch starts
// pre-trained. L1 data stays warm either way (the common driver behaviour).
func (e *engine) activateEligible(start int64, flush bool) bool {
	if e.pendingLn == 0 {
		return false
	}
	activated := false
	for i := range e.launches {
		ln := &e.launches[i]
		if ln.state != lnPending || !e.depsRetired(ln) || !e.maskFree(ln) {
			continue
		}
		e.claimSMs(ln, i)
		ln.state = lnRunning
		ln.start = start
		ln.ctaNext = 0
		for _, sh := range ln.shards {
			s := sh.sm
			s.kernel = ln.kernel
			if flush && s.pf != nil {
				s.pf.Reset()
				s.l1.SetTrained(s.pf.Trained())
			}
		}
		e.pendingLn--
		activated = true
	}
	return activated
}

// applyWakes pops matured launch-scheduler wakes due at the epoch start and
// runs an activation wave. Wakes mature only at epoch starts (run caps each
// epoch at the earliest pending wake), so activations land exactly where
// per-cycle barriers would put them. A wake whose launches turn out not yet
// eligible (SMs still busy) is harmless: every retirement with pending
// launches schedules another wake.
func (e *engine) applyWakes(start int64) {
	n := 0
	for n < len(e.wakeAt) && e.wakeAt[n] <= start {
		n++
	}
	if n == 0 {
		return
	}
	m := copy(e.wakeAt, e.wakeAt[n:])
	e.wakeAt = e.wakeAt[:m]
	if e.activateEligible(start, !e.opt.ChainPersistence) {
		e.fillSMs()
	}
}

// pushWake schedules an activation wave, keeping the queue ascending (two
// launches retiring in one epoch may produce out-of-order wake cycles).
func (e *engine) pushWake(c int64) {
	e.wakeAt = append(e.wakeAt, c)
	for i := len(e.wakeAt) - 1; i > 0 && e.wakeAt[i-1] > e.wakeAt[i]; i-- {
		e.wakeAt[i-1], e.wakeAt[i] = e.wakeAt[i], e.wakeAt[i-1]
	}
}

// moreCTAs reports whether any running launch still has undispatched CTAs —
// the gate for CTA-redispatch maturation (pending launches don't count: their
// CTAs dispatch after an activation wake, not a slot refill).
func (e *engine) moreCTAs() bool {
	for i := range e.launches {
		ln := &e.launches[i]
		if ln.state == lnRunning && ln.ctaNext < len(ln.kernel.CTAs) {
			return true
		}
	}
	return false
}

// retireScan detects launch retirements in the just-ticked epoch
// [start, end]: a running launch with every CTA dispatched and every one of
// its SMs drained retired at c* — the last sub-cycle one of its shards
// reported a CTA completion. The detection epoch always contains that
// completion (done() flips only via retireCTA, which sets the shard's ctaMask
// bit), and shard ticking is bit-identical across epoch shapes, so c* is an
// absolute cycle independent of Parallelism and SlackWindow.
func (e *engine) retireScan(start, end int64) {
	for li := range e.launches {
		ln := &e.launches[li]
		if ln.state != lnRunning || ln.ctaNext < len(ln.kernel.CTAs) {
			continue
		}
		done := true
		for _, sh := range ln.shards {
			if !sh.sm.done() {
				done = false
				break
			}
		}
		if !done {
			continue
		}
		last := int64(-1)
		for _, sh := range ln.shards {
			if l := sh.report.cta.lastSet(); l > last {
				last = l
			}
		}
		c := end
		if last >= 0 {
			c = start + last
		}
		ln.state = lnRetired
		ln.retire = c
		for _, sh := range ln.shards {
			e.smBusy[sh.sm.id] = -1
		}
		if e.pendingLn > 0 {
			if c+e.turn <= end {
				// Unreachable: the epoch cutter's exit lookahead is armed
				// whenever a launch is pending, so no CTA retirement can
				// occur early enough for its wake to land in its own epoch.
				e.slackConflict(c+e.turn, end)
			}
			e.pushWake(c + e.turn)
		}
	}
}
