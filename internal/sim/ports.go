package sim

// This file defines the typed, cycle-stamped messages that cross the
// SM-shard / memory-side boundary, and the per-shard egress buffer they are
// staged in. After the port refactor these messages are the ONLY way state
// moves across the boundary:
//
//	SM shard  --reqMsg-->   memory side   (fill requests, pulled from the
//	                                       shard's request port at the
//	                                       barrier, in smID order)
//	SM shard  --storeMsg--> memory side   (write-through stores, staged in
//	                                       the shard's egress during its
//	                                       tick, merged at the barrier in
//	                                       (smID, seq) order)
//	memory side --fillMsg--> SM shard     (line fills, pushed into the
//	                                       shard's cycle-stamped ingress
//	                                       queue, delivered when due)
//
// Everything else an SM owns (warps, L1, MSHRs, prefetcher, statistics) is
// shard-private, which is what lets shards tick concurrently; see DESIGN.md
// "Parallel execution".

// fillMsg is a completed memory response in flight toward an SM's L1. It is
// delivered through the shard's icnt.Ingress queue, whose stamp carries the
// delivery cycle.
type fillMsg struct {
	lineAddr uint64
	prefetch bool
}

// reqMsg is a fill request in flight toward the L2 side. Its ingress stamp
// carries the arrival cycle at the partition crossbar; seq is the request's
// global arrival rank, assigned by the engine at injection time (strictly
// increasing across all partitions). The computed response inherits seq, so
// the epoch merge can push responses in any partition-major order and the
// response heap still replays them in exact serial arrival order — which is
// what lets routing bin requests per partition at injection instead of in a
// serial per-epoch walk.
type reqMsg struct {
	sm       int
	seq      int64
	lineAddr uint64
	prefetch bool
}

// storeMsg is one write-through store packet staged by a shard. cycle is the
// sub-cycle it was issued at and seq the shard-local stamp assigned at issue;
// the epoch merge orders the global store queue by (cycle, smID, seq), which
// reproduces per-cycle barrier merging exactly. The engine may not send a
// store before cycle + slack horizon: the visibility delay that makes the
// epoch-deferred merge invisible (see DESIGN.md "Bounded-slack ticking").
type storeMsg struct {
	sm    int
	seq   int64
	addr  uint64
	cycle int64
}

// egress buffers one shard's outbound messages for the epoch being ticked.
// The shard appends during its (possibly concurrent) tick span; the engine
// drains it at the epoch barrier and it must be empty before the next tick
// span starts. Entries are naturally in (cycle, seq) order: sub-cycles run
// forward and seq only grows.
type egress struct {
	sm     int
	seq    int64 // monotonically increasing per-shard message stamp
	stores []storeMsg
}

// addStore stages a write-through store packet issued at the given sub-cycle.
func (e *egress) addStore(addr uint64, cycle int64) {
	e.seq++
	e.stores = append(e.stores, storeMsg{sm: e.sm, seq: e.seq, addr: addr, cycle: cycle})
}
