package sim

// eventKind distinguishes the two in-flight message types.
type eventKind uint8

const (
	evReqAtL2  eventKind = iota // fill request arrives at its L2 partition
	evRespAtL1                  // fill response arrives back at the SM's L1
)

// event is one scheduled message delivery.
type event struct {
	cycle    int64
	kind     eventKind
	sm       int
	lineAddr uint64
	prefetch bool
}

// The two heaps below are hand-rolled rather than container/heap adapters:
// heap.Push/heap.Pop box every element into an interface{}, which made each
// in-flight request allocate on the hot path. The sift rules (strict-less
// comparisons, swap-to-end pop) mirror container/heap exactly, so pop order
// — ties included — is bit-identical to the seed engine's.

// eventHeap is a min-heap of events ordered by delivery cycle.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].cycle < s[i].cycle) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	// Sift the new root down within s[:n].
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && s[r].cycle < s[j].cycle {
			j = r
		}
		if !(s[j].cycle < s[i].cycle) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	e := s[n]
	*h = s[:n]
	return e
}

// popDue removes and returns the earliest event if it is due at or before
// cycle.
func (h *eventHeap) popDue(cycle int64) (event, bool) {
	if len(*h) == 0 || (*h)[0].cycle > cycle {
		return event{}, false
	}
	return h.pop(), true
}

// nextCycle returns the earliest scheduled cycle, or -1 when empty.
func (h eventHeap) nextCycle() int64 {
	if len(h) == 0 {
		return -1
	}
	return h[0].cycle
}

// resp is a memory response waiting for response-network bandwidth.
type resp struct {
	readyAt  int64
	sm       int
	lineAddr uint64
	part     int
	prefetch bool
}

// respHeap is a min-heap of responses ordered by data-ready cycle.
type respHeap []resp

func (h respHeap) Len() int { return len(h) }

func (h *respHeap) push(r resp) {
	s := append(*h, r)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].readyAt < s[i].readyAt) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *respHeap) peek() (resp, bool) {
	if len(*h) == 0 {
		return resp{}, false
	}
	return (*h)[0], true
}

func (h *respHeap) pop() resp {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && s[r].readyAt < s[j].readyAt {
			j = r
		}
		if !(s[j].readyAt < s[i].readyAt) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	r := s[n]
	*h = s[:n]
	return r
}
