package sim

// resp is a memory response waiting for response-network bandwidth.
//
// Responses are the one in-flight message class that still needs a heap:
// DRAM row timing makes readyAt non-monotone in service order, so a FIFO
// ring (icnt.Ingress) would mis-order them. Requests and fills ride
// Ingress queues instead — the interconnect's serialized bandwidth stamps
// them with non-decreasing delivery cycles, so send order is delivery order.
//
// The heap is hand-rolled rather than a container/heap adapter: heap.Push/
// heap.Pop box every element into an interface{}, which made each in-flight
// response allocate on the hot path.
//
// Ordering is the total order (readyAt, seq): seq is the global arrival rank
// the engine stamps on each request at injection (deterministic smID-order
// pull) and the response inherits, so the pop sequence — ties included — is
// a pure function of the response set, independent of how heap pushes
// interleave with pops. That independence is what lets bounded-slack epochs
// defer a whole epoch's pushes to one merge, and lets that merge push slots
// in partition-major rather than global arrival order, without perturbing
// any downstream statistic (see DESIGN.md "Bounded-slack ticking" and
// "Deterministic parallel routing"). Responses pushed with seq 0 (white-box
// tests) tie-break exactly like the strict-less heap the seed engine used.
type resp struct {
	readyAt  int64
	seq      int64
	sm       int
	lineAddr uint64
	part     int
	prefetch bool
}

// respLess is the heap's strict total order.
func respLess(a, b *resp) bool {
	if a.readyAt != b.readyAt {
		return a.readyAt < b.readyAt
	}
	return a.seq < b.seq
}

// respHeap is a min-heap of responses ordered by (data-ready cycle, seq).
type respHeap []resp

func (h respHeap) Len() int { return len(h) }

func (h *respHeap) push(r resp) {
	s := append(*h, r)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !respLess(&s[j], &s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *respHeap) peek() (resp, bool) {
	if len(*h) == 0 {
		return resp{}, false
	}
	return (*h)[0], true
}

func (h *respHeap) pop() resp {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	// Sift the new root down within s[:n].
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && respLess(&s[r], &s[j]) {
			j = r
		}
		if !respLess(&s[j], &s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	r := s[n]
	*h = s[:n]
	return r
}
