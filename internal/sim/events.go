package sim

import "container/heap"

// eventKind distinguishes the two in-flight message types.
type eventKind uint8

const (
	evReqAtL2  eventKind = iota // fill request arrives at its L2 partition
	evRespAtL1                  // fill response arrives back at the SM's L1
)

// event is one scheduled message delivery.
type event struct {
	cycle    int64
	kind     eventKind
	sm       int
	lineAddr uint64
	prefetch bool
}

// eventHeap is a min-heap of events ordered by delivery cycle.
type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].cycle < h[j].cycle }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (h *eventHeap) push(e event) { heap.Push(h, e) }

// popDue removes and returns the earliest event if it is due at or before
// cycle.
func (h *eventHeap) popDue(cycle int64) (event, bool) {
	if len(*h) == 0 || (*h)[0].cycle > cycle {
		return event{}, false
	}
	return heap.Pop(h).(event), true
}

// nextCycle returns the earliest scheduled cycle, or -1 when empty.
func (h eventHeap) nextCycle() int64 {
	if len(h) == 0 {
		return -1
	}
	return h[0].cycle
}

// resp is a memory response waiting for response-network bandwidth.
type resp struct {
	readyAt  int64
	sm       int
	lineAddr uint64
	part     int
	prefetch bool
}

// respHeap is a min-heap of responses ordered by data-ready cycle.
type respHeap []resp

func (h respHeap) Len() int            { return len(h) }
func (h respHeap) Less(i, j int) bool  { return h[i].readyAt < h[j].readyAt }
func (h respHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *respHeap) Push(x interface{}) { *h = append(*h, x.(resp)) }
func (h *respHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (h *respHeap) push(r resp) { heap.Push(h, r) }

func (h *respHeap) peek() (resp, bool) {
	if len(*h) == 0 {
		return resp{}, false
	}
	return (*h)[0], true
}

func (h *respHeap) pop() resp { return heap.Pop(h).(resp) }
