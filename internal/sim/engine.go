// Package sim is the cycle-level GPU memory-system simulator: SMs with warp
// schedulers and scoreboarded warps, per-SM L1 controllers (MSHRs, miss
// queues, reservation fails), a bandwidth-limited interconnect, banked L2
// partitions and DRAM timing. It substitutes for Accel-Sim in the Snake
// reproduction; see DESIGN.md for the substitution argument.
package sim

import (
	"context"
	"errors"
	"fmt"

	"snake/internal/config"
	"snake/internal/prefetch"
	"snake/internal/stats"
	"snake/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	Config config.GPU
	// Context, when non-nil, is polled periodically inside the cycle loop;
	// cancellation aborts the run with the context's error. A nil Context
	// runs to completion.
	Context context.Context
	// NewPrefetcher constructs the per-SM prefetcher; nil runs the baseline.
	NewPrefetcher func(smID int) prefetch.Prefetcher
	// MaxCycles aborts runaway simulations (default 20,000,000).
	MaxCycles int64
	// StoreBytes is the store packet size on the interconnect (default 32).
	StoreBytes int
	// RequestBytes is the fill-request packet size (default 8).
	RequestBytes int
	// MLPPerWarp is the per-warp memory-level-parallelism window: how many
	// loads a warp may have in flight before it blocks (default 2).
	MLPPerWarp int
	// MaxInflightFills caps outstanding fill requests in the memory system
	// (finite L2/DRAM queueing). When the cap is reached, L1 miss queues
	// back up and demand accesses suffer reservation fails — the congestion
	// behaviour §2 attributes to miss-queue pressure. Default:
	// 128 × L2Partitions (see withDefaults).
	MaxInflightFills int
	// DisableSkip forces the engine to execute every cycle individually
	// instead of fast-forwarding over provably idle spans. Skipping is
	// exact — Result.Stats is bit-identical either way (see DESIGN.md
	// "Engine fast-forwarding" and the golden equivalence test) — so this
	// exists as an escape hatch for debugging and for validating that
	// equivalence.
	DisableSkip bool
}

// withDefaults returns opt with zero-valued tunables replaced by their
// defaults (shared by Run, RunSequence and the white-box tests).
func (opt Options) withDefaults() Options {
	if opt.MaxCycles <= 0 {
		opt.MaxCycles = 20_000_000
	}
	if opt.StoreBytes <= 0 {
		opt.StoreBytes = 32
	}
	if opt.RequestBytes <= 0 {
		opt.RequestBytes = 8
	}
	if opt.MaxInflightFills <= 0 {
		opt.MaxInflightFills = 128 * opt.Config.L2Partitions
	}
	if opt.MLPPerWarp <= 0 {
		opt.MLPPerWarp = 2
	}
	return opt
}

// Result carries the outcome of a run.
type Result struct {
	Stats stats.Sim   // aggregated over SMs, plus global counters
	PerSM []stats.Sim // per-SM counters
}

// engine is the live simulation state.
type engine struct {
	cfg    config.GPU
	opt    Options
	kernel *trace.Kernel

	cycle    int64
	net      *icntNet
	parts    []*memPartition
	sms      []*sm
	events   eventHeap
	resps    respHeap
	stores   []storePkt
	ctaNext  int // next undispatched CTA index
	ageCtr   int64
	inflight int   // outstanding fill requests in the memory system
	skipped  int64 // cycles elided by event-driven fast-forwarding

	perSM []stats.Sim
}

type storePkt struct {
	sm   int
	addr uint64
}

// Run simulates the kernel under the given options and returns aggregated
// statistics.
func Run(k *trace.Kernel, opt Options) (*Result, error) {
	if opt.Context != nil {
		if err := opt.Context.Err(); err != nil {
			return nil, fmt.Errorf("sim: aborted before start: %w", err)
		}
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := opt.Config.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	for _, cta := range k.CTAs {
		if len(cta.Warps) > opt.Config.MaxWarpsPerSM {
			return nil, fmt.Errorf("sim: CTA %d has %d warps, more than %d warp slots per SM",
				cta.ID, len(cta.Warps), opt.Config.MaxWarpsPerSM)
		}
	}
	e := newEngine(k, opt)
	if err := e.run(); err != nil {
		return nil, err
	}
	return e.result(), nil
}

func newEngine(k *trace.Kernel, opt Options) *engine {
	cfg := opt.Config
	e := &engine{
		cfg:    cfg,
		opt:    opt,
		kernel: k,
		net:    newIcntNet(cfg),
		perSM:  make([]stats.Sim, cfg.NumSM),
	}
	e.parts = make([]*memPartition, cfg.L2Partitions)
	for i := range e.parts {
		e.parts[i] = newMemPartition(cfg)
	}
	e.sms = make([]*sm, cfg.NumSM)
	for i := range e.sms {
		var pf prefetch.Prefetcher
		if opt.NewPrefetcher != nil {
			pf = opt.NewPrefetcher(i)
		}
		e.sms[i] = newSM(i, cfg, pf, &e.perSM[i], opt.MLPPerWarp)
		e.sms[i].kernel = k
		e.sms[i].env = &smEnv{eng: e, sm: e.sms[i]}
	}
	return e
}

// partOf maps a line address to its L2 partition. Interleaving is at DRAM
// row granularity so a whole row stays within one partition (preserving row
// locality), with XOR folding so power-of-two strides spread across
// partitions instead of camping on a few.
func (e *engine) partOf(lineAddr uint64) int {
	row := lineAddr / uint64(e.cfg.DRAMRowBytes)
	return int((row ^ (row >> 3) ^ (row >> 6) ^ (row >> 9)) % uint64(len(e.parts)))
}

// enqueueStore records write-through store traffic (non-blocking for the
// warp; a simplification documented in DESIGN.md).
func (e *engine) enqueueStore(sm int, addr uint64) {
	e.stores = append(e.stores, storePkt{sm: sm, addr: addr})
}

// ctxCheckInterval is how often (in cycles) the engine polls for
// cancellation; a power of two so the check is a cheap mask.
const (
	ctxCheckShift    = 12
	ctxCheckInterval = 1 << ctxCheckShift
)

// deadlockIdleCycles is how many consecutive no-progress, no-traffic cycles
// the engine tolerates before declaring a deadlock.
const deadlockIdleCycles = 1_000_000

func (e *engine) run() error {
	e.fillSMs()
	idle := int64(0)
	for e.cycle < e.opt.MaxCycles {
		e.cycle++
		if e.opt.Context != nil && e.cycle&(ctxCheckInterval-1) == 0 {
			if err := e.opt.Context.Err(); err != nil {
				return fmt.Errorf("sim: aborted at cycle %d: %w", e.cycle, err)
			}
		}
		e.net.tick(e.cycle)
		e.processEvents()
		e.drainResponses()
		e.drainMissQueues()
		e.drainStores()
		anyRetired := e.step()
		if e.finished() {
			break
		}
		if anyRetired || len(e.events) > 0 || len(e.resps) > 0 {
			idle = 0
		} else {
			// Deadlock guard: nothing retired and nothing in flight for a
			// long time means a stuck warp (a bug, not a workload property).
			idle++
			if idle > deadlockIdleCycles {
				return errors.New("sim: deadlock: no progress and no in-flight traffic")
			}
		}
		if e.opt.DisableSkip {
			continue
		}

		// Event-driven fast-forward: if no component can act before some
		// future cycle, jump there instead of idling through the gap. Every
		// elided cycle is provably a no-op (see nextInteresting and DESIGN.md
		// "Engine fast-forwarding"), except for three pieces of cycle-indexed
		// state that are advanced by the whole span at once: the stall
		// classification counters, the idle/deadlock counter, and the
		// interconnect's sliding windows (rolled forward by net.tick at the
		// next executed cycle).
		target := e.nextInteresting()
		if target >= 0 && target <= e.cycle+1 {
			continue
		}
		if len(e.events) == 0 && len(e.resps) == 0 {
			// Idle-counting mode: stop where the deadlock guard would fire so
			// the error (if the target never arrives) lands on the same cycle
			// per-cycle execution reports it.
			if limit := e.cycle + (deadlockIdleCycles + 1 - idle); target < 0 || target > limit {
				target = limit
			}
		}
		if target > e.opt.MaxCycles+1 {
			target = e.opt.MaxCycles + 1
		}
		span := target - 1 - e.cycle
		if span <= 0 {
			continue
		}
		if e.opt.Context != nil {
			// The seed loop polls for cancellation every ctxCheckInterval
			// cycles; preserve that wall-progress bound across jumps by
			// polling whenever the span crosses a poll boundary.
			if b := (e.cycle>>ctxCheckShift + 1) << ctxCheckShift; b < target {
				if err := e.opt.Context.Err(); err != nil {
					return fmt.Errorf("sim: aborted at cycle %d: %w", b, err)
				}
			}
		}
		for _, s := range e.sms {
			// Warp states are frozen across the span, so each elided cycle
			// would have classified identically.
			s.classifyStallSpan(span)
			// Every elided cycle issues nothing, so per-cycle execution would
			// have run a fruitless scheduler pass each cycle; replay its
			// (idempotent) state effect once.
			s.idleSchedulers()
		}
		if len(e.events) == 0 && len(e.resps) == 0 {
			idle += span
		}
		e.skipped += span
		e.cycle = target - 1
	}
	if e.cycle >= e.opt.MaxCycles {
		return fmt.Errorf("sim: exceeded MaxCycles=%d", e.opt.MaxCycles)
	}
	return nil
}

// nextInteresting returns the earliest future cycle at which any engine
// component could possibly act, or -1 when nothing is pending at all (a
// deadlock unless MaxCycles intervenes). Every returned bound is
// conservative: cycles strictly between e.cycle and the returned value are
// guaranteed to replay the current cycle's no-op exactly, so they can be
// elided without changing any statistic. The candidates, mirroring the cycle
// loop's order:
//
//   - the earliest scheduled event delivery (processEvents);
//   - the earliest response send: its data-ready cycle and the response
//     network's backlog-drain cycle (drainResponses);
//   - the request network's backlog-drain cycle while stores are queued
//     (drainStores) or any L1 holds drainable demand misses
//     (drainMissQueues);
//   - the next cycle outright when an L1 could trickle a staged prefetch
//     into its miss queue, or when an SM's prefetcher does per-cycle work
//     that may not be elided (Snake while throttled: halted-cycle accounting
//     and hysteresis boundaries must fire cycle by cycle);
//   - each SM's earliest ready-warp wake-up (issue).
//
// Warps waiting on memory or barriers wake only through those same events
// and issues, so they impose no separate bound.
func (e *engine) nextInteresting() int64 {
	cur := e.cycle
	best := int64(-1)
	if c := e.events.nextCycle(); c >= 0 {
		best = c
	}
	if r, ok := e.resps.peek(); ok {
		c := e.net.nextRespAccept(cur)
		if r.readyAt > c {
			c = r.readyAt
		}
		if best < 0 || c < best {
			best = c
		}
	}
	if len(e.stores) > 0 {
		if c := e.net.nextReqAccept(cur); best < 0 || c < best {
			best = c
		}
	}
	for _, s := range e.sms {
		if s.pf != nil && !prefetch.CanSkipCycles(s.pf, cur) {
			return cur + 1
		}
		if s.l1.PrefetchQueueLen() > 0 && !s.l1.DemandQueueFull() {
			return cur + 1
		}
		if s.l1.DemandQueueLen() > 0 && e.inflight < e.opt.MaxInflightFills {
			if c := e.net.nextReqAccept(cur); best < 0 || c < best {
				best = c
			}
		}
		if w := s.nextWake(); w >= 0 && (best < 0 || w < best) {
			best = w
		}
		if best >= 0 && best <= cur+1 {
			return cur + 1
		}
	}
	if best >= 0 && best < cur+1 {
		return cur + 1
	}
	return best
}

// fillSMs dispatches queued CTAs onto SMs with enough free slots.
func (e *engine) fillSMs() {
	for {
		progress := false
		for _, s := range e.sms {
			if e.ctaNext >= len(e.kernel.CTAs) {
				return
			}
			need := len(e.kernel.CTAs[e.ctaNext].Warps)
			if s.freeSlots() >= need {
				s.dispatchCTA(e.kernel, e.ctaNext, &e.ageCtr)
				e.ctaNext++
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// processEvents handles all deliveries due this cycle.
func (e *engine) processEvents() {
	for {
		ev, ok := e.events.popDue(e.cycle)
		if !ok {
			return
		}
		switch ev.kind {
		case evReqAtL2:
			p := e.partOf(ev.lineAddr)
			readyAt := e.parts[p].access(ev.lineAddr, ev.cycle)
			e.resps.push(resp{readyAt: readyAt, sm: ev.sm, lineAddr: ev.lineAddr, part: p, prefetch: ev.prefetch})
		case evRespAtL1:
			e.inflight--
			s := e.sms[ev.sm]
			waiters := s.l1.Fill(ev.lineAddr, e.cycle)
			s.wake(waiters, e.cycle)
		}
	}
}

// drainResponses sends ready memory responses back over the interconnect.
func (e *engine) drainResponses() {
	lineBytes := e.cfg.Unified.LineSize
	for {
		r, ok := e.resps.peek()
		if !ok || r.readyAt > e.cycle {
			return
		}
		deliverAt, sent := e.net.trySendResp(lineBytes)
		if !sent {
			return
		}
		e.resps.pop()
		e.parts[r.part].completeFill(r.lineAddr, e.cycle)
		e.events.push(event{cycle: deliverAt, kind: evRespAtL1, sm: r.sm, lineAddr: r.lineAddr, prefetch: r.prefetch})
	}
}

// missInjectPerSM is how many outgoing fill requests each SM may inject into
// the request network per cycle.
const missInjectPerSM = 3

// drainMissQueues injects outgoing fill requests, up to missInjectPerSM per
// SM per cycle, subject to the in-flight cap (downstream queue capacity).
// Staged prefetch requests trickle into each shared miss queue at
// cache.PrefetchDrainPerCycle per cycle.
func (e *engine) drainMissQueues() {
	for _, s := range e.sms {
		s.l1.DrainPrefetch(e.cycle)
		for k := 0; k < missInjectPerSM; k++ {
			if e.inflight >= e.opt.MaxInflightFills {
				return
			}
			if _, any := s.l1.PeekMiss(); !any {
				break
			}
			deliverAt, sent := e.net.trySendReq(e.opt.RequestBytes)
			if !sent {
				return
			}
			req, _ := s.l1.PopMiss()
			e.inflight++
			e.events.push(event{cycle: deliverAt, kind: evReqAtL2, sm: s.id, lineAddr: req.LineAddr, prefetch: req.Prefetch})
		}
	}
}

// drainStores sends write-through store traffic at low priority.
func (e *engine) drainStores() {
	n := 0
	for n < len(e.stores) {
		if _, sent := e.net.trySendReq(e.opt.StoreBytes); !sent {
			break
		}
		n++
	}
	if n > 0 {
		// Compact in place rather than re-slicing (e.stores = e.stores[n:]):
		// re-slicing strands the consumed prefix of the backing array, so
		// append would grow a fresh array every time the queue cycled through
		// its capacity instead of reusing the existing one.
		m := copy(e.stores, e.stores[n:])
		e.stores = e.stores[:m]
	}
}

// step runs one cycle of every SM and returns whether anything retired.
func (e *engine) step() bool {
	any := false
	for _, s := range e.sms {
		if s.pf != nil {
			s.pf.OnCycle(e.cycle, s.env)
		}
		res := s.issue(e.cycle, e)
		if res.retired > 0 {
			any = true
		} else {
			s.classifyStall(res.resFail)
		}
		if res.ctaFinished {
			e.fillSMs()
		}
	}
	return any
}

// finished reports whether all CTAs have been dispatched and completed and
// no traffic is in flight.
func (e *engine) finished() bool {
	if e.ctaNext < len(e.kernel.CTAs) {
		return false
	}
	for _, s := range e.sms {
		if !s.done() {
			return false
		}
	}
	return len(e.events) == 0 && len(e.resps) == 0
}

// throttleReporter is implemented by prefetchers that track their halted
// cycles (Snake).
type throttleReporter interface {
	ThrottleCycles() int64
}

// result aggregates statistics (call once, after the final run).
func (e *engine) result() *Result {
	for i, s := range e.sms {
		s.l1.FinishRun()
		if tr, ok := s.pf.(throttleReporter); ok {
			e.perSM[i].Pf.ThrottleCycles = tr.ThrottleCycles()
		}
	}
	res := &Result{PerSM: e.perSM}
	for i := range e.perSM {
		e.perSM[i].Cycles = e.cycle
		res.Stats.Merge(&e.perSM[i])
	}
	res.Stats.Cycles = e.cycle
	res.Stats.IcntBytes = e.net.totalBytes()
	res.Stats.IcntPeakBytes = e.net.peakBytes(e.cycle)
	for _, p := range e.parts {
		r, h, m := p.dramStats()
		res.Stats.DRAMReads += r
		res.Stats.DRAMRowHits += h
		res.Stats.DRAMRowMisses += m
	}
	return res
}

// smEnv adapts engine state to the prefetch.Env interface for one SM.
type smEnv struct {
	eng *engine
	sm  *sm
}

// Utilization implements prefetch.Env.
func (v *smEnv) Utilization() float64 { return v.eng.net.utilization() }

// FreeFraction implements prefetch.Env.
func (v *smEnv) FreeFraction() float64 { return v.sm.l1.FreeFraction() }

// ConfineL1 implements prefetch.Env.
func (v *smEnv) ConfineL1(until int64) { v.sm.l1.Confine(until) }
