// Package sim is the cycle-level GPU memory-system simulator: SMs with warp
// schedulers and scoreboarded warps, per-SM L1 controllers (MSHRs, miss
// queues, reservation fails), a bandwidth-limited interconnect, banked L2
// partitions and DRAM timing. It substitutes for Accel-Sim in the Snake
// reproduction; see DESIGN.md for the substitution argument.
//
// The engine is sharded on both sides of the interconnect: each SM (plus its
// warps, L1 and prefetcher) is a shard, and each L2 partition (plus its DRAM
// controller) is a work unit too — both talk across the boundary only
// through typed, cycle-stamped port queues and per-cycle work bins, and both
// may tick concurrently (Options.Parallelism) with results bit-identical to
// serial execution — see DESIGN.md "Parallel execution" and "Memory-side
// parallelism".
package sim

import (
	"context"
	"errors"
	"fmt"

	"snake/internal/config"
	"snake/internal/icnt"
	"snake/internal/prefetch"
	"snake/internal/profiling"
	"snake/internal/stats"
	"snake/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	Config config.GPU
	// Context, when non-nil, is polled periodically inside the cycle loop;
	// cancellation aborts the run with the context's error. A nil Context
	// runs to completion.
	Context context.Context
	// NewPrefetcher constructs the per-SM prefetcher; nil runs the baseline.
	NewPrefetcher func(smID int) prefetch.Prefetcher
	// MaxCycles aborts runaway simulations (default 20,000,000).
	MaxCycles int64
	// StoreBytes is the store packet size on the interconnect (default 32).
	StoreBytes int
	// RequestBytes is the fill-request packet size (default 8).
	RequestBytes int
	// MLPPerWarp is the per-warp memory-level-parallelism window: how many
	// loads a warp may have in flight before it blocks (default 2).
	MLPPerWarp int
	// MaxInflightFills caps outstanding fill requests in the memory system
	// (finite L2/DRAM queueing). When the cap is reached, L1 miss queues
	// back up and demand accesses suffer reservation fails — the congestion
	// behaviour §2 attributes to miss-queue pressure. Default:
	// 128 × L2Partitions (see withDefaults).
	MaxInflightFills int
	// Parallelism is how many workers tick work units — SM shards and L2
	// memory partitions — concurrently within each simulated cycle (default
	// 1: serial). Results are bit-identical for every value — units exchange
	// state only at the cycle barrier, in fixed merge orders — so callers
	// may pick purely on available cores. Clamped to the total unit count
	// (NumSM + L2Partitions).
	Parallelism int
	// PhaseProfile, when non-nil, accumulates the engine's wall-clock time
	// per cycle phase (serial route, parallel partitions, parallel shards,
	// serial merge) into the given accumulator across the run. Profiling
	// never changes Result (see phaseClock); it exists to measure the serial
	// share Amdahl's law cares about. Not safe to share one accumulator
	// between concurrently running engines.
	PhaseProfile *profiling.Phases
	// DisableSkip forces the engine to execute every cycle individually
	// instead of fast-forwarding over provably idle spans. Skipping is
	// exact — Result.Stats is bit-identical either way (see DESIGN.md
	// "Engine fast-forwarding" and the golden equivalence test) — so this
	// exists as an escape hatch for debugging and for validating that
	// equivalence.
	DisableSkip bool
}

// withDefaults returns opt with zero-valued tunables replaced by their
// defaults (shared by Run, RunSequence and the white-box tests).
func (opt Options) withDefaults() Options {
	if opt.MaxCycles <= 0 {
		opt.MaxCycles = 20_000_000
	}
	if opt.StoreBytes <= 0 {
		opt.StoreBytes = 32
	}
	if opt.RequestBytes <= 0 {
		opt.RequestBytes = 8
	}
	if opt.MaxInflightFills <= 0 {
		opt.MaxInflightFills = 128 * opt.Config.L2Partitions
	}
	if opt.MLPPerWarp <= 0 {
		opt.MLPPerWarp = 2
	}
	if opt.Parallelism <= 0 {
		opt.Parallelism = 1
	}
	if max := opt.Config.NumSM + opt.Config.L2Partitions; opt.Parallelism > max {
		opt.Parallelism = max
	}
	return opt
}

// Result carries the outcome of a run.
type Result struct {
	Stats stats.Sim   // aggregated over SMs, plus global counters
	PerSM []stats.Sim // per-SM counters
}

// engine is the live simulation state: the memory side (interconnect, L2
// partitions, DRAM, in-flight message queues) plus one shard per SM. The
// engine goroutine owns everything during the serial phases of a cycle;
// during the parallel phase it owns only the memory side while each shard's
// tick owns that shard.
type engine struct {
	cfg    config.GPU
	opt    Options
	kernel *trace.Kernel

	cycle  int64
	net    *icntNet
	parts  []*memPartition
	shards []*shard
	// units is the barrier group's schedule: partitions [0, L2Partitions),
	// then shards. The serial paths iterate parts/shards directly.
	units []workUnit
	group *shardGroup // non-nil while Parallelism > 1 workers are running

	// reqs is the SM→L2 ingress port: fill requests in flight across the
	// request network, stamped with their arrival cycle at the partitions.
	reqs icnt.Ingress[reqMsg]
	// resps holds partition responses waiting for response-network
	// bandwidth, ordered by data-ready cycle.
	resps respHeap
	// stores is the merged write-through store queue, in (smID, seq) order
	// within each cycle.
	stores []storeMsg
	// routed is the per-cycle response slot array: the routing phase assigns
	// each due request a slot in global arrival order, the owning partition's
	// tick writes the computed response into that slot, and mergeResponses
	// pushes slots in order — the exact push sequence the serial-arrival
	// engine produced, so heap tie-breaking (and thus every downstream
	// statistic) is unchanged.
	routed []resp

	ctaNext  int // next undispatched CTA index
	ageCtr   int64
	inflight int   // outstanding fill requests in the memory system
	skipped  int64 // cycles elided by event-driven fast-forwarding

	shStats *stats.Shards
	// memStats holds one counter block per L2 partition; totals are
	// partition-count and merge-order invariant (stats property tests).
	memStats *stats.MemParts
	prof     *profiling.Phases // nil unless Options.PhaseProfile is set
}

// Run simulates the kernel under the given options and returns aggregated
// statistics. Each call constructs a fresh engine; callers that simulate
// repeatedly should hold an Engine (or draw from a pool of them) to recycle
// the construction cost.
func Run(k *trace.Kernel, opt Options) (*Result, error) {
	var en Engine
	return en.Run(k, opt)
}

// validateRun performs Run's pre-flight checks on a kernel/options pair.
func validateRun(k *trace.Kernel, opt Options) error {
	if opt.Context != nil {
		if err := opt.Context.Err(); err != nil {
			return fmt.Errorf("sim: aborted before start: %w", err)
		}
	}
	if err := k.Validate(); err != nil {
		return err
	}
	if err := opt.Config.Validate(); err != nil {
		return err
	}
	for _, cta := range k.CTAs {
		if len(cta.Warps) > opt.Config.MaxWarpsPerSM {
			return fmt.Errorf("sim: CTA %d has %d warps, more than %d warp slots per SM",
				cta.ID, len(cta.Warps), opt.Config.MaxWarpsPerSM)
		}
	}
	return nil
}

func newEngine(k *trace.Kernel, opt Options) *engine {
	cfg := opt.Config
	e := &engine{
		cfg:     cfg,
		opt:     opt,
		kernel:  k,
		net:     newIcntNet(cfg),
		shStats: stats.NewShards(cfg.NumSM),
	}
	e.memStats = stats.NewMemParts(cfg.L2Partitions)
	e.parts = make([]*memPartition, cfg.L2Partitions)
	for i := range e.parts {
		e.parts[i] = newMemPartition(i, cfg, e.memStats.Part(i))
	}
	e.shards = make([]*shard, cfg.NumSM)
	for i := range e.shards {
		var pf prefetch.Prefetcher
		if opt.NewPrefetcher != nil {
			pf = opt.NewPrefetcher(i)
		}
		s := newSM(i, cfg, pf, e.shStats.Shard(i), opt.MLPPerWarp)
		s.kernel = k
		s.env = &smEnv{eng: e, sm: s}
		e.shards[i] = newShard(s)
	}
	e.units = make([]workUnit, 0, len(e.parts)+len(e.shards))
	for _, p := range e.parts {
		e.units = append(e.units, p)
	}
	for _, sh := range e.shards {
		e.units = append(e.units, sh)
	}
	return e
}

// partOf maps a line address to its L2 partition. Interleaving is at DRAM
// row granularity so a whole row stays within one partition (preserving row
// locality), with XOR folding so power-of-two strides spread across
// partitions instead of camping on a few.
func (e *engine) partOf(lineAddr uint64) int {
	row := lineAddr / uint64(e.cfg.DRAMRowBytes)
	return int((row ^ (row >> 3) ^ (row >> 6) ^ (row >> 9)) % uint64(len(e.parts)))
}

// ctxCheckInterval is how often (in cycles) the engine polls for
// cancellation; a power of two so the check is a cheap mask.
const (
	ctxCheckShift    = 12
	ctxCheckInterval = 1 << ctxCheckShift
)

// deadlockIdleCycles is how many consecutive no-progress, no-traffic cycles
// the engine tolerates before declaring a deadlock.
const deadlockIdleCycles = 1_000_000

// run executes the cycle loop. Every executed cycle has the same shape:
//
//	serial route phase:  net.tick → due requests binned per L2 partition in
//	                     arrival order (slot-indexed) → response sends (with
//	                     L2 installs deferred into partition bins) → fill
//	                     delivery into shard inboxes → request injection
//	                     (pull, smID order) → stores
//	parallel phase:      every work unit ticks, concurrently when
//	                     Parallelism > 1 — partitions perform their binned
//	                     L2 lookups, merges and DRAM timing; shards apply
//	                     fills, run prefetchers and issue
//	serial merge phase:  response slots pushed in arrival order → egress
//	                     merge in (smID, seq) order → CTA refill →
//	                     termination / idle / fast-forward bookkeeping
func (e *engine) run() error {
	if e.opt.Parallelism > 1 {
		e.group = startShardGroup(e.units, e.opt.Parallelism)
		defer func() {
			e.group.stop()
			e.group = nil
		}()
	}
	e.prof = e.opt.PhaseProfile
	var clk phaseClock
	e.fillSMs()
	idle := int64(0)
	clk.start(e.prof)
	for e.cycle < e.opt.MaxCycles {
		e.cycle++
		// The lap at the top of the iteration closes the previous cycle's
		// merge phase: every continue path below re-enters here, so the
		// merge/bookkeeping tail is charged exactly once per executed cycle.
		clk.lap(profiling.PhaseMerge)
		if e.opt.Context != nil && e.cycle&(ctxCheckInterval-1) == 0 {
			if err := e.opt.Context.Err(); err != nil {
				return fmt.Errorf("sim: aborted at cycle %d: %w", e.cycle, err)
			}
		}
		e.net.tick(e.cycle)
		e.routeRequests()
		e.drainResponses()
		e.deliverFills()
		e.drainMissQueues()
		e.drainStores()
		clk.lap(profiling.PhaseSerialRoute)
		anyRetired := e.tickUnits(&clk)
		if e.finished() {
			break
		}
		msgs := e.inFlightMsgs()
		if anyRetired || msgs > 0 {
			idle = 0
		} else {
			// Deadlock guard: nothing retired and nothing in flight for a
			// long time means a stuck warp (a bug, not a workload property).
			idle++
			if idle > deadlockIdleCycles {
				return errors.New("sim: deadlock: no progress and no in-flight traffic")
			}
		}
		if e.opt.DisableSkip {
			continue
		}

		// Event-driven fast-forward: if no component can act before some
		// future cycle, jump there instead of idling through the gap. Every
		// elided cycle is provably a no-op (see nextInteresting and DESIGN.md
		// "Engine fast-forwarding"), except for three pieces of cycle-indexed
		// state that are advanced by the whole span at once: the stall
		// classification counters, the idle/deadlock counter, and the
		// interconnect's sliding windows (rolled forward by net.tick at the
		// next executed cycle).
		target := e.nextInteresting()
		if target >= 0 && target <= e.cycle+1 {
			continue
		}
		if msgs == 0 {
			// Idle-counting mode: stop where the deadlock guard would fire so
			// the error (if the target never arrives) lands on the same cycle
			// per-cycle execution reports it.
			if limit := e.cycle + (deadlockIdleCycles + 1 - idle); target < 0 || target > limit {
				target = limit
			}
		}
		if target > e.opt.MaxCycles+1 {
			target = e.opt.MaxCycles + 1
		}
		span := target - 1 - e.cycle
		if span <= 0 {
			continue
		}
		if e.opt.Context != nil {
			// The per-cycle loop polls for cancellation every ctxCheckInterval
			// cycles; preserve that wall-progress bound across jumps by
			// polling whenever the span crosses a poll boundary.
			if b := (e.cycle>>ctxCheckShift + 1) << ctxCheckShift; b < target {
				if err := e.opt.Context.Err(); err != nil {
					return fmt.Errorf("sim: aborted at cycle %d: %w", b, err)
				}
			}
		}
		for _, sh := range e.shards {
			// Warp states are frozen across the span, so each elided cycle
			// would have classified identically; the fruitless scheduler pass
			// of every elided cycle is replayed once (it is idempotent).
			sh.skipSpan(span)
		}
		if msgs == 0 {
			idle += span
		}
		e.skipped += span
		e.cycle = target - 1
	}
	clk.lap(profiling.PhaseMerge) // close the final cycle's merge segment
	if e.cycle >= e.opt.MaxCycles {
		return fmt.Errorf("sim: exceeded MaxCycles=%d", e.opt.MaxCycles)
	}
	return nil
}

// nextInteresting returns the earliest future cycle at which any engine
// component could possibly act, or -1 when nothing is pending at all (a
// deadlock unless MaxCycles intervenes). Every returned bound is
// conservative: cycles strictly between e.cycle and the returned value are
// guaranteed to replay the current cycle's no-op exactly, so they can be
// elided without changing any statistic. The candidates, mirroring the cycle
// loop's order:
//
//   - the earliest request arrival at the L2 partitions (arriveRequests);
//   - the earliest response send: its data-ready cycle and the response
//     network's backlog-drain cycle (drainResponses);
//   - the earliest fill delivery into a shard's inbox (deliverFills);
//   - the request network's backlog-drain cycle while stores are queued
//     (drainStores) or any shard's request port holds drainable demand
//     misses (drainMissQueues);
//   - the next cycle outright when a shard could trickle a staged prefetch
//     into its miss queue, or when its prefetcher does per-cycle work
//     that may not be elided (Snake while throttled: halted-cycle accounting
//     and hysteresis boundaries must fire cycle by cycle);
//   - each shard's earliest ready-warp wake-up (issue).
//
// Warps waiting on memory or barriers wake only through those same fills
// and issues, so they impose no separate bound.
func (e *engine) nextInteresting() int64 {
	cur := e.cycle
	// Invariant guard: a partition holding unprocessed binned work pins the
	// next cycle. Bins are always drained by the partition ticks of the
	// cycle that filled them, so this never fires at a real decision point —
	// it exists so fast-forwarding stays provably safe against future
	// restructurings of the cycle, not to encode a live bound.
	for _, p := range e.parts {
		if p.busy() {
			return cur + 1
		}
	}
	best := e.reqs.NextCycle()
	if r, ok := e.resps.peek(); ok {
		c := e.net.nextRespAccept(cur)
		if r.readyAt > c {
			c = r.readyAt
		}
		if best < 0 || c < best {
			best = c
		}
	}
	if len(e.stores) > 0 {
		if c := e.net.nextReqAccept(cur); best < 0 || c < best {
			best = c
		}
	}
	for _, sh := range e.shards {
		if sh.mustTickNext(cur) {
			return cur + 1
		}
		if sh.hasQueuedReq() && e.inflight < e.opt.MaxInflightFills {
			if c := e.net.nextReqAccept(cur); best < 0 || c < best {
				best = c
			}
		}
		if f := sh.nextFill(); f >= 0 && (best < 0 || f < best) {
			best = f
		}
		if w := sh.nextWake(); w >= 0 && (best < 0 || w < best) {
			best = w
		}
		if best >= 0 && best <= cur+1 {
			return cur + 1
		}
	}
	if best >= 0 && best < cur+1 {
		return cur + 1
	}
	return best
}

// fillSMs dispatches queued CTAs onto SMs with enough free slots.
func (e *engine) fillSMs() {
	for {
		progress := false
		for _, sh := range e.shards {
			if e.ctaNext >= len(e.kernel.CTAs) {
				return
			}
			need := len(e.kernel.CTAs[e.ctaNext].Warps)
			if sh.sm.freeSlots() >= need {
				sh.sm.dispatchCTA(e.kernel, e.ctaNext, &e.ageCtr)
				e.ctaNext++
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// routeRequests bins every fill request due at the L2 side this cycle onto
// its partition, in the deterministic ingress order (send order). Each
// request gets a slot in e.routed in that global order; the partition's tick
// computes the response into the slot and mergeResponses pushes slots in
// order, so the response heap sees the exact push sequence the serial
// arrival loop produced. The L2/DRAM work itself moves off the serial path
// into the partitions' (parallel) ticks.
//
// Responses computed at cycle C are never sendable before C+1 — every access
// path returns readyAt ≥ C + L2.Latency with L2.Latency ≥ 1 (enforced by
// config validation) — so deferring their heap push past this cycle's
// drainResponses changes nothing.
func (e *engine) routeRequests() {
	for {
		r, ok := e.reqs.PopDue(e.cycle)
		if !ok {
			break
		}
		p := e.parts[e.partOf(r.lineAddr)]
		p.pending = append(p.pending, partReq{slot: len(e.routed), sm: r.sm, lineAddr: r.lineAddr, prefetch: r.prefetch})
		e.routed = append(e.routed, resp{})
	}
	if len(e.routed) > 0 {
		// Re-alias the slot array on every partition: the appends above may
		// have regrown its backing array since last cycle.
		for _, p := range e.parts {
			p.routed = e.routed
		}
	}
}

// mergeResponses pushes the cycle's partition-computed responses onto the
// response heap in slot (global arrival) order — the deterministic merge
// closing the partitions' parallel phase.
func (e *engine) mergeResponses() {
	for i := range e.routed {
		e.resps.push(e.routed[i])
	}
	e.routed = e.routed[:0]
}

// drainResponses sends ready memory responses back over the interconnect,
// stamping each with its delivery cycle and queueing it on the destination
// shard's ingress port. The L2 install for each shipped line is deferred
// into the owning partition's completes bin, applied during its tick this
// same cycle (after the cycle's accesses — the same relative order the
// serial engine had, see memPartition.tick).
func (e *engine) drainResponses() {
	lineBytes := e.cfg.Unified.LineSize
	for {
		r, ok := e.resps.peek()
		if !ok || r.readyAt > e.cycle {
			return
		}
		deliverAt, sent := e.net.trySendResp(lineBytes)
		if !sent {
			return
		}
		e.resps.pop()
		p := e.parts[r.part]
		p.completes = append(p.completes, r.lineAddr)
		e.shards[r.sm].fills.Push(deliverAt, fillMsg{lineAddr: r.lineAddr, prefetch: r.prefetch})
	}
}

// deliverFills moves due fills into each shard's inbox (smID order) and
// releases their in-flight capacity, exactly when per-event delivery did.
func (e *engine) deliverFills() {
	for _, sh := range e.shards {
		e.inflight -= sh.deliverDue(e.cycle)
	}
}

// missInjectPerSM is how many outgoing fill requests each SM may inject into
// the request network per cycle.
const missInjectPerSM = 3

// drainMissQueues pulls outgoing fill requests from each shard's request
// port, up to missInjectPerSM per SM per cycle, subject to the in-flight cap
// (downstream queue capacity). The pull order — shards in smID order — is
// the deterministic merge order of the SM→memory request stream. Staged
// prefetch requests trickle into each shared miss queue at
// cache.PrefetchDrainPerCycle per cycle.
func (e *engine) drainMissQueues() {
	for _, sh := range e.shards {
		sh.drainStaged(e.cycle)
		for k := 0; k < missInjectPerSM; k++ {
			if e.inflight >= e.opt.MaxInflightFills {
				return
			}
			if !sh.peekReq() {
				break
			}
			deliverAt, sent := e.net.trySendReq(e.opt.RequestBytes)
			if !sent {
				return
			}
			req, _ := sh.popReq()
			e.inflight++
			e.reqs.Push(deliverAt, req)
		}
	}
}

// drainStores sends write-through store traffic at low priority.
func (e *engine) drainStores() {
	n := 0
	for n < len(e.stores) {
		if _, sent := e.net.trySendReq(e.opt.StoreBytes); !sent {
			break
		}
		n++
	}
	if n > 0 {
		// Compact in place rather than re-slicing (e.stores = e.stores[n:]):
		// re-slicing strands the consumed prefix of the backing array, so
		// append would grow a fresh array every time the queue cycled through
		// its capacity instead of reusing the existing one.
		m := copy(e.stores, e.stores[n:])
		e.stores = e.stores[:m]
	}
}

// tickUnits runs the parallel phase of the cycle — every work unit ticks
// (memory partitions drain their request/complete bins, shards apply fills
// and issue), on the worker group when one is running — then performs the
// serial merges: partition responses are pushed in arrival-slot order and
// egress streams are appended to the memory-side queues in (smID, seq)
// order, and freed CTA slots are refilled. Returns whether any shard retired
// an instruction.
//
// Normally partitions and shards tick as one wave — they touch disjoint
// state, so no ordering between them is needed. When phase profiling is on,
// the wave splits in two so partition and shard wall clocks are separable;
// the split cannot change results (same disjointness).
func (e *engine) tickUnits(clk *phaseClock) bool {
	np := len(e.parts)
	switch {
	case e.prof != nil:
		if e.group != nil {
			e.group.runSpan(e.cycle, 0, np)
		} else {
			for _, p := range e.parts {
				p.tick(e.cycle)
			}
		}
		clk.lap(profiling.PhaseMemPartitions)
		if e.group != nil {
			e.group.runSpan(e.cycle, np, len(e.units))
		} else {
			for _, sh := range e.shards {
				sh.tick(e.cycle)
			}
		}
		clk.lap(profiling.PhaseShards)
	case e.group != nil:
		e.group.runCycle(e.cycle)
	default:
		for _, p := range e.parts {
			p.tick(e.cycle)
		}
		for _, sh := range e.shards {
			sh.tick(e.cycle)
		}
	}
	e.mergeResponses()
	any, refill := false, false
	for _, sh := range e.shards {
		if len(sh.out.stores) > 0 {
			e.stores = append(e.stores, sh.out.stores...)
			sh.out.stores = sh.out.stores[:0]
		}
		if sh.report.retired {
			any = true
		}
		if sh.report.ctaFinished {
			refill = true
		}
	}
	if refill {
		// CTAs freed during the parallel phase are redispatched at the
		// barrier; the new warps first issue next cycle.
		e.fillSMs()
	}
	return any
}

// inFlightMsgs counts cross-boundary messages in flight: requests crossing
// to the L2 side, responses awaiting bandwidth, and fills not yet consumed
// by their shard.
func (e *engine) inFlightMsgs() int {
	n := e.reqs.Len() + len(e.resps)
	for _, sh := range e.shards {
		n += sh.pendingFills()
	}
	return n
}

// finished reports whether all CTAs have been dispatched and completed and
// no traffic is in flight.
func (e *engine) finished() bool {
	if e.ctaNext < len(e.kernel.CTAs) {
		return false
	}
	for _, sh := range e.shards {
		if !sh.sm.done() {
			return false
		}
	}
	return e.inFlightMsgs() == 0
}

// throttleReporter is implemented by prefetchers that track their halted
// cycles (Snake).
type throttleReporter interface {
	ThrottleCycles() int64
}

// result aggregates statistics (call once, after the final run).
func (e *engine) result() *Result {
	for i, sh := range e.shards {
		sh.sm.l1.FinishRun()
		if tr, ok := sh.sm.pf.(throttleReporter); ok {
			e.shStats.Shard(i).Pf.ThrottleCycles = tr.ThrottleCycles()
		}
	}
	// Copy the per-SM counters out of the shard accumulators: the Result must
	// stay valid after the engine is recycled for another run, which resets
	// the accumulators in place.
	perSM := make([]stats.Sim, e.shStats.Len())
	copy(perSM, e.shStats.Slice())
	for i := range perSM {
		perSM[i].Cycles = e.cycle
	}
	res := &Result{Stats: e.shStats.Total(), PerSM: perSM}
	res.Stats.Cycles = e.cycle
	res.Stats.IcntBytes = e.net.totalBytes()
	res.Stats.IcntPeakBytes = e.net.peakBytes(e.cycle)
	// Memory-side counters come from the per-partition arenas; the total is
	// invariant to the partition count and merge order (stats property
	// tests), and the per-SM blocks hold zeros for these fields.
	mem := e.memStats.Total()
	res.Stats.L2Hits += mem.L2Hits
	res.Stats.L2Misses += mem.L2Misses
	res.Stats.L2Merges += mem.L2Merges
	res.Stats.DRAMReads += mem.DRAMReads
	res.Stats.DRAMRowHits += mem.DRAMRowHits
	res.Stats.DRAMRowMisses += mem.DRAMRowMisses
	return res
}

// smEnv adapts engine state to the prefetch.Env interface for one SM. The
// engine-side reads are of memory-side state that is frozen during the
// parallel phase (the serial phases mutate it, the barrier publishes it), so
// concurrent shard ticks may call them safely.
type smEnv struct {
	eng *engine
	sm  *sm
}

// Utilization implements prefetch.Env.
func (v *smEnv) Utilization() float64 { return v.eng.net.utilization() }

// FreeFraction implements prefetch.Env.
func (v *smEnv) FreeFraction() float64 { return v.sm.l1.FreeFraction() }

// ConfineL1 implements prefetch.Env.
func (v *smEnv) ConfineL1(until int64) { v.sm.l1.Confine(until) }
