// Package sim is the cycle-level GPU memory-system simulator: SMs with warp
// schedulers and scoreboarded warps, per-SM L1 controllers (MSHRs, miss
// queues, reservation fails), a bandwidth-limited interconnect, banked L2
// partitions and DRAM timing. It substitutes for Accel-Sim in the Snake
// reproduction; see DESIGN.md for the substitution argument.
//
// The engine is sharded on both sides of the interconnect: each SM (plus its
// warps, L1 and prefetcher) is a shard, and each L2 partition (plus its DRAM
// controller) is a work unit too — both talk across the boundary only
// through typed, cycle-stamped port queues and per-cycle work bins, and both
// may tick concurrently (Options.Parallelism) with results bit-identical to
// serial execution — see DESIGN.md "Parallel execution" and "Memory-side
// parallelism".
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"

	"snake/internal/config"
	"snake/internal/icnt"
	"snake/internal/prefetch"
	"snake/internal/profiling"
	"snake/internal/stats"
	"snake/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	Config config.GPU
	// Context, when non-nil, is polled periodically inside the cycle loop;
	// cancellation aborts the run with the context's error. A nil Context
	// runs to completion.
	Context context.Context
	// NewPrefetcher constructs the per-SM prefetcher; nil runs the baseline.
	NewPrefetcher func(smID int) prefetch.Prefetcher
	// MaxCycles aborts runaway simulations (default 20,000,000).
	MaxCycles int64
	// StoreBytes is the store packet size on the interconnect (default 32).
	StoreBytes int
	// RequestBytes is the fill-request packet size (default 8).
	RequestBytes int
	// MLPPerWarp is the per-warp memory-level-parallelism window: how many
	// loads a warp may have in flight before it blocks (default 2).
	MLPPerWarp int
	// MaxInflightFills caps outstanding fill requests in the memory system
	// (finite L2/DRAM queueing). When the cap is reached, L1 miss queues
	// back up and demand accesses suffer reservation fails — the congestion
	// behaviour §2 attributes to miss-queue pressure. Default:
	// 128 × L2Partitions (see withDefaults).
	MaxInflightFills int
	// Parallelism is how many workers tick work units — SM shards and L2
	// memory partitions — concurrently within each slack epoch (default 1:
	// serial). Results are bit-identical for every value — units exchange
	// state only at the epoch barrier, in fixed merge orders — so callers
	// may pick purely on available cores. Clamped to the total unit count
	// (NumSM + L2Partitions). On a single-core runtime (GOMAXPROCS == 1)
	// values > 1 degrade to serial ticking — extra workers can only steal
	// the engine's core there — unless ForceParallelism overrides.
	Parallelism int
	// ForceParallelism keeps Parallelism > 1 worker groups even when
	// GOMAXPROCS == 1. Results are identical either way; this exists for the
	// equivalence tests, which must exercise the real multi-worker barrier
	// on single-core CI machines.
	ForceParallelism bool
	// SlackWindow is the bounded-slack epoch length: how many consecutive
	// cycles every work unit ticks between barriers. 0 (auto) and anything
	// above the config's provable bound resolve to that bound
	// (config.SlackBound, the full audit-derived horizon); 1 degenerates to
	// a barrier per cycle. Result.Stats is bit-identical at every setting —
	// message visibility is gated on the config-derived slack horizon, never
	// on the runtime epoch length — so callers pick purely on sync overhead.
	// Result.Slack reports the resolved parameters. See DESIGN.md
	// "Bounded-slack ticking".
	SlackWindow int
	// LatencyAudit, when non-nil, receives the minimum cross-boundary
	// latencies actually observed during the run — the empirical floor the
	// slack property test checks the config-derived bound against.
	LatencyAudit *LatencyAudit
	// PhaseProfile, when non-nil, accumulates the engine's wall-clock time
	// per cycle phase (serial route, parallel partitions, parallel shards,
	// serial merge) into the given accumulator across the run. Profiling
	// never changes Result (see phaseClock); it exists to measure the serial
	// share Amdahl's law cares about. Not safe to share one accumulator
	// between concurrently running engines.
	PhaseProfile *profiling.Phases
	// ChainPersistence keeps prefetcher state — Snake's variable-length
	// chain tables — across kernel-launch boundaries within an App run:
	// a launch activated by the launch scheduler starts with its SMs'
	// tables already trained by earlier launches. False (the default)
	// flushes prefetcher state at every scheduler activation, scoping
	// chain detection to one launch. Irrelevant for single-launch runs
	// (there are no scheduler activations) and independent of L1 data,
	// which stays warm either way. See DESIGN.md "Application launch
	// layer".
	ChainPersistence bool
	// DisableSkip forces the engine to execute every cycle individually
	// instead of fast-forwarding over provably idle spans. Skipping is
	// exact — Result.Stats is bit-identical either way (see DESIGN.md
	// "Engine fast-forwarding" and the golden equivalence test) — so this
	// exists as an escape hatch for debugging and for validating that
	// equivalence.
	DisableSkip bool
}

// withDefaults returns opt with zero-valued tunables replaced by their
// defaults (shared by Run, RunSequence and the white-box tests).
func (opt Options) withDefaults() Options {
	if opt.MaxCycles <= 0 {
		opt.MaxCycles = 20_000_000
	}
	if opt.StoreBytes <= 0 {
		opt.StoreBytes = 32
	}
	if opt.RequestBytes <= 0 {
		opt.RequestBytes = 8
	}
	if opt.MaxInflightFills <= 0 {
		opt.MaxInflightFills = 128 * opt.Config.L2Partitions
	}
	if opt.MLPPerWarp <= 0 {
		opt.MLPPerWarp = 2
	}
	if opt.Parallelism <= 0 {
		opt.Parallelism = 1
	}
	if opt.Parallelism > 1 && runtime.GOMAXPROCS(0) == 1 && !opt.ForceParallelism {
		// One schedulable core: worker goroutines cannot overlap the engine,
		// they can only preempt it. Serial ticking computes identical results
		// (the equivalence matrices force the multi-worker path via
		// ForceParallelism to prove it), so degrade instead of paying the
		// barrier for nothing.
		opt.Parallelism = 1
	}
	if max := opt.Config.NumSM + opt.Config.L2Partitions; opt.Parallelism > max {
		opt.Parallelism = max
	}
	return opt
}

// Result carries the outcome of a run.
type Result struct {
	Stats stats.Sim   // aggregated over SMs, plus global counters
	PerSM []stats.Sim // per-SM counters
	Slack SlackInfo   // resolved bounded-slack parameters the run used
}

// engine is the live simulation state: the memory side (interconnect, L2
// partitions, DRAM, in-flight message queues) plus one shard per SM. The
// engine goroutine owns everything during the serial phases of a cycle;
// during the parallel phase it owns only the memory side while each shard's
// tick owns that shard.
type engine struct {
	cfg config.GPU
	opt Options

	// Application launch state (see launch.go): the machine below survives
	// across runs and launches; everything here is rebuilt by loadApp.
	app       *trace.App
	launches  []launchRun
	pendingLn int     // launches not yet activated
	wakeAt    []int64 // matured launch-scheduler wake cycles, ascending
	// smBusy is per-SM launch ownership (-1: free); smAttr/smBase are the
	// stat-attribution window per SM — the launch the counters accrue to
	// and the snapshot the delta is taken against (launch.go claimSMs).
	smBusy []int
	smAttr []int
	smBase []stats.Sim
	// oneLaunch/oneApp are engine-owned scratch wrapping a bare kernel as
	// a one-launch App without allocating (singleApp).
	oneLaunch [1]trace.KernelLaunch
	oneApp    trace.App

	cycle  int64
	net    *icntNet
	parts  []*memPartition
	shards []*shard
	// units is the barrier group's schedule: partitions [0, L2Partitions),
	// then shards. The serial paths iterate parts/shards directly.
	units []workUnit
	// crew is the persistent barrier-worker group, created on the first
	// parallel run and parked — not respawned — between runs, surviving Reset
	// and pool recycling. Reclaimed by closeCrew (Engine.Close, or the engine
	// finalizer as a backstop). group aliases crew only while a run is
	// executing; the rest of the engine keys "is a parallel run active" off
	// group, so pointing it at the parked crew per run keeps those paths
	// unchanged.
	crew  *shardGroup
	group *shardGroup

	// partReqs are the SM→L2 ingress ports, one ring per L2 partition: fill
	// requests in flight across the request network, binned to their
	// partition at injection time (pushReq) and stamped with the arrival
	// cycle at the partition crossbar. Per-ring order is global injection
	// order restricted to that partition, which makes an epoch's due set a
	// per-ring prefix the route prefix-sum can count in O(#partitions).
	// reqsLen is the total queued across all rings.
	partReqs []icnt.Ingress[reqMsg]
	reqsLen  int
	// resps holds partition responses waiting for response-network
	// bandwidth, ordered by data-ready cycle.
	resps respHeap
	// stores is the merged write-through store queue, in (cycle, smID, seq)
	// order; a store issued at cycle p becomes sendable at p + horizon.
	stores []storeMsg
	// routed is the per-epoch response slot array: planRoute's prefix-sum
	// assigns each partition a contiguous slot range in global arrival order
	// (see planRoute for why partition-major ranges preserve it), the owning
	// partition's tick span writes each computed response into its slot, and
	// the epoch merge pushes slots in range order — replaying through the
	// heap in the exact sequence the serial-arrival engine produced, so heap
	// tie-breaking (and thus every downstream statistic) is unchanged.
	routed []resp
	// Scatter scratch for the parallel store merge (mergeStores): the active
	// shards of the epoch being merged, the destination window in stores, and
	// the epoch start — published before the scatter wave, consumed by
	// runTask.
	scatterShards []*shard
	scatterDst    []storeMsg
	scatterFrom   int64
	// ctaOr is the merge phase's OR-accumulator over eligible launches'
	// CTA-completion bitsets (one bit per epoch sub-cycle), recycled across
	// epochs.
	ctaOr epochBits

	ageCtr   int64
	inflight int   // outstanding fill requests in the memory system
	skipped  int64 // cycles elided by event-driven fast-forwarding

	// inflightRel defers in-flight capacity releases: a delivered fill frees
	// its slot horizon−turnaround cycles after delivery. The pull charges
	// capacity at stamp+horizon, but the modeled injection happened at
	// stamp+turnaround; stretching the release by the same difference keeps
	// each request's occupancy window at its modeled length (injection to
	// delivery), so the MaxInflightFills cap binds with per-cycle-model
	// pressure instead of evaporating at wide horizons. Entries are in
	// ascending release order (deliveries are processed in cycle order).
	inflightRel []capRelease

	// Bounded-slack epoch state (DESIGN.md "Bounded-slack ticking").
	//
	// horizon is the visibility delay applied to miss-queue injection —
	// the full config.SlackBound, a pure function of the config. turn is
	// the turnaround delay applied to store sends, CTA redispatch and
	// launch wakes: min(horizon, TurnaroundCap), also config-pure. slackMax
	// is the runtime epoch-length cap — Options.SlackWindow resolved into
	// [1, horizon]. Statistics depend on horizon and turn only, never on
	// where epoch boundaries fall, which is what makes every SlackWindow
	// setting bit-identical.
	horizon  int64
	turn     int64
	slackMax int64
	// slackOK is the production conflict fallback: a merged response whose
	// ready cycle lands inside its own epoch (provably impossible, see the
	// mergeEpoch assert) clears it, degrading all later epochs to length 1.
	slackOK    bool
	slackInfo  SlackInfo // resolved slack parameters, surfaced in Result
	epochStart int64     // first sub-cycle of the epoch being ticked
	utilSnap []float64 // per-sub-cycle response-network utilization snapshots
	// respSeq is the global arrival stamp, assigned at injection (pushReq);
	// each request's response inherits it, so heap ordering equals serial
	// arrival order no matter what order the merge pushes slots in.
	respSeq    int64
	dispatchAt []int64 // matured CTA-redispatch cycles, ascending
	minReqLat  int64   // smallest observed request-delivery latency (audit)
	minRespLat int64   // smallest observed response-delivery latency (audit)

	shStats *stats.Shards
	// memStats holds one counter block per L2 partition; totals are
	// partition-count and merge-order invariant (stats property tests).
	memStats *stats.MemParts
	prof     *profiling.Phases // nil unless Options.PhaseProfile is set
}

// Run simulates the kernel under the given options and returns aggregated
// statistics. Each call constructs a fresh engine; callers that simulate
// repeatedly should hold an Engine (or draw from a pool of them) to recycle
// the construction cost.
func Run(k *trace.Kernel, opt Options) (*Result, error) {
	var en Engine
	defer en.Close() // one-shot run: don't leave a parked crew to the finalizer
	return en.Run(k, opt)
}

// validateRun performs Run's pre-flight checks on a kernel/options pair.
func validateRun(k *trace.Kernel, opt Options) error {
	if opt.Context != nil {
		if err := opt.Context.Err(); err != nil {
			return fmt.Errorf("sim: aborted before start: %w", err)
		}
	}
	if err := k.Validate(); err != nil {
		return err
	}
	if err := opt.Config.Validate(); err != nil {
		return err
	}
	for _, cta := range k.CTAs {
		if len(cta.Warps) > opt.Config.MaxWarpsPerSM {
			return fmt.Errorf("sim: CTA %d has %d warps, more than %d warp slots per SM",
				cta.ID, len(cta.Warps), opt.Config.MaxWarpsPerSM)
		}
	}
	return nil
}

// newEngine constructs a machine and loads a bare kernel as the trivial
// one-launch App.
func newEngine(k *trace.Kernel, opt Options) *engine {
	e := newMachine(opt)
	e.loadApp(e.singleApp(k))
	return e
}

// newEngineApp constructs a machine and loads an application.
func newEngineApp(a *trace.App, opt Options) *engine {
	e := newMachine(opt)
	e.loadApp(a)
	return e
}

// newMachine allocates the persistent machine — SM shards, L2 partitions,
// interconnect, barrier schedule, stat arenas — whose shape depends only on
// the config. Launch state (kernels, CTA cursors, SM ownership) is installed
// separately by loadApp and rebuilt on every run.
func newMachine(opt Options) *engine {
	cfg := opt.Config
	e := &engine{
		cfg:     cfg,
		opt:     opt,
		net:     newIcntNet(cfg),
		shStats: stats.NewShards(cfg.NumSM),
	}
	e.memStats = stats.NewMemParts(cfg.L2Partitions)
	e.parts = make([]*memPartition, cfg.L2Partitions)
	for i := range e.parts {
		e.parts[i] = newMemPartition(i, cfg, e.memStats.Part(i))
	}
	e.shards = make([]*shard, cfg.NumSM)
	for i := range e.shards {
		var pf prefetch.Prefetcher
		if opt.NewPrefetcher != nil {
			pf = opt.NewPrefetcher(i)
		}
		s := newSM(i, cfg, pf, e.shStats.Shard(i), opt.MLPPerWarp)
		s.env = &smEnv{eng: e, sm: s}
		e.shards[i] = newShard(s)
	}
	e.units = make([]workUnit, 0, len(e.parts)+len(e.shards))
	for _, p := range e.parts {
		e.units = append(e.units, p)
	}
	for _, sh := range e.shards {
		e.units = append(e.units, sh)
	}
	e.partReqs = make([]icnt.Ingress[reqMsg], cfg.L2Partitions)
	e.smBusy = make([]int, cfg.NumSM)
	e.smAttr = make([]int, cfg.NumSM)
	e.smBase = make([]stats.Sim, cfg.NumSM)
	e.initSlack()
	// Backstop for the persistent crew: an engine dropped without Close
	// (tests, one-shot callers, pool discards) must not leak its parked
	// workers. The crew holds no pointer back to the engine, so the engine
	// stays collectable; the method expression captures nothing.
	runtime.SetFinalizer(e, (*engine).closeCrew)
	return e
}

// closeCrew stops and forgets the persistent barrier crew, if one exists.
// Idempotent, and safe from the finalizer goroutine.
func (e *engine) closeCrew() {
	if e.crew != nil {
		e.crew.stop()
		e.crew = nil
	}
}

// partOf maps a line address to its L2 partition. Interleaving is at DRAM
// row granularity so a whole row stays within one partition (preserving row
// locality), with XOR folding so power-of-two strides spread across
// partitions instead of camping on a few.
func (e *engine) partOf(lineAddr uint64) int {
	row := lineAddr / uint64(e.cfg.DRAMRowBytes)
	return int((row ^ (row >> 3) ^ (row >> 6) ^ (row >> 9)) % uint64(len(e.parts)))
}

// ctxCheckInterval is how often (in cycles) the engine polls for
// cancellation; a power of two so the check is a cheap mask.
const (
	ctxCheckShift    = 12
	ctxCheckInterval = 1 << ctxCheckShift
)

// deadlockIdleCycles is how many consecutive no-progress, no-traffic cycles
// the engine tolerates before declaring a deadlock.
const deadlockIdleCycles = 1_000_000

// run executes the epoch loop. Every executed epoch — a span of up to
// slackMax consecutive cycles between two barriers — has the same shape:
//
//	serial drain phase:  for each sub-cycle in order: net.tick → response
//	                     sends (with L2 installs deferred into partition
//	                     bins) → fill delivery into shard inboxes → request
//	                     injection (pull, smID order, horizon-matured heads
//	                     only, binned to the owning partition's ingress ring
//	                     and stamped with the global arrival rank at push) →
//	                     matured stores → utilization snapshot
//	route phase:         O(#partitions) prefix-sum over the per-ring due
//	                     counts assigns each partition a zero-copy due view
//	                     and a contiguous response slot range (planRoute)
//	parallel phase:      every work unit ticks the whole span, concurrently
//	                     when Parallelism > 1 — partitions perform their due
//	                     L2 lookups, merges and DRAM timing, scattering
//	                     responses into their reserved slots; shards apply
//	                     fills, run prefetchers, issue, and count their
//	                     epoch store outputs per sub-cycle
//	serial merge phase:  response slots pushed in partition-major slot order
//	                     (each already carrying its global arrival seq, so
//	                     the heap replays serial arrival order) → store
//	                     merge via counting scatter into (cycle, smID, seq)
//	                     order → CTA-finish maturation → termination / idle /
//	                     fast-forward bookkeeping
//
// The serial phase runs a whole epoch ahead of the ticks; that is sound
// because every tick output is invisible to the serial phase for at least
// horizon cycles (min cross-boundary latency, config-derived), and every
// epoch is at most horizon cycles long. With SlackWindow=1 the loop is
// exactly the seed's per-cycle schedule.
func (e *engine) run() error {
	if e.opt.Parallelism > 1 {
		// Persistent crew: created on the first parallel run, parked between
		// runs, reused across Reset/pool recycling. Only a Parallelism change
		// (an engine recycled under different options) replaces it.
		if e.crew == nil || e.crew.n != e.opt.Parallelism {
			e.closeCrew()
			e.crew = startShardGroup(e.opt.Parallelism)
		}
		e.group = e.crew
		defer func() { e.group = nil }()
	}
	e.prof = e.opt.PhaseProfile
	var clk phaseClock
	e.fillSMs()
	idle := int64(0)
	clk.start(e.prof)
	for e.cycle < e.opt.MaxCycles {
		start := e.cycle + 1
		// The lap at the top of the iteration closes the previous epoch's
		// merge phase: every continue path below re-enters here, so the
		// merge/bookkeeping tail is charged exactly once per executed epoch.
		clk.lap(profiling.PhaseMerge)
		e.applyWakes(start)
		e.applyDispatches(start)
		cur := e.slackMax
		if !e.slackOK {
			cur = 1
		}
		maxEnd := start + cur - 1
		if cur > e.turn {
			// Adaptive epoch cutter: stores and CTA retirements replay after
			// the turnaround delay, so the epoch may not extend past the
			// earliest cycle such an event could occur plus turn-1 (see
			// actBound). Windows ≤ turn are contained unconditionally.
			if t := e.actBound(start); t >= 0 {
				if lim := t + e.turn - 1; lim < maxEnd {
					maxEnd = lim
				}
			}
		}
		if maxEnd > e.opt.MaxCycles {
			maxEnd = e.opt.MaxCycles
		}
		if len(e.dispatchAt) > 0 && e.dispatchAt[0]-1 < maxEnd {
			// A matured CTA redispatch must land on an epoch start so the new
			// warps are visible to that whole epoch's ticks (and to its serial
			// phase), exactly as with per-cycle barriers.
			maxEnd = e.dispatchAt[0] - 1
		}
		if len(e.wakeAt) > 0 && e.wakeAt[0]-1 < maxEnd {
			// Launch-scheduler wakes land on epoch starts too, for the same
			// reason — an activated launch's first CTAs must be visible to a
			// whole epoch.
			maxEnd = e.wakeAt[0] - 1
		}
		end, err := e.serialPhase(start, maxEnd)
		if err != nil {
			return err
		}
		e.cycle = end
		e.epochStart = start
		clk.lap(profiling.PhaseSerialDrain)
		e.planRoute(end)
		clk.lap(profiling.PhaseSerialRoute)
		e.tickWave(start, end, &clk)
		if e.prof != nil {
			e.prof.AddEpoch(end - start + 1)
		}
		retiredLast := e.mergeEpoch(start, end)
		if e.finished() {
			break
		}
		msgs := e.inFlightMsgs()
		switch {
		case retiredLast || msgs > 0:
			idle = 0
		case end > start:
			// A multi-cycle epoch ends at its first zero-traffic sub-cycle
			// (the serial phase cuts there), so the serial engine's idle
			// counter — reset at end-1 by the in-flight traffic — would read
			// exactly 1 here.
			idle = 1
		default:
			// Zero-traffic epochs degenerate to a single cycle, so this
			// counts per cycle and the deadlock error (if it fires) lands on
			// the same cycle per-cycle execution reports it.
			idle++
			if idle > deadlockIdleCycles {
				return errors.New("sim: deadlock: no progress and no in-flight traffic")
			}
		}
		if e.opt.DisableSkip {
			continue
		}

		// Event-driven fast-forward: if no component can act before some
		// future cycle, jump there instead of idling through the gap. Every
		// elided cycle is provably a no-op (see nextInteresting and DESIGN.md
		// "Engine fast-forwarding"), except for three pieces of cycle-indexed
		// state that are advanced by the whole span at once: the stall
		// classification counters, the idle/deadlock counter, and the
		// interconnect's sliding windows (rolled forward by net.tick at the
		// next executed cycle).
		target := e.nextInteresting()
		if target >= 0 && target <= e.cycle+1 {
			continue
		}
		if msgs == 0 {
			// Idle-counting mode: stop where the deadlock guard would fire so
			// the error (if the target never arrives) lands on the same cycle
			// per-cycle execution reports it.
			if limit := e.cycle + (deadlockIdleCycles + 1 - idle); target < 0 || target > limit {
				target = limit
			}
		}
		if target > e.opt.MaxCycles+1 {
			target = e.opt.MaxCycles + 1
		}
		span := target - 1 - e.cycle
		if span <= 0 {
			continue
		}
		if e.opt.Context != nil {
			// The per-cycle loop polls for cancellation every ctxCheckInterval
			// cycles; preserve that wall-progress bound across jumps by
			// polling whenever the span crosses a poll boundary.
			if b := (e.cycle>>ctxCheckShift + 1) << ctxCheckShift; b < target {
				if err := e.opt.Context.Err(); err != nil {
					return fmt.Errorf("sim: aborted at cycle %d: %w", b, err)
				}
			}
		}
		for _, sh := range e.shards {
			// Warp states are frozen across the span, so each elided cycle
			// would have classified identically; the fruitless scheduler pass
			// of every elided cycle is replayed once (it is idempotent).
			sh.skipSpan(span)
		}
		if msgs == 0 {
			idle += span
		}
		e.skipped += span
		e.cycle = target - 1
	}
	clk.lap(profiling.PhaseMerge) // close the final cycle's merge segment
	if e.cycle >= e.opt.MaxCycles {
		return fmt.Errorf("sim: exceeded MaxCycles=%d", e.opt.MaxCycles)
	}
	return nil
}

// nextInteresting returns the earliest future cycle at which any engine
// component could possibly act, or -1 when nothing is pending at all (a
// deadlock unless MaxCycles intervenes). Every returned bound is
// conservative: cycles strictly between e.cycle and the returned value are
// guaranteed to replay the current cycle's no-op exactly, so they can be
// elided without changing any statistic. The candidates, mirroring the cycle
// loop's order:
//
//   - the earliest request arrival at the L2 partitions (arriveRequests);
//   - the earliest response send: its data-ready cycle and the response
//     network's backlog-drain cycle (drainResponses);
//   - the earliest fill delivery into a shard's inbox (deliverFills);
//   - the request network's backlog-drain cycle while stores are queued
//     (drainStores) or any shard's request port holds drainable demand
//     misses (drainMissQueues);
//   - the next cycle outright when a shard could trickle a staged prefetch
//     into its miss queue, or when its prefetcher does per-cycle work
//     that may not be elided (Snake while throttled: halted-cycle accounting
//     and hysteresis boundaries must fire cycle by cycle);
//   - each shard's earliest ready-warp wake-up (issue).
//
// Warps waiting on memory or barriers wake only through those same fills
// and issues, so they impose no separate bound.
func (e *engine) nextInteresting() int64 {
	cur := e.cycle
	// Invariant guard: a partition holding unprocessed binned work pins the
	// next cycle. Bins are always drained by the partition ticks of the
	// cycle that filled them, so this never fires at a real decision point —
	// it exists so fast-forwarding stays provably safe against future
	// restructurings of the cycle, not to encode a live bound.
	for _, p := range e.parts {
		if p.busy() {
			return cur + 1
		}
	}
	best := int64(-1)
	for i := range e.partReqs {
		if c := e.partReqs[i].NextCycle(); c >= 0 && (best < 0 || c < best) {
			best = c
		}
	}
	if r, ok := e.resps.peek(); ok {
		c := e.net.nextRespAccept(cur)
		if r.readyAt > c {
			c = r.readyAt
		}
		if best < 0 || c < best {
			best = c
		}
	}
	if len(e.stores) > 0 {
		// The head store (earliest by merge order) cannot cross before both
		// its maturity cycle and the request network's backlog drain.
		c := e.stores[0].cycle + e.horizon
		if a := e.net.nextReqAccept(cur); a > c {
			c = a
		}
		if best < 0 || c < best {
			best = c
		}
	}
	if len(e.dispatchAt) > 0 {
		if c := e.dispatchAt[0]; best < 0 || c < best {
			best = c
		}
	}
	if len(e.wakeAt) > 0 {
		// A pending launch activation is an engine act: the fast-forward may
		// not jump past the wake cycle.
		if c := e.wakeAt[0]; best < 0 || c < best {
			best = c
		}
	}
	for _, sh := range e.shards {
		if sh.mustTickNext(cur) {
			return cur + 1
		}
		if sh.sm.l1.PrefetchQueueLen() > 0 {
			// Staged prefetches behind a full miss queue: residency aging
			// un-fulls the queue with no engine action in between, and the
			// drain trickle resumes at that very cycle. Until then every
			// elided cycle's drain is a provable no-op (no pushes or pulls
			// happen while skipping, so fullness is pure aging).
			if r := sh.sm.l1.DemandQueueRelief(); r >= 0 && (best < 0 || r < best) {
				best = r
			}
		}
		if sh.hasQueuedReq() {
			if e.inflight < e.opt.MaxInflightFills {
				// The queue head pops no earlier than its maturity cycle and
				// the network's next acceptance.
				c := e.net.nextReqAccept(cur)
				if r := sh.nextReqReady(e.horizon); r > c {
					c = r
				}
				if best < 0 || c < best {
					best = c
				}
			} else if len(e.inflightRel) > 0 {
				// Blocked on the in-flight cap: a deferred capacity release
				// is the engine act that can unblock the pull. (With none
				// pending, capacity frees only via future deliveries, which
				// the fill and partition bounds already pin.)
				if c := e.inflightRel[0].at; best < 0 || c < best {
					best = c
				}
			}
		}
		if f := sh.nextFill(); f >= 0 && (best < 0 || f < best) {
			best = f
		}
		if w := sh.nextWake(); w >= 0 && (best < 0 || w < best) {
			best = w
		}
		if best >= 0 && best <= cur+1 {
			return cur + 1
		}
	}
	if best >= 0 && best < cur+1 {
		return cur + 1
	}
	return best
}

// fillSMs dispatches queued CTAs onto SMs with enough free slots: launches in
// App order, and within a launch one CTA per SM per pass over its shard set
// (round-robin, the occupancy-balancing discipline the single-kernel engine
// always had — for a one-launch App the dispatch sequence is identical).
func (e *engine) fillSMs() {
	for {
		progress := false
		for li := range e.launches {
			ln := &e.launches[li]
			if ln.state != lnRunning {
				continue
			}
			for _, sh := range ln.shards {
				if ln.ctaNext >= len(ln.kernel.CTAs) {
					break
				}
				need := len(ln.kernel.CTAs[ln.ctaNext].Warps)
				if sh.sm.freeSlots() >= need {
					sh.sm.dispatchCTA(ln.kernel, ln.ctaNext, &e.ageCtr)
					ln.ctaNext++
					progress = true
				}
			}
		}
		if !progress {
			return
		}
	}
}

// serialPhase executes the serial route phase for the sub-cycles
// [start, maxEnd] in order and returns the epoch's actual end: maxEnd, or
// the first sub-cycle at which no cross-boundary message remains in flight.
// Cutting there keeps the executed-cycle set identical to per-cycle
// execution — the kernel-finish cycle is always a zero-traffic cycle, so the
// epoch can never tick past it — at the cost of degenerating to one-cycle
// epochs during compute-only stretches.
//
// Everything here reads only pre-epoch state plus this phase's own earlier
// sub-cycles: tick outputs are invisible for at least horizon cycles (miss
// queue and store stamps mature at +horizon, partition responses are ready
// no earlier than +L2 latency ≥ +horizon), and maxEnd < start + horizon.
func (e *engine) serialPhase(start, maxEnd int64) (int64, error) {
	e.utilSnap = e.utilSnap[:0]
	for c := start; ; c++ {
		if e.opt.Context != nil && c&(ctxCheckInterval-1) == 0 {
			if err := e.opt.Context.Err(); err != nil {
				return 0, fmt.Errorf("sim: aborted at cycle %d: %w", c, err)
			}
		}
		e.net.tick(c)
		e.drainResponses(c)
		e.deliverFills(c)
		e.releaseInflight(c)
		e.drainMissQueues(c)
		e.drainStores(c)
		if c == start {
			// Hoisted first-sub-cycle prefetch drain: entries drained at c
			// are stamped c-1 (cache.L1.DrainPrefetch keeps their per-cycle
			// injection eligibility), so a drain inside the tick span's
			// first sub-cycle would mature at start-1+horizon — inside a
			// full-horizon epoch. Running that one drain here, serially,
			// after this sub-cycle's injection pull — the same
			// drain-after-pull order per-cycle execution has — removes the
			// early stamp from the span and lets epochs reach the full
			// horizon. Drains at later sub-cycles mature at ≥ start+horizon
			// and stay tick-side.
			for _, sh := range e.shards {
				// The drain's Full check must see this sub-cycle's occupancy:
				// advance the residency clock to start with zero credit (every
				// entry pulled in earlier epochs has expired by now — pulls
				// happen at stamp+horizon ≥ stamp+turnaround).
				sh.sm.l1.SetMissQueueClock(c, 0)
				sh.sm.l1.DrainPrefetch(c)
				sh.predrained = true
			}
		}
		e.utilSnap = append(e.utilSnap, e.net.utilization())
		if c >= maxEnd || e.predictedMsgs() == 0 {
			return c, nil
		}
	}
}

// predictedMsgs is the serial phase's view of inFlightMsgs at the end of a
// sub-cycle: requests crossing the network or queued for this epoch's
// partition ticks (both live in the partition ingress rings until the epoch
// merge consumes them), responses awaiting bandwidth, and fills not yet
// delivered. It equals exactly what inFlightMsgs reports after the cycle's
// ticks and merge under per-cycle barriers: ticks consume the whole inbox
// (so delivered-but-unconsumed fills don't count), and tick outputs (miss
// queue entries, stores) are not messages until the serial phase injects
// them.
func (e *engine) predictedMsgs() int {
	n := e.reqsLen + len(e.resps)
	for _, sh := range e.shards {
		n += sh.fills.Len()
	}
	return n
}

// pushReq injects a fill request into the memory side: the request is binned
// to its owning partition's ingress ring right here, at injection time, and
// stamped with the next global arrival rank (respSeq). Injection order is
// the deterministic smID-order pull of drainMissQueues, and arrival stamps
// are non-decreasing in that order (network sends serialize), so each ring
// is the global arrival order restricted to its partition — which is what
// lets planRoute locate an epoch's due set as a per-ring prefix instead of
// walking requests one by one.
func (e *engine) pushReq(arriveAt int64, req reqMsg) {
	e.respSeq++
	req.seq = e.respSeq
	e.partReqs[e.partOf(req.lineAddr)].Push(arriveAt, req)
	e.reqsLen++
}

// planRoute is the route phase, run once per epoch after the serial drain:
// an O(#partitions) prefix-sum over the per-ring due counts. Each partition
// gets a zero-copy view of its due prefix (every ring entry stamped ≤ end)
// and a contiguous slot range [slotBase, slotBase+dueN) in the epoch
// response array; its tick span computes responses into those slots, and
// mergeEpoch pushes the slots in partition-major order.
//
// Partition-major slot order is NOT global arrival order — but it does not
// need to be. The response heap's pop sequence is a pure function of the
// response set's (readyAt, seq) keys (see respHeap), and every response
// carries the global arrival seq its request was stamped with at injection,
// so the heap replays exactly the serial arrival order no matter how the
// slots were laid out. What the slot ranges must preserve — and do, by the
// per-ring prefix property — is each partition's own arrival order, which
// fixes its L2/DRAM access sequence.
//
// Responses computed for an arrival at sub-cycle c are never sendable before
// c + L2.Latency ≥ c + horizon — past the epoch end — so deferring their
// heap push to the epoch merge changes nothing (asserted there). Returns the
// epoch's total due-request count.
func (e *engine) planRoute(end int64) int {
	total := 0
	for i, p := range e.parts {
		a, b := e.partReqs[i].DueView(end)
		p.dueA, p.dueB = a, b
		p.slotBase = total
		p.dueN = len(a) + len(b)
		total += p.dueN
	}
	if total == 0 {
		return 0
	}
	if cap(e.routed) < total {
		// Grow geometrically; slots need no zeroing — every one is written by
		// exactly one partition before the merge reads it.
		c := 2 * cap(e.routed)
		if c < total {
			c = total
		}
		e.routed = make([]resp, total, c)
	}
	e.routed = e.routed[:total]
	for _, p := range e.parts {
		p.routed = e.routed
	}
	return total
}

// drainResponses sends ready memory responses back over the interconnect at
// sub-cycle c, stamping each with its delivery cycle and queueing it on the
// destination shard's ingress port. The L2 install for each shipped line is
// deferred into the owning partition's completes bin, applied at the same
// sub-cycle of its tick span (after that sub-cycle's accesses — the same
// relative order the serial engine had, see memPartition.tickSpan). Only
// pre-epoch responses can be due: in-epoch ones are ready past the epoch end.
func (e *engine) drainResponses(c int64) {
	lineBytes := e.cfg.Unified.LineSize
	for {
		r, ok := e.resps.peek()
		if !ok || r.readyAt > c {
			return
		}
		deliverAt, sent := e.net.trySendResp(lineBytes)
		if !sent {
			return
		}
		e.resps.pop()
		p := e.parts[r.part]
		p.completes = append(p.completes, partFill{lineAddr: r.lineAddr, cycle: c})
		e.shards[r.sm].fills.Push(deliverAt, fillMsg{lineAddr: r.lineAddr, prefetch: r.prefetch})
		if d := deliverAt - c; d < e.minRespLat {
			e.minRespLat = d
		}
	}
}

// capRelease is one deferred in-flight capacity release (see inflightRel).
type capRelease struct {
	at int64
	n  int
}

// deliverFills moves fills due at sub-cycle c into each shard's inbox (smID
// order) and schedules their in-flight capacity release: immediately when
// horizon equals the turnaround, deferred by the difference otherwise (see
// inflightRel).
func (e *engine) deliverFills(c int64) {
	n := 0
	for _, sh := range e.shards {
		n += sh.deliverDue(c)
	}
	if n == 0 {
		return
	}
	if d := e.horizon - e.turn; d > 0 {
		e.inflightRel = append(e.inflightRel, capRelease{at: c + d, n: n})
	} else {
		e.inflight -= n
	}
}

// releaseInflight applies the deferred capacity releases due at or before
// sub-cycle c, compacting the queue in place so its backing array is reused.
func (e *engine) releaseInflight(c int64) {
	n := 0
	for n < len(e.inflightRel) && e.inflightRel[n].at <= c {
		e.inflight -= e.inflightRel[n].n
		n++
	}
	if n > 0 {
		m := copy(e.inflightRel, e.inflightRel[n:])
		e.inflightRel = e.inflightRel[:m]
	}
}

// missInjectPerSM is how many outgoing fill requests each SM may inject into
// the request network per cycle.
const missInjectPerSM = 3

// drainMissQueues pulls outgoing fill requests from each shard's request
// port at sub-cycle c, up to missInjectPerSM per SM per cycle, subject to
// the in-flight cap (downstream queue capacity). Only heads that matured
// past the slack horizon are candidates: a request staged at cycle p is
// injectable from p + horizon, so requests staged by the current epoch's
// ticks are never pulled by its own serial phase. The pull order — shards in
// smID order — is the deterministic merge order of the SM→memory request
// stream. Each pull records the entry's residency expiry in the shard's
// schedule (shard.popReq), which the tick span replays as phantom
// miss-queue occupancy.
func (e *engine) drainMissQueues(c int64) {
	for _, sh := range e.shards {
		for k := 0; k < missInjectPerSM; k++ {
			if e.inflight >= e.opt.MaxInflightFills {
				return
			}
			if !sh.peekReq(c, e.horizon) {
				break
			}
			deliverAt, sent := e.net.trySendReq(e.opt.RequestBytes)
			if !sent {
				return
			}
			req, _ := sh.popReq()
			e.inflight++
			// The horizon is modeled as the front segment of the network
			// traversal: the request spent horizon-1 cycles of its interconnect
			// latency maturing in the miss queue, so its remaining flight is
			// that much shorter and the end-to-end inject→arrival latency
			// equals the per-cycle engine's. Sound because IcntLatency ≥
			// horizon (the slack audit's interconnect term), so arrival stays
			// strictly in the future.
			arriveAt := deliverAt - (e.horizon - 1)
			e.pushReq(arriveAt, req)
			if d := arriveAt - c; d < e.minReqLat {
				e.minReqLat = d
			}
		}
	}
}

// drainStores sends matured write-through store traffic at low priority: a
// store issued during a tick at cycle p crosses the network no earlier than
// p + horizon — the same visibility delay as fill requests, so the two
// request-direction traffic classes stay phase-aligned and their bandwidth
// contention matches the per-cycle model's (both shifted uniformly; the
// network's budget is time-invariant). Fire-and-forget: nothing downstream
// observes a store's send cycle, so the shift is latency-neutral. The queue
// is in (cycle, smID, seq) merge order, so maturity is a prefix property.
func (e *engine) drainStores(c int64) {
	n := 0
	for n < len(e.stores) && e.stores[n].cycle+e.horizon <= c {
		if _, sent := e.net.trySendReq(e.opt.StoreBytes); !sent {
			break
		}
		n++
	}
	if n > 0 {
		// Compact in place rather than re-slicing (e.stores = e.stores[n:]):
		// re-slicing strands the consumed prefix of the backing array, so
		// append would grow a fresh array every time the queue cycled through
		// its capacity instead of reusing the existing one.
		m := copy(e.stores, e.stores[n:])
		e.stores = e.stores[:m]
	}
}

// tickWave runs the parallel phase of the epoch: every work unit ticks the
// sub-cycles [start, end] (memory partitions drain their request/complete
// bins, shards apply fills and issue), on the worker group when one is
// running.
//
// Normally partitions and shards tick as one wave — they touch disjoint
// state, so no ordering between them is needed. When phase profiling is on,
// the wave splits in two so partition and shard wall clocks are separable;
// the split cannot change results (same disjointness).
func (e *engine) tickWave(start, end int64, clk *phaseClock) {
	np := len(e.parts)
	switch {
	case e.prof != nil:
		if e.group != nil {
			e.group.runSpan(e.units, start, end, 0, np)
		} else {
			for _, p := range e.parts {
				p.tickSpan(start, end)
			}
		}
		clk.lap(profiling.PhaseMemPartitions)
		if e.group != nil {
			e.group.runSpan(e.units, start, end, np, len(e.units))
		} else {
			for _, sh := range e.shards {
				sh.tickSpan(start, end)
			}
		}
		clk.lap(profiling.PhaseShards)
	case e.group != nil:
		e.group.runSpan(e.units, start, end, 0, len(e.units))
	default:
		for _, u := range e.units {
			u.tickSpan(start, end)
		}
	}
}

// mergeEpoch performs the serial merges closing the epoch [start, end]:
// partition responses are pushed in partition-major slot order (each already
// carrying the global arrival seq its request was stamped with at injection,
// so heap ordering is independent of push order and of epoch shape), the
// consumed due prefixes are dropped from the partition ingress rings, egress
// store streams are merged into (cycle, smID, seq) order by a counting
// scatter (mergeStores), and CTA finishes are queued for redispatch at
// +turnaround. Returns whether any shard retired an instruction at the final
// sub-cycle — the only per-cycle retire bit the idle bookkeeping still needs
// (earlier sub-cycles all carried in-flight traffic, which resets the
// counter regardless).
func (e *engine) mergeEpoch(start, end int64) bool {
	for i := range e.routed {
		r := e.routed[i]
		if r.readyAt <= end {
			// Provably unreachable: every partition response is ready no
			// earlier than arrival + L2.Latency ≥ arrival + horizon > end.
			e.slackConflict(r.readyAt, end)
		}
		e.resps.push(r)
	}
	e.routed = e.routed[:0]
	for i, p := range e.parts {
		if p.dueN > 0 {
			e.partReqs[i].Drop(p.dueN)
			e.reqsLen -= p.dueN
			p.dueN = 0
		}
	}

	e.mergeStores(start, end)
	for _, sh := range e.shards {
		sh.mqExpiry = sh.mqExpiry[:0]
	}

	// CTA maturation: a CTA finishing at sub-cycle f frees its warp slots for
	// redispatch at f + turnaround — an epoch start by construction (run
	// caps epochs at the earliest matured dispatch), so the refill is
	// visible to a whole epoch exactly as under per-cycle barriers. Skipped
	// once no running launch holds undispatched CTAs: maturation would only
	// cap future epochs for a guaranteed no-op fillSMs. Only completions on
	// the SMs of a launch with remaining CTAs matter — a slot freed on
	// another launch's SMs can never host them; OR-ing the eligible
	// launches' shard bitsets gives exactly the sub-cycles at which one
	// dispatch event is due (at most one per sub-cycle, as with per-cycle
	// barriers).
	if e.moreCTAs() {
		words := int((end-start)>>6) + 1
		e.ctaOr.reset(words)
		any := false
		for li := range e.launches {
			ln := &e.launches[li]
			if ln.state != lnRunning || ln.ctaNext >= len(ln.kernel.CTAs) {
				continue
			}
			for _, sh := range ln.shards {
				if sh.report.cta.orInto(e.ctaOr) {
					any = true
				}
			}
		}
		if any {
			for w, bitsW := range e.ctaOr {
				for bitsW != 0 {
					i := int64(w)<<6 + int64(bits.TrailingZeros64(bitsW))
					bitsW &= bitsW - 1
					at := start + i + e.turn
					if at <= end {
						// Unreachable: the epoch cutter's exit lookahead
						// is armed whenever undispatched CTAs remain.
						e.slackConflict(at, end)
					}
					e.dispatchAt = append(e.dispatchAt, at)
				}
			}
		}
	}

	// Launch retirement: detected here, in the epoch whose ticks completed
	// the launch's last CTA (see launch.go retireScan).
	e.retireScan(start, end)

	last := end - start
	for _, sh := range e.shards {
		if sh.report.retired.test(last) {
			return true
		}
	}
	return false
}

// scatterParallelMin is the epoch store count below which the parallel
// scatter is not worth a barrier wave: a few hundred 32-byte copies cost
// less than waking the crew.
const scatterParallelMin = 256

// mergeStores merges the epoch's per-shard egress store streams into the
// global queue in (cycle, smID, seq) order — exactly the order per-cycle
// barriers would have appended — via a counting scatter instead of a serial
// (span × shards) walk:
//
//	pass 1 (parallel):  each shard counted its stores per sub-cycle into
//	                    storeCnt during its tick span (shard.tickSpan)
//	pass 2 (serial):    a cycle-major, shard-minor prefix-sum over the
//	                    active shards' counts turns each (cycle, shard)
//	                    count into that group's first destination offset,
//	                    stored back in place — O(span × active shards)
//	                    bookkeeping, no per-store work
//	pass 3 (parallel):  each shard scatters its (cycle-sorted, seq-ordered)
//	                    stream into its reserved, disjoint offsets
//	                    (shard.scatterStores), on the crew when the epoch
//	                    carries enough stores to pay for the wave
//
// Store-free epochs — the common case — exit at the active scan without
// touching anything.
func (e *engine) mergeStores(start, end int64) {
	active := e.scatterShards[:0]
	total := 0
	for _, sh := range e.shards {
		if n := len(sh.out.stores); n > 0 {
			if m := sh.out.stores[0].cycle + e.horizon; m <= end {
				// Provably unreachable: stores mature after the full horizon
				// and epochs never span more than the horizon, so no store
				// can mature inside its own epoch. The stream is
				// cycle-sorted, so checking its earliest entry covers it.
				e.slackConflict(m, end)
			}
			active = append(active, sh)
			total += n
		}
	}
	e.scatterShards = active
	if total == 0 {
		return
	}
	base := len(e.stores)
	e.stores = growStores(e.stores, base+total)
	off := int32(0)
	span := end - start + 1
	for ci := int64(0); ci < span; ci++ {
		for _, sh := range active {
			n := sh.storeCnt[ci]
			sh.storeCnt[ci] = off
			off += n
		}
	}
	e.scatterDst = e.stores[base:]
	e.scatterFrom = start
	if e.group != nil && len(active) > 1 && total >= scatterParallelMin {
		e.group.runTasks(e, len(active))
	} else {
		for i := range active {
			e.runTask(i)
		}
	}
	e.scatterDst = nil
}

// runTask implements taskRunner for the store-merge scatter wave: task i is
// shard i of the active set, whose destination offsets are disjoint from
// every other task's by the prefix-sum construction.
func (e *engine) runTask(i int) {
	e.scatterShards[i].scatterStores(e.scatterDst, e.scatterFrom)
}

// growStores extends s to length n, reusing capacity and growing the backing
// array geometrically — without the temporary slice that
// append(s, make([]storeMsg, k)...) would allocate on the hot path.
func growStores(s []storeMsg, n int) []storeMsg {
	if n <= cap(s) {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	next := make([]storeMsg, n, c)
	copy(next, s)
	return next
}

// applyDispatches pops matured CTA-redispatch events due at the epoch start
// and refills freed SM slots. Events mature only at epoch starts (run caps
// each epoch at the earliest pending event), so the pop never lands
// mid-epoch.
func (e *engine) applyDispatches(start int64) {
	n := 0
	for n < len(e.dispatchAt) && e.dispatchAt[n] <= start {
		n++
	}
	if n > 0 {
		m := copy(e.dispatchAt, e.dispatchAt[n:])
		e.dispatchAt = e.dispatchAt[:m]
		e.fillSMs()
	}
}

// inFlightMsgs counts cross-boundary messages in flight: requests crossing
// to the L2 side, responses awaiting bandwidth, and fills not yet consumed
// by their shard.
func (e *engine) inFlightMsgs() int {
	n := e.reqsLen + len(e.resps)
	for _, sh := range e.shards {
		n += sh.pendingFills()
	}
	return n
}

// finished reports whether every launch has retired, all SMs have drained
// and no traffic is in flight. For a one-launch App this computes exactly
// the single-kernel predicate (the launch retires in the merge of the first
// epoch where its CTAs are exhausted and its SMs drained).
func (e *engine) finished() bool {
	for i := range e.launches {
		if e.launches[i].state != lnRetired {
			return false
		}
	}
	for _, sh := range e.shards {
		if !sh.sm.done() {
			return false
		}
	}
	return e.inFlightMsgs() == 0
}

// throttleReporter is implemented by prefetchers that track their halted
// cycles (Snake).
type throttleReporter interface {
	ThrottleCycles() int64
}

// result aggregates statistics (call once, after the final run).
func (e *engine) result() *Result {
	// Close the launch attribution windows before the end-of-run L1/throttle
	// accounting below, so per-launch stats cover execution windows only.
	e.finalizeLaunchStats()
	for i, sh := range e.shards {
		sh.sm.l1.FinishRun()
		if tr, ok := sh.sm.pf.(throttleReporter); ok {
			e.shStats.Shard(i).Pf.ThrottleCycles = tr.ThrottleCycles()
		}
	}
	// Copy the per-SM counters out of the shard accumulators: the Result must
	// stay valid after the engine is recycled for another run, which resets
	// the accumulators in place.
	perSM := make([]stats.Sim, e.shStats.Len())
	copy(perSM, e.shStats.Slice())
	for i := range perSM {
		perSM[i].Cycles = e.cycle
	}
	res := &Result{Stats: e.shStats.Total(), PerSM: perSM, Slack: e.slackInfo}
	res.Stats.Cycles = e.cycle
	res.Stats.IcntBytes = e.net.totalBytes()
	res.Stats.IcntPeakBytes = e.net.peakBytes(e.cycle)
	// Memory-side counters come from the per-partition arenas; the total is
	// invariant to the partition count and merge order (stats property
	// tests), and the per-SM blocks hold zeros for these fields.
	mem := e.memStats.Total()
	res.Stats.L2Hits += mem.L2Hits
	res.Stats.L2Misses += mem.L2Misses
	res.Stats.L2Merges += mem.L2Merges
	res.Stats.DRAMReads += mem.DRAMReads
	res.Stats.DRAMRowHits += mem.DRAMRowHits
	res.Stats.DRAMRowMisses += mem.DRAMRowMisses
	if a := e.opt.LatencyAudit; a != nil {
		a.MinReqDelivery = e.minReqLat
		a.MinRespDelivery = e.minRespLat
		a.MinL2Response = latencyUnobserved
		for _, p := range e.parts {
			if p.minRespLat < a.MinL2Response {
				a.MinL2Response = p.minRespLat
			}
		}
	}
	return res
}

// smEnv adapts engine state to the prefetch.Env interface for one SM. The
// engine-side reads are of memory-side state that is frozen during the
// parallel phase (the serial phases mutate it, the barrier publishes it), so
// concurrent shard ticks may call them safely.
type smEnv struct {
	eng *engine
	sm  *sm
}

// Utilization implements prefetch.Env. During a tick span the live network
// counters are an epoch ahead of the shard's sub-cycle, so the read comes
// from the per-sub-cycle snapshots the serial phase recorded — each exactly
// the value a per-cycle barrier schedule would have exposed at that cycle.
// (Outside a normal epoch — white-box tests ticking shards directly — it
// falls back to the live value.)
func (v *smEnv) Utilization() float64 {
	if i := v.sm.nowCycle - v.eng.epochStart; i >= 0 && i < int64(len(v.eng.utilSnap)) {
		return v.eng.utilSnap[i]
	}
	return v.eng.net.utilization()
}

// FreeFraction implements prefetch.Env.
func (v *smEnv) FreeFraction() float64 { return v.sm.l1.FreeFraction() }

// ConfineL1 implements prefetch.Env.
func (v *smEnv) ConfineL1(until int64) { v.sm.l1.Confine(until) }
