package sim

import (
	"snake/internal/cache"
	"snake/internal/config"
	"snake/internal/prefetch"
	"snake/internal/sched"
	"snake/internal/stats"
	"snake/internal/trace"
)

// neverReady is the readyAt sentinel for slots that cannot issue regardless
// of cycle (free, done, waiting on memory or a barrier).
const neverReady = int64(1)<<62 - 1

// warpState is the lifecycle state of a warp slot.
type warpState uint8

const (
	wsFree    warpState = iota // slot unoccupied
	wsReady                    // can issue (subject to busyUntil)
	wsWaitMem                  // blocked on an outstanding load
	wsBarrier                  // waiting at a CTA barrier
	wsDone                     // finished; slot frees when the CTA completes
)

// warpCtx is the per-warp-slot execution context.
type warpCtx struct {
	state     warpState
	ctaIdx    int // index into the kernel's CTA slice
	prog      *trace.WarpProgram
	pc        int
	busyUntil int64
	age       int64
	loadSeq   int // retired loads so far
	// outstanding counts in-flight loads; the warp issues ahead until the
	// MLP window fills, then blocks (in-order core with limited memory-level
	// parallelism).
	outstanding int

	// nextExit memoizes the index of the warp's next OpExit at or past pc
	// for the adaptive epoch cutter's activity lookahead (engine.actBound).
	// -1: not scanned yet; len(Insts): none remain. The lazy rescan
	// (opDist) only ever moves forward, so the total scan cost is one
	// program pass per warp per run.
	nextExit int32

	// Oracle load streams (populated only when the prefetcher wants them).
	futPCs   []uint64
	futAddrs []uint64
}

// opDist returns the instruction distance from pc to the warp's next op of
// the given kind, memoized through *memo (-1: the program has none left).
// Valid only for live warps (prog set). The memo invariant — no matching op
// in [scan origin, memo) — holds because pc only advances, so a stale memo
// below pc can be rescanned from pc itself.
func (w *warpCtx) opDist(op trace.Op, memo *int32) int {
	i := int(*memo)
	if i < w.pc {
		insts := w.prog.Insts
		i = w.pc
		for i < len(insts) && insts[i].Op != op {
			i++
		}
		*memo = int32(i)
	}
	if i >= len(w.prog.Insts) {
		return -1
	}
	return i - w.pc
}

// sm models one streaming multiprocessor: warp slots, scheduler slices, the
// L1 controller and the attached prefetcher.
type sm struct {
	id     int
	cfg    config.GPU
	l1     *cache.L1
	pf     prefetch.Prefetcher
	oracle bool
	magic  bool
	scheds []sched.Scheduler
	warps  []warpCtx
	st     *stats.Sim

	// Per-scheduler warp membership (slot indices and ages), cached across
	// cycles and rebuilt only when membership changes (dispatch, warp
	// completion) — see refreshSched. readyBuf is per-cycle scratch.
	readyBuf   [][]bool
	ageBuf     [][]int64
	slotBuf    [][]int
	schedDirty bool
	lineBuf    []uint64 // coalescer scratch

	resident int // live (non-free) warp slots
	// Warp-state occupancy counts, maintained incrementally at every state
	// transition so stall classification and issue-cycle detection are O(1)
	// instead of scanning every warp slot.
	nReady   int // wsReady (issuable once busyUntil passes)
	nWaitMem int // wsWaitMem
	nBarrier int // wsBarrier
	// readyAt shadows each slot's issue-readiness cycle: busyUntil while the
	// warp is wsReady, neverReady otherwise. The issue scan and nextWake read
	// this one contiguous array instead of hopping across the ~100-byte
	// warpCtx structs; every state/busyUntil transition keeps it in sync.
	readyAt  []int64
	env      prefetch.Env
	kernel   *trace.Kernel // set by the engine before the run
	mlp      int           // per-warp MLP window (outstanding loads before blocking)
	observer prefetch.OutcomeObserver

	// nowCycle is the sub-cycle the owning shard's tickSpan is currently
	// executing; smEnv reads it to index the engine's per-sub-cycle
	// utilization snapshots (set before any prefetcher hook can run).
	nowCycle int64
}

// outcomeOf maps the cache-level prefetch outcome to the prefetcher-visible
// one.
func outcomeOf(oc cache.PrefetchOutcome) prefetch.Outcome {
	switch oc {
	case cache.PrefetchIssued:
		return prefetch.OutcomeIssued
	case cache.PrefetchDuplicate:
		return prefetch.OutcomeDuplicate
	case cache.PrefetchNoSpace:
		return prefetch.OutcomeNoSpace
	default:
		return prefetch.OutcomeNoRoom
	}
}

func newSM(id int, cfg config.GPU, pf prefetch.Prefetcher, st *stats.Sim, mlp int) *sm {
	geom := cfg.Unified
	geom.SizeBytes = cfg.DataCacheBytes()
	l1opt := cache.L1Options{
		MSHREntries:   cfg.MSHREntries,
		MergeCap:      cfg.MSHRMergeCap,
		MissQueueSize: cfg.MissQueueSize,
	}
	s := &sm{
		id:      id,
		cfg:     cfg,
		pf:      pf,
		st:      st,
		warps:   make([]warpCtx, cfg.MaxWarpsPerSM),
		readyAt: make([]int64, cfg.MaxWarpsPerSM),
		mlp:     mlp,
	}
	for i := range s.readyAt {
		s.readyAt[i] = neverReady
	}
	if pf != nil {
		s.oracle = prefetch.WantsOracle(pf)
		s.magic = pf.Magic()
		if ob, ok := pf.(prefetch.OutcomeObserver); ok {
			s.observer = ob
		}
	}
	if dec, iso := prefetcherStorage(pf); dec || iso {
		l1opt.Decoupled = dec
		l1opt.Isolated = iso
	}
	s.l1 = cache.NewL1(geom, l1opt, st)
	nSched := cfg.SchedulersPerSM
	s.scheds = make([]sched.Scheduler, nSched)
	s.readyBuf = make([][]bool, nSched)
	s.ageBuf = make([][]int64, nSched)
	s.slotBuf = make([][]int, nSched)
	per := (cfg.MaxWarpsPerSM + nSched - 1) / nSched
	for i := range s.scheds {
		s.scheds[i] = sched.New(cfg.Scheduler)
		s.readyBuf[i] = make([]bool, 0, per)
		s.ageBuf[i] = make([]int64, 0, per)
		s.slotBuf[i] = make([]int, 0, per)
	}
	return s
}

// reset restores the SM to its just-constructed state for a new run: warp
// slots, scheduler slices, occupancy counters and the L1 are all cleared in
// place. The kernel pointer is cleared too — launch activation
// (launch.go activateEligible) installs the kernel whose CTAs the SM will
// host. pf handling depends on reusePf: when true the SM keeps its existing
// prefetcher instances (the caller guarantees the new run uses the same
// mechanism configuration) and resets them; when false pf replaces them and
// the L1's storage organization is re-derived from the new prefetcher. The
// per-run statistics accumulator is reset by the engine (stats.Shards.Reset),
// not here — s.st keeps pointing into it.
func (s *sm) reset(pf prefetch.Prefetcher, mlp int, reusePf bool) {
	clear(s.warps)
	for i := range s.readyAt {
		s.readyAt[i] = neverReady
	}
	for _, sc := range s.scheds {
		sc.Reset()
	}
	for i := range s.slotBuf {
		s.readyBuf[i] = s.readyBuf[i][:0]
		s.ageBuf[i] = s.ageBuf[i][:0]
		s.slotBuf[i] = s.slotBuf[i][:0]
	}
	s.schedDirty = true
	s.resident = 0
	s.nReady = 0
	s.nWaitMem = 0
	s.nBarrier = 0
	s.kernel = nil
	s.mlp = mlp
	s.nowCycle = 0
	if reusePf {
		if s.pf != nil {
			s.pf.Reset()
		}
		s.l1.Reset()
		return
	}
	s.pf = pf
	s.oracle = false
	s.magic = false
	s.observer = nil
	if pf != nil {
		s.oracle = prefetch.WantsOracle(pf)
		s.magic = pf.Magic()
		if ob, ok := pf.(prefetch.OutcomeObserver); ok {
			s.observer = ob
		}
	}
	dec, iso := prefetcherStorage(pf)
	s.l1.Reconfigure(dec, iso)
}

func prefetcherStorage(p prefetch.Prefetcher) (decoupled, isolated bool) {
	if h, ok := p.(prefetch.StorageHint); ok {
		return h.Storage()
	}
	return false, false
}

// freeSlots returns the number of unoccupied warp slots.
func (s *sm) freeSlots() int { return len(s.warps) - s.resident }

// dispatchCTA places a CTA's warps onto free slots. Caller must ensure
// enough free slots exist.
func (s *sm) dispatchCTA(k *trace.Kernel, ctaIdx int, age *int64) {
	cta := &k.CTAs[ctaIdx]
	wi := 0
	for slot := range s.warps {
		if wi >= len(cta.Warps) {
			break
		}
		if s.warps[slot].state != wsFree {
			continue
		}
		w := &s.warps[slot]
		*age++
		*w = warpCtx{
			state:    wsReady,
			ctaIdx:   ctaIdx,
			prog:     &cta.Warps[wi],
			age:      *age,
			nextExit: -1,
		}
		if s.oracle {
			w.futPCs, w.futAddrs = loadStream(w.prog)
		}
		s.readyAt[slot] = 0
		s.resident++
		s.nReady++
		wi++
	}
	if wi != len(cta.Warps) {
		panic("sim: dispatched CTA without enough free slots")
	}
	s.schedDirty = true
}

// loadStream extracts the PC/address stream of a warp's loads.
func loadStream(p *trace.WarpProgram) (pcs, addrs []uint64) {
	for _, in := range p.Insts {
		if in.Op == trace.OpLoad {
			pcs = append(pcs, in.PC)
			addrs = append(addrs, in.Addr)
		}
	}
	return pcs, addrs
}

// issueResult summarizes one SM-cycle of issue for stall classification.
type issueResult struct {
	retired     int
	resFail     bool
	ctaFinished bool // a CTA completed this cycle (slots freed)
}

// refreshSched rebuilds the per-scheduler slot/age lists from the warp
// array. Membership (every warp not free and not done) only changes on CTA
// dispatch and warp completion, so the lists are cached between those points.
func (s *sm) refreshSched() {
	nSched := len(s.scheds)
	for si := 0; si < nSched; si++ {
		slots := s.slotBuf[si][:0]
		ages := s.ageBuf[si][:0]
		for slot := si; slot < len(s.warps); slot += nSched {
			w := &s.warps[slot]
			if w.state == wsFree || w.state == wsDone {
				continue
			}
			slots = append(slots, slot)
			ages = append(ages, w.age)
		}
		s.slotBuf[si], s.ageBuf[si] = slots, ages
	}
	s.schedDirty = false
}

// issue runs all scheduler slices for one cycle. Outbound memory traffic is
// staged into eg, the shard's egress port (never written to engine state
// directly — issue may run concurrently with other shards' ticks).
func (s *sm) issue(cycle int64, eg *egress) issueResult {
	var res issueResult
	nSched := len(s.scheds)
	if s.nReady == 0 {
		// Every resident warp is blocked on memory or a barrier: no scheduler
		// can pick, so skip the per-warp scans. GTO must still forget its
		// greedy warp exactly as a full no-ready scan would (Idle), but only
		// for slices that own at least one live warp — Pick is never reached
		// for an empty slice.
		if s.schedDirty {
			s.refreshSched()
		}
		for si := 0; si < nSched; si++ {
			if len(s.slotBuf[si]) > 0 {
				s.scheds[si].Idle()
			}
		}
		return res
	}
	for si := 0; si < nSched; si++ {
		if s.schedDirty {
			// execute may have completed a warp (or dispatched CTAs onto this
			// SM via fillSMs); later slices must see the updated membership,
			// exactly as the per-cycle rebuild did.
			s.refreshSched()
		}
		slots := s.slotBuf[si]
		if len(slots) == 0 {
			continue
		}
		ready := s.readyBuf[si][:0]
		for _, slot := range slots {
			ready = append(ready, s.readyAt[slot] <= cycle)
		}
		s.readyBuf[si] = ready
		pick := s.scheds[si].Pick(ready, s.ageBuf[si])
		if pick < 0 {
			continue
		}
		s.execute(slots[pick], cycle, eg, &res)
	}
	return res
}

// execute issues warp slot's next instruction.
func (s *sm) execute(slot int, cycle int64, eg *egress, res *issueResult) {
	w := &s.warps[slot]
	in := &w.prog.Insts[w.pc]
	switch in.Op {
	case trace.OpCompute:
		w.busyUntil = cycle + int64(in.Lat)
		s.readyAt[slot] = w.busyUntil
		w.pc++
		s.st.Insts++
		res.retired++

	case trace.OpStore:
		eg.addStore(in.Addr, cycle)
		w.busyUntil = cycle + 1
		s.readyAt[slot] = w.busyUntil
		w.pc++
		s.st.Insts++
		s.st.Stores++
		res.retired++

	case trace.OpBarrier:
		w.state = wsBarrier
		s.readyAt[slot] = neverReady
		s.nReady--
		s.nBarrier++
		w.pc++
		s.st.Insts++
		res.retired++
		s.maybeReleaseBarrier(w.ctaIdx, cycle)

	case trace.OpExit:
		if w.outstanding > 0 {
			// Drain in-flight loads before retiring so a freed slot can
			// never receive a stale wake-up.
			w.state = wsWaitMem
			s.readyAt[slot] = neverReady
			s.nReady--
			s.nWaitMem++
			return
		}
		w.state = wsDone
		s.readyAt[slot] = neverReady
		s.nReady--
		s.schedDirty = true
		s.st.Insts++
		res.retired++
		s.maybeReleaseBarrier(w.ctaIdx, cycle)
		if s.ctaLiveWarps(w.ctaIdx) == 0 {
			s.retireCTA(w.ctaIdx)
			res.ctaFinished = true
		}

	case trace.OpLoad:
		// Coalesce the warp's thread addresses into line transactions. The
		// primary (first) transaction carries the warp's dependency: its
		// outcome decides blocking and replay. Secondary transactions of a
		// divergent access consume MSHRs, miss-queue slots and bandwidth but
		// wake nobody — the warp's timing tracks its lead transaction, a
		// documented simplification for divergent loads.
		s.lineBuf = coalesce(s.lineBuf[:0], in.Addr, in.Stride, s.cfg.WarpSize, s.l1.LineSize())
		out := s.l1.Access(slot, s.lineBuf[0], cycle)
		switch out {
		case stats.L1ReservationFail:
			// PC not advanced: the request is resent until accepted (§2).
			// The replay takes a few cycles to come around the access
			// pipeline again.
			w.busyUntil = cycle + 4
			s.readyAt[slot] = w.busyUntil
			res.resFail = true
			return
		case stats.L1Hit, stats.L1HitPrefetch:
			w.busyUntil = cycle + int64(s.cfg.Unified.Latency)
			s.readyAt[slot] = w.busyUntil
		default:
			// Miss or merged: the load is in flight. The warp keeps issuing
			// until its MLP window fills, then blocks until a fill drains it.
			w.outstanding++
			if w.outstanding >= s.mlp {
				w.state = wsWaitMem
				s.readyAt[slot] = neverReady
				s.nReady--
				s.nWaitMem++
			} else {
				w.busyUntil = cycle + 2 // issue occupancy only
				s.readyAt[slot] = w.busyUntil
			}
		}
		for _, line := range s.lineBuf[1:] {
			s.l1.Access(cache.NoWaiterWarp, line, cycle)
		}
		w.pc++
		w.loadSeq++
		s.st.Insts++
		s.st.Loads++
		res.retired++
		s.notifyPrefetcher(slot, w, in, out, cycle)
	}
}

// notifyPrefetcher reports a retired load and applies returned requests.
func (s *sm) notifyPrefetcher(slot int, w *warpCtx, in *trace.Inst, out stats.L1Outcome, cycle int64) {
	if s.pf == nil {
		return
	}
	ev := prefetch.AccessEvent{
		Cycle:     cycle,
		SM:        s.id,
		CTAID:     w.ctaIdx,
		CTABase:   s.kernel.CTAs[w.ctaIdx].BaseAddr,
		WarpID:    slot,
		WarpInCTA: w.prog.IDInCTA,
		PC:        in.PC,
		Addr:      in.Addr,
		LineAddr:  s.l1.LineAddr(in.Addr),
		Hit:       out == stats.L1Hit || out == stats.L1HitPrefetch,
		SeqInWarp: w.loadSeq - 1,
	}
	if s.oracle {
		ev.FuturePCs = w.futPCs[w.loadSeq:]
		ev.FutureAddrs = w.futAddrs[w.loadSeq:]
	}
	for _, r := range s.pf.OnAccess(ev) {
		if s.magic {
			// The Ideal oracle's predictions are free: they always count,
			// whether or not the line was already resident.
			s.l1.MagicFill(r.Addr, cycle)
			s.l1.Predict(r.Addr)
			continue
		}
		// Only accepted (or deduplicated) prefetches count as predictions;
		// requests the memory system had to drop never became prefetches.
		oc := s.l1.PrefetchLine(r.Addr, cycle)
		if oc != cache.PrefetchNoRoom {
			s.l1.Predict(r.Addr)
		}
		if s.observer != nil {
			s.observer.OnPrefetchOutcome(r.Addr, outcomeOf(oc), cycle, s.env)
		}
	}
	s.l1.SetTrained(s.pf.Trained())
}

// ctaLiveWarps counts warps of the CTA not yet done.
func (s *sm) ctaLiveWarps(ctaIdx int) int {
	n := 0
	for i := range s.warps {
		w := &s.warps[i]
		if w.state != wsFree && w.state != wsDone && w.ctaIdx == ctaIdx {
			n++
		}
	}
	return n
}

// retireCTA frees the slots of a completed CTA.
func (s *sm) retireCTA(ctaIdx int) {
	for i := range s.warps {
		w := &s.warps[i]
		if w.state == wsDone && w.ctaIdx == ctaIdx {
			w.state = wsFree
			w.prog = nil
			s.resident--
		}
	}
}

// maybeReleaseBarrier releases the CTA's warps when all have arrived.
func (s *sm) maybeReleaseBarrier(ctaIdx int, cycle int64) {
	for i := range s.warps {
		w := &s.warps[i]
		if w.ctaIdx != ctaIdx || w.state == wsFree {
			continue
		}
		if w.state == wsReady || w.state == wsWaitMem {
			return // someone still running
		}
	}
	for i := range s.warps {
		w := &s.warps[i]
		if w.ctaIdx == ctaIdx && w.state == wsBarrier {
			w.state = wsReady
			s.nBarrier--
			s.nReady++
			w.busyUntil = cycle + 1
			s.readyAt[i] = w.busyUntil
		}
	}
}

// wake drains one outstanding load per waiter entry and unblocks warps whose
// MLP window has room again.
func (s *sm) wake(slots []int, cycle int64) {
	for _, slot := range slots {
		if slot < 0 || slot >= len(s.warps) {
			continue
		}
		w := &s.warps[slot]
		if w.outstanding > 0 {
			w.outstanding--
		}
		if w.state == wsWaitMem && w.outstanding < s.mlp {
			w.state = wsReady
			s.nWaitMem--
			s.nReady++
			w.busyUntil = cycle
			s.readyAt[slot] = cycle
		}
	}
}

// idleSchedulers applies one cycle's worth of no-issue scheduler updates: for
// every slice owning at least one live warp, the state change of a fruitless
// Pick (GTO forgets its greedy warp; LRR and Oldest are untouched). The
// update is idempotent, so the engine's fast-forward calls this once per
// skipped span to reproduce what per-cycle execution would have done to
// scheduler state on every elided cycle.
func (s *sm) idleSchedulers() {
	if s.schedDirty {
		s.refreshSched()
	}
	for si := range s.scheds {
		if len(s.slotBuf[si]) > 0 {
			s.scheds[si].Idle()
		}
	}
}

// classifyStall records the stall type for a cycle in which nothing retired.
func (s *sm) classifyStall(resFail bool) {
	if s.resident == 0 {
		return
	}
	if resFail {
		s.st.StallMemory++
		return
	}
	s.classifyStallSpan(1)
}

// classifyStallSpan records n cycles of issue-free stall classification in
// one step, using the incrementally-maintained state counts: a stall is
// memory-bound when at least one warp waits on memory and none is ready or
// at a barrier. Warp states are frozen across an idle span (nothing issues,
// wakes, or releases a barrier), so the per-cycle classification is constant
// and the engine's fast-forward can account a whole skipped span at once,
// keeping the stall counters bit-identical to per-cycle execution.
func (s *sm) classifyStallSpan(n int64) {
	if s.resident == 0 {
		return
	}
	if s.nWaitMem > 0 && s.nReady == 0 && s.nBarrier == 0 {
		s.st.StallMemory += n
	} else {
		s.st.StallOther += n
	}
}

// nextWake returns the earliest cycle at which one of the SM's ready warps
// can issue, or -1 when no warp is in the ready state. Warps waiting on
// memory or a barrier wake only through fill events or issue-side barrier
// releases, so they impose no time bound of their own.
func (s *sm) nextWake() int64 {
	if s.nReady == 0 {
		return -1
	}
	wake := neverReady
	for _, r := range s.readyAt {
		if r < wake {
			wake = r
		}
	}
	return wake
}

// done reports whether every slot is free.
func (s *sm) done() bool { return s.resident == 0 }
