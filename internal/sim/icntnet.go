package sim

import (
	"snake/internal/config"
	"snake/internal/icnt"
)

// icntNet models the two directions of the SM<->L2 fabric as separate
// networks, as in real GPUs: a request network (small fill-request packets
// and store data) and a response network (full cache lines). The response
// direction carries the "transferred data between the L1 data cache and the
// L2 cache" that Figure 4 normalizes against, and is what Snake's bandwidth
// throttle observes.
type icntNet struct {
	req  *icnt.Network
	resp *icnt.Network
}

func newIcntNet(cfg config.GPU) *icntNet {
	mk := func() *icnt.Network {
		return icnt.New(icnt.Config{
			BytesPerCycle: cfg.IcntBytesPerCycle * cfg.NumSM,
			Latency:       cfg.IcntLatency,
		})
	}
	return &icntNet{req: mk(), resp: mk()}
}

// reset restores both directions to their just-constructed state.
func (n *icntNet) reset() {
	n.req.Reset()
	n.resp.Reset()
}

func (n *icntNet) tick(cycle int64) {
	n.req.Tick(cycle)
	n.resp.Tick(cycle)
}

// trySendReq injects a request-direction packet (fill request, store).
func (n *icntNet) trySendReq(size int) (int64, bool) { return n.req.TrySend(size) }

// trySendResp injects a response-direction packet (line fill).
func (n *icntNet) trySendResp(size int) (int64, bool) { return n.resp.TrySend(size) }

// nextReqAccept returns the first cycle after `from` at which the request
// network can accept a packet (backlog within bound), for fast-forwarding.
func (n *icntNet) nextReqAccept(from int64) int64 { return n.req.NextAcceptCycle(from) }

// nextRespAccept is nextReqAccept for the response direction.
func (n *icntNet) nextRespAccept(from int64) int64 { return n.resp.NextAcceptCycle(from) }

// utilization returns the response-direction sliding-window utilization.
func (n *icntNet) utilization() float64 { return n.resp.Utilization() }

// totalBytes returns data bytes moved in the response direction.
func (n *icntNet) totalBytes() int64 { return n.resp.TotalBytes() }

func (n *icntNet) peakBytes(cycles int64) int64 { return n.resp.PeakBytes(cycles) }
