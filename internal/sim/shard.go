package sim

import (
	"snake/internal/icnt"
	"snake/internal/prefetch"
)

// shard is one SM-side unit of parallel execution: the SM (warps, scheduler
// slices, L1, MSHRs, statistics) plus its attached prefetcher, together with
// the typed ports that are its only connection to the memory side.
//
// Ownership protocol (what makes parallel ticking deterministic and
// race-free):
//
//   - During the parallel phase of a cycle, exactly one worker runs
//     sh.tick, which touches only shard-private state, the inbox the serial
//     phase filled, and the shard's egress buffer. It never reads another
//     shard or writes memory-side state.
//   - Between barriers (the serial phases), the engine goroutine owns the
//     whole shard: it delivers ingress messages, pulls from the request
//     port, merges the egress, and may dispatch CTAs.
//
// The barrier's synchronization establishes the happens-before edges between
// the two phases, so the protocol is also what the race detector checks.
type shard struct {
	sm *sm

	// fills is the memory→SM ingress port: completed responses in flight,
	// stamped with their delivery cycle. The serial phase pushes (send order
	// is non-decreasing in delivery cycle because the response network
	// serializes bandwidth) and moves due messages to inbox; tick consumes.
	fills icnt.Ingress[fillMsg]
	// inbox holds the fills due this cycle, in stamp order, for tick.
	inbox []fillMsg

	// out is the SM→memory egress port, appended to during tick and merged
	// by the engine at the cycle barrier in (smID, seq) order.
	out egress

	// report is tick's summary for the barrier merge.
	report tickReport
}

// tickReport summarizes one shard tick for the serial merge phase.
type tickReport struct {
	retired     bool
	ctaFinished bool
}

func newShard(s *sm) *shard {
	return &shard{sm: s, out: egress{sm: s.id}}
}

// reset empties the shard's ports and report for a new run on a recycled
// engine, keeping the ring and inbox backing arrays. The SM itself is reset
// separately (sm.reset).
func (sh *shard) reset() {
	sh.fills.Reset()
	sh.inbox = sh.inbox[:0]
	sh.out.seq = 0
	sh.out.stores = sh.out.stores[:0]
	sh.report = tickReport{}
}

// deliverDue moves ingress fills due at or before cycle into the inbox, in
// stamp order, and returns how many it moved. Serial phase only: the engine
// uses the count to release MaxInflightFills capacity before it arbitrates
// this cycle's request injection, exactly when the serial engine's delivery
// events released it.
func (sh *shard) deliverDue(cycle int64) int {
	n := 0
	for {
		f, ok := sh.fills.PopDue(cycle)
		if !ok {
			break
		}
		sh.inbox = append(sh.inbox, f)
		n++
	}
	return n
}

// tick executes one cycle of this shard: apply delivered fills, run the
// prefetcher's per-cycle hook, issue from the warp schedulers, and classify
// the stall if nothing retired. Safe to run concurrently with other shards'
// ticks; all cross-boundary output lands in sh.out and sh.report.
func (sh *shard) tick(cycle int64) {
	s := sh.sm
	for _, f := range sh.inbox {
		waiters := s.l1.Fill(f.lineAddr, cycle)
		s.wake(waiters, cycle)
	}
	sh.inbox = sh.inbox[:0]
	if s.pf != nil {
		s.pf.OnCycle(cycle, s.env)
	}
	res := s.issue(cycle, &sh.out)
	sh.report = tickReport{retired: res.retired > 0, ctaFinished: res.ctaFinished}
	if res.retired == 0 {
		s.classifyStall(res.resFail)
	}
}

// --- request port (serial phase only) -----------------------------------
//
// The memory side pulls fill requests from the shard rather than the shard
// pushing them: how many it may inject per cycle depends on global state
// (request-network bandwidth, the in-flight cap) that only the memory side
// sees. The pull happens at the barrier, in fixed smID order, which is the
// deterministic merge order of the SM→memory request stream.

// drainStaged trickles staged prefetch requests into the shared miss queue
// (cache.PrefetchDrainPerCycle per cycle), the same rate-limit the serial
// engine applied.
func (sh *shard) drainStaged(cycle int64) { sh.sm.l1.DrainPrefetch(cycle) }

// peekReq reports whether a fill request is ready to inject.
func (sh *shard) peekReq() bool {
	_, any := sh.sm.l1.PeekMiss()
	return any
}

// popReq removes the next fill request from the port.
func (sh *shard) popReq() (reqMsg, bool) {
	r, ok := sh.sm.l1.PopMiss()
	if !ok {
		return reqMsg{}, false
	}
	return reqMsg{sm: sh.sm.id, lineAddr: r.LineAddr, prefetch: r.Prefetch}, true
}

// --- fast-forward bounds (serial phase only) ----------------------------

// mustTickNext reports whether this shard has per-cycle work that may not be
// elided: a prefetcher that forbids skipping right now (Snake while
// throttled), or staged prefetches that could trickle into a non-full miss
// queue.
func (sh *shard) mustTickNext(cycle int64) bool {
	s := sh.sm
	if s.pf != nil && !prefetch.CanSkipCycles(s.pf, cycle) {
		return true
	}
	return s.l1.PrefetchQueueLen() > 0 && !s.l1.DemandQueueFull()
}

// hasQueuedReq reports whether the request port has drainable demand work.
func (sh *shard) hasQueuedReq() bool { return sh.sm.l1.DemandQueueLen() > 0 }

// nextWake returns the earliest cycle a ready warp can issue (-1: none).
func (sh *shard) nextWake() int64 { return sh.sm.nextWake() }

// nextFill returns the earliest pending ingress delivery (-1: none).
func (sh *shard) nextFill() int64 { return sh.fills.NextCycle() }

// pendingFills returns in-flight plus delivered-but-unconsumed fills.
func (sh *shard) pendingFills() int { return sh.fills.Len() + len(sh.inbox) }

// skipSpan advances the shard over n provably idle cycles: span-sized stall
// classification plus the idempotent no-issue scheduler update.
func (sh *shard) skipSpan(n int64) {
	sh.sm.classifyStallSpan(n)
	sh.sm.idleSchedulers()
}
