package sim

import (
	"snake/internal/icnt"
	"snake/internal/prefetch"
)

// shard is one SM-side unit of parallel execution: the SM (warps, scheduler
// slices, L1, MSHRs, statistics) plus its attached prefetcher, together with
// the typed ports that are its only connection to the memory side.
//
// Ownership protocol (what makes parallel ticking deterministic and
// race-free):
//
//   - During the parallel phase of a cycle, exactly one worker runs
//     sh.tick, which touches only shard-private state, the inbox the serial
//     phase filled, and the shard's egress buffer. It never reads another
//     shard or writes memory-side state.
//   - Between barriers (the serial phases), the engine goroutine owns the
//     whole shard: it delivers ingress messages, pulls from the request
//     port, merges the egress, and may dispatch CTAs.
//
// The barrier's synchronization establishes the happens-before edges between
// the two phases, so the protocol is also what the race detector checks.
type shard struct {
	sm *sm

	// fills is the memory→SM ingress port: completed responses in flight,
	// stamped with their delivery cycle. The serial phase pushes (send order
	// is non-decreasing in delivery cycle because the response network
	// serializes bandwidth) and moves due messages to inbox; tickSpan
	// consumes each at its stamped sub-cycle.
	fills icnt.Ingress[fillMsg]
	// inbox holds the fills due this epoch, in stamp order, for tickSpan;
	// inboxStamp carries each entry's delivery sub-cycle.
	inbox      []fillMsg
	inboxStamp []int64

	// mqExpiry records, per request the engine's serial phase pulled from
	// this shard's miss queue this epoch, the sub-cycle at which the entry's
	// modeled queue residency elapses (stamp + turnaround), in ascending
	// order — the schedule behind the phantom-credit occupancy tickSpan
	// presents to the L1 (see tickSpan).
	mqExpiry []int64

	// out is the SM→memory egress port, appended to during tickSpan and
	// merged by the engine at the epoch barrier in (cycle, smID, seq) order.
	out egress

	// storeCnt is the counting-scatter scratch for the epoch store merge:
	// tickSpan counts this shard's staged stores per sub-cycle (pass 1, in
	// parallel), the engine's prefix-sum rewrites the counts into destination
	// offsets in place (pass 2), and scatterStores consumes them (pass 3).
	// Only meaningful for epochs in which the shard staged stores; recycled
	// across epochs and runs.
	storeCnt []int32

	// report is tickSpan's summary for the epoch merge: bit i of a set is
	// sub-cycle from+i.
	report tickReport

	// predrained records that the engine's serial phase already ran this
	// epoch's first-sub-cycle prefetch drain (after that sub-cycle's
	// injection pull, matching the per-cycle drain-after-pull order), so
	// tickSpan must skip the drain at its first sub-cycle. Hoisting that
	// one drain is what lets epochs span the full horizon: its entries are
	// stamped one cycle early (cache.L1.DrainPrefetch) and would otherwise
	// mature inside a full-width epoch.
	predrained bool
}

// tickReport summarizes one shard tick span for the serial merge phase.
// The bitsets are variable-width — one bit per epoch sub-cycle, sized by
// tickSpan to the span it runs — so the horizon is bounded by the config
// audit alone, not by a word size.
type tickReport struct {
	retired epochBits // sub-cycles at which an instruction retired
	cta     epochBits // sub-cycles at which a CTA completed (slots freed)
}

func newShard(s *sm) *shard {
	return &shard{sm: s, out: egress{sm: s.id}}
}

// reset empties the shard's ports and report for a new run on a recycled
// engine, keeping the ring and inbox backing arrays. The SM itself is reset
// separately (sm.reset).
func (sh *shard) reset() {
	sh.fills.Reset()
	sh.inbox = sh.inbox[:0]
	sh.inboxStamp = sh.inboxStamp[:0]
	sh.mqExpiry = sh.mqExpiry[:0]
	sh.out.seq = 0
	sh.out.stores = sh.out.stores[:0]
	sh.report.retired.reset(0)
	sh.report.cta.reset(0)
	sh.predrained = false
}

// deliverDue moves ingress fills due at or before cycle into the inbox, in
// stamp order (stamping each entry with cycle — deliveries always land
// exactly on time, the engine never overshoots a delivery), and returns how
// many it moved. Serial phase only: the engine uses the count to release
// MaxInflightFills capacity before it arbitrates this sub-cycle's request
// injection, exactly when the serial engine's delivery events released it.
func (sh *shard) deliverDue(cycle int64) int {
	n := 0
	for {
		f, ok := sh.fills.PopDue(cycle)
		if !ok {
			break
		}
		sh.inbox = append(sh.inbox, f)
		sh.inboxStamp = append(sh.inboxStamp, cycle)
		n++
	}
	return n
}

// tickSpan executes the epoch [from, to] on this shard, one sub-cycle at a
// time: trickle staged prefetches, apply the fills delivered at that
// sub-cycle, run the prefetcher's per-cycle hook, issue from the warp
// schedulers, and classify the stall if nothing retired. Safe to run
// concurrently with other units' spans; all cross-boundary output lands in
// sh.out and sh.report.
//
// Phantom credit: the engine's serial phase already pulled the whole epoch's
// injections from the miss queue, but at sub-cycle c some of those entries'
// modeled residency (stamp + turnaround) has not yet elapsed. They are
// presented back to the L1 as phantom occupancy — and the clock ages the
// still-queued entries — so every Full check (reservation fails, prefetch
// drain) sees exactly the occupancy the virtual-residency model defines,
// independent of epoch shape.
func (sh *shard) tickSpan(from, to int64) {
	s := sh.sm
	exp := 0
	words := int((to-from)>>6) + 1
	sh.report.retired.reset(words)
	sh.report.cta.reset(words)
	fi := 0
	for i, c := int64(0), from; c <= to; i, c = i+1, c+1 {
		for exp < len(sh.mqExpiry) && sh.mqExpiry[exp] <= c {
			exp++
		}
		s.l1.SetMissQueueClock(c, len(sh.mqExpiry)-exp)
		s.nowCycle = c
		if i == 0 && sh.predrained {
			// The serial phase ran this sub-cycle's prefetch drain (see
			// engine.serialPhase); running it again would double-drain.
			sh.predrained = false
		} else {
			s.l1.DrainPrefetch(c)
		}
		for fi < len(sh.inbox) && sh.inboxStamp[fi] <= c {
			waiters := s.l1.Fill(sh.inbox[fi].lineAddr, c)
			s.wake(waiters, c)
			fi++
		}
		if s.pf != nil {
			s.pf.OnCycle(c, s.env)
		}
		res := s.issue(c, &sh.out)
		if res.retired > 0 {
			sh.report.retired.set(i)
		} else {
			s.classifyStall(res.resFail)
		}
		if res.ctaFinished {
			sh.report.cta.set(i)
		}
	}
	s.l1.SetMissQueueClock(to, 0)
	sh.inbox = sh.inbox[:0]
	sh.inboxStamp = sh.inboxStamp[:0]
	if len(sh.out.stores) > 0 {
		// Pass 1 of the epoch store merge (engine.mergeStores): count this
		// shard's stores per sub-cycle, here in the parallel phase so the
		// serial merge only prefix-sums per-unit counts. The stream is
		// cycle-sorted (sub-cycles run forward), so indices are in range.
		span := int(to-from) + 1
		if cap(sh.storeCnt) < span {
			sh.storeCnt = make([]int32, span)
		} else {
			sh.storeCnt = sh.storeCnt[:span]
			clear(sh.storeCnt)
		}
		for i := range sh.out.stores {
			sh.storeCnt[sh.out.stores[i].cycle-from]++
		}
	}
}

// scatterStores is pass 3 of the epoch store merge: write this shard's
// staged stores into their reserved slots of dst (the engine's merge window)
// and clear the egress. storeCnt holds the destination offset for each
// sub-cycle's group after the engine's prefix-sum; consecutive stores of one
// sub-cycle land at consecutive offsets, preserving seq order within the
// group. Offsets of different shards are disjoint by construction, so
// scatters may run concurrently.
func (sh *shard) scatterStores(dst []storeMsg, from int64) {
	for i := range sh.out.stores {
		m := &sh.out.stores[i]
		c := m.cycle - from
		dst[sh.storeCnt[c]] = *m
		sh.storeCnt[c]++
	}
	sh.out.stores = sh.out.stores[:0]
}

// --- request port (serial phase only) -----------------------------------
//
// The memory side pulls fill requests from the shard rather than the shard
// pushing them: how many it may inject per cycle depends on global state
// (request-network bandwidth, the in-flight cap) that only the memory side
// sees. The pull happens at the barrier, in fixed smID order, which is the
// deterministic merge order of the SM→memory request stream.

// peekReq reports whether a fill request is ready to inject at cycle: the
// queue head must have matured past the slack horizon (pushed at p, ready at
// p + horizon). Requests staged during the current epoch's tick spans are
// therefore never injection candidates within it — the visibility delay that
// lets the serial phase run a whole epoch ahead of the ticks. FIFO order is
// preserved: stamps are non-decreasing along the queue.
func (sh *shard) peekReq(cycle, horizon int64) bool {
	r, any := sh.sm.l1.PeekMiss()
	return any && r.Cycle+horizon <= cycle
}

// nextReqReady returns the cycle at which the queue head matures (-1: empty).
func (sh *shard) nextReqReady(horizon int64) int64 {
	r, any := sh.sm.l1.PeekMiss()
	if !any {
		return -1
	}
	return r.Cycle + horizon
}

// popReq removes the next fill request from the port, recording its virtual
// injection cycle — when its modeled queue residency elapses — for
// tickSpan's phantom credit.
func (sh *shard) popReq() (reqMsg, bool) {
	r, ok := sh.sm.l1.PopMiss()
	if !ok {
		return reqMsg{}, false
	}
	sh.mqExpiry = append(sh.mqExpiry, r.VInj)
	return reqMsg{sm: sh.sm.id, lineAddr: r.LineAddr, prefetch: r.Prefetch}, true
}

// --- fast-forward bounds (serial phase only) ----------------------------

// mustTickNext reports whether this shard has per-cycle work that may not be
// elided: a prefetcher that forbids skipping right now (Snake while
// throttled), or staged prefetches that could trickle into a non-full miss
// queue (the trickle happens at the top of each tick sub-cycle, so eliding a
// cycle elides it). Fullness is evaluated at cycle+1 — the next tick's
// sub-cycle — because residency aging can un-full the queue with no engine
// action in between.
func (sh *shard) mustTickNext(cycle int64) bool {
	s := sh.sm
	if s.pf != nil && !prefetch.CanSkipCycles(s.pf, cycle) {
		return true
	}
	return s.l1.PrefetchQueueLen() > 0 && !s.l1.DemandQueueFullAt(cycle+1)
}

// hasQueuedReq reports whether the request port has drainable demand work.
func (sh *shard) hasQueuedReq() bool { return sh.sm.l1.DemandQueueLen() > 0 }

// nextWake returns the earliest cycle a ready warp can issue (-1: none).
func (sh *shard) nextWake() int64 { return sh.sm.nextWake() }

// nextFill returns the earliest pending ingress delivery (-1: none).
func (sh *shard) nextFill() int64 { return sh.fills.NextCycle() }

// pendingFills returns in-flight plus delivered-but-unconsumed fills.
func (sh *shard) pendingFills() int { return sh.fills.Len() + len(sh.inbox) }

// skipSpan advances the shard over n provably idle cycles: span-sized stall
// classification plus the idempotent no-issue scheduler update.
func (sh *shard) skipSpan(n int64) {
	sh.sm.classifyStallSpan(n)
	sh.sm.idleSchedulers()
}
