package sim

import (
	"snake/internal/icnt"
	"snake/internal/prefetch"
)

// shard is one SM-side unit of parallel execution: the SM (warps, scheduler
// slices, L1, MSHRs, statistics) plus its attached prefetcher, together with
// the typed ports that are its only connection to the memory side.
//
// Ownership protocol (what makes parallel ticking deterministic and
// race-free):
//
//   - During the parallel phase of a cycle, exactly one worker runs
//     sh.tick, which touches only shard-private state, the inbox the serial
//     phase filled, and the shard's egress buffer. It never reads another
//     shard or writes memory-side state.
//   - Between barriers (the serial phases), the engine goroutine owns the
//     whole shard: it delivers ingress messages, pulls from the request
//     port, merges the egress, and may dispatch CTAs.
//
// The barrier's synchronization establishes the happens-before edges between
// the two phases, so the protocol is also what the race detector checks.
type shard struct {
	sm *sm

	// fills is the memory→SM ingress port: completed responses in flight,
	// stamped with their delivery cycle. The serial phase pushes (send order
	// is non-decreasing in delivery cycle because the response network
	// serializes bandwidth) and moves due messages to inbox; tickSpan
	// consumes each at its stamped sub-cycle.
	fills icnt.Ingress[fillMsg]
	// inbox holds the fills due this epoch, in stamp order, for tickSpan;
	// inboxStamp carries each entry's delivery sub-cycle.
	inbox      []fillMsg
	inboxStamp []int64

	// mqPops records, per epoch sub-cycle, how many requests the engine's
	// serial phase pulled from this shard's miss queue — the schedule behind
	// the phantom-credit occupancy tickSpan presents to the L1 (see tickSpan).
	mqPops []int32

	// out is the SM→memory egress port, appended to during tickSpan and
	// merged by the engine at the epoch barrier in (cycle, smID, seq) order.
	out egress

	// report is tickSpan's summary for the epoch merge: bit i of a mask is
	// sub-cycle from+i.
	report tickReport
}

// tickReport summarizes one shard tick span for the serial merge phase.
type tickReport struct {
	retiredMask uint64 // sub-cycles at which an instruction retired
	ctaMask     uint64 // sub-cycles at which a CTA completed (slots freed)
}

func newShard(s *sm) *shard {
	return &shard{sm: s, out: egress{sm: s.id}}
}

// reset empties the shard's ports and report for a new run on a recycled
// engine, keeping the ring and inbox backing arrays. The SM itself is reset
// separately (sm.reset).
func (sh *shard) reset() {
	sh.fills.Reset()
	sh.inbox = sh.inbox[:0]
	sh.inboxStamp = sh.inboxStamp[:0]
	sh.mqPops = sh.mqPops[:0]
	sh.out.seq = 0
	sh.out.stores = sh.out.stores[:0]
	sh.report = tickReport{}
}

// deliverDue moves ingress fills due at or before cycle into the inbox, in
// stamp order (stamping each entry with cycle — deliveries always land
// exactly on time, the engine never overshoots a delivery), and returns how
// many it moved. Serial phase only: the engine uses the count to release
// MaxInflightFills capacity before it arbitrates this sub-cycle's request
// injection, exactly when the serial engine's delivery events released it.
func (sh *shard) deliverDue(cycle int64) int {
	n := 0
	for {
		f, ok := sh.fills.PopDue(cycle)
		if !ok {
			break
		}
		sh.inbox = append(sh.inbox, f)
		sh.inboxStamp = append(sh.inboxStamp, cycle)
		n++
	}
	return n
}

// tickSpan executes the epoch [from, to] on this shard, one sub-cycle at a
// time: trickle staged prefetches, apply the fills delivered at that
// sub-cycle, run the prefetcher's per-cycle hook, issue from the warp
// schedulers, and classify the stall if nothing retired. Safe to run
// concurrently with other units' spans; all cross-boundary output lands in
// sh.out and sh.report.
//
// Phantom credit: the engine's serial phase already pulled the whole epoch's
// injections from the miss queue, but at sub-cycle c only the pulls for
// sub-cycles ≤ c have "happened". The pulls scheduled for later sub-cycles
// are presented back to the L1 as phantom occupancy, so every Full check —
// reservation fails, prefetch drain — sees exactly the occupancy per-cycle
// barriers would have shown it.
func (sh *shard) tickSpan(from, to int64) {
	s := sh.sm
	credit := 0
	for _, n := range sh.mqPops {
		credit += int(n)
	}
	fi := 0
	var report tickReport
	for i, c := 0, from; c <= to; i, c = i+1, c+1 {
		if i < len(sh.mqPops) {
			// The serial pulls at sub-cycle c precede this tick (the engine
			// drains before the units run in the per-cycle schedule too).
			credit -= int(sh.mqPops[i])
		}
		s.l1.SetMissQueueCredit(credit)
		s.nowCycle = c
		s.l1.DrainPrefetch(c)
		for fi < len(sh.inbox) && sh.inboxStamp[fi] <= c {
			waiters := s.l1.Fill(sh.inbox[fi].lineAddr, c)
			s.wake(waiters, c)
			fi++
		}
		if s.pf != nil {
			s.pf.OnCycle(c, s.env)
		}
		res := s.issue(c, &sh.out)
		if res.retired > 0 {
			report.retiredMask |= 1 << uint(i)
		} else {
			s.classifyStall(res.resFail)
		}
		if res.ctaFinished {
			report.ctaMask |= 1 << uint(i)
		}
	}
	s.l1.SetMissQueueCredit(0)
	sh.inbox = sh.inbox[:0]
	sh.inboxStamp = sh.inboxStamp[:0]
	sh.report = report
}

// --- request port (serial phase only) -----------------------------------
//
// The memory side pulls fill requests from the shard rather than the shard
// pushing them: how many it may inject per cycle depends on global state
// (request-network bandwidth, the in-flight cap) that only the memory side
// sees. The pull happens at the barrier, in fixed smID order, which is the
// deterministic merge order of the SM→memory request stream.

// peekReq reports whether a fill request is ready to inject at cycle: the
// queue head must have matured past the slack horizon (pushed at p, ready at
// p + horizon). Requests staged during the current epoch's tick spans are
// therefore never injection candidates within it — the visibility delay that
// lets the serial phase run a whole epoch ahead of the ticks. FIFO order is
// preserved: stamps are non-decreasing along the queue.
func (sh *shard) peekReq(cycle, horizon int64) bool {
	r, any := sh.sm.l1.PeekMiss()
	return any && r.Cycle+horizon <= cycle
}

// nextReqReady returns the cycle at which the queue head matures (-1: empty).
func (sh *shard) nextReqReady(horizon int64) int64 {
	r, any := sh.sm.l1.PeekMiss()
	if !any {
		return -1
	}
	return r.Cycle + horizon
}

// popReq removes the next fill request from the port.
func (sh *shard) popReq() (reqMsg, bool) {
	r, ok := sh.sm.l1.PopMiss()
	if !ok {
		return reqMsg{}, false
	}
	return reqMsg{sm: sh.sm.id, lineAddr: r.LineAddr, prefetch: r.Prefetch}, true
}

// --- fast-forward bounds (serial phase only) ----------------------------

// mustTickNext reports whether this shard has per-cycle work that may not be
// elided: a prefetcher that forbids skipping right now (Snake while
// throttled), or staged prefetches that could trickle into a non-full miss
// queue (the trickle happens at the top of each tick sub-cycle, so eliding a
// cycle elides it).
func (sh *shard) mustTickNext(cycle int64) bool {
	s := sh.sm
	if s.pf != nil && !prefetch.CanSkipCycles(s.pf, cycle) {
		return true
	}
	return s.l1.PrefetchQueueLen() > 0 && !s.l1.DemandQueueFull()
}

// hasQueuedReq reports whether the request port has drainable demand work.
func (sh *shard) hasQueuedReq() bool { return sh.sm.l1.DemandQueueLen() > 0 }

// nextWake returns the earliest cycle a ready warp can issue (-1: none).
func (sh *shard) nextWake() int64 { return sh.sm.nextWake() }

// nextFill returns the earliest pending ingress delivery (-1: none).
func (sh *shard) nextFill() int64 { return sh.fills.NextCycle() }

// pendingFills returns in-flight plus delivered-but-unconsumed fills.
func (sh *shard) pendingFills() int { return sh.fills.Len() + len(sh.inbox) }

// skipSpan advances the shard over n provably idle cycles: span-sized stall
// classification plus the idempotent no-issue scheduler update.
func (sh *shard) skipSpan(n int64) {
	sh.sm.classifyStallSpan(n)
	sh.sm.idleSchedulers()
}
