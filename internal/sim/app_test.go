package sim

import (
	"reflect"
	"testing"

	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/trace"
	"snake/internal/workloads"
)

// appCells are the (Parallelism, SlackWindow) pairs the app tests sweep:
// per-cycle serial, short epochs under the sharded barrier, and auto-length
// epochs up to one worker per unit — the same spread as the pooled matrix.
var appCells = []struct{ p, slack int }{{1, 1}, {4, 2}, {4, 0}, {12, 0}}

// buildTestApp assembles a workloads app for the parCfg machine.
func buildTestApp(t *testing.T, name string) *trace.App {
	t.Helper()
	a, err := workloads.BuildApp(name, workloads.Tiny(), parCfg().NumSM, 0)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAppSingleLaunchBitIdentical is the refactor-safety oracle: every
// benchmark run as a trivial one-launch App must produce a Result
// bit-identical to the kernel Run path, for every mechanism, skip setting,
// Parallelism and SlackWindow — the launch layer changed the engine's
// structure, not its semantics. The per-launch record must agree with the
// aggregate.
func TestAppSingleLaunchBitIdentical(t *testing.T) {
	for _, name := range workloads.Names() {
		k, err := workloads.Build(name, workloads.Tiny())
		if err != nil {
			t.Fatal(err)
		}
		a := trace.SingleLaunch(k)
		for mech, pf := range parMechs() {
			for _, skip := range []bool{false, true} {
				for _, cell := range appCells {
					opt := Options{
						Config: parCfg(), NewPrefetcher: pf, DisableSkip: !skip,
						Parallelism: cell.p, SlackWindow: cell.slack, ForceParallelism: true,
					}
					want, err := Run(k, opt)
					if err != nil {
						t.Fatalf("%s/%s kernel: %v", name, mech, err)
					}
					got, err := RunApp(a, opt)
					if err != nil {
						t.Fatalf("%s/%s app: %v", name, mech, err)
					}
					if !reflect.DeepEqual(got.Result, *want) {
						t.Errorf("%s/%s skip=%v P=%d slack=%d: one-launch app diverges from kernel run\n got:  %+v\n want: %+v",
							name, mech, skip, cell.p, cell.slack, got.Stats, want.Stats)
					}
					if len(got.Launches) != 1 {
						t.Fatalf("%s/%s: %d launch records, want 1", name, mech, len(got.Launches))
					}
					l := got.Launches[0]
					if l.StartCycle != 0 || l.RetireCycle <= 0 || l.RetireCycle > got.Stats.Cycles {
						t.Errorf("%s/%s: launch span [%d, %d] outside run of %d cycles",
							name, mech, l.StartCycle, l.RetireCycle, got.Stats.Cycles)
					}
					if l.Stats.Insts != want.Stats.Insts || l.Stats.Loads != want.Stats.Loads {
						t.Errorf("%s/%s: launch record insts/loads %d/%d, want %d/%d",
							name, mech, l.Stats.Insts, l.Stats.Loads, want.Stats.Insts, want.Stats.Loads)
					}
				}
			}
		}
	}
}

// TestAppScenariosDeterministic: the multi-kernel and two-tenant scenarios
// produce bit-identical AppResults — per-launch records and tenant rollups
// included — at every skip, Parallelism and SlackWindow setting, under both
// chain-persistence policies. Also pins the attribution invariant: execution
// windows partition the run, so per-launch insts/loads sum to the totals.
func TestAppScenariosDeterministic(t *testing.T) {
	pf := func(int) prefetch.Prefetcher { return core.NewSnake() }
	for _, app := range workloads.AppNames() {
		a := buildTestApp(t, app)
		for _, chain := range []bool{false, true} {
			ref, err := RunApp(a, Options{
				Config: parCfg(), NewPrefetcher: pf, DisableSkip: true,
				Parallelism: 1, SlackWindow: 1, ChainPersistence: chain,
			})
			if err != nil {
				t.Fatalf("%s chain=%v ref: %v", app, chain, err)
			}
			var insts, loads int64
			for _, l := range ref.Launches {
				insts += l.Stats.Insts
				loads += l.Stats.Loads
			}
			if insts != ref.Stats.Insts || loads != ref.Stats.Loads {
				t.Errorf("%s chain=%v: launch insts/loads sum %d/%d, total %d/%d",
					app, chain, insts, loads, ref.Stats.Insts, ref.Stats.Loads)
			}
			for i, l := range ref.Launches {
				if l.RetireCycle <= l.StartCycle {
					t.Errorf("%s chain=%v launch %d: empty span [%d, %d]",
						app, chain, i, l.StartCycle, l.RetireCycle)
				}
			}
			for _, skip := range []bool{false, true} {
				for _, cell := range appCells {
					if !skip && cell.p == 1 && cell.slack == 1 {
						continue // the reference itself
					}
					got, err := RunApp(a, Options{
						Config: parCfg(), NewPrefetcher: pf, DisableSkip: !skip,
						Parallelism: cell.p, SlackWindow: cell.slack,
						ForceParallelism: true, ChainPersistence: chain,
					})
					if err != nil {
						t.Fatalf("%s chain=%v P=%d slack=%d: %v", app, chain, cell.p, cell.slack, err)
					}
					// Result.Slack echoes the requested window, which differs
					// across cells by design; the oracle is the output.
					got.Slack = ref.Slack
					if !reflect.DeepEqual(got, ref) {
						t.Errorf("%s chain=%v skip=%v P=%d slack=%d diverges from serial\n got:  %+v\n want: %+v",
							app, chain, skip, cell.p, cell.slack, got.Launches, ref.Launches)
					}
				}
			}
		}
	}
}

// TestAppTenantRollups checks the two-tenant scenario's per-tenant split:
// both tenants appear, each rollup matches its launches, and the tenants
// genuinely overlapped in time (co-residency, not serialization).
func TestAppTenantRollups(t *testing.T) {
	a := buildTestApp(t, "cotenant")
	res, err := RunApp(a, Options{Config: parCfg()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 2 || res.Tenants[0].ID != 0 || res.Tenants[1].ID != 1 {
		t.Fatalf("tenants = %+v, want IDs 0 and 1", res.Tenants)
	}
	for i, l := range res.Launches {
		tn := res.Tenants[l.Tenant]
		if tn.Launches != 1 || tn.Stats.Insts != l.Stats.Insts {
			t.Errorf("tenant %d rollup %+v does not match launch %d (%d insts)",
				l.Tenant, tn, i, l.Stats.Insts)
		}
	}
	l0, l1 := res.Launches[0], res.Launches[1]
	if l0.StartCycle != 0 || l1.StartCycle != 0 {
		t.Errorf("co-tenant launches start at %d and %d, want both 0", l0.StartCycle, l1.StartCycle)
	}
	if l0.RetireCycle == l1.RetireCycle {
		t.Log("tenants retired the same cycle (legal, just unusual)")
	}
}

// TestAppLaunchOrderTieBreak (launch-scheduler determinism): when two
// launches mature at the same cycle — here, two successors of one parent,
// both wanting the full machine — the scheduler dispatches them in App
// order, mirroring the (cycle, smID, seq) store-order discipline. Swapping
// the two launches in the App must swap the execution order, proving the
// position (not kernel content or arrival happenstance) decides.
func TestAppLaunchOrderTieBreak(t *testing.T) {
	lps, err := workloads.Build("lps", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	hot, err := workloads.Build("hotspot", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(first, second *trace.Kernel) *trace.App {
		return &trace.App{Name: "tie", Launches: []trace.KernelLaunch{
			{Kernel: lps},
			{Kernel: first, DependsOn: []int{0}},
			{Kernel: second, DependsOn: []int{0}},
		}}
	}
	cfg := parCfg()
	// Successors wake a turnaround delay after the parent's retire cycle
	// (launch.go retireScan): min(bound, TurnaroundCap).
	turn := int64(cfg.SlackBound())
	if turn > TurnaroundCap {
		turn = TurnaroundCap
	}
	for _, cell := range appCells {
		res, err := RunApp(mk(hot, lps), Options{
			Config: cfg, Parallelism: cell.p, SlackWindow: cell.slack, ForceParallelism: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		l := res.Launches
		if l[1].StartCycle != l[0].RetireCycle+turn {
			t.Errorf("P=%d slack=%d: first successor started at %d, want parent retire %d + turnaround %d",
				cell.p, cell.slack, l[1].StartCycle, l[0].RetireCycle, turn)
		}
		if l[2].StartCycle <= l[1].StartCycle {
			t.Errorf("P=%d slack=%d: launch 2 started at %d, not after launch 1 (%d) — App order violated",
				cell.p, cell.slack, l[2].StartCycle, l[1].StartCycle)
		}
		if l[2].StartCycle < l[1].RetireCycle {
			t.Errorf("P=%d slack=%d: launch 2 started at %d while launch 1 held the machine until %d",
				cell.p, cell.slack, l[2].StartCycle, l[1].RetireCycle)
		}
		// Swapped App: the same two kernels in the opposite positions must
		// execute in the opposite order (index 1 always first).
		swapped, err := RunApp(mk(lps, hot), Options{
			Config: cfg, Parallelism: cell.p, SlackWindow: cell.slack, ForceParallelism: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if s := swapped.Launches; s[1].Kernel != "lps" || s[1].StartCycle >= s[2].StartCycle {
			t.Errorf("P=%d slack=%d: swapped app ran %q first (start %d vs %d), App order must decide",
				cell.p, cell.slack, s[2].Kernel, s[1].StartCycle, s[2].StartCycle)
		}
	}
}

// TestAppChainPersistence pins the warm-up effect the launch layer exists to
// expose: relaunching a kernel with ChainPersistence keeps Snake's chain
// tables trained across the boundary, so later launches see coverage
// immediately; with flushing, every launch pays the training cost from
// scratch. The first launch must be bit-identical either way (the policy
// only touches scheduler activations), and the relaunches must prefetch
// strictly more under persistence.
func TestAppChainPersistence(t *testing.T) {
	a := buildTestApp(t, "warmup")
	run := func(chain bool) *AppResult {
		res, err := RunApp(a, Options{
			Config:           parCfg(),
			NewPrefetcher:    func(int) prefetch.Prefetcher { return core.NewSnake() },
			ChainPersistence: chain,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold, warm := run(false), run(true)
	if !reflect.DeepEqual(cold.Launches[0], warm.Launches[0]) {
		t.Errorf("first launch differs across chain policies:\n cold: %+v\n warm: %+v",
			cold.Launches[0], warm.Launches[0])
	}
	var coldLater, warmLater int64
	for i := 1; i < len(cold.Launches); i++ {
		coldLater += cold.Launches[i].Stats.Pf.Issued
		warmLater += warm.Launches[i].Stats.Pf.Issued
	}
	t.Logf("relaunch prefetches issued: flushed=%d persistent=%d", coldLater, warmLater)
	t.Logf("relaunch covered loads: flushed=%d persistent=%d",
		cold.Launches[1].Stats.Pf.Covered+cold.Launches[2].Stats.Pf.Covered,
		warm.Launches[1].Stats.Pf.Covered+warm.Launches[2].Stats.Pf.Covered)
	if warmLater <= coldLater {
		t.Errorf("persistent chains issued %d prefetches across relaunches, flushed %d — warm-up effect missing",
			warmLater, coldLater)
	}
}

// TestPooledAppEquivalenceMatrix extends the pooled matrix across the launch
// layer: one Engine cycled through (single-kernel → multi-kernel →
// two-tenant → single-kernel) must stay bit-identical to fresh engines at
// every cell — the machine recycles, the launch state rebuilds.
func TestPooledAppEquivalenceMatrix(t *testing.T) {
	k, err := workloads.Build("lps", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	pipeline := buildTestApp(t, "pipeline")
	cotenant := buildTestApp(t, "cotenant")
	for mech, pf := range parMechs() {
		en := NewEngine()
		for _, cell := range appCells {
			opt := Options{
				Config: parCfg(), NewPrefetcher: pf,
				Parallelism: cell.p, SlackWindow: cell.slack, ForceParallelism: true,
				ChainPersistence: true,
			}
			check := func(step string, got, want any) {
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s P=%d slack=%d: pooled engine diverges from fresh at %s",
						mech, step, cell.p, cell.slack, step)
				}
			}
			want, err := Run(k, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := en.RunTagged(k, opt, mech)
			if err != nil {
				t.Fatal(err)
			}
			check("single-kernel", got, want)
			wantPipe, err := RunApp(pipeline, opt)
			if err != nil {
				t.Fatal(err)
			}
			gotPipe, err := en.RunAppTagged(pipeline, opt, mech)
			if err != nil {
				t.Fatal(err)
			}
			check("multi-kernel", gotPipe, wantPipe)
			wantCo, err := RunApp(cotenant, opt)
			if err != nil {
				t.Fatal(err)
			}
			gotCo, err := en.RunAppTagged(cotenant, opt, mech)
			if err != nil {
				t.Fatal(err)
			}
			check("two-tenant", gotCo, wantCo)
			got, err = en.RunTagged(k, opt, mech)
			if err != nil {
				t.Fatal(err)
			}
			check("single-kernel-again", got, want)
		}
	}
}

// TestRunAppValidation: structural rejections surface before any cycle runs.
func TestRunAppValidation(t *testing.T) {
	k, err := workloads.Build("lps", workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	cfg := parCfg()
	bad := &trace.App{Name: "bad", Launches: []trace.KernelLaunch{
		{Kernel: k, SMMask: 1 << uint(cfg.NumSM)},
	}}
	if _, err := RunApp(bad, Options{Config: cfg}); err == nil {
		t.Error("mask beyond NumSM accepted")
	}
	if _, err := RunApp(&trace.App{Name: "empty"}, Options{Config: cfg}); err == nil {
		t.Error("empty app accepted")
	}
	loop := &trace.App{Name: "loop", Launches: []trace.KernelLaunch{
		{Kernel: k, DependsOn: []int{0}},
	}}
	if _, err := RunApp(loop, Options{Config: cfg}); err == nil {
		t.Error("self-dependency accepted")
	}
}
