package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"snake/internal/workloads"
)

func TestSkipFastForwards(t *testing.T) {
	k := workloads.StreamMicro(workloads.Scale{CTAs: 4, WarpsPerCTA: 2, Iters: 16}, 4096)
	opt := Options{Config: tinyCfg()}.withDefaults()
	e := newEngine(k, opt)
	if err := e.run(); err != nil {
		t.Fatal(err)
	}
	if e.skipped == 0 {
		t.Fatal("memory-bound kernel skipped no cycles")
	}
	// Most of a memory-bound kernel's cycles are DRAM waits; the fast-forward
	// must elide a substantial fraction of them, not just the odd gap.
	if e.skipped*4 < e.cycle {
		t.Errorf("skipped %d of %d cycles; fast-forward barely engaged", e.skipped, e.cycle)
	}
	// Same kernel with skipping disabled: identical final cycle count and a
	// zero skip counter.
	opt.DisableSkip = true
	d := newEngine(k, opt)
	if err := d.run(); err != nil {
		t.Fatal(err)
	}
	if d.skipped != 0 {
		t.Errorf("DisableSkip run recorded %d skipped cycles", d.skipped)
	}
	if d.cycle != e.cycle {
		t.Errorf("skip run finished at cycle %d, per-cycle run at %d", e.cycle, d.cycle)
	}
}

func TestMissInjectPerSM(t *testing.T) {
	k := workloads.StreamMicro(workloads.Tiny(), 256)
	opt := Options{Config: tinyCfg()}.withDefaults()
	e := newEngine(k, opt)
	e.net.tick(1)
	// Queue one more demand miss than the per-cycle injection budget on SM 0
	// (distinct lines, so no MSHR merging).
	s := e.shards[0].sm
	for i := 0; i < missInjectPerSM+1; i++ {
		s.l1.Access(i, 0x1000_0000+uint64(i)*8192, 1)
	}
	if got := s.l1.DemandQueueLen(); got != missInjectPerSM+1 {
		t.Fatalf("staged %d demand misses, want %d", got, missInjectPerSM+1)
	}
	// Misses staged at cycle 1 mature at 1+horizon; a drain before that pulls
	// nothing no matter how idle the network is.
	e.drainMissQueues(e.horizon)
	if e.inflight != 0 {
		t.Errorf("injected %d fill requests before the slack horizon matured", e.inflight)
	}
	c := 1 + e.horizon
	e.cycle = c
	e.net.tick(c)
	e.drainMissQueues(c)
	if e.inflight != missInjectPerSM {
		t.Errorf("injected %d fill requests in one cycle, want exactly missInjectPerSM=%d",
			e.inflight, missInjectPerSM)
	}
	if got := s.l1.DemandQueueLen(); got != 1 {
		t.Errorf("%d misses left queued after one drain, want 1", got)
	}
	// The next cycle's drain picks up the leftover.
	e.cycle = c + 1
	e.net.tick(c + 1)
	e.drainMissQueues(c + 1)
	if e.inflight != missInjectPerSM+1 || s.l1.DemandQueueLen() != 0 {
		t.Errorf("after second drain: inflight=%d queued=%d, want %d and 0",
			e.inflight, s.l1.DemandQueueLen(), missInjectPerSM+1)
	}
}

func TestDrainStoresCompactsInPlace(t *testing.T) {
	k := workloads.StreamMicro(workloads.Tiny(), 256)
	opt := Options{Config: tinyCfg()}.withDefaults()
	e := newEngine(k, opt)

	const depth = 64
	// Stage stores through a shard egress and merge at once, as the cycle
	// barrier does.
	fill := func(c int64) {
		out := &e.shards[0].out
		for n := depth - len(e.stores); n > 0; n-- {
			out.addStore(uint64(len(out.stores))*128, c)
		}
		e.stores = append(e.stores, out.stores...)
		out.stores = out.stores[:0]
	}
	fill(0)
	capInit := cap(e.stores)
	drained := 0
	for c := int64(1); c <= 200; c++ {
		e.cycle = c
		e.net.tick(c)
		before := len(e.stores)
		e.drainStores(c + e.horizon) // matured: only bandwidth gates the drain
		drained += before - len(e.stores)
		fill(c)
	}
	if drained == 0 {
		t.Fatal("no stores drained in 200 cycles")
	}
	// Compaction must reuse the backing array: the queue cycles through its
	// capacity many times, yet never grows past the initial allocation.
	if cap(e.stores) != capInit {
		t.Errorf("store queue reallocated: cap %d -> %d", capInit, cap(e.stores))
	}
}

// countdownCtx returns nil from Err for the first ok calls, then a canceled
// error forever after. It makes the engine's poll sequence observable.
type countdownCtx struct {
	context.Context
	calls int
	ok    int
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls > c.ok {
		return context.Canceled
	}
	return nil
}

func TestCancellationAcrossSkips(t *testing.T) {
	// A kernel long enough that the engine reaches the first poll boundary.
	k := workloads.StreamMicro(workloads.Scale{CTAs: 8, WarpsPerCTA: 4, Iters: 32}, 4096)
	base, err := Run(k, Options{Config: tinyCfg()})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Cycles <= ctxCheckInterval {
		t.Fatalf("kernel finishes in %d cycles, need > %d for the poll to fire",
			base.Stats.Cycles, ctxCheckInterval)
	}
	// Cancellation is visible from the first in-loop poll on. Whether the
	// loop walks cycle by cycle (masked check) or jumps over the boundary in
	// one skip (boundary check inside the jump), that first poll must land on
	// the same cycle: the first ctxCheckInterval boundary.
	want := fmt.Sprintf("aborted at cycle %d", int64(ctxCheckInterval))
	for _, disable := range []bool{false, true} {
		ctx := &countdownCtx{Context: context.Background(), ok: 0}
		opt := Options{Config: tinyCfg(), Context: ctx, DisableSkip: disable}.withDefaults()
		e := newEngine(k, opt)
		err := e.run()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("DisableSkip=%v: err = %v, want context.Canceled", disable, err)
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("DisableSkip=%v: err = %q, want abort at the first poll boundary (%q)",
				disable, err, want)
		}
		// The first failing poll aborts immediately: no further Err calls.
		if ctx.calls != 1 {
			t.Errorf("DisableSkip=%v: %d Err calls, want 1 (abort on the first poll)", disable, ctx.calls)
		}
		if !disable && e.skipped == 0 {
			t.Error("skip-enabled cancellation run never fast-forwarded")
		}
	}
}

func TestSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	// The cycle loop must not allocate in steady state: lengthening a run 8x
	// must not raise the per-run allocation count, because everything beyond
	// engine construction reuses pooled or pre-sized storage. Measured on the
	// baseline so the count isolates the engine; Snake's chain tables grow
	// with the number of distinct lines touched (tracked separately by the
	// throughput benchmark's allocs/op).
	measure := func(iters int) float64 {
		k := workloads.StreamMicro(workloads.Scale{CTAs: 4, WarpsPerCTA: 2, Iters: iters}, 256)
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(k, Options{Config: tinyCfg()}); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(4)
	long := measure(32)
	// Tiny slack for run-to-run GC noise; per-cycle allocation would show up
	// as thousands of extra allocations on the 8x run.
	if long > short+8 {
		t.Errorf("8x longer run allocates %.0f vs %.0f per run; cycle loop is allocating in steady state",
			long, short)
	}
}
