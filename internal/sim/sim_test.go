package sim

import (
	"testing"

	"snake/internal/cache"
	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/stats"
	"snake/internal/trace"
	"snake/internal/workloads"
)

func tinyCfg() config.GPU { return config.Scaled(2, 8) }

func runTiny(t *testing.T, k *trace.Kernel, pf func(int) prefetch.Prefetcher) *Result {
	t.Helper()
	res, err := Run(k, Options{Config: tinyCfg(), NewPrefetcher: pf})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestRunCompletesAndCountsInstructions(t *testing.T) {
	k := workloads.StreamMicro(workloads.Tiny(), 256)
	res := runTiny(t, k, nil)
	if res.Stats.Insts != int64(k.TotalInsts()) {
		t.Errorf("retired %d instructions, kernel has %d", res.Stats.Insts, k.TotalInsts())
	}
	if res.Stats.Loads != int64(k.TotalLoads()) {
		t.Errorf("retired %d loads, kernel has %d", res.Stats.Loads, k.TotalLoads())
	}
	if res.Stats.Cycles <= 0 {
		t.Error("no cycles simulated")
	}
}

func TestAllWorkloadsCompleteUnderAllMechanisms(t *testing.T) {
	mechs := map[string]func(int) prefetch.Prefetcher{
		"baseline": nil,
		"mta":      func(int) prefetch.Prefetcher { return prefetch.NewMTA() },
		"snake":    func(int) prefetch.Prefetcher { return core.NewSnake() },
		"ideal":    func(int) prefetch.Prefetcher { return prefetch.NewIdeal() },
	}
	for _, name := range workloads.Names() {
		k, err := workloads.Build(name, workloads.Tiny())
		if err != nil {
			t.Fatal(err)
		}
		want := int64(k.TotalInsts())
		for mech, pf := range mechs {
			res := runTiny(t, k, pf)
			if res.Stats.Insts != want {
				t.Errorf("%s/%s: retired %d != %d", name, mech, res.Stats.Insts, want)
			}
		}
	}
}

func TestPrefetchingImprovesStreamKernel(t *testing.T) {
	k := workloads.StreamMicro(workloads.Scale{CTAs: 8, WarpsPerCTA: 4, Iters: 16}, 512)
	base := runTiny(t, k, nil)
	sn := runTiny(t, k, func(int) prefetch.Prefetcher { return core.NewSnake() })
	if sn.Stats.IPC() <= base.Stats.IPC() {
		t.Errorf("Snake IPC %.3f did not beat baseline %.3f on a stream kernel",
			sn.Stats.IPC(), base.Stats.IPC())
	}
	if sn.Stats.Coverage() < 0.5 {
		t.Errorf("Snake coverage %.2f on a perfectly regular stream", sn.Stats.Coverage())
	}
}

func TestIdealDominatesOnRegularKernel(t *testing.T) {
	k := workloads.StreamMicro(workloads.Scale{CTAs: 8, WarpsPerCTA: 4, Iters: 16}, 512)
	base := runTiny(t, k, nil)
	ideal := runTiny(t, k, func(int) prefetch.Prefetcher { return prefetch.NewIdeal() })
	if ideal.Stats.IPC() <= base.Stats.IPC() {
		t.Errorf("Ideal IPC %.3f <= baseline %.3f", ideal.Stats.IPC(), base.Stats.IPC())
	}
	if ideal.Stats.Accuracy() < 0.8 {
		t.Errorf("Ideal accuracy %.2f; magic prefetches must be timely", ideal.Stats.Accuracy())
	}
}

func TestNoPrefetcherGainOnRandomKernel(t *testing.T) {
	k := workloads.RandomMicro(workloads.Tiny())
	sn := runTiny(t, k, func(int) prefetch.Prefetcher { return core.NewSnake() })
	if sn.Stats.Coverage() > 0.15 {
		t.Errorf("Snake claims %.2f coverage on random addresses", sn.Stats.Coverage())
	}
}

func TestValidationErrors(t *testing.T) {
	k := workloads.StreamMicro(workloads.Tiny(), 256)
	bad := tinyCfg()
	bad.NumSM = 0
	if _, err := Run(k, Options{Config: bad}); err == nil {
		t.Error("invalid config accepted")
	}
	empty := &trace.Kernel{Name: "empty"}
	if _, err := Run(empty, Options{Config: tinyCfg()}); err == nil {
		t.Error("invalid kernel accepted")
	}
	// CTA wider than an SM's warp slots must be rejected.
	wide, _ := workloads.Build("lps", workloads.Scale{CTAs: 1, WarpsPerCTA: 64, Iters: 2})
	cfg := config.Scaled(1, 8)
	if _, err := Run(wide, Options{Config: cfg}); err == nil {
		t.Error("CTA wider than SM accepted")
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	k := workloads.StreamMicro(workloads.DefaultScale(), 512)
	_, err := Run(k, Options{Config: tinyCfg(), MaxCycles: 100})
	if err == nil {
		t.Error("expected MaxCycles error")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Two warps: one fast, one slow; both must pass the barrier together.
	mk := func(lat int) trace.WarpProgram {
		b := trace.NewBuilder()
		b.Compute(0, lat)
		b.Barrier(8)
		b.Compute(16, 1)
		return b.Exit(24)
	}
	w0, w1 := mk(1), mk(200)
	w1.IDInCTA = 1
	k := &trace.Kernel{Name: "barrier-test", CTAs: []trace.CTA{{Warps: []trace.WarpProgram{w0, w1}}}}
	res := runTiny(t, k, nil)
	// The fast warp waits for the slow one: runtime >= 200 cycles.
	if res.Stats.Cycles < 200 {
		t.Errorf("cycles = %d; barrier did not hold the fast warp", res.Stats.Cycles)
	}
}

func TestPerSMStatsSumToTotal(t *testing.T) {
	k := workloads.StreamMicro(workloads.Tiny(), 256)
	res := runTiny(t, k, nil)
	var insts int64
	for i := range res.PerSM {
		insts += res.PerSM[i].Insts
	}
	if insts != res.Stats.Insts {
		t.Errorf("per-SM instruction sum %d != total %d", insts, res.Stats.Insts)
	}
}

func TestSchedulerPolicyAffectsExecution(t *testing.T) {
	k := workloads.StreamMicro(workloads.Scale{CTAs: 4, WarpsPerCTA: 4, Iters: 8}, 512)
	cfgGTO := tinyCfg()
	cfgLRR := tinyCfg()
	cfgLRR.Scheduler = config.SchedLRR
	a, err := Run(k, Options{Config: cfgGTO})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(k, Options{Config: cfgLRR})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Insts != b.Stats.Insts {
		t.Errorf("different schedulers retired different instruction counts: %d vs %d",
			a.Stats.Insts, b.Stats.Insts)
	}
}

func TestStallClassificationAccumulates(t *testing.T) {
	k, _ := workloads.Build("lib", workloads.Tiny())
	res := runTiny(t, k, nil)
	if res.Stats.StallMemory == 0 {
		t.Error("memory-bound kernel recorded no memory stalls")
	}
}

func TestDeterminism(t *testing.T) {
	k, _ := workloads.Build("hotspot", workloads.Tiny())
	a := runTiny(t, k, func(int) prefetch.Prefetcher { return core.NewSnake() })
	b := runTiny(t, k, func(int) prefetch.Prefetcher { return core.NewSnake() })
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Insts != b.Stats.Insts ||
		a.Stats.Pf.Issued != b.Stats.Pf.Issued {
		t.Errorf("simulation not deterministic: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestSharedMemoryCarveOutShrinksCache(t *testing.T) {
	k, _ := workloads.Build("lps", workloads.Tiny())
	big := tinyCfg()
	big.SharedMemPer = 0
	small := tinyCfg()
	small.SharedMemPer = 96 * 1024
	a, err := Run(k, Options{Config: big})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(k, Options{Config: small})
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats.L1HitRate() > a.Stats.L1HitRate()+1e-9 {
		t.Errorf("smaller data cache produced a higher hit rate: %.3f vs %.3f",
			b.Stats.L1HitRate(), a.Stats.L1HitRate())
	}
}

func TestOutcomeMapping(t *testing.T) {
	cases := map[stats.L1Outcome]bool{} // placeholder to use stats import
	_ = cases
	for _, tc := range []struct {
		in   int
		want prefetch.Outcome
	}{
		{0, prefetch.OutcomeIssued},
		{1, prefetch.OutcomeDuplicate},
		{2, prefetch.OutcomeNoRoom},
		{3, prefetch.OutcomeNoSpace},
	} {
		if got := outcomeOf(cacheOutcome(tc.in)); got != tc.want {
			t.Errorf("outcomeOf(%d) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// cacheOutcome converts an int to the cache package's outcome type for the
// mapping test.
func cacheOutcome(i int) cache.PrefetchOutcome { return cache.PrefetchOutcome(i) }
