package sim

// Memory coalescing: a warp-level load touches WarpSize thread addresses
// base + t*stride; the coalescer merges them into the minimal set of
// distinct cache lines. A unit-stride (or broadcast) access coalesces into
// one line; divergent accesses split into several transactions that are
// issued and tracked independently — "handling divergent memory access
// patterns" is one of the GPU-specific challenges §1 lists for chain
// prefetching.
//
// The trace carries the per-thread stride (trace.Inst.Stride); workloads
// use 0 (broadcast) or 4 bytes (perfectly coalesced) for regular kernels
// and larger strides for divergent ones.

// coalesce appends the distinct line base addresses of a warp access to
// dst and returns it. Lines are emitted in ascending-thread order without
// duplicates (threads hitting the same line merge).
func coalesce(dst []uint64, base uint64, stride int32, warpSize, lineSize int) []uint64 {
	mask := ^(uint64(lineSize) - 1)
	if stride == 0 {
		return append(dst, base&mask)
	}
	last := uint64(0)
	have := false
	for t := 0; t < warpSize; t++ {
		addr := uint64(int64(base) + int64(stride)*int64(t))
		line := addr & mask
		if have && line == last {
			continue
		}
		// A divergent pattern may revisit an earlier line (negative or
		// wrapping strides); a linear scan keeps the set exact.
		dup := false
		for _, l := range dst {
			if l == line {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, line)
		}
		last, have = line, true
	}
	return dst
}

// transactionsFor returns how many line transactions the access generates.
func transactionsFor(base uint64, stride int32, warpSize, lineSize int) int {
	return len(coalesce(nil, base, stride, warpSize, lineSize))
}
