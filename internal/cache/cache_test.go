package cache

import (
	"testing"
	"testing/quick"

	"snake/internal/config"
)

func geom(sizeKB, ways, line int) config.CacheGeom {
	return config.CacheGeom{SizeBytes: sizeKB * 1024, Ways: ways, LineSize: line, Latency: 1}
}

func TestLineAddr(t *testing.T) {
	c := New(geom(4, 4, 128))
	for _, tc := range []struct{ in, want uint64 }{
		{0, 0}, {1, 0}, {127, 0}, {128, 128}, {1000, 896},
	} {
		if got := c.LineAddr(tc.in); got != tc.want {
			t.Errorf("LineAddr(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestReserveFillProbe(t *testing.T) {
	c := New(geom(4, 4, 128))
	addr := uint64(0x1000)
	if p := c.Probe(addr); p.Present || p.Reserved {
		t.Fatal("empty cache claims presence")
	}
	if _, ok := c.Reserve(addr, ClassData, 1, nil); !ok {
		t.Fatal("Reserve failed on empty cache")
	}
	if p := c.Probe(addr); !p.Reserved || p.Present {
		t.Fatalf("after Reserve: %+v", p)
	}
	if !c.Fill(addr, 2) {
		t.Fatal("Fill failed")
	}
	p := c.Probe(addr)
	if !p.Present || p.Reserved || p.Class != ClassData {
		t.Fatalf("after Fill: %+v", p)
	}
}

func TestFillWithoutReservation(t *testing.T) {
	c := New(geom(4, 4, 128))
	if c.Fill(0x1000, 1) {
		t.Error("Fill without reservation must fail")
	}
}

func TestReserveDuplicateFails(t *testing.T) {
	c := New(geom(4, 4, 128))
	c.Reserve(0x1000, ClassData, 1, nil)
	if _, ok := c.Reserve(0x1000, ClassData, 2, nil); ok {
		t.Error("duplicate Reserve must fail")
	}
}

// fillSet fills every way of the set containing addr with distinct lines of
// the given class and returns the line addresses used.
func fillSet(t *testing.T, c *Cache, addr uint64, class Class, cycle int64) []uint64 {
	t.Helper()
	g := c.Geom()
	setSpan := uint64(g.Sets() * g.LineSize)
	var lines []uint64
	for w := 0; w < g.Ways; w++ {
		la := addr + uint64(w)*setSpan // same set, different tags
		if _, ok := c.Reserve(la, class, cycle, nil); !ok {
			t.Fatalf("Reserve way %d failed", w)
		}
		if !c.Fill(la, cycle) {
			t.Fatalf("Fill way %d failed", w)
		}
		cycle++
		lines = append(lines, la)
	}
	return lines
}

func TestLRUEviction(t *testing.T) {
	c := New(geom(2, 4, 128)) // 16 lines, 4 ways, 4 sets
	lines := fillSet(t, c, 0x10000, ClassData, 10)
	// Touch all but lines[1]; lines[1] becomes LRU.
	for i, la := range lines {
		if i != 1 {
			c.Touch(la, int64(100+i))
		}
	}
	ev, ok := c.Reserve(0x90000, ClassData, 200, nil)
	if !ok {
		t.Fatal("Reserve with full set failed")
	}
	if !ev.Valid || ev.LineAddr != lines[1] {
		t.Errorf("evicted %#x, want LRU line %#x", ev.LineAddr, lines[1])
	}
}

func TestVictimFilterRespected(t *testing.T) {
	c := New(geom(2, 4, 128))
	lines := fillSet(t, c, 0x10000, ClassData, 10)
	// Mark lines[0] as prefetch by refilling... instead reserve new set:
	// use filter that rejects everything -> must fail.
	if _, ok := c.Reserve(0x90000, ClassData, 50, func(Class, bool) bool { return false }); ok {
		t.Error("Reserve must fail when the filter rejects every victim")
	}
	// Filter allowing only lines already touched at cycle>=12 etc. —
	// here: allow only data class; all are data, so it succeeds.
	if _, ok := c.Reserve(0x90000, ClassData, 60, func(c Class, _ bool) bool { return c == ClassData }); !ok {
		t.Error("Reserve must succeed when victims pass the filter")
	}
	_ = lines
}

func TestReservedLinesAreNotVictims(t *testing.T) {
	c := New(geom(2, 4, 128))
	g := c.Geom()
	setSpan := uint64(g.Sets() * g.LineSize)
	base := uint64(0x10000)
	// Reserve all 4 ways without filling: all reserved.
	for w := 0; w < 4; w++ {
		if _, ok := c.Reserve(base+uint64(w)*setSpan, ClassData, 1, nil); !ok {
			t.Fatalf("setup reserve %d failed", w)
		}
	}
	if _, ok := c.Reserve(base+10*setSpan, ClassData, 2, nil); ok {
		t.Error("Reserve must fail when every way has a fill in flight")
	}
}

func TestTouchTransfersPrefetchClass(t *testing.T) {
	c := New(geom(4, 4, 128))
	addr := uint64(0x2000)
	c.Reserve(addr, ClassPrefetch, 1, nil)
	c.Fill(addr, 2)
	if _, pf, _, _ := c.Occupancy(); pf != 1 {
		t.Fatalf("prefetch occupancy = %d, want 1", pf)
	}
	transferred, wasPrefetch, ok := c.Touch(addr, 3)
	if !ok || !transferred || !wasPrefetch {
		t.Fatalf("Touch = (%v,%v,%v), want transfer of prefetch line", transferred, wasPrefetch, ok)
	}
	data, pf, _, _ := c.Occupancy()
	if data != 1 || pf != 0 {
		t.Errorf("after transfer: data=%d pf=%d", data, pf)
	}
	// Second touch: already data class.
	if transferred, _, _ := c.Touch(addr, 4); transferred {
		t.Error("second Touch must not transfer again")
	}
}

func TestOccupancyInvariant(t *testing.T) {
	c := New(geom(2, 4, 128))
	check := func(when string) {
		data, pf, res, free := c.Occupancy()
		if data+pf+res+free != c.Lines() {
			t.Fatalf("%s: occupancy %d+%d+%d+%d != %d", when, data, pf, res, free, c.Lines())
		}
	}
	check("empty")
	addrs := []uint64{0x0, 0x80, 0x100, 0x8000, 0x8080}
	for i, a := range addrs {
		c.Reserve(a, Class(i%2), int64(i), nil)
		check("after reserve")
		c.Fill(a, int64(i))
		check("after fill")
	}
	c.EvictLRUOfClass(ClassData, 2)
	check("after bulk evict")
	c.InvalidateAll()
	check("after invalidate")
	if _, _, _, free := c.Occupancy(); free != c.Lines() {
		t.Error("InvalidateAll must free everything")
	}
}

func TestEvictLRUOfClass(t *testing.T) {
	c := New(geom(2, 4, 128))
	// 8 data lines at ages 1..8 in two sets, 4 prefetch lines ages 9..12.
	g := c.Geom()
	setSpan := uint64(g.Sets() * g.LineSize)
	cycle := int64(1)
	for w := 0; w < 4; w++ {
		for s := 0; s < 2; s++ {
			la := uint64(0x10000) + uint64(s)*128 + uint64(w)*setSpan
			c.Reserve(la, ClassData, cycle, nil)
			c.Fill(la, cycle)
			cycle++
		}
	}
	evs := c.EvictLRUOfClass(ClassData, 3)
	if len(evs) != 3 {
		t.Fatalf("evicted %d lines, want 3", len(evs))
	}
	data, _, _, free := c.Occupancy()
	if data != 5 || free != c.Lines()-5 {
		t.Errorf("after bulk evict: data=%d free=%d", data, free)
	}
	// Requesting more than available evicts only what exists.
	if evs := c.EvictLRUOfClass(ClassPrefetch, 100); len(evs) != 0 {
		t.Errorf("evicted %d prefetch lines from a data-only cache", len(evs))
	}
}

func TestAddrRoundTrip(t *testing.T) {
	c := New(geom(8, 4, 128))
	f := func(raw uint64) bool {
		la := c.LineAddr(raw % (1 << 40))
		set, tag := c.index(la)
		return c.addrOf(set, tag) == la
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPowerOfTwoGeometryRequired(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two set count")
		}
	}()
	New(config.CacheGeom{SizeBytes: 3 * 128 * 4, Ways: 4, LineSize: 128})
}
