package cache

import (
	"snake/internal/config"
	"snake/internal/stats"
)

// L1Options configures the L1 controller's prefetch-storage organization.
type L1Options struct {
	// Decoupled enables Snake's flag-based split of the unified cache into a
	// prefetch space and an L1 data space (§3.2).
	Decoupled bool
	// Isolated stores prefetched data in a buffer distinct from the unified
	// memory (the paper's Isolated-Snake, §5.7). Mutually exclusive with
	// Decoupled.
	Isolated bool
	// IsolatedLines sizes the isolated buffer (default: half the unified
	// data space — a dedicated structure the decoupled organization only
	// approximates, hence Isolated-Snake's slightly higher hit rate, §5.7).
	IsolatedLines int

	MSHREntries   int
	MergeCap      int
	MissQueueSize int
	// PrefetchQueueSize is the depth of the separate low-priority prefetch
	// request queue (default 16). Prefetch requests never occupy demand
	// miss-queue slots, so aggressive prefetching cannot inflate demand
	// reservation fails directly; they still compete for MSHRs and
	// interconnect bandwidth.
	PrefetchQueueSize int
}

// PrefetchOutcome describes what happened to a prefetch insertion attempt.
type PrefetchOutcome uint8

// Prefetch insertion outcomes.
const (
	PrefetchIssued    PrefetchOutcome = iota // request enqueued toward L2
	PrefetchDuplicate                        // line already present or in flight
	PrefetchNoRoom                           // MSHR/queue exhausted or no victim
	// PrefetchNoSpace means the request was issued but the unified cache had
	// no free space left, so 25% of it was bulk-freed by LRU (§3.2) — the
	// signal for Snake's space throttle.
	PrefetchNoSpace
)

// L1 is the per-SM L1 data cache controller: unified storage (optionally
// decoupled into prefetch/data classes), MSHR file, and miss queue.
//
// Prefetch usefulness is tracked per line address independently of the
// storage organization, so coverage/accuracy are comparable across Snake,
// Snake-DT (no decoupling) and Isolated-Snake:
//
//   - a prefetch fill with no merged demand marks the line "pending";
//   - a demand hit on a pending line counts as a timely useful prefetch;
//   - a demand merging into an in-flight prefetch counts as late useful;
//   - evicting a pending line counts as an early eviction;
//   - pending lines left at the end of the run count as unused.
type L1 struct {
	cache *Cache
	iso   *Cache // non-nil only for Isolated mode
	// isoRetained keeps an isolated buffer alive across Reconfigure calls:
	// the behaviour gates on iso being nil, so a controller recycled into a
	// non-isolated organization parks the buffer here instead of freeing it.
	isoRetained *Cache
	mshr        *MSHR
	mq          *MissQueue // demand misses
	pfq         *MissQueue // prefetch requests (drained at lower priority)
	opt         L1Options
	st          *stats.Sim

	trained      bool
	confineUntil int64

	// pending marks prefetched lines that are resident but not yet demanded.
	pending map[uint64]bool
	// predicted records every line address the prefetcher ever generated,
	// for the paper's prediction-based coverage metric (predictions persist:
	// one prediction covers all later demands to that line).
	predicted map[uint64]bool

	// Running counters for the 80%-transferred eviction heuristic.
	pfFills       int64
	pfTransferred int64
}

// NewL1 builds an L1 controller over the given data geometry (the unified
// space minus any shared-memory carve-out).
func NewL1(geom config.CacheGeom, opt L1Options, st *stats.Sim) *L1 {
	if opt.PrefetchQueueSize <= 0 {
		opt.PrefetchQueueSize = 32
	}
	l := &L1{
		cache:     New(geom),
		mshr:      NewMSHR(opt.MSHREntries, opt.MergeCap),
		mq:        NewMissQueue(opt.MissQueueSize),
		pfq:       NewMissQueue(opt.PrefetchQueueSize),
		opt:       opt,
		st:        st,
		pending:   make(map[uint64]bool),
		predicted: make(map[uint64]bool),
	}
	if opt.Isolated {
		l.iso = buildIso(geom, opt.IsolatedLines)
		l.isoRetained = l.iso
	}
	return l
}

// buildIso sizes and builds the isolated prefetch buffer for the given data
// geometry (default: half the unified data space).
func buildIso(geom config.CacheGeom, isolatedLines int) *Cache {
	lines := isolatedLines
	if lines <= 0 {
		lines = geom.Lines() / 2
	}
	ways := 8
	if lines < ways {
		ways = lines
	}
	sets := lines / ways
	// Round the line count down to a power-of-two set count.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	return New(config.CacheGeom{
		SizeBytes: p * ways * geom.LineSize,
		Ways:      ways,
		LineSize:  geom.LineSize,
		Latency:   geom.Latency,
	})
}

// LineAddr truncates addr to its line base address.
func (l *L1) LineAddr(addr uint64) uint64 { return l.cache.LineAddr(addr) }

// LineSize returns the cache line size in bytes.
func (l *L1) LineSize() int { return l.cache.Geom().LineSize }

// SetTrained tells the controller the prefetcher finished training, lifting
// the 50% cap on the L1 data space (§3.2).
func (l *L1) SetTrained(trained bool) { l.trained = trained }

// Confine restricts the L1 data space to its designated half until the given
// cycle (applied while the prefetcher is throttled, §3.2).
func (l *L1) Confine(until int64) {
	if until > l.confineUntil {
		l.confineUntil = until
	}
}

// dataCapped reports whether demand fills are currently held to 50% of the
// unified space.
func (l *L1) dataCapped(cycle int64) bool {
	if !l.opt.Decoupled {
		return false
	}
	return !l.trained || cycle < l.confineUntil
}

// consumePending records a demand use of a pending prefetched line.
func (l *L1) consumePending(line uint64) bool {
	if !l.pending[line] {
		return false
	}
	delete(l.pending, line)
	l.st.Pf.UsefulTimely++
	l.st.Pf.Transferred++
	l.pfTransferred++
	return true
}

// Access performs a demand load access for the given warp. The returned
// outcome has already been recorded in the stats.
func (l *L1) Access(warp int, addr uint64, cycle int64) stats.L1Outcome {
	line := l.cache.LineAddr(addr)
	out := l.access(warp, line, cycle)
	l.st.AddL1(out)
	// Prediction-based coverage (§4): count once per accepted access.
	if out != stats.L1ReservationFail && l.predicted[line] {
		l.st.Pf.Covered++
		if out == stats.L1Hit || out == stats.L1HitPrefetch {
			l.st.Pf.CoveredTimely++
		}
	}
	return out
}

// Predict records that the prefetcher generated addr as a candidate, for
// coverage accounting, independently of whether a physical prefetch is
// issued (it may be deduplicated against resident data).
func (l *L1) Predict(addr uint64) {
	l.predicted[l.cache.LineAddr(addr)] = true
}

func (l *L1) access(warp int, line uint64, cycle int64) stats.L1Outcome {
	// Isolated prefetch buffer hit? (Hit probes and touches in one scan.)
	if l.iso != nil {
		if p := l.iso.Hit(line, cycle); p.Present {
			if l.consumePending(line) {
				return stats.L1HitPrefetch
			}
			return stats.L1Hit
		}
	}
	if p := l.cache.Hit(line, cycle); p.Present {
		// Hit already flipped prefetch-class lines to the data class.
		if l.consumePending(line) {
			return stats.L1HitPrefetch
		}
		return stats.L1Hit
	} else if p.Reserved {
		return l.mergeInflight(line, warp, cycle)
	}
	// In-flight to the isolated buffer?
	if l.iso != nil {
		if p := l.iso.Probe(line); p.Reserved {
			return l.mergeInflight(line, warp, cycle)
		}
	}
	// True miss: need miss-queue slot, MSHR entry, and a victim line.
	if l.mq.Full() {
		l.st.ResFailMissQueue++
		return stats.L1ReservationFail
	}
	if l.mshr.Free() == 0 {
		l.st.ResFailMSHR++
		return stats.L1ReservationFail
	}
	filter := l.demandVictimFilter(cycle)
	ev, ok := l.cache.Reserve(line, ClassData, cycle, filter)
	if !ok && filter != nil && !l.dataCapped(cycle) {
		// The set had no data-class victim; fall back to any LRU way rather
		// than failing (only the training/confinement cap is strict).
		ev, ok = l.cache.Reserve(line, ClassData, cycle, nil)
	}
	if !ok {
		l.st.ResFailVictim++
		return stats.L1ReservationFail
	}
	l.noteEviction(ev)
	if r := l.mshr.Allocate(line, warp, cycle); r != MSHRNew {
		// Cannot happen: freeness checked above and the line is not in flight.
		panic("cache: inconsistent MSHR state on demand miss")
	}
	l.mq.Push(MissRequest{LineAddr: line, Cycle: cycle})
	return stats.L1Miss
}

// mergeInflight merges a demand access into an in-flight fill.
func (l *L1) mergeInflight(line uint64, warp int, cycle int64) stats.L1Outcome {
	_, prefetchOnly := l.mshr.Lookup(line)
	switch l.mshr.Allocate(line, warp, cycle) {
	case MSHRMerged:
		if prefetchOnly {
			l.st.Pf.UsefulLate++
		}
		return stats.L1Reserved
	default:
		l.st.ResFailMSHR++
		return stats.L1ReservationFail
	}
}

// demandVictimFilter returns the victim filter applied to demand fills.
//
// With decoupling, demand fills never displace not-yet-used prefetched
// lines: that protection is what lets Snake prefetch far ahead (deep chains,
// future warps) without "early eviction by normal data from the L1 data
// cache" — the paper attributes a 50% accuracy loss to its absence (§5.1).
// While the prefetcher trains or the throttle confines the L1 (§3.2), the
// data side is additionally held to its designated half.
func (l *L1) demandVictimFilter(cycle int64) VictimFilter {
	if !l.opt.Decoupled {
		return nil
	}
	if l.dataCapped(cycle) {
		nData, _, _, free := l.cache.Occupancy()
		if free > 0 || nData < l.cache.Lines()/2 {
			return nil
		}
		return func(c Class, _ bool) bool { return c == ClassData }
	}
	return func(c Class, touched bool) bool { return c == ClassData || touched }
}

// PrefetchLine attempts to bring addr's cache line into the prefetch space.
func (l *L1) PrefetchLine(addr uint64, cycle int64) PrefetchOutcome {
	line := l.cache.LineAddr(addr)
	if p := l.cache.Probe(line); p.Present || p.Reserved {
		return PrefetchDuplicate
	}
	if l.iso != nil {
		if p := l.iso.Probe(line); p.Present || p.Reserved {
			return PrefetchDuplicate
		}
	}
	// Keep a quarter of the MSHR file in reserve for demand misses.
	if l.pfq.Full() || l.mshr.Free() <= l.opt.MSHREntries/4 {
		l.st.Pf.Dropped++
		return PrefetchNoRoom
	}
	target := l.cache
	class := ClassData
	if l.iso != nil {
		target = l.iso
		class = ClassPrefetch
	} else if l.opt.Decoupled {
		class = ClassPrefetch
	}
	// Decoupled insert policy (§3.2): the prefetch side expands into free
	// ways, then recycles its own stalest lines, and never displaces L1
	// data directly. When neither works the unified space is out of room
	// for prefetching: 25% of it is bulk-freed by LRU (L1 data victims when
	// >80% of prefetched lines were transferred — prefetching has been
	// accurate — older prefetched lines otherwise) and the caller sees
	// PrefetchNoSpace, the trigger for Snake's space throttle.
	outOfSpace := false
	var ev EvictInfo
	var ok bool
	if target == l.iso && l.iso != nil {
		// Isolated buffer: expand into free ways; when full, recycle the
		// stalest prefetched line and report space pressure so the throttle
		// can pace the prefetcher to the buffer's drain rate.
		ev, ok = l.iso.Reserve(line, class, cycle, neverEvict)
		if !ok {
			outOfSpace = true
			ev, ok = l.iso.Reserve(line, class, cycle, nil)
		}
	} else if target == l.cache && l.opt.Decoupled {
		ev, ok = l.cache.Reserve(line, class, cycle, neverEvict)
		if !ok {
			// No free way in the set: recycle the set's stalest prefetched
			// line rather than displacing L1 data.
			ev, ok = l.cache.Reserve(line, class, cycle, prefetchClassOnly)
		}
		if !ok {
			// The unified space is out of room for prefetching: §3.2's
			// no-free-space policy, reported as the space-throttle trigger.
			l.FreeQuarter()
			outOfSpace = true
			ev, ok = l.cache.Reserve(line, class, cycle, nil)
		}
	} else {
		ev, ok = target.Reserve(line, class, cycle, nil)
	}
	if !ok {
		l.st.Pf.Dropped++
		if outOfSpace {
			return PrefetchNoSpace
		}
		return PrefetchNoRoom
	}
	l.noteEviction(ev)
	if r := l.mshr.Allocate(line, PrefetchWarp, cycle); r != MSHRNew {
		panic("cache: inconsistent MSHR state on prefetch miss")
	}
	l.pfq.Push(MissRequest{LineAddr: line, Prefetch: true, Cycle: cycle})
	l.st.Pf.Issued++
	if outOfSpace {
		return PrefetchNoSpace
	}
	return PrefetchIssued
}

// MagicFill installs addr's line instantly as a pending prefetched line with
// zero latency and no MSHR/miss-queue/bandwidth cost — the Ideal prefetcher's
// "optimal characteristics". It returns false if the line is already present
// or in flight, or no victim could be found.
func (l *L1) MagicFill(addr uint64, cycle int64) bool {
	line := l.cache.LineAddr(addr)
	if p := l.cache.Probe(line); p.Present || p.Reserved {
		return false
	}
	target := l.cache
	class := ClassData
	if l.iso != nil {
		if p := l.iso.Probe(line); p.Present || p.Reserved {
			return false
		}
		target = l.iso
		class = ClassPrefetch
	} else if l.opt.Decoupled {
		class = ClassPrefetch
	}
	ev, ok := target.Reserve(line, class, cycle, nil)
	if !ok {
		return false
	}
	l.noteEviction(ev)
	target.Fill(line, cycle)
	l.st.Pf.Issued++
	l.pfFills++
	l.pending[line] = true
	return true
}

// FreeQuarter releases 25% of the unified space by LRU (§3.2): older L1
// data entries when more than 80% of prefetched lines were transferred
// (prefetching has been accurate), otherwise older prefetched entries. If
// the preferred class cannot supply enough victims, the remainder comes from
// the other class.
func (l *L1) FreeQuarter() {
	n := l.cache.Lines() / 4
	preferred := ClassPrefetch
	if l.pfFills > 0 && float64(l.pfTransferred)/float64(l.pfFills) > 0.8 {
		preferred = ClassData
	}
	evs := l.cache.EvictLRUOfClass(preferred, n)
	if len(evs) < n {
		other := ClassData
		if preferred == ClassData {
			other = ClassPrefetch
		}
		evs = append(evs, l.cache.EvictLRUOfClass(other, n-len(evs))...)
	}
	for _, ev := range evs {
		l.noteEviction(ev)
	}
}

// neverEvict admits only invalid (free) ways.
func neverEvict(Class, bool) bool { return false }

// prefetchClassOnly admits prefetch-class victims.
func prefetchClassOnly(c Class, _ bool) bool { return c == ClassPrefetch }

func (l *L1) noteEviction(ev EvictInfo) {
	if ev.Valid && l.pending[ev.LineAddr] {
		delete(l.pending, ev.LineAddr)
		l.st.Pf.EarlyEvicted++
	}
}

// PopMiss removes the oldest outgoing request from the shared miss queue.
func (l *L1) PopMiss() (MissRequest, bool) { return l.mq.Pop() }

// PeekMiss returns the next outgoing request without removing it.
func (l *L1) PeekMiss() (MissRequest, bool) { return l.mq.Peek() }

// PrefetchDrainPerCycle is how many staged prefetch requests trickle from
// the low-priority prefetch queue into the shared miss queue each cycle.
const PrefetchDrainPerCycle = 2

// DrainPrefetch moves up to PrefetchDrainPerCycle staged prefetch requests
// into the shared miss queue per cycle, and only while the queue has free
// slots. Prefetch requests therefore occupy the same miss-queue slots as
// demand misses — aggressive prefetching congests the queue and induces the
// demand reservation fails that Snake's throttle exists to prevent (§2, §3.3).
func (l *L1) DrainPrefetch(cycle int64) {
	for k := 0; k < PrefetchDrainPerCycle; k++ {
		if l.mq.Full() {
			return
		}
		r, ok := l.pfq.Pop()
		if !ok {
			return
		}
		// Re-stamp to the cycle before the drain: the engine's injection
		// readiness is measured from when the request became drainable, and a
		// prefetch drainable at cycle c was eligible for injection at c
		// itself under per-cycle engine scheduling (drain and inject shared
		// one serial pass), one cycle ahead of a demand miss issued at c.
		// Under slack ticking (maturity = stamp + horizon) the early stamp
		// still matures past its own epoch: drains at an epoch's first
		// sub-cycle run in the serial phase itself (engine.serialPhase's
		// hoisted drain), and every later drain's stamp is ≥ the epoch
		// start, so even full-horizon epochs are safe.
		r.Cycle = cycle - 1
		l.mq.Push(r)
	}
}

// SetMissQueueInjectionModel sets the miss queue's virtual injection
// schedule: a request occupies a slot until the cycle the modeled hardware
// would have injected it (turnaround residency, budget per cycle, queue
// order), no matter when the engine physically pulls it (which can be a
// full slack horizon later). The engine sets it once per run.
func (l *L1) SetMissQueueInjectionModel(turn int64, budget int) {
	l.mq.SetInjectionModel(turn, budget)
}

// SetMissQueueClock advances the miss queue's occupancy clock and sets the
// phantom credit: requests the engine already pulled whose modeled residency
// has not yet elapsed at this tick's cycle. Keeps Full checks — and
// therefore reservation-fail stats — a pure function of stamps and the
// cycle, identical across epoch shapes.
func (l *L1) SetMissQueueClock(now int64, credit int) { l.mq.SetClock(now, credit) }

// SetMissQueueCredit sets phantom occupancy without moving the clock.
func (l *L1) SetMissQueueCredit(n int) { l.mq.SetCredit(n) }

// MissQueueLen returns the combined outgoing queue occupancy.
func (l *L1) MissQueueLen() int { return l.mq.Len() + l.pfq.Len() }

// DemandQueueLen returns the shared outgoing miss-queue occupancy (demand
// misses plus already-drained prefetches).
func (l *L1) DemandQueueLen() int { return l.mq.Len() }

// DemandQueueFull reports whether the shared outgoing miss queue is full.
func (l *L1) DemandQueueFull() bool { return l.mq.Full() }

// DemandQueueFullAt reports fullness as of a future cycle without advancing
// the queue's clock: residency aging can free slots with no engine action.
func (l *L1) DemandQueueFullAt(cycle int64) bool { return l.mq.FullAt(cycle) }

// DemandQueueRelief returns the cycle at which residency aging alone brings
// the shared miss queue below capacity (-1: not over capacity). The engine's
// fast-forward must not skip past it while staged prefetches wait to drain.
func (l *L1) DemandQueueRelief() int64 { return l.mq.ReliefCycle() }

// PrefetchQueueLen returns the staged (not yet drained) prefetch-queue
// occupancy. The engine's fast-forward must not skip cycles while staged
// prefetches could trickle into a non-full miss queue.
func (l *L1) PrefetchQueueLen() int { return l.pfq.Len() }

// Fill completes the fill for lineAddr and returns the warps waiting on it.
func (l *L1) Fill(lineAddr uint64, cycle int64) (waiters []int) {
	waiters, prefetchOnly, origPrefetch, ok := l.mshr.Complete(lineAddr)
	if !ok {
		return nil
	}
	target := l.cache
	if l.iso != nil {
		if p := l.iso.Probe(lineAddr); p.Reserved {
			target = l.iso
		}
	}
	if !target.Fill(lineAddr, cycle) {
		// Reservation was displaced (reserved lines are never victims, so
		// this indicates a squashed reservation); tolerate by ignoring.
		return waiters
	}
	if prefetchOnly {
		l.pfFills++
		l.pending[lineAddr] = true
	}
	// Merged demands consume the line on arrival. A line whose prefetch was
	// consumed while in flight counts as transferred for the 80% heuristic:
	// the prediction was accurate, just late.
	if len(waiters) > 0 {
		target.Touch(lineAddr, cycle)
		if origPrefetch {
			l.pfFills++
			l.pfTransferred++
		}
	}
	return waiters
}

// InFlight returns the number of outstanding misses.
func (l *L1) InFlight() int { return l.mshr.InFlight() }

// PendingPrefetches returns the number of resident, not-yet-used prefetched
// lines.
func (l *L1) PendingPrefetches() int { return len(l.pending) }

// Occupancy exposes the unified-space occupancy (data, prefetch, reserved,
// free line counts).
func (l *L1) Occupancy() (data, prefetch, reserved, free int) {
	return l.cache.Occupancy()
}

// FreeFraction returns the fraction of unified lines currently free.
func (l *L1) FreeFraction() float64 {
	_, _, _, free := l.cache.Occupancy()
	return float64(free) / float64(l.cache.Lines())
}

// FinishRun counts still-resident unused prefetched lines.
func (l *L1) FinishRun() {
	l.st.Pf.Unused += int64(len(l.pending))
}

// Reset clears all cache and MSHR state (between kernels and when an engine
// is recycled for a new run). Everything is cleared in place — the cache
// arrays, MSHR map buckets, queue arrays and tracking maps are all kept — so
// a recycled controller allocates nothing and behaves bit-identically to a
// freshly constructed one.
func (l *L1) Reset() {
	l.cache.InvalidateAll()
	if l.iso != nil {
		l.iso.InvalidateAll()
	}
	l.mshr.Reset()
	l.mq.Reset()
	l.pfq.Reset()
	l.trained = false
	l.confineUntil = 0
	l.pfFills = 0
	l.pfTransferred = 0
	clear(l.pending)
	clear(l.predicted)
}

// Reconfigure switches the controller's prefetch-storage organization (a
// recycled engine may host a different mechanism than its previous run) and
// clears all state. The isolated buffer is built lazily on first use and
// retained across organizations, so flipping between mechanisms steady-state
// allocates nothing.
func (l *L1) Reconfigure(decoupled, isolated bool) {
	l.opt.Decoupled = decoupled
	l.opt.Isolated = isolated
	if isolated {
		if l.isoRetained == nil {
			l.isoRetained = buildIso(l.cache.Geom(), l.opt.IsolatedLines)
		}
		l.iso = l.isoRetained
	} else {
		l.iso = nil
	}
	l.Reset()
}
