package cache

// Special warp IDs for MSHR allocation.
const (
	// PrefetchWarp marks an allocation made by the prefetcher: no waiter,
	// and the fill is tracked as a prefetch.
	PrefetchWarp = -1
	// NoWaiterWarp marks a demand allocation with no warp to wake — the
	// secondary transactions of a divergent (uncoalesced) warp access.
	NoWaiterWarp = -2
)

// MSHR is a miss status holding register file. Each in-flight line address
// owns one entry; subsequent misses to the same line merge into that entry up
// to the merge capability. When the file or an entry's merge slots are
// exhausted, the access suffers a reservation fail.
type MSHR struct {
	entries  int
	mergeCap int
	inflight map[uint64]*mshrEntry
	// freed recycles completed entries (and their waiter slices) so the
	// steady-state miss path allocates nothing. Bounded by the entry count.
	freed []*mshrEntry
}

type mshrEntry struct {
	merged       int   // accesses merged into this entry (including the first)
	waiters      []int // warp IDs blocked on this line (-1 marks a prefetch)
	prefetch     bool  // no demand merged yet (clears on demand merge)
	origPrefetch bool  // the entry was allocated by a prefetch
	issuedAt     int64
}

// NewMSHR builds an MSHR file with the given entry count and merge capacity.
func NewMSHR(entries, mergeCap int) *MSHR {
	return &MSHR{
		entries:  entries,
		mergeCap: mergeCap,
		inflight: make(map[uint64]*mshrEntry, entries),
	}
}

// MSHRResult is the outcome of an allocation attempt.
type MSHRResult uint8

// Allocation outcomes.
const (
	MSHRNew    MSHRResult = iota // new entry: a fill request must be sent
	MSHRMerged                   // merged into an existing in-flight entry
	MSHRFull                     // no entry or merge slot: reservation fail
)

// Allocate tries to register a miss on lineAddr for warp (warp<0 for a
// prefetch).
func (m *MSHR) Allocate(lineAddr uint64, warp int, cycle int64) MSHRResult {
	if e, ok := m.inflight[lineAddr]; ok {
		if e.merged >= m.mergeCap {
			return MSHRFull
		}
		e.merged++
		if warp >= 0 {
			e.waiters = append(e.waiters, warp)
			e.prefetch = false
		}
		return MSHRMerged
	}
	if len(m.inflight) >= m.entries {
		return MSHRFull
	}
	var e *mshrEntry
	if n := len(m.freed); n > 0 {
		e = m.freed[n-1]
		m.freed = m.freed[:n-1]
		*e = mshrEntry{waiters: e.waiters[:0]}
	} else {
		e = &mshrEntry{}
	}
	e.merged = 1
	e.issuedAt = cycle
	e.prefetch = warp == PrefetchWarp
	e.origPrefetch = e.prefetch
	if warp >= 0 {
		e.waiters = append(e.waiters, warp)
	}
	m.inflight[lineAddr] = e
	return MSHRNew
}

// Lookup reports whether lineAddr has an in-flight entry and whether that
// entry was allocated purely by a prefetch (no demand merged yet).
func (m *MSHR) Lookup(lineAddr uint64) (inflight, prefetchOnly bool) {
	e, ok := m.inflight[lineAddr]
	if !ok {
		return false, false
	}
	return true, e.prefetch
}

// Complete removes the entry for lineAddr and returns the warps waiting on
// it, whether the entry has had no demand merged (prefetchOnly), and whether
// it was originally allocated by a prefetch.
//
// The returned waiters slice aliases a recycled entry and is only valid
// until the next Allocate call; callers must consume it before allocating
// again (the engine wakes waiters synchronously, before any further issue).
func (m *MSHR) Complete(lineAddr uint64) (waiters []int, prefetchOnly, origPrefetch bool, ok bool) {
	e, exists := m.inflight[lineAddr]
	if !exists {
		return nil, false, false, false
	}
	delete(m.inflight, lineAddr)
	m.freed = append(m.freed, e)
	return e.waiters, e.prefetch, e.origPrefetch, true
}

// Reset abandons every in-flight entry, recycling it onto the freed list. A
// finished run can leave entries behind — staged prefetches whose request
// never drained out of the prefetch queue — and a recycled engine must not
// see them. clear keeps the map's buckets, so the steady-state miss path of
// the next run allocates nothing.
func (m *MSHR) Reset() {
	for _, e := range m.inflight {
		m.freed = append(m.freed, e)
	}
	clear(m.inflight)
}

// InFlight returns the number of occupied entries.
func (m *MSHR) InFlight() int { return len(m.inflight) }

// Free returns the number of free entries.
func (m *MSHR) Free() int { return m.entries - len(m.inflight) }

// MissQueue is the fixed-capacity queue of outgoing fill requests between the
// L1 and the interconnect. Congestion here is the dominant cause of
// reservation fails on recent GPU generations (§2 of the paper).
//
// Occupancy is virtual: the engine holds entries physically until their
// injection maturity (stamp + horizon, which can be far wider than the
// modeled queue residency), but a request occupies a slot only until its
// virtual injection cycle — when the modeled hardware would have handed it
// to the interconnect: after the turnaround delay, in queue order, at most
// budget entries per cycle. The virtual injection cycle is fixed at Push
// (it depends only on the entry's stamp and its predecessors), so capacity
// checks — un-aged entries plus the engine's credit for entries already
// pulled ahead whose virtual injection hasn't arrived at the owner's cycle
// — are a pure function of stamps and the clock, independent of how the
// engine batches its pulls.
type MissQueue struct {
	cap   int
	queue []MissRequest
	// credit is phantom occupancy: entries the engine already drained that,
	// at the cycle this queue is being ticked at, would still have been
	// within their modeled residency.
	credit int
	// turn is the modeled minimum queue residency in cycles and budget the
	// modeled injections per cycle (turn 0: virtual injection off, every
	// physical entry counts — the legacy fixed-occupancy behaviour).
	turn   int64
	budget int
	// lastVInj / lastCnt track the tail of the virtual injection schedule:
	// the latest assigned injection cycle and how many entries it carries.
	lastVInj int64
	lastCnt  int
	// aged is the count of leading entries whose virtual injection cycle
	// has arrived at the last SetClock cycle. Injection cycles are
	// non-decreasing along the queue, so the aged region is always a prefix
	// and the cursor only advances.
	aged int
}

// MissRequest is one outgoing fill request.
type MissRequest struct {
	LineAddr uint64
	Prefetch bool
	Cycle    int64
	// VInj is the virtual injection cycle assigned by MissQueue.Push: the
	// cycle the modeled hardware would have injected this request, given
	// its stamp, the turnaround delay, and the per-cycle injection budget.
	VInj int64
}

// NewMissQueue builds a miss queue with the given capacity.
func NewMissQueue(capacity int) *MissQueue {
	return &MissQueue{cap: capacity}
}

// Reset empties the queue, keeping its backing array for reuse.
func (q *MissQueue) Reset() {
	q.queue = q.queue[:0]
	q.credit = 0
	q.aged = 0
	q.lastVInj = 0
	q.lastCnt = 0
}

// SetInjectionModel sets the virtual injection schedule's parameters: the
// minimum residency before injection (turn; 0 disables virtual occupancy)
// and the modeled injections per cycle (budget).
func (q *MissQueue) SetInjectionModel(turn int64, budget int) {
	q.turn = turn
	q.budget = budget
}

// SetClock advances the occupancy clock to now and sets the phantom credit:
// entries the engine already drained but whose virtual injection, at now,
// has not yet arrived. Always ≥ 0; the engine clears credit after each
// epoch's tick wave. The clock only moves forward.
func (q *MissQueue) SetClock(now int64, credit int) {
	q.credit = credit
	for q.aged < len(q.queue) && q.queue[q.aged].VInj <= now {
		q.aged++
	}
}

// SetCredit sets the phantom credit without moving the clock.
func (q *MissQueue) SetCredit(n int) { q.credit = n }

// Full reports whether the queue has no free slot: un-aged entries plus
// phantom credit reach capacity.
func (q *MissQueue) Full() bool { return len(q.queue)-q.aged+q.credit >= q.cap }

// FullAt reports Full as of a future clock value without advancing it.
func (q *MissQueue) FullAt(now int64) bool {
	a := q.aged
	for a < len(q.queue) && q.queue[a].VInj <= now {
		a++
	}
	return len(q.queue)-a+q.credit >= q.cap
}

// ReliefCycle returns the cycle at which virtual injections alone (no
// pushes, pops, or credit) bring occupancy below capacity: the injection
// cycle of the (len-cap+1)-th oldest entry. -1 when virtual occupancy is
// off or the physical queue is already below capacity.
func (q *MissQueue) ReliefCycle() int64 {
	if q.turn <= 0 || len(q.queue) < q.cap {
		return -1
	}
	return q.queue[len(q.queue)-q.cap].VInj
}

// Len returns the physical queue occupancy (entries awaiting the engine's
// pull, aged or not).
func (q *MissQueue) Len() int { return len(q.queue) }

// Push appends a request and assigns its virtual injection cycle; it panics
// if the queue is full (callers must check Full first — a full queue is a
// reservation fail, not a programming error). The physical queue may exceed
// cap: aged entries no longer occupy modeled slots but stay queued until
// the engine pulls them at injection maturity.
func (q *MissQueue) Push(r MissRequest) {
	if q.Full() {
		panic("cache: push to full miss queue")
	}
	if q.turn <= 0 {
		// Virtual occupancy off: the entry occupies until physically popped.
		r.VInj = 1<<62 - 1
	} else {
		c := r.Cycle + q.turn
		if c < q.lastVInj {
			c = q.lastVInj
		}
		if c == q.lastVInj {
			if q.lastCnt >= q.budget {
				c++
				q.lastVInj, q.lastCnt = c, 1
			} else {
				q.lastCnt++
			}
		} else {
			q.lastVInj, q.lastCnt = c, 1
		}
		r.VInj = c
	}
	q.queue = append(q.queue, r)
}

// Pop removes and returns the oldest request.
func (q *MissQueue) Pop() (MissRequest, bool) {
	if len(q.queue) == 0 {
		return MissRequest{}, false
	}
	r := q.queue[0]
	copy(q.queue, q.queue[1:])
	q.queue = q.queue[:len(q.queue)-1]
	if q.aged > 0 {
		q.aged--
	}
	return r, true
}

// Peek returns the oldest request without removing it.
func (q *MissQueue) Peek() (MissRequest, bool) {
	if len(q.queue) == 0 {
		return MissRequest{}, false
	}
	return q.queue[0], true
}
