package cache

import (
	"testing"

	"snake/internal/config"
	"snake/internal/stats"
)

func newTestL1(decoupled, isolated bool) (*L1, *stats.Sim) {
	st := &stats.Sim{}
	l := NewL1(geom(8, 4, 128), L1Options{
		Decoupled:     decoupled,
		Isolated:      isolated,
		MSHREntries:   16,
		MergeCap:      4,
		MissQueueSize: 4,
	}, st)
	return l, st
}

// completeFill pops all outstanding requests and fills them.
func completeFill(l *L1, cycle int64) (filled int) {
	l.DrainPrefetch(cycle)
	for {
		r, ok := l.PopMiss()
		if !ok {
			return
		}
		l.Fill(r.LineAddr, cycle)
		filled++
		l.DrainPrefetch(cycle)
	}
}

func TestL1MissThenHit(t *testing.T) {
	l, st := newTestL1(false, false)
	if out := l.Access(0, 0x1000, 1); out != stats.L1Miss {
		t.Fatalf("first access = %v, want miss", out)
	}
	if out := l.Access(1, 0x1000, 2); out != stats.L1Reserved {
		t.Fatalf("second access = %v, want reserved (merged)", out)
	}
	completeFill(l, 10)
	if out := l.Access(2, 0x1040, 11); out != stats.L1Hit {
		t.Fatalf("post-fill access = %v, want hit", out)
	}
	if st.L1[stats.L1Miss] != 1 || st.L1[stats.L1Reserved] != 1 || st.L1[stats.L1Hit] != 1 {
		t.Errorf("stat counts: %v", st.L1)
	}
}

func TestL1MissQueueReservationFail(t *testing.T) {
	l, st := newTestL1(false, false)
	// 4 distinct misses fill the queue (no draining).
	for i := 0; i < 4; i++ {
		if out := l.Access(i, uint64(0x1000+i*0x100), 1); out != stats.L1Miss {
			t.Fatalf("miss %d = %v", i, out)
		}
	}
	if out := l.Access(9, 0x9000, 2); out != stats.L1ReservationFail {
		t.Fatalf("access with full miss queue = %v, want reservation fail", out)
	}
	if st.ResFailMissQueue != 1 {
		t.Errorf("ResFailMissQueue = %d", st.ResFailMissQueue)
	}
}

func TestL1MergeCapReservationFail(t *testing.T) {
	l, st := newTestL1(false, false)
	l.Access(0, 0x1000, 1) // miss
	for w := 1; w <= 3; w++ {
		if out := l.Access(w, 0x1000, 1); out != stats.L1Reserved {
			t.Fatalf("merge %d = %v", w, out)
		}
	}
	// Merge capability (4) exhausted.
	if out := l.Access(4, 0x1000, 1); out != stats.L1ReservationFail {
		t.Fatalf("beyond merge cap = %v, want reservation fail", out)
	}
	if st.ResFailMSHR != 1 {
		t.Errorf("ResFailMSHR = %d", st.ResFailMSHR)
	}
}

func TestPrefetchLifecycleTimely(t *testing.T) {
	l, st := newTestL1(true, false)
	if oc := l.PrefetchLine(0x2000, 1); oc != PrefetchIssued {
		t.Fatalf("PrefetchLine = %v", oc)
	}
	l.Predict(0x2000)
	completeFill(l, 5)
	if l.PendingPrefetches() != 1 {
		t.Fatalf("pending = %d", l.PendingPrefetches())
	}
	out := l.Access(0, 0x2000, 10)
	if out != stats.L1HitPrefetch {
		t.Fatalf("demand on prefetched line = %v", out)
	}
	if st.Pf.UsefulTimely != 1 || st.Pf.Covered != 1 || st.Pf.CoveredTimely != 1 {
		t.Errorf("prefetch stats: %+v", st.Pf)
	}
	if l.PendingPrefetches() != 0 {
		t.Error("pending not consumed")
	}
}

func TestPrefetchLifecycleLate(t *testing.T) {
	l, st := newTestL1(true, false)
	l.PrefetchLine(0x2000, 1)
	l.Predict(0x2000)
	// Demand arrives while the prefetch is still in flight.
	if out := l.Access(0, 0x2000, 2); out != stats.L1Reserved {
		t.Fatalf("demand during in-flight prefetch = %v", out)
	}
	if st.Pf.UsefulLate != 1 {
		t.Errorf("UsefulLate = %d", st.Pf.UsefulLate)
	}
	// Covered but not timely.
	if st.Pf.Covered != 1 || st.Pf.CoveredTimely != 0 {
		t.Errorf("Covered=%d CoveredTimely=%d", st.Pf.Covered, st.Pf.CoveredTimely)
	}
}

func TestPrefetchDuplicateDropped(t *testing.T) {
	l, _ := newTestL1(true, false)
	l.PrefetchLine(0x2000, 1)
	if oc := l.PrefetchLine(0x2000, 2); oc != PrefetchDuplicate {
		t.Errorf("in-flight duplicate = %v", oc)
	}
	completeFill(l, 5)
	if oc := l.PrefetchLine(0x2000, 6); oc != PrefetchDuplicate {
		t.Errorf("resident duplicate = %v", oc)
	}
}

func TestMagicFill(t *testing.T) {
	l, st := newTestL1(true, false)
	if !l.MagicFill(0x3000, 1) {
		t.Fatal("MagicFill failed")
	}
	if l.MagicFill(0x3000, 2) {
		t.Error("duplicate MagicFill must fail")
	}
	if out := l.Access(0, 0x3000, 3); out != stats.L1HitPrefetch {
		t.Errorf("access after MagicFill = %v", out)
	}
	if st.Pf.UsefulTimely != 1 {
		t.Errorf("UsefulTimely = %d", st.Pf.UsefulTimely)
	}
}

func TestUnusedPrefetchAccounting(t *testing.T) {
	l, st := newTestL1(true, false)
	l.PrefetchLine(0x2000, 1)
	completeFill(l, 5)
	l.FinishRun()
	if st.Pf.Unused != 1 {
		t.Errorf("Unused = %d", st.Pf.Unused)
	}
}

func TestIsolatedBufferKeepsUnifiedFree(t *testing.T) {
	l, _ := newTestL1(false, true)
	l.PrefetchLine(0x2000, 1)
	completeFill(l, 5)
	data, pf, res, _ := l.Occupancy()
	if data != 0 || pf != 0 || res != 0 {
		t.Errorf("unified occupancy after isolated prefetch: data=%d pf=%d res=%d", data, pf, res)
	}
	if out := l.Access(0, 0x2000, 10); out != stats.L1HitPrefetch {
		t.Errorf("access = %v, want isolated-buffer hit", out)
	}
}

func TestDecoupledDemandProtectsPendingPrefetches(t *testing.T) {
	st := &stats.Sim{}
	// Tiny cache: 2 sets x 2 ways.
	l := NewL1(config.CacheGeom{SizeBytes: 4 * 128, Ways: 2, LineSize: 128, Latency: 1},
		L1Options{Decoupled: true, MSHREntries: 16, MergeCap: 4, MissQueueSize: 8}, st)
	l.SetTrained(true)
	setSpan := uint64(2 * 128)
	// Fill set 0 with one pending prefetch and one demand line.
	l.PrefetchLine(0x0, 1)
	l.Access(0, setSpan, 2)
	completeFill(l, 5)
	l.Access(0, setSpan, 6) // touch the data line (cycle 6 > prefetch's 5)
	// A new demand miss to set 0 must evict the (LRU) data line, not the
	// untouched prefetched line — even though the prefetch line is older.
	if out := l.Access(1, 2*setSpan, 7); out != stats.L1Miss {
		t.Fatalf("third access = %v", out)
	}
	if st.Pf.EarlyEvicted != 0 {
		t.Errorf("pending prefetch was evicted by demand (EarlyEvicted=%d)", st.Pf.EarlyEvicted)
	}
	// The prefetched line must still be present.
	completeFill(l, 10)
	if out := l.Access(2, 0x0, 11); out != stats.L1HitPrefetch {
		t.Errorf("prefetched line gone: %v", out)
	}
}

func TestFreeQuarterPrefersClassByTransferRatio(t *testing.T) {
	st := &stats.Sim{}
	l := NewL1(config.CacheGeom{SizeBytes: 8 * 128, Ways: 4, LineSize: 128, Latency: 1},
		L1Options{Decoupled: true, MSHREntries: 32, MergeCap: 4, MissQueueSize: 16}, st)
	// Create 4 prefetched lines, never consumed => transfer ratio 0.
	for i := 0; i < 4; i++ {
		l.PrefetchLine(uint64(i)*128, int64(i))
	}
	completeFill(l, 5)
	before := l.PendingPrefetches()
	l.FreeQuarter() // 8/4 = 2 lines, preferred class = prefetch (ratio 0)
	if evicted := before - l.PendingPrefetches(); evicted != 2 {
		t.Errorf("FreeQuarter evicted %d pending prefetches, want 2", evicted)
	}
	if st.Pf.EarlyEvicted != 2 {
		t.Errorf("EarlyEvicted = %d, want 2", st.Pf.EarlyEvicted)
	}
}

func TestL1Reset(t *testing.T) {
	l, _ := newTestL1(true, false)
	l.Access(0, 0x1000, 1)
	l.PrefetchLine(0x2000, 1)
	l.Reset()
	if l.InFlight() != 0 || l.MissQueueLen() != 0 || l.PendingPrefetches() != 0 {
		t.Error("Reset left residual state")
	}
	if out := l.Access(0, 0x1000, 10); out != stats.L1Miss {
		t.Errorf("access after Reset = %v, want miss", out)
	}
}
