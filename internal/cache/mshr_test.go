package cache

import (
	"testing"
	"testing/quick"
)

func TestMSHRAllocateMergeComplete(t *testing.T) {
	m := NewMSHR(4, 3)
	if r := m.Allocate(0x100, 7, 1); r != MSHRNew {
		t.Fatalf("first Allocate = %v, want MSHRNew", r)
	}
	if r := m.Allocate(0x100, 8, 2); r != MSHRMerged {
		t.Fatalf("second Allocate = %v, want MSHRMerged", r)
	}
	if r := m.Allocate(0x100, 9, 3); r != MSHRMerged {
		t.Fatalf("third Allocate = %v, want MSHRMerged", r)
	}
	// Merge capability 3 reached.
	if r := m.Allocate(0x100, 10, 4); r != MSHRFull {
		t.Fatalf("fourth Allocate = %v, want MSHRFull", r)
	}
	waiters, prefetchOnly, orig, ok := m.Complete(0x100)
	if !ok || prefetchOnly || orig {
		t.Fatalf("Complete = (%v,%v,%v,%v)", waiters, prefetchOnly, orig, ok)
	}
	if len(waiters) != 3 || waiters[0] != 7 || waiters[1] != 8 || waiters[2] != 9 {
		t.Errorf("waiters = %v", waiters)
	}
	if _, _, _, ok := m.Complete(0x100); ok {
		t.Error("double Complete must fail")
	}
}

func TestMSHREntryExhaustion(t *testing.T) {
	m := NewMSHR(2, 8)
	m.Allocate(0x100, 1, 1)
	m.Allocate(0x200, 2, 1)
	if r := m.Allocate(0x300, 3, 1); r != MSHRFull {
		t.Errorf("Allocate with full file = %v, want MSHRFull", r)
	}
	if m.Free() != 0 || m.InFlight() != 2 {
		t.Errorf("Free=%d InFlight=%d", m.Free(), m.InFlight())
	}
}

func TestMSHRPrefetchFlagFlipsOnDemandMerge(t *testing.T) {
	m := NewMSHR(4, 8)
	m.Allocate(0x100, -1, 1) // prefetch
	if inflight, pfOnly := m.Lookup(0x100); !inflight || !pfOnly {
		t.Fatalf("Lookup = (%v,%v)", inflight, pfOnly)
	}
	m.Allocate(0x100, 5, 2) // demand merges
	if _, pfOnly := m.Lookup(0x100); pfOnly {
		t.Error("demand merge must clear the prefetch-only flag")
	}
	waiters, pfOnly, orig, _ := m.Complete(0x100)
	if pfOnly || !orig {
		t.Errorf("Complete: pfOnly=%v origPrefetch=%v, want false/true", pfOnly, orig)
	}
	if len(waiters) != 1 || waiters[0] != 5 {
		t.Errorf("waiters = %v", waiters)
	}
}

func TestMissQueueFIFO(t *testing.T) {
	q := NewMissQueue(3)
	for i := 0; i < 3; i++ {
		q.Push(MissRequest{LineAddr: uint64(i)})
	}
	if !q.Full() {
		t.Error("queue must be full")
	}
	for i := 0; i < 3; i++ {
		r, ok := q.Pop()
		if !ok || r.LineAddr != uint64(i) {
			t.Errorf("Pop %d = (%v,%v)", i, r, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue must fail")
	}
}

func TestMissQueuePushFullPanics(t *testing.T) {
	q := NewMissQueue(1)
	q.Push(MissRequest{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic pushing to full queue")
		}
	}()
	q.Push(MissRequest{})
}

func TestMSHRInvariant(t *testing.T) {
	// Property: InFlight + Free == capacity, always.
	f := func(ops []uint8) bool {
		m := NewMSHR(8, 4)
		live := map[uint64]bool{}
		for i, op := range ops {
			line := uint64(op%16) * 128
			if op < 128 {
				m.Allocate(line, int(op%32), int64(i))
				live[line] = true
			} else if live[line] {
				m.Complete(line)
				delete(live, line)
			}
			if m.InFlight()+m.Free() != 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
