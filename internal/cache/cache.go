// Package cache implements the on-chip cache substrate: a set-associative
// cache with LRU replacement, an MSHR file with merge capability, a miss
// queue, and the L1 controller used by the simulator.
//
// The L1 controller supports Snake's decoupled unified-cache organization
// (§3.2 of the paper): prefetched lines and demand (L1 data) lines share the
// unified storage but are distinguished by a per-line flag, each side may
// grow until the space is full, demand hits on prefetched lines "transfer"
// the line by flipping the flag, and eviction between the two classes follows
// the paper's 80%-transferred heuristic.
package cache

import (
	"fmt"
	"math"
	"math/bits"

	"snake/internal/config"
)

// Class tags the owner of a cache line in the decoupled organization.
type Class uint8

// Line classes.
const (
	ClassData     Class = iota // normal L1 data
	ClassPrefetch              // line brought in by the prefetcher
)

// line is one cache line's metadata.
type line struct {
	tag      uint64
	valid    bool
	reserved bool // fill in flight
	class    Class
	lastUse  int64
	fillAt   int64 // cycle the line became valid
	touched  bool  // demanded at least once since fill (for useful-prefetch accounting)
}

// Cache is a set-associative cache with per-line class flags. Lines are
// stored in one contiguous array (set s occupies lines[s*ways:(s+1)*ways])
// so set scans — the simulator's hottest loop — walk sequential memory with
// a single bounds check instead of chasing per-set slice headers.
type Cache struct {
	geom     config.CacheGeom
	lines    []line
	ways     int
	setShift uint
	setBits  uint
	setMask  uint64

	// idx maps a line's set+tag key to its position in lines, so lookups are
	// O(1) instead of an O(ways) set scan — the unified L1 is 256-way, so
	// scans dominated the simulator's CPU profile. It holds exactly the
	// lines that are valid or reserved.
	idx lineIdx

	// occ is a per-set bitmap of occupied (valid or reserved) ways; bits
	// beyond ways in a set's last word are permanently set so a zero bit
	// always names a free way. occWPS is words per set.
	occ    []uint64
	occWPS int

	// vkeys/vgroups shadow each line's victim-selection state so Reserve's
	// full-set LRU scan reads 9 bytes per way instead of the line struct:
	// vkeys[i] is lines[i].lastUse and vgroups[i] is a one-hot group bit
	// (class<<1|touched), zero while the line is invalid or reserved and
	// therefore never an LRU victim.
	vkeys   []int64
	vgroups []uint8

	// Occupancy counters for the decoupling policy.
	nData     int
	nPrefetch int
	nReserved int
}

// New builds a cache from the geometry. It panics on invalid geometry; use
// geom.Validate beforehand for recoverable checking.
func New(geom config.CacheGeom) *Cache {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("cache: %v", err))
	}
	nsets := geom.Sets()
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a power of two", nsets))
	}
	ls := geom.LineSize
	if ls&(ls-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d is not a power of two", ls))
	}
	shift := uint(0)
	for 1<<shift < ls {
		shift++
	}
	wps := (geom.Ways + 63) / 64
	c := &Cache{
		geom:     geom,
		lines:    make([]line, nsets*geom.Ways),
		ways:     geom.Ways,
		setShift: shift,
		setBits:  uint(len2(nsets)),
		setMask:  uint64(nsets - 1),
		occ:      make([]uint64, nsets*wps),
		occWPS:   wps,
		vkeys:    make([]int64, nsets*geom.Ways),
		vgroups:  make([]uint8, nsets*geom.Ways),
	}
	c.idx.init(len(c.lines))
	c.resetOcc()
	return c
}

// resetOcc clears the occupancy bitmap, re-marking the padding bits past the
// last way of each set as permanently occupied.
func (c *Cache) resetOcc() {
	for i := range c.occ {
		c.occ[i] = 0
	}
	if r := c.ways & 63; r != 0 {
		pad := ^uint64(0) << uint(r)
		nsets := len(c.lines) / c.ways
		for s := 0; s < nsets; s++ {
			c.occ[(s+1)*c.occWPS-1] |= pad
		}
	}
}

func (c *Cache) occMark(s, w int, occupied bool) {
	bit := uint64(1) << (uint(w) & 63)
	word := &c.occ[s*c.occWPS+(w>>6)]
	if occupied {
		*word |= bit
	} else {
		*word &^= bit
	}
}

// firstFree returns the lowest unoccupied way of set s, or -1 when full.
func (c *Cache) firstFree(s int) int {
	base := s * c.occWPS
	for wi := 0; wi < c.occWPS; wi++ {
		if free := ^c.occ[base+wi]; free != 0 {
			return wi<<6 + bits.TrailingZeros64(free)
		}
	}
	return -1
}

// set returns the ways of set s as a slice of the contiguous line array.
func (c *Cache) set(s int) []line {
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// LineAddr returns addr truncated to its cache-line base address.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.geom.LineSize) - 1)
}

// Geom returns the cache geometry.
func (c *Cache) Geom() config.CacheGeom { return c.geom }

// Lines returns the total number of lines in the cache.
func (c *Cache) Lines() int { return c.geom.Lines() }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	la := addr >> c.setShift
	return int(la & c.setMask), la >> c.setBits
}

// addrOf reconstructs a line base address from a set index and tag.
func (c *Cache) addrOf(set int, tag uint64) uint64 {
	return (tag<<c.setBits | uint64(set)) << c.setShift
}

// len2 returns log2(n) for power-of-two n.
func len2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// lineIdx is an open-addressing hash table from a line's set+tag key
// (addr >> setShift) to its position in Cache.lines. Linear probing;
// deletion backward-shifts the probe chain so no tombstones accumulate.
// Capacity is fixed at ≥2× the line count (occupancy is bounded by the
// number of lines), so the load factor never exceeds 1/2.
type lineIdx struct {
	keys  []uint64 // stored as key+1; 0 marks an empty slot
	vals  []int32
	mask  uint32
	shift uint
}

func (t *lineIdx) init(lines int) {
	size := 4
	for size < 2*lines {
		size <<= 1
	}
	t.keys = make([]uint64, size)
	t.vals = make([]int32, size)
	t.mask = uint32(size - 1)
	t.shift = uint(64 - len2(size))
}

func (t *lineIdx) slot(key uint64) uint32 {
	return uint32(key * 0x9E3779B97F4A7C15 >> t.shift)
}

// get returns the stored position for key, or -1.
func (t *lineIdx) get(key uint64) int32 {
	k := key + 1
	for i := t.slot(key); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case k:
			return t.vals[i]
		case 0:
			return -1
		}
	}
}

func (t *lineIdx) put(key uint64, val int32) {
	k := key + 1
	for i := t.slot(key); ; i = (i + 1) & t.mask {
		if t.keys[i] == 0 || t.keys[i] == k {
			t.keys[i] = k
			t.vals[i] = val
			return
		}
	}
}

func (t *lineIdx) del(key uint64) {
	k := key + 1
	i := t.slot(key)
	for t.keys[i] != k {
		if t.keys[i] == 0 {
			return
		}
		i = (i + 1) & t.mask
	}
	// Backward-shift deletion: pull each later entry of the probe chain into
	// the hole unless its home slot lies cyclically within (hole, entry].
	j := i
	for {
		j = (j + 1) & t.mask
		if t.keys[j] == 0 {
			break
		}
		h := t.slot(t.keys[j] - 1)
		if i < j {
			if i < h && h <= j {
				continue
			}
		} else if h > i || h <= j {
			continue
		}
		t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
		i = j
	}
	t.keys[i] = 0
}

func (t *lineIdx) reset() {
	for i := range t.keys {
		t.keys[i] = 0
	}
}

// findPos returns the index in lines of the line holding addr (valid or
// reserved), or -1.
func (c *Cache) findPos(addr uint64) int32 {
	return c.idx.get(addr >> c.setShift)
}

// findLine returns the line holding addr (valid or reserved), or nil.
func (c *Cache) findLine(addr uint64) *line {
	pos := c.findPos(addr)
	if pos < 0 {
		return nil
	}
	return &c.lines[pos]
}

// ProbeResult describes the state of a looked-up line.
type ProbeResult struct {
	Present  bool  // valid data in the cache
	Reserved bool  // fill in flight
	Class    Class // meaningful when Present
	Touched  bool
}

// Probe looks up addr without changing replacement state.
func (c *Cache) Probe(addr uint64) ProbeResult {
	ln := c.findLine(addr)
	if ln == nil {
		return ProbeResult{}
	}
	return ProbeResult{Present: ln.valid, Reserved: ln.reserved, Class: ln.class, Touched: ln.touched}
}

// touchLine applies Touch's demand-hit update to the valid line at pos.
func (c *Cache) touchLine(pos int32, cycle int64) (transferred bool) {
	ln := &c.lines[pos]
	ln.lastUse = cycle
	ln.touched = true
	if ln.class == ClassPrefetch {
		ln.class = ClassData
		c.nPrefetch--
		c.nData++
		transferred = true
	}
	c.vkeys[pos] = cycle
	c.vgroups[pos] = 1 << (uint8(ln.class)<<1 | 1)
	return transferred
}

// Touch performs a demand hit on addr: updates LRU and marks touched. If the
// line is in the prefetch class, it is transferred to the data class (the
// flag flip of §3.2) and transferred=true is returned. ok is false when the
// line is not present.
func (c *Cache) Touch(addr uint64, cycle int64) (transferred, wasPrefetch, ok bool) {
	pos := c.findPos(addr)
	if pos < 0 || !c.lines[pos].valid {
		return false, false, false
	}
	transferred = c.touchLine(pos, cycle)
	return transferred, transferred, true
}

// Hit combines Probe and Touch in a single lookup — the demand-access fast
// path. It returns the line's probe state as of before the call; when the
// line is present the LRU/touched/class-transfer update of Touch is applied
// in place.
func (c *Cache) Hit(addr uint64, cycle int64) ProbeResult {
	pos := c.findPos(addr)
	if pos < 0 {
		return ProbeResult{}
	}
	ln := &c.lines[pos]
	p := ProbeResult{Present: ln.valid, Reserved: ln.reserved, Class: ln.class, Touched: ln.touched}
	if ln.valid {
		c.touchLine(pos, cycle)
	}
	return p
}

// Occupancy returns the current line counts by state.
func (c *Cache) Occupancy() (data, prefetch, reserved, free int) {
	total := c.Lines()
	return c.nData, c.nPrefetch, c.nReserved, total - c.nData - c.nPrefetch - c.nReserved
}

// Reserve claims a line for an in-flight fill of addr with the given class.
// A victim is chosen inside addr's set:
//
//  1. an invalid, unreserved way if one exists;
//  2. otherwise the LRU valid way permitted by the victim filter;
//  3. if every way is reserved (or the filter rejects all), reservation
//     fails and ok=false is returned.
//
// evictedPrefetchUnused reports that the victim was an untouched prefetch
// line (early eviction, for accuracy accounting).
func (c *Cache) Reserve(addr uint64, class Class, cycle int64, filter VictimFilter) (evicted EvictInfo, ok bool) {
	s, tag := c.index(addr)
	// Already present or reserved? Caller should have probed; treat as
	// failure.
	if c.idx.get(addr>>c.setShift) >= 0 {
		return EvictInfo{}, false
	}
	// Invalid ways win over any victim; the bitmap gives the lowest one
	// without touching line metadata.
	if w := c.firstFree(s); w >= 0 {
		c.install(s, w, tag, class)
		return EvictInfo{}, true
	}
	// Set is full: LRU scan over the filter-permitted valid ways via the
	// shadow victim arrays. The filter is a pure function of (class,
	// touched), so its four possible answers collapse to a group bitmask
	// computed up front; reserved lines carry group 0 and are never matched.
	// The ascending scan with strict less-than keeps the lowest way index on
	// lastUse ties, as the line-struct scan did.
	allowed := uint8(0xF)
	if filter != nil {
		allowed = 0
		for g := uint8(0); g < 4; g++ {
			if filter(Class(g>>1), g&1 == 1) {
				allowed |= 1 << g
			}
		}
	}
	base := s * c.ways
	vk := c.vkeys[base : base+c.ways]
	vg := c.vgroups[base : base+c.ways][:len(vk)] // same-length hint for bounds-check elimination
	victim := -1
	oldest := int64(math.MaxInt64)
	for i := range vk {
		// Branchless eligibility: g|-g has the sign bit set iff g != 0, so m
		// is all-ones for an allowed way and key falls back to MaxInt64
		// otherwise. The only branch left (a new minimum) is rarely taken.
		g := int64(vg[i] & allowed)
		m := (g | -g) >> 63
		key := vk[i]&m | math.MaxInt64&^m
		if key < oldest {
			victim = i
			oldest = key
		}
	}
	if victim < 0 {
		return EvictInfo{}, false
	}
	w := victim
	ev := c.evictAt(s, w)
	c.install(s, w, tag, class)
	return ev, true
}

// EvictInfo describes an evicted line.
type EvictInfo struct {
	Valid    bool
	Class    Class
	Touched  bool
	LineAddr uint64 // base address of the evicted line
}

func (c *Cache) install(set, way int, tag uint64, class Class) {
	pos := set*c.ways + way
	ln := &c.lines[pos]
	ln.tag = tag
	ln.valid = false
	ln.reserved = true
	ln.class = class
	ln.touched = false
	c.nReserved++
	c.occMark(set, way, true)
	c.vgroups[pos] = 0 // in flight: not an LRU victim
	c.idx.put(tag<<c.setBits|uint64(set), int32(pos))
}

func (c *Cache) evictAt(set, way int) EvictInfo {
	ln := &c.lines[set*c.ways+way]
	ev := EvictInfo{Valid: true, Class: ln.class, Touched: ln.touched, LineAddr: c.addrOf(set, ln.tag)}
	if ln.class == ClassPrefetch {
		c.nPrefetch--
	} else {
		c.nData--
	}
	ln.valid = false
	ln.reserved = false
	c.occMark(set, way, false)
	c.vgroups[set*c.ways+way] = 0
	c.idx.del(ln.tag<<c.setBits | uint64(set))
	return ev
}

// Fill completes an in-flight fill for addr. ok is false if no reservation
// for addr exists (e.g. the reservation was squashed).
func (c *Cache) Fill(addr uint64, cycle int64) bool {
	pos := c.findPos(addr)
	if pos < 0 {
		return false
	}
	ln := &c.lines[pos]
	if !ln.reserved {
		return false
	}
	ln.reserved = false
	ln.valid = true
	ln.lastUse = cycle
	ln.fillAt = cycle
	c.nReserved--
	if ln.class == ClassPrefetch {
		c.nPrefetch++
	} else {
		c.nData++
	}
	c.vkeys[pos] = cycle
	c.vgroups[pos] = 1 << (uint8(ln.class) << 1) // untouched since fill
	return true
}

// VictimFilter restricts which lines may be evicted; it receives the line's
// class and whether it has been demand-touched.
type VictimFilter func(class Class, touched bool) bool

// EvictLRUOfClass evicts up to n valid lines of the given class, choosing
// globally least-recently-used first. It returns per-line info for accounting
// (used by the §3.2 "free up 25% of the unified cache" bulk eviction).
func (c *Cache) EvictLRUOfClass(class Class, n int) []EvictInfo {
	if n <= 0 {
		return nil
	}
	type cand struct {
		s, w    int
		lastUse int64
	}
	var cands []cand
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && !ln.reserved && ln.class == class {
			cands = append(cands, cand{i / c.ways, i % c.ways, ln.lastUse})
		}
	}
	// Partial selection sort for the n oldest (n is small relative to size).
	if n > len(cands) {
		n = len(cands)
	}
	for i := 0; i < n; i++ {
		min := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].lastUse < cands[min].lastUse {
				min = j
			}
		}
		cands[i], cands[min] = cands[min], cands[i]
	}
	out := make([]EvictInfo, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.evictAt(cands[i].s, cands[i].w))
	}
	return out
}

// InvalidateAll clears the cache (used between kernels).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.nData, c.nPrefetch, c.nReserved = 0, 0, 0
	for i := range c.vgroups {
		c.vgroups[i] = 0
	}
	c.resetOcc()
	c.idx.reset()
}
