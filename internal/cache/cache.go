// Package cache implements the on-chip cache substrate: a set-associative
// cache with LRU replacement, an MSHR file with merge capability, a miss
// queue, and the L1 controller used by the simulator.
//
// The L1 controller supports Snake's decoupled unified-cache organization
// (§3.2 of the paper): prefetched lines and demand (L1 data) lines share the
// unified storage but are distinguished by a per-line flag, each side may
// grow until the space is full, demand hits on prefetched lines "transfer"
// the line by flipping the flag, and eviction between the two classes follows
// the paper's 80%-transferred heuristic.
package cache

import (
	"fmt"

	"snake/internal/config"
)

// Class tags the owner of a cache line in the decoupled organization.
type Class uint8

// Line classes.
const (
	ClassData     Class = iota // normal L1 data
	ClassPrefetch              // line brought in by the prefetcher
)

// line is one cache line's metadata.
type line struct {
	tag      uint64
	valid    bool
	reserved bool // fill in flight
	class    Class
	lastUse  int64
	fillAt   int64 // cycle the line became valid
	touched  bool  // demanded at least once since fill (for useful-prefetch accounting)
}

// Cache is a set-associative cache with per-line class flags.
type Cache struct {
	geom     config.CacheGeom
	sets     [][]line
	setShift uint
	setBits  uint
	setMask  uint64

	// Occupancy counters for the decoupling policy.
	nData     int
	nPrefetch int
	nReserved int
}

// New builds a cache from the geometry. It panics on invalid geometry; use
// geom.Validate beforehand for recoverable checking.
func New(geom config.CacheGeom) *Cache {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("cache: %v", err))
	}
	nsets := geom.Sets()
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a power of two", nsets))
	}
	ls := geom.LineSize
	if ls&(ls-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d is not a power of two", ls))
	}
	shift := uint(0)
	for 1<<shift < ls {
		shift++
	}
	c := &Cache{
		geom:     geom,
		sets:     make([][]line, nsets),
		setShift: shift,
		setBits:  uint(len2(nsets)),
		setMask:  uint64(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, geom.Ways)
	}
	return c
}

// LineAddr returns addr truncated to its cache-line base address.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.geom.LineSize) - 1)
}

// Geom returns the cache geometry.
func (c *Cache) Geom() config.CacheGeom { return c.geom }

// Lines returns the total number of lines in the cache.
func (c *Cache) Lines() int { return c.geom.Lines() }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	la := addr >> c.setShift
	return int(la & c.setMask), la >> c.setBits
}

// addrOf reconstructs a line base address from a set index and tag.
func (c *Cache) addrOf(set int, tag uint64) uint64 {
	return (tag<<c.setBits | uint64(set)) << c.setShift
}

// len2 returns log2(n) for power-of-two n.
func len2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// lookup finds the way holding addr, or -1.
func (c *Cache) lookup(addr uint64) (set, way int) {
	s, tag := c.index(addr)
	for w := range c.sets[s] {
		ln := &c.sets[s][w]
		if (ln.valid || ln.reserved) && ln.tag == tag {
			return s, w
		}
	}
	return s, -1
}

// ProbeResult describes the state of a looked-up line.
type ProbeResult struct {
	Present  bool  // valid data in the cache
	Reserved bool  // fill in flight
	Class    Class // meaningful when Present
	Touched  bool
}

// Probe looks up addr without changing replacement state.
func (c *Cache) Probe(addr uint64) ProbeResult {
	s, w := c.lookup(addr)
	if w < 0 {
		return ProbeResult{}
	}
	ln := &c.sets[s][w]
	return ProbeResult{Present: ln.valid, Reserved: ln.reserved, Class: ln.class, Touched: ln.touched}
}

// Touch performs a demand hit on addr: updates LRU and marks touched. If the
// line is in the prefetch class, it is transferred to the data class (the
// flag flip of §3.2) and transferred=true is returned. ok is false when the
// line is not present.
func (c *Cache) Touch(addr uint64, cycle int64) (transferred, wasPrefetch, ok bool) {
	s, w := c.lookup(addr)
	if w < 0 || !c.sets[s][w].valid {
		return false, false, false
	}
	ln := &c.sets[s][w]
	ln.lastUse = cycle
	ln.touched = true
	if ln.class == ClassPrefetch {
		ln.class = ClassData
		c.nPrefetch--
		c.nData++
		return true, true, true
	}
	return false, false, true
}

// Occupancy returns the current line counts by state.
func (c *Cache) Occupancy() (data, prefetch, reserved, free int) {
	total := c.Lines()
	return c.nData, c.nPrefetch, c.nReserved, total - c.nData - c.nPrefetch - c.nReserved
}

// Reserve claims a line for an in-flight fill of addr with the given class.
// A victim is chosen inside addr's set:
//
//  1. an invalid, unreserved way if one exists;
//  2. otherwise the LRU valid way permitted by the victim filter;
//  3. if every way is reserved (or the filter rejects all), reservation
//     fails and ok=false is returned.
//
// evictedPrefetchUnused reports that the victim was an untouched prefetch
// line (early eviction, for accuracy accounting).
func (c *Cache) Reserve(addr uint64, class Class, cycle int64, filter VictimFilter) (evicted EvictInfo, ok bool) {
	s, tag := c.index(addr)
	set := c.sets[s]
	// Already present or reserved? Caller should have probed; treat as failure.
	for w := range set {
		if (set[w].valid || set[w].reserved) && set[w].tag == tag {
			return EvictInfo{}, false
		}
	}
	// Invalid way first.
	for w := range set {
		if !set[w].valid && !set[w].reserved {
			c.install(&set[w], tag, class)
			return EvictInfo{}, true
		}
	}
	// LRU among valid, unreserved, filter-permitted ways.
	victim := -1
	var oldest int64
	for w := range set {
		ln := &set[w]
		if !ln.valid || ln.reserved {
			continue
		}
		if filter != nil && !filter(ln.class, ln.touched) {
			continue
		}
		if victim < 0 || ln.lastUse < oldest {
			victim = w
			oldest = ln.lastUse
		}
	}
	if victim < 0 {
		return EvictInfo{}, false
	}
	ev := c.evictAt(s, victim)
	c.install(&set[victim], tag, class)
	return ev, true
}

// EvictInfo describes an evicted line.
type EvictInfo struct {
	Valid    bool
	Class    Class
	Touched  bool
	LineAddr uint64 // base address of the evicted line
}

func (c *Cache) install(ln *line, tag uint64, class Class) {
	ln.tag = tag
	ln.valid = false
	ln.reserved = true
	ln.class = class
	ln.touched = false
	c.nReserved++
}

func (c *Cache) evictAt(set, way int) EvictInfo {
	ln := &c.sets[set][way]
	ev := EvictInfo{Valid: true, Class: ln.class, Touched: ln.touched, LineAddr: c.addrOf(set, ln.tag)}
	if ln.class == ClassPrefetch {
		c.nPrefetch--
	} else {
		c.nData--
	}
	ln.valid = false
	ln.reserved = false
	return ev
}

// Fill completes an in-flight fill for addr. ok is false if no reservation
// for addr exists (e.g. the reservation was squashed).
func (c *Cache) Fill(addr uint64, cycle int64) bool {
	s, w := c.lookup(addr)
	if w < 0 {
		return false
	}
	ln := &c.sets[s][w]
	if !ln.reserved {
		return false
	}
	ln.reserved = false
	ln.valid = true
	ln.lastUse = cycle
	ln.fillAt = cycle
	c.nReserved--
	if ln.class == ClassPrefetch {
		c.nPrefetch++
	} else {
		c.nData++
	}
	return true
}

// VictimFilter restricts which lines may be evicted; it receives the line's
// class and whether it has been demand-touched.
type VictimFilter func(class Class, touched bool) bool

// EvictLRUOfClass evicts up to n valid lines of the given class, choosing
// globally least-recently-used first. It returns per-line info for accounting
// (used by the §3.2 "free up 25% of the unified cache" bulk eviction).
func (c *Cache) EvictLRUOfClass(class Class, n int) []EvictInfo {
	if n <= 0 {
		return nil
	}
	type cand struct {
		s, w    int
		lastUse int64
	}
	var cands []cand
	for s := range c.sets {
		for w := range c.sets[s] {
			ln := &c.sets[s][w]
			if ln.valid && !ln.reserved && ln.class == class {
				cands = append(cands, cand{s, w, ln.lastUse})
			}
		}
	}
	// Partial selection sort for the n oldest (n is small relative to size).
	if n > len(cands) {
		n = len(cands)
	}
	for i := 0; i < n; i++ {
		min := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].lastUse < cands[min].lastUse {
				min = j
			}
		}
		cands[i], cands[min] = cands[min], cands[i]
	}
	out := make([]EvictInfo, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.evictAt(cands[i].s, cands[i].w))
	}
	return out
}

// InvalidateAll clears the cache (used between kernels).
func (c *Cache) InvalidateAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = line{}
		}
	}
	c.nData, c.nPrefetch, c.nReserved = 0, 0, 0
}
