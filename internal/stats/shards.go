package stats

// Shards is a set of per-shard Sim accumulators. The simulation engine gives
// each SM shard its own accumulator so shards can count events concurrently
// without sharing a cache line of logic (each shard writes only its own
// entry), and merges them into one Sim at the end of the run.
//
// Merge (and therefore Total) is insensitive to how events were partitioned
// across shards: every counter is a sum and Cycles is a max, so merging any
// shard partition of an event stream yields the same totals as accumulating
// the stream serially. TestShardsMergePartitionInvariant pins this property;
// it is what makes the engine's parallel results bit-identical to serial
// ones at the statistics layer.
type Shards struct {
	sims []Sim
}

// NewShards returns n zeroed per-shard accumulators.
func NewShards(n int) *Shards {
	return &Shards{sims: make([]Sim, n)}
}

// Shard returns the i-th accumulator for the owning shard to count into.
func (s *Shards) Shard(i int) *Sim { return &s.sims[i] }

// Len returns the number of shards.
func (s *Shards) Len() int { return len(s.sims) }

// Slice exposes the underlying accumulators (the engine's per-SM result
// view). The caller must not grow it.
func (s *Shards) Slice() []Sim { return s.sims }

// Reset zeroes every shard accumulator in place, so a recycled engine reuses
// the backing array instead of allocating a fresh Shards per run.
func (s *Shards) Reset() {
	clear(s.sims)
}

// Total merges every shard accumulator, in shard order, into one Sim.
func (s *Shards) Total() Sim {
	var out Sim
	for i := range s.sims {
		out.Merge(&s.sims[i])
	}
	return out
}
