// Package stats collects the counters the Snake paper reports: IPC, stall
// breakdowns, L1 access outcomes (hit / miss / reserved / reservation fail),
// interconnect bandwidth utilization, and the prefetch coverage / accuracy
// bookkeeping used for Figures 6, 16 and 17.
package stats

import "fmt"

// L1Outcome classifies one L1 data-cache access, mirroring the paper's
// footnote 1: "hit, miss, reserved, and reservation fail".
type L1Outcome uint8

// L1 access outcomes.
const (
	L1Hit             L1Outcome = iota // data present (in L1 data space)
	L1HitPrefetch                      // data present in the decoupled prefetch space
	L1Reserved                         // line already reserved by an in-flight miss (merged)
	L1Miss                             // miss; a new fill request was issued
	L1ReservationFail                  // rejected: MSHR/miss-queue/line-reservation exhausted
)

// String returns the outcome name.
func (o L1Outcome) String() string {
	switch o {
	case L1Hit:
		return "hit"
	case L1HitPrefetch:
		return "hit-prefetch"
	case L1Reserved:
		return "reserved"
	case L1Miss:
		return "miss"
	case L1ReservationFail:
		return "reservation-fail"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Sim aggregates all counters for one simulation run.
type Sim struct {
	Cycles int64
	Insts  int64 // retired warp instructions
	Loads  int64 // retired demand loads
	Stores int64

	// L1 access outcome counts (demand accesses only).
	L1 [5]int64

	// Reservation-fail cause breakdown (diagnostic).
	ResFailMissQueue int64 // outgoing miss queue full
	ResFailMSHR      int64 // MSHR entries or merge slots exhausted
	ResFailVictim    int64 // no evictable way in the set

	// Stall classification: cycles in which an SM issued nothing.
	StallMemory int64 // all resident warps waiting on memory
	StallOther  int64 // e.g. waiting on compute latency, barriers, empty pipe

	// Interconnect traffic.
	IcntBytes     int64 // bytes transferred L1<->L2
	IcntPeakBytes int64 // theoretical capacity over the run

	// Prefetch bookkeeping.
	Pf Prefetch

	// Energy is filled post-run by the energy model.
	EnergyJ float64

	// L2 partition outcomes (memory-side totals; zero in per-SM blocks, the
	// partitions are shared hardware not attributable to one SM).
	L2Hits   int64
	L2Misses int64
	// L2Merges counts same-line fill requests that coalesced onto a fetch
	// already in flight at the partition, so DRAM saw the line once.
	L2Merges int64

	// DRAM traffic.
	DRAMReads     int64
	DRAMRowHits   int64
	DRAMRowMisses int64
}

// Prefetch holds prefetcher effectiveness counters.
//
// Definitions follow §4 of the paper:
//   - coverage  = correctly predicted addresses / total demand addresses
//   - accuracy  = correctly predicted addresses that arrive timely enough to
//     be used by the demand / total demand addresses
type Prefetch struct {
	Issued         int64 // prefetch requests sent to the memory system
	Dropped        int64 // suppressed (throttled, duplicate, no space)
	UsefulTimely   int64 // demand hit on completed prefetched line
	UsefulLate     int64 // demand arrived while the prefetch was still in flight
	EarlyEvicted   int64 // prefetched line evicted before any demand use
	Unused         int64 // still resident and unused at end of run
	Transferred    int64 // prefetch lines promoted to L1 data space (flag flip)
	ThrottleCycles int64 // cycles the prefetcher spent halted

	// Prediction-based coverage accounting (§4's definitions): a demand
	// address counts as covered when the prefetcher generated ("correctly
	// predicted") it beforehand, whether or not the physical prefetch was
	// deduplicated against data already in the cache; it counts as timely
	// when the data was present at the demand access.
	Covered       int64
	CoveredTimely int64
}

// Useful returns the number of prefetches that matched a later demand.
func (p Prefetch) Useful() int64 { return p.UsefulTimely + p.UsefulLate }

// AddL1 records one demand L1 access outcome.
func (s *Sim) AddL1(o L1Outcome) { s.L1[o]++ }

// L1Accesses returns the total number of demand L1 accesses (all outcomes).
func (s *Sim) L1Accesses() int64 {
	var n int64
	for _, v := range s.L1 {
		n += v
	}
	return n
}

// L1HitRate returns hits (including prefetch-space hits) over accepted
// accesses (reservation fails excluded from the denominator, since a failed
// access is retried and will be counted again).
func (s *Sim) L1HitRate() float64 {
	acc := s.L1[L1Hit] + s.L1[L1HitPrefetch] + s.L1[L1Reserved] + s.L1[L1Miss]
	if acc == 0 {
		return 0
	}
	return float64(s.L1[L1Hit]+s.L1[L1HitPrefetch]) / float64(acc)
}

// ReservationFailRate returns reservation fails normalized to total L1
// accesses, the Figure 3 metric.
func (s *Sim) ReservationFailRate() float64 {
	tot := s.L1Accesses()
	if tot == 0 {
		return 0
	}
	return float64(s.L1[L1ReservationFail]) / float64(tot)
}

// IPC returns retired instructions per cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// BandwidthUtilization returns transferred bytes over theoretical capacity,
// the Figure 4 metric.
func (s *Sim) BandwidthUtilization() float64 {
	if s.IcntPeakBytes == 0 {
		return 0
	}
	u := float64(s.IcntBytes) / float64(s.IcntPeakBytes)
	if u > 1 {
		u = 1
	}
	return u
}

// MemStallFraction returns memory stalls over all stalls, the Figure 5 metric.
func (s *Sim) MemStallFraction() float64 {
	tot := s.StallMemory + s.StallOther
	if tot == 0 {
		return 0
	}
	return float64(s.StallMemory) / float64(tot)
}

// Coverage returns prefetch coverage per the paper's definition: correctly
// predicted demand addresses over total demand addresses.
func (s *Sim) Coverage() float64 {
	if s.Loads == 0 {
		return 0
	}
	c := float64(s.Pf.Covered) / float64(s.Loads)
	if c > 1 {
		c = 1
	}
	return c
}

// Accuracy returns timely coverage per the paper's definition: correctly
// predicted addresses whose data arrived in time to be used by the demand,
// over total demand addresses.
func (s *Sim) Accuracy() float64 {
	if s.Loads == 0 {
		return 0
	}
	a := float64(s.Pf.CoveredTimely) / float64(s.Loads)
	if a > 1 {
		a = 1
	}
	return a
}

// PrefetchPrecision returns useful prefetches over issued prefetches (the
// classic accuracy definition, reported as auxiliary data).
func (s *Sim) PrefetchPrecision() float64 {
	if s.Pf.Issued == 0 {
		return 0
	}
	return float64(s.Pf.Useful()) / float64(s.Pf.Issued)
}

// Merge adds other into s (used to aggregate per-SM stats).
func (s *Sim) Merge(other *Sim) {
	if other.Cycles > s.Cycles {
		s.Cycles = other.Cycles
	}
	s.Insts += other.Insts
	s.Loads += other.Loads
	s.Stores += other.Stores
	for i := range s.L1 {
		s.L1[i] += other.L1[i]
	}
	s.ResFailMissQueue += other.ResFailMissQueue
	s.ResFailMSHR += other.ResFailMSHR
	s.ResFailVictim += other.ResFailVictim
	s.StallMemory += other.StallMemory
	s.StallOther += other.StallOther
	s.IcntBytes += other.IcntBytes
	s.IcntPeakBytes += other.IcntPeakBytes
	s.L2Hits += other.L2Hits
	s.L2Misses += other.L2Misses
	s.L2Merges += other.L2Merges
	s.DRAMReads += other.DRAMReads
	s.DRAMRowHits += other.DRAMRowHits
	s.DRAMRowMisses += other.DRAMRowMisses
	s.Pf.Issued += other.Pf.Issued
	s.Pf.Dropped += other.Pf.Dropped
	s.Pf.UsefulTimely += other.Pf.UsefulTimely
	s.Pf.UsefulLate += other.Pf.UsefulLate
	s.Pf.EarlyEvicted += other.Pf.EarlyEvicted
	s.Pf.Unused += other.Pf.Unused
	s.Pf.Transferred += other.Pf.Transferred
	s.Pf.ThrottleCycles += other.Pf.ThrottleCycles
	s.Pf.Covered += other.Pf.Covered
	s.Pf.CoveredTimely += other.Pf.CoveredTimely
}

// String renders a one-line summary.
func (s *Sim) String() string {
	return fmt.Sprintf("cycles=%d insts=%d ipc=%.3f l1hit=%.1f%% resfail=%.1f%% cov=%.1f%% acc=%.1f%%",
		s.Cycles, s.Insts, s.IPC(), 100*s.L1HitRate(), 100*s.ReservationFailRate(),
		100*s.Coverage(), 100*s.Accuracy())
}
