package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomSim fills every integer counter (recursively, including the L1
// outcome array and the Prefetch block) with a random value, so the
// partition-invariance property is checked over the whole schema and keeps
// covering fields added later. Float fields stay zero: Merge deliberately
// ignores EnergyJ (it is filled post-run), so random floats would only test
// that both sides drop them.
func randomSim(rng *rand.Rand) Sim {
	var s Sim
	fillRandom(reflect.ValueOf(&s).Elem(), rng)
	return s
}

func fillRandom(v reflect.Value, rng *rand.Rand) {
	switch v.Kind() {
	case reflect.Int64:
		v.SetInt(rng.Int63n(1_000_000))
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillRandom(v.Field(i), rng)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillRandom(v.Index(i), rng)
		}
	}
}

// TestShardsMergePartitionInvariant is the property the parallel engine
// rests on: partitioning a stream of stat events across any number of
// shards, in any assignment, and merging the per-shard accumulators (in any
// shard-count) equals accumulating the stream serially.
func TestShardsMergePartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		nEvents := 1 + rng.Intn(40)
		events := make([]Sim, nEvents)
		for i := range events {
			events[i] = randomSim(rng)
		}

		// Serial reference: one accumulator sees every event in order.
		var serial Sim
		for i := range events {
			serial.Merge(&events[i])
		}

		// Random shard partition: each event lands on a random shard, order
		// preserved within a shard (as the engine's fixed smID assignment
		// does), then shards merge in shard order.
		nShards := 1 + rng.Intn(8)
		sh := NewShards(nShards)
		for i := range events {
			sh.Shard(rng.Intn(nShards)).Merge(&events[i])
		}
		got := sh.Total()
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("trial %d: sharded total diverges from serial accumulation\n sharded: %+v\n serial:  %+v",
				trial, got, serial)
		}
	}
}

func TestShardsAccessors(t *testing.T) {
	sh := NewShards(3)
	if sh.Len() != 3 || len(sh.Slice()) != 3 {
		t.Fatalf("Len=%d Slice len=%d, want 3", sh.Len(), len(sh.Slice()))
	}
	sh.Shard(1).Insts = 7
	if sh.Slice()[1].Insts != 7 {
		t.Error("Shard(1) does not alias Slice()[1]")
	}
	if got := sh.Total(); got.Insts != 7 {
		t.Errorf("Total().Insts = %d, want 7", got.Insts)
	}
}
