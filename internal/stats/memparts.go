package stats

// Mem is the counter block of one memory partition (an L2 sub-partition plus
// its DRAM controller). The simulation engine gives each partition its own
// block so partitions can count concurrently during the parallel memory
// phase — each partition writes only its own entry — and merges them into
// the run totals at the end.
type Mem struct {
	// L2 access outcomes at the partition.
	L2Hits   int64 // request hit in the L2 data array
	L2Misses int64 // request went to DRAM
	L2Merges int64 // same-line request coalesced onto an in-flight fetch

	// DRAM controller traffic.
	DRAMReads     int64
	DRAMRowHits   int64
	DRAMRowMisses int64
}

// Merge adds other into m. Every field is a sum, so merging any partition of
// an event stream across any number of Mem accumulators, in any order,
// yields the same totals as accumulating the stream serially — the property
// TestMemPartsMergePartitionInvariant pins, and what makes the engine's
// parallel memory side bit-identical to serial at the statistics layer.
func (m *Mem) Merge(other *Mem) {
	m.L2Hits += other.L2Hits
	m.L2Misses += other.L2Misses
	m.L2Merges += other.L2Merges
	m.DRAMReads += other.DRAMReads
	m.DRAMRowHits += other.DRAMRowHits
	m.DRAMRowMisses += other.DRAMRowMisses
}

// MemParts is a set of per-partition Mem accumulators, the memory-side
// mirror of Shards: one arena allocation per engine, recycled across runs.
type MemParts struct {
	parts []Mem
}

// NewMemParts returns n zeroed per-partition accumulators.
func NewMemParts(n int) *MemParts {
	return &MemParts{parts: make([]Mem, n)}
}

// Part returns the i-th accumulator for the owning partition to count into.
func (m *MemParts) Part(i int) *Mem { return &m.parts[i] }

// Len returns the number of partitions.
func (m *MemParts) Len() int { return len(m.parts) }

// Reset zeroes every partition accumulator in place, so a recycled engine
// reuses the backing array instead of allocating a fresh MemParts per run.
func (m *MemParts) Reset() {
	clear(m.parts)
}

// Total merges every partition accumulator, in partition order, into one Mem.
func (m *MemParts) Total() Mem {
	var out Mem
	for i := range m.parts {
		out.Merge(&m.parts[i])
	}
	return out
}
