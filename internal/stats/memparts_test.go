package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomMem fills every counter with a random value via the same reflective
// walk randomSim uses, so the invariance property keeps covering fields
// added to Mem later.
func randomMem(rng *rand.Rand) Mem {
	var m Mem
	fillRandom(reflect.ValueOf(&m).Elem(), rng)
	return m
}

// TestMemPartsMergePartitionInvariant mirrors the shard-stats property for
// the memory side: distributing a stream of partition-stat events across any
// number of Mem accumulators, in any assignment, and merging them (in any
// partition count) equals accumulating the stream serially. This is what
// lets the engine hash lines to partitions freely — and run the partitions
// concurrently — without the totals depending on the partition count or the
// merge order.
func TestMemPartsMergePartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		nEvents := 1 + rng.Intn(40)
		events := make([]Mem, nEvents)
		for i := range events {
			events[i] = randomMem(rng)
		}

		// Serial reference: one accumulator sees every event in order.
		var serial Mem
		for i := range events {
			serial.Merge(&events[i])
		}

		// Random partition assignment, order preserved within a partition (as
		// the engine's fixed line-address hash does), merged in partition order.
		nParts := 1 + rng.Intn(8)
		mp := NewMemParts(nParts)
		for i := range events {
			mp.Part(rng.Intn(nParts)).Merge(&events[i])
		}
		if got := mp.Total(); !reflect.DeepEqual(got, serial) {
			t.Fatalf("trial %d: partitioned total diverges from serial accumulation\n parts:  %+v\n serial: %+v",
				trial, got, serial)
		}
	}
}

// TestMemPartsMergeOrderInvariant checks the complementary axis: merging the
// same per-partition accumulators in any order yields the same total.
func TestMemPartsMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	parts := make([]Mem, 6)
	for i := range parts {
		parts[i] = randomMem(rng)
	}
	var fwd Mem
	for i := range parts {
		fwd.Merge(&parts[i])
	}
	var rev Mem
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Merge(&parts[i])
	}
	if !reflect.DeepEqual(fwd, rev) {
		t.Fatalf("merge order changed the total:\n fwd: %+v\n rev: %+v", fwd, rev)
	}
}

func TestMemPartsAccessors(t *testing.T) {
	mp := NewMemParts(3)
	if mp.Len() != 3 {
		t.Fatalf("Len = %d, want 3", mp.Len())
	}
	mp.Part(1).L2Merges = 9
	if got := mp.Total(); got.L2Merges != 9 {
		t.Errorf("Total().L2Merges = %d, want 9", got.L2Merges)
	}
	mp.Reset()
	if got := mp.Total(); got != (Mem{}) {
		t.Errorf("Reset left counters: %+v", got)
	}
}
