package stats

import (
	"reflect"
	"testing"
)

// TestSubInvertsMerge checks the delta discipline the launch attribution
// relies on: for snapshots a and b of one accumulator, (a merged with d).Sub(a)
// recovers d for every additive field. Uses the same exhaustively filled
// sample as the Merge tests so a field added to Sim without a Sub line fails
// here.
func TestSubInvertsMerge(t *testing.T) {
	base := fullSim(3)
	delta := fullSim(7)
	sum := base
	sum.Merge(&delta)
	sum.Sub(&base)
	// Merge takes max for Cycles; Sub subtracts plainly. Align expectations.
	want := delta
	want.Cycles = maxI64(base.Cycles, delta.Cycles) - base.Cycles
	// Neither Merge nor Sub touches EnergyJ (filled post-run), so the base
	// value survives.
	want.EnergyJ = base.EnergyJ
	if !reflect.DeepEqual(sum, want) {
		t.Errorf("Sub did not invert Merge:\n got %+v\nwant %+v", sum, want)
	}
}

// TestSubZeroesEqualSnapshots: x.Sub(x) must be all-zero for every field —
// catches fields Sub forgets (they would survive as doubled values in launch
// deltas).
func TestSubZeroesEqualSnapshots(t *testing.T) {
	x := fullSim(11)
	y := x
	x.Sub(&y)
	x.EnergyJ = 0 // EnergyJ is post-run, excluded from delta accounting
	var zero Sim
	if !reflect.DeepEqual(x, zero) {
		t.Errorf("x.Sub(x) != 0: %+v", x)
	}
}

// fullSim returns a Sim with every int64 field (including nested Prefetch and
// the L1 array) set to a distinct non-zero value derived from seed, via
// reflection so new fields are picked up automatically.
func fullSim(seed int64) Sim {
	var s Sim
	n := seed
	fill := func(v reflect.Value) {
		var rec func(reflect.Value)
		rec = func(v reflect.Value) {
			switch v.Kind() {
			case reflect.Int64:
				n += seed
				v.SetInt(n)
			case reflect.Float64:
				n += seed
				v.SetFloat(float64(n))
			case reflect.Struct:
				for i := 0; i < v.NumField(); i++ {
					rec(v.Field(i))
				}
			case reflect.Array:
				for i := 0; i < v.Len(); i++ {
					rec(v.Index(i))
				}
			}
		}
		rec(v)
	}
	fill(reflect.ValueOf(&s).Elem())
	return s
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestTenantRollup(t *testing.T) {
	ls := Launches{
		{Index: 0, Kernel: "a", Tenant: 1, Stats: Sim{Insts: 10, Cycles: 100}},
		{Index: 1, Kernel: "b", Tenant: 0, Stats: Sim{Insts: 5, Cycles: 40}},
		{Index: 2, Kernel: "c", Tenant: 1, Stats: Sim{Insts: 7, Cycles: 60}},
	}
	got := ls.Tenants()
	if len(got) != 2 {
		t.Fatalf("got %d tenants, want 2", len(got))
	}
	if got[0].ID != 0 || got[1].ID != 1 {
		t.Errorf("tenants not sorted by ID: %+v", got)
	}
	if got[0].Launches != 1 || got[0].Stats.Insts != 5 {
		t.Errorf("tenant 0 rollup wrong: %+v", got[0])
	}
	if got[1].Launches != 2 || got[1].Stats.Insts != 17 || got[1].Stats.Cycles != 100 {
		t.Errorf("tenant 1 rollup wrong: %+v", got[1])
	}
}
