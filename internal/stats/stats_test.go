package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestL1OutcomeString(t *testing.T) {
	for o, want := range map[L1Outcome]string{
		L1Hit: "hit", L1HitPrefetch: "hit-prefetch", L1Reserved: "reserved",
		L1Miss: "miss", L1ReservationFail: "reservation-fail",
	} {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", o, got, want)
		}
	}
}

func TestRates(t *testing.T) {
	var s Sim
	s.Cycles = 100
	s.Insts = 250
	s.Loads = 100
	for i := 0; i < 40; i++ {
		s.AddL1(L1Hit)
	}
	for i := 0; i < 10; i++ {
		s.AddL1(L1HitPrefetch)
	}
	for i := 0; i < 30; i++ {
		s.AddL1(L1Miss)
	}
	for i := 0; i < 20; i++ {
		s.AddL1(L1Reserved)
	}
	for i := 0; i < 100; i++ {
		s.AddL1(L1ReservationFail)
	}
	if got := s.L1Accesses(); got != 200 {
		t.Errorf("L1Accesses = %d", got)
	}
	if got := s.L1HitRate(); got != 0.5 {
		t.Errorf("L1HitRate = %v, want 0.5 (fails excluded)", got)
	}
	if got := s.ReservationFailRate(); got != 0.5 {
		t.Errorf("ReservationFailRate = %v, want 0.5", got)
	}
	if got := s.IPC(); got != 2.5 {
		t.Errorf("IPC = %v", got)
	}
}

func TestCoverageAccuracy(t *testing.T) {
	var s Sim
	s.Loads = 100
	s.Pf.Covered = 80
	s.Pf.CoveredTimely = 60
	if got := s.Coverage(); got != 0.8 {
		t.Errorf("Coverage = %v", got)
	}
	if got := s.Accuracy(); got != 0.6 {
		t.Errorf("Accuracy = %v", got)
	}
	// Accuracy can never exceed coverage by construction of the counters;
	// both clamp at 1.
	s.Pf.Covered = 500
	if got := s.Coverage(); got != 1 {
		t.Errorf("clamped Coverage = %v", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	var s Sim
	if s.IPC() != 0 || s.L1HitRate() != 0 || s.ReservationFailRate() != 0 ||
		s.BandwidthUtilization() != 0 || s.MemStallFraction() != 0 ||
		s.Coverage() != 0 || s.Accuracy() != 0 || s.PrefetchPrecision() != 0 {
		t.Error("zero-valued Sim must produce zero rates, not NaN")
	}
}

func TestMergeAdds(t *testing.T) {
	f := func(a, b uint16) bool {
		var x, y Sim
		x.Insts = int64(a)
		x.Pf.Issued = int64(a)
		x.StallMemory = int64(a)
		y.Insts = int64(b)
		y.Pf.Issued = int64(b)
		y.StallMemory = int64(b)
		x.Cycles = 10
		y.Cycles = 20
		x.Merge(&y)
		return x.Insts == int64(a)+int64(b) &&
			x.Pf.Issued == int64(a)+int64(b) &&
			x.StallMemory == int64(a)+int64(b) &&
			x.Cycles == 20 // max, not sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringContainsKeyFields(t *testing.T) {
	var s Sim
	s.Cycles = 10
	s.Insts = 20
	out := s.String()
	for _, want := range []string{"cycles=10", "insts=20", "ipc=2.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

func TestMemStallFraction(t *testing.T) {
	var s Sim
	s.StallMemory = 55
	s.StallOther = 45
	if got := s.MemStallFraction(); got != 0.55 {
		t.Errorf("MemStallFraction = %v", got)
	}
}
