package stats

import "sort"

// Per-launch and per-tenant statistics for application (multi-kernel) runs.
// The engine attributes shard counters to launches at deterministic cycle
// boundaries (launch activations and end of run), so these records are
// bit-identical across Parallelism and SlackWindow settings, like everything
// else in Result.

// Launch is one kernel launch's slice of an application run.
type Launch struct {
	Index  int    // position in App.Launches
	Kernel string // kernel name
	Tenant int
	// StartCycle is the cycle the launch scheduler activated the launch;
	// RetireCycle is the cycle its last CTA completed.
	StartCycle  int64
	RetireCycle int64
	// Stats holds the counters accrued on the launch's SMs from its
	// activation until the next launch claimed them (or the run ended).
	// Cycles is the launch's span (RetireCycle - StartCycle); memory-side
	// totals (L2, DRAM) stay global — the partitions are shared hardware.
	Stats Sim
}

// Launches is an application run's per-launch records, in App order.
type Launches []Launch

// Tenant aggregates the launches of one co-resident application instance.
type Tenant struct {
	ID       int
	Launches int
	Stats    Sim // merged launch stats; Cycles is the longest launch span
}

// Tenants rolls the launch records up by tenant ID, ascending.
func (ls Launches) Tenants() []Tenant {
	byID := make(map[int]*Tenant)
	var ids []int
	for i := range ls {
		l := &ls[i]
		t := byID[l.Tenant]
		if t == nil {
			t = &Tenant{ID: l.Tenant}
			byID[l.Tenant] = t
			ids = append(ids, l.Tenant)
		}
		t.Launches++
		t.Stats.Merge(&l.Stats)
	}
	sort.Ints(ids)
	out := make([]Tenant, 0, len(ids))
	for _, id := range ids {
		out = append(out, *byID[id])
	}
	return out
}

// Sub subtracts other from s, field by field — the counterpart of Merge for
// taking counter deltas between two snapshots of one accumulator. Unlike
// Merge, Cycles subtracts plainly (snapshots of a single accumulator carry
// comparable cycle values, there is no max semantics to preserve).
func (s *Sim) Sub(other *Sim) {
	s.Cycles -= other.Cycles
	s.Insts -= other.Insts
	s.Loads -= other.Loads
	s.Stores -= other.Stores
	for i := range s.L1 {
		s.L1[i] -= other.L1[i]
	}
	s.ResFailMissQueue -= other.ResFailMissQueue
	s.ResFailMSHR -= other.ResFailMSHR
	s.ResFailVictim -= other.ResFailVictim
	s.StallMemory -= other.StallMemory
	s.StallOther -= other.StallOther
	s.IcntBytes -= other.IcntBytes
	s.IcntPeakBytes -= other.IcntPeakBytes
	s.L2Hits -= other.L2Hits
	s.L2Misses -= other.L2Misses
	s.L2Merges -= other.L2Merges
	s.DRAMReads -= other.DRAMReads
	s.DRAMRowHits -= other.DRAMRowHits
	s.DRAMRowMisses -= other.DRAMRowMisses
	s.Pf.Issued -= other.Pf.Issued
	s.Pf.Dropped -= other.Pf.Dropped
	s.Pf.UsefulTimely -= other.Pf.UsefulTimely
	s.Pf.UsefulLate -= other.Pf.UsefulLate
	s.Pf.EarlyEvicted -= other.Pf.EarlyEvicted
	s.Pf.Unused -= other.Pf.Unused
	s.Pf.Transferred -= other.Pf.Transferred
	s.Pf.ThrottleCycles -= other.Pf.ThrottleCycles
	s.Pf.Covered -= other.Pf.Covered
	s.Pf.CoveredTimely -= other.Pf.CoveredTimely
}
