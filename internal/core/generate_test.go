package core

import (
	"testing"

	"snake/internal/prefetch"
)

func TestEffectiveDepthShrinksUnderSpacePressure(t *testing.T) {
	s := NewSnake()
	s.lastFree = 1.0
	if d := s.effectiveDepth(); d != s.cfg.ChainDepth {
		t.Errorf("full space: depth %d, want %d", d, s.cfg.ChainDepth)
	}
	s.lastFree = 0.20
	if d := s.effectiveDepth(); d >= s.cfg.ChainDepth || d < 1 {
		t.Errorf("moderate pressure: depth %d", d)
	}
	s.lastFree = 0.05
	if d := s.effectiveDepth(); d != 1 {
		t.Errorf("high pressure: depth %d, want 1", d)
	}
	// Without the throttle the depth never shrinks.
	cfg := Defaults()
	cfg.DisableThrottle = true
	st := New(cfg)
	st.lastFree = 0.0
	if d := st.effectiveDepth(); d != cfg.ChainDepth {
		t.Errorf("unthrottled depth %d, want %d", d, cfg.ChainDepth)
	}
}

func TestGenerateWithoutEntryIsSilent(t *testing.T) {
	s := NewSnake()
	if reqs := s.OnAccess(ev(0, 0x900, 0x1000, 1)); len(reqs) != 0 {
		t.Errorf("untrained Snake issued %v", reqs)
	}
}

func TestZeroStrideChainNotCreatedAsIntra(t *testing.T) {
	s := NewSnake()
	// Chain with a zero-delta link (LPS's PC2 -> next PC1 case): the zero
	// stride must not be confirmed as an intra stride.
	for w := 0; w < 3; w++ {
		base := uint64(0x30000 + w*0x3000)
		s.OnAccess(ev(w, 0x600, base, int64(w*10+1)))
		s.OnAccess(ev(w, 0x600, base, int64(w*10+2))) // same address again
	}
	if e := s.tail.findAnyPC1(0x600); e != nil && e.t2 >= trainPromoted {
		t.Error("zero stride confirmed as intra-warp stride")
	}
}

func TestChainWalkDeduplicates(t *testing.T) {
	// A two-entry loop (A->B, B->A) walked deep must not emit duplicates.
	cfg := Defaults()
	cfg.ChainDepth = 8
	cfg.ChainsOnly = true
	s := New(cfg)
	for w := 0; w < 3; w++ {
		base := uint64(0x40000 + w*0x4000)
		for it := 0; it < 2; it++ {
			s.OnAccess(ev(w, 0x700, base, int64(w*100+it*10+1)))
			s.OnAccess(ev(w, 0x708, base+64, int64(w*100+it*10+2)))
			base += 128
		}
	}
	reqs := s.OnAccess(ev(9, 0x700, 0x90000, 500))
	seen := map[uint64]bool{}
	for _, r := range reqs {
		if seen[r.Addr] {
			t.Fatalf("duplicate request %#x in %v", r.Addr, reqs)
		}
		seen[r.Addr] = true
	}
}

func TestSnakePlusCTAPassesThrottleThrough(t *testing.T) {
	s := NewSnakePlusCTA()
	env := &fakeEnv{util: 0.9, free: 0.5}
	s.OnCycle(1, env) // bandwidth halt
	e := prefetch.AccessEvent{Cycle: 2, WarpID: 0, PC: 0x100, Addr: 0x1000, CTAID: 0, CTABase: 0x1000}
	if reqs := s.OnAccess(e); len(reqs) != 0 {
		t.Errorf("halted snake+cta still issued %v", reqs)
	}
}

func TestTrainedFlagFollowsPromotion(t *testing.T) {
	s := NewSnake()
	if s.Trained() {
		t.Fatal("fresh Snake claims training")
	}
	feedChain(s, 2, 0x100, 0x108, 64, 4096, 1)
	if s.Trained() {
		t.Fatal("trained after only two warps")
	}
	feedChain(s, 3, 0x100, 0x108, 64, 4096, 100)
	if !s.Trained() {
		t.Fatal("not trained after three warps")
	}
}
