package core

import (
	"testing"
	"testing/quick"
)

func TestHeadTableTupleStride(t *testing.T) {
	h := newHeadTable(32, 2)
	h.update(5, 0x100, 1000)
	tp, ok := h.update(5, 0x108, 1500)
	if !ok {
		t.Fatal("no tuple on second load")
	}
	if tp.pc1 != 0x100 || tp.pc2 != 0x108 || tp.stride != 500 ||
		tp.addr1 != 1000 || tp.addr2 != 1500 || tp.warpID != 5 {
		t.Errorf("tuple = %+v", tp)
	}
}

func TestHeadTableNegativeStride(t *testing.T) {
	h := newHeadTable(32, 2)
	h.update(0, 0x100, 5000)
	tp, _ := h.update(0, 0x108, 3000)
	if tp.stride != -2000 {
		t.Errorf("stride = %d, want -2000", tp.stride)
	}
}

func TestHeadTableRowSharing(t *testing.T) {
	// Warps 0 and 32 share row 0 of a 32-row table; with two slots both
	// keep their history.
	h := newHeadTable(32, 2)
	h.update(0, 0x100, 1000)
	h.update(32, 0x200, 9000)
	if _, ok := h.update(0, 0x108, 1100); !ok {
		t.Error("warp 0 lost history to row-mate warp 32")
	}
	if _, ok := h.update(32, 0x208, 9100); !ok {
		t.Error("warp 32 lost history")
	}
	// A third warp on the same row displaces someone.
	h2 := newHeadTable(32, 2)
	h2.update(0, 0x100, 1)
	h2.update(32, 0x100, 2)
	h2.update(64, 0x100, 3) // row full: displaces slot 0 (warp 0)
	if _, ok := h2.update(0, 0x108, 10); ok {
		t.Error("warp 0 should have been displaced by the third row-mate")
	}
}

func TestHeadTableReset(t *testing.T) {
	h := newHeadTable(4, 2)
	h.update(1, 0x100, 50)
	h.reset()
	if _, ok := h.update(1, 0x108, 60); ok {
		t.Error("history survived reset")
	}
}

func TestTailFindMatchesAllThreeFields(t *testing.T) {
	tt := newTailTable(10, true)
	e := tt.allocate()
	*e = tailEntry{valid: true, pc1: 1, pc2: 2, interThread: 64}
	if tt.find(1, 2, 64) != e {
		t.Error("exact find failed")
	}
	// Conditions ❷/❸ of Figure 12: different pc2 or stride must not match.
	if tt.find(1, 3, 64) != nil || tt.find(1, 2, 128) != nil || tt.find(9, 2, 64) != nil {
		t.Error("find matched a non-identical entry")
	}
}

func TestTailVariableStridesCoexist(t *testing.T) {
	// §3.4: "different entries in the table may store the same PC1 and PC2
	// with various strides for different groups of warps".
	tt := newTailTable(10, true)
	a := tt.allocate()
	*a = tailEntry{valid: true, pc1: 1, pc2: 2, interThread: 64, warpVec: 0x0F}
	b := tt.allocate()
	*b = tailEntry{valid: true, pc1: 1, pc2: 2, interThread: -512, warpVec: 0xF0}
	if tt.find(1, 2, 64) != a || tt.find(1, 2, -512) != b {
		t.Error("variable-stride entries for the same PC pair must coexist")
	}
}

func TestFindByPC1PrefersWarpBit(t *testing.T) {
	tt := newTailTable(10, true)
	a := tt.allocate()
	*a = tailEntry{valid: true, pc1: 1, pc2: 2, interThread: 64, warpVec: 0xFF00}
	b := tt.allocate()
	*b = tailEntry{valid: true, pc1: 1, pc2: 2, interThread: 128, warpVec: 1 << 3}
	if got := tt.findByPC1(1, 3); got != b {
		t.Error("findByPC1 must prefer the entry holding the warp's bit")
	}
	// Without a bit match, the highest-popcount entry wins.
	if got := tt.findByPC1(1, 60); got != a {
		t.Error("findByPC1 fallback must pick the strongest entry")
	}
}

func TestAllocatePrefersInvalid(t *testing.T) {
	tt := newTailTable(3, true)
	a := tt.allocate()
	a.valid = true
	b := tt.allocate()
	if a == b {
		t.Error("allocate reused a valid entry while free slots existed")
	}
}

func TestLRUGroupSelectsOldest(t *testing.T) {
	tt := newTailTable(4, true)
	var es []*tailEntry
	for i := 0; i < 4; i++ {
		e := tt.allocate()
		e.valid = true
		e.pc1 = uint64(i)
		tt.touch(e)
		es = append(es, e)
	}
	tt.touch(es[0]) // entry 0 becomes MRU
	group := tt.lruGroup(2)
	for _, idx := range group {
		if tt.entries[idx].pc1 == 0 {
			t.Error("MRU entry landed in the LRU group")
		}
	}
}

func TestPopcountInvariant(t *testing.T) {
	f := func(vec uint64) bool {
		e := tailEntry{warpVec: vec}
		n := 0
		for v := vec; v != 0; v &= v - 1 {
			n++
		}
		return e.popcount() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnyTrained(t *testing.T) {
	tt := newTailTable(4, true)
	if tt.anyTrained() {
		t.Error("empty table claims training")
	}
	e := tt.allocate()
	*e = tailEntry{valid: true, t1: trainPromoted}
	if !tt.anyTrained() {
		t.Error("promoted entry not detected")
	}
	tt.reset()
	if tt.anyTrained() {
		t.Error("reset did not clear training")
	}
}
