package core

import "snake/internal/prefetch"

// generate is the §3.2 prefetching step: given a demand access at (warp, PC,
// addr), issue prefetches from the trained strides — the inter-thread chain
// (walked to depth per Figure 13), the intra-warp stride, and the inter-warp
// stride, including chains rooted at future warps' projected addresses
// (Snake's "prefetch for all future warps" once an entry is promoted, which
// is where its timeliness advantage over the inter-warp prefetcher comes
// from: the chain detected in one warp is replayed for warps that execute
// much later).
func (s *Snake) generate(ev prefetch.AccessEvent) {
	e := s.tail.findByPC1(ev.PC, ev.WarpID)
	if e == nil {
		return
	}
	bit := uint64(1) << uint(ev.WarpID%64)
	chainOK := !s.cfg.DisableChains && e.t1 >= trainPromoted

	// Inter-thread chain for this warp's own upcoming loads first — Snake
	// "accords priority to the inter-thread stride over the inter-warp
	// stride due to its higher accuracy" (§3.4). A warp with its bit set
	// uses the entry once promoted; a warp the entry has not seen requires
	// promotion as well — promotion is exactly the license to prefetch for
	// all future warps (§3.2).
	if chainOK {
		s.walkChain(e, ev.Addr, ev.WarpID, s.effectiveDepth())
	}
	if s.cfg.ChainsOnly {
		return
	}
	// Intra-warp stride: future loop iterations of this PC for this warp,
	// with chains rooted at each projected iteration (the chain detected
	// once replays down the loop).
	if e.t2 >= trainPromoted && e.warpVec&bit != 0 {
		for k := 1; k <= s.cfg.IntraDegree; k++ {
			base := uint64(int64(ev.Addr) + e.intraStride*int64(k))
			s.push(base)
			if chainOK {
				s.walkChain(e, base, ev.WarpID, s.effectiveDepth()/2)
			}
		}
	}
	// Inter-warp stride: project this PC's address onto future warps. On
	// the first access after the stride trains on a promoted chain, a
	// one-time burst covers all future warps at once (§3.2: "issues
	// prefetching requests for all future warps, as soon as the train
	// status ... is updated to promoted"); afterwards each access keeps a
	// rolling InterWarpDegree-deep window.
	if e.iwValid {
		degree := s.cfg.InterWarpDegree
		burst := false
		if e.bulkPending && e.t1 >= trainPromoted {
			e.bulkPending = false
			if s.cfg.BulkPromotionWarps > degree {
				degree = s.cfg.BulkPromotionWarps
				burst = true
			}
		}
		for k := 1; k <= degree; k++ {
			base := uint64(int64(ev.Addr) + e.interWarp*int64(k))
			if burst {
				s.pushUncapped(base) // the one-time burst bypasses the cap
			} else {
				s.push(base)
			}
			if chainOK && k <= s.cfg.InterWarpDegree {
				s.walkChain(e, base, ev.WarpID, s.effectiveDepth()/2)
			}
		}
	}
}

// walkChain issues prefetches down the chain starting at entry e with the
// demand address addr, revisiting the Tail table for entries whose PC1
// matches the previous entry's PC2 (Figure 13).
func (s *Snake) walkChain(e *tailEntry, addr uint64, warpID int, depth int) {
	a := int64(addr)
	for d := 0; d < depth; d++ {
		a += e.interThread
		s.push(uint64(a))
		next := s.tail.findByPC1(e.pc2, warpID)
		if next == nil || next.t1 < trainPromoted || next == e {
			return
		}
		e = next
	}
}

// effectiveDepth returns the chain depth currently allowed; the throttle
// shrinks it as the unified space fills (§3.2: "the depth of inter-thread
// prefetching ... is controlled by a throttling mechanism").
func (s *Snake) effectiveDepth() int {
	if s.cfg.DisableThrottle {
		return s.cfg.ChainDepth
	}
	if s.lastFree < 0.10 {
		return 1
	}
	if s.lastFree < 0.25 {
		d := s.cfg.ChainDepth / 2
		if d < 1 {
			d = 1
		}
		return d
	}
	return s.cfg.ChainDepth
}

func (s *Snake) push(addr uint64) {
	if len(s.reqBuf) >= s.cfg.MaxRequestsPerAccess {
		return
	}
	s.pushUncapped(addr)
}

// pushUncapped appends without the per-access cap (promotion bursts).
func (s *Snake) pushUncapped(addr uint64) {
	for _, r := range s.reqBuf {
		if r.Addr == addr {
			return
		}
	}
	s.reqBuf = append(s.reqBuf, prefetch.Request{Addr: addr})
}
