package core

import "snake/internal/prefetch"

// NewSnake returns the full mechanism: chains + intra/inter-warp strides,
// decoupled storage, and throttling.
func NewSnake() *Snake { return New(Defaults()) }

// NewSimpleSnake returns s-Snake: only the chains of strides, without the
// intra-warp and inter-warp components (§4, comparison point 6).
func NewSimpleSnake() *Snake {
	cfg := Defaults()
	cfg.ChainsOnly = true
	s := New(cfg)
	s.name = "s-snake"
	return s
}

// NewSnakeDT returns Snake-DT: Snake without the decoupling and throttling
// mechanisms (§4, comparison point 7).
func NewSnakeDT() *Snake {
	cfg := Defaults()
	cfg.DisableDecoupling = true
	cfg.DisableThrottle = true
	s := New(cfg)
	s.name = "snake-dt"
	return s
}

// NewSnakeT returns Snake-T: decoupling without throttling (§4, comparison
// point 8).
func NewSnakeT() *Snake {
	cfg := Defaults()
	cfg.DisableThrottle = true
	s := New(cfg)
	s.name = "snake-t"
	return s
}

// NewSnakePlusCTA returns Snake combined with the CTA-aware prefetcher,
// demonstrating their orthogonality (§4, comparison point 9).
func NewSnakePlusCTA() *Snake {
	s := New(Defaults())
	s.name = "snake+cta"
	s.ctaPart = prefetch.NewCTAAware()
	return s
}

// NewIsolatedSnake returns Isolated-Snake: prefetched data is stored in a
// buffer distinct from the unified memory (§5.7).
func NewIsolatedSnake() *Snake {
	cfg := Defaults()
	cfg.Isolated = true
	s := New(cfg)
	s.name = "isolated-snake"
	return s
}
