package core

import (
	"snake/internal/prefetch"
)

// Config holds Snake's tunable parameters. Zero values are replaced by the
// paper's defaults in New.
type Config struct {
	// TailEntries is the Tail-table size (paper: 10, §5.5).
	TailEntries int
	// HeadRows is the Head-table row count (paper: #warps/2 = 32).
	HeadRows int
	// HeadSlotsPerRow doubles the warp-ID/base-address columns for greedy
	// schedulers (paper: 2; 1 reproduces the non-greedy, three-column form).
	HeadSlotsPerRow int
	// PromoteWarps is how many distinct warps must observe a stride before
	// it is promoted (paper: 3).
	PromoteWarps int
	// ChainDepth bounds how far down a chain prefetches are issued
	// (Figure 13); the throttle shrinks the effective depth under pressure.
	ChainDepth int
	// InterWarpDegree is how many future warps to prefetch for.
	InterWarpDegree int
	// BulkPromotionWarps, when positive, issues a one-time burst for this
	// many future warps the first time an inter-warp stride trains on a
	// promoted chain — the literal "all future warps" reading of §3.2. Off
	// by default: in this substrate the burst's cross-CTA misprojections
	// cost more than the extra lead time earns (see EXPERIMENTS.md D2).
	BulkPromotionWarps int
	// IntraDegree is how many loop iterations ahead to prefetch.
	IntraDegree int

	// DisableDecoupling stores prefetched lines as ordinary L1 data instead
	// of the decoupled prefetch space (§3.2) — the Snake-DT variant.
	DisableDecoupling bool
	// Isolated uses a buffer distinct from the unified memory
	// (Isolated-Snake, §5.7).
	Isolated bool

	// DisableThrottle turns off the §3.3 mechanism (Snake-DT/Snake-T).
	DisableThrottle bool
	// ThrottleCycles is the halt duration when the unified space is
	// exhausted (paper: 50, §5.4).
	ThrottleCycles int
	// BWHalt / BWResume are the bandwidth hysteresis thresholds
	// (paper: 0.70 / 0.50).
	BWHalt, BWResume float64

	// ChainsOnly disables the intra-warp and inter-warp stride components —
	// the s-Snake variant, which exploits only the chains of strides.
	ChainsOnly bool
	// DisableChains turns off the inter-thread chain component (ablation).
	DisableChains bool
	// EvictPopcountOnly replaces the combined LRU+popcount Tail eviction
	// policy with the popcount-only policy of Figure 22.
	EvictPopcountOnly bool

	// MaxRequestsPerAccess bounds the prefetch burst per demand access.
	MaxRequestsPerAccess int
}

// Defaults returns the paper's configuration.
func Defaults() Config {
	return Config{
		TailEntries:          10,
		HeadRows:             32,
		HeadSlotsPerRow:      2,
		PromoteWarps:         3,
		ChainDepth:           2,
		InterWarpDegree:      2,
		IntraDegree:          2,
		ThrottleCycles:       50,
		BWHalt:               0.70,
		BWResume:             0.50,
		MaxRequestsPerAccess: 8,
	}
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.TailEntries <= 0 {
		c.TailEntries = d.TailEntries
	}
	if c.HeadRows <= 0 {
		c.HeadRows = d.HeadRows
	}
	if c.HeadSlotsPerRow <= 0 {
		c.HeadSlotsPerRow = d.HeadSlotsPerRow
	}
	if c.PromoteWarps <= 0 {
		c.PromoteWarps = d.PromoteWarps
	}
	if c.ChainDepth <= 0 {
		c.ChainDepth = d.ChainDepth
	}
	if c.InterWarpDegree < 0 {
		c.InterWarpDegree = d.InterWarpDegree
	}
	if c.IntraDegree <= 0 {
		c.IntraDegree = d.IntraDegree
	}
	if c.ThrottleCycles <= 0 {
		c.ThrottleCycles = d.ThrottleCycles
	}
	if c.BWHalt == 0 {
		c.BWHalt = d.BWHalt
	}
	if c.BWResume == 0 {
		c.BWResume = d.BWResume
	}
	if c.MaxRequestsPerAccess <= 0 {
		c.MaxRequestsPerAccess = d.MaxRequestsPerAccess
	}
	return c
}

// Snake is the chain-based prefetcher. One instance serves one SM.
type Snake struct {
	cfg  Config
	name string

	head *headTable
	tail *tailTable

	// Throttle state.
	haltedUntil int64   // space-triggered halt deadline
	bwHalted    bool    // bandwidth-triggered halt (hysteresis)
	throttled   int64   // total halted cycles (exported via ThrottleCycles)
	lastFree    float64 // last observed unified-cache free fraction
	lastUtil    float64 // last observed bandwidth utilization

	// Optional composed CTA-aware prefetcher (Snake+CTA).
	ctaPart prefetch.Prefetcher

	trained bool

	// Scratch request buffer reused across accesses.
	reqBuf []prefetch.Request
}

var _ prefetch.Prefetcher = (*Snake)(nil)
var _ prefetch.StorageHint = (*Snake)(nil)

// New builds a Snake prefetcher with the given configuration.
func New(cfg Config) *Snake {
	cfg = cfg.withDefaults()
	return &Snake{
		cfg:      cfg,
		name:     "snake",
		head:     newHeadTable(cfg.HeadRows, cfg.HeadSlotsPerRow),
		tail:     newTailTable(cfg.TailEntries, !cfg.EvictPopcountOnly),
		lastFree: 1,
	}
}

// Name implements prefetch.Prefetcher.
func (s *Snake) Name() string { return s.name }

// Magic implements prefetch.Prefetcher.
func (s *Snake) Magic() bool { return false }

// Trained implements prefetch.Prefetcher: true once any Tail entry reached
// promotion. The paper reports training completing within 3–10 cycles; here
// it is a property of the observed stream.
func (s *Snake) Trained() bool { return s.trained }

// Storage implements prefetch.StorageHint.
func (s *Snake) Storage() (decoupled, isolated bool) {
	return !s.cfg.DisableDecoupling && !s.cfg.Isolated, s.cfg.Isolated
}

// ThrottleCycles returns the total cycles the prefetcher spent halted.
func (s *Snake) ThrottleCycles() int64 { return s.throttled }

// Config returns the active configuration.
func (s *Snake) Config() Config { return s.cfg }

// OnCycle implements prefetch.Prefetcher: the §3.3 throttling checks.
func (s *Snake) OnCycle(cycle int64, env prefetch.Env) {
	if s.ctaPart != nil {
		s.ctaPart.OnCycle(cycle, env)
	}
	if s.cfg.DisableThrottle {
		return
	}
	s.lastFree = env.FreeFraction()
	s.lastUtil = env.Utilization()
	// Condition 2 of §3.3: bandwidth saturation with hysteresis (halt at
	// 70% of the theoretical peak, resume at 50%). Condition 1 (no free
	// space) is event-driven: see OnPrefetchOutcome.
	u := s.lastUtil
	if s.bwHalted {
		if u <= s.cfg.BWResume {
			s.bwHalted = false
		}
	} else if u >= s.cfg.BWHalt {
		s.bwHalted = true
	}
	if s.halted(cycle) {
		s.throttled++
	}
}

// OnPrefetchOutcome implements prefetch.OutcomeObserver: when a prefetch
// found the unified memory without free space (the L1 bulk-freed 25% of it,
// §3.2), Snake halts prefetching for ThrottleCycles so the prefetched data
// has time to be utilized, and confines the L1 data space for the same
// interval (§3.3 condition 1).
func (s *Snake) OnPrefetchOutcome(_ uint64, oc prefetch.Outcome, cycle int64, env prefetch.Env) {
	if s.cfg.DisableThrottle || oc != prefetch.OutcomeNoSpace {
		return
	}
	if cycle >= s.haltedUntil {
		s.haltedUntil = cycle + int64(s.cfg.ThrottleCycles)
		env.ConfineL1(s.haltedUntil)
	}
}

func (s *Snake) halted(cycle int64) bool {
	return !s.cfg.DisableThrottle && (s.bwHalted || cycle < s.haltedUntil)
}

// CanSkipCycles implements prefetch.CycleSkipper: OnCycle may only be elided
// while the throttle is inactive. While halted, every cycle is a
// throttle-interval boundary — the halted-cycle counter advances and the
// bandwidth hysteresis may resume — so the engine must keep calling OnCycle
// cycle by cycle until the interval ends. Unhalted, an idle span cannot trip
// either §3.3 condition: utilization only decays while no traffic moves (the
// 70% halt threshold is unreachable) and the space condition is
// access-driven; lastFree/lastUtil are resampled by the OnCycle that
// precedes any later issue, so eliding the intermediate samples is exact.
func (s *Snake) CanSkipCycles(cycle int64) bool {
	if s.ctaPart != nil && !prefetch.CanSkipCycles(s.ctaPart, cycle) {
		return false
	}
	if s.cfg.DisableThrottle {
		return true
	}
	return !s.bwHalted && cycle >= s.haltedUntil
}

// OnAccess implements prefetch.Prefetcher: detection always runs; prefetch
// generation is suppressed while throttled.
func (s *Snake) OnAccess(ev prefetch.AccessEvent) []prefetch.Request {
	s.detect(ev)
	if s.halted(ev.Cycle) {
		return nil
	}
	s.reqBuf = s.reqBuf[:0]
	s.generate(ev)
	if s.ctaPart != nil {
		s.reqBuf = append(s.reqBuf, s.ctaPart.OnAccess(ev)...)
	}
	return s.reqBuf
}

// Reset implements prefetch.Prefetcher.
func (s *Snake) Reset() {
	s.head.reset()
	s.tail.reset()
	s.haltedUntil = 0
	s.bwHalted = false
	s.throttled = 0
	s.trained = false
	s.lastFree = 1
	s.lastUtil = 0
	if s.ctaPart != nil {
		s.ctaPart.Reset()
	}
}
