// Package core implements Snake, the variable-length chain-based prefetcher
// of Mostofi et al. (MICRO '23): detection of inter-thread stride chains
// between consecutive load PCs via the Head and Tail tables (§3.1),
// chain-based prefetch generation with training/promotion (§3.2), and the
// space/bandwidth throttling mechanism (§3.3). Variants used in the
// evaluation (s-Snake, Snake-DT, Snake-T, Snake+CTA, Isolated-Snake) are
// constructed in variants.go.
package core

import "math/bits"

// Train status encoding for the 2-bit T1/T2 fields (§3.1, Figure 15).
const (
	trainNone     uint8 = 0b00 // not trained
	trainPromoted uint8 = 0b10 // observed in enough warps; prefetch for future warps
	trainTrained  uint8 = 0b11 // promotion confirmed by repetition
)

// headSlot is one (warp, PC, address) triple in a Head-table row.
type headSlot struct {
	valid  bool
	warpID int
	pc     uint64
	addr   uint64
}

// headRow is one Head-table row. A row serves two warps (N rows = #warps/2);
// with SlotsPerRow == 2 it holds both warps' last loads so an aggressive
// greedy scheduler (GTO) interleaving two warps does not thrash the row
// (§3.1: "doubling the warp ID and base address columns").
type headRow struct {
	slots []headSlot
}

// headTable stores the last executed PC_ld and requested address per warp.
type headTable struct {
	rows        []headRow
	slotsPerRow int
}

func newHeadTable(rows, slotsPerRow int) *headTable {
	t := &headTable{rows: make([]headRow, rows), slotsPerRow: slotsPerRow}
	for i := range t.rows {
		t.rows[i].slots = make([]headSlot, slotsPerRow)
	}
	return t
}

// tuple is the message the Head table sends to the Tail table when a warp's
// entry is updated: warp ID, previous PC, current PC, the stride between
// their addresses, and the two addresses (used for inter-warp training).
type tuple struct {
	warpID   int
	pc1, pc2 uint64
	stride   int64
	addr1    uint64
	addr2    uint64
}

// update records warp's newly executed load and, if the warp had a previous
// load recorded, returns the Head→Tail tuple.
func (t *headTable) update(warpID int, pc, addr uint64) (tuple, bool) {
	row := &t.rows[warpID%len(t.rows)]
	// Find the warp's slot.
	var slot *headSlot
	for i := range row.slots {
		if row.slots[i].valid && row.slots[i].warpID == warpID {
			slot = &row.slots[i]
			break
		}
	}
	if slot == nil {
		// Take a free slot, else displace the first (the single-slot case is
		// exactly the thrash the doubled columns avoid under GTO).
		for i := range row.slots {
			if !row.slots[i].valid {
				slot = &row.slots[i]
				break
			}
		}
		if slot == nil {
			slot = &row.slots[0]
		}
		*slot = headSlot{valid: true, warpID: warpID, pc: pc, addr: addr}
		return tuple{}, false
	}
	tp := tuple{
		warpID: warpID,
		pc1:    slot.pc,
		pc2:    pc,
		stride: int64(addr) - int64(slot.addr),
		addr1:  slot.addr,
		addr2:  addr,
	}
	slot.pc = pc
	slot.addr = addr
	return tp, true
}

func (t *headTable) reset() {
	for i := range t.rows {
		for j := range t.rows[i].slots {
			t.rows[i].slots[j] = headSlot{}
		}
	}
}

// tailEntry is one Tail-table entry with the eight key fields of §3.1:
// PC1, PC2, the inter-thread stride between them, its train status (T1), the
// warp_ID vector, the intra-warp stride with its train status (T2), and the
// inter-warp stride (no dedicated train field: it is inserted only once
// detected in at least three warps).
type tailEntry struct {
	valid       bool
	pc1, pc2    uint64
	interThread int64
	t1          uint8
	warpVec     uint64
	intraStride int64
	t2          uint8
	interWarp   int64
	iwValid     bool

	// Inter-warp training registers (per-entry scratch within the entry's
	// 32-byte budget; see cost.go).
	iwLastAddr uint64
	iwLastWarp int
	iwHasLast  bool
	iwCand     int64
	iwSeen     int

	// Intra-warp training: distinct warps that confirmed the candidate.
	intraCand    int64
	intraWarpVec uint64

	// bulkPending marks a freshly trained inter-warp stride on a promoted
	// chain: the next access triggers a one-time burst of prefetches for
	// all future warps ("issues prefetching requests for all future warps,
	// as soon as the train status ... is updated to promoted", §3.2).
	bulkPending bool

	lastUse int64 // LRU timestamp
}

func (e *tailEntry) popcount() int { return bits.OnesCount64(e.warpVec) }

// tailTable is the fixed-size chain store (10 entries by default, §5.5).
type tailTable struct {
	entries []tailEntry
	lruSeq  int64
	// evictLRU selects the paper's combined policy (LRU group, then fewest
	// warp-vector bits); false uses the popcount-only policy of Figure 22.
	evictLRU bool
	// lruScratch backs lruGroup's candidate list; the table evicts on every
	// allocation once full, so the buffer keeps that path allocation-free.
	lruScratch []int
}

func newTailTable(n int, evictLRU bool) *tailTable {
	return &tailTable{entries: make([]tailEntry, n), evictLRU: evictLRU}
}

func (t *tailTable) touch(e *tailEntry) {
	t.lruSeq++
	e.lastUse = t.lruSeq
}

// find returns the entry matching (pc1, pc2, stride) exactly, or nil.
func (t *tailTable) find(pc1, pc2 uint64, stride int64) *tailEntry {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.pc1 == pc1 && e.pc2 == pc2 && e.interThread == stride {
			return e
		}
	}
	return nil
}

// findByPC1 returns entries whose head PC matches pc1, preferring an entry
// whose warp bit for warpID is set, then the highest-popcount one.
func (t *tailTable) findByPC1(pc1 uint64, warpID int) *tailEntry {
	var best *tailEntry
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid || e.pc1 != pc1 {
			continue
		}
		if e.warpVec&(1<<uint(warpID%64)) != 0 {
			return e
		}
		if best == nil || e.popcount() > best.popcount() {
			best = e
		}
	}
	return best
}

// findAnyPC1 returns any valid entry with the given head PC.
func (t *tailTable) findAnyPC1(pc1 uint64) *tailEntry {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.pc1 == pc1 {
			return e
		}
	}
	return nil
}

// allocate returns a slot for a new entry, evicting per the configured
// policy when the table is full (§3.1): with evictLRU, the least-recently
// used half of the table forms the candidate group and the entry with the
// fewest '1's in its warp_ID vector is evicted from it; without, the fewest
// '1's entry is evicted globally.
func (t *tailTable) allocate() *tailEntry {
	for i := range t.entries {
		if !t.entries[i].valid {
			return &t.entries[i]
		}
	}
	victim := -1
	if t.evictLRU {
		group := t.lruGroup((len(t.entries) + 1) / 2)
		for _, i := range group {
			if victim < 0 || t.entries[i].popcount() < t.entries[victim].popcount() {
				victim = i
			}
		}
	} else {
		for i := range t.entries {
			if victim < 0 || t.entries[i].popcount() < t.entries[victim].popcount() {
				victim = i
			}
		}
	}
	t.entries[victim] = tailEntry{}
	return &t.entries[victim]
}

// lruGroup returns the indices of the n least-recently-used valid entries.
func (t *tailTable) lruGroup(n int) []int {
	if cap(t.lruScratch) < len(t.entries) {
		t.lruScratch = make([]int, 0, len(t.entries))
	}
	idx := t.lruScratch[:0]
	for i := range t.entries {
		if t.entries[i].valid {
			idx = append(idx, i)
		}
	}
	// Selection of the n smallest lastUse values.
	if n > len(idx) {
		n = len(idx)
	}
	for i := 0; i < n; i++ {
		min := i
		for j := i + 1; j < len(idx); j++ {
			if t.entries[idx[j]].lastUse < t.entries[idx[min]].lastUse {
				min = j
			}
		}
		idx[i], idx[min] = idx[min], idx[i]
	}
	return idx[:n]
}

// anyTrained reports whether any entry reached promotion on any stride kind.
func (t *tailTable) anyTrained() bool {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && (e.t1 >= trainPromoted || e.t2 >= trainPromoted || e.iwValid) {
			return true
		}
	}
	return false
}

func (t *tailTable) reset() {
	for i := range t.entries {
		t.entries[i] = tailEntry{}
	}
	t.lruSeq = 0
}
