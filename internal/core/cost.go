package core

// Hardware cost analytics reproducing Table 3 and Figure 21. The paper
// models the tables in CACTI 7.0 at 22nm scaled to 12nm and synthesizes the
// logic in a 28nm library; here the storage budgets are derived analytically
// from the field widths, matching Table 3's totals exactly.

// Cost describes the storage of one SM's Snake tables.
type Cost struct {
	HeadBytesPerEntry int
	HeadEntries       int
	TailBytesPerEntry int
	TailEntries       int
}

// HeadBytes returns the total Head-table storage.
func (c Cost) HeadBytes() int { return c.HeadBytesPerEntry * c.HeadEntries }

// TailBytes returns the total Tail-table storage.
func (c Cost) TailBytes() int { return c.TailBytesPerEntry * c.TailEntries }

// TotalBytes returns the combined storage.
func (c Cost) TotalBytes() int { return c.HeadBytes() + c.TailBytes() }

// Field widths (bits). PCs are 32-bit instruction offsets; base addresses
// are stored as 32-bit block-relative offsets; warp IDs cover 64 warps.
const (
	pcBits      = 32
	addrBits    = 32
	warpIDBits  = 6
	strideBits  = 32
	trainBits   = 2
	warpVecBits = 64
)

// CostOf returns the storage cost of a Snake configuration.
//
// Head entry (doubled columns, §5.5): one PC_ld + two warp IDs + two base
// addresses = 32 + 2*6 + 2*32 = 108 bits -> 14 bytes (Table 3).
//
// Tail entry (§3.1's eight fields): PC1 + PC2 + inter-thread stride + T1 +
// warp_ID vector + intra-warp stride + T2 + inter-warp stride
// = 32+32+32+2+64+32+2+32 = 228 bits, padded to 32 bytes (Table 3) to cover
// the training scratch registers.
func CostOf(cfg Config) Cost {
	cfg = cfg.withDefaults()
	headBits := pcBits + cfg.HeadSlotsPerRow*(warpIDBits+addrBits)
	tailBits := 2*pcBits + 3*strideBits + 2*trainBits + warpVecBits
	return Cost{
		HeadBytesPerEntry: (headBits + 7) / 8,
		HeadEntries:       cfg.HeadRows,
		TailBytesPerEntry: roundUpPow2((tailBits + 7) / 8),
		TailEntries:       cfg.TailEntries,
	}
}

// DefaultCost returns Table 3's configuration: a 14-byte × 32-entry Head
// table (448 bytes) and a 32-byte × 10-entry Tail table (320 bytes).
func DefaultCost() Cost { return CostOf(Defaults()) }

// StorageVsEntries reproduces the Figure 21 sweep: total storage as the Tail
// entry count varies.
func StorageVsEntries(entries []int) []int {
	out := make([]int, len(entries))
	for i, n := range entries {
		cfg := Defaults()
		cfg.TailEntries = n
		out[i] = CostOf(cfg).TotalBytes()
	}
	return out
}

// AccessEnergyPJ and StaticPowerMW are the paper's measured per-access
// energy and static power of the synthesized tables (§5.5).
const (
	AccessEnergyPJ = 6.4
	StaticPowerMW  = 6.0
)

// LatencyCycles is the pipeline latency of the detection/prefetch search:
// a parallel comparator over the 10 PC1s plus two AND gates (§5.5).
const LatencyCycles = 2

func roundUpPow2(v int) int {
	p := 1
	for p < v {
		p *= 2
	}
	return p
}
