package core

import "testing"

func TestDefaultCostMatchesTable3(t *testing.T) {
	c := DefaultCost()
	if c.HeadBytesPerEntry != 14 {
		t.Errorf("head bytes/entry = %d, want 14", c.HeadBytesPerEntry)
	}
	if c.HeadEntries != 32 {
		t.Errorf("head entries = %d, want 32", c.HeadEntries)
	}
	if c.HeadBytes() != 448 {
		t.Errorf("head total = %d, want 448 (Table 3)", c.HeadBytes())
	}
	if c.TailBytesPerEntry != 32 {
		t.Errorf("tail bytes/entry = %d, want 32", c.TailBytesPerEntry)
	}
	if c.TailEntries != 10 {
		t.Errorf("tail entries = %d, want 10", c.TailEntries)
	}
	if c.TailBytes() != 320 {
		t.Errorf("tail total = %d, want 320 (Table 3)", c.TailBytes())
	}
	if c.TotalBytes() != 768 {
		t.Errorf("total = %d, want 768", c.TotalBytes())
	}
}

func TestCostScalesWithEntries(t *testing.T) {
	sw := StorageVsEntries([]int{5, 10, 20, 40})
	for i := 1; i < len(sw); i++ {
		if sw[i] <= sw[i-1] {
			t.Fatalf("storage not monotonic: %v", sw)
		}
	}
	// 10 entries is the Table 3 point.
	if sw[1] != 768 {
		t.Errorf("storage at 10 entries = %d, want 768", sw[1])
	}
}

func TestSingleSlotHeadIsSmaller(t *testing.T) {
	cfg := Defaults()
	cfg.HeadSlotsPerRow = 1
	c := CostOf(cfg)
	if c.HeadBytesPerEntry >= 14 {
		t.Errorf("three-column head entry = %d bytes, must be under the doubled 14", c.HeadBytesPerEntry)
	}
}

func TestPaperConstants(t *testing.T) {
	if AccessEnergyPJ != 6.4 || StaticPowerMW != 6.0 || LatencyCycles != 2 {
		t.Error("§5.5 constants drifted")
	}
}

func TestRoundUpPow2(t *testing.T) {
	for in, want := range map[int]int{1: 1, 2: 2, 3: 4, 17: 32, 29: 32, 32: 32} {
		if got := roundUpPow2(in); got != want {
			t.Errorf("roundUpPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
