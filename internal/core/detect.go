package core

import (
	"math/bits"

	"snake/internal/prefetch"
)

// maxChainWalk bounds chain traversals (the Tail table has ~10 entries, so
// loops longer than the table cannot be represented anyway).
const maxChainWalk = 8

// detect is the §3.1 detection step: update the Head table, and on a Head
// update send the (warp, PC1, PC2, stride) tuple to the Tail table, creating
// or matching entries per conditions ❶–❹ of Figure 12, then run the
// intra-warp and inter-warp training.
func (s *Snake) detect(ev prefetch.AccessEvent) {
	tp, ok := s.head.update(ev.WarpID, ev.PC, ev.Addr)
	if !ok {
		return
	}
	bit := uint64(1) << uint(tp.warpID%64)

	// Prefetching-step consistency check (§3.2): a warp whose observed
	// (PC2, stride) diverges from an entry it had confirmed is removed from
	// that entry's warp vector; the entry demotes when its support drops.
	for i := range s.tail.entries {
		e := &s.tail.entries[i]
		if !e.valid || e.pc1 != tp.pc1 || e.warpVec&bit == 0 {
			continue
		}
		if e.pc2 != tp.pc2 || e.interThread != tp.stride {
			e.warpVec &^= bit
			if e.popcount() < s.cfg.PromoteWarps {
				e.t1 = trainNone
			}
		}
	}

	// Match or create the (PC1, PC2, stride) entry.
	e := s.tail.find(tp.pc1, tp.pc2, tp.stride)
	wasSet := false
	if e == nil {
		e = s.tail.allocate()
		*e = tailEntry{valid: true, pc1: tp.pc1, pc2: tp.pc2, interThread: tp.stride}
	} else {
		wasSet = e.warpVec&bit != 0
	}
	e.warpVec |= bit
	s.tail.touch(e)

	// T1 training: promotion once PromoteWarps distinct warps agree;
	// trained once a promoted stride repeats (§3.2).
	if e.t1 == trainNone && e.popcount() >= s.cfg.PromoteWarps {
		e.t1 = trainPromoted
		s.trained = true
	} else if e.t1 == trainPromoted && wasSet {
		e.t1 = trainTrained
	}

	if !s.cfg.ChainsOnly {
		s.trainInterWarp(e, tp)
		s.trainIntraWarp(tp, bit)
	}
}

// trainInterWarp updates the inter-warp stride of PC1's entry from
// consecutive executions of the same PC by different warps. The stride is
// recorded only once it has been detected in at least PromoteWarps warps.
func (s *Snake) trainInterWarp(e *tailEntry, tp tuple) {
	if e.iwHasLast && e.iwLastWarp != tp.warpID {
		dw := tp.warpID - e.iwLastWarp
		num := int64(tp.addr1) - int64(e.iwLastAddr)
		if int64(dw) != 0 && num%int64(dw) == 0 {
			stride := num / int64(dw)
			if stride != 0 && stride == e.iwCand {
				e.iwSeen++
				// iwSeen counts warp-to-warp transitions; PromoteWarps warps
				// give PromoteWarps-1 transitions.
				if e.iwSeen >= s.cfg.PromoteWarps-1 {
					if !e.iwValid {
						e.bulkPending = true
					}
					e.interWarp = stride
					e.iwValid = true
				}
			} else {
				e.iwCand = stride
				e.iwSeen = 1
				e.iwValid = false
			}
		}
	}
	e.iwLastAddr = tp.addr1
	e.iwLastWarp = tp.warpID
	e.iwHasLast = true
}

// trainIntraWarp handles the two re-execution cases of §3.1.
func (s *Snake) trainIntraWarp(tp tuple, bit uint64) {
	// Case 1: the same PC_ld re-executed consecutively: the tuple's stride
	// is directly the intra-warp stride of that PC.
	if tp.pc1 == tp.pc2 {
		if e := s.tail.findAnyPC1(tp.pc1); e != nil {
			s.confirmIntra(e, tp.stride, bit)
		}
		return
	}
	// Case 2: the warp re-executes PC2 after other PCs (a loop): accumulate
	// the inter-thread strides around the chain that starts and ends at PC2
	// among entries whose warp bit is set; the loop displacement is the
	// intra-warp stride.
	start := s.tail.findByPC1(tp.pc2, tp.warpID)
	if start == nil || start.warpVec&bit == 0 {
		return
	}
	total := int64(0)
	e := start
	for hop := 0; hop < maxChainWalk; hop++ {
		total += e.interThread
		if e.pc2 == tp.pc2 {
			// Chain closed: total is PC2's per-iteration displacement.
			s.confirmIntra(start, total, bit)
			return
		}
		next := s.tail.findByPC1(e.pc2, tp.warpID)
		if next == nil || next.warpVec&bit == 0 {
			return
		}
		e = next
	}
}

// confirmIntra applies the three-warp confirmation rule to an intra-warp
// stride candidate (§3.4: "Upon establishing consistency of intra-warp
// stride in three distinct warps, Snake proceeds to update T2").
func (s *Snake) confirmIntra(e *tailEntry, stride int64, bit uint64) {
	if stride == 0 {
		return
	}
	if stride == e.intraCand {
		e.intraWarpVec |= bit
		if bits.OnesCount64(e.intraWarpVec) >= s.cfg.PromoteWarps {
			e.intraStride = stride
			if e.t2 == trainNone {
				e.t2 = trainPromoted
				s.trained = true
			} else if e.t2 == trainPromoted {
				e.t2 = trainTrained
			}
		}
	} else {
		e.intraCand = stride
		e.intraWarpVec = bit
		e.t2 = trainNone
	}
}
