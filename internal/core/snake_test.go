package core

import (
	"testing"

	"snake/internal/prefetch"
)

// fakeEnv satisfies prefetch.Env with settable signals.
type fakeEnv struct {
	util     float64
	free     float64
	confined int64
}

func (f *fakeEnv) Utilization() float64  { return f.util }
func (f *fakeEnv) FreeFraction() float64 { return f.free }
func (f *fakeEnv) ConfineL1(until int64) { f.confined = until }

func ev(warp int, pc, addr uint64, cycle int64) prefetch.AccessEvent {
	return prefetch.AccessEvent{Cycle: cycle, WarpID: warp, PC: pc, Addr: addr}
}

func addrSet(reqs []prefetch.Request) map[uint64]bool {
	m := make(map[uint64]bool, len(reqs))
	for _, r := range reqs {
		m[r.Addr] = true
	}
	return m
}

// feedChain drives nWarps warps through one (pc1 -> pc2) chain iteration
// with the given stride, bases spaced warpSpan apart.
func feedChain(s *Snake, nWarps int, pc1, pc2 uint64, stride int64, warpSpan uint64, cycle int64) []prefetch.Request {
	var last []prefetch.Request
	for w := 0; w < nWarps; w++ {
		base := uint64(0x10000) + uint64(w)*warpSpan
		s.OnAccess(ev(w, pc1, base, cycle))
		last = s.OnAccess(ev(w, pc2, uint64(int64(base)+stride), cycle+1))
		cycle += 10
	}
	return last
}

func TestChainPromotionAfterThreeWarps(t *testing.T) {
	s := NewSnake()
	// Two warps are not enough.
	feedChain(s, 2, 0x100, 0x108, 4096, 1<<20, 1)
	reqs := s.OnAccess(ev(5, 0x100, 0x900000, 100))
	if len(reqs) != 0 {
		t.Fatalf("chain promoted with only 2 warps: %v", reqs)
	}
	// Third warp observes the same inter-thread stride: promoted, and even a
	// warp the entry has never seen gets chain prefetches.
	s2 := NewSnake()
	feedChain(s2, 3, 0x100, 0x108, 4096, 1<<20, 1)
	reqs = s2.OnAccess(ev(7, 0x100, 0x900000, 100))
	if !addrSet(reqs)[0x900000+4096] {
		t.Fatalf("promoted chain did not prefetch PC2's address: %v", reqs)
	}
}

func TestChainWalkDepth(t *testing.T) {
	s := New(Config{ChainDepth: 3, ChainsOnly: true})
	// Build chain 0x100 -> 0x108 -> 0x110 with strides 64 and 128 across 3 warps.
	for w := 0; w < 3; w++ {
		base := uint64(0x10000 + w*0x1000)
		s.OnAccess(ev(w, 0x100, base, int64(w*10+1)))
		s.OnAccess(ev(w, 0x108, base+64, int64(w*10+2)))
		s.OnAccess(ev(w, 0x110, base+64+128, int64(w*10+3)))
	}
	reqs := s.OnAccess(ev(0, 0x100, 0x20000, 100))
	got := addrSet(reqs)
	if !got[0x20000+64] || !got[0x20000+64+128] {
		t.Fatalf("chain walk missed members: %v", reqs)
	}
}

func TestMismatchDemotesWarp(t *testing.T) {
	s := NewSnake()
	feedChain(s, 3, 0x100, 0x108, 4096, 1<<20, 1)
	// Warp 0 now diverges: same PCs, different stride.
	s.OnAccess(ev(0, 0x100, 0x800000, 200))
	s.OnAccess(ev(0, 0x108, 0x800000+999, 201))
	// The original entry lost warp 0 and support dropped below three: its
	// train status resets, so an unseen warp gets nothing from it.
	e := s.tail.find(0x100, 0x108, 4096)
	if e == nil {
		t.Fatal("original entry vanished")
	}
	if e.warpVec&1 != 0 {
		t.Error("warp 0's bit not cleared after mismatch")
	}
	if e.t1 != trainNone {
		t.Errorf("t1 = %b after support dropped, want not-trained", e.t1)
	}
}

func TestIntraWarpCase1ConsecutiveReexecution(t *testing.T) {
	s := NewSnake()
	// Single-PC loop: three warps each execute pc 0x100 twice with stride 512.
	for w := 0; w < 3; w++ {
		base := uint64(0x40000 + w*0x4000)
		s.OnAccess(ev(w, 0x100, base, int64(w*10+1)))
		s.OnAccess(ev(w, 0x100, base+512, int64(w*10+2)))
	}
	e := s.tail.findAnyPC1(0x100)
	if e == nil {
		t.Fatal("no tail entry for the looping PC")
	}
	if e.t2 < trainPromoted || e.intraStride != 512 {
		t.Fatalf("intra-warp stride not trained: t2=%b stride=%d", e.t2, e.intraStride)
	}
	// Generation now projects the next iteration.
	reqs := s.OnAccess(ev(0, 0x100, 0x40000+1024, 100))
	if !addrSet(reqs)[0x40000+1024+512] {
		t.Errorf("intra-warp projection missing: %v", reqs)
	}
}

func TestIntraWarpCase2LoopAccumulation(t *testing.T) {
	s := New(Config{ChainDepth: 2, PromoteWarps: 3})
	// Loop over two PCs: pc1 -> pc2 (stride +64), pc2 -> pc1' (stride +192):
	// the loop displacement for pc1 is 256.
	for w := 0; w < 3; w++ {
		base := uint64(0x50000 + w*0x8000)
		c := int64(w*20 + 1)
		for it := 0; it < 3; it++ {
			s.OnAccess(ev(w, 0x200, base, c))
			s.OnAccess(ev(w, 0x208, base+64, c+1))
			base += 256
			c += 2
		}
	}
	e := s.tail.findByPC1(0x200, 0)
	if e == nil {
		t.Fatal("no entry for loop head PC")
	}
	if e.t2 < trainPromoted {
		t.Fatalf("accumulated intra-warp stride not trained: t2=%b cand=%d", e.t2, e.intraCand)
	}
	if e.intraStride != 256 {
		t.Errorf("intra stride = %d, want 256 (accumulated around the loop)", e.intraStride)
	}
}

func TestInterWarpStrideNeedsThreeWarps(t *testing.T) {
	s := NewSnake()
	// Warps at fixed 4KB spacing run the same two-PC chain.
	feedChain(s, 2, 0x300, 0x308, 64, 4096, 1)
	e := s.tail.find(0x300, 0x308, 64)
	if e == nil {
		t.Fatal("entry missing")
	}
	if e.iwValid {
		t.Error("inter-warp stride valid after only 2 warps")
	}
	feedChain(s, 3, 0x300, 0x308, 64, 4096, 100)
	if !e.iwValid || e.interWarp != 4096 {
		t.Errorf("inter-warp stride not trained: valid=%v stride=%d", e.iwValid, e.interWarp)
	}
}

func TestTailEvictionPolicyLRUPlusPopcount(t *testing.T) {
	tt := newTailTable(2, true)
	a := tt.allocate()
	*a = tailEntry{valid: true, pc1: 1, warpVec: 0xFF} // strong entry
	tt.touch(a)
	b := tt.allocate()
	*b = tailEntry{valid: true, pc1: 2, warpVec: 0x1} // weak entry
	tt.touch(b)
	tt.touch(a) // a is now MRU
	v := tt.allocate()
	// With 2 entries the LRU group is the older half {b}; b has fewer bits.
	if v != b {
		t.Error("eviction should pick the weak LRU entry")
	}
}

func TestTailEvictionPopcountOnly(t *testing.T) {
	tt := newTailTable(2, false)
	a := tt.allocate()
	*a = tailEntry{valid: true, pc1: 1, warpVec: 0xFF}
	tt.touch(a)
	b := tt.allocate()
	*b = tailEntry{valid: true, pc1: 2, warpVec: 0x3}
	tt.touch(b)
	v := tt.allocate()
	if v != b {
		t.Error("popcount-only eviction should pick the fewest-bits entry")
	}
}

func TestBandwidthThrottleHysteresis(t *testing.T) {
	s := NewSnake()
	feedChain(s, 3, 0x100, 0x108, 4096, 1<<20, 1)
	env := &fakeEnv{util: 0.8, free: 0.5}
	s.OnCycle(100, env) // above 70%: halt
	// Probe with fresh warps so the probes themselves do not perturb the
	// trained chain entry.
	if reqs := s.OnAccess(ev(10, 0x100, 0x700000, 101)); len(reqs) != 0 {
		t.Fatalf("halted Snake still issued: %v", reqs)
	}
	env.util = 0.6 // between resume (50%) and halt: stays halted
	s.OnCycle(102, env)
	if reqs := s.OnAccess(ev(11, 0x100, 0x710000, 103)); len(reqs) != 0 {
		t.Fatal("hysteresis violated: resumed above the resume threshold")
	}
	env.util = 0.4 // below 50%: resume
	s.OnCycle(104, env)
	if reqs := s.OnAccess(ev(12, 0x100, 0x720000, 105)); len(reqs) == 0 {
		t.Fatal("Snake did not resume after utilization dropped")
	}
	if s.ThrottleCycles() == 0 {
		t.Error("throttled cycles not counted")
	}
}

func TestSpaceThrottleOnNoSpaceOutcome(t *testing.T) {
	s := NewSnake()
	feedChain(s, 3, 0x100, 0x108, 4096, 1<<20, 1)
	env := &fakeEnv{util: 0.1, free: 0}
	s.OnPrefetchOutcome(0x1000, prefetch.OutcomeNoSpace, 200, env)
	if env.confined != 200+int64(s.cfg.ThrottleCycles) {
		t.Errorf("L1 confined until %d, want %d", env.confined, 200+int64(s.cfg.ThrottleCycles))
	}
	if reqs := s.OnAccess(ev(10, 0x100, 0x700000, 210)); len(reqs) != 0 {
		t.Error("space-halted Snake still issued")
	}
	if reqs := s.OnAccess(ev(11, 0x100, 0x740000, 200+int64(s.cfg.ThrottleCycles)+1)); len(reqs) == 0 {
		t.Error("Snake did not resume after the halt interval")
	}
}

func TestDetectionContinuesWhileThrottled(t *testing.T) {
	s := NewSnake()
	env := &fakeEnv{util: 0.9, free: 0.5}
	s.OnCycle(1, env) // bw halt
	feedChain(s, 3, 0x400, 0x408, 128, 1<<20, 10)
	// Detection ran while halted: the entry exists and is promoted.
	e := s.tail.find(0x400, 0x408, 128)
	if e == nil || e.t1 < trainPromoted {
		t.Error("detection did not continue during throttle")
	}
}

func TestHeadTableDoubledColumnsSurviveInterleaving(t *testing.T) {
	// Two warps sharing a row interleave accesses; with 2 slots both warps'
	// history survives and tuples form for both.
	h := newHeadTable(1, 2)
	if _, ok := h.update(0, 0x100, 1000); ok {
		t.Fatal("first update produced a tuple")
	}
	if _, ok := h.update(1, 0x100, 2000); ok {
		t.Fatal("other warp's first update produced a tuple")
	}
	tp, ok := h.update(0, 0x108, 1064)
	if !ok || tp.pc1 != 0x100 || tp.stride != 64 {
		t.Fatalf("warp 0 tuple = %+v, %v", tp, ok)
	}
	tp, ok = h.update(1, 0x108, 2064)
	if !ok || tp.stride != 64 {
		t.Fatalf("warp 1 tuple lost with doubled columns: %+v, %v", tp, ok)
	}
}

func TestHeadTableSingleSlotThrashes(t *testing.T) {
	h := newHeadTable(1, 1)
	h.update(0, 0x100, 1000)
	h.update(1, 0x100, 2000) // displaces warp 0
	if _, ok := h.update(0, 0x108, 1064); ok {
		t.Error("single-slot head must lose warp 0's history under interleaving")
	}
}

func TestVariantsConfig(t *testing.T) {
	cases := []struct {
		s         *Snake
		name      string
		decoupled bool
		isolated  bool
		throttle  bool
		chains    bool
		intra     bool
	}{
		{NewSnake(), "snake", true, false, true, true, true},
		{NewSimpleSnake(), "s-snake", true, false, true, true, false},
		{NewSnakeDT(), "snake-dt", false, false, false, true, true},
		{NewSnakeT(), "snake-t", true, false, false, true, true},
		{NewIsolatedSnake(), "isolated-snake", false, true, true, true, true},
		{NewSnakePlusCTA(), "snake+cta", true, false, true, true, true},
	}
	for _, tc := range cases {
		if tc.s.Name() != tc.name {
			t.Errorf("Name = %q, want %q", tc.s.Name(), tc.name)
		}
		dec, iso := tc.s.Storage()
		cfg := tc.s.Config()
		if dec != tc.decoupled || iso != tc.isolated || cfg.DisableThrottle == tc.throttle ||
			cfg.DisableChains == tc.chains || cfg.ChainsOnly == tc.intra {
			t.Errorf("%s: config mismatch: %+v", tc.name, cfg)
		}
	}
}

func TestSnakePlusCTAComposes(t *testing.T) {
	s := NewSnakePlusCTA()
	// Feed CTA transitions so the CTA part trains.
	for c := 0; c < 3; c++ {
		e := prefetch.AccessEvent{
			Cycle: int64(c*10 + 1), WarpID: 0, PC: 0x100,
			Addr: uint64(0x1000 * (c + 1)), CTAID: c, CTABase: uint64(0x100000 * (c + 1)),
		}
		s.OnAccess(e)
	}
	e := prefetch.AccessEvent{Cycle: 100, WarpID: 0, PC: 0x100, Addr: 0x5000, CTAID: 3, CTABase: 0x400000}
	reqs := s.OnAccess(e)
	if !addrSet(reqs)[0x5000+0x100000] {
		t.Errorf("composed CTA-aware part did not project: %v", reqs)
	}
}

func TestResetClearsEverything(t *testing.T) {
	s := NewSnake()
	feedChain(s, 3, 0x100, 0x108, 4096, 1<<20, 1)
	if !s.Trained() {
		t.Fatal("setup: not trained")
	}
	s.Reset()
	if s.Trained() {
		t.Error("Trained survived Reset")
	}
	if reqs := s.OnAccess(ev(0, 0x100, 0x700000, 1000)); len(reqs) != 0 {
		t.Error("training survived Reset")
	}
}

func TestMaxRequestsPerAccessCap(t *testing.T) {
	cfg := Defaults()
	cfg.MaxRequestsPerAccess = 2
	s := New(cfg)
	feedChain(s, 3, 0x100, 0x108, 4096, 4096, 1)
	reqs := s.OnAccess(ev(0, 0x100, 0x700000, 100))
	if len(reqs) > 2 {
		t.Errorf("issued %d requests, cap is 2", len(reqs))
	}
}

func TestDefaultsValidation(t *testing.T) {
	d := Defaults()
	if d.TailEntries != 10 || d.HeadRows != 32 || d.PromoteWarps != 3 || d.ThrottleCycles != 50 {
		t.Errorf("paper defaults drifted: %+v", d)
	}
	// Zero config inherits defaults.
	z := Config{}.withDefaults()
	if z.TailEntries != d.TailEntries || z.BWHalt != d.BWHalt {
		t.Errorf("withDefaults incomplete: %+v", z)
	}
}

func TestBulkPromotionBurst(t *testing.T) {
	cfg := Defaults()
	cfg.BulkPromotionWarps = 16
	cfg.MaxRequestsPerAccess = 4 // the burst bypasses this cap
	s := New(cfg)
	// Train chain and inter-warp stride together: warps at 4KB spacing.
	// The promotion and the inter-warp stride both complete on warp 2's
	// second access (to PC2), so the PC1 entry's burst is still pending.
	feedChain(s, 3, 0x500, 0x508, 64, 4096, 1)
	// The next PC1 access — by a fresh warp, so its own history cannot
	// perturb the entry — triggers the one-time burst.
	reqs := s.OnAccess(ev(9, 0x500, 0x200000, 100))
	got := addrSet(reqs)
	covered := 0
	for k := 1; k <= 16; k++ {
		if got[uint64(0x200000+k*4096)] {
			covered++
		}
	}
	if covered < 12 {
		t.Fatalf("burst covered %d/16 future warps: %v", covered, reqs)
	}
	// One-time only: the next access falls back to the rolling window.
	reqs = s.OnAccess(ev(10, 0x500, 0x300000, 101))
	if len(reqs) > cfg.MaxRequestsPerAccess {
		t.Errorf("second access issued %d requests; burst must be one-time", len(reqs))
	}
}
