// Command snaked serves the simulation service over HTTP/JSON: submit
// simulation and sweep jobs, poll or stream their results, and scrape
// metrics. Jobs run on a bounded worker pool behind a priority queue, and
// completed results are memoized in a tiered content-addressed cache
// (bounded memory LRU, then disk spillover, then cluster peers) so repeated
// sweeps over the paper's benchmark grid return instantly.
//
// Usage:
//
//	snaked -addr :8080 -workers 8
//	curl -s localhost:8080/v1/benchmarks
//	curl -s -XPOST localhost:8080/v1/runs -d '{"bench":"lps","mech":"snake"}'
//
// Several snaked processes form a cluster with static membership:
//
//	snaked -addr :8080 -self http://hostA:8080 -peers http://hostB:8080
//	snaked -addr :8080 -self http://hostB:8080 -peers http://hostA:8080
//
// Each simulation key has one owner (rendezvous hashing over the member
// set); non-owners forward misses to the owner and fetch cached results
// from peers, so a sweep fanned across nodes simulates every cell exactly
// once. A dead peer degrades to local compute — never an error.
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight jobs
// (bounded by -draintimeout), aborting still-running simulations through
// their contexts if the deadline passes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"snake/internal/config"
	"snake/internal/service"
	"snake/internal/workloads"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent job limit (default: GOMAXPROCS; CPU use is bounded by the shared budget, not this)")
		parallel = flag.Int("parallel", 1, "default per-run SM-shard workers (jobs may override; draws from the shared CPU budget)")
		slack    = flag.Int("slack", 0, "default per-run bounded-slack epoch length (jobs may override; 0: auto from config)")
		numSM    = flag.Int("sms", 4, "simulated SMs in the default GPU config")
		warps    = flag.Int("warps", 64, "warps per SM in the default GPU config")
		ctas     = flag.Int("ctas", 0, "default workload scale: CTAs (0: paper default)")
		iters    = flag.Int("iters", 0, "default workload scale: loop iterations (0: paper default)")
		drain    = flag.Duration("draintimeout", 2*time.Minute, "graceful shutdown drain budget")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default; profiles reveal operational detail, enable only on trusted networks)")

		queueMax   = flag.Int("queue-max", 0, "max queued jobs before submissions get 429 (0: unbounded)")
		cacheMax   = flag.Int64("cache-max-bytes", 0, "in-memory result cache budget in bytes; evicted entries stay readable from -cache-dir (0: unbounded)")
		cacheDir   = flag.String("cache-dir", "", "disk tier: results are written through here and survive restarts (empty: disabled, evictions drop)")
		self       = flag.String("self", "", "this node's advertised base URL, required with -peers (e.g. http://hostA:8080)")
		peers      = flag.String("peers", "", "comma-separated peer base URLs; enables clustering")
		peerFlight = flag.Int("peer-inflight", 4, "max concurrently forwarded jobs per peer")
		peerExecTO = flag.Duration("peer-exec-timeout", 2*time.Minute, "bound on one forwarded execution; expiry degrades to local compute (<0: unbounded)")
	)
	flag.Parse()

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	if len(peerList) > 0 && *self == "" {
		fatal(errors.New("-peers requires -self (this node's advertised URL, as the peers spell it)"))
	}

	gpu := config.Scaled(*numSM, *warps)
	scale := workloads.DefaultScale()
	if *ctas > 0 {
		scale.CTAs = *ctas
	}
	if *iters > 0 {
		scale.Iters = *iters
	}

	svc := service.New(service.Options{
		Workers: *workers, GPU: &gpu, Scale: &scale, Parallelism: *parallel,
		SlackWindow: *slack,
		QueueMax:    *queueMax, CacheMaxBytes: *cacheMax, CacheDir: *cacheDir,
		Self: *self, Peers: peerList, PeerInflight: *peerFlight,
		PeerExecTimeout: *peerExecTO,
	})
	if len(peerList) > 0 {
		log.Printf("snaked: clustered as %s with %d peer(s)", *self, len(peerList))
	}
	handler := svc.Handler()
	if *pprofOn {
		// Wrap rather than touch the service mux: the pprof handlers are
		// registered here, explicitly, instead of via net/http/pprof's
		// DefaultServeMux side effects, so the profiling surface exists only
		// behind this flag.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("snaked: pprof enabled under /debug/pprof/")
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("snaked: listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("snaked: %v: draining (budget %v)", sig, *drain)
	case err := <-errCh:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop intake first so new jobs get 503s, then drain the pool.
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("snaked: http shutdown: %v", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("snaked: drain incomplete, aborted running jobs: %v", err)
	}
	log.Printf("snaked: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snaked:", err)
	os.Exit(1)
}
