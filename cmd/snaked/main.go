// Command snaked serves the simulation service over HTTP/JSON: submit
// simulation and sweep jobs, poll their results, and scrape metrics. Jobs
// run on a bounded worker pool behind a priority queue, and completed
// results are memoized in a content-addressed cache so repeated sweeps over
// the paper's benchmark grid return instantly.
//
// Usage:
//
//	snaked -addr :8080 -workers 8
//	curl -s localhost:8080/v1/benchmarks
//	curl -s -XPOST localhost:8080/v1/runs -d '{"bench":"lps","mech":"snake"}'
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight jobs
// (bounded by -draintimeout), aborting still-running simulations through
// their contexts if the deadline passes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"snake/internal/config"
	"snake/internal/service"
	"snake/internal/workloads"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent job limit (default: GOMAXPROCS; CPU use is bounded by the shared budget, not this)")
		parallel = flag.Int("parallel", 1, "default per-run SM-shard workers (jobs may override; draws from the shared CPU budget)")
		numSM    = flag.Int("sms", 4, "simulated SMs in the default GPU config")
		warps    = flag.Int("warps", 64, "warps per SM in the default GPU config")
		ctas     = flag.Int("ctas", 0, "default workload scale: CTAs (0: paper default)")
		iters    = flag.Int("iters", 0, "default workload scale: loop iterations (0: paper default)")
		drain    = flag.Duration("draintimeout", 2*time.Minute, "graceful shutdown drain budget")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default; profiles reveal operational detail, enable only on trusted networks)")
	)
	flag.Parse()

	gpu := config.Scaled(*numSM, *warps)
	scale := workloads.DefaultScale()
	if *ctas > 0 {
		scale.CTAs = *ctas
	}
	if *iters > 0 {
		scale.Iters = *iters
	}

	svc := service.New(service.Options{Workers: *workers, GPU: &gpu, Scale: &scale, Parallelism: *parallel})
	handler := svc.Handler()
	if *pprofOn {
		// Wrap rather than touch the service mux: the pprof handlers are
		// registered here, explicitly, instead of via net/http/pprof's
		// DefaultServeMux side effects, so the profiling surface exists only
		// behind this flag.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("snaked: pprof enabled under /debug/pprof/")
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("snaked: listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("snaked: %v: draining (budget %v)", sig, *drain)
	case err := <-errCh:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop intake first so new jobs get 503s, then drain the pool.
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("snaked: http shutdown: %v", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("snaked: drain incomplete, aborted running jobs: %v", err)
	}
	log.Printf("snaked: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snaked:", err)
	os.Exit(1)
}
