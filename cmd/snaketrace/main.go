// Command snaketrace inspects workload traces: it dumps per-warp load
// streams and mines chains of strides offline (the analysis behind the
// paper's Figures 8–11).
//
// Usage:
//
//	snaketrace -bench lps                 # chain-mining report
//	snaketrace -bench lps -dump -warp 0   # dump a warp's load stream
//	snaketrace -bench lps -save lps.trace # serialize (".json" for JSON)
//	snaketrace -load lps.trace            # mine a saved trace
//	snaketrace -app fanout                # application launch-graph report
//	snaketrace -app fanout -save f.app    # serialize the app (".json" for JSON)
//	snaketrace -loadapp f.app             # inspect a saved app
//	snaketrace -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"snake/internal/chains"
	"snake/internal/trace"
	"snake/internal/workloads"
)

// out buffers stdout so per-line dumps don't pay a syscall per Fprintf;
// main flushes it on every exit path.
var out io.Writer = os.Stdout

func main() {
	var (
		bench = flag.String("bench", "lps", "benchmark name")
		dump  = flag.Bool("dump", false, "dump a warp's load stream instead of mining")
		cta   = flag.Int("cta", 0, "CTA index for -dump")
		warp  = flag.Int("warp", 0, "warp index within the CTA for -dump")
		limit = flag.Int("limit", 40, "max loads to dump")
		ctas  = flag.Int("ctas", 0, "CTA count (0: default scale)")
		iters = flag.Int("iters", 0, "loop-depth multiplier (0: default scale)")
		save    = flag.String("save", "", "write the trace (or app) to this file (.json or binary)")
		load    = flag.String("load", "", "read the trace from this file instead of -bench")
		app     = flag.String("app", "", "application workload instead of -bench (see -list)")
		sms     = flag.Int("sms", 4, "SM count the app's masks are resolved for (-app only)")
		split   = flag.Int("split", 0, "tenant-0 SM share for partitioned apps (0: half)")
		loadapp = flag.String("loadapp", "", "read an application from this file and inspect it")
		list    = flag.Bool("list", false, "list benchmarks and apps")
	)
	flag.Parse()

	bw := bufio.NewWriter(os.Stdout)
	defer bw.Flush()
	out = bw

	if *list {
		fmt.Fprintln(out, "benchmarks:", workloads.Names())
		fmt.Fprintln(out, "apps:", workloads.AppNames())
		return
	}
	if *app != "" || *loadapp != "" {
		var a *trace.App
		var err error
		if *loadapp != "" {
			a, err = trace.LoadAppFile(*loadapp)
		} else {
			a, _, err = workloads.Shared().App(*app, workloads.Scale{CTAs: *ctas, Iters: *iters}, *sms, *split)
		}
		if err != nil {
			fatal(err)
		}
		if *save != "" {
			if err := a.SaveFile(*save); err != nil {
				fatal(err)
			}
			fmt.Fprintf(out, "wrote %s (%d launches, %d instructions)\n", *save, len(a.Launches), a.TotalInsts())
			return
		}
		reportApp(a)
		return
	}
	var k *trace.Kernel
	var err error
	if *load != "" {
		k, err = trace.LoadFile(*load)
	} else {
		k, err = workloads.Shared().Kernel(*bench, workloads.Scale{CTAs: *ctas, Iters: *iters})
	}
	if err != nil {
		fatal(err)
	}
	if *save != "" {
		if err := k.SaveFile(*save); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "wrote %s (%d instructions)\n", *save, k.TotalInsts())
		return
	}
	if *dump {
		dumpWarp(k, *cta, *warp, *limit)
		return
	}
	report(k)
}

func dumpWarp(k *trace.Kernel, cta, warp, limit int) {
	if cta >= len(k.CTAs) || warp >= len(k.CTAs[cta].Warps) {
		fatal(fmt.Errorf("cta %d / warp %d out of range", cta, warp))
	}
	w := &k.CTAs[cta].Warps[warp]
	fmt.Fprintf(out, "%s CTA %d warp %d: %d instructions, %d loads\n",
		k.Name, cta, warp, len(w.Insts), len(w.Loads()))
	var prev trace.Inst
	havePrev := false
	n := 0
	for _, in := range w.Insts {
		if in.Op != trace.OpLoad {
			continue
		}
		if n >= limit {
			fmt.Fprintln(out, "...")
			break
		}
		delta := ""
		if havePrev {
			delta = fmt.Sprintf("  delta=%+d", int64(in.Addr)-int64(prev.Addr))
		}
		fmt.Fprintf(out, "  pc=%#06x addr=%#010x%s\n", in.PC, in.Addr, delta)
		prev, havePrev = in, true
		n++
	}
}

func report(k *trace.Kernel) {
	st := chains.Analyze(k)
	fmt.Fprintf(out, "benchmark            %s\n", k.Name)
	fmt.Fprintf(out, "total loads          %d\n", k.TotalLoads())
	fmt.Fprintf(out, "load PCs (rep warp)  %d\n", st.TotalPCs)
	fmt.Fprintf(out, "PCs in chains        %d (%.0f%%)  [paper fig 9: ~65%% avg]\n",
		st.ChainPCs, 100*st.PCFraction())
	fmt.Fprintf(out, "max chain repetition %d          [paper fig 10: ~35 avg]\n", st.MaxRepetition)
	fmt.Fprintf(out, "chain coverage       %.1f%%       [paper fig 11: ~70%% avg]\n", 100*st.ChainCoverage)
	fmt.Fprintf(out, "MTA coverage         %.1f%%       [paper fig 11: ~55%% avg]\n", 100*st.MTACoverage)
	if len(st.Links) > 0 {
		fmt.Fprintln(out, "stable chain links (most frequent first):")
		max := len(st.Links)
		if max > 10 {
			max = 10
		}
		for _, l := range st.Links[:max] {
			fmt.Fprintf(out, "  %#06x -> %#06x  stride=%+d  x%d\n", l.PC1, l.PC2, l.Delta, l.Count)
		}
	}
}

// reportApp prints an application's launch graph plus a per-distinct-kernel
// chain-mining summary (each kernel analyzed once however often it launches).
func reportApp(a *trace.App) {
	digest, err := a.Digest()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "application          %s\n", a.Name)
	fmt.Fprintf(out, "launches             %d\n", len(a.Launches))
	fmt.Fprintf(out, "tenants              %d\n", a.Tenants())
	fmt.Fprintf(out, "total instructions   %d\n", a.TotalInsts())
	fmt.Fprintf(out, "digest               %s\n", digest[:16])
	fmt.Fprintln(out, "launch graph:")
	for i, l := range a.Launches {
		mask := "all SMs"
		if l.SMMask != 0 {
			mask = fmt.Sprintf("mask %#x", l.SMMask)
		}
		deps := "no deps"
		if len(l.DependsOn) > 0 {
			deps = fmt.Sprintf("after %v", l.DependsOn)
		}
		fmt.Fprintf(out, "  [%d] %-10s tenant %d  %-12s %s\n", i, l.Kernel.Name, l.Tenant, mask, deps)
	}
	fmt.Fprintln(out, "per-kernel chains (distinct kernels):")
	seen := make(map[*trace.Kernel]bool)
	for _, l := range a.Launches {
		if seen[l.Kernel] {
			continue
		}
		seen[l.Kernel] = true
		st := chains.Analyze(l.Kernel)
		fmt.Fprintf(out, "  %-10s loads=%-8d chain-pc=%.0f%%  chain-cov=%.1f%%\n",
			l.Kernel.Name, l.Kernel.TotalLoads(), 100*st.PCFraction(), 100*st.ChainCoverage)
	}
}

func fatal(err error) {
	if bw, ok := out.(*bufio.Writer); ok {
		bw.Flush()
	}
	fmt.Fprintln(os.Stderr, "snaketrace:", err)
	os.Exit(1)
}
