// Command snaketrace inspects workload traces: it dumps per-warp load
// streams and mines chains of strides offline (the analysis behind the
// paper's Figures 8–11).
//
// Usage:
//
//	snaketrace -bench lps                 # chain-mining report
//	snaketrace -bench lps -dump -warp 0   # dump a warp's load stream
//	snaketrace -bench lps -save lps.trace # serialize (".json" for JSON)
//	snaketrace -load lps.trace            # mine a saved trace
//	snaketrace -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"snake/internal/chains"
	"snake/internal/trace"
	"snake/internal/workloads"
)

// out buffers stdout so per-line dumps don't pay a syscall per Fprintf;
// main flushes it on every exit path.
var out io.Writer = os.Stdout

func main() {
	var (
		bench = flag.String("bench", "lps", "benchmark name")
		dump  = flag.Bool("dump", false, "dump a warp's load stream instead of mining")
		cta   = flag.Int("cta", 0, "CTA index for -dump")
		warp  = flag.Int("warp", 0, "warp index within the CTA for -dump")
		limit = flag.Int("limit", 40, "max loads to dump")
		ctas  = flag.Int("ctas", 0, "CTA count (0: default scale)")
		iters = flag.Int("iters", 0, "loop-depth multiplier (0: default scale)")
		save  = flag.String("save", "", "write the trace to this file (.json or binary)")
		load  = flag.String("load", "", "read the trace from this file instead of -bench")
		list  = flag.Bool("list", false, "list benchmarks")
	)
	flag.Parse()

	bw := bufio.NewWriter(os.Stdout)
	defer bw.Flush()
	out = bw

	if *list {
		fmt.Fprintln(out, workloads.Names())
		return
	}
	var k *trace.Kernel
	var err error
	if *load != "" {
		k, err = trace.LoadFile(*load)
	} else {
		k, err = workloads.Shared().Kernel(*bench, workloads.Scale{CTAs: *ctas, Iters: *iters})
	}
	if err != nil {
		fatal(err)
	}
	if *save != "" {
		if err := k.SaveFile(*save); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "wrote %s (%d instructions)\n", *save, k.TotalInsts())
		return
	}
	if *dump {
		dumpWarp(k, *cta, *warp, *limit)
		return
	}
	report(k)
}

func dumpWarp(k *trace.Kernel, cta, warp, limit int) {
	if cta >= len(k.CTAs) || warp >= len(k.CTAs[cta].Warps) {
		fatal(fmt.Errorf("cta %d / warp %d out of range", cta, warp))
	}
	w := &k.CTAs[cta].Warps[warp]
	fmt.Fprintf(out, "%s CTA %d warp %d: %d instructions, %d loads\n",
		k.Name, cta, warp, len(w.Insts), len(w.Loads()))
	var prev trace.Inst
	havePrev := false
	n := 0
	for _, in := range w.Insts {
		if in.Op != trace.OpLoad {
			continue
		}
		if n >= limit {
			fmt.Fprintln(out, "...")
			break
		}
		delta := ""
		if havePrev {
			delta = fmt.Sprintf("  delta=%+d", int64(in.Addr)-int64(prev.Addr))
		}
		fmt.Fprintf(out, "  pc=%#06x addr=%#010x%s\n", in.PC, in.Addr, delta)
		prev, havePrev = in, true
		n++
	}
}

func report(k *trace.Kernel) {
	st := chains.Analyze(k)
	fmt.Fprintf(out, "benchmark            %s\n", k.Name)
	fmt.Fprintf(out, "total loads          %d\n", k.TotalLoads())
	fmt.Fprintf(out, "load PCs (rep warp)  %d\n", st.TotalPCs)
	fmt.Fprintf(out, "PCs in chains        %d (%.0f%%)  [paper fig 9: ~65%% avg]\n",
		st.ChainPCs, 100*st.PCFraction())
	fmt.Fprintf(out, "max chain repetition %d          [paper fig 10: ~35 avg]\n", st.MaxRepetition)
	fmt.Fprintf(out, "chain coverage       %.1f%%       [paper fig 11: ~70%% avg]\n", 100*st.ChainCoverage)
	fmt.Fprintf(out, "MTA coverage         %.1f%%       [paper fig 11: ~55%% avg]\n", 100*st.MTACoverage)
	if len(st.Links) > 0 {
		fmt.Fprintln(out, "stable chain links (most frequent first):")
		max := len(st.Links)
		if max > 10 {
			max = 10
		}
		for _, l := range st.Links[:max] {
			fmt.Fprintf(out, "  %#06x -> %#06x  stride=%+d  x%d\n", l.PC1, l.PC2, l.Delta, l.Count)
		}
	}
}

func fatal(err error) {
	if bw, ok := out.(*bufio.Writer); ok {
		bw.Flush()
	}
	fmt.Fprintln(os.Stderr, "snaketrace:", err)
	os.Exit(1)
}
