package main

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"snake/internal/core"
)

// TestEveryKnobMutatesConfig asserts each sweepable knob actually changes
// core.Config — a knob whose setter writes the wrong field (or none) would
// silently sweep nothing.
func TestEveryKnobMutatesConfig(t *testing.T) {
	base := core.Defaults()
	seen := make(map[string]string) // fingerprint -> knob that produced it
	for name, set := range knobs {
		cfg := core.Defaults()
		set(&cfg, 7777)
		if reflect.DeepEqual(cfg, base) {
			t.Errorf("knob %q does not mutate core.Config", name)
			continue
		}
		// Setting a second value must change the config again, so the knob
		// really forwards its argument.
		cfg2 := core.Defaults()
		set(&cfg2, 8888)
		if reflect.DeepEqual(cfg, cfg2) {
			t.Errorf("knob %q ignores its value", name)
		}
		// Two knobs writing the same field would collide here.
		fp := fmt.Sprintf("%+v", cfg)
		if prev, dup := seen[fp]; dup {
			t.Errorf("knobs %q and %q mutate the same field", name, prev)
		}
		seen[fp] = name
	}
}

// TestKnobNamesSortedAndComplete pins the -listknobs contract: sorted output
// covering exactly the union of the core-config and run-shape knob maps,
// with no name claimed by both.
func TestKnobNamesSortedAndComplete(t *testing.T) {
	names := knobNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("knob names not sorted: %v", names)
	}
	if len(names) != len(knobs)+len(runKnobs) {
		t.Fatalf("knobNames returned %d names for %d core + %d run-shape knobs",
			len(names), len(knobs), len(runKnobs))
	}
	for _, n := range names {
		_, core := knobs[n]
		_, shape := runKnobs[n]
		if !core && !shape {
			t.Errorf("knobNames lists unknown knob %q", n)
		}
		if core && shape {
			t.Errorf("knob %q is both a core and a run-shape knob", n)
		}
	}
	for _, n := range runKnobNames() {
		if _, ok := runKnobs[n]; !ok {
			t.Errorf("runKnobNames lists unknown knob %q", n)
		}
	}
}

// TestEveryRunKnobMutatesShape is the run-shape counterpart of
// TestEveryKnobMutatesConfig: each app-level knob must change runShape and
// forward its value.
func TestEveryRunKnobMutatesShape(t *testing.T) {
	for name, set := range runKnobs {
		var a, b runShape
		set(&a, 1)
		if a == (runShape{}) {
			t.Errorf("run knob %q does not mutate runShape", name)
		}
		set(&b, 0)
		if a == b {
			t.Errorf("run knob %q ignores its value", name)
		}
	}
}

// TestKnobsCoverIntConfigFields flags newly added integer Config fields that
// have no sweep knob, so the sweep surface keeps up with core.Config.
func TestKnobsCoverIntConfigFields(t *testing.T) {
	// Fields deliberately not sweepable via -knob (booleans have their own
	// mechanisms; these ints are covered elsewhere or not integer-valued).
	exempt := map[string]bool{
		"ThrottleCycles": false, // swept
	}
	covered := make(map[string]bool)
	for _, set := range knobs {
		base := core.Defaults()
		cfg := base
		set(&cfg, 31337)
		bv := reflect.ValueOf(base)
		cv := reflect.ValueOf(cfg)
		for i := 0; i < bv.NumField(); i++ {
			if !reflect.DeepEqual(bv.Field(i).Interface(), cv.Field(i).Interface()) {
				covered[bv.Type().Field(i).Name] = true
			}
		}
	}
	typ := reflect.TypeOf(core.Config{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Int || exempt[f.Name] {
			continue
		}
		if !covered[f.Name] {
			t.Errorf("int field core.Config.%s has no sweep knob", f.Name)
		}
	}
}
