// Command snakesweep sweeps one Snake parameter across the benchmark suite
// and prints IPC-vs-baseline, coverage and accuracy per point — the tool
// behind the §5.4 sensitivity analyses and the ablation benchmarks.
//
// Usage:
//
//	snakesweep -knob chaindepth -values 1,2,4,8
//	snakesweep -knob tailentries -values 3,5,10,20 -bench lps,hotspot
//	snakesweep -knob throttlecycles -values 10,50,200 -format csv
//	snakesweep -knob chainpersist -values 0,1 -app warmup
//	snakesweep -knob tenant0sms -values 1,2,3 -app cotenant
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"snake/internal/core"
	"snake/internal/harness"
	"snake/internal/profiling"
	"snake/internal/workloads"
)

// knobs maps sweepable parameter names to setters.
var knobs = map[string]func(*core.Config, int){
	"chaindepth":     func(c *core.Config, v int) { c.ChainDepth = v },
	"tailentries":    func(c *core.Config, v int) { c.TailEntries = v },
	"headrows":       func(c *core.Config, v int) { c.HeadRows = v },
	"headslots":      func(c *core.Config, v int) { c.HeadSlotsPerRow = v },
	"promotewarps":   func(c *core.Config, v int) { c.PromoteWarps = v },
	"intradegree":    func(c *core.Config, v int) { c.IntraDegree = v },
	"interwarpdeg":   func(c *core.Config, v int) { c.InterWarpDegree = v },
	"throttlecycles": func(c *core.Config, v int) { c.ThrottleCycles = v },
	"bulkwarps":      func(c *core.Config, v int) { c.BulkPromotionWarps = v },
	"maxrequests":    func(c *core.Config, v int) { c.MaxRequestsPerAccess = v },
}

// runShape is the launch-layer run configuration the run-shape knobs mutate
// (versus knobs, which mutate Snake's core.Config).
type runShape struct {
	chain bool // persist chain tables across kernel-launch boundaries
	split int  // tenant-0 SM share for partitioned apps
}

// runKnobs maps application-level sweep parameters to runShape setters.
// These knobs require -app: they shape the launch schedule, not the
// prefetcher.
var runKnobs = map[string]func(*runShape, int){
	"chainpersist": func(s *runShape, v int) { s.chain = v != 0 },
	"tenant0sms":   func(s *runShape, v int) { s.split = v },
}

// knobNames returns all sweepable knob names — core.Config knobs and
// run-shape knobs — sorted.
func knobNames() []string {
	names := make([]string, 0, len(knobs)+len(runKnobs))
	for k := range knobs {
		names = append(names, k)
	}
	for k := range runKnobs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func main() {
	var (
		knob       = flag.String("knob", "chaindepth", "parameter to sweep (see -listknobs)")
		values     = flag.String("values", "1,2,4,8", "comma-separated integer values")
		bench      = flag.String("bench", "", "comma-separated benchmarks (default: all)")
		app        = flag.String("app", "", "application workload for run-shape knobs (chainpersist, tenant0sms)")
		format     = flag.String("format", "text", "output format: text, csv, json")
		lk         = flag.Bool("listknobs", false, "list sweepable knobs")
		parallel   = flag.Int("parallel", 1, "parallel workers per run (same results at any value)")
		slack      = flag.Int("slack", 0, "bounded-slack epoch length in cycles (0: auto from config; same results at any value)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *lk {
		fmt.Println(strings.Join(knobNames(), " "))
		return
	}
	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	set, coreKnob := knobs[*knob]
	rset, shapeKnob := runKnobs[*knob]
	if !coreKnob && !shapeKnob {
		fatal(fmt.Errorf("unknown knob %q (see -listknobs)", *knob))
	}
	var vals []int
	for _, s := range strings.Split(*values, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(fmt.Errorf("bad value %q: %w", s, err))
		}
		vals = append(vals, v)
	}
	benches := workloads.Names()
	if *bench != "" {
		benches = strings.Split(*bench, ",")
	}

	r := harness.NewRunner()
	r.Parallelism = *parallel
	r.SlackWindow = *slack
	if shapeKnob {
		if *app == "" {
			fatal(fmt.Errorf("knob %q shapes the launch schedule and needs -app (see -listknobs)", *knob))
		}
		if err := sweepApp(r, *app, *knob, rset, vals, *format); err != nil {
			fatal(err)
		}
		return
	}
	if *app != "" {
		fatal(fmt.Errorf("knob %q sweeps Snake's tables over benchmarks; app sweeps support %v", *knob, runKnobNames()))
	}
	t := &harness.Table{
		ID:      "sweep-" + *knob,
		Title:   fmt.Sprintf("Snake sensitivity to %s (means over %d benchmarks)", *knob, len(benches)),
		Columns: []string{*knob, "ipc-vs-base", "coverage", "accuracy"},
	}
	for _, v := range vals {
		cfg := core.Defaults()
		set(&cfg, v)
		var ipc, cov, acc float64
		for _, b := range benches {
			base, err := r.Run(b, "baseline")
			if err != nil {
				fatal(err)
			}
			st, err := r.SnakeVariant(b, fmt.Sprintf("sweep-%s-%d", *knob, v), cfg)
			if err != nil {
				fatal(err)
			}
			ipc += st.IPC() / base.IPC()
			cov += st.Coverage()
			acc += st.Accuracy()
		}
		n := float64(len(benches))
		t.AddRow(strconv.Itoa(v), ipc/n, cov/n, acc/n)
	}
	if err := t.Write(os.Stdout, *format); err != nil {
		fatal(err)
	}
}

// runKnobNames returns just the run-shape knob names, sorted.
func runKnobNames() []string {
	names := make([]string, 0, len(runKnobs))
	for k := range runKnobs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// sweepApp sweeps a run-shape knob over one application: Snake versus the
// no-prefetch baseline at each knob value.
func sweepApp(r *harness.Runner, app, knob string, set func(*runShape, int), vals []int, format string) error {
	t := &harness.Table{
		ID:      "sweep-" + knob,
		Title:   fmt.Sprintf("Snake sensitivity to %s (app %s)", knob, app),
		Columns: []string{knob, "ipc-vs-base", "coverage", "accuracy"},
	}
	for _, v := range vals {
		var shape runShape
		set(&shape, v)
		r.Split = shape.split
		base, err := r.RunApp(app, "baseline", shape.chain)
		if err != nil {
			return err
		}
		st, err := r.RunApp(app, "snake", shape.chain)
		if err != nil {
			return err
		}
		t.AddRow(strconv.Itoa(v), st.Stats.IPC()/base.Stats.IPC(), st.Stats.Coverage(), st.Stats.Accuracy())
	}
	return t.Write(os.Stdout, format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snakesweep:", err)
	os.Exit(1)
}
