// Command snakebench regenerates the paper's figures and tables.
//
// Usage:
//
//	snakebench -exp fig16          # one experiment
//	snakebench -exp fig16,fig17    # several
//	snakebench -all                # everything (can take several minutes)
//	snakebench -list               # list experiment IDs
//	snakebench -json               # write the BENCH_sim.json perf trajectory
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"snake/internal/harness"
	"snake/internal/profiling"
)

func main() {
	var (
		exp        = flag.String("exp", "", "comma-separated experiment IDs (fig3..fig25, table1..table3)")
		all        = flag.Bool("all", false, "run every experiment")
		list       = flag.Bool("list", false, "list experiment IDs")
		sms        = flag.Int("sms", 4, "number of SMs")
		warps      = flag.Int("warps", 64, "warp slots per SM")
		ctas       = flag.Int("ctas", 0, "CTA count (0: default scale)")
		iters      = flag.Int("iters", 0, "loop-depth multiplier (0: default scale)")
		format     = flag.String("format", "text", "output format: text, csv, json")
		simJSON    = flag.Bool("json", false, "run the simulator throughput benchmark and write BENCH_sim.json")
		phases     = flag.Bool("phases", false, "report the engine's per-phase wall clock and serial share (honors -parallel)")
		jsonOut    = flag.String("json-out", "BENCH_sim.json", "output path for -json")
		baseline   = flag.String("baseline", "", "with -json: committed BENCH_sim.json to guard against throughput regressions (>20% fails)")
		parallel   = flag.Int("parallel", 1, "SM-shard workers per experiment run (same results at any value)")
		slack      = flag.Int("slack", 0, "bounded-slack epoch length in cycles (0: auto from config; same results at any value)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(harness.ExperimentIDs(), " "))
		return
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snakebench:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *simJSON {
		if err := writeSimBench(*jsonOut, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "snakebench:", err)
			os.Exit(1)
		}
		return
	}
	if *phases {
		if err := reportPhases(*parallel, *slack); err != nil {
			fmt.Fprintln(os.Stderr, "snakebench:", err)
			os.Exit(1)
		}
		return
	}
	ids := harness.ExperimentIDs()
	if !*all {
		if *exp == "" {
			fmt.Fprintln(os.Stderr, "snakebench: pass -exp <ids> or -all (see -list)")
			os.Exit(2)
		}
		ids = strings.Split(*exp, ",")
	}

	r := newRunner(*sms, *warps, *ctas, *iters)
	r.Parallelism = *parallel
	r.SlackWindow = *slack
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := harness.Experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "snakebench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		t, err := e(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snakebench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := t.Write(os.Stdout, *format); err != nil {
			fmt.Fprintf(os.Stderr, "snakebench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *format == "text" {
			fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}
}

func newRunner(sms, warps, ctas, iters int) *harness.Runner {
	r := harness.NewRunner()
	if sms > 0 && warps > 0 {
		cfg := r.Cfg
		cfg.NumSM = sms
		cfg.MaxWarpsPerSM = warps
		cfg.ThreadsPerSM = warps * cfg.WarpSize
		r.Cfg = cfg
	}
	sc := r.Scale
	if ctas > 0 {
		sc.CTAs = ctas
	}
	if iters > 0 {
		sc.Iters = iters
	}
	r.Scale = sc
	return r
}
