package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/sim"
	"snake/internal/trace"
	"snake/internal/workloads"
)

// simBenchEntry is one row of BENCH_sim.json: the measured throughput of
// sim.Run on one workload, with or without event-driven cycle skipping and
// at a given shard parallelism.
type simBenchEntry struct {
	Name         string  `json:"name"`
	Bench        string  `json:"bench"`
	DisableSkip  bool    `json:"disable_skip"`
	Parallelism  int     `json:"parallelism,omitempty"`
	NsPerOp      int64   `json:"ns_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

// simBenchFile is the machine-readable perf trajectory CI uploads per PR.
type simBenchFile struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	// MaxProcs records the measuring machine's GOMAXPROCS: parallel entries
	// are only meaningful relative to it (a 1-core machine cannot show
	// parallel speedup, however correct the executor).
	MaxProcs    int                `json:"max_procs"`
	Entries     []simBenchEntry    `json:"entries"`
	SkipSpeedup map[string]float64 `json:"skip_speedup"`
	// ParallelSpeedup is serial ns/op ÷ parallel ns/op per parallel case.
	ParallelSpeedup map[string]float64 `json:"parallel_speedup,omitempty"`
}

// simBenchCase is one measured configuration. Skip cases run the standard
// 4×64 experiment machine; parallel cases run a medium-scale 8-SM machine
// (more CTAs, wider GPU) where per-cycle shard work is large enough for the
// barrier overhead to amortize — the configuration the -parallel flag
// targets in practice.
type simBenchCase struct {
	name        string
	bench       string
	disableSkip bool
	parallelism int // 0: serial engine (Parallelism 1)
	midScale    bool
}

var simBenchCases = []simBenchCase{
	{name: "lps", bench: "lps"},
	{name: "mum", bench: "mum"},
	{name: "nw", bench: "nw"},
	{name: "lps-noskip", bench: "lps", disableSkip: true},
	{name: "mum-noskip", bench: "mum", disableSkip: true},
	{name: "nw-noskip", bench: "nw", disableSkip: true},
	{name: "lps-par1", bench: "lps", midScale: true, parallelism: 1},
	{name: "lps-par4", bench: "lps", midScale: true, parallelism: 4},
	{name: "mum-par1", bench: "mum", midScale: true, parallelism: 1},
	{name: "mum-par4", bench: "mum", midScale: true, parallelism: 4},
}

// caseSetup returns the kernel and GPU configuration for one case.
func caseSetup(c simBenchCase) (*trace.Kernel, config.GPU, error) {
	if c.midScale {
		k, err := workloads.Build(c.bench, workloads.Scale{CTAs: 24, WarpsPerCTA: 8, Iters: 8})
		return k, config.Scaled(8, 48), err
	}
	k, err := workloads.Build(c.bench, workloads.Scale{CTAs: 12, WarpsPerCTA: 8, Iters: 8})
	return k, config.Scaled(4, 64), err
}

// writeSimBench measures simulator throughput and writes path. When
// baselinePath is non-empty, the new numbers are also checked against the
// committed baseline and an error is returned if any case's throughput
// dropped by more than regressionTolerance.
func writeSimBench(path, baselinePath string) error {
	out := simBenchFile{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		MaxProcs:        runtime.GOMAXPROCS(0),
		SkipSpeedup:     make(map[string]float64),
		ParallelSpeedup: make(map[string]float64),
	}
	nsPerOp := make(map[string]int64)
	for _, c := range simBenchCases {
		k, cfg, err := caseSetup(c)
		if err != nil {
			return err
		}
		var cycles int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			cycles = 0
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(k, sim.Options{
					Config:        cfg,
					NewPrefetcher: func(int) prefetch.Prefetcher { return core.NewSnake() },
					DisableSkip:   c.disableSkip,
					Parallelism:   c.parallelism,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
		})
		e := simBenchEntry{
			Name:         c.name,
			Bench:        c.bench,
			DisableSkip:  c.disableSkip,
			Parallelism:  c.parallelism,
			NsPerOp:      r.NsPerOp(),
			CyclesPerSec: float64(cycles) / r.T.Seconds(),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
		}
		out.Entries = append(out.Entries, e)
		nsPerOp[c.name] = e.NsPerOp
		fmt.Fprintf(os.Stderr, "snakebench: %-12s %12d ns/op %12.0f cycles/s %8d allocs/op\n",
			c.name, e.NsPerOp, e.CyclesPerSec, e.AllocsPerOp)
	}
	for _, c := range simBenchCases {
		if c.disableSkip || c.parallelism != 0 {
			continue
		}
		if slow, ok := nsPerOp[c.name+"-noskip"]; ok && nsPerOp[c.name] > 0 {
			out.SkipSpeedup[c.name] = float64(slow) / float64(nsPerOp[c.name])
		}
	}
	for _, c := range simBenchCases {
		if c.parallelism <= 1 {
			continue
		}
		serialName := fmt.Sprintf("%s-par1", c.bench)
		if serial, ok := nsPerOp[serialName]; ok && nsPerOp[c.name] > 0 {
			out.ParallelSpeedup[c.name] = float64(serial) / float64(nsPerOp[c.name])
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "snakebench: wrote %s\n", path)
	if baselinePath != "" {
		return checkRegression(baselinePath, out)
	}
	return nil
}

// regressionTolerance is the allowed throughput drop vs the committed
// baseline before the bench-regression guard fails: new ns/op may be at most
// 1.25× the old (a >20% throughput drop).
const regressionTolerance = 1.25

// checkRegression compares the fresh measurements against the committed
// BENCH_sim.json. Only cases present in both files are compared, so adding
// or renaming cases does not break the guard; wholly missing baselines pass
// (first run on a new schema).
func checkRegression(baselinePath string, fresh simBenchFile) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench regression baseline: %w", err)
	}
	var base simBenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench regression baseline %s: %w", baselinePath, err)
	}
	old := make(map[string]int64, len(base.Entries))
	for _, e := range base.Entries {
		old[e.Name] = e.NsPerOp
	}
	var regressions []string
	for _, e := range fresh.Entries {
		o, ok := old[e.Name]
		if !ok || o <= 0 {
			continue
		}
		if float64(e.NsPerOp) > float64(o)*regressionTolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d ns/op vs baseline %d (%.2fx, tolerance %.2fx)",
					e.Name, e.NsPerOp, o, float64(e.NsPerOp)/float64(o), regressionTolerance))
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "snakebench: REGRESSION "+r)
		}
		return fmt.Errorf("throughput regressed on %d case(s) vs %s", len(regressions), baselinePath)
	}
	fmt.Fprintf(os.Stderr, "snakebench: no regressions vs %s\n", baselinePath)
	return nil
}
