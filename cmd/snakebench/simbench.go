package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/profiling"
	"snake/internal/sim"
	"snake/internal/trace"
	"snake/internal/workloads"
)

// simBenchEntry is one row of BENCH_sim.json: the measured throughput of
// sim.Run on one workload, with or without event-driven cycle skipping and
// at a given shard parallelism.
type simBenchEntry struct {
	Name        string `json:"name"`
	Bench       string `json:"bench"`
	DisableSkip bool   `json:"disable_skip"`
	Parallelism int    `json:"parallelism,omitempty"`
	// App marks launch-layer cases: Bench names an application from the
	// workloads app registry and the op under timing is sim.RunApp (the
	// whole launch graph), not sim.Run of one kernel.
	App   bool `json:"app,omitempty"`
	Chain bool `json:"chain,omitempty"`
	// Reuse marks pooled-engine cases (the op is RunTagged on a warmed
	// persistent Engine); their allocs/op is the steady-state residual.
	Reuse bool `json:"reuse,omitempty"`
	// BarrierOverheadOnly marks parallel rows measured on a machine whose
	// GOMAXPROCS cannot host the workers (forced multi-worker execution on
	// one core): the row still exercises the real barrier/scatter machinery —
	// its allocs/op is fully meaningful — but its wall clock shows barrier
	// overhead, never parallel speedup, so speedup- and share-based gates
	// don't apply.
	BarrierOverheadOnly bool    `json:"barrier_overhead_only,omitempty"`
	NsPerOp             int64   `json:"ns_per_op"`
	CyclesPerSec        float64 `json:"cycles_per_sec"`
	AllocsPerOp         int64   `json:"allocs_per_op"`
	BytesPerOp          int64   `json:"bytes_per_op"`
}

// simBenchFile is the machine-readable perf trajectory CI uploads per PR.
type simBenchFile struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	// MaxProcs records the measuring machine's GOMAXPROCS: parallel entries
	// are only meaningful relative to it (a 1-core machine cannot show
	// parallel speedup, however correct the executor).
	MaxProcs    int                `json:"max_procs"`
	Entries     []simBenchEntry    `json:"entries"`
	SkipSpeedup map[string]float64 `json:"skip_speedup"`
	// ParallelSpeedup is serial ns/op ÷ parallel ns/op per parallel case.
	ParallelSpeedup map[string]float64 `json:"parallel_speedup,omitempty"`
	// PhaseNs breaks one profiled run of each parallel case into the
	// engine's wall-clock phases (nanoseconds, keyed by phase name); the
	// profiled run is separate from the timed ops above, so profiling
	// overhead never pollutes ns/op.
	PhaseNs map[string]map[string]int64 `json:"phase_ns,omitempty"`
	// SerialShare is the serial fraction (drain + route + merge over total)
	// of each profiled run. The regression guard watches the P>1 cases: the
	// serial share is what bounds parallel speedup (Amdahl), so letting it
	// grow silently would erode the executor without any single ns/op case
	// tripping.
	SerialShare map[string]float64 `json:"serial_share,omitempty"`
	// RouteShare and MergeShare split the serial share into its gated
	// components: the route phase (the per-epoch prefix-sum over partition
	// ingress rings) and the merge phase (heap pushes, store scatter
	// bookkeeping, CTA maturation). Together they are the old monolithic
	// serial phase minus the drain, and genuinely parallel runs gate their
	// sum absolutely (routeMergeShareMax); the drain rides the relative
	// serial-share guard.
	RouteShare map[string]float64 `json:"route_share,omitempty"`
	MergeShare map[string]float64 `json:"merge_share,omitempty"`
	// BarriersPerKcycle is barrier waves per thousand simulated cycles for
	// each profiled run at -slack auto. The regression guard watches it
	// alongside SerialShare: bounded-slack ticking amortizes the per-cycle
	// barrier, and a change that silently shortens epochs (more barriers for
	// the same cycles) would re-serialize the executor without moving any
	// ns/op case past its tolerance.
	BarriersPerKcycle map[string]float64 `json:"barriers_per_kcycle,omitempty"`
}

// simBenchCase is one measured configuration. Skip cases run the standard
// 4×64 experiment machine; parallel cases run a medium-scale 8-SM machine
// (more CTAs, wider GPU) where per-cycle shard work is large enough for the
// barrier overhead to amortize — the configuration the -parallel flag
// targets in practice. Reuse cases re-run their base case on a persistent
// warmed sim.Engine, the steady-state shape of sweep traffic through the
// harness engine pool: their allocs/op and bytes/op measure only the per-run
// residual, not arena construction. App cases time sim.RunApp on a whole
// launch graph — the multi-kernel case exercises the launch scheduler plus
// cross-launch chain persistence, the co-tenant case exercises partitioned
// concurrent launches — so launch-layer overhead shows up as its own row
// instead of hiding inside kernel cases.
type simBenchCase struct {
	name        string
	bench       string
	disableSkip bool
	parallelism int // 0: serial engine (Parallelism 1)
	midScale    bool
	reuse       bool
	app         bool // bench names an application; op is sim.RunApp
	chain       bool // persist chain tables across launches (app cases)
}

var simBenchCases = []simBenchCase{
	{name: "lps", bench: "lps"},
	{name: "mum", bench: "mum"},
	{name: "nw", bench: "nw"},
	{name: "lps-noskip", bench: "lps", disableSkip: true},
	{name: "mum-noskip", bench: "mum", disableSkip: true},
	{name: "nw-noskip", bench: "nw", disableSkip: true},
	{name: "lps-par1", bench: "lps", midScale: true, parallelism: 1},
	{name: "lps-par4", bench: "lps", midScale: true, parallelism: 4},
	{name: "mum-par1", bench: "mum", midScale: true, parallelism: 1},
	{name: "mum-par4", bench: "mum", midScale: true, parallelism: 4},
	{name: "nw-par1", bench: "nw", midScale: true, parallelism: 1},
	{name: "nw-par4", bench: "nw", midScale: true, parallelism: 4},
	{name: "lps-reuse", bench: "lps", reuse: true},
	{name: "mum-reuse", bench: "mum", reuse: true},
	{name: "nw-reuse", bench: "nw", reuse: true},
	// Pooled parallel rows: the allocation-flat claim. A warmed engine
	// re-running under a 4-worker crew must stay at the serial-pooled
	// steady state (par1-reuse is the reference; checkParallelAllocsFlat
	// gates the ratio on every bench run, baseline or not).
	{name: "lps-par1-reuse", bench: "lps", midScale: true, parallelism: 1, reuse: true},
	{name: "lps-par4-reuse", bench: "lps", midScale: true, parallelism: 4, reuse: true},
	{name: "mum-par1-reuse", bench: "mum", midScale: true, parallelism: 1, reuse: true},
	{name: "mum-par4-reuse", bench: "mum", midScale: true, parallelism: 4, reuse: true},
	{name: "app-pipeline", bench: "pipeline", app: true, chain: true},
	{name: "app-cotenant", bench: "cotenant", app: true},
}

// caseSetup returns the kernel and GPU configuration for one case. Kernels
// come from the shared store, so cases measuring the same (bench, scale)
// under different engine settings share one trace build.
func caseSetup(c simBenchCase) (*trace.Kernel, config.GPU, error) {
	if c.midScale {
		k, err := workloads.Shared().Kernel(c.bench, workloads.Scale{CTAs: 24, WarpsPerCTA: 8, Iters: 8})
		return k, config.Scaled(8, 48), err
	}
	k, err := workloads.Shared().Kernel(c.bench, workloads.Scale{CTAs: 12, WarpsPerCTA: 8, Iters: 8})
	return k, config.Scaled(4, 64), err
}

// writeSimBench measures simulator throughput and writes path. When
// baselinePath is non-empty, the new numbers are also checked against the
// committed baseline and an error is returned if any case's throughput
// dropped by more than regressionTolerance.
func writeSimBench(path, baselinePath string) error {
	out := simBenchFile{
		GeneratedAt:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:         runtime.Version(),
		MaxProcs:          runtime.GOMAXPROCS(0),
		SkipSpeedup:       make(map[string]float64),
		ParallelSpeedup:   make(map[string]float64),
		PhaseNs:           make(map[string]map[string]int64),
		SerialShare:       make(map[string]float64),
		BarriersPerKcycle: make(map[string]float64),
	}
	out.RouteShare = make(map[string]float64)
	out.MergeShare = make(map[string]float64)
	nsPerOp := make(map[string]int64)
	for _, c := range simBenchCases {
		if c.app {
			e, err := measureAppCase(c)
			if err != nil {
				return err
			}
			out.Entries = append(out.Entries, e)
			nsPerOp[c.name] = e.NsPerOp
			fmt.Fprintf(os.Stderr, "snakebench: %-12s %12d ns/op %12.0f cycles/s %8d allocs/op\n",
				c.name, e.NsPerOp, e.CyclesPerSec, e.AllocsPerOp)
			continue
		}
		k, cfg, err := caseSetup(c)
		if err != nil {
			return err
		}
		opt := sim.Options{
			Config:        cfg,
			NewPrefetcher: func(int) prefetch.Prefetcher { return core.NewSnake() },
			DisableSkip:   c.disableSkip,
			Parallelism:   c.parallelism,
			// Parallel rows must measure the real multi-worker machinery even
			// when GOMAXPROCS would clamp it away; on a 1-core machine the row
			// is then marked barrier-overhead-only below.
			ForceParallelism: c.parallelism > 1,
		}
		var cycles int64
		var r testing.BenchmarkResult
		if c.reuse {
			// Persistent engine, warmed before timing: the measured op is the
			// steady-state reinitialize-and-run that pooled sweep traffic pays.
			en := sim.NewEngine()
			if _, err := en.RunTagged(k, opt, "snake"); err != nil {
				return err
			}
			r = testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				cycles = 0
				for i := 0; i < b.N; i++ {
					res, err := en.RunTagged(k, opt, "snake")
					if err != nil {
						b.Fatal(err)
					}
					cycles += res.Stats.Cycles
				}
			})
		} else {
			r = testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				cycles = 0
				for i := 0; i < b.N; i++ {
					res, err := sim.Run(k, opt)
					if err != nil {
						b.Fatal(err)
					}
					cycles += res.Stats.Cycles
				}
			})
		}
		e := simBenchEntry{
			Name:                c.name,
			Bench:               c.bench,
			DisableSkip:         c.disableSkip,
			Parallelism:         c.parallelism,
			Reuse:               c.reuse,
			BarrierOverheadOnly: c.parallelism > 1 && out.MaxProcs == 1,
			NsPerOp:             r.NsPerOp(),
			CyclesPerSec:        float64(cycles) / r.T.Seconds(),
			AllocsPerOp:         r.AllocsPerOp(),
			BytesPerOp:          r.AllocedBytesPerOp(),
		}
		out.Entries = append(out.Entries, e)
		nsPerOp[c.name] = e.NsPerOp
		fmt.Fprintf(os.Stderr, "snakebench: %-16s %12d ns/op %12.0f cycles/s %8d allocs/op\n",
			c.name, e.NsPerOp, e.CyclesPerSec, e.AllocsPerOp)
		if c.parallelism != 0 && !c.reuse {
			// One extra profiled run, outside the timing loop: phase wall
			// clocks for the parallel cases (par1 included, as the serial
			// reference the share comparison needs). Reuse rows profile
			// identically to their fresh siblings, so they are skipped.
			prof, profCycles, err := measurePhases(k, cfg, c.parallelism, 0)
			if err != nil {
				return err
			}
			out.PhaseNs[c.name] = prof.Map()
			out.SerialShare[c.name] = prof.SerialShare()
			out.RouteShare[c.name] = prof.RouteShare()
			out.MergeShare[c.name] = prof.MergeShare()
			if profCycles > 0 {
				out.BarriersPerKcycle[c.name] = 1000 * float64(prof.Barriers()) / float64(profCycles)
			}
			if rm := out.RouteShare[c.name] + out.MergeShare[c.name]; c.parallelism > 1 && !e.BarrierOverheadOnly && rm > routeMergeShareMax {
				return fmt.Errorf("snakebench: %s route+merge share %.3f (route %.3f, merge %.3f) exceeds %.2f: the per-epoch route/merge passes must stay noise-level",
					c.name, rm, out.RouteShare[c.name], out.MergeShare[c.name], routeMergeShareMax)
			}
		}
	}
	for _, c := range simBenchCases {
		if c.disableSkip || c.parallelism != 0 {
			continue
		}
		if slow, ok := nsPerOp[c.name+"-noskip"]; ok && nsPerOp[c.name] > 0 {
			out.SkipSpeedup[c.name] = float64(slow) / float64(nsPerOp[c.name])
		}
	}
	for _, c := range simBenchCases {
		if c.parallelism <= 1 {
			continue
		}
		// Each parN row's reference is its par1 sibling with the same suffix
		// (so lps-par4-reuse compares against lps-par1-reuse, not lps-par1).
		serialName := strings.Replace(c.name, fmt.Sprintf("-par%d", c.parallelism), "-par1", 1)
		if serial, ok := nsPerOp[serialName]; ok && nsPerOp[c.name] > 0 {
			out.ParallelSpeedup[c.name] = float64(serial) / float64(nsPerOp[c.name])
		}
	}
	if err := checkParallelAllocsFlat(out.Entries); err != nil {
		return err
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "snakebench: wrote %s\n", path)
	if baselinePath != "" {
		return checkRegression(baselinePath, out)
	}
	return nil
}

// measureAppCase times sim.RunApp on one application launch graph at the
// standard 4×64 experiment machine — the launch-scheduler counterpart of the
// kernel rows. The co-tenant app runs its partitioned launches concurrently,
// the pipeline app serially with chain persistence; both regress here if the
// launch layer grows per-launch overhead.
func measureAppCase(c simBenchCase) (simBenchEntry, error) {
	cfg := config.Scaled(4, 64)
	a, _, err := workloads.Shared().App(c.bench, workloads.Scale{CTAs: 12, WarpsPerCTA: 8, Iters: 8}, cfg.NumSM, 0)
	if err != nil {
		return simBenchEntry{}, err
	}
	opt := sim.Options{
		Config:           cfg,
		NewPrefetcher:    func(int) prefetch.Prefetcher { return core.NewSnake() },
		ChainPersistence: c.chain,
	}
	var cycles int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cycles = 0
		for i := 0; i < b.N; i++ {
			res, err := sim.RunApp(a, opt)
			if err != nil {
				b.Fatal(err)
			}
			cycles += res.Stats.Cycles
		}
	})
	return simBenchEntry{
		Name:         c.name,
		Bench:        c.bench,
		App:          true,
		Chain:        c.chain,
		NsPerOp:      r.NsPerOp(),
		CyclesPerSec: float64(cycles) / r.T.Seconds(),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
	}, nil
}

// routeMergeShareMax is the absolute ceiling on the route-plus-merge share of
// a genuinely parallel (P>1, multi-core) profiled run — the pieces of the old
// monolithic serial phase that the counting-scatter design claims are cheap:
// planRoute is an O(#partitions) prefix-sum per epoch, and the merge is heap
// pushes plus O(span × active shards) scatter bookkeeping. Unlike the
// relative serial-share guard this gate holds against the fresh measurement
// alone — a baseline that drifted up would not excuse it. (The remaining
// serial drain — the per-sub-cycle injection pump — is guarded relatively,
// via SerialShare.)
const routeMergeShareMax = 0.06

// checkParallelAllocsFlat is the allocation-flat parallel-mode gate: each
// pooled parN row must allocate within allocRegressionTolerance of its par1
// sibling (plus the small-count floor), on every bench run — allocation
// counts are deterministic, so this needs no committed baseline. A parallel
// pooled run that allocates beyond the serial steady state means some arena
// (routed slab, due views, scatter scratch, crew) stopped recycling.
func checkParallelAllocsFlat(entries []simBenchEntry) error {
	byName := make(map[string]simBenchEntry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	for _, e := range entries {
		if !e.Reuse || e.Parallelism <= 1 {
			continue
		}
		serial, ok := byName[strings.Replace(e.Name, fmt.Sprintf("-par%d", e.Parallelism), "-par1", 1)]
		if !ok || serial.AllocsPerOp <= 0 {
			continue
		}
		if e.AllocsPerOp > allocFloor &&
			float64(e.AllocsPerOp) > float64(serial.AllocsPerOp)*allocRegressionTolerance {
			return fmt.Errorf("snakebench: %s allocates %d/op vs %s's %d/op: parallel pooled runs must stay allocation-flat (tolerance %.2fx)",
				e.Name, e.AllocsPerOp, serial.Name, serial.AllocsPerOp, allocRegressionTolerance)
		}
	}
	return nil
}

// measurePhases runs the kernel once with a phase accumulator attached and
// returns the per-phase wall clock plus the run's simulated cycle count
// (the denominator for barriers-per-kilocycle).
func measurePhases(k *trace.Kernel, cfg config.GPU, parallelism, slack int) (*profiling.Phases, int64, error) {
	var prof profiling.Phases
	opt := sim.Options{
		Config:        cfg,
		NewPrefetcher: func(int) prefetch.Prefetcher { return core.NewSnake() },
		Parallelism:   parallelism,
		SlackWindow:   slack,
		PhaseProfile:  &prof,
		// Profile the real multi-worker phase split even where GOMAXPROCS
		// would clamp it away (the shares are then barrier-overhead shares).
		ForceParallelism: parallelism > 1,
	}
	res, err := sim.Run(k, opt)
	if err != nil {
		return nil, 0, err
	}
	return &prof, res.Stats.Cycles, nil
}

// reportPhases implements snakebench -phases: per-phase engine wall clock
// and serial share for the parallel benchmark cases, at serial execution and
// at the requested parallelism. This is the Amdahl report: the drain, route
// and merge columns are the part of the cycle no amount of -parallel can
// compress, and the share column is their fraction of the total — with route%
// and merge% broken out so each serial phase's trajectory is visible on its
// own (their sum must stay noise-level; see routeMergeShareMax). The barriers and
// cyc/barrier columns show how well bounded-slack ticking amortizes the wave
// barrier (honors -slack; cyc/barrier counts only ticked cycles, so skipped
// spans do not inflate it).
func reportPhases(parallel, slack int) error {
	if parallel <= 1 {
		parallel = 4
	}
	fmt.Printf("%-6s %3s %12s %10s %12s %12s %10s %12s %8s %8s %8s %10s %12s\n",
		"bench", "P", "drain", "route", "partitions", "shards", "merge", "total", "share", "route%", "merge%", "barriers", "cyc/barrier")
	for _, bench := range []string{"lps", "mum", "nw"} {
		k, err := workloads.Shared().Kernel(bench, workloads.Scale{CTAs: 24, WarpsPerCTA: 8, Iters: 8})
		if err != nil {
			return err
		}
		cfg := config.Scaled(8, 48)
		for _, p := range []int{1, parallel} {
			prof, _, err := measurePhases(k, cfg, p, slack)
			if err != nil {
				return err
			}
			fmt.Printf("%-6s %3d %11dµs %9dµs %11dµs %11dµs %9dµs %11dµs %7.1f%% %7.2f%% %7.2f%% %10d %12.2f\n",
				bench, p,
				prof.Ns(profiling.PhaseSerialDrain)/1e3,
				prof.Ns(profiling.PhaseSerialRoute)/1e3,
				prof.Ns(profiling.PhaseMemPartitions)/1e3,
				prof.Ns(profiling.PhaseShards)/1e3,
				prof.Ns(profiling.PhaseMerge)/1e3,
				prof.TotalNs()/1e3,
				100*prof.SerialShare(),
				100*prof.RouteShare(),
				100*prof.MergeShare(),
				prof.Barriers(),
				prof.CyclesPerBarrier())
		}
	}
	return nil
}

// regressionTolerance is the allowed throughput drop vs the committed
// baseline before the bench-regression guard fails: new ns/op may be at most
// 1.25× the old (a >20% throughput drop). Parallel rows are the executor's
// headline number and get the tighter parRegressionTolerance: a par4 case
// whose ns/op grows past 1.20× the baseline fails even where a serial case
// would still squeak by.
const (
	regressionTolerance    = 1.25
	parRegressionTolerance = 1.20
)

// Allocation regressions use a tighter ratio: allocation counts are far less
// noisy than wall time, so >20% growth in allocs/op or bytes/op is a real
// code change, not jitter. Entries below the absolute floors are exempt —
// at near-zero steady-state counts (a reuse case at ~2 allocs/op), one
// incidental allocation would trip any ratio.
const (
	allocRegressionTolerance = 1.20
	allocFloor               = 16       // allocs/op below this never flag
	bytesFloor               = 16 << 10 // bytes/op below this never flag
)

// Serial-share growth at P>1 is the Amdahl regression: a case may spend at
// most shareRegressionTolerance× the baseline's serial fraction, and small
// absolute wobbles (wall-clock phase timing on a loaded CI machine is noisy)
// are excused below shareAbsFloor of absolute growth. Both must be exceeded
// to flag. P=1 cases are not guarded — serially everything but the shard
// phase is "serial", and the share carries no Amdahl meaning there.
const (
	shareRegressionTolerance = 1.25
	shareAbsFloor            = 0.05
)

// Barrier-density growth is the slack regression: a profiled case may cross
// at most barrierRegressionTolerance× the baseline's barrier waves per
// kilocycle, with small absolute wobbles (epoch cuts move with workload
// timing noise) excused below barrierAbsFloor of absolute growth. Both must
// be exceeded to flag. Wide-horizon epochs pushed the committed levels to
// ~13–37 waves/kcycle (they were ~130–140 under the old 8-cycle cap), so the
// floor is a few absolute waves, not tens — at these densities a 20-wave
// regression would already be a 1.5–2.5× collapse of epoch length.
const (
	barrierRegressionTolerance = 1.20
	barrierAbsFloor            = 3.0
)

// checkRegression compares the fresh measurements against the committed
// BENCH_sim.json: wall time per op, and — for memory-cost regressions that
// wall time hides on fast allocators — allocations and bytes per op. Only
// cases present in both files are compared, so adding or renaming cases does
// not break the guard; wholly missing baselines pass (first run on a new
// schema).
func checkRegression(baselinePath string, fresh simBenchFile) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench regression baseline: %w", err)
	}
	var base simBenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench regression baseline %s: %w", baselinePath, err)
	}
	old := make(map[string]simBenchEntry, len(base.Entries))
	for _, e := range base.Entries {
		old[e.Name] = e
	}
	var regressions []string
	flag := func(name, metric string, got, want int64, tol float64, floor int64) {
		if want <= 0 || got <= floor {
			return
		}
		if float64(got) > float64(want)*tol {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d %s vs baseline %d (%.2fx, tolerance %.2fx)",
					name, got, metric, want, float64(got)/float64(want), tol))
		}
	}
	for _, e := range fresh.Entries {
		o, ok := old[e.Name]
		if !ok {
			continue
		}
		// Allocation counts are environment-independent and always compared;
		// wall time is only comparable when both measurements ran in the same
		// parallel regime (a barrier-overhead-only row against a genuinely
		// parallel baseline, or vice versa, measures the machine, not the code).
		if e.BarrierOverheadOnly == o.BarrierOverheadOnly {
			tol := regressionTolerance
			if e.Parallelism > 1 {
				tol = parRegressionTolerance
			}
			flag(e.Name, "ns/op", e.NsPerOp, o.NsPerOp, tol, 0)
		}
		flag(e.Name, "allocs/op", e.AllocsPerOp, o.AllocsPerOp, allocRegressionTolerance, allocFloor)
		flag(e.Name, "bytes/op", e.BytesPerOp, o.BytesPerOp, allocRegressionTolerance, bytesFloor)
	}
	for _, e := range fresh.Entries {
		if e.Parallelism <= 1 {
			continue
		}
		// Share/barrier profiles only mean something for genuinely parallel
		// rows: when either side is barrier-overhead-only the phase split
		// measures one core's scheduler interleaving, not the executor.
		if e.BarrierOverheadOnly {
			continue
		}
		if o, ok := old[e.Name]; ok && o.BarrierOverheadOnly {
			continue
		}
		got, gok := fresh.SerialShare[e.Name]
		want, wok := base.SerialShare[e.Name]
		if !gok || !wok || want <= 0 {
			continue // baseline predates phase profiling, or case not profiled
		}
		if got > want*shareRegressionTolerance && got-want > shareAbsFloor {
			regressions = append(regressions,
				fmt.Sprintf("%s: serial phase share %.3f vs baseline %.3f (%.2fx, tolerance %.2fx and +%.2f absolute)",
					e.Name, got, want, got/want, shareRegressionTolerance, shareAbsFloor))
		}
		bGot, bgok := fresh.BarriersPerKcycle[e.Name]
		bWant, bwok := base.BarriersPerKcycle[e.Name]
		if bgok && bwok && bWant > 0 &&
			bGot > bWant*barrierRegressionTolerance && bGot-bWant > barrierAbsFloor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f barriers/kcycle vs baseline %.1f (%.2fx, tolerance %.2fx and +%.0f absolute)",
					e.Name, bGot, bWant, bGot/bWant, barrierRegressionTolerance, barrierAbsFloor))
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "snakebench: REGRESSION "+r)
		}
		return fmt.Errorf("performance regressed on %d case(s) vs %s", len(regressions), baselinePath)
	}
	fmt.Fprintf(os.Stderr, "snakebench: no regressions vs %s\n", baselinePath)
	return nil
}
